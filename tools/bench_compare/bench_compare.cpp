// bench_compare — throughput regression gate over tsn-bench-v1 artifacts.
//
// Usage:
//   bench_compare <baseline.json> <current.json> [--max-regression <pct>]
//   bench_compare --self-test
//
// Compares the metric rows of two BENCH_*.json files. Only throughput rows
// (unit ending in "/s", where higher is better) are gated: the tool fails
// when a current value drops more than --max-regression percent (default 25)
// below its baseline, or when a baselined throughput row is missing from the
// current report. Time-per-op rows ("ns") are informational — they are noisy
// across machines and already bounded by the bench's own shape checks — so
// machine-to-machine variance does not flap CI; the committed baselines are
// scaled conservatively for the same reason.
//
// No third-party JSON dependency: the parser below covers exactly the subset
// the deterministic tsn JsonWriter emits (flat metric objects with string,
// number, and bool fields).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  // Extracts the objects of the top-level "metrics" array. Returns nullopt
  // on malformed input.
  std::optional<std::vector<Metric>> metrics() {
    const auto key = text_.find("\"metrics\"");
    if (key == std::string_view::npos) return std::nullopt;
    pos_ = key + std::strlen("\"metrics\"");
    skip_ws();
    if (!consume(':')) return std::nullopt;
    skip_ws();
    if (!consume('[')) return std::nullopt;
    std::vector<Metric> out;
    skip_ws();
    if (peek() == ']') return out;
    while (true) {
      auto metric = parse_metric();
      if (!metric) return std::nullopt;
      out.push_back(std::move(*metric));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return out;
      return std::nullopt;
    }
  }

 private:
  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u':
            // Sufficient for metric names: keep the escape verbatim.
            if (text_.size() - pos_ < 4) return std::nullopt;
            out.append("\\u").append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          default: return std::nullopt;
        }
        continue;
      }
      out.push_back(c);
    }
    return std::nullopt;
  }

  std::optional<Metric> parse_metric() {
    skip_ws();
    if (!consume('{')) return std::nullopt;
    Metric m;
    skip_ws();
    while (peek() != '}') {
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      if (peek() == '"') {
        auto value = parse_string();
        if (!value) return std::nullopt;
        if (*key == "name") m.name = *value;
        if (*key == "unit") m.unit = *value;
      } else if (std::strncmp(text_.data() + pos_, "true", 4) == 0) {
        pos_ += 4;
      } else if (std::strncmp(text_.data() + pos_, "false", 5) == 0) {
        pos_ += 5;
      } else if (std::strncmp(text_.data() + pos_, "null", 4) == 0) {
        pos_ += 4;
      } else {
        char* end = nullptr;
        const double value = std::strtod(text_.data() + pos_, &end);
        if (end == text_.data() + pos_) return std::nullopt;
        pos_ = static_cast<std::size_t>(end - text_.data());
        if (*key == "value") m.value = value;
      }
      skip_ws();
      if (consume(',')) skip_ws();
    }
    ++pos_;  // '}'
    return m;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_throughput(const Metric& m) {
  return m.unit.size() >= 2 && m.unit.compare(m.unit.size() - 2, 2, "/s") == 0;
}

const Metric* find(const std::vector<Metric>& metrics, const std::string& name) {
  for (const Metric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// Returns the number of failures, printing one line per gated metric.
int compare(const std::vector<Metric>& baseline, const std::vector<Metric>& current,
            double max_regression_pct) {
  int failures = 0;
  int gated = 0;
  for (const Metric& base : baseline) {
    if (!is_throughput(base) || base.value <= 0.0) continue;
    ++gated;
    const Metric* cur = find(current, base.name);
    if (cur == nullptr) {
      std::fprintf(stderr, "FAIL %s: missing from current report\n", base.name.c_str());
      ++failures;
      continue;
    }
    const double floor = base.value * (1.0 - max_regression_pct / 100.0);
    const double change_pct = (cur->value / base.value - 1.0) * 100.0;
    if (cur->value < floor) {
      std::fprintf(stderr, "FAIL %s: %.3g %s vs baseline %.3g (%+.1f%%, floor -%g%%)\n",
                   base.name.c_str(), cur->value, cur->unit.c_str(), base.value, change_pct,
                   max_regression_pct);
      ++failures;
    } else {
      std::fprintf(stdout, "  ok %s: %.3g %s vs baseline %.3g (%+.1f%%)\n", base.name.c_str(),
                   cur->value, cur->unit.c_str(), base.value, change_pct);
    }
  }
  if (gated == 0) {
    std::fprintf(stderr, "FAIL baseline has no throughput (\"/s\") metrics to gate\n");
    ++failures;
  }
  return failures;
}

std::optional<std::string> read_file(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int self_test() {
  const std::string baseline = R"({"schema":"tsn-bench-v1","bench":"x","metrics":[)"
                               R"({"name":"scheduler.events_per_s","value":1000000,"unit":"events/s"},)"
                               R"({"name":"packet_pool.packets_per_s","value":2e6,"unit":"packets/s"},)"
                               R"({"name":"BM_EngineScheduleFire","value":100.5,"unit":"ns"}],)"
                               R"("checks":[{"name":"c","pass":true,"detail":""}],"passed":true})";
  int failed = 0;
  auto expect = [&failed](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "self-test FAILED: %s\n", what);
      ++failed;
    }
  };

  auto base = Parser{baseline}.metrics();
  expect(base.has_value() && base->size() == 3, "parse baseline metrics");
  if (base) {
    expect((*base)[0].name == "scheduler.events_per_s" && (*base)[0].value == 1'000'000.0,
           "first metric fields");
    expect((*base)[1].value == 2e6 && is_throughput((*base)[1]), "scientific value + /s unit");
    expect(!is_throughput((*base)[2]), "ns rows are not gated");
  }

  // Identical report: passes.
  expect(base && compare(*base, *base, 25.0) == 0, "identical reports pass");

  // 20% drop passes the 25% gate; 30% drop fails it.
  auto drop = [&](double factor) {
    std::vector<Metric> cur = *base;
    cur[0].value *= factor;
    cur[1].value *= factor;
    return cur;
  };
  expect(base && compare(*base, drop(0.80), 25.0) == 0, "20% drop within 25% gate");
  expect(base && compare(*base, drop(0.70), 25.0) == 2, "30% drop fails both rows");
  expect(base && compare(*base, drop(0.80), 10.0) == 2, "--max-regression tightens the gate");

  // Missing throughput row fails.
  if (base) {
    std::vector<Metric> cur{(*base)[0], (*base)[2]};
    expect(compare(*base, cur, 25.0) == 1, "missing throughput row fails");
  }

  // Baseline with nothing to gate fails loudly rather than vacuously passing.
  std::vector<Metric> ns_only{{"a", 1.0, "ns"}};
  expect(compare(ns_only, ns_only, 25.0) == 1, "no gated metrics is a failure");

  std::fprintf(failed == 0 ? stdout : stderr, "bench_compare self-test: %s\n",
               failed == 0 ? "PASS" : "FAIL");
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double max_regression_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--self-test") return self_test();
    if (arg == "--max-regression") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-regression needs a percent value\n");
        return 2;
      }
      max_regression_pct = std::strtod(argv[++i], nullptr);
      continue;
    }
    if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--max-regression <pct>] | --self-test\n");
    return 2;
  }

  const auto baseline_text = read_file(baseline_path);
  if (!baseline_text) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
    return 2;
  }
  const auto current_text = read_file(current_path);
  if (!current_text) {
    std::fprintf(stderr, "cannot read current report %s\n", current_path);
    return 2;
  }
  const auto baseline = Parser{*baseline_text}.metrics();
  if (!baseline) {
    std::fprintf(stderr, "malformed baseline %s\n", baseline_path);
    return 2;
  }
  const auto current = Parser{*current_text}.metrics();
  if (!current) {
    std::fprintf(stderr, "malformed current report %s\n", current_path);
    return 2;
  }

  std::fprintf(stdout, "bench_compare: %s vs %s (max regression %g%%)\n", current_path,
               baseline_path, max_regression_pct);
  const int failures = compare(*baseline, *current, max_regression_pct);
  if (failures != 0) {
    std::fprintf(stderr, "bench_compare: %d throughput regression(s)\n", failures);
    return 1;
  }
  std::fprintf(stdout, "bench_compare: all throughput metrics within budget\n");
  return 0;
}
