// tsn_lint — wire-safety lint for the codec and switch hot paths.
//
// A deliberately small, dependency-free static checker that runs as a ctest
// case over src/proto, src/net, and src/mcast. It enforces the three
// conventions that keep malformed frames from becoming memory errors:
//
//   unchecked-reader        a function that consumes fields from a
//                           net::WireReader must check `.ok()` on that reader
//                           somewhere in the same function (the sticky
//                           failure flag makes one deferred check enough).
//   raw-memcpy / raw-cast   no `memcpy` or `reinterpret_cast` on frame
//                           buffers; byte access goes through WireReader /
//                           WireWriter, which are bounds-checked.
//   unchecked-length-index  a `.subspan(...)` whose arguments involve
//                           runtime values (e.g. a wire length field) must
//                           sit in a function that compares against
//                           `.size()` or `remaining()` first.
//
// Findings print as `file:line: [rule] message` and make the exit status
// nonzero. Audited exceptions are annotated in the source with
// `// tsn-lint: allow(<rule>)` on the offending (or declaring) line.
//
// This is a heuristic, line-oriented scanner, not a compiler plugin: it
// tracks brace depth, comments, and string literals, but not templates or
// macros. The `--self-test` mode locks down its behavior on known good and
// bad snippets so rule regressions fail CI the same way code regressions do.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// --- comment / string stripping -------------------------------------------

// Returns the file's lines with comments blanked out (string and char
// literals respected), plus the per-line set of `tsn-lint: allow(rule)`
// suppressions harvested from the comments before they are removed.
struct CleanSource {
  std::vector<std::string> lines;                 // code only, comments blanked
  std::vector<std::set<std::string>> allows;      // per line, suppressed rules
};

void harvest_allows(const std::string& raw, std::set<std::string>& out) {
  const std::string_view key = "tsn-lint: allow(";
  std::size_t pos = 0;
  while ((pos = raw.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t close = raw.find(')', pos);
    if (close == std::string::npos) break;
    out.insert(raw.substr(pos, close - pos));
    pos = close + 1;
  }
}

CleanSource strip_comments(const std::vector<std::string>& raw) {
  CleanSource out;
  out.lines.resize(raw.size());
  out.allows.resize(raw.size());
  bool in_block_comment = false;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    harvest_allows(line, out.allows[li]);
    std::string& code = out.lines[li];
    code.reserve(line.size());
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      // Literal contents are blanked so tokens inside strings never match.
      if (in_string) {
        if (c == '\\' && i + 1 < line.size()) {
          ++i;
        } else if (c == '"') {
          in_string = false;
          code.push_back(c);
        }
        continue;
      }
      if (in_char) {
        if (c == '\\' && i + 1 < line.size()) {
          ++i;
        } else if (c == '\'') {
          in_char = false;
          code.push_back(c);
        }
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"') in_string = true;
      // Digit separators like 2'000 are not char literals.
      if (c == '\'' && (i == 0 || !std::isalnum(static_cast<unsigned char>(line[i - 1])))) {
        in_char = true;
      }
      code.push_back(c);
    }
  }
  return out;
}

// --- small text helpers ----------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds `needle` in `line` at an identifier boundary on the left.
std::size_t find_token(const std::string& line, std::string_view needle, std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || !is_ident_char(line[pos - 1])) return pos;
    pos += needle.size();
  }
  return std::string::npos;
}

bool starts_with_keyword(const std::string& line) {
  static const std::vector<std::string> kKeywords = {"if",     "for",   "while", "switch",
                                                    "else",   "catch", "do",    "return",
                                                    "namespace", "class", "struct", "enum",
                                                    "union"};
  std::size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  // A closing `} else {` also counts as control flow.
  while (i < line.size() && (line[i] == '}' || std::isspace(static_cast<unsigned char>(line[i])))) {
    ++i;
  }
  for (const auto& kw : kKeywords) {
    if (line.compare(i, kw.size(), kw) == 0) {
      const std::size_t end = i + kw.size();
      if (end >= line.size() || !is_ident_char(line[end])) return true;
    }
  }
  return false;
}

// Identifier-wise scan of an expression: true if any identifier looks like a
// runtime value, i.e. is not a numeric literal, kConstant, sizeof, or a
// std:: qualifier.
bool has_runtime_identifier(std::string_view expr) {
  std::size_t i = 0;
  while (i < expr.size()) {
    if (!is_ident_char(expr[i])) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < expr.size() && is_ident_char(expr[i])) ++i;
    const std::string_view ident = expr.substr(start, i - start);
    if (std::isdigit(static_cast<unsigned char>(ident[0])) != 0) continue;  // literal
    if (ident.size() >= 2 && ident[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(ident[1])) != 0) {
      continue;  // kConstant convention
    }
    if (ident == "sizeof" || ident == "std" || ident == "size_t" || ident == "uint8_t" ||
        ident == "uint16_t" || ident == "uint32_t" || ident == "uint64_t" ||
        ident == "static_cast" || ident == "byte") {
      continue;
    }
    return true;
  }
  return false;
}

// --- the scanner -----------------------------------------------------------

const std::vector<std::string> kConsumingMethods = {
    "u8", "u16", "u32", "u64", "u16_le", "u32_le", "u64_le", "ascii", "bytes"};

class FileScanner {
 public:
  FileScanner(std::string file, const std::vector<std::string>& raw, std::vector<Finding>& out)
      : file_(std::move(file)), src_(strip_comments(raw)), findings_(out) {}

  void run() {
    for (std::size_t li = 0; li < src_.lines.size(); ++li) {
      const std::string& line = src_.lines[li];
      const int line_no = static_cast<int>(li) + 1;
      scan_raw_bytes(line, li, line_no);
      scan_reader_decls(line, li, line_no);
      scan_reader_uses(line, li, line_no);
      scan_subspan(line, li, line_no);
      scan_bounds_evidence(line);
      process_braces(line, line_no);
    }
    // EOF closes everything still open (unbalanced files).
    while (!blocks_.empty()) close_block();
    finish_readers(0);
  }

 private:
  struct Block {
    int func_id = -1;        // index into funcs_, or -1 outside any function
    int depth_before = 0;    // brace depth before this block opened
  };
  struct Func {
    bool bounds_evidence = false;
    std::vector<Finding> pending;  // unchecked-length-index awaiting evidence
  };
  struct Reader {
    std::string name;
    int scope_close_depth = 0;  // dead once depth_ <= this
    int first_use_line = 0;
    int consuming_uses = 0;
    bool has_ok = false;
    bool suppressed = false;
  };

  bool allowed(std::size_t li, const std::string& rule) const {
    if (src_.allows[li].count(rule) > 0) return true;
    // An allow on the immediately preceding line also covers this one.
    return li > 0 && src_.allows[li - 1].count(rule) > 0;
  }

  int current_func() const { return blocks_.empty() ? -1 : blocks_.back().func_id; }

  void emit(int line_no, const std::string& rule, std::string message) {
    findings_.push_back(Finding{file_, line_no, rule, std::move(message)});
  }

  void scan_raw_bytes(const std::string& line, std::size_t li, int line_no) {
    if (find_token(line, "memcpy(") != std::string::npos && !allowed(li, "raw-memcpy")) {
      emit(line_no, "raw-memcpy",
           "raw memcpy on buffers; use WireWriter/WireReader, which are bounds-checked");
    }
    if (line.find("reinterpret_cast<") != std::string::npos && !allowed(li, "raw-cast")) {
      emit(line_no, "raw-cast",
           "reinterpret_cast on frame bytes; decode through WireReader instead");
    }
  }

  void scan_reader_decls(const std::string& line, std::size_t li, int line_no) {
    std::size_t pos = 0;
    while ((pos = find_token(line, "WireReader", pos)) != std::string::npos) {
      std::size_t i = pos + std::string_view{"WireReader"}.size();
      while (i < line.size() && (std::isspace(static_cast<unsigned char>(line[i])) != 0 ||
                                 line[i] == '&')) {
        ++i;
      }
      const std::size_t start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      pos = i;
      if (i == start) continue;  // `class WireReader {`, `WireReader(` etc.
      Reader r;
      r.name = line.substr(start, i - start);
      // A declaration line that opens a lasting brace (function signature)
      // scopes the reader to that body; a local scopes it to its own depth.
      const int opens = net_braces(line);
      r.scope_close_depth = opens > 0 ? depth_ : depth_ - 1;
      r.first_use_line = line_no;
      r.suppressed = allowed(li, "unchecked-reader");
      readers_.push_back(std::move(r));
    }
  }

  void scan_reader_uses(const std::string& line, std::size_t /*li*/, int line_no) {
    for (Reader& r : readers_) {
      const std::string ok_call = r.name + ".ok()";
      if (find_token(line, ok_call) != std::string::npos) r.has_ok = true;
      for (const auto& method : kConsumingMethods) {
        const std::string call = r.name + "." + method + "(";
        if (find_token(line, call) != std::string::npos) {
          if (r.consuming_uses++ == 0) r.first_use_line = line_no;
        }
      }
    }
  }

  void scan_subspan(const std::string& line, std::size_t li, int line_no) {
    std::size_t pos = 0;
    while ((pos = line.find(".subspan(", pos)) != std::string::npos) {
      const std::size_t open = pos + std::string_view{".subspan("}.size() - 1;
      pos = open;
      // Balance parens to the end of the argument list (single line only;
      // an unterminated list is treated as risky, which is conservative).
      int nest = 0;
      std::size_t end = open;
      for (; end < line.size(); ++end) {
        if (line[end] == '(') ++nest;
        if (line[end] == ')' && --nest == 0) break;
      }
      const std::string_view args =
          std::string_view{line}.substr(open + 1, end > open ? end - open - 1 : line.size());
      if (!has_runtime_identifier(args)) continue;
      if (allowed(li, "unchecked-length-index")) continue;
      Finding f{file_, line_no, "unchecked-length-index",
                "subspan indexed by a runtime value in a function with no .size()/remaining() "
                "bounds comparison"};
      const int fid = current_func();
      if (fid < 0) {
        findings_.push_back(std::move(f));
      } else {
        funcs_[static_cast<std::size_t>(fid)].pending.push_back(std::move(f));
      }
    }
  }

  void scan_bounds_evidence(const std::string& line) {
    const int fid = current_func();
    if (fid < 0) return;
    if (line.find("remaining(") != std::string::npos || line.find(".size()") != std::string::npos) {
      funcs_[static_cast<std::size_t>(fid)].bounds_evidence = true;
    }
  }

  static int net_braces(const std::string& line) {
    int n = 0;
    for (char c : line) {
      if (c == '{') ++n;
      if (c == '}') --n;
    }
    return n;
  }

  void process_braces(const std::string& line, int /*line_no*/) {
    for (char c : line) {
      if (c == '{') {
        Block b;
        b.depth_before = depth_;
        if (current_func() >= 0) {
          b.func_id = current_func();  // nested scope or lambda: inherit
        } else if (line.find('(') != std::string::npos && !starts_with_keyword(line)) {
          b.func_id = static_cast<int>(funcs_.size());
          funcs_.emplace_back();
        }
        blocks_.push_back(b);
        ++depth_;
      } else if (c == '}') {
        if (!blocks_.empty()) close_block();
        if (depth_ > 0) --depth_;
        finish_readers(depth_);
      }
    }
  }

  void close_block() {
    const Block b = blocks_.back();
    blocks_.pop_back();
    // Resolve this function's pending subspan findings when its outermost
    // block closes (the func_id owned by this block, not inherited).
    if (b.func_id >= 0 && (blocks_.empty() || blocks_.back().func_id != b.func_id)) {
      Func& f = funcs_[static_cast<std::size_t>(b.func_id)];
      if (!f.bounds_evidence) {
        for (auto& finding : f.pending) findings_.push_back(std::move(finding));
      }
      f.pending.clear();
    }
  }

  void finish_readers(int depth_now) {
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (depth_now <= it->scope_close_depth) {
        if (it->consuming_uses > 0 && !it->has_ok && !it->suppressed) {
          emit(it->first_use_line, "unchecked-reader",
               "WireReader '" + it->name +
                   "' is consumed but never checked with .ok() in this function");
        }
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::string file_;
  CleanSource src_;
  std::vector<Finding>& findings_;
  std::vector<Block> blocks_;
  std::vector<Func> funcs_;
  std::vector<Reader> readers_;
  int depth_ = 0;
};

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

void scan_file(const std::string& name, const std::vector<std::string>& lines,
               std::vector<Finding>& findings) {
  FileScanner scanner{name, lines, findings};
  scanner.run();
}

bool scannable(const std::filesystem::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

// --- self test -------------------------------------------------------------

struct Snippet {
  const char* name;
  const char* code;
  int expected_findings;
};

const Snippet kSnippets[] = {
    {"unchecked reader flagged",
     R"(namespace t {
std::optional<Foo> decode(net::WireReader& r) {
  Foo f;
  f.a = r.u32_le();
  return f;
}
}  // namespace t
)",
     1},
    {"checked reader passes",
     R"(namespace t {
std::optional<Foo> decode(net::WireReader& r) {
  Foo f;
  f.a = r.u32_le();
  if (!r.ok()) return std::nullopt;
  return f;
}
}  // namespace t
)",
     0},
    {"local reader checked in same function passes",
     R"(namespace t {
int peek(std::span<const std::byte> payload) {
  net::WireReader r{payload};
  const auto v = r.u16_le();
  return r.ok() ? int{v} : -1;
}
}  // namespace t
)",
     0},
    {"two readers tracked independently",
     R"(namespace t {
void f(net::WireReader& a) {
  (void)a.u8();
}
void g(net::WireReader& b) {
  (void)b.u8();
  if (!b.ok()) return;
}
}  // namespace t
)",
     1},
    {"delegating without consuming passes",
     R"(namespace t {
std::optional<Frame> parse(std::span<const std::byte> data) {
  net::WireReader r{data};
  auto eth = EthernetHeader::decode(r);
  if (!eth) return std::nullopt;
  return Frame{*eth};
}
}  // namespace t
)",
     0},
    {"suppressed reader passes",
     R"(namespace t {
Symbol read_symbol(net::WireReader& r) {  // tsn-lint: allow(unchecked-reader)
  return Symbol{r.ascii(6)};
}
}  // namespace t
)",
     0},
    {"memcpy flagged",
     R"(namespace t {
void copy(std::byte* dst, const std::byte* src) {
  std::memcpy(dst, src, 16);
}
}  // namespace t
)",
     1},
    {"allowed memcpy passes",
     R"(namespace t {
void copy(std::byte* dst, const std::byte* src) {
  std::memcpy(dst, src, 16);  // tsn-lint: allow(raw-memcpy)
}
}  // namespace t
)",
     0},
    {"reinterpret_cast flagged",
     R"(namespace t {
const char* view(std::span<const std::byte> b) {
  return reinterpret_cast<const char*>(b.data());
}
}  // namespace t
)",
     1},
    {"commented-out cast ignored",
     R"(namespace t {
// return reinterpret_cast<const char*>(b.data());
int f() { return 0; }
}  // namespace t
)",
     0},
    {"unchecked length subspan flagged",
     R"(namespace t {
std::span<const std::byte> body(std::span<const std::byte> data, std::size_t length) {
  return data.subspan(4, length);
}
}  // namespace t
)",
     1},
    {"length subspan with bounds evidence passes",
     R"(namespace t {
std::span<const std::byte> body(std::span<const std::byte> data, std::size_t length) {
  if (4 + length > data.size()) return {};
  return data.subspan(4, length);
}
}  // namespace t
)",
     0},
    {"constant subspan passes",
     R"(namespace t {
std::span<const std::byte> body(std::span<const std::byte> data) {
  return data.subspan(kHeaderSize, 8);
}
}  // namespace t
)",
     0},
    {"string literal containing fake code ignored",
     R"(namespace t {
const char* kDoc = "call memcpy( and reinterpret_cast< for fun";
int f() { return 0; }
}  // namespace t
)",
     0},
};

int run_self_test() {
  int failures = 0;
  for (const Snippet& s : kSnippets) {
    std::vector<Finding> findings;
    scan_file(s.name, split_lines(s.code), findings);
    if (static_cast<int>(findings.size()) != s.expected_findings) {
      std::cerr << "self-test FAILED: '" << s.name << "': expected " << s.expected_findings
                << " finding(s), got " << findings.size() << "\n";
      for (const auto& f : findings) {
        std::cerr << "    " << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
                  << "\n";
      }
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "tsn_lint self-test: " << std::size(kSnippets) << " snippets ok\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return run_self_test();
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tsn_lint [--self-test] <file-or-dir>...\n"
                   "scans .cpp/.hpp files for wire-safety violations; exits nonzero on findings\n";
      return 0;
    }
    targets.emplace_back(arg);
  }
  if (targets.empty()) {
    std::cerr << "tsn_lint: no targets given (try --help)\n";
    return 2;
  }

  std::vector<std::filesystem::path> files;
  for (const auto& target : targets) {
    std::filesystem::path p{target};
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && scannable(entry.path())) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::cerr << "tsn_lint: no such file or directory: " << target << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    scan_file(file.string(), read_lines(file), findings);
  }
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  std::cout << "tsn_lint: scanned " << files.size() << " files, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
