#include "report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "json_mini.hpp"
#include "telemetry/json.hpp"

namespace tsn::analyze {

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      // wire safety
      "unchecked-reader", "raw-memcpy", "raw-cast", "unchecked-length-index",
      // determinism
      "wall-clock", "unseeded-random", "unordered-iter", "pointer-identity",
      // hot path
      "hotpath-alloc",
      // layering
      "include-missing", "include-cycle", "layer-violation", "unknown-module"};
  return kRules;
}

namespace {

struct RuleCounts {
  int active = 0;
  int allowed = 0;
  int baselined = 0;
};

std::map<std::string, RuleCounts> tally(const RunReport& report) {
  std::map<std::string, RuleCounts> counts;
  for (const auto& rule : all_rules()) counts[rule];  // stable zero rows
  for (const auto& f : report.active) ++counts[f.rule].active;
  for (const auto& [rule, n] : report.sink.suppressed) counts[rule].allowed += n;
  for (const auto& entry : report.baseline.entries) {
    counts[entry.rule].baselined += entry.matched;
  }
  return counts;
}

}  // namespace

std::size_t print_summary(const RunReport& report) {
  for (const auto& f : report.active) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str());
  }
  std::printf("\n%-24s %9s %9s %10s\n", "rule", "findings", "allowed", "baselined");
  for (const auto& [rule, c] : tally(report)) {
    std::printf("%-24s %9d %9d %10d\n", rule.c_str(), c.active, c.allowed, c.baselined);
  }
  for (const auto& entry : report.baseline.entries) {
    if (entry.matched < entry.count) {
      std::printf("note: stale baseline entry %s [%s]: admits %d, matched %d — shrink it\n",
                  entry.file.c_str(), entry.rule.c_str(), entry.count, entry.matched);
    }
  }
  std::printf("tsn_analyze: scanned %zu files, %zu finding(s)\n", report.files_scanned,
              report.active.size());
  return report.active.size();
}

std::string findings_to_json(const RunReport& report) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.field("schema", std::string_view{kFindingsSchema});
  w.field("root", report.root);
  w.field("files_scanned", static_cast<std::uint64_t>(report.files_scanned));
  w.key("findings");
  w.begin_array();
  for (const auto& f : report.active) {
    w.begin_object();
    w.field("file", f.file);
    w.field("line", static_cast<std::int64_t>(f.line));
    w.field("rule", f.rule);
    w.field("message", f.message);
    w.end_object();
  }
  w.end_array();
  w.key("summary");
  w.begin_array();
  for (const auto& [rule, c] : tally(report)) {
    w.begin_object();
    w.field("rule", rule);
    w.field("findings", static_cast<std::int64_t>(c.active));
    w.field("allowed", static_cast<std::int64_t>(c.allowed));
    w.field("baselined", static_cast<std::int64_t>(c.baselined));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out.push_back('\n');
  return out;
}

bool validate_findings_json(const std::string& text, std::string* error) {
  std::string parse_error;
  const auto doc = parse_json(text, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = "not valid JSON: " + parse_error;
    return false;
  }
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const JsonValue* schema = doc->get("schema");
  if (schema == nullptr || !schema->is_string() || schema->string != kFindingsSchema) {
    return fail("missing or wrong 'schema' (want tsn-analyze-findings-v1)");
  }
  if (const JsonValue* v = doc->get("root"); v == nullptr || !v->is_string()) {
    return fail("missing string 'root'");
  }
  if (const JsonValue* v = doc->get("files_scanned"); v == nullptr || !v->is_number()) {
    return fail("missing numeric 'files_scanned'");
  }
  const JsonValue* findings = doc->get("findings");
  if (findings == nullptr || !findings->is_array()) return fail("missing 'findings' array");
  for (const JsonValue& f : *findings->array) {
    if (f.get("file") == nullptr || !f.get("file")->is_string() || f.get("line") == nullptr ||
        !f.get("line")->is_number() || f.get("rule") == nullptr ||
        !f.get("rule")->is_string() || f.get("message") == nullptr ||
        !f.get("message")->is_string()) {
      return fail("finding entries need file/line/rule/message");
    }
  }
  const JsonValue* summary = doc->get("summary");
  if (summary == nullptr || !summary->is_array()) return fail("missing 'summary' array");
  std::set<std::string> seen;
  for (const JsonValue& row : *summary->array) {
    const JsonValue* rule = row.get("rule");
    if (rule == nullptr || !rule->is_string() || row.get("findings") == nullptr ||
        !row.get("findings")->is_number()) {
      return fail("summary rows need rule/findings");
    }
    seen.insert(rule->string);
  }
  for (const auto& rule : all_rules()) {
    if (seen.count(rule) == 0) return fail("summary is missing rule row '" + rule + "'");
  }
  return true;
}

}  // namespace tsn::analyze
