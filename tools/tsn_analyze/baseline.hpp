// Committed-baseline suppression ("tsn-analyze-baseline-v1").
//
// Inline `tsn-lint: allow(rule)` comments are the preferred suppression —
// the audit lives next to the code. The baseline file exists for findings
// that cannot carry a comment (e.g. a rule tightened over a wide legacy
// surface in one PR): each entry admits up to `count` findings of `rule` in
// `file` (root-relative path). Entries that match nothing are reported as
// stale so the baseline only ever shrinks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace tsn::analyze {

struct BaselineEntry {
  std::string file;  // root-relative, '/'-separated
  std::string rule;
  int count = 1;
  int matched = 0;  // filled by apply_baseline
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

// Parses a baseline file. Returns nullopt (with a message in `error`) on
// malformed JSON or a wrong schema id.
std::optional<Baseline> load_baseline(const std::string& path, std::string* error);

// Partitions findings: entries absorb up to `count` matching findings each
// (by root-relative file + rule, in emission order); the remainder is
// returned as still-active. `rel` maps a finding's display path to the
// root-relative form used in baseline entries.
std::vector<Finding> apply_baseline(std::vector<Finding> findings, Baseline& baseline,
                                    const std::string& display_prefix);

}  // namespace tsn::analyze
