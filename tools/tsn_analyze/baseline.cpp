#include "baseline.hpp"

#include <fstream>
#include <sstream>

#include "json_mini.hpp"

namespace tsn::analyze {

std::optional<Baseline> load_baseline(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open baseline file: " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  const auto doc = parse_json(buf.str(), &parse_error);
  if (!doc) {
    if (error != nullptr) *error = "baseline parse error: " + parse_error;
    return std::nullopt;
  }
  const JsonValue* schema = doc->get("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "tsn-analyze-baseline-v1") {
    if (error != nullptr) *error = "baseline schema must be tsn-analyze-baseline-v1";
    return std::nullopt;
  }
  const JsonValue* entries = doc->get("entries");
  if (entries == nullptr || !entries->is_array()) {
    if (error != nullptr) *error = "baseline must have an 'entries' array";
    return std::nullopt;
  }
  Baseline out;
  for (const JsonValue& item : *entries->array) {
    const JsonValue* file = item.get("file");
    const JsonValue* rule = item.get("rule");
    if (file == nullptr || !file->is_string() || rule == nullptr || !rule->is_string()) {
      if (error != nullptr) *error = "baseline entries need string 'file' and 'rule'";
      return std::nullopt;
    }
    BaselineEntry entry;
    entry.file = file->string;
    entry.rule = rule->string;
    if (const JsonValue* count = item.get("count"); count != nullptr && count->is_number()) {
      entry.count = static_cast<int>(count->number);
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings, Baseline& baseline,
                                    const std::string& display_prefix) {
  const std::string prefix = display_prefix.empty() ? "" : display_prefix + "/";
  std::vector<Finding> active;
  for (auto& finding : findings) {
    std::string rel = finding.file;
    if (!prefix.empty() && rel.compare(0, prefix.size(), prefix) == 0) {
      rel = rel.substr(prefix.size());
    }
    bool absorbed = false;
    for (auto& entry : baseline.entries) {
      if (entry.rule == finding.rule && entry.file == rel && entry.matched < entry.count) {
        ++entry.matched;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) active.push_back(std::move(finding));
  }
  return active;
}

}  // namespace tsn::analyze
