// Wire-safety rules — the original tsn_lint family, scoped to the
// frame-handling subsystems (src/proto, src/net, src/mcast):
//
//   unchecked-reader        a function that consumes fields from a
//                           net::WireReader must check `.ok()` on that reader
//                           somewhere in the same function (the sticky
//                           failure flag makes one deferred check enough).
//   raw-memcpy / raw-cast   no `memcpy` or `reinterpret_cast` on frame
//                           buffers; byte access goes through WireReader /
//                           WireWriter, which are bounds-checked.
//   unchecked-length-index  a `.subspan(...)` whose arguments involve
//                           runtime values (e.g. a wire length field) must
//                           sit in a function that compares against
//                           `.size()` or `remaining()` first.
#include <cctype>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "rules.hpp"

namespace tsn::analyze {

namespace {

// Identifier-wise scan of an expression: true if any identifier looks like a
// runtime value, i.e. is not a numeric literal, kConstant, sizeof, or a
// std:: qualifier.
bool has_runtime_identifier(std::string_view expr) {
  std::size_t i = 0;
  while (i < expr.size()) {
    if (!is_ident_char(expr[i])) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < expr.size() && is_ident_char(expr[i])) ++i;
    const std::string_view ident = expr.substr(start, i - start);
    if (std::isdigit(static_cast<unsigned char>(ident[0])) != 0) continue;  // literal
    if (ident.size() >= 2 && ident[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(ident[1])) != 0) {
      continue;  // kConstant convention
    }
    if (ident == "sizeof" || ident == "std" || ident == "size_t" || ident == "uint8_t" ||
        ident == "uint16_t" || ident == "uint32_t" || ident == "uint64_t" ||
        ident == "static_cast" || ident == "byte") {
      continue;
    }
    return true;
  }
  return false;
}

const std::vector<std::string> kConsumingMethods = {
    "u8", "u16", "u32", "u64", "u16_le", "u32_le", "u64_le", "ascii", "bytes"};

class WireScanner {
 public:
  WireScanner(std::string file, const std::vector<std::string>& raw, Sink& sink)
      : file_(std::move(file)), src_(strip_comments(raw)), sink_(sink) {}

  void run() {
    for (std::size_t li = 0; li < src_.lines.size(); ++li) {
      const std::string& line = src_.lines[li];
      const int line_no = static_cast<int>(li) + 1;
      scan_raw_bytes(line, li, line_no);
      scan_reader_decls(line, li, line_no);
      scan_reader_uses(line, li, line_no);
      scan_subspan(line, li, line_no);
      scan_bounds_evidence(line);
      process_braces(line, line_no);
    }
    // EOF closes everything still open (unbalanced files).
    while (!blocks_.empty()) close_block();
    finish_readers(0);
  }

 private:
  struct Block {
    int func_id = -1;        // index into funcs_, or -1 outside any function
    int depth_before = 0;    // brace depth before this block opened
  };
  struct Func {
    bool bounds_evidence = false;
    std::vector<Finding> pending;  // unchecked-length-index awaiting evidence
  };
  struct Reader {
    std::string name;
    int scope_close_depth = 0;  // dead once depth_ <= this
    int first_use_line = 0;
    int consuming_uses = 0;
    bool has_ok = false;
    bool suppressed = false;
  };

  bool allowed(std::size_t li, const std::string& rule) const {
    if (src_.allows[li].count(rule) > 0) return true;
    // An allow on the immediately preceding line also covers this one.
    return li > 0 && src_.allows[li - 1].count(rule) > 0;
  }

  int current_func() const { return blocks_.empty() ? -1 : blocks_.back().func_id; }

  void emit(int line_no, const std::string& rule, std::string message) {
    sink_.emit(Finding{file_, line_no, rule, std::move(message)});
  }

  void scan_raw_bytes(const std::string& line, std::size_t li, int line_no) {
    if (find_token(line, "memcpy(") != std::string::npos) {
      if (allowed(li, "raw-memcpy")) {
        sink_.suppress("raw-memcpy");
      } else {
        emit(line_no, "raw-memcpy",
             "raw memcpy on buffers; use WireWriter/WireReader, which are bounds-checked");
      }
    }
    if (line.find("reinterpret_cast<") != std::string::npos) {
      if (allowed(li, "raw-cast")) {
        sink_.suppress("raw-cast");
      } else {
        emit(line_no, "raw-cast",
             "reinterpret_cast on frame bytes; decode through WireReader instead");
      }
    }
  }

  void scan_reader_decls(const std::string& line, std::size_t li, int line_no) {
    std::size_t pos = 0;
    while ((pos = find_token(line, "WireReader", pos)) != std::string::npos) {
      std::size_t i = pos + std::string_view{"WireReader"}.size();
      while (i < line.size() && (std::isspace(static_cast<unsigned char>(line[i])) != 0 ||
                                 line[i] == '&')) {
        ++i;
      }
      const std::size_t start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      pos = i;
      if (i == start) continue;  // `class WireReader {`, `WireReader(` etc.
      Reader r;
      r.name = line.substr(start, i - start);
      // A declaration line that opens a lasting brace (function signature)
      // scopes the reader to that body; a local scopes it to its own depth.
      const int opens = net_braces(line);
      r.scope_close_depth = opens > 0 ? depth_ : depth_ - 1;
      r.first_use_line = line_no;
      r.suppressed = allowed(li, "unchecked-reader");
      readers_.push_back(std::move(r));
    }
  }

  void scan_reader_uses(const std::string& line, std::size_t /*li*/, int line_no) {
    for (Reader& r : readers_) {
      const std::string ok_call = r.name + ".ok()";
      if (find_token(line, ok_call) != std::string::npos) r.has_ok = true;
      for (const auto& method : kConsumingMethods) {
        const std::string call = r.name + "." + method + "(";
        if (find_token(line, call) != std::string::npos) {
          if (r.consuming_uses++ == 0) r.first_use_line = line_no;
        }
      }
    }
  }

  void scan_subspan(const std::string& line, std::size_t li, int line_no) {
    std::size_t pos = 0;
    while ((pos = line.find(".subspan(", pos)) != std::string::npos) {
      const std::size_t open = pos + std::string_view{".subspan("}.size() - 1;
      pos = open;
      // Balance parens to the end of the argument list (single line only;
      // an unterminated list is treated as risky, which is conservative).
      int nest = 0;
      std::size_t end = open;
      for (; end < line.size(); ++end) {
        if (line[end] == '(') ++nest;
        if (line[end] == ')' && --nest == 0) break;
      }
      const std::string_view args =
          std::string_view{line}.substr(open + 1, end > open ? end - open - 1 : line.size());
      if (!has_runtime_identifier(args)) continue;
      if (allowed(li, "unchecked-length-index")) {
        sink_.suppress("unchecked-length-index");
        continue;
      }
      Finding f{file_, line_no, "unchecked-length-index",
                "subspan indexed by a runtime value in a function with no .size()/remaining() "
                "bounds comparison"};
      const int fid = current_func();
      if (fid < 0) {
        sink_.emit(std::move(f));
      } else {
        funcs_[static_cast<std::size_t>(fid)].pending.push_back(std::move(f));
      }
    }
  }

  void scan_bounds_evidence(const std::string& line) {
    const int fid = current_func();
    if (fid < 0) return;
    if (line.find("remaining(") != std::string::npos || line.find(".size()") != std::string::npos) {
      funcs_[static_cast<std::size_t>(fid)].bounds_evidence = true;
    }
  }

  static int net_braces(const std::string& line) {
    int n = 0;
    for (char c : line) {
      if (c == '{') ++n;
      if (c == '}') --n;
    }
    return n;
  }

  void process_braces(const std::string& line, int /*line_no*/) {
    for (char c : line) {
      if (c == '{') {
        Block b;
        b.depth_before = depth_;
        if (current_func() >= 0) {
          b.func_id = current_func();  // nested scope or lambda: inherit
        } else if (line.find('(') != std::string::npos && !starts_with_keyword(line)) {
          b.func_id = static_cast<int>(funcs_.size());
          funcs_.emplace_back();
        }
        blocks_.push_back(b);
        ++depth_;
      } else if (c == '}') {
        if (!blocks_.empty()) close_block();
        if (depth_ > 0) --depth_;
        finish_readers(depth_);
      }
    }
  }

  void close_block() {
    const Block b = blocks_.back();
    blocks_.pop_back();
    // Resolve this function's pending subspan findings when its outermost
    // block closes (the func_id owned by this block, not inherited).
    if (b.func_id >= 0 && (blocks_.empty() || blocks_.back().func_id != b.func_id)) {
      Func& f = funcs_[static_cast<std::size_t>(b.func_id)];
      if (!f.bounds_evidence) {
        for (auto& finding : f.pending) sink_.emit(std::move(finding));
      }
      f.pending.clear();
    }
  }

  void finish_readers(int depth_now) {
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (depth_now <= it->scope_close_depth) {
        if (it->consuming_uses > 0 && !it->has_ok) {
          if (it->suppressed) {
            sink_.suppress("unchecked-reader");
          } else {
            emit(it->first_use_line, "unchecked-reader",
                 "WireReader '" + it->name +
                     "' is consumed but never checked with .ok() in this function");
          }
        }
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::string file_;
  CleanSource src_;
  Sink& sink_;
  std::vector<Block> blocks_;
  std::vector<Func> funcs_;
  std::vector<Reader> readers_;
  int depth_ = 0;
};

}  // namespace

void scan_wire(const std::string& file, const std::vector<std::string>& raw, Sink& sink) {
  WireScanner scanner{file, raw, sink};
  scanner.run();
}

}  // namespace tsn::analyze
