#pragma once

#include <string>

namespace tsn::analyze {

// Runs the on-disk corpus under `corpus_dir` (tools/tsn_analyze/corpus):
// one directory per rule, `good_*` files/trees must scan clean and `bad_*`
// files/trees must produce exactly the findings marked inline with
// `lint-expect: <rule>` comments. Returns a process exit code.
int run_self_test(const std::string& corpus_dir);

}  // namespace tsn::analyze
