// Findings reporting: the per-rule summary table printed at the end of every
// run, the machine-readable JSON artifact ("tsn-analyze-findings-v1",
// mirroring the tsn::bench::Report pattern — deterministic writer, versioned
// schema, one artifact per run), and the structural validator CI uses to
// keep the artifact contract honest.
#pragma once

#include <string>
#include <vector>

#include "analyzer.hpp"
#include "baseline.hpp"

namespace tsn::analyze {

inline constexpr std::string_view kFindingsSchema = "tsn-analyze-findings-v1";

struct RunReport {
  std::string root;               // scan root as given on the command line
  std::size_t files_scanned = 0;
  std::vector<Finding> active;    // after baseline subtraction
  Sink sink;                      // raw findings + allow() counts
  Baseline baseline;              // entries with match counts filled in
};

// All rules the analyzer can emit, in family order (used to print zero rows
// so the summary shape is stable).
const std::vector<std::string>& all_rules();

// Human summary: per-rule findings / allow() suppressions / baselined table
// plus stale-baseline warnings. Returns the number of active findings.
std::size_t print_summary(const RunReport& report);

// Deterministic JSON artifact.
std::string findings_to_json(const RunReport& report);

// Structural schema check of a findings artifact; returns true when `text`
// is valid "tsn-analyze-findings-v1", else fills `error`.
bool validate_findings_json(const std::string& text, std::string* error);

}  // namespace tsn::analyze
