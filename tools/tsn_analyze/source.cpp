#include "analyzer.hpp"

#include <cctype>
#include <fstream>

namespace tsn::analyze {

namespace {

void harvest_allows(const std::string& raw, std::set<std::string>& out) {
  const std::string_view key = "tsn-lint: allow(";
  std::size_t pos = 0;
  while ((pos = raw.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t close = raw.find(')', pos);
    if (close == std::string::npos) break;
    out.insert(raw.substr(pos, close - pos));
    pos = close + 1;
  }
}

bool has_hotpath_mark(const std::string& raw) {
  // `tsn-lint: hotpath` marks the next (or enclosing) function as a
  // hot-path region; `hotpath-alloc` in an allow() must not match.
  std::size_t pos = 0;
  const std::string_view key = "tsn-lint: hotpath";
  while ((pos = raw.find(key, pos)) != std::string::npos) {
    const std::size_t end = pos + key.size();
    if (end >= raw.size() || !is_ident_char(raw[end])) {
      if (end >= raw.size() || raw[end] != '-') return true;
    }
    pos = end;
  }
  return false;
}

}  // namespace

CleanSource strip_comments(const std::vector<std::string>& raw) {
  CleanSource out;
  out.lines.resize(raw.size());
  out.allows.resize(raw.size());
  out.hotpath_marks.resize(raw.size(), false);
  bool in_block_comment = false;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    harvest_allows(line, out.allows[li]);
    out.hotpath_marks[li] = has_hotpath_mark(line);
    std::string& code = out.lines[li];
    code.reserve(line.size());
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      // Literal contents are blanked so tokens inside strings never match.
      if (in_string) {
        if (c == '\\' && i + 1 < line.size()) {
          ++i;
        } else if (c == '"') {
          in_string = false;
          code.push_back(c);
        }
        continue;
      }
      if (in_char) {
        if (c == '\\' && i + 1 < line.size()) {
          ++i;
        } else if (c == '\'') {
          in_char = false;
          code.push_back(c);
        }
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"') in_string = true;
      // Digit separators like 2'000 are not char literals.
      if (c == '\'' && (i == 0 || !std::isalnum(static_cast<unsigned char>(line[i - 1])))) {
        in_char = true;
      }
      code.push_back(c);
    }
  }
  return out;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_token(const std::string& line, std::string_view needle, std::size_t from) {
  std::size_t pos = from;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || !is_ident_char(line[pos - 1])) return pos;
    pos += needle.size();
  }
  return std::string::npos;
}

std::size_t find_word(const std::string& line, std::string_view needle, std::size_t from) {
  std::size_t pos = from;
  while ((pos = find_token(line, needle, pos)) != std::string::npos) {
    const std::size_t end = pos + needle.size();
    if (end >= line.size() || !is_ident_char(line[end])) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool starts_with_keyword(const std::string& line) {
  static const std::vector<std::string> kKeywords = {"if",     "for",   "while", "switch",
                                                    "else",   "catch", "do",    "return",
                                                    "namespace", "class", "struct", "enum",
                                                    "union"};
  std::size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) != 0) ++i;
  // A closing `} else {` also counts as control flow.
  while (i < line.size() &&
         (line[i] == '}' || std::isspace(static_cast<unsigned char>(line[i])) != 0)) {
    ++i;
  }
  for (const auto& kw : kKeywords) {
    if (line.compare(i, kw.size(), kw) == 0) {
      const std::size_t end = i + kw.size();
      if (end >= line.size() || !is_ident_char(line[end])) return true;
    }
  }
  return false;
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool scannable(const std::filesystem::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string relative_path(const std::filesystem::path& p, const std::filesystem::path& root) {
  const auto rel = p.lexically_relative(root);
  if (rel.empty() || *rel.begin() == "..") return p.generic_string();
  return rel.generic_string();
}

std::string module_of(std::string_view rel_path) {
  const std::size_t slash = rel_path.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string{rel_path.substr(0, slash)};
}

}  // namespace tsn::analyze
