#include "json_mini.hpp"

#include <cctype>
#include <cstdlib>

namespace tsn::analyze {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    auto v = parse_value();
    skip_ws();
    if (!v || pos_ != text_.size()) {
      if (error != nullptr) {
        *error = !v ? err_ : "trailing characters after JSON value";
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> fail(const char* why) {
    err_ = why;
    return std::nullopt;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  std::optional<std::string> parse_string_raw() {
    if (!consume('"')) {
      err_ = "expected string";
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u':
            // Findings/baseline content is ASCII; skip the 4 hex digits and
            // substitute '?' rather than decoding surrogate pairs.
            pos_ = pos_ + 4 <= text_.size() ? pos_ + 4 : text_.size();
            out.push_back('?');
            break;
          default: out.push_back(esc); break;
        }
      } else {
        out.push_back(c);
      }
    }
    err_ = "unterminated string";
    return std::nullopt;
  }

  std::optional<JsonValue> parse_string_value() {
    auto s = parse_string_raw();
    if (!s) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = std::move(*s);
    return v;
  }

  std::optional<JsonValue> parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return fail("expected true/false");
  }

  std::optional<JsonValue> parse_null() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return fail("expected null");
  }

  std::optional<JsonValue> parse_number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) return fail("expected a JSON value");
    pos_ += static_cast<std::size_t>(end - begin);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::optional<JsonValue> parse_array() {
    consume('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      auto item = parse_value();
      if (!item) return std::nullopt;
      v.array->push_back(std::move(*item));
      if (consume(']')) return v;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  std::optional<JsonValue> parse_object() {
    consume('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      auto key = parse_string_raw();
      if (!key) return std::nullopt;
      if (!consume(':')) return fail("expected ':' after object key");
      auto item = parse_value();
      if (!item) return std::nullopt;
      (*v.object)[std::move(*key)] = std::move(*item);
      if (consume('}')) return v;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser{text}.run(error);
}

}  // namespace tsn::analyze
