#include "include_graph.hpp"

#include <algorithm>

namespace tsn::analyze {

std::string LayerConfig::module_for(const std::string& rel_path) const {
  if (const auto it = file_overrides.find(rel_path); it != file_overrides.end()) {
    return it->second;
  }
  return module_of(rel_path);
}

std::set<std::string> LayerConfig::closure(const std::string& module) const {
  std::set<std::string> out;
  std::vector<std::string> work{module};
  while (!work.empty()) {
    const std::string m = work.back();
    work.pop_back();
    const auto it = deps.find(m);
    if (it == deps.end()) continue;
    for (const auto& dep : it->second) {
      if (out.insert(dep).second) work.push_back(dep);
    }
  }
  out.erase(module);
  return out;
}

std::string LayerConfig::validate() const {
  // DFS with colors over the declared dependency edges.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::string cycle;
  std::function<bool(const std::string&)> visit = [&](const std::string& m) {
    color[m] = 1;
    path.push_back(m);
    if (const auto it = deps.find(m); it != deps.end()) {
      for (const auto& dep : it->second) {
        if (color[dep] == 1) {
          cycle = dep;
          for (auto rit = path.rbegin(); rit != path.rend() && *rit != dep; ++rit) {
            cycle += " <- " + *rit;
          }
          return false;
        }
        if (color[dep] == 0 && !visit(dep)) return false;
      }
    }
    color[m] = 2;
    path.pop_back();
    return true;
  };
  for (const auto& [m, _] : deps) {
    if (color[m] == 0 && !visit(m)) return "layer table cycle: " + cycle;
  }
  return {};
}

const LayerConfig& default_layer_config() {
  // Mirrors src/CMakeLists.txt target_link_libraries, bottom-up. core is
  // split: core/check.hpp (the dependency-free assert vocabulary everything
  // uses) is the base layer, while the rest of core/ — the paper's analysis
  // models — sits on top of the simulation stack.
  static const LayerConfig config = [] {
    LayerConfig c;
    c.deps["core.base"] = {};
    c.deps["sim"] = {"core.base"};
    c.deps["telemetry"] = {"sim"};
    c.deps["net"] = {"sim", "telemetry"};
    c.deps["mcast"] = {"net"};
    c.deps["l1s"] = {"net"};
    c.deps["proto"] = {"net"};
    c.deps["l2"] = {"mcast"};
    c.deps["fault"] = {"l2"};
    c.deps["wan"] = {"fault"};
    c.deps["capture"] = {"net", "book"};
    c.deps["cluster"] = {"sim"};
    c.deps["book"] = {"proto"};
    c.deps["feed"] = {"proto"};
    c.deps["exchange"] = {"book"};
    c.deps["trading"] = {"proto", "mcast"};
    c.deps["topo"] = {"l2", "l1s"};
    c.deps["core"] = {"l2", "net"};
    c.deps["deploy"] = {"exchange", "trading", "topo", "wan"};
    c.file_overrides["core/check.hpp"] = "core.base";
    return c;
  }();
  return config;
}

IncludeGraph build_include_graph(const std::vector<std::string>& files,
                                 const FileProvider& provider) {
  IncludeGraph graph;
  std::set<std::string> known(files.begin(), files.end());
  for (const auto& file : files) {
    std::vector<std::string> lines;
    if (!provider(file, lines)) continue;
    auto& edges = graph.edges[file];  // every scanned file gets a node
    const CleanSource src = strip_comments(lines);
    for (std::size_t li = 0; li < src.lines.size(); ++li) {
      // Directive detection on the comment-stripped line (so `#include` in a
      // comment is ignored), but the target path is read from the raw line —
      // strip_comments blanks string-literal contents, quoted paths included.
      std::size_t i = 0;
      const std::string& stripped = src.lines[li];
      while (i < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[i])) != 0) {
        ++i;
      }
      if (stripped.compare(i, 8, "#include") != 0) continue;
      const std::string& line = lines[li];
      const std::size_t open = line.find_first_of("\"<", i + 8);
      if (open == std::string::npos || line[open] == '<') continue;  // angle: system
      const std::size_t close = line.find('"', open + 1);
      if (close == std::string::npos) continue;
      IncludeEdge edge;
      edge.to = line.substr(open + 1, close - open - 1);
      edge.line = static_cast<int>(li) + 1;
      edge.resolved = known.count(edge.to) > 0;
      edges.push_back(std::move(edge));
    }
  }
  return graph;
}

namespace {

std::string display(const std::string& prefix, const std::string& rel) {
  return prefix.empty() ? rel : prefix + "/" + rel;
}

}  // namespace

void check_includes(const IncludeGraph& graph, const std::string& display_prefix, Sink& sink) {
  // Missing quoted includes.
  for (const auto& [file, edges] : graph.edges) {
    for (const auto& edge : edges) {
      if (!edge.resolved) {
        sink.emit(Finding{display(display_prefix, file), edge.line, "include-missing",
                          "quoted include \"" + edge.to +
                              "\" does not resolve under the scan root; use <...> for system "
                              "headers or fix the path"});
      }
    }
  }
  // Cycle detection: DFS with colors over resolved edges, deterministic
  // because edges map is sorted and adjacency is in line order.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::function<void(const std::string&)> visit = [&](const std::string& file) {
    color[file] = 1;
    const auto it = graph.edges.find(file);
    if (it != graph.edges.end()) {
      for (const auto& edge : it->second) {
        if (!edge.resolved) continue;
        if (color[edge.to] == 1) {
          // Back edge: this include closes a cycle.
          sink.emit(Finding{display(display_prefix, file), edge.line, "include-cycle",
                            "including \"" + edge.to +
                                "\" closes an include cycle; break the cycle with a forward "
                                "declaration or by splitting the header"});
          continue;
        }
        if (color[edge.to] == 0) visit(edge.to);
      }
    }
    color[file] = 2;
  };
  for (const auto& [file, _] : graph.edges) {
    if (color[file] == 0) visit(file);
  }
}

void check_layers(const IncludeGraph& graph, const LayerConfig& config,
                  const std::string& display_prefix, Sink& sink) {
  for (const auto& [file, edges] : graph.edges) {
    const std::string from_module = config.module_for(file);
    if (config.deps.find(from_module) == config.deps.end()) {
      sink.emit(Finding{display(display_prefix, file), 1, "unknown-module",
                        "module '" + from_module +
                            "' has no layer assignment; add it to the layer table in "
                            "tools/tsn_analyze/include_graph.cpp"});
      continue;
    }
    const std::set<std::string> allowed = config.closure(from_module);
    for (const auto& edge : edges) {
      if (!edge.resolved) continue;  // reported as include-missing
      const std::string to_module = config.module_for(edge.to);
      if (to_module == from_module || allowed.count(to_module) > 0) continue;
      sink.emit(Finding{display(display_prefix, file), edge.line, "layer-violation",
                        "module '" + from_module + "' may not include '" + to_module +
                            "' (allowed: own module and transitive deps of '" + from_module +
                            "'); invert the dependency or move the shared type down"});
    }
  }
}

}  // namespace tsn::analyze
