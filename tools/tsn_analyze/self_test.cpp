// Corpus-driven self-test. Each rule owns a directory of on-disk snippets
// (tools/tsn_analyze/corpus/<rule>/), so adding a rule means adding files,
// not editing embedded string literals. A snippet line that should be
// flagged carries a `lint-expect: <rule>` comment; the self-test demands an
// exact match between expected and actual (line, rule) pairs in both
// directions, so a rule that goes blind AND a rule that starts over-firing
// both fail CI the same way code regressions do.
#include "self_test.hpp"

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "include_graph.hpp"
#include "rules.hpp"

namespace tsn::analyze {

namespace {

namespace fs = std::filesystem;

enum class Family { kWire, kDeterminism, kHotpath, kLayering };

const std::map<std::string, Family>& rule_families() {
  static const std::map<std::string, Family> kFamilies = {
      {"unchecked-reader", Family::kWire},
      {"raw-memcpy", Family::kWire},
      {"raw-cast", Family::kWire},
      {"unchecked-length-index", Family::kWire},
      {"wall-clock", Family::kDeterminism},
      {"unseeded-random", Family::kDeterminism},
      {"unordered-iter", Family::kDeterminism},
      {"pointer-identity", Family::kDeterminism},
      {"cross-domain-sched", Family::kDeterminism},
      {"hotpath-alloc", Family::kHotpath},
      {"layering", Family::kLayering},
  };
  return kFamilies;
}

// (file, line) -> expected rules, harvested from `lint-expect: <rule>`
// markers in the raw (pre-strip) lines.
using Expectations = std::map<std::pair<std::string, int>, std::multiset<std::string>>;

void harvest_expectations(const std::string& file, const std::vector<std::string>& raw,
                          Expectations& out) {
  const std::string_view key = "lint-expect: ";
  for (std::size_t li = 0; li < raw.size(); ++li) {
    std::size_t pos = 0;
    while ((pos = raw[li].find(key, pos)) != std::string::npos) {
      pos += key.size();
      std::size_t end = pos;
      while (end < raw[li].size() &&
             (is_ident_char(raw[li][end]) || raw[li][end] == '-')) {
        ++end;
      }
      if (end > pos) {
        out[{file, static_cast<int>(li) + 1}].insert(raw[li].substr(pos, end - pos));
      }
      pos = end;
    }
  }
}

// The synthetic layer table used by the layering corpus trees: a diamond
// a <- {b, c} <- d, so "b includes c", cycles, and unknown modules all have
// somewhere to be wrong.
LayerConfig corpus_layer_config() {
  LayerConfig c;
  c.deps["a"] = {};
  c.deps["b"] = {"a"};
  c.deps["c"] = {"a"};
  c.deps["d"] = {"b", "c"};
  return c;
}

struct CaseResult {
  int cases = 0;
  int failures = 0;
};

// Compares findings against expectations for one case (a file or a tree).
bool check_case(const std::string& name, const Expectations& expected,
                const std::vector<Finding>& findings) {
  Expectations actual;
  for (const auto& f : findings) {
    actual[{f.file, f.line}].insert(f.rule);
  }
  if (actual == expected) return true;
  std::cerr << "self-test FAILED: " << name << "\n";
  for (const auto& [where, rules] : expected) {
    for (const auto& rule : rules) {
      const auto it = actual.find(where);
      if (it == actual.end() || it->second.count(rule) == 0) {
        std::cerr << "    missing: " << where.first << ":" << where.second << " [" << rule
                  << "]\n";
      }
    }
  }
  for (const auto& f : findings) {
    const auto it = expected.find({f.file, f.line});
    if (it == expected.end() || it->second.count(f.rule) == 0) {
      std::cerr << "    unexpected: " << f.file << ":" << f.line << " [" << f.rule << "] "
                << f.message << "\n";
    }
  }
  return false;
}

void run_line_rule_case(const std::string& rule, Family family, const fs::path& rule_dir,
                        const fs::path& file, CaseResult& result) {
  ++result.cases;
  const std::string rel = relative_path(file, rule_dir);
  const std::vector<std::string> raw = read_lines(file);
  Expectations expected;
  harvest_expectations(rel, raw, expected);
  Sink sink;
  switch (family) {
    case Family::kWire:
      scan_wire(rel, raw, sink);
      break;
    case Family::kDeterminism:
      scan_determinism(rel, rel, raw, harvest_unordered_names(raw), sink);
      break;
    case Family::kHotpath:
      scan_hotpath(rel, raw, sink);
      break;
    case Family::kLayering:
      break;  // handled by run_layering_case
  }
  if (!check_case(rule + "/" + rel, expected, sink.findings)) ++result.failures;
}

void run_layering_case(const fs::path& tree, CaseResult& result) {
  ++result.cases;
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(tree)) {
    if (entry.is_regular_file() && scannable(entry.path())) {
      files.push_back(relative_path(entry.path(), tree));
    }
  }
  std::sort(files.begin(), files.end());
  Expectations expected;
  for (const auto& rel : files) {
    harvest_expectations(rel, read_lines(tree / rel), expected);
  }
  const auto provider = [&tree](const std::string& rel, std::vector<std::string>& lines) {
    const fs::path p = tree / rel;
    if (!fs::is_regular_file(p)) return false;
    lines = read_lines(p);
    return true;
  };
  const IncludeGraph graph = build_include_graph(files, provider);
  Sink sink;
  check_includes(graph, "", sink);
  check_layers(graph, corpus_layer_config(), "", sink);
  if (!check_case("layering/" + tree.filename().string(), expected, sink.findings)) {
    ++result.failures;
  }
}

}  // namespace

int run_self_test(const std::string& corpus_dir) {
  const fs::path root{corpus_dir};
  if (!fs::is_directory(root)) {
    std::cerr << "tsn_analyze --self-test: corpus directory not found: " << corpus_dir << "\n";
    return 2;
  }
  CaseResult result;
  std::set<std::string> rules_seen;
  std::vector<fs::path> rule_dirs;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (entry.is_directory()) rule_dirs.push_back(entry.path());
  }
  std::sort(rule_dirs.begin(), rule_dirs.end());
  for (const auto& rule_dir : rule_dirs) {
    const std::string rule = rule_dir.filename().string();
    const auto family_it = rule_families().find(rule);
    if (family_it == rule_families().end()) {
      std::cerr << "self-test FAILED: corpus directory '" << rule
                << "' does not name a known rule\n";
      ++result.failures;
      continue;
    }
    rules_seen.insert(rule);
    if (family_it->second == Family::kLayering) {
      std::vector<fs::path> trees;
      for (const auto& entry : fs::directory_iterator(rule_dir)) {
        if (entry.is_directory()) trees.push_back(entry.path());
      }
      std::sort(trees.begin(), trees.end());
      for (const auto& tree : trees) run_layering_case(tree, result);
      continue;
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(rule_dir)) {
      if (entry.is_regular_file() && scannable(entry.path())) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      run_line_rule_case(rule, family_it->second, rule_dir, file, result);
    }
  }
  // Every rule family must have corpus coverage; a rule added without
  // snippets is a self-test failure, not a silent gap.
  for (const auto& [rule, _] : rule_families()) {
    if (rules_seen.count(rule) == 0) {
      std::cerr << "self-test FAILED: no corpus directory for rule '" << rule << "'\n";
      ++result.failures;
    }
  }
  if (result.failures == 0) {
    std::cout << "tsn_analyze self-test: " << result.cases << " corpus cases ok\n";
    return 0;
  }
  std::cerr << "tsn_analyze self-test: " << result.failures << " of " << result.cases
            << " corpus cases failed\n";
  return 1;
}

}  // namespace tsn::analyze
