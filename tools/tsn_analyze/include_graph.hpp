// Include-graph construction and layering enforcement.
//
// Quoted includes (`#include "module/file.hpp"`) are project includes rooted
// at src/; angle includes are system headers and are ignored. The graph is
// checked three ways:
//
//   include-missing   a quoted include that does not resolve to a file under
//                     the root (typo, deleted header, or a system header
//                     quoted by mistake).
//   include-cycle     a cycle in the file-level include graph (self-include
//                     is the length-1 case). Headers are include-guarded so
//                     cycles "work" until they suddenly don't; they are
//                     always a layering smell.
//   layer-violation / a module may include only modules in the transitive
//   unknown-module    closure of its declared dependencies. The layer table
//                     mirrors src/CMakeLists.txt target_link_libraries and
//                     is validated acyclic on load; a directory not in the
//                     table fails the scan until it is assigned a layer.
//
// File contents are supplied by a provider callback so unit tests can run
// the builder over in-memory trees.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace tsn::analyze {

struct IncludeEdge {
  std::string to;    // root-relative target path
  int line = 0;      // line of the #include
  bool resolved = false;
};

struct IncludeGraph {
  // Root-relative path -> outgoing edges, sorted by path for determinism.
  std::map<std::string, std::vector<IncludeEdge>> edges;
};

// The layer table: module -> modules it may depend on directly (transitive
// closure is applied when checking). `file_overrides` reassigns individual
// files to a different (pseudo-)module — used to put core/check.hpp, the
// dependency-free assert header everything includes, in the base layer while
// the rest of core/ sits on top of the stack as the analysis layer.
struct LayerConfig {
  std::map<std::string, std::set<std::string>> deps;
  std::map<std::string, std::string> file_overrides;  // rel path -> module

  // Module of a root-relative file path, after overrides.
  [[nodiscard]] std::string module_for(const std::string& rel_path) const;
  // Transitive closure of `deps` for one module (excluding itself).
  [[nodiscard]] std::set<std::string> closure(const std::string& module) const;
  // Empty string when the declared dependency DAG is acyclic, else a
  // human-readable description of one cycle.
  [[nodiscard]] std::string validate() const;
};

// The repo's layer table (kept in lockstep with src/CMakeLists.txt).
const LayerConfig& default_layer_config();

// Reads lines for a root-relative path; returns false when the file does not
// exist. The filesystem provider is the production implementation.
using FileProvider =
    std::function<bool(const std::string& rel_path, std::vector<std::string>& lines)>;

// Builds the include graph for `files` (root-relative paths). Quoted
// includes that resolve to a path in `known` get resolved edges; unresolved
// quoted includes keep resolved=false (reported by check_includes). Angle
// includes are ignored.
IncludeGraph build_include_graph(const std::vector<std::string>& files,
                                 const FileProvider& provider);

// Emits include-missing and include-cycle findings. File names in findings
// are prefixed with `display_prefix` (the scan root) for clickable paths.
void check_includes(const IncludeGraph& graph, const std::string& display_prefix, Sink& sink);

// Emits layer-violation / unknown-module findings against `config`.
void check_layers(const IncludeGraph& graph, const LayerConfig& config,
                  const std::string& display_prefix, Sink& sink);

}  // namespace tsn::analyze
