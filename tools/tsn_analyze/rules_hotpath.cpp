// Hot-path allocation rules. Functions marked with `// tsn-lint: hotpath`
// (on the signature line or one of the lines directly above it) must not
// touch the heap once the pools are warm: PR 3's counting-allocator test
// proves this at runtime for the paths its drills happen to cover; this rule
// makes the discipline statically exhaustive for every marked region.
//
// Banned inside a hotpath function (rule `hotpath-alloc`):
//
//   new / delete            including `::operator new`; placement-new into a
//                           pool slot (`new (slot) T{...}`) is allowed.
//   malloc family           malloc / calloc / realloc / strdup.
//   make_unique/make_shared fresh control blocks; pooled allocate_shared
//                           through a PoolAllocator is the sanctioned idiom.
//   push_back/emplace_back  unless the same file reserves that container
//                           (`X.reserve(...)` anywhere in the file — warm-up
//                           methods like Engine::reserve count as evidence).
//   std::string and local   container construction (string, vector, map,
//                           set, deque, list, function) by value.
//
// Known limitation (documented in DESIGN.md): node allocations hidden behind
// map/list insert/emplace are invisible to a token scanner; the runtime
// counting-allocator test remains the backstop for those.
#include <cctype>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "rules.hpp"

namespace tsn::analyze {

namespace {

const std::string_view kLocalContainerTokens[] = {
    "std::vector", "std::map", "std::unordered_map", "std::set",
    "std::unordered_set", "std::deque", "std::list", "std::function",
};

class HotpathScanner {
 public:
  HotpathScanner(std::string file, const std::vector<std::string>& raw, Sink& sink)
      : file_(std::move(file)), src_(strip_comments(raw)), sink_(sink) {}

  void run() {
    harvest_reserve_evidence();
    for (std::size_t li = 0; li < src_.lines.size(); ++li) {
      const std::string& line = src_.lines[li];
      const int line_no = static_cast<int>(li) + 1;
      if (src_.hotpath_marks[li]) marker_armed_ = true;
      if (in_hotpath()) scan_line(line, li, line_no);
      process_braces(line);
    }
  }

 private:
  // Any `X.reserve(` in the file blesses push_back/emplace_back on `X`:
  // warm-up happens in a reserve() method, not next to every push.
  void harvest_reserve_evidence() {
    for (const auto& line : src_.lines) {
      std::size_t pos = 0;
      while ((pos = line.find(".reserve(", pos)) != std::string::npos) {
        std::size_t start = pos;
        while (start > 0 && is_ident_char(line[start - 1])) --start;
        if (start < pos) reserved_.insert(line.substr(start, pos - start));
        pos += 9;
      }
    }
  }

  bool in_hotpath() const {
    for (const bool hot : hot_stack_) {
      if (hot) return true;
    }
    return false;
  }

  void process_braces(const std::string& line) {
    for (char c : line) {
      if (c == '{') {
        bool hot = !hot_stack_.empty() && hot_stack_.back();  // inherit
        // A marker arms the next function-shaped block (signature with a
        // paren, not control flow); nested blocks inherit from it. A lone
        // ')' counts too: a multi-line signature's brace line is
        // `...args) {` with the '(' lines above.
        if (marker_armed_ && !hot && line.find_first_of("()") != std::string::npos &&
            !starts_with_keyword(line)) {
          hot = true;
          marker_armed_ = false;
        }
        hot_stack_.push_back(hot);
      } else if (c == '}') {
        if (!hot_stack_.empty()) hot_stack_.pop_back();
      }
    }
  }

  bool allowed(std::size_t li) {
    if (src_.allows[li].count("hotpath-alloc") > 0 ||
        (li > 0 && src_.allows[li - 1].count("hotpath-alloc") > 0)) {
      sink_.suppress("hotpath-alloc");
      return true;
    }
    return false;
  }

  void emit(int line_no, std::string message) {
    sink_.emit(Finding{file_, line_no, "hotpath-alloc", std::move(message)});
  }

  void scan_line(const std::string& line, std::size_t li, int line_no) {
    if (scan_new_delete(line, li, line_no)) return;
    if (scan_calls(line, li, line_no)) return;
    if (scan_push_back(line, li, line_no)) return;
    if (scan_string_and_locals(line, li, line_no)) return;
  }

  bool scan_new_delete(const std::string& line, std::size_t li, int line_no) {
    std::size_t pos = 0;
    while ((pos = find_word(line, "new", pos)) != std::string::npos) {
      const std::size_t after = pos + 3;
      pos = after;
      // Placement-new (`new (slot) T`) constructs into pooled storage and is
      // the sanctioned idiom — but `operator new(n)` is a real allocation.
      std::size_t j = after;
      while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])) != 0) ++j;
      bool is_operator_new = false;
      if (pos >= 3 + 9) {
        std::size_t k = pos - 3;
        while (k > 0 && std::isspace(static_cast<unsigned char>(line[k - 1])) != 0) --k;
        if (k >= 8 && line.compare(k - 8, 8, "operator") == 0) is_operator_new = true;
      }
      if (!is_operator_new && j < line.size() && line[j] == '(') continue;  // placement
      if (j < line.size() && (line[j] == ';' || line[j] == ')' || line[j] == ',')) {
        continue;  // identifier-ish use, not an expression (rare)
      }
      if (allowed(li)) return true;
      emit(line_no, "heap allocation ('new') in a hotpath region; use a pool or pre-sized slot");
      return true;
    }
    pos = 0;
    while ((pos = find_word(line, "delete", pos)) != std::string::npos) {
      pos += 6;
      if (allowed(li)) return true;
      emit(line_no, "heap release ('delete') in a hotpath region; pooled slots are recycled, "
                    "not freed");
      return true;
    }
    return false;
  }

  bool scan_calls(const std::string& line, std::size_t li, int line_no) {
    for (const std::string_view token :
         {"make_unique", "make_shared", "malloc(", "calloc(", "realloc(", "strdup("}) {
      if (find_token(line, token) == std::string::npos) continue;
      if (allowed(li)) return true;
      emit(line_no, "heap allocation ('" + std::string{token} +
                        "') in a hotpath region; use the pooled factories");
      return true;
    }
    return false;
  }

  bool scan_push_back(const std::string& line, std::size_t li, int line_no) {
    for (const std::string_view method : {".push_back(", ".emplace_back("}) {
      std::size_t pos = 0;
      while ((pos = line.find(method, pos)) != std::string::npos) {
        std::size_t start = pos;
        while (start > 0 && is_ident_char(line[start - 1])) --start;
        const std::string receiver = line.substr(start, pos - start);
        pos += method.size();
        if (!receiver.empty() && reserved_.count(receiver) > 0) continue;
        if (allowed(li)) return true;
        emit(line_no, "'" + receiver + std::string{method} +
                          "...)' in a hotpath region with no '" + receiver +
                          ".reserve(...)' anywhere in this file; growth reallocates");
        return true;
      }
    }
    return false;
  }

  bool scan_string_and_locals(const std::string& line, std::size_t li, int line_no) {
    // std::string by value (declaration, temporary, or return type).
    std::size_t pos = 0;
    while ((pos = find_token(line, "std::string", pos)) != std::string::npos) {
      const std::size_t after = pos + std::string_view{"std::string"}.size();
      pos = after;
      if (after < line.size() && is_ident_char(line[after])) continue;  // string_view etc.
      std::size_t j = after;
      while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])) != 0) ++j;
      if (j < line.size() && (line[j] == '&' || line[j] == '*' || line[j] == '>')) continue;
      if (allowed(li)) return true;
      emit(line_no, "std::string constructed in a hotpath region; strings allocate — use "
                    "fixed-size buffers or string_view");
      return true;
    }
    for (const std::string_view token : {"to_string(", "ostringstream", "stringstream"}) {
      if (find_token(line, token) != std::string::npos) {
        if (allowed(li)) return true;
        emit(line_no, "'" + std::string{token} +
                          "' in a hotpath region; formatting allocates — move it off the "
                          "hot path");
        return true;
      }
    }
    // Local container construction by value.
    for (const std::string_view token : kLocalContainerTokens) {
      std::size_t cp = find_token(line, token);
      if (cp == std::string::npos) continue;
      const std::size_t open = cp + token.size();
      if (open >= line.size() || line[open] != '<') continue;
      // Find the matching '>' and require a by-value declaration after it.
      int nest = 0;
      std::size_t end = open;
      for (; end < line.size(); ++end) {
        if (line[end] == '<') ++nest;
        if (line[end] == '>' && --nest == 0) break;
      }
      if (end >= line.size()) continue;  // spans lines: skip (conservative)
      std::size_t j = end + 1;
      while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])) != 0) ++j;
      if (j >= line.size() || line[j] == '&' || line[j] == '*' || line[j] == ':' ||
          line[j] == '>' || line[j] == ',' || line[j] == ')') {
        continue;  // reference/pointer/nested-type use
      }
      if (allowed(li)) return true;
      emit(line_no, "local '" + std::string{token} +
                        "<...>' constructed in a hotpath region; containers allocate — hoist "
                        "it to a member and reserve it");
      return true;
    }
    return false;
  }

  std::string file_;
  CleanSource src_;
  Sink& sink_;
  std::set<std::string> reserved_;
  std::vector<bool> hot_stack_;
  bool marker_armed_ = false;
};

}  // namespace

void scan_hotpath(const std::string& file, const std::vector<std::string>& raw, Sink& sink) {
  HotpathScanner scanner{file, raw, sink};
  scanner.run();
}

}  // namespace tsn::analyze
