// Per-family scan entry points. Each takes the file's display name (used in
// findings), its raw lines, and the shared Sink. The determinism scanner
// additionally takes the set of identifiers known to be unordered containers
// in the file's module (harvested across the module first, so a member
// declared in a header is recognised when iterated in the .cpp).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace tsn::analyze {

// Wire safety: unchecked-reader, raw-memcpy, raw-cast, unchecked-length-index.
void scan_wire(const std::string& file, const std::vector<std::string>& raw, Sink& sink);

// Returns identifiers declared in `raw` as std::unordered_map/std::unordered_set
// (members or locals; multi-line declarations supported).
std::set<std::string> harvest_unordered_names(const std::vector<std::string>& raw);

// Determinism: wall-clock, unseeded-random, unordered-iter, pointer-identity.
// `rel_path` decides the sim/random exemption for unseeded-random.
void scan_determinism(const std::string& file, const std::string& rel_path,
                      const std::vector<std::string>& raw,
                      const std::set<std::string>& unordered_names, Sink& sink);

// Hot-path allocation discipline inside `// tsn-lint: hotpath` regions.
void scan_hotpath(const std::string& file, const std::vector<std::string>& raw, Sink& sink);

}  // namespace tsn::analyze
