// tsn_analyze command-line driver.
//
//   tsn_analyze --self-test <corpus-dir>     run the on-disk rule corpora
//   tsn_analyze --validate <findings.json>   schema-check a findings artifact
//   tsn_analyze --root <dir> [--baseline f] [--json out]
//                                            whole-tree scan: all rule
//                                            families, layering included
//   tsn_analyze <paths...>                   ad-hoc scan of files/dirs with
//                                            the line rules (no layering —
//                                            that needs a tree root)
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "baseline.hpp"
#include "include_graph.hpp"
#include "report.hpp"
#include "rules.hpp"
#include "self_test.hpp"
#include "telemetry/json.hpp"

namespace {

namespace fs = std::filesystem;
using namespace tsn::analyze;

int usage() {
  std::cerr << "usage: tsn_analyze --self-test <corpus-dir>\n"
               "       tsn_analyze --validate <findings.json>\n"
               "       tsn_analyze --root <dir> [--baseline <file>] [--json <out>]\n"
               "       tsn_analyze <paths...>\n";
  return 2;
}

// Wire rules stay scoped to the subsystems that parse frame bytes; the rest
// of the tree sees only determinism/hot-path/layering rules.
bool wire_scoped(const std::string& module) {
  return module == "proto" || module == "net" || module == "mcast";
}

std::vector<fs::path> collect_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && scannable(entry.path())) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_validate(const std::string& path) {
  std::vector<std::string> lines = read_lines(path);
  std::string text;
  for (const auto& line : lines) {
    text += line;
    text += '\n';
  }
  std::string error;
  if (!validate_findings_json(text, &error)) {
    std::cerr << "tsn_analyze --validate: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "tsn_analyze --validate: " << path << " conforms to " << kFindingsSchema
            << "\n";
  return 0;
}

int run_root_scan(const std::string& root, const std::string& baseline_path,
                  const std::string& json_out) {
  if (!fs::is_directory(root)) {
    std::cerr << "tsn_analyze: --root " << root << " is not a directory\n";
    return 2;
  }
  RunReport report;
  report.root = root;

  std::vector<fs::path> files = collect_files(root);
  report.files_scanned = files.size();

  // Pass 1: harvest unordered-container identifiers per module, so a member
  // declared in a header is recognised when iterated in a sibling .cpp.
  std::map<std::string, std::set<std::string>> module_unordered;
  std::map<std::string, std::vector<std::string>> raw_by_rel;
  for (const auto& file : files) {
    const std::string rel = relative_path(file, root);
    raw_by_rel[rel] = read_lines(file);
    const std::set<std::string> names = harvest_unordered_names(raw_by_rel[rel]);
    module_unordered[module_of(rel)].insert(names.begin(), names.end());
  }

  // Pass 2: line rules.
  for (const auto& [rel, raw] : raw_by_rel) {
    const std::string display = root + "/" + rel;
    const std::string module = module_of(rel);
    if (wire_scoped(module)) scan_wire(display, raw, report.sink);
    scan_determinism(display, rel, raw, module_unordered[module], report.sink);
    scan_hotpath(display, raw, report.sink);
  }

  // Pass 3: include graph + layering over the whole tree.
  std::vector<std::string> rel_files;
  rel_files.reserve(raw_by_rel.size());
  for (const auto& [rel, _] : raw_by_rel) rel_files.push_back(rel);
  const auto provider = [&raw_by_rel](const std::string& rel, std::vector<std::string>& out) {
    const auto it = raw_by_rel.find(rel);
    if (it == raw_by_rel.end()) return false;
    out = it->second;
    return true;
  };
  const IncludeGraph graph = build_include_graph(rel_files, provider);
  check_includes(graph, root, report.sink);
  check_layers(graph, default_layer_config(), root, report.sink);

  if (!baseline_path.empty()) {
    std::string error;
    auto baseline = load_baseline(baseline_path, &error);
    if (!baseline) {
      std::cerr << "tsn_analyze: " << error << "\n";
      return 2;
    }
    report.baseline = std::move(*baseline);
  }
  report.active = apply_baseline(report.sink.findings, report.baseline, root);

  const std::size_t n = print_summary(report);

  if (!json_out.empty()) {
    const std::string json = findings_to_json(report);
    std::string error;
    if (!validate_findings_json(json, &error)) {
      // The writer and validator disagreeing is a bug in this tool, not in
      // the scanned tree — fail loudly.
      std::cerr << "tsn_analyze: internal error: emitted JSON fails own schema: " << error
                << "\n";
      return 2;
    }
    if (!tsn::telemetry::write_text_file(json_out, json)) {
      std::cerr << "tsn_analyze: cannot write " << json_out << "\n";
      return 2;
    }
    std::cout << "tsn_analyze: findings JSON written to " << json_out << "\n";
  }
  return n == 0 ? 0 : 1;
}

int run_adhoc_scan(const std::vector<std::string>& targets) {
  RunReport report;
  report.root = ".";
  std::vector<fs::path> files;
  for (const auto& target : targets) {
    if (fs::is_directory(target)) {
      std::vector<fs::path> sub = collect_files(target);
      files.insert(files.end(), sub.begin(), sub.end());
    } else if (fs::is_regular_file(target) && scannable(target)) {
      files.emplace_back(target);
    } else {
      std::cerr << "tsn_analyze: skipping " << target << " (not a source file or directory)\n";
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  report.files_scanned = files.size();
  for (const auto& file : files) {
    const std::string display = file.generic_string();
    const std::vector<std::string> raw = read_lines(file);
    scan_wire(display, raw, report.sink);
    scan_determinism(display, display, raw, harvest_unordered_names(raw), report.sink);
    scan_hotpath(display, raw, report.sink);
  }
  report.active = report.sink.findings;
  return print_summary(report) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  if (args[0] == "--self-test") {
    if (args.size() != 2) return usage();
    return run_self_test(args[1]);
  }
  if (args[0] == "--validate") {
    if (args.size() != 2) return usage();
    return run_validate(args[1]);
  }

  std::string root;
  std::string baseline_path;
  std::string json_out;
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--root" || a == "--baseline" || a == "--json") {
      if (i + 1 >= args.size()) return usage();
      (a == "--root" ? root : a == "--baseline" ? baseline_path : json_out) = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "tsn_analyze: unknown option " << a << "\n";
      return usage();
    } else {
      targets.push_back(a);
    }
  }
  if (!root.empty()) {
    if (!targets.empty()) {
      std::cerr << "tsn_analyze: --root scans the whole tree; drop the extra paths\n";
      return usage();
    }
    return run_root_scan(root, baseline_path, json_out);
  }
  if (targets.empty()) return usage();
  if (!baseline_path.empty() || !json_out.empty()) {
    std::cerr << "tsn_analyze: --baseline/--json need --root\n";
    return usage();
  }
  return run_adhoc_scan(targets);
}
