// All time flows from the sim clock: Engine::now() advances only when the
// event loop pops, so two runs with the same seed see identical timestamps.
namespace demo {

long stamp(const sim::Engine& engine) {
  return engine.now().nanos();
}

long deadline(const sim::Engine& engine, long budget_ns) {
  return engine.now().nanos() + budget_ns;
}

}  // namespace demo
