#include <chrono>
#include <ctime>
#include <sys/time.h>

namespace demo {

long stamp_ns() {
  const auto now = std::chrono::system_clock::now();  // lint-expect: wall-clock
  return now.time_since_epoch().count();
}

long stamp_s() {
  return static_cast<long>(std::time(nullptr));  // lint-expect: wall-clock
}

long stamp_us() {
  timeval tv{};
  gettimeofday(&tv, nullptr);  // lint-expect: wall-clock
  return tv.tv_usec;
}

}  // namespace demo
