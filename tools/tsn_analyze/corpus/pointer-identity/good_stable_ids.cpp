#include <cstdint>
#include <map>

namespace demo {

// Sessions are keyed by an id allocated from sim state: replayable, stable
// across runs, and the map iterates in id order.
struct Router {
  std::map<std::uint64_t, int> credits_;
  std::uint64_t next_id_ = 1;

  std::uint64_t allocate_id() { return next_id_++; }
};

}  // namespace demo
