#include <cstdint>
#include <functional>
#include <unordered_map>

namespace demo {

struct Session;

struct Router {
  std::unordered_map<Session*, int> credits_;  // lint-expect: pointer-identity

  static std::uint64_t id_of(const Session* s) {
    return reinterpret_cast<std::uintptr_t>(s);  // lint-expect: pointer-identity
  }

  static std::size_t bucket_of(Session* s) {
    return std::hash<Session*>{}(s);  // lint-expect: pointer-identity
  }
};

}  // namespace demo
