#include <cstddef>
#include <vector>

namespace demo {

struct Pool {
  std::vector<int> items_;
  std::vector<unsigned char> slab_;

  // Warm-up: size everything before the hot phase starts.
  void reserve(std::size_t n) {
    items_.reserve(n);
    slab_.resize(n * sizeof(int));
  }

  // tsn-lint: hotpath
  void on_packet(int v) {
    items_.push_back(v);
  }

  // tsn-lint: hotpath
  int* place(std::size_t at, int v) {
    return new (&slab_[at]) int(v);
  }

  // tsn-lint: hotpath
  void drop(int* p) {
    // tsn-lint: allow(hotpath-alloc) teardown-only branch, never taken while warm
    delete p;
  }

  // Off the hot path: allocation is fine here.
  void rebuild() {
    std::vector<int> fresh;
    items_.swap(fresh);
  }
};

}  // namespace demo
