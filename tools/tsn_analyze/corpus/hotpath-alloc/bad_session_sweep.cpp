#include <map>
#include <string>
#include <vector>

namespace demo {

// A session-directory sweep written the tempting-but-wrong way: per-tick
// containers and strings on the liveness path. The pooled SessionStore keeps
// reusable scratch members for exactly these.
struct SessionSweep {
  std::map<unsigned, long> last_seen_;
  std::vector<unsigned> scratch_;

  // tsn-lint: hotpath
  void sweep_shard(long now, long deadline) {
    std::vector<unsigned> dead;  // lint-expect: hotpath-alloc
    for (const auto& [session, seen] : last_seen_) {
      if (now - seen > deadline) dead.push_back(session);  // lint-expect: hotpath-alloc
    }
    for (unsigned session : dead) kill(session);
  }

  // tsn-lint: hotpath
  void journal_append(unsigned session, const char* bytes, std::size_t n) {
    std::string copy(bytes, n);  // lint-expect: hotpath-alloc
    append(session, copy);
  }

  // tsn-lint: hotpath
  void remember(unsigned session, long now) {
    scratch_.push_back(session);  // lint-expect: hotpath-alloc
    last_seen_[session] = now;
  }

  void kill(unsigned session);
  void append(unsigned session, const std::string& bytes);
};

}  // namespace demo
