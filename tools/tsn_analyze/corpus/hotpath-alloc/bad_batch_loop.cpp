#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace demo {

// A batch decoder that allocates per message inside its marked hot loop —
// the shape the SoA decode lane exists to avoid. Every row-building
// operation here must be flagged: the columns were never reserved, the
// per-row node is heap-built, and the scratch vector is loop-local.
struct BatchDecoder {
  std::vector<std::uint64_t> order_ids_;
  std::vector<std::uint32_t> quantities_;

  // tsn-lint: hotpath
  std::size_t decode_all(const unsigned char* p, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      order_ids_.push_back(load_id(p, i));    // lint-expect: hotpath-alloc
      quantities_.push_back(load_qty(p, i));  // lint-expect: hotpath-alloc
      auto row = std::make_unique<std::uint64_t>(i);  // lint-expect: hotpath-alloc
      stash(row.get());
    }
    std::vector<std::size_t> offsets;  // lint-expect: hotpath-alloc
    offsets.push_back(count);          // lint-expect: hotpath-alloc
    return offsets.back();
  }

  static std::uint64_t load_id(const unsigned char* p, std::size_t i);
  static std::uint32_t load_qty(const unsigned char* p, std::size_t i);
  static void stash(const std::uint64_t* row);
};

}  // namespace demo
