#include <memory>
#include <string>
#include <vector>

namespace demo {

struct Queue {
  std::vector<int> items_;

  // tsn-lint: hotpath
  void on_packet(int v) {
    auto* node = new int(v);  // lint-expect: hotpath-alloc
    consume(node);
  }

  // tsn-lint: hotpath
  void on_burst(int v) {
    items_.push_back(v);  // lint-expect: hotpath-alloc
  }

  // tsn-lint: hotpath
  std::size_t label_len(int v) {
    std::string label = format_label(v);  // lint-expect: hotpath-alloc
    return label.size();
  }

  // tsn-lint: hotpath
  void scratch() {
    std::vector<int> tmp;  // lint-expect: hotpath-alloc
    use(tmp);
  }

  // tsn-lint: hotpath
  void share(int v) {
    auto p = std::make_shared<int>(v);  // lint-expect: hotpath-alloc
    keep(p);
  }
};

}  // namespace demo
