#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace demo {

struct Tracker {
  std::unordered_map<std::uint32_t, int> flows_;
  std::unordered_set<std::uint32_t> groups_;

  void publish() {
    for (const auto g : groups_) send_report(g);  // lint-expect: unordered-iter
  }

  int total() const {
    int sum = 0;
    for (const auto& [id, n] : flows_) sum += n;  // lint-expect: unordered-iter
    return sum;
  }

  auto first() { return flows_.begin(); }  // lint-expect: unordered-iter
};

}  // namespace demo
