#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace demo {

struct Exporter {
  std::unordered_map<std::uint32_t, int> flows_;

  // Collect-then-sort: the iteration itself is order-independent because the
  // result is sorted before anything observable happens.
  std::vector<std::uint32_t> sorted_ids() const {
    std::vector<std::uint32_t> ids;
    ids.reserve(flows_.size());
    // tsn-lint: allow(unordered-iter) order-independent: sorted before use
    for (const auto& [id, n] : flows_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  // Point lookups never observe hash order.
  int lookup(std::uint32_t id) const {
    const auto it = flows_.find(id);
    return it == flows_.end() ? 0 : it->second;
  }
};

}  // namespace demo
