// Shaped like the hot-standby replication bridge: a stream on the primary's
// shard reacting to a status datagram from the applier's shard. The
// tempting bug is to schedule the retransmit (or the fence) directly onto
// the peer's queue "because the record belongs over there" — in windowed
// mode that queue may be mid-drain on another worker, and the push bypasses
// the mailbox order the parity digests depend on.
struct ReplicationBridge {
  tsn::sim::ShardedEngine* engine;
  std::size_t backup_shard = 1;
  std::size_t primary_shard = 0;
  std::vector<tsn::sim::Domain*> domains;

  void on_status_gap(tsn::sim::Domain& self) {
    // Retransmit must be scheduled on the *stream's* own domain (the wire
    // delay happens on the link); reaching into the applier's shard skips
    // the lookahead bound.
    engine->domain(backup_shard).schedule_in(tsn::sim::nanos(50), [] {});  // lint-expect: cross-domain-sched
    // Fencing the stale primary from the applier's callback: same trap in
    // the other direction, through a shard table this time.
    domains[primary_shard]->schedule_at(self.now(), [] {});  // lint-expect: cross-domain-sched
  }

  void on_status_gap_sanctioned(tsn::sim::Domain& self) {
    // The sanctioned shapes: react on your own clock, cross the bridge via
    // post_to so the engine checks the arrival against the lookahead.
    self.schedule_in(tsn::sim::nanos(50), [] {});
    self.post_to(backup_shard, self.now() + tsn::sim::micros(2), [] {});
  }
};
