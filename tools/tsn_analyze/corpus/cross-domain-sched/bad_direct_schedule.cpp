// Reaching through the engine to another shard's queue: in windowed mode
// that queue may be running on a worker thread, and the direct push skips
// both the deterministic mailbox drain order and the lookahead bound.
void rearm_peer(tsn::sim::ShardedEngine& engine, tsn::sim::Domain& self) {
  engine.domain(1).schedule_at(self.now(), [] {});  // lint-expect: cross-domain-sched
  engine.domain(peer_of(self)).schedule_in(tsn::sim::nanos(5), [] {});  // lint-expect: cross-domain-sched
}

struct ShardTable {
  std::vector<tsn::sim::Domain*> domains;
  void kick(std::size_t dst) {
    domains[dst]->schedule_at(tsn::sim::Time{100}, [] {});  // lint-expect: cross-domain-sched
  }
};
