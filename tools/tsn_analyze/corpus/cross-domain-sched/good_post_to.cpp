// The sanctioned shapes: schedule on your own scheduler (ambient reference
// or the domain you run inside), and cross shards only through post_to,
// whose arrival time the engine checks against the lookahead.
void deliver(tsn::sim::Domain& self, tsn::sim::Scheduler& sched) {
  self.schedule_at(self.now() + tsn::sim::nanos(5), [] {});
  sched.schedule_in(tsn::sim::nanos(7), [] {});
  self.post_to(1, self.now() + tsn::sim::micros(5), [] {});
}

// Reading a foreign domain's clock (or handing the domain itself to a
// component as its scheduler) is not scheduling.
tsn::sim::Time peer_clock(tsn::sim::ShardedEngine& engine) {
  auto& peer = engine.domain(1);
  return peer.now();
}

// allow() escape hatch: same-domain setup before the engine runs.
void seed(tsn::sim::ShardedEngine& engine) {
  // tsn-lint: allow(cross-domain-sched) pre-run seeding, every queue is idle
  engine.domain(0).schedule_at(tsn::sim::Time::zero(), [] {});
}
