// Field-wise decode through the checked reader instead of casting the
// buffer to a struct layout.
namespace demo {

struct Header {
  unsigned short len = 0;
  unsigned short type = 0;
};

bool peek(net::WireReader& r, Header& out) {
  out.len = r.u16();
  out.type = r.u16();
  return r.ok();
}

}  // namespace demo
