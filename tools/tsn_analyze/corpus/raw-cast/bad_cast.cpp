namespace demo {

struct Header {
  unsigned short len;
  unsigned short type;
};

const Header* peek(const unsigned char* buf) {
  return reinterpret_cast<const Header*>(buf);  // lint-expect: raw-cast
}

}  // namespace demo
