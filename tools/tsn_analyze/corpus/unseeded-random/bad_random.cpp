#include <cstdlib>
#include <random>

namespace demo {

int jitter() {
  return std::rand() % 8;  // lint-expect: unseeded-random
}

unsigned seed_source() {
  std::random_device rd;  // lint-expect: unseeded-random
  return rd();
}

void reseed(unsigned s) {
  srand(s);  // lint-expect: unseeded-random
}

}  // namespace demo
