// Randomness flows from sim::Rng, seeded from the scenario config and
// seed-stable across platforms; member calls named rand() are not libc.
namespace demo {

double sample(sim::Rng& rng) {
  return rng.uniform(0.0, 1.0);
}

unsigned roll(Dice& dice) {
  return dice.rand(6);
}

}  // namespace demo
