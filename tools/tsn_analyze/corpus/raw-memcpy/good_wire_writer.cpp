// Byte access goes through WireWriter, which bounds-checks every append.
namespace demo {

void serialize(net::WireWriter& w, const unsigned* fields, unsigned n) {
  for (unsigned i = 0; i < n; ++i) w.u32(fields[i]);
}

}  // namespace demo
