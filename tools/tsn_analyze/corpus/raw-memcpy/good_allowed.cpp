#include <cstring>

namespace demo {

// Pool-internal slab copy: both spans come from the same pool block, bounds
// proven by the allocator — the audited allow() keeps the scan clean.
void recycle(unsigned char* dst, const unsigned char* src, unsigned n) {
  std::memcpy(dst, src, n);  // tsn-lint: allow(raw-memcpy) pool-internal, bounds proven by allocator
}

}  // namespace demo
