#include <cstring>

namespace demo {

void serialize(unsigned char* dst, const unsigned* fields, unsigned n) {
  std::memcpy(dst, fields, n * sizeof(unsigned));  // lint-expect: raw-memcpy
}

}  // namespace demo
