// A reader that is only passed along (never consumed here) needs no check
// in this function.
namespace demo {

void forward(net::WireReader& r) {
  route(r);
}

}  // namespace demo
