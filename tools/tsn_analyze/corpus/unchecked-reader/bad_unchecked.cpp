// A reader consumed without a single .ok() check: the sticky failure flag
// means truncated frames silently decode as zeroes.
namespace demo {

struct Msg {
  unsigned type = 0;
  unsigned seq = 0;
};

Msg decode(net::WireReader& r) {
  Msg m;
  m.type = r.u8();  // lint-expect: unchecked-reader
  m.seq = r.u32();
  return m;
}

}  // namespace demo
