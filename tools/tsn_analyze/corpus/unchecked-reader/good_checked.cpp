// One deferred .ok() check covers every consuming call before it — that is
// the WireReader contract (the failure flag is sticky).
namespace demo {

struct Msg {
  unsigned type = 0;
  unsigned seq = 0;
};

bool decode(net::WireReader& r, Msg& out) {
  out.type = r.u8();
  out.seq = r.u32();
  return r.ok();
}

}  // namespace demo
