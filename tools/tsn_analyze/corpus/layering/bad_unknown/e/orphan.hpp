#pragma once  // lint-expect: unknown-module
namespace demo::e {
struct Orphan {};
}  // namespace demo::e
