#pragma once
#include "a/base.hpp"
namespace demo::c {
struct Mid2 : demo::a::Base {};
}  // namespace demo::c
