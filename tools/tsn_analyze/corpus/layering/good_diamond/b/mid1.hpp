#pragma once
#include "a/base.hpp"
namespace demo::b {
struct Mid1 : demo::a::Base {};
}  // namespace demo::b
