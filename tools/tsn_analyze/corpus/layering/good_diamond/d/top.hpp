#pragma once
#include "b/mid1.hpp"
#include "c/mid2.hpp"
namespace demo::d {
struct Top {
  demo::b::Mid1 left;
  demo::c::Mid2 right;
};
}  // namespace demo::d
