#pragma once
#include <vector>
#include <unresolvable/system/header.hpp>
namespace demo::a {
using Ints = std::vector<int>;
}  // namespace demo::a
