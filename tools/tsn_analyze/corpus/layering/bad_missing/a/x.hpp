#pragma once
#include "a/gone.hpp"  // lint-expect: include-missing
namespace demo::a {
struct X {};
}  // namespace demo::a
