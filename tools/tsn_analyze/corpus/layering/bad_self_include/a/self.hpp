#pragma once
#include "a/self.hpp"  // lint-expect: include-cycle
namespace demo::a {
struct Self {};
}  // namespace demo::a
