#pragma once
#include "a/base.hpp"
namespace demo::d {
struct High {};
}  // namespace demo::d
