#pragma once
#include "a/base.hpp"
#include "d/high.hpp"  // lint-expect: layer-violation
namespace demo::b {
struct Low {};
}  // namespace demo::b
