#pragma once
namespace demo::a {
struct Base {};
}  // namespace demo::a
