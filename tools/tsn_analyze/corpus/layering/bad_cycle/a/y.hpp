#pragma once
#include "a/x.hpp"  // lint-expect: include-cycle
namespace demo::a {
struct Y {};
}  // namespace demo::a
