#pragma once
#include "a/y.hpp"
namespace demo::a {
struct X {};
}  // namespace demo::a
