#include <cstddef>
#include <span>

namespace demo {

inline constexpr std::size_t kHeaderBytes = 8;

// `len` came off the wire; nothing in this function compares it against the
// frame size before indexing.
std::span<const std::byte> body(std::span<const std::byte> frame, std::size_t len) {
  return frame.subspan(kHeaderBytes, len);  // lint-expect: unchecked-length-index
}

}  // namespace demo
