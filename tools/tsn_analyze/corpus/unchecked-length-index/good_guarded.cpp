#include <cstddef>
#include <span>

namespace demo {

inline constexpr std::size_t kHeaderBytes = 8;

std::span<const std::byte> body(std::span<const std::byte> frame, std::size_t len) {
  if (kHeaderBytes + len > frame.size()) return {};
  return frame.subspan(kHeaderBytes, len);
}

}  // namespace demo
