#include <cstddef>
#include <span>

namespace demo {

inline constexpr std::size_t kHeaderBytes = 8;

// Constant offsets cannot be steered by wire data; no guard required.
std::span<const std::byte> skip_header(std::span<const std::byte> frame) {
  return frame.subspan(kHeaderBytes);
}

}  // namespace demo
