// tsn_analyze — multi-pass static analysis for the trading-system simulator.
//
// Grown from the original tsn_lint wire-safety checker, this tool now scans
// all of src/ with six rule families (see DESIGN.md "Static analysis"):
//
//   wire safety      unchecked-reader, raw-memcpy / raw-cast,
//                    unchecked-length-index (scoped to src/proto, src/net,
//                    src/mcast — the subsystems that touch frame bytes)
//   determinism      wall-clock, unseeded-random, unordered-iter,
//                    pointer-identity (all of src/: byte-identical replay
//                    means all time flows from the sim clock, all randomness
//                    from sim::random, and no observable ordering may depend
//                    on hash-table iteration or pointer values)
//   hot-path         hotpath-alloc inside regions marked
//                    `// tsn-lint: hotpath` (no new/delete/malloc,
//                    make_shared/make_unique, push_back without a reserve,
//                    std::string construction, or local container builds)
//   layering         include-cycle, layer-violation, include-missing,
//                    unknown-module over the `#include` graph of src/
//
// Shared infrastructure: a line-oriented scanner over comment-stripped
// source. It tracks brace depth, strings and comments, not templates or
// macros — it is a convention linter, not a compiler plugin. Suppressions
// are `// tsn-lint: allow(<rule>)` on the offending (or preceding) line;
// audited legacy findings can also live in a committed baseline file.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace tsn::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// Collects findings and counts per-rule inline `allow()` suppressions, so
// the end-of-run summary can show audited exceptions next to live findings.
struct Sink {
  std::vector<Finding> findings;
  std::map<std::string, int> suppressed;  // rule -> allow() hits

  void emit(Finding f) { findings.push_back(std::move(f)); }
  void suppress(const std::string& rule) { ++suppressed[rule]; }
};

// A file's lines with comments blanked out (string and char literals
// respected), plus per-line markers harvested from the comments before they
// were removed: `tsn-lint: allow(rule)` suppressions and `tsn-lint: hotpath`
// region markers.
struct CleanSource {
  std::vector<std::string> lines;             // code only, comments blanked
  std::vector<std::set<std::string>> allows;  // per line, suppressed rules
  std::vector<bool> hotpath_marks;            // per line, hotpath marker seen
};

CleanSource strip_comments(const std::vector<std::string>& raw);

// --- small text helpers ----------------------------------------------------

bool is_ident_char(char c);

// Finds `needle` in `line` at an identifier boundary on the left.
std::size_t find_token(const std::string& line, std::string_view needle, std::size_t from = 0);

// Finds `needle` with identifier boundaries on both sides.
std::size_t find_word(const std::string& line, std::string_view needle, std::size_t from = 0);

bool starts_with_keyword(const std::string& line);

std::vector<std::string> read_lines(const std::filesystem::path& path);
std::vector<std::string> split_lines(std::string_view text);

// True for the C++ source/header extensions the analyzer scans.
bool scannable(const std::filesystem::path& p);

// Path relative to `root` with '/' separators, or the path unchanged when it
// is not under `root`. Used to key findings and baseline entries stably.
std::string relative_path(const std::filesystem::path& p, const std::filesystem::path& root);

// First path component of a root-relative path ("net/wire.hpp" -> "net").
std::string module_of(std::string_view rel_path);

}  // namespace tsn::analyze
