// A tiny recursive-descent JSON reader, shared by the baseline loader and
// the findings-schema validator. Covers the full JSON grammar minus floating
// point exotica (numbers parse as doubles via strtod), with no third-party
// dependency — the same stance as tools/bench_compare.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tsn::analyze {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;    // shared_ptr: JsonValue stays copyable
  std::shared_ptr<JsonObject> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }

  // Object member access; returns nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  }
};

// Parses `text`; returns nullopt (and sets `error`, when given) on malformed
// input or trailing garbage.
std::optional<JsonValue> parse_json(std::string_view text, std::string* error = nullptr);

}  // namespace tsn::analyze
