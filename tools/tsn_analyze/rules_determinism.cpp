// Determinism rules — byte-identical replay is the load-bearing property of
// the whole simulator (every drill suite asserts two-run identity), so the
// sources of nondeterminism are banned at the source level:
//
//   wall-clock        no std::chrono::system_clock / steady_clock /
//                     gettimeofday / time() / localtime: all time flows from
//                     the sim clock (sim::Engine::now / sim::Time).
//   unseeded-random   no rand()/srand()/std::random_device outside
//                     src/sim/random.*: all randomness flows from sim::Rng,
//                     which is seed-stable across platforms.
//   unordered-iter    no iteration over std::unordered_map/set — hash-table
//                     order is unspecified and varies across standard
//                     libraries, so any iteration that feeds wire output,
//                     journals, or telemetry exports diverges replay.
//                     Order-independent sweeps (flag resets, integer sums,
//                     collect-then-sort) carry an audited allow().
//   pointer-identity  no pointer values as identifiers or container keys —
//                     addresses change run to run, so pointer-keyed maps
//                     iterate in a different order every run and exported
//                     pointer ids never match a replay.
//   cross-domain-sched no scheduling directly onto another shard's queue
//                     (`engine.domain(d).schedule_at(...)` and friends):
//                     in windowed parallel mode another domain's queue may
//                     be mid-execution on a worker thread, and a direct
//                     push bypasses the mailbox ordering AND the lookahead
//                     bound the conservative synchronizer relies on. Cross-
//                     domain work goes through Domain::post_to. Same-domain
//                     setup code that provably runs before the engine does
//                     carries an audited allow().
#include <cctype>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "rules.hpp"

namespace tsn::analyze {

namespace {

const std::string_view kWallClockTokens[] = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "timespec_get",
    "localtime",     "gmtime",        "strftime",
    "mktime",
};

const std::string_view kRandomTokens[] = {
    "random_device", "srand", "drand48", "lrand48", "mrand48",
};

// The first template argument of the container starting at '<'; empty when
// the argument list spans lines (conservatively not matched).
std::string first_template_arg(const std::string& line, std::size_t open) {
  int nest = 0;
  for (std::size_t i = open; i < line.size(); ++i) {
    if (line[i] == '<') ++nest;
    if (line[i] == '>' && --nest == 0) return line.substr(open + 1, i - open - 1);
    if (line[i] == ',' && nest == 1) return line.substr(open + 1, i - open - 1);
  }
  return {};
}

bool arg_is_pointer(std::string_view arg) {
  while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.back())) != 0) {
    arg.remove_suffix(1);
  }
  return !arg.empty() && arg.back() == '*';
}

class DeterminismScanner {
 public:
  DeterminismScanner(std::string file, std::string rel_path, const std::vector<std::string>& raw,
                     const std::set<std::string>& unordered_names, Sink& sink)
      : file_(std::move(file)),
        rel_path_(std::move(rel_path)),
        src_(strip_comments(raw)),
        unordered_names_(unordered_names),
        sink_(sink) {}

  void run() {
    // src/sim/random.* is the sanctioned randomness source; src/sim/time.*
    // is the sim clock itself (its docs name the wall-clock APIs it replaces).
    const bool in_sim_random = rel_path_.find("sim/random.") != std::string::npos;
    for (std::size_t li = 0; li < src_.lines.size(); ++li) {
      const std::string& line = src_.lines[li];
      const int line_no = static_cast<int>(li) + 1;
      scan_wall_clock(line, li, line_no);
      if (!in_sim_random) scan_random(line, li, line_no);
      scan_unordered_iter(line, li, line_no);
      scan_pointer_identity(line, li, line_no);
      scan_cross_domain_sched(line, li, line_no);
    }
  }

 private:
  bool check(std::size_t li, const char* rule) {
    if (src_.allows[li].count(rule) > 0 ||
        (li > 0 && src_.allows[li - 1].count(rule) > 0)) {
      sink_.suppress(rule);
      return false;
    }
    return true;
  }

  void emit(int line_no, const char* rule, std::string message) {
    sink_.emit(Finding{file_, line_no, rule, std::move(message)});
  }

  void scan_wall_clock(const std::string& line, std::size_t li, int line_no) {
    for (const auto token : kWallClockTokens) {
      if (find_word(line, token) == std::string::npos) continue;
      if (!check(li, "wall-clock")) return;
      emit(line_no, "wall-clock",
           "wall-clock time ('" + std::string{token} +
               "') breaks replay; all time must flow from the sim clock (sim::Time)");
      return;  // one finding per line is enough
    }
    // std::time(...) / time(nullptr) / time(NULL): the token `time(` alone
    // is too common (sim::Time, member .time()), so require the std::
    // qualifier or the classic null argument.
    if (line.find("std::time(") != std::string::npos ||
        line.find("time(nullptr)") != std::string::npos ||
        line.find("time(NULL)") != std::string::npos) {
      if (!check(li, "wall-clock")) return;
      emit(line_no, "wall-clock",
           "wall-clock time ('time()') breaks replay; all time must flow from the sim clock");
    }
  }

  void scan_random(const std::string& line, std::size_t li, int line_no) {
    for (const auto token : kRandomTokens) {
      if (find_word(line, token) == std::string::npos) continue;
      if (!check(li, "unseeded-random")) return;
      emit(line_no, "unseeded-random",
           "'" + std::string{token} +
               "' outside sim/random; all randomness must flow from sim::Rng (seed-stable)");
      return;
    }
    // Bare rand( — word-bounded so strand(, operand( etc. don't match, and
    // the call paren so a variable named `rand` doesn't.
    std::size_t pos = 0;
    while ((pos = find_token(line, "rand(", pos)) != std::string::npos) {
      // `.rand(` / `Foo::rand(` are member/user calls; bare and std:: are libc.
      const bool qualified = pos > 0 && (line[pos - 1] == '.' || line[pos - 1] == ':');
      const bool is_std = pos >= 5 && line.compare(pos - 5, 5, "std::") == 0;
      if (!qualified || is_std) {
        if (!check(li, "unseeded-random")) return;
        emit(line_no, "unseeded-random",
             "'rand()' outside sim/random; all randomness must flow from sim::Rng");
        return;
      }
      pos += 5;
    }
  }

  void scan_unordered_iter(const std::string& line, std::size_t li, int line_no) {
    for (const auto& name : unordered_names_) {
      bool iterates = false;
      // Range-for over the container: `for (... : name)`. The name must sit
      // inside the for's parentheses after the colon — a single-line loop
      // body that merely indexes the container is not iteration.
      const std::size_t fp = find_word(line, "for");
      const std::size_t open = fp == std::string::npos ? std::string::npos : line.find('(', fp);
      if (open != std::string::npos) {
        int nest = 0;
        std::size_t close = open;
        for (; close < line.size(); ++close) {
          if (line[close] == '(') ++nest;
          if (line[close] == ')' && --nest == 0) break;
        }
        const std::size_t colon = line.find(" : ", open);
        if (colon != std::string::npos && colon < close) {
          const std::size_t np = find_word(line, name, colon);
          if (np != std::string::npos && np < close) iterates = true;
        }
      }
      // Iterator walk: `name.begin()` (lookups use .find/.end and never
      // .begin, so .begin is reliable iteration evidence).
      if (!iterates && find_word(line, name + ".begin", 0) != std::string::npos) {
        iterates = true;
      }
      if (!iterates) continue;
      if (!check(li, "unordered-iter")) return;
      emit(line_no, "unordered-iter",
           "iteration over unordered container '" + name +
               "'; hash order is unspecified — iterate a sorted copy, or allow() with an "
               "audit comment proving order-independence");
      return;
    }
  }

  void scan_pointer_identity(const std::string& line, std::size_t li, int line_no) {
    // Pointer-keyed associative containers.
    for (const std::string_view container :
         {"unordered_map", "unordered_set", "map", "set"}) {
      std::size_t pos = 0;
      while ((pos = find_word(line, container, pos)) != std::string::npos) {
        const std::size_t open = pos + container.size();
        pos = open;
        if (open >= line.size() || line[open] != '<') continue;
        const std::string arg = first_template_arg(line, open);
        if (!arg_is_pointer(arg)) continue;
        if (!check(li, "pointer-identity")) return;
        emit(line_no, "pointer-identity",
             "container keyed by pointer values; addresses differ run to run, so iteration "
             "order and exported ids diverge — key by a stable id instead");
        return;
      }
    }
    // Casting a pointer to an integer id.
    if (line.find("reinterpret_cast<std::uintptr_t>") != std::string::npos ||
        line.find("reinterpret_cast<uintptr_t>") != std::string::npos ||
        line.find("std::hash<") != std::string::npos) {
      const std::size_t hp = line.find("std::hash<");
      bool pointer_hash = false;
      if (hp != std::string::npos) {
        const std::string arg = first_template_arg(line, hp + std::string_view{"std::hash"}.size());
        pointer_hash = arg_is_pointer(arg);
      }
      if (line.find("uintptr_t>") == std::string::npos && !pointer_hash) return;
      if (!check(li, "pointer-identity")) return;
      emit(line_no, "pointer-identity",
           "pointer value used as an identifier; addresses differ run to run — use a stable "
           "id allocated from sim state instead");
    }
  }

  void scan_cross_domain_sched(const std::string& line, std::size_t li, int line_no) {
    for (const std::string_view call : {"schedule_at(", "schedule_in("}) {
      std::size_t pos = 0;
      while ((pos = find_word(line, call.substr(0, call.size() - 1), pos)) !=
             std::string::npos) {
        const std::size_t start = pos;
        pos += call.size() - 1;
        if (pos >= line.size() || line[pos] != '(') continue;
        // Member access only: a free definition or an unqualified call on
        // the ambient scheduler is somebody's own queue.
        std::size_t recv_end = start;
        if (recv_end >= 2 && line.compare(recv_end - 2, 2, "->") == 0) {
          recv_end -= 2;
        } else if (recv_end >= 1 && line[recv_end - 1] == '.') {
          recv_end -= 1;
        } else {
          continue;
        }
        if (recv_end == 0) continue;
        // The receiver is foreign when the expression ends in a domain
        // lookup: `...domain(<id>)` (the ShardedEngine accessor) or a
        // `...domains...[<id>]` index into a shard table.
        std::string head;
        if (line[recv_end - 1] == ')' || line[recv_end - 1] == ']') {
          const char open = line[recv_end - 1] == ')' ? '(' : '[';
          const char close = line[recv_end - 1];
          int nest = 0;
          std::size_t i = recv_end;
          while (i > 0) {
            --i;
            if (line[i] == close) ++nest;
            if (line[i] == open && --nest == 0) break;
          }
          std::size_t id_start = i;
          while (id_start > 0 && is_ident_char(line[id_start - 1])) --id_start;
          head = line.substr(id_start, i - id_start);
        }
        const bool is_accessor = head == "domain";
        const bool is_shard_table = head.find("domain") != std::string::npos && !head.empty();
        if (!is_accessor && !is_shard_table) continue;
        if (!check(li, "cross-domain-sched")) return;
        emit(line_no, "cross-domain-sched",
             "scheduling directly onto another domain's queue bypasses the mailbox and the "
             "lookahead bound; cross-domain work must go through Domain::post_to");
        return;
      }
    }
  }

  std::string file_;
  std::string rel_path_;
  CleanSource src_;
  const std::set<std::string>& unordered_names_;
  Sink& sink_;
};

}  // namespace

std::set<std::string> harvest_unordered_names(const std::vector<std::string>& raw) {
  // Joined comment-stripped text so declarations that span lines (nested
  // template arguments, long value types) still yield their name.
  const CleanSource src = strip_comments(raw);
  std::string text;
  for (const auto& line : src.lines) {
    text += line;
    text += '\n';
  }
  std::set<std::string> names;
  for (const std::string_view kind : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = find_word(text, kind, pos)) != std::string::npos) {
      std::size_t i = pos + kind.size();
      pos = i;
      if (i >= text.size() || text[i] != '<') continue;
      // Balance the template argument list (may span lines).
      int nest = 0;
      for (; i < text.size(); ++i) {
        if (text[i] == '<') ++nest;
        if (text[i] == '>' && --nest == 0) break;
      }
      if (i >= text.size()) break;
      ++i;
      // Skip whitespace/newlines, then take the declared identifier. `>`
      // followed by anything but an identifier (e.g. `(`, `::`, `&`) is a
      // temporary, parameter type, or nested use — not a declaration.
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
      const std::size_t start = i;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      if (i == start) continue;
      // Require a declaration terminator so `x.unordered_thing<T>()` or
      // casts don't register phantom names.
      std::size_t j = i;
      while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j])) != 0) ++j;
      if (j < text.size() && (text[j] == ';' || text[j] == '{' || text[j] == '=' ||
                              text[j] == ',' || text[j] == ')')) {
        names.insert(text.substr(start, i - start));
      }
    }
  }
  return names;
}

void scan_determinism(const std::string& file, const std::string& rel_path,
                      const std::vector<std::string>& raw,
                      const std::set<std::string>& unordered_names, Sink& sink) {
  DeterminismScanner scanner{file, rel_path, raw, unordered_names, sink};
  scanner.run();
}

}  // namespace tsn::analyze
