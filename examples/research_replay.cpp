// After-hours research workflow (§2): record the day, replay it, analyze.
//
// Live phase: a trading session runs with a passive tap on the exchange's
// feed; the tap's packet hook feeds a FrameRecorder (sub-100 ps capture
// clocks are modelled in tsn::capture, §2's precision requirement).
// Research phase: the recording is serialized ("the capture file"),
// reloaded, and replayed at 10x speed through a fresh normalizer feeding a
// compliance monitor — producing the NBBO/locked/crossed statistics a
// surveillance team would pull from the day, without touching production.
#include "sim/engine.hpp"
#include <cstdio>

#include "capture/replay.hpp"
#include "capture/tap.hpp"
#include "exchange/activity.hpp"
#include "exchange/exchange.hpp"
#include "net/fabric.hpp"
#include "trading/compliance.hpp"
#include "trading/normalizer.hpp"

namespace {

using namespace tsn;

exchange::ExchangeConfig exchange_config() {
  exchange::ExchangeConfig config;
  config.name = "EXCH";
  config.exchange_id = 1;
  for (int i = 0; i < 6; ++i) {
    config.symbols.push_back({proto::Symbol{std::string{"SY"} + std::to_string(i)},
                              proto::InstrumentKind::kEquity,
                              proto::price_from_dollars(40.0 + 11.0 * i)});
  }
  config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  config.feed_mac = net::MacAddr::from_host_id(1);
  config.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
  config.order_mac = net::MacAddr::from_host_id(2);
  config.order_ip = net::Ipv4Addr{10, 0, 0, 2};
  return config;
}

trading::NormalizerConfig normalizer_config() {
  trading::NormalizerConfig config;
  config.exchange_id = 1;
  config.feed_groups = {net::Ipv4Addr{239, 100, 0, 0}};
  config.partitioning = std::make_shared<proto::HashPartition>(2);
  config.in_mac = net::MacAddr::from_host_id(10);
  config.in_ip = net::Ipv4Addr{10, 0, 1, 1};
  config.out_mac = net::MacAddr::from_host_id(11);
  config.out_ip = net::Ipv4Addr{10, 0, 1, 2};
  return config;
}

}  // namespace

int main() {
  std::printf("research_replay: record a session, replay it after hours\n\n");

  // ---- Live session with a tap on the feed. ------------------------------
  capture::FrameRecorder recorder;
  std::uint64_t live_updates = 0;
  sim::Duration live_span;
  {
    sim::Engine engine;
    net::Fabric fabric{engine};
    exchange::Exchange exch{engine, exchange_config()};
    trading::Normalizer normalizer{engine, normalizer_config()};
    capture::Tap tap{engine, "feed-tap",
                     capture::CaptureClock{sim::picos(80), 2.0, sim::picos(40), 7}};
    tap.set_packet_hook([&recorder](const net::PacketPtr& packet, net::PortId port,
                                    sim::Time at) {
      if (port == 0) recorder.record(packet, at);
    });
    fabric.connect(exch.feed_nic(), 0, tap, 0, net::LinkConfig{});
    fabric.connect(tap, 1, normalizer.in_nic(), 0, net::LinkConfig{});
    normalizer.join_feeds();
    exchange::ActivityConfig activity;
    activity.events_per_second = 25'000;
    exchange::MarketActivityDriver driver{exch, activity, 99};
    driver.run_until(sim::Time::zero() + sim::millis(std::int64_t{200}));
    engine.run();
    live_updates = normalizer.stats().updates_out;
    live_span = engine.now() - sim::Time::zero();
    std::printf("live session: %zu frames tapped over %s; %llu normalized updates\n",
                recorder.size(), sim::to_string(live_span).c_str(),
                static_cast<unsigned long long>(live_updates));
  }

  // ---- "Write the capture file", then reload it. --------------------------
  const auto blob = recorder.serialize();
  std::printf("capture blob: %zu bytes (%.1f bytes/frame)\n", blob.size(),
              static_cast<double>(blob.size()) / static_cast<double>(recorder.size()));
  const auto recording = capture::FrameRecorder::deserialize(blob);

  // ---- Replay at 10x through a fresh stack + compliance monitor. ----------
  sim::Engine engine;
  net::Fabric fabric{engine};
  trading::Normalizer normalizer{engine, normalizer_config()};
  trading::MarketStateMonitor monitor;
  net::Nic source{engine, "replay", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic analyst{engine, "analyst", net::MacAddr::from_host_id(20),
                   net::Ipv4Addr{10, 0, 2, 1}};
  fabric.connect(source, 0, normalizer.in_nic(), 0, net::LinkConfig{});
  fabric.connect(normalizer.out_nic(), 0, analyst, 0, net::LinkConfig{});
  normalizer.join_feeds();
  analyst.set_promiscuous(true);
  analyst.set_rx_handler([&monitor](const net::PacketPtr& packet, sim::Time) {
    const auto decoded = net::decode_frame(packet->frame());
    if (!decoded || !decoded->is_udp()) return;
    (void)proto::norm::for_each_update(decoded->payload,
                                       [&monitor](const proto::norm::Update& update) {
                                         monitor.on_update(update);
                                       });
  });

  capture::FrameReplayer replayer{engine, source};
  (void)replayer.replay(recording, sim::Time::zero(), /*speed=*/10.0);
  engine.run();

  std::printf("\nreplay at 10x: %zu frames in %s of simulated time\n",
              replayer.frames_sent(), sim::to_string(engine.now().since_epoch()).c_str());
  std::printf("replayed normalized updates: %llu (live: %llu — %s)\n",
              static_cast<unsigned long long>(normalizer.stats().updates_out),
              static_cast<unsigned long long>(live_updates),
              normalizer.stats().updates_out == live_updates ? "identical" : "DIFFERENT");

  std::printf("\nsurveillance report from the replay:\n");
  std::printf("  quote updates observed:  %llu\n",
              static_cast<unsigned long long>(monitor.stats().quote_updates));
  std::printf("  locked-market episodes:  %llu\n",
              static_cast<unsigned long long>(monitor.stats().locked_transitions));
  std::printf("  crossed-market episodes: %llu\n",
              static_cast<unsigned long long>(monitor.stats().crossed_transitions));
  std::printf("  trade-throughs flagged:  %llu\n",
              static_cast<unsigned long long>(monitor.stats().trade_throughs));
  std::printf("\n(§2: \"timestamps are also used for conducting simulations after the\n"
              "trading day has ended\" — a single-venue replay flags no cross-venue\n"
              "violations, but the same monitor over merged multi-venue recordings is\n"
              "exactly the §4.2 surveillance workload)\n");
  return 0;
}
