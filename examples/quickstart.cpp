// Quickstart: the smallest complete trading system.
//
// Builds one exchange, one normalizer, one strategy, and one gateway on a
// leaf-spine fabric (Design 1), runs 50 ms of market activity, and prints
// what happened. Start here; `trading_day` and `design_comparison` go
// deeper.
#include <cstdio>

#include "deploy/reference.hpp"

int main() {
  using namespace tsn;

  // 1. Describe the deployment: how many boxes, how fast the software is.
  deploy::DeploymentConfig config;
  config.strategy_count = 1;
  config.symbol_count = 4;
  config.events_per_second = 20'000;  // background market activity

  // 2. Build it on Design 1 (leaf-spine of 500 ns commodity switches).
  deploy::LeafSpineDeployment deployment{config};

  // 3. Join feeds, open order sessions, log in.
  deployment.start();

  // 4. Let the market run.
  deployment.run(sim::millis(std::int64_t{50}));

  // 5. See what the system did.
  const auto report = deployment.report();
  std::printf("quickstart: 50 ms of simulated trading\n");
  std::printf("  market data datagrams published: %llu\n",
              static_cast<unsigned long long>(report.feed_datagrams));
  std::printf("  normalized updates produced:     %llu\n",
              static_cast<unsigned long long>(report.normalized_updates));
  std::printf("  updates seen by the strategy:    %llu\n",
              static_cast<unsigned long long>(report.updates_received));
  std::printf("  orders sent / acked / filled:    %llu / %llu / %llu\n",
              static_cast<unsigned long long>(report.orders_sent),
              static_cast<unsigned long long>(report.acks),
              static_cast<unsigned long long>(report.fills));
  if (!report.tick_to_trade_ns.empty()) {
    std::printf("  tick-to-trade:                   %.0f ns mean\n",
                report.tick_to_trade_ns.mean());
  }
  if (!report.feed_path_ns.empty()) {
    std::printf("  feed path exchange->strategy:    %.0f ns mean\n",
                report.feed_path_ns.mean());
  }
  std::printf("\nNext: examples/trading_day for a full session with taps and analytics,\n"
              "examples/design_comparison for Design 1 vs 2 vs 3.\n");
  return 0;
}
