// Order-entry protocol walkthrough (§2).
//
// Opens a real TCP session into a simulated exchange, logs in, and walks
// an order through its life — accept, partial fill, modify, the cancel/
// fill race, and an IOC — printing every protocol message with its
// simulation timestamp, like a decoded session capture.
#include "sim/engine.hpp"
#include <cstdio>

#include "exchange/exchange.hpp"
#include "net/fabric.hpp"
#include "net/stack.hpp"

namespace {

using namespace tsn;

const char* describe(proto::boe::MessageType type) {
  using proto::boe::MessageType;
  switch (type) {
    case MessageType::kLoginRequest: return "LoginRequest";
    case MessageType::kLoginAccepted: return "LoginAccepted";
    case MessageType::kLoginRejected: return "LoginRejected";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kLogout: return "Logout";
    case MessageType::kReplayRequest: return "ReplayRequest";
    case MessageType::kSequenceReset: return "SequenceReset";
    case MessageType::kNewOrder: return "NewOrder";
    case MessageType::kCancelOrder: return "CancelOrder";
    case MessageType::kModifyOrder: return "ModifyOrder";
    case MessageType::kOrderAccepted: return "OrderAccepted";
    case MessageType::kOrderRejected: return "OrderRejected";
    case MessageType::kOrderCancelled: return "OrderCancelled";
    case MessageType::kOrderModified: return "OrderModified";
    case MessageType::kCancelRejected: return "CancelRejected";
    case MessageType::kFill: return "Fill";
  }
  return "?";
}

}  // namespace

int main() {
  sim::Engine engine;
  net::Fabric fabric{engine};

  exchange::ExchangeConfig xconfig;
  xconfig.name = "EXCH";
  xconfig.symbols = {{proto::Symbol{"ACME"}, proto::InstrumentKind::kEquity,
                      proto::price_from_dollars(100)}};
  xconfig.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  xconfig.feed_mac = net::MacAddr::from_host_id(1);
  xconfig.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
  xconfig.order_mac = net::MacAddr::from_host_id(2);
  xconfig.order_ip = net::Ipv4Addr{10, 0, 0, 2};
  exchange::Exchange exch{engine, xconfig};

  net::Nic client_nic{engine, "trader", net::MacAddr::from_host_id(10),
                      net::Ipv4Addr{10, 0, 0, 10}};
  net::NetStack client{client_nic};
  fabric.connect(exch.order_nic(), 0, client_nic, 0, net::LinkConfig{});

  proto::boe::StreamParser parser;
  auto& session = client.connect_tcp(exch.order_nic().mac(), exch.order_nic().ip(),
                                     xconfig.order_port, 0);
  session.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
    parser.feed(bytes);
    while (auto decoded = parser.next()) {
      std::printf("  %9.2f us  <- %s", engine.now().micros(),
                  describe(proto::boe::type_of(decoded->message)));
      if (const auto* fill = std::get_if<proto::boe::Fill>(&decoded->message)) {
        std::printf(" (order %llu: %u @ $%.2f, leaves %u)",
                    static_cast<unsigned long long>(fill->client_order_id), fill->quantity,
                    proto::price_to_dollars(fill->price), fill->leaves_quantity);
      } else if (const auto* cxl = std::get_if<proto::boe::CancelRejected>(&decoded->message)) {
        std::printf(" (order %llu: reason=%s)",
                    static_cast<unsigned long long>(cxl->client_order_id),
                    cxl->reason == proto::boe::RejectReason::kTooLateToCancel ? "too-late"
                                                                              : "other");
      }
      std::printf("\n");
    }
  });

  std::uint32_t seq = 1;
  auto send = [&](const proto::boe::Message& message, const char* note) {
    std::printf("  %9.2f us  -> %s %s\n", engine.now().micros(),
                describe(proto::boe::type_of(message)), note);
    session.send(proto::boe::encode(message, seq++));
    engine.run();
  };

  std::printf("order_lifecycle: one session, one symbol (timestamps are simulation time)\n\n");
  engine.run();  // TCP handshake
  std::printf("TCP established after %.2f us\n\n", engine.now().micros());

  send(proto::boe::LoginRequest{7, 0xfeed}, "");

  std::printf("\n-- resting order, then a partial fill --\n");
  send(proto::boe::NewOrder{1, proto::Side::kSell, 300, proto::Symbol{"ACME"},
                            proto::price_from_dollars(100.10), proto::boe::TimeInForce::kDay},
       "(sell 300 @ $100.10)");
  // Another participant lifts 100 of it.
  exch.book(proto::Symbol{"ACME"})
      .submit({exch.next_order_id(), proto::Side::kBuy, proto::price_from_dollars(100.10), 100});
  engine.run();

  std::printf("\n-- reprice the remainder --\n");
  send(proto::boe::ModifyOrder{1, 200, proto::price_from_dollars(100.05)},
       "(200 @ $100.05)");

  std::printf("\n-- the cancel/fill race (§2) --\n");
  // The rest trades away just before our cancel reaches the matcher...
  exch.book(proto::Symbol{"ACME"})
      .submit({exch.next_order_id(), proto::Side::kBuy, proto::price_from_dollars(100.05), 200});
  send(proto::boe::CancelOrder{1}, "(cancel arrives after the fill)");

  std::printf("\n-- immediate-or-cancel sweep --\n");
  exch.book(proto::Symbol{"ACME"})
      .submit({exch.next_order_id(), proto::Side::kSell, proto::price_from_dollars(100.20), 150});
  send(proto::boe::NewOrder{2, proto::Side::kBuy, 400, proto::Symbol{"ACME"},
                            proto::price_from_dollars(100.20),
                            proto::boe::TimeInForce::kImmediateOrCancel},
       "(IOC buy 400 @ $100.20; only 150 is there)");

  std::printf("\nexchange stats: %llu orders, %llu fills, %llu cancel-rejects\n",
              static_cast<unsigned long long>(exch.stats().orders_received),
              static_cast<unsigned long long>(exch.stats().fills_sent),
              static_cast<unsigned long long>(exch.stats().cancel_rejects));
  return 0;
}
