// A compressed trading session with intraday shape.
//
// Runs the reference leaf-spine deployment through a scaled-down trading
// day: the intraday profile (open burst, midday trough, close ramp)
// modulates background market activity while several strategies trade.
// Prints a per-interval activity log and the end-of-day latency report a
// trading firm's monitoring would produce (§2: timestamps are used to
// compute strategy latency and analyze performance).
#include <cstdio>

#include "deploy/reference.hpp"
#include "feed/intraday.hpp"

int main() {
  using namespace tsn;

  deploy::DeploymentConfig config;
  config.strategy_count = 4;
  config.symbol_count = 12;
  config.events_per_second = 30'000;
  deploy::LeafSpineDeployment deployment{config};
  deployment.start();

  // Compress the 6.5 h session into 1.3 simulated seconds: each 20 ms slice
  // of simulation stands in for 6 minutes of wall-clock session, with the
  // rate multiplier sampled from the intraday profile.
  feed::IntradayProfile profile;
  constexpr int kSlices = 65;
  std::printf("trading_day: compressed session (each slice = 6 minutes of the day)\n\n");
  std::printf("%8s %8s %12s %10s %8s\n", "time", "shape", "updates", "orders", "fills");

  std::uint64_t last_updates = 0;
  std::uint64_t last_orders = 0;
  std::uint64_t last_fills = 0;
  exchange::ActivityConfig activity;
  activity.events_per_second = config.events_per_second;
  activity.cross_weight = 0.2;
  for (int slice = 0; slice < kSlices; ++slice) {
    const std::uint32_t session_second =
        9 * 3600 + 30 * 60 + static_cast<std::uint32_t>(slice) * 360;
    const double shape = profile.shape(session_second);
    exchange::ActivityConfig slice_activity = activity;
    slice_activity.events_per_second = config.events_per_second * shape;
    exchange::MarketActivityDriver driver{deployment.exchange(), slice_activity,
                                          1000 + static_cast<std::uint64_t>(slice)};
    driver.run_until(deployment.engine().now() + sim::millis(std::int64_t{20}));
    deployment.engine().run();

    const auto report = deployment.report();
    if (slice % 5 == 0) {
      std::printf("%5u:%02u %8.2f %12llu %10llu %8llu\n", session_second / 3600,
                  (session_second % 3600) / 60, shape,
                  static_cast<unsigned long long>(report.updates_received - last_updates),
                  static_cast<unsigned long long>(report.orders_sent - last_orders),
                  static_cast<unsigned long long>(report.fills - last_fills));
      last_updates = report.updates_received;
      last_orders = report.orders_sent;
      last_fills = report.fills;
    }
  }

  const auto report = deployment.report();
  std::printf("\nend-of-day report:\n");
  std::printf("  feed datagrams: %llu, normalized updates: %llu, gaps: %llu\n",
              static_cast<unsigned long long>(report.feed_datagrams),
              static_cast<unsigned long long>(report.normalized_updates),
              static_cast<unsigned long long>(report.sequence_gaps));
  std::printf("  orders: %llu  acks: %llu  fills: %llu\n",
              static_cast<unsigned long long>(report.orders_sent),
              static_cast<unsigned long long>(report.acks),
              static_cast<unsigned long long>(report.fills));
  auto print = [](const char* label, const telemetry::Histogram& s) {
    if (s.empty()) return;
    std::printf("  %-24s min %7.0f  p50 %7.0f  p99 %7.0f  max %7.0f ns\n", label, s.min(),
                s.median(), s.percentile(99.0), s.max());
  };
  print("tick-to-trade:", report.tick_to_trade_ns);
  print("feed path:", report.feed_path_ns);
  print("order RTT:", report.order_rtt_ns);

  // Per-strategy detail, as a firm's research tooling would slice it.
  std::printf("\nper-strategy:\n");
  for (std::size_t s = 0; s < deployment.strategy_count(); ++s) {
    const auto& strategy = deployment.strategy(s);
    std::printf("  %-8s updates %8llu  orders %6llu  fills %5llu  t2t %5.0f ns\n",
                strategy.config().name.c_str(),
                static_cast<unsigned long long>(strategy.stats().updates_received),
                static_cast<unsigned long long>(strategy.stats().orders_sent),
                static_cast<unsigned long long>(strategy.stats().fills),
                strategy.tick_to_trade().empty() ? 0.0 : strategy.tick_to_trade().mean());
  }
  return 0;
}
