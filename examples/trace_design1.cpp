// Traced Design 1: reconstructing the paper's hop decomposition live.
//
// Attaches a telemetry::TraceSink to the leaf-spine reference deployment,
// runs a burst of market activity, then picks one full tick-to-trade trace
// (exchange feed -> normalizer -> strategy -> gateway -> matcher) and shows
// its spans tiling the timeline: 12 commodity-switch hops, 3 software hops
// and the matcher, connected by link spans whose boundaries touch exactly.
// This is §4.1's "12 network hops / half the time is in the network"
// arithmetic, measured rather than assumed.
#include <cstdio>

#include "core/latency_model.hpp"
#include "deploy/reference.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

int main() {
  using namespace tsn;

  // One strategy / one partition / one exchange unit keeps every trace a
  // single linear chain through the fabric.
  deploy::DeploymentConfig config;
  config.strategy_count = 1;
  config.norm_partitions = 1;
  config.exchange_units = 1;
  config.symbol_count = 4;
  config.events_per_second = 20'000;
  deploy::LeafSpineDeployment deployment{config};

  telemetry::TraceSink sink;
  telemetry::Registry registry;
  deployment.register_metrics(registry);
  telemetry::ScopedTraceSink attach{sink};

  deployment.start();
  deployment.run(sim::millis(std::int64_t{40}));

  std::printf("traced Design-1 run: %llu traces, %zu spans recorded\n\n",
              static_cast<unsigned long long>(sink.trace_count()), sink.spans().size());

  // Find a full tick-to-trade chain: feed event traced all the way into the
  // matching engine (3 software hops: normalizer, strategy, gateway).
  for (telemetry::TraceId id = 1; id <= sink.trace_count(); ++id) {
    const auto spans = sink.trace(id);
    auto d = core::decompose(spans);
    if (d.matcher_hops != 1 || d.software_hops != 3) continue;

    std::printf("trace %llu, span by span:\n", static_cast<unsigned long long>(id));
    std::printf("  %-10s %-34s %14s %14s %10s\n", "kind", "entity", "t_in(ns)", "t_out(ns)",
                "dur(ns)");
    for (const auto& span : spans) {
      std::printf("  %-10s %-34s %14.1f %14.1f %10.1f\n",
                  std::string{telemetry::span_kind_name(span.kind)}.c_str(),
                  span.entity.c_str(), span.t_in.nanos(), span.t_out.nanos(),
                  span.duration().nanos());
    }

    std::printf("\ndecomposition (tiling spans only):\n");
    std::printf("  switch hops:    %zu   (paper: 12)\n", d.switch_hops);
    std::printf("  software hops:  %zu   (paper: 3, + 1 matcher)\n", d.software_hops);
    std::printf("  link traversals: %zu\n", d.link_traversals);
    std::printf("  switching time: %10.1f ns\n", d.switching.nanos());
    std::printf("  software time:  %10.1f ns\n", d.software.nanos());
    std::printf("  wire time:      %10.1f ns\n", d.wire.nanos());
    std::printf("  sum of spans:   %10.1f ns\n", d.total.nanos());
    std::printf("  end to end:     %10.1f ns  (tiles exactly: %s)\n", d.end_to_end().nanos(),
                d.tiles_exactly() ? "yes" : "NO");
    std::printf("  network share:  %9.1f%%  (paper: \"half of the overall time\")\n",
                100.0 * (d.switching + d.wire).nanos() / d.total.nanos());
    break;
  }

  // A few registered metrics, snapshot at end of run.
  std::printf("\nmetrics snapshot (excerpt):\n");
  for (const char* name : {"exchange.feed_messages", "normalizer.updates_out",
                           "strategy.strat0.orders_sent", "gateway.orders_forwarded"}) {
    std::printf("  %-28s %12.0f\n", name, registry.gauge_value(name));
  }

  std::printf("\nexport sizes: traces %zu bytes, metrics %zu bytes of JSON\n",
              sink.to_json().size(),
              registry.to_json(deployment.engine().now()).size());
  return 0;
}
