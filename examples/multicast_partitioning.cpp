// Feed partitioning and multicast group management (§2, §3).
//
// Shows the machinery a trading firm uses to split and merge feeds:
// partition schemes mapping symbols to multicast groups, the group
// allocator carving address blocks per feed, IGMP-snooped delivery through
// a ToR, and what happens when the partition count crosses the switch's
// hardware mroute capacity.
#include "sim/engine.hpp"
#include <cstdio>
#include <memory>

#include "feed/symbols.hpp"
#include "l2/commodity_switch.hpp"
#include "mcast/group.hpp"
#include "mcast/subscribe.hpp"
#include "net/fabric.hpp"
#include "proto/partition.hpp"

int main() {
  using namespace tsn;

  // 1. Partitioning schemes: the same universe split three ways.
  feed::SymbolUniverse universe{2'000, 42};
  std::printf("multicast_partitioning: 2000 symbols under three schemes\n\n");
  const proto::AlphabetPartition alpha{8};
  const proto::KindPartition kind;
  const proto::HashPartition hash{64};
  auto spread = [&universe](const proto::PartitionScheme& scheme, const char* name) {
    std::vector<int> counts(scheme.partition_count(), 0);
    for (const auto& inst : universe.instruments()) {
      ++counts[scheme.partition_of(inst.symbol, inst.kind)];
    }
    int min = counts[0];
    int max = counts[0];
    for (int c : counts) {
      min = c < min ? c : min;
      max = c > max ? c : max;
    }
    std::printf("  %-10s %3u partitions, %4d..%-4d symbols each (imbalance %.1fx)\n", name,
                scheme.partition_count(), min, max,
                static_cast<double>(max) / (min > 0 ? min : 1));
  };
  spread(alpha, "alphabet");
  spread(kind, "kind");
  spread(hash, "hash-64");

  // 2. Group allocation: one block per feed.
  mcast::GroupAllocator allocator;
  const auto exch_a = allocator.allocate_block("exchange-A", 8);
  const auto norm = allocator.allocate_block("normalized", 64);
  std::printf("\ngroup blocks: exchange-A %s+8, normalized %s+64 (total %u allocated)\n",
              exch_a.to_string().c_str(), norm.to_string().c_str(),
              allocator.total_allocated());

  // 3. Delivery through an IGMP-snooping ToR, and the capacity cliff.
  sim::Engine engine;
  net::Fabric fabric{engine};
  l2::CommoditySwitchConfig sw_config;
  sw_config.port_count = 8;
  sw_config.mroute_hardware_capacity = 48;  // deliberately tiny
  l2::CommoditySwitch tor{engine, "tor", sw_config};

  auto publisher = std::make_unique<net::Nic>(engine, "normalizer",
                                              net::MacAddr::from_host_id(1),
                                              net::Ipv4Addr{10, 0, 0, 1});
  auto subscriber = std::make_unique<net::Nic>(engine, "strategy",
                                               net::MacAddr::from_host_id(2),
                                               net::Ipv4Addr{10, 0, 0, 2});
  fabric.connect(tor, 0, *publisher, 0, net::LinkConfig{});
  fabric.connect(tor, 1, *subscriber, 0, net::LinkConfig{});

  // The strategy joins all 64 normalized partitions — more than the table.
  for (std::uint32_t p = 0; p < 64; ++p) {
    mcast::join_group(*subscriber, allocator.block("normalized").group(p));
  }
  engine.run();
  std::printf("\nafter joining 64 partitions on a 48-entry table:\n");
  std::printf("  hardware groups: %zu, software groups: %zu (overflowed: %s)\n",
              tor.mroutes().hardware_group_count(), tor.mroutes().software_group_count(),
              tor.mroutes().overflowed() ? "yes" : "no");

  std::uint64_t received = 0;
  subscriber->set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++received; });
  double hw_latency_us = 0.0;
  double sw_latency_us = 0.0;
  for (std::uint32_t p = 0; p < 64; ++p) {
    const auto group = allocator.block("normalized").group(p);
    const sim::Time start = engine.now();
    publisher->send_frame(
        net::build_multicast_frame(publisher->mac(), publisher->ip(), group, 31001, {}));
    engine.run();
    const double us = (engine.now() - start).micros();
    if (p < 48) {
      hw_latency_us = us;
    } else {
      sw_latency_us = us;
    }
  }
  std::printf("  64 frames sent, %llu delivered\n",
              static_cast<unsigned long long>(received));
  std::printf("  per-frame transit: hardware path %.2f us, software path %.2f us\n",
              hw_latency_us, sw_latency_us);
  std::printf("  switch: hw-forwarded %llu, sw-forwarded %llu, sw-drops %llu\n",
              static_cast<unsigned long long>(tor.stats().multicast_hw_forwarded),
              static_cast<unsigned long long>(tor.stats().multicast_sw_forwarded),
              static_cast<unsigned long long>(tor.stats().software_queue_drops));
  std::printf("\n(§3: when the mroute table overflows, \"switches generally fall back to\n"
              "software forwarding, which cripples performance\" — partition counts that\n"
              "keep growing 600 -> 1300 run straight into this)\n");
  return 0;
}
