// The paper's §4 design walk-through, as one program.
//
// Prints the analytic design-space comparison (Designs 1-3 plus the §5
// FPGA-augmented direction), then runs the same application stack on both
// buildable fabrics (leaf-spine and quad-L1S) and compares the measured
// feed-path and order-path latencies.
#include <cstdio>

#include "core/design.hpp"
#include "deploy/reference.hpp"

int main() {
  using namespace tsn;

  std::printf("design_comparison: the §4 design space\n\n");
  const auto designs = core::all_designs();
  std::vector<const core::NetworkDesign*> raw;
  for (const auto& d : designs) raw.push_back(d.get());
  std::printf("%s\n", core::comparison_report(raw, 1300).c_str());
  for (const auto& design : designs) {
    std::printf("%-12s %s\n", std::string{design->name()}.c_str(),
                design->limitations().c_str());
  }

  std::printf("\nrunning the same stack on both buildable designs (150 ms, 4 strategies)...\n");
  deploy::DeploymentConfig config;
  config.strategy_count = 4;
  config.events_per_second = 40'000;

  deploy::LeafSpineDeployment leaf_spine{config};
  leaf_spine.start();
  leaf_spine.run(sim::millis(std::int64_t{150}));
  const auto d1 = leaf_spine.report();

  deploy::QuadL1sDeployment quad{config};
  quad.start();
  quad.run(sim::millis(std::int64_t{150}));
  const auto d3 = quad.report();

  std::printf("\n%-26s %16s %16s\n", "measured (mean ns)", "design 1", "design 3");
  std::printf("%-26s %16.0f %16.0f\n", "feed path exch->strategy", d1.feed_path_ns.mean(),
              d3.feed_path_ns.mean());
  std::printf("%-26s %16.0f %16.0f\n", "order RTT", d1.order_rtt_ns.mean(),
              d3.order_rtt_ns.mean());
  std::printf("%-26s %16.0f %16.0f\n", "tick-to-trade", d1.tick_to_trade_ns.mean(),
              d3.tick_to_trade_ns.mean());
  std::printf("\nfeed-path advantage of L1S circuits: %.1fx lower\n",
              d1.feed_path_ns.mean() / d3.feed_path_ns.mean());
  std::printf("(the software hops are identical by construction; everything saved is\n"
              "switch pipeline latency — §4.3's two-orders-of-magnitude claim applies to\n"
              "the switching component, which the analytic table above isolates)\n");
  return 0;
}
