# Sanitizer and static-analysis wiring, driven by two cache variables:
#
#   TSN_SANITIZE     semicolon-or-comma list of sanitizers to enable
#                    ("address;undefined", "thread", ...). Applied globally so
#                    every library, test, and tool in the tree is instrumented.
#   TSN_CLANG_TIDY   when ON, runs clang-tidy (using the repo's .clang-tidy)
#                    alongside compilation via CMAKE_CXX_CLANG_TIDY.
#
# The CMakePresets.json presets `asan-ubsan`, `tsan`, and `tidy` are the
# intended entry points; setting the variables by hand works too.

function(tsn_enable_sanitizers)
  if(NOT TSN_SANITIZE)
    return()
  endif()
  string(REPLACE "," ";" _tsn_san_list "${TSN_SANITIZE}")
  string(REPLACE ";" "," _tsn_san_flags "${_tsn_san_list}")
  if("thread" IN_LIST _tsn_san_list AND "address" IN_LIST _tsn_san_list)
    message(FATAL_ERROR "TSAN and ASan are mutually exclusive; pick one preset")
  endif()
  message(STATUS "Sanitizers enabled: ${_tsn_san_flags}")
  add_compile_options(
    -fsanitize=${_tsn_san_flags}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
  )
  add_link_options(-fsanitize=${_tsn_san_flags})
endfunction()

function(tsn_enable_clang_tidy)
  if(NOT TSN_CLANG_TIDY)
    return()
  endif()
  find_program(TSN_CLANG_TIDY_EXE clang-tidy)
  if(NOT TSN_CLANG_TIDY_EXE)
    # Gate, don't fail: the container image may ship only gcc. The CI tidy
    # job installs clang-tidy; local builds just skip the checks.
    message(WARNING "TSN_CLANG_TIDY=ON but clang-tidy was not found; skipping")
    return()
  endif()
  message(STATUS "clang-tidy enabled: ${TSN_CLANG_TIDY_EXE}")
  set(CMAKE_CXX_CLANG_TIDY "${TSN_CLANG_TIDY_EXE}" PARENT_SCOPE)
endfunction()
