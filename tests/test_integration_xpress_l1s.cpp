// Integration: the Xpress custom transport over a merged L1S circuit —
// the §5 co-design the paper sketches. Two market-data publishers share
// one physical pipe into a consumer through an L1S mux; Xpress's
// self-delimiting compressed headers let the consumer demultiplex the
// interleaved streams with no Ethernet/IP/UDP framing at all.
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include "l1s/layer1_switch.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "proto/norm.hpp"
#include "proto/xpress.hpp"

namespace tsn {
namespace {

std::vector<std::byte> norm_update_bytes(std::uint8_t exchange_id, std::uint32_t seq) {
  proto::norm::Update update;
  update.exchange_id = exchange_id;
  update.symbol = proto::Symbol{"ACME"};
  update.price = proto::price_from_dollars(100.0) + seq;
  update.quantity = 100;
  std::vector<std::byte> out;
  net::WireWriter w{out};
  proto::norm::encode(update, w);
  return out;
}

TEST(XpressOverL1s, MergedStreamsDemultiplexCleanly) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  l1s::L1SwitchConfig config;
  config.port_count = 4;
  l1s::Layer1Switch sw{engine, "l1s", config};
  net::LinkConfig link;

  net::Nic feed_a{engine, "feedA", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic feed_b{engine, "feedB", net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 2}};
  net::Nic consumer{engine, "strategy", net::MacAddr::from_host_id(3),
                    net::Ipv4Addr{10, 0, 0, 3}};
  consumer.set_promiscuous(true);  // Xpress frames have no Ethernet header
  fabric.connect(sw, 0, feed_a, 0, link);
  fabric.connect(sw, 1, feed_b, 0, link);
  fabric.connect(sw, 2, consumer, 0, link);
  sw.patch(0, 2);
  sw.patch(1, 2);  // the merge
  ASSERT_TRUE(sw.is_merge_output(2));

  proto::xpress::Decompressor rx;
  std::vector<std::pair<std::uint16_t, std::uint32_t>> received;  // (stream, seq)
  std::uint64_t decoded_updates = 0;
  consumer.set_rx_handler([&](const net::PacketPtr& packet, sim::Time) {
    const auto result = rx.decode(packet->frame());
    ASSERT_TRUE(result.has_value());
    received.emplace_back(result->frame.stream_id, result->frame.seq);
    net::WireReader reader{result->frame.payload};
    const auto update = proto::norm::decode_one(reader);
    ASSERT_TRUE(update.has_value());
    EXPECT_EQ(update->exchange_id, result->frame.stream_id);
    ++decoded_updates;
  });

  // Senders sharing a merged pipe are provisioned with disjoint context
  // ranges (part of patching the circuit).
  proto::xpress::Compressor tx_a{0, 32};
  proto::xpress::Compressor tx_b{32, 32};
  constexpr std::uint32_t kFrames = 50;
  for (std::uint32_t seq = 1; seq <= kFrames; ++seq) {
    std::vector<std::byte> frame_a;
    (void)tx_a.encode(1, seq, norm_update_bytes(1, seq), frame_a);
    feed_a.send_frame(std::move(frame_a));
    std::vector<std::byte> frame_b;
    (void)tx_b.encode(2, seq, norm_update_bytes(2, seq), frame_b);
    feed_b.send_frame(std::move(frame_b));
    engine.run();
  }

  ASSERT_EQ(received.size(), 2 * kFrames);
  EXPECT_EQ(decoded_updates, 2 * kFrames);
  // Per-stream sequences arrive in order and complete.
  std::uint32_t next_a = 1;
  std::uint32_t next_b = 1;
  for (const auto& [stream, seq] : received) {
    if (stream == 1) {
      EXPECT_EQ(seq, next_a++);
    } else {
      ASSERT_EQ(stream, 2);
      EXPECT_EQ(seq, next_b++);
    }
  }
  EXPECT_EQ(rx.unknown_context_errors(), 0u);
}

TEST(XpressOverL1s, CompressedHeadersSaveMergedBandwidth) {
  // After stream setup every frame carries 3 header bytes instead of 46 —
  // on a merged pipe that headroom is the §4.3 congestion margin.
  proto::xpress::Compressor tx;
  std::vector<std::byte> pipe;
  std::uint64_t header_bytes = 0;
  constexpr int kFrames = 1'000;
  for (int i = 0; i < kFrames; ++i) {
    header_bytes +=
        tx.encode(7, static_cast<std::uint32_t>(i + 1), norm_update_bytes(7, 1), pipe);
  }
  EXPECT_LT(static_cast<double>(header_bytes) / kFrames, 3.1);
  const double standard = 46.0 + proto::norm::kMessageSize;
  const double xpress = static_cast<double>(pipe.size()) / kFrames;
  EXPECT_LT(xpress / standard, 0.55);  // >45% wire bytes saved per update
}

}  // namespace
}  // namespace tsn
