// Differential suite: the pooled SoA OrderBook vs the node-based
// ReferenceBook (the original std::map/std::list implementation it replaced
// on the hot path). Both books consume identical operation sequences —
// randomized soups across many seeds, adversarial hand-built flows, and
// fuzz-style PITCH datagrams (including truncated/bit-flipped ones decoded
// through decode_batch) — and every observable must match exactly:
// submit outcomes, executions (ids, prices, remainders, exec-id order),
// listener callback streams, best quotes, depth, open-order counts, and
// full for_each_order iteration order.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "book/order_book.hpp"
#include "book/reference_book.hpp"
#include "proto/pitch.hpp"
#include "sim/random.hpp"

namespace {

using namespace tsn;
using book::BestQuote;
using book::Execution;
using book::Order;
using book::OrderBook;
using book::ReferenceBook;

// Serializes every listener callback into a comparable event log.
class RecordingListener : public book::BookListener {
 public:
  void on_accept(const Order& order) override {
    log_ << "A id=" << order.id << " s=" << static_cast<char>(order.side)
         << " p=" << order.price << " q=" << order.quantity << '\n';
  }
  void on_execute(const Execution& e) override {
    log_ << "X r=" << e.resting_id << " a=" << e.aggressive_id << " q=" << e.quantity
         << " p=" << e.price << " x=" << e.exec_id << " rr=" << e.resting_remaining
         << " ar=" << e.aggressive_remaining << '\n';
  }
  void on_reduce(proto::OrderId id, proto::Quantity cancelled) override {
    log_ << "R id=" << id << " c=" << cancelled << '\n';
  }
  void on_delete(proto::OrderId id) override { log_ << "D id=" << id << '\n'; }
  void on_replace(proto::OrderId id, proto::Quantity q, proto::Price p) override {
    log_ << "M id=" << id << " q=" << q << " p=" << p << '\n';
  }

  [[nodiscard]] std::string take() {
    std::string out = log_.str();
    log_.str({});
    return out;
  }

 private:
  std::stringstream log_;
};

std::string quote_str(const BestQuote& q) {
  std::ostringstream out;
  out << "b=" << (q.bid_price ? *q.bid_price : -1) << "/" << q.bid_quantity
      << " a=" << (q.ask_price ? *q.ask_price : -1) << "/" << q.ask_quantity;
  return out.str();
}

std::string orders_str(const auto& book) {
  std::ostringstream out;
  book.for_each_order([&out](const Order& o) {
    out << o.id << ":" << static_cast<char>(o.side) << ":" << o.price << ":" << o.quantity
        << '\n';
  });
  return out.str();
}

// Drives both books through one mutation and asserts identical outcomes and
// identical observable state afterwards.
class BookPair {
 public:
  BookPair() : soa_(proto::Symbol{"DIFF"}, &soa_events_), ref_(proto::Symbol{"DIFF"}, &ref_events_) {}

  void submit(const Order& order, bool ioc = false) {
    const auto got = soa_.submit(order, ioc);
    const auto want = ref_.submit(order, ioc);
    ASSERT_EQ(static_cast<int>(got.result), static_cast<int>(want.result))
        << "submit id=" << order.id;
    ASSERT_EQ(got.filled, want.filled) << "submit id=" << order.id;
    check_events();
  }

  void cancel(proto::OrderId id) {
    const auto got = soa_.cancel(id);
    const auto want = ref_.cancel(id);
    ASSERT_EQ(got, want) << "cancel id=" << id;
    check_events();
  }

  void reduce(proto::OrderId id, proto::Quantity q) {
    ASSERT_EQ(soa_.reduce(id, q), ref_.reduce(id, q)) << "reduce id=" << id;
    check_events();
  }

  void replace(proto::OrderId id, proto::Quantity q, proto::Price p) {
    ASSERT_EQ(soa_.replace(id, q, p), ref_.replace(id, q, p)) << "replace id=" << id;
    check_events();
  }

  // Full observable-state comparison (more expensive; called at checkpoints).
  void check_state() {
    ASSERT_EQ(quote_str(soa_.best()), quote_str(ref_.best()));
    ASSERT_EQ(soa_.open_orders(), ref_.open_orders());
    ASSERT_EQ(soa_.bid_levels(), ref_.bid_levels());
    ASSERT_EQ(soa_.ask_levels(), ref_.ask_levels());
    ASSERT_EQ(soa_.executions(), ref_.executions());
    ASSERT_EQ(orders_str(soa_), orders_str(ref_));
  }

  void check_depth(proto::Side side, proto::Price price) {
    ASSERT_EQ(soa_.depth_at(side, price), ref_.depth_at(side, price))
        << "depth side=" << static_cast<char>(side) << " price=" << price;
  }

  void check_find(proto::OrderId id) {
    const auto got = soa_.find(id);
    const auto want = ref_.find(id);
    ASSERT_EQ(got.has_value(), want.has_value()) << "find id=" << id;
    if (got) {
      ASSERT_EQ(got->id, want->id);
      ASSERT_EQ(got->side, want->side);
      ASSERT_EQ(got->price, want->price);
      ASSERT_EQ(got->quantity, want->quantity);
    }
  }

  [[nodiscard]] OrderBook& soa() noexcept { return soa_; }
  [[nodiscard]] ReferenceBook& ref() noexcept { return ref_; }

 private:
  void check_events() {
    ASSERT_EQ(soa_events_.take(), ref_events_.take());
  }

  RecordingListener soa_events_;
  RecordingListener ref_events_;
  OrderBook soa_;
  ReferenceBook ref_;
};

TEST(BookDifferentialTest, HandBuiltCrossingFlow) {
  BookPair pair;
  pair.submit({1, proto::Side::kBuy, 10'000, 100});
  pair.submit({2, proto::Side::kBuy, 10'100, 50});
  pair.submit({3, proto::Side::kSell, 10'200, 80});
  pair.check_state();
  // Marketable sell sweeps both bid levels and rests the remainder.
  pair.submit({4, proto::Side::kSell, 9'900, 200});
  pair.check_state();
  // Marketable buy partially fills against the 10'200 ask.
  pair.submit({5, proto::Side::kBuy, 10'300, 60});
  pair.check_state();
  pair.check_depth(proto::Side::kSell, 9'900);
  pair.check_depth(proto::Side::kSell, 10'200);
  pair.check_find(4);
  pair.check_find(1);  // fully filled -> gone from both
}

TEST(BookDifferentialTest, IocRemainderAndReplaceRematch) {
  BookPair pair;
  pair.submit({1, proto::Side::kSell, 10'000, 100});
  pair.submit({2, proto::Side::kSell, 10'000, 100});  // same level, FIFO behind 1
  // IOC buy for more than the level holds: fills 200, cancels the rest.
  pair.submit({3, proto::Side::kBuy, 10'000, 250}, true);
  pair.check_state();
  pair.submit({4, proto::Side::kSell, 10'500, 40});
  pair.submit({5, proto::Side::kBuy, 10'200, 70});
  // Replace the resting buy to a marketable price: cancels, re-enters, and
  // must rematch identically (losing time priority in both books).
  pair.replace(5, 70, 10'600);
  pair.check_state();
  // Reduce to zero deletes; reduce-up is rejected by both.
  pair.submit({6, proto::Side::kBuy, 9'800, 30});
  pair.reduce(6, 50);
  pair.reduce(6, 10);
  pair.reduce(6, 0);
  pair.check_state();
}

TEST(BookDifferentialTest, UnknownIdsAndDoubleCancel) {
  BookPair pair;
  pair.submit({1, proto::Side::kBuy, 10'000, 100});
  pair.cancel(99);
  pair.reduce(99, 10);
  pair.replace(99, 10, 10'000);
  pair.cancel(1);
  pair.cancel(1);  // second cancel: unknown in both
  pair.check_state();
}

// The main soup: randomized operation mixes across many seeds, with a full
// state comparison every 64 operations and per-operation event/outcome
// comparison throughout.
TEST(BookDifferentialTest, RandomizedOperationSoup) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BookPair pair;
    sim::Rng rng{seed};
    std::vector<proto::OrderId> live;
    proto::OrderId next_id = 1;
    for (int op = 0; op < 2'000; ++op) {
      const auto roll = rng.next_below(100);
      if (roll < 55 || live.empty()) {
        // Submit: mostly passive, sometimes crossing, sometimes IOC.
        Order order;
        order.id = next_id++;
        order.side = (rng.next_below(2) != 0) ? proto::Side::kBuy : proto::Side::kSell;
        const auto band = rng.next_below(40);
        // Overlapping price bands make crossing common but not constant.
        order.price = 9'500 + static_cast<proto::Price>(band) * 25 +
                      (order.side == proto::Side::kBuy ? 0 : 250);
        order.quantity = static_cast<proto::Quantity>(1 + rng.next_below(300));
        const bool ioc = rng.next_below(8) == 0;
        pair.submit(order, ioc);
        if (!ioc) live.push_back(order.id);
      } else if (roll < 75) {
        const auto pick = rng.next_below(live.size());
        pair.cancel(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 88) {
        const auto pick = rng.next_below(live.size());
        pair.reduce(live[pick], static_cast<proto::Quantity>(rng.next_below(200)));
      } else {
        const auto pick = rng.next_below(live.size());
        const auto price = 9'400 + static_cast<proto::Price>(rng.next_below(45)) * 25;
        pair.replace(live[pick], static_cast<proto::Quantity>(1 + rng.next_below(250)),
                     price);
      }
      if ((op & 63) == 0) {
        pair.check_state();
        pair.check_find(static_cast<proto::OrderId>(1 + rng.next_below(next_id)));
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
    pair.check_state();
    for (proto::Price p = 9'400; p <= 10'800; p += 25) {
      pair.check_depth(proto::Side::kBuy, p);
      pair.check_depth(proto::Side::kSell, p);
    }
  }
}

// Slab/freelist stress: drain the book completely and refill it repeatedly
// so freed slots are recycled in bulk, then verify observables still match.
TEST(BookDifferentialTest, DrainAndRefillRecyclesSlots) {
  BookPair pair;
  proto::OrderId next_id = 1;
  for (int round = 0; round < 5; ++round) {
    std::vector<proto::OrderId> ids;
    for (int i = 0; i < 300; ++i) {
      Order order;
      order.id = next_id++;
      order.side = (i % 2 != 0) ? proto::Side::kBuy : proto::Side::kSell;
      order.price = (order.side == proto::Side::kBuy ? 9'000 : 11'000) +
                    static_cast<proto::Price>(i % 37) * 50;
      order.quantity = 10 + static_cast<proto::Quantity>(i % 90);
      pair.submit(order);
      ids.push_back(order.id);
    }
    pair.check_state();
    // Cancel in a different order than insertion (stripes) to fragment the
    // freelists before the next refill.
    for (std::size_t stripe = 0; stripe < 3; ++stripe) {
      for (std::size_t i = stripe; i < ids.size(); i += 3) pair.cancel(ids[i]);
    }
    pair.check_state();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Applies one decoded PITCH datagram to both books the way the replay lane
// does: adds submit, executes/reduces shrink or cancel, modifies replace,
// deletes cancel. Everything else is a no-op.
template <typename Book>
void apply_batch_row(Book& book, const proto::pitch::DecodedBatch& batch, std::size_t i) {
  using proto::pitch::DecodedKind;
  switch (batch.kind[i]) {
    case DecodedKind::kAddOrder:
      (void)book.submit(
          Order{batch.order_id[i], batch.side[i], batch.price[i], batch.quantity[i]});
      break;
    case DecodedKind::kOrderExecuted:
    case DecodedKind::kReduceSize: {
      const auto resting = book.find(batch.order_id[i]);
      if (!resting) break;
      const proto::Quantity cut = std::min(batch.quantity[i], resting->quantity);
      if (cut == resting->quantity) {
        (void)book.cancel(batch.order_id[i]);
      } else {
        (void)book.reduce(batch.order_id[i], resting->quantity - cut);
      }
      break;
    }
    case DecodedKind::kModifyOrder:
      (void)book.replace(batch.order_id[i], batch.quantity[i], batch.price[i]);
      break;
    case DecodedKind::kDeleteOrder:
      (void)book.cancel(batch.order_id[i]);
      break;
    default:
      break;
  }
}

// Fuzz-derived lane: build random PITCH datagrams, corrupt some of them
// (truncation and bit flips), decode through decode_batch, and apply the
// surviving prefix to both books. The corruption is applied identically to
// both, so the books must stay identical no matter what the decoder kept.
TEST(BookDifferentialTest, FuzzDerivedPitchSequences) {
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    BookPair pair;
    sim::Rng rng{seed};
    proto::OrderId next_id = 1;
    for (int datagram = 0; datagram < 40; ++datagram) {
      std::vector<std::byte> payload;
      proto::pitch::FrameBuilder builder{
          1, 1458,
          [&payload](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
            payload = std::move(p);
          }};
      const auto messages = 1 + rng.next_below(30);
      for (std::uint64_t m = 0; m < messages; ++m) {
        const auto kind = rng.next_below(6);
        const auto target = static_cast<proto::OrderId>(1 + rng.next_below(next_id));
        if (kind < 3) {
          proto::pitch::AddOrder add;
          add.order_id = next_id++;
          add.side = (rng.next_below(2) != 0) ? proto::Side::kBuy : proto::Side::kSell;
          add.price = 9'000 + static_cast<proto::Price>(rng.next_below(60)) * 100;
          add.quantity = static_cast<proto::Quantity>(1 + rng.next_below(500));
          add.symbol = proto::Symbol{"DIFF"};
          builder.append(proto::pitch::Message{add});
        } else if (kind == 3) {
          builder.append(proto::pitch::Message{proto::pitch::OrderExecuted{
              0, target, static_cast<proto::Quantity>(1 + rng.next_below(200)), m + 1}});
        } else if (kind == 4) {
          builder.append(proto::pitch::Message{proto::pitch::ModifyOrder{
              0, target, static_cast<proto::Quantity>(1 + rng.next_below(300)),
              9'000 + static_cast<proto::Price>(rng.next_below(60)) * 100, 0}});
        } else {
          builder.append(proto::pitch::Message{proto::pitch::DeleteOrder{0, target}});
        }
      }
      builder.flush();
      // Corrupt a third of the datagrams: truncate or flip a byte. The
      // decoder keeps the valid prefix; both books see exactly that prefix.
      if (rng.next_below(3) == 0 && payload.size() > proto::pitch::kUnitHeaderSize + 2) {
        if (rng.next_below(2) == 0) {
          payload.resize(proto::pitch::kUnitHeaderSize +
                         rng.next_below(payload.size() - proto::pitch::kUnitHeaderSize));
        } else {
          const auto at = rng.next_below(payload.size());
          payload[at] ^= std::byte{static_cast<unsigned char>(1u << rng.next_below(8))};
        }
      }
      proto::pitch::DecodedBatch batch;
      (void)proto::pitch::decode_batch(payload, batch);
      for (std::size_t i = 0; i < batch.count; ++i) {
        apply_batch_row(pair.soa(), batch, i);
        apply_batch_row(pair.ref(), batch, i);
      }
      pair.check_state();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
