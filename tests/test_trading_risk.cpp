#include "trading/risk.hpp"

#include <gtest/gtest.h>

namespace tsn::trading {
namespace {

using proto::Side;
using proto::Symbol;
using Verdict = RiskEngine::Verdict;

proto::boe::NewOrder order(proto::OrderId id, Side side, const char* symbol,
                           proto::Quantity qty, double dollars) {
  proto::boe::NewOrder out;
  out.client_order_id = id;
  out.side = side;
  out.quantity = qty;
  out.symbol = Symbol{symbol};
  out.price = proto::price_from_dollars(dollars);
  return out;
}

TEST(Risk, AcceptsWithinLimits) {
  RiskEngine risk;
  EXPECT_EQ(risk.check_new_order(order(1, Side::kBuy, "AAA", 100, 50.0)), Verdict::kAccept);
  EXPECT_EQ(risk.open_orders(), 1u);
  EXPECT_EQ(risk.stats().accepted, 1u);
}

TEST(Risk, RejectsOversizedOrder) {
  RiskLimits limits;
  limits.max_order_quantity = 500;
  RiskEngine risk{limits};
  EXPECT_EQ(risk.check_new_order(order(1, Side::kBuy, "AAA", 501, 10.0)),
            Verdict::kOrderTooLarge);
  EXPECT_EQ(risk.open_orders(), 0u);  // rejected orders reserve nothing
  EXPECT_EQ(risk.stats().rejected_size, 1u);
}

TEST(Risk, RejectsExcessNotional) {
  RiskLimits limits;
  limits.max_order_notional = proto::price_from_dollars(100.0) * 100;  // $10k
  RiskEngine risk{limits};
  EXPECT_EQ(risk.check_new_order(order(1, Side::kBuy, "AAA", 100, 100.0)), Verdict::kAccept);
  EXPECT_EQ(risk.check_new_order(order(2, Side::kBuy, "AAA", 101, 100.0)),
            Verdict::kNotionalTooLarge);
}

TEST(Risk, OpenOrderBudget) {
  RiskLimits limits;
  limits.max_open_orders = 2;
  RiskEngine risk{limits};
  EXPECT_EQ(risk.check_new_order(order(1, Side::kBuy, "AAA", 10, 1.0)), Verdict::kAccept);
  EXPECT_EQ(risk.check_new_order(order(2, Side::kBuy, "AAA", 10, 1.0)), Verdict::kAccept);
  EXPECT_EQ(risk.check_new_order(order(3, Side::kBuy, "AAA", 10, 1.0)),
            Verdict::kTooManyOpenOrders);
  // Terminal frees the slot.
  risk.on_terminal(1);
  EXPECT_EQ(risk.check_new_order(order(4, Side::kBuy, "AAA", 10, 1.0)), Verdict::kAccept);
}

TEST(Risk, FillsMovePositionAndReleaseOrders) {
  RiskEngine risk;
  ASSERT_EQ(risk.check_new_order(order(1, Side::kBuy, "AAA", 300, 10.0)), Verdict::kAccept);
  risk.on_fill(1, 100, 200);
  EXPECT_EQ(risk.position(Symbol{"AAA"}), 100);
  EXPECT_EQ(risk.open_orders(), 1u);  // 200 still working
  risk.on_fill(1, 200, 0);
  EXPECT_EQ(risk.position(Symbol{"AAA"}), 300);
  EXPECT_EQ(risk.open_orders(), 0u);
  // Sells reduce the position.
  ASSERT_EQ(risk.check_new_order(order(2, Side::kSell, "AAA", 300, 10.0)), Verdict::kAccept);
  risk.on_fill(2, 300, 0);
  EXPECT_EQ(risk.position(Symbol{"AAA"}), 0);
}

TEST(Risk, SymbolPositionLimitCountsWorstCaseExposure) {
  RiskLimits limits;
  limits.max_symbol_position = 500;
  RiskEngine risk{limits};
  // 400 long position via a fill.
  ASSERT_EQ(risk.check_new_order(order(1, Side::kBuy, "AAA", 400, 10.0)), Verdict::kAccept);
  risk.on_fill(1, 400, 0);
  // A working buy of 90 leaves headroom...
  ASSERT_EQ(risk.check_new_order(order(2, Side::kBuy, "AAA", 90, 10.0)), Verdict::kAccept);
  // ...but another 90 would project past 500 including the open order.
  EXPECT_EQ(risk.check_new_order(order(3, Side::kBuy, "AAA", 90, 10.0)),
            Verdict::kSymbolPositionLimit);
  // Selling against the long position is fine up to the short-side limit:
  // 400 - 900 = -500 exactly.
  EXPECT_EQ(risk.check_new_order(order(4, Side::kSell, "AAA", 900, 10.0)), Verdict::kAccept);
  // Another sell projects a -900 worst case.
  EXPECT_EQ(risk.check_new_order(order(5, Side::kSell, "AAA", 400, 10.0)),
            Verdict::kSymbolPositionLimit);
}

TEST(Risk, FirmGrossLimitSpansSymbols) {
  RiskLimits limits;
  limits.max_symbol_position = 1'000;
  limits.max_firm_gross_position = 1'500;
  RiskEngine risk{limits};
  ASSERT_EQ(risk.check_new_order(order(1, Side::kBuy, "AAA", 1'000, 10.0)), Verdict::kAccept);
  risk.on_fill(1, 1'000, 0);
  ASSERT_EQ(risk.check_new_order(order(2, Side::kSell, "BBB", 400, 10.0)), Verdict::kAccept);
  risk.on_fill(2, 400, 0);
  EXPECT_EQ(risk.firm_gross_position(), 1'400);  // |1000| + |-400|
  EXPECT_EQ(risk.check_new_order(order(3, Side::kBuy, "CCC", 200, 10.0)),
            Verdict::kFirmPositionLimit);
  EXPECT_EQ(risk.check_new_order(order(4, Side::kBuy, "CCC", 100, 10.0)), Verdict::kAccept);
}

TEST(Risk, VerdictMapsToWireReason) {
  EXPECT_EQ(to_reject_reason(Verdict::kAccept), proto::boe::RejectReason::kNone);
  EXPECT_EQ(to_reject_reason(Verdict::kOrderTooLarge), proto::boe::RejectReason::kRiskLimit);
  EXPECT_EQ(to_reject_reason(Verdict::kFirmPositionLimit),
            proto::boe::RejectReason::kRiskLimit);
}

TEST(Risk, UnknownOrderLifecycleEventsAreIgnored) {
  RiskEngine risk;
  risk.on_fill(999, 100, 0);
  risk.on_terminal(999);
  EXPECT_EQ(risk.position(Symbol{"AAA"}), 0);
}

}  // namespace
}  // namespace tsn::trading
