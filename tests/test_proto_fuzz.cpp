// Decoder robustness: random and mutated bytes must never crash, hang, or
// over-read any wire decoder — the property that matters when a feed
// handler is fed a truncated or corrupted frame at 10 Gb/s.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "net/headers.hpp"
#include "proto/boe.hpp"
#include "proto/norm.hpp"
#include "proto/pitch.hpp"
#include "proto/xpress.hpp"
#include "sim/random.hpp"

namespace tsn {
namespace {

std::vector<std::byte> random_bytes(sim::Rng& rng, std::size_t max_len) {
  const auto len = rng.next_below(max_len + 1);
  std::vector<std::byte> out(len);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

proto::Symbol random_symbol(sim::Rng& rng) {
  char chars[4] = {static_cast<char>('A' + rng.next_below(26)),
                   static_cast<char>('A' + rng.next_below(26)),
                   static_cast<char>('A' + rng.next_below(26)), '\0'};
  return proto::Symbol{chars};
}

proto::Side random_side(sim::Rng& rng) {
  return rng.bernoulli(0.5) ? proto::Side::kBuy : proto::Side::kSell;
}

proto::pitch::Message random_pitch_message(sim::Rng& rng) {
  switch (rng.next_below(9)) {
    case 0: {
      proto::pitch::Time m;
      m.seconds_since_midnight = static_cast<std::uint32_t>(rng.next_below(86'400));
      return proto::pitch::Message{m};
    }
    case 1: {
      proto::pitch::AddOrder m;
      m.time_offset_ns = static_cast<std::uint32_t>(rng.next_u64());
      m.order_id = rng.next_u64();
      m.side = random_side(rng);
      // Half short-form, half long-form (quantity/price past 16 bits).
      m.quantity = static_cast<proto::Quantity>(rng.next_below(rng.bernoulli(0.5) ? 0xffff : 0xffffff));
      m.symbol = random_symbol(rng);
      m.price = static_cast<proto::Price>(rng.next_below(rng.bernoulli(0.5) ? 0xffff : 0xffffffff));
      m.flags = static_cast<std::uint8_t>(rng.next_below(256));
      return proto::pitch::Message{m};
    }
    case 2: {
      proto::pitch::OrderExecuted m;
      m.time_offset_ns = static_cast<std::uint32_t>(rng.next_u64());
      m.order_id = rng.next_u64();
      m.executed_quantity = static_cast<proto::Quantity>(rng.next_u64());
      m.execution_id = rng.next_u64();
      return proto::pitch::Message{m};
    }
    case 3: {
      proto::pitch::ReduceSize m;
      m.order_id = rng.next_u64();
      m.cancelled_quantity = static_cast<proto::Quantity>(rng.next_u64());
      return proto::pitch::Message{m};
    }
    case 4: {
      proto::pitch::ModifyOrder m;
      m.order_id = rng.next_u64();
      m.quantity = static_cast<proto::Quantity>(rng.next_u64());
      m.price = static_cast<proto::Price>(rng.next_below(1'000'000'000));
      m.flags = static_cast<std::uint8_t>(rng.next_below(256));
      return proto::pitch::Message{m};
    }
    case 5: {
      proto::pitch::DeleteOrder m;
      m.order_id = rng.next_u64();
      return proto::pitch::Message{m};
    }
    case 6: {
      proto::pitch::Trade m;
      m.order_id = rng.next_u64();
      m.side = random_side(rng);
      m.quantity = static_cast<proto::Quantity>(rng.next_u64());
      m.symbol = random_symbol(rng);
      m.price = static_cast<proto::Price>(rng.next_below(1'000'000'000));
      m.execution_id = rng.next_u64();
      return proto::pitch::Message{m};
    }
    case 7: {
      proto::pitch::SnapshotBegin m;
      m.unit = static_cast<std::uint8_t>(rng.next_below(256));
      m.next_sequence = static_cast<std::uint32_t>(rng.next_u64());
      return proto::pitch::Message{m};
    }
    default: {
      proto::pitch::SnapshotEnd m;
      m.unit = static_cast<std::uint8_t>(rng.next_below(256));
      m.order_count = static_cast<std::uint32_t>(rng.next_u64());
      return proto::pitch::Message{m};
    }
  }
}

proto::boe::Message random_boe_message(sim::Rng& rng) {
  switch (rng.next_below(16)) {
    case 0:
      return proto::boe::LoginRequest{static_cast<std::uint32_t>(rng.next_u64()),
                                      rng.next_u64()};
    case 1:
      return proto::boe::LoginAccepted{};
    case 2:
      return proto::boe::LoginRejected{proto::boe::RejectReason::kNotLoggedIn};
    case 3:
      return proto::boe::Heartbeat{};
    case 4:
      return proto::boe::Logout{};
    case 5: {
      proto::boe::NewOrder m;
      m.client_order_id = rng.next_u64();
      m.side = random_side(rng);
      m.quantity = static_cast<proto::Quantity>(rng.next_u64());
      m.symbol = random_symbol(rng);
      m.price = static_cast<proto::Price>(rng.next_below(1'000'000'000));
      m.tif = rng.bernoulli(0.5) ? proto::boe::TimeInForce::kDay
                                 : proto::boe::TimeInForce::kImmediateOrCancel;
      return proto::boe::Message{m};
    }
    case 6:
      return proto::boe::CancelOrder{rng.next_u64()};
    case 7: {
      proto::boe::ModifyOrder m;
      m.client_order_id = rng.next_u64();
      m.quantity = static_cast<proto::Quantity>(rng.next_u64());
      m.price = static_cast<proto::Price>(rng.next_below(1'000'000'000));
      return proto::boe::Message{m};
    }
    case 8: {
      proto::boe::OrderAccepted m;
      m.client_order_id = rng.next_u64();
      m.exchange_order_id = rng.next_u64();
      m.transact_time_ns = rng.next_u64();
      return proto::boe::Message{m};
    }
    case 9:
      return proto::boe::OrderRejected{rng.next_u64(),
                                       proto::boe::RejectReason::kRiskLimit};
    case 10: {
      proto::boe::OrderCancelled m;
      m.client_order_id = rng.next_u64();
      m.cancelled_quantity = static_cast<proto::Quantity>(rng.next_u64());
      return proto::boe::Message{m};
    }
    case 11: {
      proto::boe::OrderModified m;
      m.client_order_id = rng.next_u64();
      m.quantity = static_cast<proto::Quantity>(rng.next_u64());
      m.price = static_cast<proto::Price>(rng.next_below(1'000'000'000));
      return proto::boe::Message{m};
    }
    case 12:
      return proto::boe::CancelRejected{rng.next_u64(),
                                        proto::boe::RejectReason::kUnknownOrder};
    case 13:
      return proto::boe::ReplayRequest{static_cast<std::uint32_t>(rng.next_u64())};
    case 14:
      return proto::boe::SequenceReset{static_cast<std::uint32_t>(rng.next_u64())};
    default: {
      proto::boe::Fill m;
      m.client_order_id = rng.next_u64();
      m.execution_id = rng.next_u64();
      m.quantity = static_cast<proto::Quantity>(rng.next_u64());
      m.price = static_cast<proto::Price>(rng.next_below(1'000'000'000));
      m.leaves_quantity = static_cast<proto::Quantity>(rng.next_u64());
      return proto::boe::Message{m};
    }
  }
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, RandomBytesNeverCrashAnyDecoder) {
  sim::Rng rng{GetParam()};
  for (int i = 0; i < 2'000; ++i) {
    const auto bytes = random_bytes(rng, 200);
    // Every decoder either parses or rejects; none may crash or over-read.
    (void)net::decode_frame(bytes);
    (void)proto::pitch::parse_frame(bytes);
    (void)proto::pitch::peek_header(bytes);
    proto::pitch::DecodedBatch batch;
    (void)proto::pitch::decode_batch(bytes, batch);
    (void)proto::norm::parse(bytes);
    (void)proto::boe::decode(bytes);
    (void)proto::boe::complete_length(bytes);
    proto::xpress::Decompressor xr;
    (void)xr.decode(bytes);
    net::WireReader r{bytes};
    (void)proto::pitch::decode_one(r);
  }
}

TEST_P(FuzzTest, MutatedValidPitchFramesAreParsedOrRejected) {
  sim::Rng rng{GetParam() ^ 0xabcdef};
  std::vector<std::byte> valid;
  proto::pitch::FrameBuilder builder{1, 1458,
                                     [&valid](std::vector<std::byte> p,
                                              const proto::pitch::UnitHeader&) {
                                       valid = std::move(p);
                                     }};
  proto::pitch::AddOrder add;
  add.order_id = 1;
  add.symbol = proto::Symbol{"ACME"};
  add.quantity = 100;
  add.price = 1'000;
  for (int i = 0; i < 6; ++i) builder.append(proto::pitch::Message{add});
  builder.flush();

  for (int round = 0; round < 2'000; ++round) {
    auto mutated = valid;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::byte>(1 << rng.next_below(8));
    }
    int count = 0;
    // May fail, may succeed; must never crash and never claim more
    // messages than the (possibly mutated) header allows.
    (void)proto::pitch::for_each_message(mutated,
                                         [&count](const proto::pitch::Message&) { ++count; });
    EXPECT_LE(count, 255);
  }
}

TEST_P(FuzzTest, BoeStreamParserSurvivesGarbageInterleaving) {
  sim::Rng rng{GetParam() ^ 0x5a5a5a};
  for (int round = 0; round < 200; ++round) {
    proto::boe::StreamParser parser;
    // Random mix of valid messages and garbage, fed in random chunks.
    std::vector<std::byte> stream;
    int valid_count = 0;
    for (int i = 0; i < 20; ++i) {
      if (rng.bernoulli(0.7)) {
        const auto m = proto::boe::encode(
            proto::boe::Message{proto::boe::CancelOrder{static_cast<proto::OrderId>(i)}},
            static_cast<std::uint32_t>(i));
        stream.insert(stream.end(), m.begin(), m.end());
        ++valid_count;
      } else {
        const auto garbage = random_bytes(rng, 30);
        stream.insert(stream.end(), garbage.begin(), garbage.end());
        break;  // garbage tears the stream; nothing after it is reliable
      }
    }
    std::size_t offset = 0;
    int decoded = 0;
    while (offset < stream.size()) {
      const auto chunk = 1 + rng.next_below(17);
      const auto len = std::min<std::size_t>(chunk, stream.size() - offset);
      parser.feed(std::span{stream}.subspan(offset, len));
      offset += len;
      while (parser.next()) ++decoded;
      if (parser.broken()) break;
    }
    EXPECT_LE(decoded, valid_count);
  }
}

TEST_P(FuzzTest, TruncationSweepOverEveryPrefix) {
  sim::Rng rng{GetParam()};
  const auto frame = net::build_udp_frame(
      net::MacAddr::from_host_id(1), net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 1},
      net::Ipv4Addr{10, 0, 0, 2}, 1, 2, random_bytes(rng, 100));
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    const auto decoded = net::decode_frame(std::span{frame}.subspan(0, len));
    if (len == frame.size()) {
      EXPECT_TRUE(decoded.has_value());
    }
    // Shorter prefixes may or may not decode (padding regions), but the
    // payload, when present, must stay inside the buffer.
    if (decoded && !decoded->payload.empty()) {
      const auto* begin = frame.data();
      EXPECT_GE(decoded->payload.data(), begin);
      EXPECT_LE(decoded->payload.data() + decoded->payload.size(), begin + len);
    }
  }
}

// --- deterministic-seed round trips over all three codecs -------------------

TEST_P(FuzzTest, PitchRandomMessagesRoundTripThroughFrames) {
  sim::Rng rng{GetParam() ^ 0x9177c4};
  for (int round = 0; round < 50; ++round) {
    std::vector<proto::pitch::Message> sent;
    std::vector<std::vector<std::byte>> frames;
    proto::pitch::FrameBuilder builder{
        3, 1458,
        [&frames](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
          frames.push_back(std::move(p));
        }};
    const auto n = 1 + rng.next_below(40);
    for (std::uint64_t i = 0; i < n; ++i) {
      sent.push_back(random_pitch_message(rng));
      builder.append(sent.back());
    }
    builder.flush();
    std::vector<proto::pitch::Message> got;
    for (const auto& frame : frames) {
      ASSERT_TRUE(proto::pitch::for_each_message(
          frame, [&got](const proto::pitch::Message& m) { got.push_back(m); }));
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      // Variant alternative and re-encoding must both match exactly.
      EXPECT_EQ(got[i].index(), sent[i].index());
      std::vector<std::byte> a, b;
      net::WireWriter wa{a}, wb{b};
      proto::pitch::encode(sent[i], wa);
      proto::pitch::encode(got[i], wb);
      EXPECT_EQ(a, b);
    }
  }
}

TEST_P(FuzzTest, BoeRandomMessagesRoundTrip) {
  sim::Rng rng{GetParam() ^ 0xb0e0b0e0};
  for (int round = 0; round < 500; ++round) {
    const auto message = random_boe_message(rng);
    const auto seq = static_cast<std::uint32_t>(rng.next_u64());
    const auto encoded = proto::boe::encode(message, seq);
    EXPECT_EQ(proto::boe::complete_length(encoded), encoded.size());
    const auto decoded = proto::boe::decode(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->seq, seq);
    EXPECT_EQ(decoded->consumed, encoded.size());
    EXPECT_EQ(decoded->message.index(), message.index());
    // Re-encoding the decoded message must reproduce the original bytes.
    EXPECT_EQ(proto::boe::encode(decoded->message, seq), encoded);
  }
}

TEST_P(FuzzTest, XpressRandomPayloadsRoundTripAllHeaderForms) {
  sim::Rng rng{GetParam() ^ 0x4e55};
  for (int round = 0; round < 100; ++round) {
    proto::xpress::Compressor compressor;
    proto::xpress::Decompressor decompressor;
    std::uint32_t seq = static_cast<std::uint32_t>(rng.next_below(1 << 30));
    const std::uint16_t stream = static_cast<std::uint16_t>(rng.next_below(0xffff));
    for (int i = 0; i < 20; ++i) {
      const auto payload = random_bytes(rng, 64);
      // Occasional sequence jumps exercise the resync header form.
      seq += rng.bernoulli(0.2) ? 1 + static_cast<std::uint32_t>(rng.next_below(100)) : 1;
      std::vector<std::byte> wire;
      (void)compressor.encode(stream, seq, payload, wire);
      const auto result = decompressor.decode(wire);
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(result->consumed, wire.size());
      EXPECT_EQ(result->frame.stream_id, stream);
      EXPECT_EQ(result->frame.seq, seq);
      ASSERT_EQ(result->frame.payload.size(), payload.size());
      EXPECT_TRUE(std::equal(payload.begin(), payload.end(), result->frame.payload.begin()));
    }
  }
}

// --- truncation sweeps ------------------------------------------------------

TEST_P(FuzzTest, BoeTruncationSweepNeverDecodesAPrefix) {
  sim::Rng rng{GetParam() ^ 0x7274};
  for (int round = 0; round < 100; ++round) {
    const auto message = random_boe_message(rng);
    const auto encoded = proto::boe::encode(message, 7);
    for (std::size_t len = 0; len < encoded.size(); ++len) {
      const auto prefix = std::span{encoded}.subspan(0, len);
      // An incomplete message must never decode.
      EXPECT_FALSE(proto::boe::decode(prefix).has_value());
    }
    EXPECT_TRUE(proto::boe::decode(encoded).has_value());
  }
}

TEST_P(FuzzTest, PitchTruncationSweepOverWholeFrames) {
  sim::Rng rng{GetParam() ^ 0x50495443};
  std::vector<std::byte> frame;
  proto::pitch::FrameBuilder builder{
      1, 1458,
      [&frame](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
        frame = std::move(p);
      }};
  for (int i = 0; i < 10; ++i) builder.append(random_pitch_message(rng));
  builder.flush();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto prefix = std::span{frame}.subspan(0, len);
    // A truncated frame must be rejected whole: peek_header bounds-checks
    // the length field against the buffer.
    EXPECT_FALSE(proto::pitch::parse_frame(prefix).has_value());
  }
  EXPECT_TRUE(proto::pitch::parse_frame(frame).has_value());
}

// --- batch decoder (SoA lane) ----------------------------------------------

// Re-encodes a message so structurally-equal messages compare byte-equal.
std::vector<std::byte> reencoded(const proto::pitch::Message& message) {
  std::vector<std::byte> out;
  net::WireWriter w{out};
  proto::pitch::encode(message, w);
  return out;
}

TEST_P(FuzzTest, BatchDecodeMatchesVariantDecoderOnValidFrames) {
  sim::Rng rng{GetParam() ^ 0x42415443};
  proto::pitch::DecodedBatch batch;  // reused across rounds, as consumers do
  for (int round = 0; round < 100; ++round) {
    std::vector<std::vector<std::byte>> frames;
    proto::pitch::FrameBuilder builder{
        2, 1458,
        [&frames](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
          frames.push_back(std::move(p));
        }};
    const auto n = 1 + rng.next_below(40);
    for (std::uint64_t i = 0; i < n; ++i) builder.append(random_pitch_message(rng));
    builder.flush();
    for (const auto& frame : frames) {
      std::vector<proto::pitch::Message> variant_messages;
      ASSERT_TRUE(proto::pitch::for_each_message(
          frame,
          [&variant_messages](const proto::pitch::Message& m) { variant_messages.push_back(m); }));
      ASSERT_TRUE(proto::pitch::decode_batch(frame, batch));
      ASSERT_EQ(batch.count, variant_messages.size());
      const auto header = proto::pitch::peek_header(frame);
      ASSERT_TRUE(header.has_value());
      EXPECT_EQ(batch.header.sequence, header->sequence);
      EXPECT_EQ(batch.header.unit, header->unit);
      for (std::size_t i = 0; i < batch.count; ++i) {
        // Row-by-row: the SoA columns must reconstruct the exact message.
        EXPECT_EQ(reencoded(batch.message_at(i)), reencoded(variant_messages[i]))
            << "message " << i;
      }
    }
  }
}

TEST_P(FuzzTest, BatchDecodeBitFlipParityWithForEachMessage) {
  sim::Rng rng{GetParam() ^ 0x42466c70};
  std::vector<std::byte> valid;
  proto::pitch::FrameBuilder builder{1, 1458,
                                     [&valid](std::vector<std::byte> p,
                                              const proto::pitch::UnitHeader&) {
                                       valid = std::move(p);
                                     }};
  for (int i = 0; i < 12; ++i) builder.append(random_pitch_message(rng));
  builder.flush();
  proto::pitch::DecodedBatch batch;
  for (int round = 0; round < 2'000; ++round) {
    auto mutated = valid;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::byte>(1 << rng.next_below(8));
    }
    // Both decoders share prefix semantics: same verdict, same number of
    // messages surfaced, and identical messages for the shared prefix.
    std::vector<proto::pitch::Message> variant_messages;
    const bool variant_ok = proto::pitch::for_each_message(
        mutated,
        [&variant_messages](const proto::pitch::Message& m) { variant_messages.push_back(m); });
    const bool batch_ok = proto::pitch::decode_batch(mutated, batch);
    EXPECT_EQ(batch_ok, variant_ok);
    ASSERT_EQ(batch.count, variant_messages.size());
    for (std::size_t i = 0; i < batch.count; ++i) {
      EXPECT_EQ(reencoded(batch.message_at(i)), reencoded(variant_messages[i]));
    }
  }
}

TEST_P(FuzzTest, BatchDecodeTruncationSweepMatchesParseFrame) {
  sim::Rng rng{GetParam() ^ 0x42545253};
  std::vector<std::byte> frame;
  proto::pitch::FrameBuilder builder{
      1, 1458,
      [&frame](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
        frame = std::move(p);
      }};
  for (int i = 0; i < 10; ++i) builder.append(random_pitch_message(rng));
  builder.flush();
  proto::pitch::DecodedBatch batch;
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    const auto prefix = std::span{frame}.subspan(0, len);
    const bool ok = proto::pitch::decode_batch(prefix, batch);
    EXPECT_EQ(ok, proto::pitch::parse_frame(prefix).has_value()) << "len=" << len;
    EXPECT_LE(batch.count, std::size_t{255});
  }
}

TEST_P(FuzzTest, XpressTruncationSweepNeverOverReads) {
  sim::Rng rng{GetParam() ^ 0x585052};
  for (int round = 0; round < 50; ++round) {
    proto::xpress::Compressor compressor;
    const auto payload = random_bytes(rng, 64);
    std::vector<std::byte> wire;
    (void)compressor.encode(42, 1, payload, wire);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      proto::xpress::Decompressor fresh;
      const auto prefix = std::span{wire}.subspan(0, len);
      EXPECT_FALSE(fresh.decode(prefix).has_value());
    }
  }
}

// --- bit flips --------------------------------------------------------------

TEST_P(FuzzTest, BoeBitFlipsAreParsedOrRejectedInBounds) {
  sim::Rng rng{GetParam() ^ 0x666c6970};
  for (int round = 0; round < 500; ++round) {
    auto mutated = proto::boe::encode(random_boe_message(rng), 9);
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::byte>(1 << rng.next_below(8));
    }
    // May decode (flip hit a don't-care field) or not; must stay in bounds.
    if (const auto decoded = proto::boe::decode(mutated)) {
      EXPECT_LE(decoded->consumed, mutated.size());
    }
  }
}

TEST_P(FuzzTest, XpressBitFlipsAreParsedOrRejectedInBounds) {
  sim::Rng rng{GetParam() ^ 0x58666c70};
  for (int round = 0; round < 500; ++round) {
    proto::xpress::Compressor compressor;
    proto::xpress::Decompressor decompressor;
    std::vector<std::byte> wire;
    (void)compressor.encode(7, 100, random_bytes(rng, 64), wire);
    // Prime the decompressor's context with the clean full-header frame,
    // then feed it a mutated compact/resync continuation.
    (void)decompressor.decode(wire);
    std::vector<std::byte> next;
    (void)compressor.encode(7, 101, random_bytes(rng, 64), next);
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      next[rng.next_below(next.size())] ^= static_cast<std::byte>(1 << rng.next_below(8));
    }
    if (const auto result = decompressor.decode(next)) {
      EXPECT_LE(result->consumed, next.size());
      const auto* base = next.data();
      if (!result->frame.payload.empty()) {
        EXPECT_GE(result->frame.payload.data(), base);
        EXPECT_LE(result->frame.payload.data() + result->frame.payload.size(),
                  base + next.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 0xdeadbeefULL, 0xcafef00dULL));

}  // namespace
}  // namespace tsn
