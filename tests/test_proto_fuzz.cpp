// Decoder robustness: random and mutated bytes must never crash, hang, or
// over-read any wire decoder — the property that matters when a feed
// handler is fed a truncated or corrupted frame at 10 Gb/s.
#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "proto/boe.hpp"
#include "proto/norm.hpp"
#include "proto/pitch.hpp"
#include "proto/xpress.hpp"
#include "sim/random.hpp"

namespace tsn {
namespace {

std::vector<std::byte> random_bytes(sim::Rng& rng, std::size_t max_len) {
  const auto len = rng.next_below(max_len + 1);
  std::vector<std::byte> out(len);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, RandomBytesNeverCrashAnyDecoder) {
  sim::Rng rng{GetParam()};
  for (int i = 0; i < 2'000; ++i) {
    const auto bytes = random_bytes(rng, 200);
    // Every decoder either parses or rejects; none may crash or over-read.
    (void)net::decode_frame(bytes);
    (void)proto::pitch::parse_frame(bytes);
    (void)proto::pitch::peek_header(bytes);
    (void)proto::norm::parse(bytes);
    (void)proto::boe::decode(bytes);
    (void)proto::boe::complete_length(bytes);
    proto::xpress::Decompressor xr;
    (void)xr.decode(bytes);
    net::WireReader r{bytes};
    (void)proto::pitch::decode_one(r);
  }
}

TEST_P(FuzzTest, MutatedValidPitchFramesAreParsedOrRejected) {
  sim::Rng rng{GetParam() ^ 0xabcdef};
  std::vector<std::byte> valid;
  proto::pitch::FrameBuilder builder{1, 1458,
                                     [&valid](std::vector<std::byte> p,
                                              const proto::pitch::UnitHeader&) {
                                       valid = std::move(p);
                                     }};
  proto::pitch::AddOrder add;
  add.order_id = 1;
  add.symbol = proto::Symbol{"ACME"};
  add.quantity = 100;
  add.price = 1'000;
  for (int i = 0; i < 6; ++i) builder.append(proto::pitch::Message{add});
  builder.flush();

  for (int round = 0; round < 2'000; ++round) {
    auto mutated = valid;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::byte>(1 << rng.next_below(8));
    }
    int count = 0;
    // May fail, may succeed; must never crash and never claim more
    // messages than the (possibly mutated) header allows.
    (void)proto::pitch::for_each_message(mutated,
                                         [&count](const proto::pitch::Message&) { ++count; });
    EXPECT_LE(count, 255);
  }
}

TEST_P(FuzzTest, BoeStreamParserSurvivesGarbageInterleaving) {
  sim::Rng rng{GetParam() ^ 0x5a5a5a};
  for (int round = 0; round < 200; ++round) {
    proto::boe::StreamParser parser;
    // Random mix of valid messages and garbage, fed in random chunks.
    std::vector<std::byte> stream;
    int valid_count = 0;
    for (int i = 0; i < 20; ++i) {
      if (rng.bernoulli(0.7)) {
        const auto m = proto::boe::encode(
            proto::boe::Message{proto::boe::CancelOrder{static_cast<proto::OrderId>(i)}},
            static_cast<std::uint32_t>(i));
        stream.insert(stream.end(), m.begin(), m.end());
        ++valid_count;
      } else {
        const auto garbage = random_bytes(rng, 30);
        stream.insert(stream.end(), garbage.begin(), garbage.end());
        break;  // garbage tears the stream; nothing after it is reliable
      }
    }
    std::size_t offset = 0;
    int decoded = 0;
    while (offset < stream.size()) {
      const auto chunk = 1 + rng.next_below(17);
      const auto len = std::min<std::size_t>(chunk, stream.size() - offset);
      parser.feed(std::span{stream}.subspan(offset, len));
      offset += len;
      while (parser.next()) ++decoded;
      if (parser.broken()) break;
    }
    EXPECT_LE(decoded, valid_count);
  }
}

TEST_P(FuzzTest, TruncationSweepOverEveryPrefix) {
  sim::Rng rng{GetParam()};
  const auto frame = net::build_udp_frame(
      net::MacAddr::from_host_id(1), net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 1},
      net::Ipv4Addr{10, 0, 0, 2}, 1, 2, random_bytes(rng, 100));
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    const auto decoded = net::decode_frame(std::span{frame}.subspan(0, len));
    if (len == frame.size()) {
      EXPECT_TRUE(decoded.has_value());
    }
    // Shorter prefixes may or may not decode (padding regions), but the
    // payload, when present, must stay inside the buffer.
    if (decoded && !decoded->payload.empty()) {
      const auto* begin = frame.data();
      EXPECT_GE(decoded->payload.data(), begin);
      EXPECT_LE(decoded->payload.data() + decoded->payload.size(), begin + len);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 0xdeadbeefULL, 0xcafef00dULL));

}  // namespace
}  // namespace tsn
