#include "proto/pitch.hpp"

#include <gtest/gtest.h>

namespace tsn::proto::pitch {
namespace {

Message sample_add(bool long_form) {
  AddOrder m;
  m.time_offset_ns = 123'456;
  m.order_id = 42;
  m.side = Side::kSell;
  m.symbol = Symbol{"ACME"};
  if (long_form) {
    m.quantity = 100'000;
    m.price = price_from_dollars(123.45);
  } else {
    m.quantity = 500;
    m.price = 60'000;  // $6.00 fits the short form
  }
  return m;
}

std::vector<std::byte> encode_to_bytes(const Message& m) {
  std::vector<std::byte> out;
  net::WireWriter w{out};
  encode(m, w);
  return out;
}

TEST(Pitch, MessageSizesMatchTheSpec) {
  // The paper quotes 26 bytes for a new order and 14 for a cancel (§5).
  EXPECT_EQ(encoded_size(sample_add(false)), 26u);
  EXPECT_EQ(encoded_size(sample_add(true)), 34u);
  EXPECT_EQ(encoded_size(Message{DeleteOrder{}}), 14u);
  EXPECT_EQ(encoded_size(Message{Time{}}), 6u);
  EXPECT_EQ(encoded_size(Message{OrderExecuted{}}), 26u);
  EXPECT_EQ(encoded_size(Message{ReduceSize{}}), 18u);
  EXPECT_EQ(encoded_size(Message{ModifyOrder{}}), 27u);
  EXPECT_EQ(encoded_size(Message{Trade{}}), 41u);
}

TEST(Pitch, EncodedSizeMatchesActualBytes) {
  for (const auto& m :
       {sample_add(false), sample_add(true), Message{DeleteOrder{1, 2}}, Message{Time{34200}},
        Message{OrderExecuted{1, 2, 3, 4}}, Message{ReduceSize{1, 2, 3}},
        Message{ModifyOrder{1, 2, 3, 4, 5}},
        Message{Trade{1, 2, Side::kBuy, 3, Symbol{"X"}, 4, 5}}}) {
    EXPECT_EQ(encode_to_bytes(m).size(), encoded_size(m));
  }
}

TEST(Pitch, ShortFormSelectionBoundaries) {
  AddOrder m;
  m.quantity = 0xffff;
  m.price = 0xffff;
  EXPECT_TRUE(m.fits_short_form());
  m.quantity = 0x10000;
  EXPECT_FALSE(m.fits_short_form());
  m.quantity = 1;
  m.price = 0x10000;
  EXPECT_FALSE(m.fits_short_form());
  m.price = -1;
  EXPECT_FALSE(m.fits_short_form());
}

TEST(Pitch, RoundTripAllMessageTypes) {
  const std::vector<Message> originals = {
      Message{Time{34'200}},
      sample_add(false),
      sample_add(true),
      Message{OrderExecuted{9, 77, 300, 1234}},
      Message{ReduceSize{10, 78, 200}},
      Message{ModifyOrder{11, 79, 400, price_from_dollars(9.99), 1}},
      Message{DeleteOrder{12, 80}},
      Message{Trade{13, 81, Side::kBuy, 500, Symbol{"WIDGET"}, price_from_dollars(55.5), 999}},
  };
  for (const auto& original : originals) {
    const auto bytes = encode_to_bytes(original);
    net::WireReader r{bytes};
    const auto decoded = decode_one(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->index(), original.index());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Pitch, AddOrderFieldsSurviveRoundTrip) {
  const auto bytes = encode_to_bytes(sample_add(true));
  net::WireReader r{bytes};
  const auto decoded = decode_one(r);
  ASSERT_TRUE(decoded.has_value());
  const auto* add = std::get_if<AddOrder>(&*decoded);
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->order_id, 42u);
  EXPECT_EQ(add->side, Side::kSell);
  EXPECT_EQ(add->quantity, 100'000u);
  EXPECT_EQ(add->price, price_from_dollars(123.45));
  EXPECT_EQ(add->symbol.view(), "ACME");
  EXPECT_EQ(add->time_offset_ns, 123'456u);
}

TEST(Pitch, DecodeRejectsTruncationAndBadType) {
  auto bytes = encode_to_bytes(sample_add(false));
  {
    net::WireReader r{std::span{bytes}.subspan(0, 10)};
    EXPECT_FALSE(decode_one(r).has_value());
  }
  bytes[1] = std::byte{0x7f};  // unknown type
  net::WireReader r{bytes};
  EXPECT_FALSE(decode_one(r).has_value());
}

TEST(Pitch, DecodeRejectsWrongLengthField) {
  auto bytes = encode_to_bytes(Message{DeleteOrder{1, 2}});
  bytes[0] = std::byte{13};  // claims 13, type says delete (14)
  net::WireReader r{bytes};
  EXPECT_FALSE(decode_one(r).has_value());
}

TEST(Pitch, FrameBuilderPacksAndSequences) {
  std::vector<std::pair<std::vector<std::byte>, UnitHeader>> frames;
  FrameBuilder builder{7, 200, [&](std::vector<std::byte> payload, const UnitHeader& header) {
                         frames.emplace_back(std::move(payload), header);
                       }};
  for (int i = 0; i < 3; ++i) builder.append(sample_add(false));
  builder.flush();
  ASSERT_EQ(frames.size(), 1u);
  const auto& [payload, header] = frames[0];
  EXPECT_EQ(header.unit, 7);
  EXPECT_EQ(header.count, 3);
  EXPECT_EQ(header.sequence, 1u);
  EXPECT_EQ(header.length, kUnitHeaderSize + 3 * 26);
  EXPECT_EQ(payload.size(), header.length);
  // Next frame continues the sequence.
  builder.append(sample_add(false));
  builder.flush();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1].second.sequence, 4u);
}

TEST(Pitch, FrameBuilderAutoFlushesAtCapacity) {
  std::size_t flushes = 0;
  FrameBuilder builder{1, kUnitHeaderSize + 26 * 2 + 5,
                       [&](std::vector<std::byte>, const UnitHeader& header) {
                         ++flushes;
                         EXPECT_LE(header.length, kUnitHeaderSize + 26 * 2 + 5);
                       }};
  for (int i = 0; i < 5; ++i) builder.append(sample_add(false));
  builder.flush();
  EXPECT_EQ(flushes, 3u);  // 2 + 2 + 1
}

TEST(Pitch, FrameBuilderFlushOnEmptyIsNoop) {
  int flushes = 0;
  FrameBuilder builder{1, 500, [&](std::vector<std::byte>, const UnitHeader&) { ++flushes; }};
  builder.flush();
  EXPECT_EQ(flushes, 0);
}

TEST(Pitch, FrameBuilderRejectsTinyMtu) {
  EXPECT_THROW(FrameBuilder(1, 10, [](std::vector<std::byte>, const UnitHeader&) {}),
               std::invalid_argument);
}

TEST(Pitch, ParseFrameRoundTrip) {
  std::vector<std::byte> payload;
  FrameBuilder builder{3, 1458, [&](std::vector<std::byte> p, const UnitHeader&) {
                         payload = std::move(p);
                       }};
  builder.append(Message{Time{34'200}});
  builder.append(sample_add(false));
  builder.append(Message{DeleteOrder{5, 42}});
  builder.flush();
  const auto parsed = parse_frame(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.count, 3);
  ASSERT_EQ(parsed->messages.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<Time>(parsed->messages[0]));
  EXPECT_TRUE(std::holds_alternative<AddOrder>(parsed->messages[1]));
  EXPECT_TRUE(std::holds_alternative<DeleteOrder>(parsed->messages[2]));
}

TEST(Pitch, ForEachMessageRejectsCorruptFrame) {
  std::vector<std::byte> payload;
  FrameBuilder builder{3, 1458, [&](std::vector<std::byte> p, const UnitHeader&) {
                         payload = std::move(p);
                       }};
  builder.append(sample_add(false));
  builder.flush();
  payload[9] = std::byte{0x00};  // clobber the first message's type
  EXPECT_FALSE(for_each_message(payload, [](const Message&) {}));
  EXPECT_FALSE(parse_frame(payload).has_value());
}

TEST(Pitch, PeekHeaderRejectsShortOrInconsistentPayloads) {
  EXPECT_FALSE(peek_header(std::vector<std::byte>(4)).has_value());
  std::vector<std::byte> bogus(20, std::byte{0});
  bogus[0] = std::byte{200};  // length 200 > 20 available
  EXPECT_FALSE(peek_header(bogus).has_value());
}

}  // namespace
}  // namespace tsn::proto::pitch
