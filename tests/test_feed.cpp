#include <gtest/gtest.h>

#include <algorithm>

#include "feed/burst.hpp"
#include "feed/framelen.hpp"
#include "net/headers.hpp"
#include "feed/intraday.hpp"
#include "feed/symbols.hpp"
#include "feed/trend.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::feed {
namespace {

TEST(SymbolUniverse, DeterministicAndWellFormed) {
  SymbolUniverse a{100, 7};
  SymbolUniverse b{100, 7};
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).symbol, b.at(i).symbol);
    EXPECT_FALSE(a.at(i).symbol.view().empty());
    EXPECT_GT(a.at(i).reference_price, 0);
    EXPECT_GT(a.at(i).weight, 0.0);
  }
  // Symbols are unique.
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_NE(a.at(i).symbol, a.at(0).symbol);
}

TEST(SymbolUniverse, WeightsAreSkewedTowardEarlyRanks) {
  SymbolUniverse u{1'000, 11};
  double head = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    total += u.weights()[i];
    if (i < 100) head += u.weights()[i];
  }
  EXPECT_GT(head / total, 0.5);  // top 10% of names carry most activity
}

// --- Figure 2(a) --------------------------------------------------------------

TEST(Trend, GrowthMatchesPaperFivexOverFiveYears) {
  MarketDataTrendModel model;
  const double start = model.expected_events_per_day(2020.0);
  const double end = model.expected_events_per_day(2025.0);
  EXPECT_NEAR(end / start, 6.0, 0.01);  // "increased 500%" = 6x
}

TEST(Trend, DailyCountsAreTensOfBillions) {
  MarketDataTrendModel model;
  const auto series = model.daily_series();
  ASSERT_EQ(series.size(), 5u * 252u);
  telemetry::Histogram recent;
  for (const auto& point : series) {
    if (point.year == 2024) recent.add(point.events);
  }
  // Tens of billions of events/day; >500k events/s daily average (§3).
  EXPECT_GT(recent.mean(), 2e10);
  EXPECT_GT(MarketDataTrendModel::events_per_second(recent.mean()), 500'000.0);
}

TEST(Trend, DayToDayVariabilityIsVisible) {
  MarketDataTrendModel model;
  const auto series = model.daily_series();
  telemetry::Histogram y2022;
  for (const auto& point : series) {
    if (point.year == 2022) y2022.add(point.events);
  }
  EXPECT_GT(y2022.max() / y2022.min(), 1.5);  // visible spread within a year
}

TEST(Trend, SeriesIsDeterministicPerSeed) {
  MarketDataTrendModel a{TrendConfig{}, 99};
  MarketDataTrendModel b{TrendConfig{}, 99};
  const auto sa = a.daily_series();
  const auto sb = b.daily_series();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i].events, sb[i].events);
}

// --- Figure 2(b) --------------------------------------------------------------

TEST(Intraday, QuietOutsideTradingHours) {
  IntradayProfile profile;
  EXPECT_LT(profile.shape(8 * 3600), 0.01);
  EXPECT_LT(profile.shape(17 * 3600), 0.01);
  EXPECT_GE(profile.shape(10 * 3600), 1.0);
}

TEST(Intraday, OpenAndCloseAreElevated) {
  IntradayProfile profile;
  const double open = profile.shape(9 * 3600 + 30 * 60);
  const double noon = profile.shape(12 * 3600 + 30 * 60);
  const double close = profile.shape(16 * 3600 - 60);
  EXPECT_GT(open, 1.8 * noon);
  EXPECT_GT(close, 1.4 * noon);
}

TEST(Intraday, SecondCountsMatchFigure2bCalibration) {
  IntradayProfile profile;
  const auto counts = profile.second_counts(2024);
  ASSERT_EQ(counts.size(), 86'400u);
  telemetry::Histogram session;
  for (std::uint32_t sec = 0; sec < 86'400; ++sec) {
    if (sec >= profile.config().open_second && sec < profile.config().close_second) {
      session.add(static_cast<double>(counts[sec]));
    } else {
      EXPECT_LT(counts[sec], 3'000u) << "after-hours activity too high at " << sec;
    }
  }
  // Median second > 300k events; busiest ~1.5M (paper: 300k / 1.5M).
  EXPECT_GT(session.median(), 300'000.0);
  EXPECT_LT(session.median(), 500'000.0);
  EXPECT_GT(session.max(), 1'000'000.0);
  EXPECT_LT(session.max(), 2'200'000.0);
}

TEST(Intraday, RateMultiplierTracksShape) {
  IntradayProfile profile;
  const auto fn = profile.rate_multiplier();
  EXPECT_NEAR(fn(sim::Time::zero() + sim::seconds(std::int64_t{12 * 3600})),
              profile.shape(12 * 3600), 1e-9);
}

// --- Figure 2(c) --------------------------------------------------------------

TEST(Burst, WindowCountsPreserveTotal) {
  BurstMicrostructure burst;
  const auto counts = burst.window_counts(1'500'000, 7);
  ASSERT_EQ(counts.size(), 10'000u);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_NEAR(static_cast<double>(total), 1.5e6, 0.05e6);
}

TEST(Burst, ShapeMatchesFigure2cCalibration) {
  BurstMicrostructure burst;
  const auto counts = burst.window_counts(1'500'000, 42);
  telemetry::Histogram stats;
  for (auto c : counts) stats.add(static_cast<double>(c));
  // Paper: median 129 events / 100 us, busiest window 1066.
  EXPECT_GT(stats.median(), 90.0);
  EXPECT_LT(stats.median(), 165.0);
  EXPECT_GT(stats.max(), 700.0);
  EXPECT_LT(stats.max(), 1'800.0);
  // Peak-to-median ratio near the paper's ~8x.
  EXPECT_GT(stats.max() / stats.median(), 5.0);
}

TEST(Burst, EventTimesAreOrderedWithinWindowsAndInRange) {
  BurstMicrostructure burst;
  BurstConfig tiny;
  tiny.window_count = 100;
  BurstMicrostructure small{tiny};
  const auto counts = small.window_counts(5'000, 3);
  const auto window = sim::micros(std::int64_t{100});
  const auto start = sim::Time::zero() + sim::seconds(std::int64_t{41'000});
  const auto times = BurstMicrostructure::event_times(counts, start, window, 9);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  ASSERT_EQ(times.size(), total);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GE(times[i], times[i - 1]);
  EXPECT_GE(times.front(), start);
  EXPECT_LT(times.back(), start + window * 100);
}

// --- Table 1 -------------------------------------------------------------------

struct ProfileCase {
  const char* label;
  FeedProfile profile;
  double min_target;
  double avg_target;
  double median_target;
  double max_target;
};

class FrameLengthTest : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(FrameLengthTest, MatchesTable1Shape) {
  const auto& param = GetParam();
  FrameLengthSampler sampler{param.profile, 1234};
  telemetry::Histogram stats;
  for (int i = 0; i < 50'000; ++i) {
    stats.add(static_cast<double>(sampler.next_frame_length()));
  }
  // Table 1 is a production sample; we require the same shape: the min
  // within a few bytes, max exact (MTU policy), median/avg within ~20%.
  EXPECT_NEAR(stats.min(), param.min_target, 9.0) << param.label;
  EXPECT_EQ(stats.max(), param.max_target) << param.label;
  EXPECT_NEAR(stats.median(), param.median_target, param.median_target * 0.2) << param.label;
  EXPECT_NEAR(stats.mean(), param.avg_target, param.avg_target * 0.25) << param.label;
  // All frames are legal Ethernet sizes.
  EXPECT_GE(stats.min(), 64.0);
  EXPECT_LE(stats.max(), 1514.0);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, FrameLengthTest,
    ::testing::Values(ProfileCase{"A", exchange_a_profile(), 73, 92, 89, 1514},
                      ProfileCase{"B", exchange_b_profile(), 64, 113, 76, 1067},
                      ProfileCase{"C", exchange_c_profile(), 81, 151, 101, 1442}),
    [](const ::testing::TestParamInfo<ProfileCase>& info) {
      return std::string{"Exchange"} + info.param.label;
    });

TEST(FrameLength, FramesAreDecodableMarketData) {
  FrameLengthSampler sampler{exchange_a_profile(), 99};
  for (int i = 0; i < 200; ++i) {
    const auto frame = sampler.next_frame();
    const auto decoded = net::decode_frame(frame);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_TRUE(decoded->is_udp());
    EXPECT_TRUE(decoded->ip->dst.is_multicast());
    int messages = 0;
    EXPECT_TRUE(proto::pitch::for_each_message(
        decoded->payload, [&](const proto::pitch::Message&) { ++messages; }));
    EXPECT_GT(messages, 0);
  }
}

}  // namespace
}  // namespace tsn::feed
