// Differential property test: SessionStore vs a naive std::map oracle.
//
// Randomized op soups (create / bind / unbind / re-login / takeover-style
// wrong-token logins / order register / close / journal stage+flush+replay /
// destroy) run against both the pooled sharded store and a transparently
// correct oracle built on std::map/std::set. After every mutation batch the
// test compares lookups, verdicts, per-shard connected membership *in bind
// order*, open-order sets, dedupe marks and byte-exact replay streams.
// Destroy + re-login exercises slot reuse and the generation-bump dedupe
// invalidation; multiple shard counts exercise the directory sharding.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exchange/session_store.hpp"
#include "sim/random.hpp"

namespace tsn {
namespace {

using exchange::LoginVerdict;
using exchange::OrderVerdict;
using exchange::SessionStore;
using exchange::SessionStoreConfig;

constexpr std::uint32_t kIdBase = 5'000'000;

struct OracleSession {
  std::uint64_t token = 0;
  bool bound = false;
  std::map<proto::OrderId, proto::OrderId> open;  // client id -> exchange id
  std::set<proto::OrderId> used;                  // this incarnation's client ids
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> journal;
  std::uint32_t tx = 1;
};

struct Oracle {
  std::map<std::uint32_t, OracleSession> sessions;        // by external id
  std::map<std::uint32_t, std::vector<std::uint32_t>> shard_lists;  // bind order
  std::map<proto::OrderId, std::pair<std::uint32_t, proto::OrderId>> exch;  // -> (ext, client)

  void bind(std::uint32_t shard, std::uint32_t ext) {
    auto& list = shard_lists[shard];
    std::erase(list, ext);
    list.push_back(ext);
    sessions[ext].bound = true;
  }
  void unbind(std::uint32_t shard, std::uint32_t ext) {
    std::erase(shard_lists[shard], ext);
    sessions[ext].bound = false;
  }
};

class SessionStoreDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionStoreDifferentialTest, OpSoupMatchesOracle) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  const std::uint32_t shard_cfg[] = {1, 4, 16, 32};
  SessionStoreConfig config;
  config.shards = shard_cfg[seed % 4];
  SessionStore store(config);
  if (seed % 2 == 0) store.reserve(64, 256, 1 << 14);  // odd seeds grow on demand
  Oracle oracle;

  const std::uint32_t population = 48;
  std::uint64_t next_exchange_id = 1;
  std::uint32_t next_conn = 1;
  std::uint64_t next_client_id = 1;
  std::vector<proto::OrderId> scratch_ids;

  const auto token_of = [](std::uint32_t ext) { return 0x70CE2ULL + ext * 7919ULL; };
  const auto slot_of = [&](std::uint32_t ext) { return store.lookup(ext); };
  const auto pick_live = [&]() -> std::uint32_t {
    if (oracle.sessions.empty()) return 0;
    auto it = oracle.sessions.begin();
    std::advance(it, static_cast<long>(rng.next_below(oracle.sessions.size())));
    return it->first;
  };

  for (int op = 0; op < 3000; ++op) {
    const std::uint64_t kind = rng.next_below(100);
    if (kind < 22) {  // login (fresh, resume, or wrong token)
      const std::uint32_t ext = kIdBase + static_cast<std::uint32_t>(rng.next_below(population));
      const bool wrong = rng.bernoulli(0.15);
      const std::uint64_t token = wrong ? ~token_of(ext) : token_of(ext);
      const auto result = store.login(ext, token);
      auto it = oracle.sessions.find(ext);
      if (it == oracle.sessions.end()) {
        ASSERT_EQ(result.verdict, LoginVerdict::kNew);
        oracle.sessions[ext].token = token;
      } else if (it->second.token == token) {
        ASSERT_EQ(result.verdict, LoginVerdict::kMatch);
        ASSERT_EQ(store.session_id(result.slot), ext);
      } else {
        ASSERT_EQ(result.verdict, LoginVerdict::kInUse);
        ASSERT_EQ(result.slot, SessionStore::kNullSlot);
      }
    } else if (kind < 34) {  // bind (fresh conn, possibly a rebind)
      if (oracle.sessions.empty()) continue;
      const std::uint32_t ext = pick_live();
      store.bind(slot_of(ext), next_conn++);
      oracle.bind(store.shard_of(ext), ext);
    } else if (kind < 42) {  // unbind
      if (oracle.sessions.empty()) continue;
      const std::uint32_t ext = pick_live();
      store.unbind(slot_of(ext));
      oracle.unbind(store.shard_of(ext), ext);
    } else if (kind < 62) {  // register an order (sometimes a duplicate id)
      if (oracle.sessions.empty()) continue;
      const std::uint32_t ext = pick_live();
      auto& osess = oracle.sessions[ext];
      proto::OrderId client_id;
      if (!osess.used.empty() && rng.bernoulli(0.25)) {
        auto it = osess.used.begin();
        std::advance(it, static_cast<long>(rng.next_below(osess.used.size())));
        client_id = *it;
      } else {
        client_id = next_client_id++;
      }
      const proto::OrderId exchange_id = next_exchange_id++;
      const auto verdict = store.register_order(slot_of(ext), client_id, exchange_id,
                                                static_cast<std::uint16_t>(ext % 7));
      if (osess.used.contains(client_id)) {
        ASSERT_EQ(verdict, OrderVerdict::kDuplicateClientId) << "id " << client_id;
      } else {
        ASSERT_EQ(verdict, OrderVerdict::kAccepted);
        osess.used.insert(client_id);
        osess.open[client_id] = exchange_id;
        oracle.exch[exchange_id] = {ext, client_id};
      }
    } else if (kind < 72) {  // close an open order
      if (oracle.exch.empty()) continue;
      auto it = oracle.exch.begin();
      std::advance(it, static_cast<long>(rng.next_below(oracle.exch.size())));
      const auto [ext, client_id] = it->second;
      const std::uint32_t order = store.find_open(slot_of(ext), client_id);
      ASSERT_NE(order, SessionStore::kNullSlot);
      ASSERT_EQ(store.order_exchange_id(order), it->first);
      store.close_order(order);
      oracle.sessions[ext].open.erase(client_id);
      oracle.exch.erase(it);
    } else if (kind < 84) {  // journal a sequenced message
      if (oracle.sessions.empty()) continue;
      const std::uint32_t ext = pick_live();
      auto& osess = oracle.sessions[ext];
      std::vector<std::byte> payload(1 + rng.next_below(24));
      for (auto& b : payload) b = static_cast<std::byte>(rng.next_below(256));
      const std::uint32_t seq = osess.tx++;
      store.journal_stage(slot_of(ext), seq, payload);
      osess.journal.emplace_back(seq, std::move(payload));
      if (rng.bernoulli(0.3)) store.journal_flush();
    } else if (kind < 90) {  // replay from a random horizon
      if (oracle.sessions.empty()) continue;
      const std::uint32_t ext = pick_live();
      const auto& osess = oracle.sessions[ext];
      const std::uint32_t last_seen =
          static_cast<std::uint32_t>(rng.next_below(osess.tx + 1));
      std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> got;
      store.replay(slot_of(ext), last_seen, [&](std::uint32_t seq,
                                                std::span<const std::byte> bytes) {
        got.emplace_back(seq, std::vector<std::byte>(bytes.begin(), bytes.end()));
      });
      std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> want;
      for (const auto& [seq, bytes] : osess.journal) {
        if (seq > last_seen) want.emplace_back(seq, bytes);
      }
      ASSERT_EQ(got, want) << "replay horizon " << last_seen;
    } else if (kind < 94) {  // destroy (slot reuse + generation bump)
      if (oracle.sessions.empty()) continue;
      const std::uint32_t ext = pick_live();
      store.destroy(slot_of(ext));
      oracle.unbind(store.shard_of(ext), ext);
      for (auto it = oracle.exch.begin(); it != oracle.exch.end();) {
        it = it->second.first == ext ? oracle.exch.erase(it) : std::next(it);
      }
      oracle.sessions.erase(ext);
      ASSERT_EQ(store.lookup(ext), SessionStore::kNullSlot);
    } else {  // point queries on a random live session
      if (oracle.sessions.empty()) continue;
      const std::uint32_t ext = pick_live();
      const auto& osess = oracle.sessions.at(ext);
      const std::uint32_t slot = slot_of(ext);
      ASSERT_NE(slot, SessionStore::kNullSlot);
      ASSERT_EQ(store.open_order_count(slot), osess.open.size());
      store.collect_open_client_ids(slot, scratch_ids);
      std::vector<proto::OrderId> want_ids;
      for (const auto& [cid, eid] : osess.open) want_ids.push_back(cid);
      ASSERT_EQ(scratch_ids, want_ids);  // both sorted ascending
      const proto::OrderId probe = rng.next_below(next_client_id + 4);
      ASSERT_EQ(store.client_id_used(slot, probe), osess.used.contains(probe));
      ASSERT_EQ(store.find_open(slot, probe) != SessionStore::kNullSlot,
                osess.open.contains(probe));
    }

    if (op % 97 == 0) {  // full cross-check: directory + sweep membership
      ASSERT_EQ(store.session_count(), oracle.sessions.size());
      ASSERT_EQ(store.open_orders_total(), oracle.exch.size());
      for (const auto& [eid, owner] : oracle.exch) {
        const std::uint32_t order = store.find_by_exchange(eid);
        ASSERT_NE(order, SessionStore::kNullSlot);
        ASSERT_EQ(store.order_client_id(order), owner.second);
        ASSERT_EQ(store.session_id(store.order_session(order)), owner.first);
      }
      for (std::uint32_t shard = 0; shard < store.shard_count(); ++shard) {
        std::vector<std::uint32_t> got;
        store.for_each_connected(shard, [&](std::uint32_t slot) {
          got.push_back(store.session_id(slot));
        });
        const auto it = oracle.shard_lists.find(shard);
        const std::vector<std::uint32_t> want =
            it == oracle.shard_lists.end() ? std::vector<std::uint32_t>{} : it->second;
        ASSERT_EQ(got, want) << "shard " << shard << " bind order diverged";
        ASSERT_EQ(store.connected_count(shard), want.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionStoreDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 17u, 42u, 1001u, 9999u));

// The generation counter is the dedupe-mark invalidator: client-id marks
// carry the generation they were registered under, and destroy bumps the
// slot's counter so old marks die. Park the counter at the top of its range
// and drive it across the 32-bit wrap: marks from the 0xfffffffe and
// 0xffffffff incarnations must stay dead after the counter re-enters low
// values, and a rehash (which sweeps stale-generation marks) must keep the
// live incarnation's marks intact.
TEST(SessionStoreGeneration, WraparoundKeepsDedupeSound) {
  SessionStore store(SessionStoreConfig{.shards = 1});
  const std::uint32_t ext = kIdBase;
  const auto first = store.login(ext, 1);
  ASSERT_EQ(first.verdict, LoginVerdict::kNew);
  const std::uint32_t slot = first.slot;
  store.debug_set_generation(slot, 0xfffffffeu);
  ASSERT_EQ(store.register_order(slot, 100, 1'000, 0), OrderVerdict::kAccepted);
  ASSERT_EQ(store.register_order(slot, 100, 1'001, 0), OrderVerdict::kDuplicateClientId);

  store.destroy(slot);  // generation -> 0xffffffff
  const auto second = store.login(ext, 1);
  ASSERT_EQ(second.verdict, LoginVerdict::kNew);
  ASSERT_EQ(second.slot, slot);  // LIFO freelist hands the slot straight back
  EXPECT_EQ(store.generation(slot), 0xffffffffu);
  EXPECT_FALSE(store.client_id_used(slot, 100));  // old incarnation's mark is dead
  ASSERT_EQ(store.register_order(slot, 100, 1'002, 0), OrderVerdict::kAccepted);

  store.destroy(slot);  // generation wraps: 0xffffffff -> 0
  const auto third = store.login(ext, 1);
  ASSERT_EQ(third.slot, slot);
  EXPECT_EQ(store.generation(slot), 0u);
  EXPECT_FALSE(store.client_id_used(slot, 100));
  ASSERT_EQ(store.register_order(slot, 100, 1'003, 0), OrderVerdict::kAccepted);

  // Force a client-index rehash (the stale-generation sweep) and confirm it
  // keeps exactly the live incarnation's marks.
  for (proto::OrderId id = 200; id < 400; ++id) {
    ASSERT_EQ(store.register_order(slot, id, 10'000 + id, 0), OrderVerdict::kAccepted);
  }
  EXPECT_TRUE(store.client_id_used(slot, 100));
  EXPECT_FALSE(store.client_id_used(slot, 150));
  ASSERT_EQ(store.register_order(slot, 100, 20'000, 0), OrderVerdict::kDuplicateClientId);
}

// Tombstone-heavy churn: a bounded set of open orders cycling through the
// exchange-id index piles up tombstones to the load-factor trip over and
// over. The trip must compact in place (rehash at unchanged capacity, drop
// tombstones), not double forever; lookups stay correct against a std::map
// oracle throughout.
TEST(SessionStoreExchangeIndex, TombstoneChurnCompactsAndStaysCorrect) {
  sim::Rng rng(7);
  SessionStore store(SessionStoreConfig{.shards = 1});
  const std::uint32_t ext = kIdBase + 1;
  const std::uint32_t slot = store.login(ext, 9).slot;
  std::map<proto::OrderId, proto::OrderId> open;  // exchange id -> client id
  proto::OrderId next_client = 1;
  proto::OrderId next_exchange = 1;
  std::size_t capacity_hwm = 0;
  for (int op = 0; op < 20'000; ++op) {
    if (open.size() < 24 && (open.empty() || rng.bernoulli(0.55))) {
      const proto::OrderId cid = next_client++;
      const proto::OrderId eid = next_exchange++;
      ASSERT_EQ(store.register_order(slot, cid, eid, 0), OrderVerdict::kAccepted);
      open[eid] = cid;
    } else {
      auto it = open.begin();
      std::advance(it, static_cast<long>(rng.next_below(open.size())));
      const std::uint32_t order = store.find_by_exchange(it->first);
      ASSERT_NE(order, SessionStore::kNullSlot);
      ASSERT_EQ(store.order_client_id(order), it->second);
      store.close_order(order);
      open.erase(it);
    }
    capacity_hwm = std::max(capacity_hwm, store.debug_exchange_index_capacity());
    if (op % 500 == 0) {
      ASSERT_EQ(store.open_orders_total(), open.size());
      for (const auto& [eid, cid] : open) {
        const std::uint32_t order = store.find_by_exchange(eid);
        ASSERT_NE(order, SessionStore::kNullSlot);
        ASSERT_EQ(store.order_client_id(order), cid);
        ASSERT_EQ(store.find_open(slot, cid), order);
      }
      for (proto::OrderId eid = 1; eid < next_exchange; ++eid) {
        if (!open.contains(eid)) {
          ASSERT_EQ(store.find_by_exchange(eid), SessionStore::kNullSlot) << "eid " << eid;
        }
      }
    }
  }
  // 24 live orders need 64 table entries at the 70% trip; the compacting
  // rehash keeps the index there no matter how many ids churn through.
  EXPECT_LE(capacity_hwm, 64u);
}

// Directory shards round up to a power of two and ids spread across them.
TEST(SessionStoreShards, RoundsUpAndSpreads) {
  SessionStore store(SessionStoreConfig{.shards = 5});
  EXPECT_EQ(store.shard_count(), 8u);
  std::set<std::uint32_t> seen;
  for (std::uint32_t id = 0; id < 1000; ++id) {
    const std::uint32_t shard = store.shard_of(id);
    ASSERT_LT(shard, store.shard_count());
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 8u);  // 1000 hashed ids hit every one of 8 shards
}

}  // namespace
}  // namespace tsn
