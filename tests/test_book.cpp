#include "book/order_book.hpp"

#include <gtest/gtest.h>

namespace tsn::book {
namespace {

struct EventLog final : BookListener {
  std::vector<Order> accepts;
  std::vector<Execution> executes;
  std::vector<std::pair<OrderId, Quantity>> reduces;
  std::vector<OrderId> deletes;
  std::vector<OrderId> replaces;

  void on_accept(const Order& order) override { accepts.push_back(order); }
  void on_execute(const Execution& execution) override { executes.push_back(execution); }
  void on_reduce(OrderId id, Quantity cancelled) override { reduces.emplace_back(id, cancelled); }
  void on_delete(OrderId id) override { deletes.push_back(id); }
  void on_replace(OrderId id, Quantity, Price) override { replaces.push_back(id); }
};

struct BookFixture : ::testing::Test {
  EventLog log;
  OrderBook book{Symbol{"ACME"}, &log};

  using SR = OrderBook::SubmitResult;
};

TEST_F(BookFixture, RestingOrderIsAccepted) {
  const auto outcome = book.submit({1, Side::kBuy, 10'000, 100});
  EXPECT_EQ(outcome.result, SR::kRested);
  EXPECT_EQ(outcome.filled, 0u);
  ASSERT_EQ(log.accepts.size(), 1u);
  EXPECT_EQ(log.accepts[0].id, 1u);
  EXPECT_EQ(book.open_orders(), 1u);
  const auto best = book.best();
  EXPECT_EQ(best.bid_price, 10'000);
  EXPECT_EQ(best.bid_quantity, 100u);
  EXPECT_FALSE(best.ask_price.has_value());
}

TEST_F(BookFixture, CrossingOrdersMatchAtRestingPrice) {
  book.submit({1, Side::kSell, 10'100, 100});
  const auto outcome = book.submit({2, Side::kBuy, 10'200, 100});  // through the ask
  EXPECT_EQ(outcome.result, SR::kFilled);
  EXPECT_EQ(outcome.filled, 100u);
  ASSERT_EQ(log.executes.size(), 1u);
  EXPECT_EQ(log.executes[0].price, 10'100);  // resting price, not the aggressive one
  EXPECT_EQ(log.executes[0].resting_id, 1u);
  EXPECT_EQ(log.executes[0].aggressive_id, 2u);
  EXPECT_EQ(book.open_orders(), 0u);
}

TEST_F(BookFixture, PriceTimePriority) {
  book.submit({1, Side::kSell, 10'100, 100});
  book.submit({2, Side::kSell, 10'100, 100});  // same price, later time
  book.submit({3, Side::kSell, 10'050, 100});  // better price
  book.submit({4, Side::kBuy, 10'200, 250});
  ASSERT_EQ(log.executes.size(), 3u);
  EXPECT_EQ(log.executes[0].resting_id, 3u);  // best price first
  EXPECT_EQ(log.executes[1].resting_id, 1u);  // then FIFO at 10100
  EXPECT_EQ(log.executes[2].resting_id, 2u);
  EXPECT_EQ(log.executes[2].quantity, 50u);
}

TEST_F(BookFixture, PartialFillRestsRemainder) {
  book.submit({1, Side::kSell, 10'100, 60});
  const auto outcome = book.submit({2, Side::kBuy, 10'100, 100});
  EXPECT_EQ(outcome.result, SR::kPartialFill);
  EXPECT_EQ(outcome.filled, 60u);
  const auto best = book.best();
  EXPECT_EQ(best.bid_price, 10'100);
  EXPECT_EQ(best.bid_quantity, 40u);
}

TEST_F(BookFixture, NonCrossingOrdersCoexist) {
  book.submit({1, Side::kBuy, 10'000, 100});
  book.submit({2, Side::kSell, 10'100, 100});
  EXPECT_TRUE(log.executes.empty());
  const auto best = book.best();
  EXPECT_EQ(best.bid_price, 10'000);
  EXPECT_EQ(best.ask_price, 10'100);
}

TEST_F(BookFixture, IocRemainderEvaporates) {
  book.submit({1, Side::kSell, 10'100, 50});
  const auto outcome = book.submit({2, Side::kBuy, 10'100, 100}, /*ioc=*/true);
  EXPECT_EQ(outcome.result, SR::kCancelled);
  EXPECT_EQ(outcome.filled, 50u);
  EXPECT_EQ(book.open_orders(), 0u);
  EXPECT_FALSE(book.best().bid_price.has_value());
}

TEST_F(BookFixture, IocWithNoLiquidityFillsNothing) {
  const auto outcome = book.submit({1, Side::kBuy, 10'100, 100}, /*ioc=*/true);
  EXPECT_EQ(outcome.result, SR::kCancelled);
  EXPECT_EQ(outcome.filled, 0u);
  EXPECT_TRUE(log.accepts.empty());
}

TEST_F(BookFixture, DuplicateIdRejected) {
  book.submit({1, Side::kBuy, 10'000, 100});
  const auto outcome = book.submit({1, Side::kBuy, 9'900, 100});
  EXPECT_EQ(outcome.result, SR::kRejectedDuplicate);
  EXPECT_EQ(book.open_orders(), 1u);
}

TEST_F(BookFixture, CancelRemovesOrderAndReportsQuantity) {
  book.submit({1, Side::kBuy, 10'000, 100});
  const auto cancelled = book.cancel(1);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(*cancelled, 100u);
  EXPECT_EQ(book.open_orders(), 0u);
  ASSERT_EQ(log.deletes.size(), 1u);
  EXPECT_FALSE(book.cancel(1).has_value());  // idempotence: second cancel misses
}

TEST_F(BookFixture, CancelAfterFillMisses) {
  // The §2 race: the order traded before the cancel arrived.
  book.submit({1, Side::kSell, 10'100, 100});
  book.submit({2, Side::kBuy, 10'100, 100});
  EXPECT_FALSE(book.cancel(1).has_value());
}

TEST_F(BookFixture, ReduceKeepsPriority) {
  book.submit({1, Side::kSell, 10'100, 100});
  book.submit({2, Side::kSell, 10'100, 100});
  EXPECT_TRUE(book.reduce(1, 40));
  ASSERT_EQ(log.reduces.size(), 1u);
  EXPECT_EQ(log.reduces[0].second, 60u);  // cancelled amount
  book.submit({3, Side::kBuy, 10'100, 50});
  // Order 1 still has priority despite the reduction.
  ASSERT_EQ(log.executes.size(), 2u);
  EXPECT_EQ(log.executes[0].resting_id, 1u);
  EXPECT_EQ(log.executes[0].quantity, 40u);
  EXPECT_EQ(log.executes[1].resting_id, 2u);
  EXPECT_EQ(log.executes[1].quantity, 10u);
}

TEST_F(BookFixture, ReduceRejectsIncreasesAndUnknown) {
  book.submit({1, Side::kBuy, 10'000, 100});
  EXPECT_FALSE(book.reduce(1, 100));  // not a decrease
  EXPECT_FALSE(book.reduce(1, 200));
  EXPECT_FALSE(book.reduce(99, 10));
  EXPECT_TRUE(book.reduce(1, 0));  // reduce-to-zero cancels
  EXPECT_EQ(book.open_orders(), 0u);
}

TEST_F(BookFixture, ReplaceLosesPriorityAndCanTrade) {
  book.submit({1, Side::kSell, 10'100, 100});
  book.submit({2, Side::kBuy, 10'000, 100});
  // Replace the buy upward so it crosses the ask.
  EXPECT_TRUE(book.replace(2, 100, 10'100));
  ASSERT_EQ(log.replaces.size(), 1u);
  ASSERT_EQ(log.executes.size(), 1u);
  EXPECT_EQ(log.executes[0].aggressive_id, 2u);
  EXPECT_FALSE(book.replace(77, 1, 1));  // unknown
}

TEST_F(BookFixture, DepthAtAggregatesLevel) {
  book.submit({1, Side::kBuy, 10'000, 100});
  book.submit({2, Side::kBuy, 10'000, 150});
  book.submit({3, Side::kBuy, 9'900, 50});
  EXPECT_EQ(book.depth_at(Side::kBuy, 10'000), 250u);
  EXPECT_EQ(book.depth_at(Side::kBuy, 9'900), 50u);
  EXPECT_EQ(book.depth_at(Side::kBuy, 9'800), 0u);
  EXPECT_EQ(book.depth_at(Side::kSell, 10'000), 0u);
}

TEST_F(BookFixture, ExecutionsCarryRemainders) {
  book.submit({1, Side::kSell, 10'100, 100});
  book.submit({2, Side::kBuy, 10'100, 30});
  ASSERT_EQ(log.executes.size(), 1u);
  EXPECT_EQ(log.executes[0].resting_remaining, 70u);
  EXPECT_EQ(log.executes[0].aggressive_remaining, 0u);
}

TEST_F(BookFixture, ExecIdsAreUniqueAndMonotonic) {
  book.submit({1, Side::kSell, 10'100, 30});
  book.submit({2, Side::kSell, 10'100, 30});
  book.submit({3, Side::kBuy, 10'100, 60});
  ASSERT_EQ(log.executes.size(), 2u);
  EXPECT_LT(log.executes[0].exec_id, log.executes[1].exec_id);
  EXPECT_EQ(book.executions(), 2u);
}

// Property-style sweep: a sequence of random operations never corrupts
// book invariants (bid < ask when both exist; open_orders matches accepted
// minus removed).
class BookPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BookPropertyTest, InvariantsHoldUnderRandomWorkload) {
  OrderBook book{Symbol{"PROP"}};
  std::uint64_t state = GetParam();
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<OrderId> live;
  for (int op = 0; op < 5'000; ++op) {
    const auto roll = next() % 100;
    if (roll < 60 || live.empty()) {
      const OrderId id = 1'000 + static_cast<OrderId>(op);
      const auto side = (next() & 1) != 0 ? Side::kBuy : Side::kSell;
      const Price price = 9'000 + static_cast<Price>(next() % 2'000);
      const auto qty = static_cast<Quantity>(1 + next() % 500);
      const auto outcome = book.submit({id, side, price, qty}, (next() % 10) == 0);
      if (outcome.result == OrderBook::SubmitResult::kRested ||
          outcome.result == OrderBook::SubmitResult::kPartialFill) {
        live.push_back(id);
      }
    } else {
      const auto index = next() % live.size();
      (void)book.cancel(live[index]);
      live[index] = live.back();
      live.pop_back();
    }
    const auto best = book.best();
    if (best.bid_price && best.ask_price) {
      ASSERT_LT(*best.bid_price, *best.ask_price) << "book crossed at op " << op;
    }
    ASSERT_LE(book.open_orders(), live.size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BookPropertyTest,
                         ::testing::Values(0x12345678ULL, 0xdeadbeefULL, 0xfeedf00dULL,
                                           0x31415926ULL, 0x27182818ULL));

}  // namespace
}  // namespace tsn::book
