#include <gtest/gtest.h>

#include "mcast/group.hpp"
#include "mcast/igmp.hpp"
#include "mcast/mroute.hpp"

namespace tsn::mcast {
namespace {

TEST(GroupAllocator, AllocatesConsecutiveBlocks) {
  GroupAllocator alloc;
  const auto first = alloc.allocate_block("exchA", 8);
  const auto second = alloc.allocate_block("exchB", 4);
  EXPECT_EQ(second.value(), first.value() + 8);
  EXPECT_EQ(alloc.total_allocated(), 12u);
  const auto& block = alloc.block("exchA");
  EXPECT_EQ(block.group(0), first);
  EXPECT_EQ(block.group(7).value(), first.value() + 7);
  EXPECT_TRUE(block.contains(block.group(3)));
  EXPECT_FALSE(block.contains(second));
  EXPECT_EQ(block.index_of(block.group(5)), 5u);
}

TEST(GroupAllocator, RejectsBadInput) {
  EXPECT_THROW((GroupAllocator{net::Ipv4Addr{10, 0, 0, 1}}), std::invalid_argument);
  GroupAllocator alloc;
  EXPECT_THROW(alloc.allocate_block("x", 0), std::invalid_argument);
}

TEST(GroupAllocator, MissingBlockThrows) {
  GroupAllocator alloc;
  EXPECT_THROW((void)alloc.block("nope"), std::out_of_range);
  EXPECT_FALSE(alloc.has_block("nope"));
}

TEST(GroupAllocator, GroupIndexOutOfRangeThrows) {
  GroupAllocator alloc;
  alloc.allocate_block("a", 2);
  EXPECT_THROW((void)alloc.block("a").group(2), std::out_of_range);
}

TEST(Mroute, JoinCreatesEntryAndLookupFindsIt) {
  MrouteTable table{4};
  const net::Ipv4Addr g{239, 1, 0, 1};
  table.join(g, 3);
  table.join(g, 5);
  table.join(g, 3);  // duplicate port is idempotent
  auto lookup = table.lookup(g);
  ASSERT_NE(lookup.ports, nullptr);
  EXPECT_EQ(lookup.ports->size(), 2u);
  EXPECT_TRUE(lookup.hardware);
  EXPECT_EQ(table.group_count(), 1u);
}

TEST(Mroute, MissCountsAndReturnsNull) {
  MrouteTable table{4};
  EXPECT_EQ(table.lookup(net::Ipv4Addr{239, 9, 9, 9}).ports, nullptr);
  EXPECT_EQ(table.stats().misses, 1u);
}

TEST(Mroute, OverflowFallsBackToSoftware) {
  MrouteTable table{2};
  for (int i = 0; i < 5; ++i) {
    table.join(net::Ipv4Addr{0xe1000000u + static_cast<std::uint32_t>(i)}, 1);
  }
  EXPECT_EQ(table.group_count(), 5u);
  EXPECT_EQ(table.hardware_group_count(), 2u);
  EXPECT_EQ(table.software_group_count(), 3u);
  EXPECT_TRUE(table.overflowed());
  // First two are hardware, the rest software.
  EXPECT_TRUE(table.lookup(net::Ipv4Addr{0xe1000000u}).hardware);
  EXPECT_FALSE(table.lookup(net::Ipv4Addr{0xe1000004u}).hardware);
  EXPECT_EQ(table.stats().hardware_hits, 1u);
  EXPECT_EQ(table.stats().software_hits, 1u);
}

TEST(Mroute, LeaveRemovesPortAndEmptiesEntry) {
  MrouteTable table{4};
  const net::Ipv4Addr g{239, 1, 0, 1};
  table.join(g, 1);
  table.join(g, 2);
  table.leave(g, 1);
  auto lookup = table.lookup(g);
  ASSERT_NE(lookup.ports, nullptr);
  EXPECT_EQ(lookup.ports->size(), 1u);
  table.leave(g, 2);
  EXPECT_EQ(table.lookup(g).ports, nullptr);
  EXPECT_EQ(table.group_count(), 0u);
  EXPECT_EQ(table.hardware_group_count(), 0u);
}

TEST(Mroute, FreedHardwareSlotReusedByNextJoin) {
  MrouteTable table{1};
  const net::Ipv4Addr g1{239, 0, 0, 1};
  const net::Ipv4Addr g2{239, 0, 0, 2};
  table.join(g1, 1);
  table.join(g2, 1);
  EXPECT_FALSE(table.lookup(g2).hardware);  // overflowed
  table.leave(g1, 1);
  const net::Ipv4Addr g3{239, 0, 0, 3};
  table.join(g3, 1);
  EXPECT_TRUE(table.lookup(g3).hardware);   // took the freed slot
  EXPECT_FALSE(table.lookup(g2).hardware);  // no automatic promotion
}

TEST(Mroute, ReprogramPromotesDeterministically) {
  MrouteTable table{2};
  for (std::uint32_t i = 0; i < 4; ++i) {
    table.join(net::Ipv4Addr{0xef000000u + i}, 1);
  }
  table.leave(net::Ipv4Addr{0xef000000u}, 1);  // free a hardware slot
  table.reprogram();
  // After reprogramming, the numerically lowest remaining groups hold the
  // hardware slots.
  EXPECT_TRUE(table.lookup(net::Ipv4Addr{0xef000001u}).hardware);
  EXPECT_TRUE(table.lookup(net::Ipv4Addr{0xef000002u}).hardware);
  EXPECT_FALSE(table.lookup(net::Ipv4Addr{0xef000003u}).hardware);
}

TEST(Igmp, MessageRoundTrip) {
  const IgmpMessage join{IgmpType::kMembershipReport, net::Ipv4Addr{239, 4, 5, 6}};
  const auto encoded = join.encode();
  EXPECT_EQ(encoded.size(), 8u);
  const auto decoded = IgmpMessage::decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, IgmpType::kMembershipReport);
  EXPECT_EQ(decoded->group, join.group);
}

TEST(Igmp, DecodeRejectsCorruption) {
  const IgmpMessage leave{IgmpType::kLeaveGroup, net::Ipv4Addr{239, 4, 5, 6}};
  auto encoded = leave.encode();
  encoded[5] ^= std::byte{0xff};
  EXPECT_FALSE(IgmpMessage::decode(encoded).has_value());
  EXPECT_FALSE(IgmpMessage::decode(std::span{encoded}.subspan(0, 4)).has_value());
}

TEST(Igmp, FrameRoundTrip) {
  const IgmpMessage join{IgmpType::kMembershipReport, net::Ipv4Addr{239, 10, 0, 1}};
  const auto frame =
      build_igmp_frame(net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}, join);
  const auto parsed = parse_igmp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, IgmpType::kMembershipReport);
  EXPECT_EQ(parsed->group, join.group);
}

TEST(Igmp, NonIgmpFrameIsRejected) {
  const auto frame = net::build_udp_frame(net::MacAddr::from_host_id(1),
                                          net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 1},
                                          net::Ipv4Addr{10, 0, 0, 2}, 1, 2, {});
  EXPECT_FALSE(parse_igmp_frame(frame).has_value());
}

}  // namespace
}  // namespace tsn::mcast
