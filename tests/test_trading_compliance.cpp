#include "trading/compliance.hpp"

#include <gtest/gtest.h>

namespace tsn::trading {
namespace {

using proto::Side;
using proto::Symbol;
const Symbol kSym{"ACME"};

TEST(Compliance, NbboAggregatesAcrossVenues) {
  MarketStateMonitor monitor;
  monitor.set_quote(1, kSym, Side::kBuy, proto::price_from_dollars(99.98));
  monitor.set_quote(1, kSym, Side::kSell, proto::price_from_dollars(100.04));
  monitor.set_quote(2, kSym, Side::kBuy, proto::price_from_dollars(100.00));
  monitor.set_quote(2, kSym, Side::kSell, proto::price_from_dollars(100.02));
  const auto best = monitor.nbbo(kSym);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->bid, proto::price_from_dollars(100.00));
  EXPECT_EQ(best->bid_venue, 2);
  EXPECT_EQ(best->ask, proto::price_from_dollars(100.02));
  EXPECT_EQ(best->ask_venue, 2);
  EXPECT_FALSE(best->locked());
  EXPECT_FALSE(best->crossed());
}

TEST(Compliance, UnknownSymbolHasNoNbbo) {
  MarketStateMonitor monitor;
  EXPECT_FALSE(monitor.nbbo(kSym).has_value());
  EXPECT_FALSE(monitor.is_locked(kSym));
  EXPECT_FALSE(monitor.is_crossed(kSym));
}

TEST(Compliance, DetectsLockedMarket) {
  MarketStateMonitor monitor;
  monitor.set_quote(1, kSym, Side::kSell, proto::price_from_dollars(100.00));
  monitor.set_quote(2, kSym, Side::kBuy, proto::price_from_dollars(100.00));
  EXPECT_TRUE(monitor.is_locked(kSym));
  EXPECT_FALSE(monitor.is_crossed(kSym));
  EXPECT_EQ(monitor.stats().locked_transitions, 1u);
  // Leaving and re-entering counts again.
  monitor.set_quote(2, kSym, Side::kBuy, proto::price_from_dollars(99.99));
  EXPECT_FALSE(monitor.is_locked(kSym));
  monitor.set_quote(2, kSym, Side::kBuy, proto::price_from_dollars(100.00));
  EXPECT_EQ(monitor.stats().locked_transitions, 2u);
}

TEST(Compliance, DetectsCrossedMarket) {
  MarketStateMonitor monitor;
  monitor.set_quote(1, kSym, Side::kSell, proto::price_from_dollars(100.00));
  monitor.set_quote(2, kSym, Side::kBuy, proto::price_from_dollars(100.05));
  EXPECT_TRUE(monitor.is_crossed(kSym));
  EXPECT_EQ(monitor.stats().crossed_transitions, 1u);
}

TEST(Compliance, SameVenueTouchIsNotLocked) {
  // A single venue's own book at equal prices would simply trade; "locked"
  // is a cross-venue condition.
  MarketStateMonitor monitor;
  monitor.set_quote(1, kSym, Side::kBuy, proto::price_from_dollars(100.00));
  monitor.set_quote(1, kSym, Side::kSell, proto::price_from_dollars(100.00));
  EXPECT_FALSE(monitor.is_locked(kSym));
}

TEST(Compliance, PreQuoteGateBlocksLockingQuotes) {
  MarketStateMonitor monitor;
  monitor.set_quote(1, kSym, Side::kSell, proto::price_from_dollars(100.02));
  monitor.set_quote(1, kSym, Side::kBuy, proto::price_from_dollars(99.98));
  // A bid at/through the away ask locks/crosses.
  EXPECT_TRUE(
      monitor.quote_would_lock_or_cross(kSym, Side::kBuy, proto::price_from_dollars(100.02)));
  EXPECT_TRUE(
      monitor.quote_would_lock_or_cross(kSym, Side::kBuy, proto::price_from_dollars(100.05)));
  EXPECT_FALSE(
      monitor.quote_would_lock_or_cross(kSym, Side::kBuy, proto::price_from_dollars(100.01)));
  // Same for offers against the away bid.
  EXPECT_TRUE(
      monitor.quote_would_lock_or_cross(kSym, Side::kSell, proto::price_from_dollars(99.98)));
  EXPECT_FALSE(
      monitor.quote_would_lock_or_cross(kSym, Side::kSell, proto::price_from_dollars(99.99)));
}

TEST(Compliance, ClampProducesMostAggressiveCompliantPrice) {
  MarketStateMonitor monitor;
  monitor.set_quote(1, kSym, Side::kSell, proto::price_from_dollars(100.02));
  monitor.set_quote(1, kSym, Side::kBuy, proto::price_from_dollars(99.98));
  EXPECT_EQ(monitor.clamp_to_compliant(kSym, Side::kBuy, proto::price_from_dollars(100.10)),
            proto::price_from_dollars(100.01));
  EXPECT_EQ(monitor.clamp_to_compliant(kSym, Side::kSell, proto::price_from_dollars(99.90)),
            proto::price_from_dollars(99.99));
  // Already compliant prices pass through unchanged.
  EXPECT_EQ(monitor.clamp_to_compliant(kSym, Side::kBuy, proto::price_from_dollars(99.50)),
            proto::price_from_dollars(99.50));
}

TEST(Compliance, NormUpdateAdapterMovesQuotes) {
  MarketStateMonitor monitor;
  proto::norm::Update update;
  update.kind = proto::norm::UpdateKind::kBboUpdate;
  update.exchange_id = 3;
  update.symbol = kSym;
  update.side = Side::kBuy;
  update.price = proto::price_from_dollars(50.00);
  update.quantity = 100;
  monitor.on_update(update);
  EXPECT_EQ(monitor.venue_quote(3, kSym).bid, proto::price_from_dollars(50.00));
  // Zero quantity clears the side.
  update.quantity = 0;
  monitor.on_update(update);
  EXPECT_EQ(monitor.venue_quote(3, kSym).bid, 0);
}

TEST(Compliance, TradeThroughDetection) {
  MarketStateMonitor monitor;
  monitor.set_quote(1, kSym, Side::kBuy, proto::price_from_dollars(100.00));
  monitor.set_quote(1, kSym, Side::kSell, proto::price_from_dollars(100.05));
  proto::norm::Update print;
  print.kind = proto::norm::UpdateKind::kTradePrint;
  print.exchange_id = 2;
  print.symbol = kSym;
  print.quantity = 100;
  // Inside the NBBO: fine.
  print.price = proto::price_from_dollars(100.02);
  monitor.on_update(print);
  EXPECT_EQ(monitor.stats().trade_throughs, 0u);
  // Below the best bid: a trade-through.
  print.price = proto::price_from_dollars(99.95);
  monitor.on_update(print);
  EXPECT_EQ(monitor.stats().trade_throughs, 1u);
  // Above the best ask: also a trade-through.
  print.price = proto::price_from_dollars(100.10);
  monitor.on_update(print);
  EXPECT_EQ(monitor.stats().trade_throughs, 2u);
}

}  // namespace
}  // namespace tsn::trading
