#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include "l1s/fpga_switch.hpp"
#include "l1s/layer1_switch.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/headers.hpp"
#include "net/headers.hpp"

namespace tsn::l1s {
namespace {

struct L1Rig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  Layer1Switch sw;
  std::vector<std::unique_ptr<net::Nic>> nics;

  explicit L1Rig(L1SwitchConfig config = {}, std::size_t hosts = 4,
                 net::LinkConfig link = net::LinkConfig{})
      : sw(engine, "l1s", config) {
    for (std::size_t i = 0; i < hosts; ++i) {
      auto nic = std::make_unique<net::Nic>(
          engine, "h" + std::to_string(i),
          net::MacAddr::from_host_id(static_cast<std::uint32_t>(i + 1)),
          net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(i + 1)});
      nic->set_promiscuous(true);
      fabric.connect(sw, static_cast<net::PortId>(i), *nic, 0, link);
      nics.push_back(std::move(nic));
    }
  }

  net::Nic& nic(std::size_t i) { return *nics[i]; }

  std::vector<std::byte> frame(std::size_t from, std::size_t payload = 16) {
    return net::build_udp_frame(nic(from).mac(), net::MacAddr::broadcast(), nic(from).ip(),
                                net::Ipv4Addr{10, 0, 0, 99}, 1, 2,
                                std::vector<std::byte>(payload, std::byte{1}));
  }
};

TEST(Layer1Switch, FanOutDeliversToAllPatchedOutputs) {
  L1Rig rig;
  rig.sw.patch(0, 1);
  rig.sw.patch(0, 2);
  rig.sw.patch(0, 3);
  int count = 0;
  for (std::size_t i = 1; i <= 3; ++i) {
    rig.nic(i).set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++count; });
  }
  rig.nic(0).send_frame(rig.frame(0));
  rig.engine.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(rig.sw.stats().frames_forwarded, 3u);
  EXPECT_EQ(rig.sw.circuit_count(), 3u);
}

TEST(Layer1Switch, FanOutLatencyIsNanoseconds) {
  L1SwitchConfig config;
  config.fanout_latency = sim::nanos(std::int64_t{6});
  net::LinkConfig link;
  link.rate_bps = 0;  // isolate switch latency from serialization
  link.propagation = sim::Duration::zero();
  L1Rig rig{config, 2, link};
  rig.sw.patch(0, 1);
  sim::Time arrival;
  rig.nic(1).set_rx_handler([&](const net::PacketPtr&, sim::Time at) { arrival = at; });
  rig.nic(0).send_frame(rig.frame(0));
  rig.engine.run();
  EXPECT_EQ(arrival, sim::Time::zero() + sim::nanos(std::int64_t{6}));
}

TEST(Layer1Switch, MergeAddsFiftyNanoseconds) {
  L1SwitchConfig config;
  config.fanout_latency = sim::nanos(std::int64_t{6});
  config.merge_latency = sim::nanos(std::int64_t{50});
  net::LinkConfig link;
  link.rate_bps = 0;
  link.propagation = sim::Duration::zero();
  L1Rig rig{config, 3, link};
  rig.sw.patch(0, 2);
  rig.sw.patch(1, 2);  // two inputs on one output: a merge
  EXPECT_TRUE(rig.sw.is_merge_output(2));
  sim::Time arrival;
  rig.nic(2).set_rx_handler([&](const net::PacketPtr&, sim::Time at) { arrival = at; });
  rig.nic(0).send_frame(rig.frame(0));
  rig.engine.run();
  EXPECT_EQ(arrival, sim::Time::zero() + sim::nanos(std::int64_t{56}));
  EXPECT_EQ(rig.sw.stats().merged_frames, 1u);
}

TEST(Layer1Switch, UnpatchedInputDrops) {
  L1Rig rig;
  rig.nic(0).send_frame(rig.frame(0));
  rig.engine.run();
  EXPECT_EQ(rig.sw.stats().frames_unpatched, 1u);
}

TEST(Layer1Switch, UnpatchRemovesCircuitAndMergeState) {
  L1Rig rig;
  rig.sw.patch(0, 2);
  rig.sw.patch(1, 2);
  rig.sw.unpatch(1, 2);
  EXPECT_FALSE(rig.sw.is_merge_output(2));
  EXPECT_EQ(rig.sw.circuit_count(), 1u);
  rig.sw.unpatch(1, 2);  // idempotent
  EXPECT_EQ(rig.sw.circuit_count(), 1u);
}

TEST(Layer1Switch, PatchOutOfRangeThrows) {
  L1Rig rig;
  EXPECT_THROW(rig.sw.patch(99, 0), std::out_of_range);
  EXPECT_THROW(rig.sw.patch(0, 99), std::out_of_range);
}

TEST(Layer1Switch, TimestampHookSeesEveryIngressFrame) {
  // §4.3: L1Ses have built-in accurate timestamping.
  L1Rig rig;
  rig.sw.patch(0, 1);
  std::vector<std::pair<net::PortId, sim::Time>> stamps;
  rig.sw.set_timestamp_hook([&](const net::PacketPtr&, net::PortId port, sim::Time at) {
    stamps.emplace_back(port, at);
  });
  rig.nic(0).send_frame(rig.frame(0));
  rig.nic(2).send_frame(rig.frame(2));  // unpatched, but still stamped
  rig.engine.run();
  EXPECT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0].first, 0u);
  EXPECT_EQ(stamps[1].first, 2u);
}

TEST(Layer1Switch, MergeContentionQueuesAtEgressLink) {
  // §4.3: merged feeds can exceed available bandwidth — bursts queue or
  // drop at the merged output's line rate.
  net::LinkConfig slow;
  slow.rate_bps = 1'000'000'000;  // 1 Gb/s
  slow.queue_capacity_bytes = 5'000;
  L1Rig rig{L1SwitchConfig{}, 4, slow};
  rig.sw.patch(0, 3);
  rig.sw.patch(1, 3);
  rig.sw.patch(2, 3);
  int delivered = 0;
  rig.nic(3).set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++delivered; });
  // Correlated burst from all three inputs at once.
  for (int round = 0; round < 10; ++round) {
    for (std::size_t src = 0; src < 3; ++src) {
      rig.nic(src).send_frame(rig.frame(src, 1400));
    }
  }
  rig.engine.run();
  EXPECT_LT(delivered, 30);  // some frames must have died at the merge
  const auto totals = rig.fabric.total_stats();
  EXPECT_GT(totals.frames_dropped_queue, 0u);
}

TEST(FpgaSwitch, MulticastForwardingWithFilters) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  FpgaSwitchConfig config;
  FpgaSwitch sw{engine, "fpga", config};
  std::vector<std::unique_ptr<net::Nic>> nics;
  for (std::size_t i = 0; i < 3; ++i) {
    auto nic = std::make_unique<net::Nic>(
        engine, "h" + std::to_string(i),
        net::MacAddr::from_host_id(static_cast<std::uint32_t>(i + 1)),
        net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(i + 1)});
    nic->set_promiscuous(true);
    fabric.connect(sw, static_cast<net::PortId>(i), *nic, 0, net::LinkConfig{});
    nics.push_back(std::move(nic));
  }
  const net::Ipv4Addr group{239, 50, 0, 1};
  ASSERT_TRUE(sw.join_group(group, 1));
  ASSERT_TRUE(sw.join_group(group, 2));
  int got1 = 0;
  int got2 = 0;
  nics[1]->set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got1; });
  nics[2]->set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got2; });
  nics[0]->send_frame(
      net::build_multicast_frame(nics[0]->mac(), nics[0]->ip(), group, 30001, {}));
  engine.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);

  // Ingress filter on port 0 excluding this group: traffic dies at line rate.
  sw.add_ingress_filter(0, net::Ipv4Addr{239, 60, 0, 0}, net::Ipv4Addr{239, 60, 0, 255});
  nics[0]->send_frame(
      net::build_multicast_frame(nics[0]->mac(), nics[0]->ip(), group, 30001, {}));
  engine.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(sw.stats().frames_filtered, 1u);
  sw.clear_ingress_filters(0);
  nics[0]->send_frame(
      net::build_multicast_frame(nics[0]->mac(), nics[0]->ip(), group, 30001, {}));
  engine.run();
  EXPECT_EQ(got1, 2);
}

TEST(FpgaSwitch, GroupTableIsHardCapped) {
  // §5: FPGA-augmented switches have small forwarding tables; there is no
  // software fallback — the join is simply refused.
  sim::Engine engine;
  FpgaSwitchConfig config;
  config.group_table_capacity = 4;
  FpgaSwitch sw{engine, "fpga", config};
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(sw.join_group(net::Ipv4Addr{0xef000000u + i}, 0));
  }
  EXPECT_FALSE(sw.join_group(net::Ipv4Addr{0xef000099u}, 0));
  EXPECT_EQ(sw.group_count(), 4u);
  // An existing group can still add ports.
  EXPECT_TRUE(sw.join_group(net::Ipv4Addr{0xef000001u}, 2));
  // Leaving frees a slot.
  sw.leave_group(net::Ipv4Addr{0xef000000u}, 0);
  EXPECT_TRUE(sw.join_group(net::Ipv4Addr{0xef000099u}, 0));
}

TEST(FpgaSwitch, NonMulticastTrafficDropped) {
  sim::Engine engine;
  FpgaSwitch sw{engine, "fpga", FpgaSwitchConfig{}};
  auto frame = net::build_udp_frame(net::MacAddr::from_host_id(1), net::MacAddr::from_host_id(2),
                                    net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2}, 1, 2,
                                    {});
  net::PacketFactory factory;
  sw.receive(factory.make(std::move(frame), engine.now()), 0);
  EXPECT_EQ(sw.stats().no_group_drops, 1u);
}

}  // namespace
}  // namespace tsn::l1s
