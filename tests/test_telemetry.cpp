#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/latency_model.hpp"
#include "deploy/reference.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"

namespace tsn::telemetry {
namespace {

// --- TraceSink / ambient context ---------------------------------------------

TEST(TraceSink, HandsOutSequentialIdsAndKeepsOrigins) {
  TraceSink sink;
  const TraceId a = sink.begin_trace(sim::Time{} + sim::nanos(std::int64_t{10}));
  const TraceId b = sink.begin_trace(sim::Time{} + sim::nanos(std::int64_t{20}));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(sink.trace_count(), 2u);
  EXPECT_EQ(sink.origin(a), sim::Time{} + sim::nanos(std::int64_t{10}));
  EXPECT_EQ(sink.origin(b), sim::Time{} + sim::nanos(std::int64_t{20}));
}

TEST(TraceSink, TraceFiltersSpansInRecordOrder) {
  TraceSink sink;
  const TraceId a = sink.begin_trace(sim::Time{});
  const TraceId b = sink.begin_trace(sim::Time{});
  sink.record(Span{a, "x", SpanKind::kLink, sim::Time{}, sim::Time{} + sim::nanos(std::int64_t{1})});
  sink.record(Span{b, "y", SpanKind::kSwitch, sim::Time{}, sim::Time{} + sim::nanos(std::int64_t{2})});
  sink.record(Span{a, "z", SpanKind::kSoftware, sim::Time{}, sim::Time{} + sim::nanos(std::int64_t{3})});
  const auto spans_a = sink.trace(a);
  ASSERT_EQ(spans_a.size(), 2u);
  EXPECT_EQ(spans_a[0].entity, "x");
  EXPECT_EQ(spans_a[1].entity, "z");
  EXPECT_EQ(sink.trace(b).size(), 1u);
  sink.clear();
  EXPECT_EQ(sink.trace_count(), 0u);
  EXPECT_TRUE(sink.spans().empty());
}

TEST(Trace, RecordSpanIsNoOpWithoutSinkOrTrace) {
  // No sink attached: nothing happens (and nothing crashes).
  EXPECT_EQ(sink(), nullptr);
  record_span(1, "x", SpanKind::kLink, sim::Time{}, sim::Time{});

  TraceSink local;
  ScopedTraceSink attach{local};
  const TraceId id = local.begin_trace(sim::Time{});
  // Trace id 0 (untraced packet): dropped.
  record_span(0, "x", SpanKind::kLink, sim::Time{}, sim::Time{});
  EXPECT_TRUE(local.spans().empty());
  record_span(id, "x", SpanKind::kLink, sim::Time{}, sim::Time{});
  EXPECT_EQ(local.spans().size(), 1u);
}

TEST(Trace, ScopesNestAndRestore) {
  EXPECT_EQ(current_trace(), 0u);
  {
    TraceScope outer{7};
    EXPECT_EQ(current_trace(), 7u);
    {
      TraceScope suppress{0};  // e.g. a TCP ack leaving mid-trace
      EXPECT_EQ(current_trace(), 0u);
    }
    EXPECT_EQ(current_trace(), 7u);
  }
  EXPECT_EQ(current_trace(), 0u);

  TraceSink a;
  TraceSink b;
  EXPECT_FALSE(tracing_enabled());
  {
    ScopedTraceSink outer{a};
    EXPECT_EQ(sink(), &a);
    {
      ScopedTraceSink inner{b};
      EXPECT_EQ(sink(), &b);
    }
    EXPECT_EQ(sink(), &a);
  }
  EXPECT_FALSE(tracing_enabled());
}

TEST(Trace, SpanKindNamesAreStable) {
  EXPECT_EQ(span_kind_name(SpanKind::kLink), "link");
  EXPECT_EQ(span_kind_name(SpanKind::kSwitch), "switch");
  EXPECT_EQ(span_kind_name(SpanKind::kL1sFanout), "l1s_fanout");
  EXPECT_EQ(span_kind_name(SpanKind::kL1sMerge), "l1s_merge");
  EXPECT_EQ(span_kind_name(SpanKind::kNicRx), "nic_rx");
  EXPECT_EQ(span_kind_name(SpanKind::kSoftware), "software");
  EXPECT_EQ(span_kind_name(SpanKind::kMatcher), "matcher");
  EXPECT_EQ(span_kind_name(SpanKind::kWan), "wan");
}

TEST(Trace, NicRxSpansDoNotTile) {
  const Span nic{1, "nic", SpanKind::kNicRx, {}, {}};
  const Span cable{1, "cable", SpanKind::kLink, {}, {}};
  const Span sw{1, "sw", SpanKind::kSwitch, {}, {}};
  EXPECT_FALSE(nic.tiles());
  EXPECT_TRUE(cable.tiles());
  EXPECT_TRUE(sw.tiles());
}

// --- JsonWriter ---------------------------------------------------------------

TEST(JsonWriter, FormatsDeterministically) {
  JsonWriter w;
  w.begin_object();
  w.field("int_like", 3.0);
  w.field("fraction", 0.5);
  w.field("negative", std::int64_t{-42});
  w.field("big", std::uint64_t{18'000'000'000'000'000'000ULL});
  w.field("text", "a\"b\\c\n");
  w.field("flag", true);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"int_like\":3,\"fraction\":0.5,\"negative\":-42,"
            "\"big\":18000000000000000000,\"text\":\"a\\\"b\\\\c\\n\",\"flag\":true}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

// --- Registry -----------------------------------------------------------------

TEST(Registry, CountersGaugesAndHistogramsRoundTrip) {
  Registry registry;
  registry.counter("drops").add(3);
  registry.counter("drops").add(1);
  registry.gauge("depth", [] { return 7.0; });
  registry.histogram("lat_ns").add(100.0);
  registry.histogram("lat_ns").add(300.0);
  Histogram owned;
  owned.add(5.0);
  registry.histogram_ref("external", owned);

  ASSERT_NE(registry.find_counter("drops"), nullptr);
  EXPECT_EQ(registry.find_counter("drops")->value(), 4u);
  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  EXPECT_DOUBLE_EQ(registry.gauge_value("depth"), 7.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("missing"), 0.0);
  ASSERT_NE(registry.find_histogram("lat_ns"), nullptr);
  EXPECT_EQ(registry.find_histogram("lat_ns")->count(), 2u);
  ASSERT_NE(registry.find_histogram("external"), nullptr);
  EXPECT_EQ(registry.find_histogram("external")->count(), 1u);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, SnapshotIsDeterministicAndSorted) {
  auto build = [] {
    auto registry = std::make_unique<Registry>();
    // Registration order differs from name order on purpose.
    registry->counter("zeta").add(1);
    registry->counter("alpha").add(2);
    registry->gauge("mid", [] { return 1.5; });
    registry->histogram("h").add(10.0);
    return registry;
  };
  const auto a = build();
  const auto b = build();
  const std::string json_a = a->to_json(sim::Time{} + sim::nanos(std::int64_t{5}));
  EXPECT_EQ(json_a, b->to_json(sim::Time{} + sim::nanos(std::int64_t{5})));
  EXPECT_NE(json_a.find("\"schema\":\"tsn-metrics-v1\""), std::string::npos);
  // alpha sorts before zeta regardless of registration order.
  EXPECT_LT(json_a.find("\"alpha\""), json_a.find("\"zeta\""));
}

// --- Report -------------------------------------------------------------------

TEST(Report, CollectsRowsAndChecks) {
  tsn::bench::Report report{"unit_test", "Unit-test report"};
  report.param("design", "leaf-spine");
  report.param("hops", std::int64_t{12});
  report.param("rate", 2.5);
  report.metric("latency_ns", 123.0, "ns");
  Histogram h;
  h.add(1.0);
  h.add(3.0);
  report.stats("dist", h, "ns");
  EXPECT_TRUE(report.check("passes", true));
  EXPECT_TRUE(report.all_passed());
  EXPECT_FALSE(report.check("fails", false, "expected"));
  EXPECT_FALSE(report.all_passed());

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":\"tsn-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"hops\":12"), std::string::npos);
  EXPECT_NE(json.find("\"design\":\"leaf-spine\""), std::string::npos);
  EXPECT_NE(json.find("\"dist.p99\""), std::string::npos);
  EXPECT_NE(json.find("\"passed\":false"), std::string::npos);
}

TEST(Report, FinishWritesArtifactToBenchDir) {
  ASSERT_EQ(setenv("TSN_BENCH_DIR", testing::TempDir().c_str(), 1), 0);
  tsn::bench::Report report{"unit_finish", "Finish writes JSON"};
  report.metric("m", 1.0, "count");
  report.check("ok", true);
  EXPECT_EQ(report.finish(), 0);
  const std::string path = report.output_path();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path;
  char buf[64] = {};
  const auto n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  unsetenv("TSN_BENCH_DIR");
  ASSERT_GT(n, 0u);
  EXPECT_EQ(std::string{buf}.rfind("{\"schema\":\"tsn-bench-v1\"", 0), 0u);
}

// --- The flagship acceptance test: traced Design-1 ----------------------------

// A traced tick-to-trade run on Design 1 (leaf-spine, rack-per-function)
// must reconstruct the paper's 12-switch-hop + 3-software-hop decomposition
// from recorded spans, with the sum of span durations equal to the
// end-to-end latency exactly, at picosecond resolution.
TEST(Telemetry, TracedDesign1ReconstructsHopDecomposition) {
  deploy::DeploymentConfig config;
  // One strategy on one normalized partition from one feed unit keeps every
  // traced chain linear (no replication forks), so spans tile end to end.
  config.strategy_count = 1;
  config.norm_partitions = 1;
  config.exchange_units = 1;
  config.symbol_count = 4;
  config.events_per_second = 20'000;
  deploy::LeafSpineDeployment deployment{config};

  TraceSink sink;
  ScopedTraceSink attach{sink};
  deployment.start();
  deployment.run(sim::millis(std::int64_t{40}));

  ASSERT_GT(deployment.report().orders_sent, 0u);
  ASSERT_GT(sink.trace_count(), 0u);
  ASSERT_FALSE(sink.spans().empty());

  std::size_t full_chains = 0;
  for (TraceId id = 1; id <= sink.trace_count(); ++id) {
    const auto spans = sink.trace(id);
    const bool reached_matcher = std::any_of(spans.begin(), spans.end(), [](const Span& s) {
      return s.kind == SpanKind::kMatcher;
    });
    if (!reached_matcher) continue;

    const auto d = core::decompose(spans);
    // Two traces' updates can share one normalizer output datagram; only the
    // first owns the full chain. Full chains have the exact §4.1 shape.
    if (d.matcher_hops != 1 || d.software_hops != 3) continue;
    ++full_chains;

    // The paper's Design-1 arithmetic: 12 commodity switch hops and 3
    // software hops on the exchange -> normalizer -> strategy -> gateway ->
    // exchange round trip, and a link traversal on each side of every box.
    EXPECT_EQ(d.switch_hops, 12u) << "trace " << id;
    EXPECT_EQ(d.software_hops, 3u) << "trace " << id;
    EXPECT_EQ(d.matcher_hops, 1u) << "trace " << id;
    EXPECT_EQ(d.link_traversals, 16u) << "trace " << id;
    EXPECT_EQ(d.l1s_fanout_hops + d.l1s_merge_hops, 0u) << "trace " << id;

    // Spans tile: sorted by t_in, each begins exactly where the previous
    // ended, and the durations sum to the end-to-end latency exactly.
    std::vector<Span> tiling;
    for (const Span& s : spans) {
      if (s.tiles()) tiling.push_back(s);
    }
    std::sort(tiling.begin(), tiling.end(),
              [](const Span& a, const Span& b) { return a.t_in < b.t_in; });
    for (std::size_t i = 1; i < tiling.size(); ++i) {
      EXPECT_EQ(tiling[i].t_in.picos(), tiling[i - 1].t_out.picos())
          << "gap/overlap before " << tiling[i].entity << " in trace " << id;
    }
    EXPECT_TRUE(d.tiles_exactly()) << "trace " << id;
    EXPECT_EQ(d.total.picos(), d.end_to_end().picos()) << "trace " << id;
    EXPECT_EQ(d.first_in.picos(), sink.origin(id).picos()) << "trace " << id;

    // The chain starts at the feed flush and ends when the match completes.
    EXPECT_EQ(tiling.front().kind, SpanKind::kLink) << "trace " << id;
    EXPECT_EQ(tiling.back().kind, SpanKind::kMatcher) << "trace " << id;
  }
  EXPECT_GT(full_chains, 0u);
}

// The recorded decomposition agrees with the analytical model's hop
// arithmetic when the model is fed the same per-hop costs the simulation
// uses.
TEST(Telemetry, RecordedSwitchTimeMatchesAnalyticalModel) {
  deploy::DeploymentConfig config;
  config.strategy_count = 1;
  config.norm_partitions = 1;
  config.exchange_units = 1;
  config.symbol_count = 4;
  config.events_per_second = 20'000;
  deploy::LeafSpineDeployment deployment{config};
  const auto hop_latency =
      deploy::LeafSpineDeployment::default_topo().leaf_switch.forwarding_latency;

  TraceSink sink;
  ScopedTraceSink attach{sink};
  deployment.start();
  deployment.run(sim::millis(std::int64_t{30}));

  for (TraceId id = 1; id <= sink.trace_count(); ++id) {
    const auto spans = sink.trace(id);
    const auto d = core::decompose(spans);
    if (d.matcher_hops != 1 || d.software_hops != 3 || d.switch_hops != 12) continue;

    core::PathSpec path;
    path.commodity_switch_hops = d.switch_hops;
    path.software_hops = 0;  // software time compared separately below
    path.commodity_hop_latency = hop_latency;
    path.link_traversals = 0;
    const auto analytical = core::evaluate(path);
    // Every recorded switch span is exactly one forwarding pipeline (no
    // queueing at this load), so recorded switching == hops * per-hop cost.
    EXPECT_EQ(d.switching.picos(), analytical.switching.picos()) << "trace " << id;
    return;  // one verified trace is enough
  }
  FAIL() << "no full tick-to-trade chain was traced";
}

}  // namespace
}  // namespace tsn::telemetry
