#include "sim/engine.hpp"
#include "l2/commodity_switch.hpp"

#include <gtest/gtest.h>

#include "mcast/subscribe.hpp"
#include "net/fabric.hpp"
#include "net/stack.hpp"

namespace tsn::l2 {
namespace {

// A switch with N hosts hanging off it.
struct SwitchRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  CommoditySwitch sw;
  std::vector<std::unique_ptr<net::Nic>> nics;

  explicit SwitchRig(CommoditySwitchConfig config = {}, std::size_t hosts = 4)
      : sw(engine, "sw", config) {
    for (std::size_t i = 0; i < hosts; ++i) {
      auto nic = std::make_unique<net::Nic>(engine, "h" + std::to_string(i),
                                            net::MacAddr::from_host_id(static_cast<std::uint32_t>(i + 1)),
                                            net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(i + 1)});
      fabric.connect(sw, static_cast<net::PortId>(i), *nic, 0, net::LinkConfig{});
      sw.bind_host(nic->ip(), nic->mac(), static_cast<net::PortId>(i));
      nics.push_back(std::move(nic));
    }
  }

  net::Nic& nic(std::size_t i) { return *nics[i]; }
};

std::vector<std::byte> udp_to(net::Nic& from, net::Ipv4Addr dst_ip) {
  // Deliberately wrong dst MAC: the switch routes on IP and rewrites.
  return net::build_udp_frame(from.mac(), net::MacAddr::from_host_id(0xdead), from.ip(), dst_ip,
                              1000, 2000, std::vector<std::byte>(16, std::byte{7}));
}

TEST(CommoditySwitch, RoutesUnicastByIpAndRewritesMac) {
  SwitchRig rig;
  int got = 0;
  rig.nic(2).set_rx_handler([&](const net::PacketPtr& p, sim::Time) {
    ++got;
    const auto decoded = net::decode_frame(p->frame());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->eth.dst, rig.nic(2).mac());  // rewritten on last hop
  });
  rig.nic(0).send_frame(udp_to(rig.nic(0), rig.nic(2).ip()));
  rig.engine.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rig.sw.stats().unicast_forwarded, 1u);
}

TEST(CommoditySwitch, ForwardingLatencyIsCharged) {
  CommoditySwitchConfig config;
  config.forwarding_latency = sim::nanos(std::int64_t{500});
  SwitchRig rig{config};
  sim::Time direct_estimate;
  sim::Time arrival;
  rig.nic(1).set_rx_handler([&](const net::PacketPtr&, sim::Time at) { arrival = at; });
  rig.nic(0).send_frame(udp_to(rig.nic(0), rig.nic(1).ip()));
  rig.engine.run();
  // Two link traversals (~50 ns prop each + serialization) + 500 ns pipeline.
  direct_estimate = sim::Time::zero() + sim::nanos(std::int64_t{500});
  EXPECT_GT(arrival, direct_estimate);
  EXPECT_LT(arrival, sim::Time::zero() + sim::micros(std::int64_t{2}));
}

TEST(CommoditySwitch, NoRouteDrops) {
  SwitchRig rig;
  rig.nic(0).send_frame(udp_to(rig.nic(0), net::Ipv4Addr{172, 16, 0, 1}));
  rig.engine.run();
  EXPECT_EQ(rig.sw.stats().no_route_drops, 1u);
}

TEST(CommoditySwitch, EcmpIsFlowStable) {
  // Two parallel routes for one prefix: all frames of one flow take the
  // same path (no reordering), verified by the hash being deterministic.
  sim::Engine engine;
  net::Fabric fabric{engine};
  CommoditySwitchConfig config;
  CommoditySwitch sw{engine, "sw", config};
  net::Nic a{engine, "a", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic left{engine, "left", net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 1, 0, 1}};
  net::Nic right{engine, "right", net::MacAddr::from_host_id(3), net::Ipv4Addr{10, 1, 0, 2}};
  fabric.connect(sw, 0, a, 0, net::LinkConfig{});
  fabric.connect(sw, 1, left, 0, net::LinkConfig{});
  fabric.connect(sw, 2, right, 0, net::LinkConfig{});
  sw.add_route(net::Ipv4Addr{10, 1, 0, 0}, 16, 1);
  sw.add_route(net::Ipv4Addr{10, 1, 0, 0}, 16, 2);
  left.set_promiscuous(true);
  right.set_promiscuous(true);
  int left_count = 0;
  int right_count = 0;
  left.set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++left_count; });
  right.set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++right_count; });
  for (int i = 0; i < 10; ++i) {
    a.send_frame(net::build_udp_frame(a.mac(), net::MacAddr::from_host_id(0xbb), a.ip(),
                                      net::Ipv4Addr{10, 1, 0, 9}, 5000, 6000, {}));
  }
  engine.run();
  // Same 5-tuple every time: one path gets all 10.
  EXPECT_TRUE((left_count == 10 && right_count == 0) ||
              (left_count == 0 && right_count == 10));
}

TEST(CommoditySwitch, LongestPrefixMatchWins) {
  SwitchRig rig;
  // /32 host routes already exist; add a /8 blackhole toward port 3 and
  // verify the /32 still wins.
  rig.sw.add_route(net::Ipv4Addr{10, 0, 0, 0}, 8, 3);
  int got = 0;
  rig.nic(1).set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got; });
  rig.nic(0).send_frame(udp_to(rig.nic(0), rig.nic(1).ip()));
  rig.engine.run();
  EXPECT_EQ(got, 1);
}

TEST(CommoditySwitch, MulticastDeliversToJoinedPortsOnly) {
  SwitchRig rig;
  const net::Ipv4Addr group{239, 1, 1, 1};
  int got2 = 0;
  int got3 = 0;
  rig.nic(2).set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got2; });
  rig.nic(3).set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got3; });
  mcast::join_group(rig.nic(2), group);
  rig.engine.run();  // let the IGMP join program the switch
  EXPECT_EQ(rig.sw.mroutes().group_count(), 1u);
  rig.nic(0).send_frame(
      net::build_multicast_frame(rig.nic(0).mac(), rig.nic(0).ip(), group, 30001, {}));
  rig.engine.run();
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(got3, 0);
  EXPECT_EQ(rig.sw.stats().multicast_hw_forwarded, 1u);
}

TEST(CommoditySwitch, UnknownGroupDroppedWhenNotFlooding) {
  SwitchRig rig;
  rig.nic(0).send_frame(net::build_multicast_frame(rig.nic(0).mac(), rig.nic(0).ip(),
                                                   net::Ipv4Addr{239, 9, 9, 9}, 30001, {}));
  rig.engine.run();
  EXPECT_EQ(rig.sw.stats().no_group_drops, 1u);
}

TEST(CommoditySwitch, IgmpLeaveStopsDelivery) {
  SwitchRig rig;
  const net::Ipv4Addr group{239, 1, 1, 2};
  int got = 0;
  rig.nic(1).set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got; });
  mcast::join_group(rig.nic(1), group);
  rig.engine.run();
  mcast::leave_group(rig.nic(1), group);
  rig.engine.run();
  rig.nic(0).send_frame(
      net::build_multicast_frame(rig.nic(0).mac(), rig.nic(0).ip(), group, 30001, {}));
  rig.engine.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(rig.sw.mroutes().group_count(), 0u);
}

TEST(CommoditySwitch, SoftwareFallbackAddsLatencyAndDrops) {
  CommoditySwitchConfig config;
  config.mroute_hardware_capacity = 1;
  config.software_service_time = sim::micros(std::int64_t{40});
  config.software_queue_packets = 4;
  SwitchRig rig{config};
  const net::Ipv4Addr hw_group{239, 1, 0, 1};
  const net::Ipv4Addr sw_group{239, 1, 0, 2};
  rig.sw.join_group(hw_group, 1);
  rig.sw.join_group(sw_group, 2);  // overflows into software
  ASSERT_TRUE(rig.sw.mroutes().overflowed());

  sim::Time hw_arrival;
  sim::Time sw_arrival;
  rig.nic(1).subscribe_multicast_mac(net::multicast_mac(hw_group));
  rig.nic(2).subscribe_multicast_mac(net::multicast_mac(sw_group));
  rig.nic(1).set_rx_handler([&](const net::PacketPtr&, sim::Time at) { hw_arrival = at; });
  rig.nic(2).set_rx_handler([&](const net::PacketPtr&, sim::Time at) { sw_arrival = at; });
  rig.nic(0).send_frame(
      net::build_multicast_frame(rig.nic(0).mac(), rig.nic(0).ip(), hw_group, 30001, {}));
  rig.nic(0).send_frame(
      net::build_multicast_frame(rig.nic(0).mac(), rig.nic(0).ip(), sw_group, 30001, {}));
  rig.engine.run();
  // Software path is dramatically slower (§3: "cripples performance").
  EXPECT_GT(sw_arrival - hw_arrival, sim::micros(std::int64_t{30}));

  // Flood the software path: its bounded queue must drop.
  for (int i = 0; i < 50; ++i) {
    rig.nic(0).send_frame(
        net::build_multicast_frame(rig.nic(0).mac(), rig.nic(0).ip(), sw_group, 30001, {}));
  }
  rig.engine.run();
  EXPECT_GT(rig.sw.stats().software_queue_drops, 0u);
}

TEST(CommoditySwitch, HairpinDropCounted) {
  SwitchRig rig;
  // Route dst back out the ingress port: misconfiguration is dropped.
  rig.nic(0).send_frame(udp_to(rig.nic(0), rig.nic(0).ip()));
  rig.engine.run();
  EXPECT_EQ(rig.sw.stats().no_route_drops, 1u);
}

}  // namespace
}  // namespace tsn::l2
