// Domain / ShardedEngine semantics: the Scheduler interface contract,
// domain-qualified handles, golden-mode byte-identity with the plain
// Engine, and worker-count-independent windowed determinism.
#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "telemetry/trace.hpp"

namespace tsn::sim {
namespace {

constexpr Duration kHop = nanos(std::int64_t{5});

// One executed event: (fire time in picos, scripted tag). Byte-identity
// between two runs means these sequences compare equal element-for-element.
using Firing = std::pair<std::int64_t, int>;

// The scripted workload: four logical regions, each seeding a chain of
// local events that also hands work to the ring-next region. `local[i]`
// schedules on region i; `post(src, dst, at, tag)` crosses regions. The
// plain-Engine run maps every region to the same engine and every post to
// a plain schedule_at — exactly what golden mode must reproduce.
struct Script {
  std::function<Scheduler&(int)> local;
  std::function<void(int, int, Time, int)> post;
};

// The script must outlive the engine run: scheduled events call back into
// `script.post`.
void run_script(const Script& script, std::array<std::vector<Firing>*, 4> out) {
  const Script* sc = &script;
  for (int region = 0; region < 4; ++region) {
    Scheduler* sched = &script.local(region);
    for (int k = 0; k < 3; ++k) {
      // Deliberate same-instant ties across regions and within a region.
      const Time at = Time::zero() + nanos(std::int64_t{10 * (k + 1)});
      auto* fired = out[static_cast<std::size_t>(region)];
      const int tag = 100 * region + k;
      sched->schedule_at(at, [sc, sched, fired, region, tag] {
        fired->emplace_back(sched->now().picos(), tag);
        // Chain one local follow-up and one cross-region hand-off, the
        // hand-off at exactly the lookahead bound.
        const int next_tag = tag + 10;
        sched->schedule_in(nanos(std::int64_t{7}), [sched, fired, next_tag] {
          fired->emplace_back(sched->now().picos(), next_tag);
        });
        sc->post(region, (region + 1) % 4, sched->now() + kHop, tag + 1000);
      });
    }
  }
}

// Collects a plain-Engine reference run of the script.
std::vector<Firing> plain_reference() {
  Engine engine;
  std::vector<Firing> fired;
  std::array<std::vector<Firing>*, 4> out{&fired, &fired, &fired, &fired};
  Script script;
  script.local = [&engine](int) -> Scheduler& { return engine; };
  script.post = [&engine, &fired](int, int, Time at, int tag) {
    engine.schedule_at(at, [&engine, &fired, tag] {
      fired.emplace_back(engine.now().picos(), tag);
    });
  };
  run_script(script, out);
  engine.run();
  return fired;
}

Script sharded_script(ShardedEngine& engine, std::array<std::vector<Firing>*, 4> out) {
  Script script;
  script.local = [&engine](int region) -> Scheduler& {
    return engine.domain(static_cast<DomainId>(region));
  };
  script.post = [&engine, out](int src, int dst, Time at, int tag) {
    Domain& sink = engine.domain(static_cast<DomainId>(dst));
    auto* fired = out[static_cast<std::size_t>(dst)];
    engine.domain(static_cast<DomainId>(src))
        .post_to(static_cast<DomainId>(dst), at, [&sink, fired, tag] {
          fired->emplace_back(sink.now().picos(), tag);
        });
  };
  return script;
}

TEST(Scheduler, EngineImplementsTheInterface) {
  Engine engine;
  Scheduler& sched = engine;
  EXPECT_EQ(sched.domain_id(), kMainDomain);
  int hits = 0;
  sched.schedule_in(Duration{-50}, [&hits] { ++hits; });  // clamps to now
  const EventHandle handle = sched.schedule_at(Time{100}, [&hits] { ++hits; });
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.domain(), kMainDomain);
  EXPECT_TRUE(sched.cancel(handle));
  engine.run();
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(EventHandle{}.valid());
}

TEST(Scheduler, DomainImplementsTheInterface) {
  ShardedEngine engine{{.domains = 2}};
  Scheduler& sched = engine.domain(1);
  EXPECT_EQ(sched.domain_id(), DomainId{1});
  int hits = 0;
  const EventHandle handle = sched.schedule_at(Time{100}, [&hits] { ++hits; });
  EXPECT_EQ(handle.domain(), DomainId{1});
  EXPECT_TRUE(sched.cancel(handle));
  engine.run();
  EXPECT_EQ(hits, 0);
}

TEST(Scheduler, CrossDomainCancelIsRejected) {
  ShardedEngine engine{{.domains = 2}};
  const EventHandle foreign = engine.domain(1).schedule_at(Time{100}, [] {});
#ifdef NDEBUG
  // Release: refused, not silently honoured — the event still fires.
  Engine plain;
  EXPECT_FALSE(plain.cancel(foreign));
  EXPECT_FALSE(engine.domain(0).cancel(foreign));
  EXPECT_EQ(engine.run(), 1u);
#else
  EXPECT_DEATH(static_cast<void>(engine.domain(0).cancel(foreign)),
               "wrong domain's scheduler");
#endif
}

TEST(ShardedEngine, GoldenModeIsByteIdenticalToPlainEngine) {
  const std::vector<Firing> reference = plain_reference();
  ASSERT_FALSE(reference.empty());

  ShardedEngine engine{{.domains = 4, .num_workers = 1}};
  ASSERT_TRUE(engine.golden());
  std::vector<Firing> fired;
  std::array<std::vector<Firing>*, 4> out{&fired, &fired, &fired, &fired};
  const Script script = sharded_script(engine, out);
  run_script(script, out);
  engine.run();
  EXPECT_EQ(fired, reference);
}

TEST(ShardedEngine, WindowedModeMatchesGoldenPerDomainAtAnyWorkerCount) {
  // Golden per-domain firing sequences are the oracle; windowed execution
  // must reproduce them exactly for 1, 2, and 4 workers — and across
  // repeated runs (the run-twice determinism gate).
  std::array<std::vector<Firing>, 4> golden;
  {
    ShardedEngine engine{{.domains = 4, .mode = SyncMode::kGolden}};
    std::array<std::vector<Firing>*, 4> out{&golden[0], &golden[1], &golden[2], &golden[3]};
    const Script script = sharded_script(engine, out);
    run_script(script, out);
    engine.note_cross_domain_delay(kHop);
    engine.run();
  }
  ASSERT_FALSE(golden[0].empty());

  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      ShardedEngine engine{
          {.domains = 4, .num_workers = workers, .mode = SyncMode::kWindowed}};
      ASSERT_FALSE(engine.golden());
      std::array<std::vector<Firing>, 4> fired;
      std::array<std::vector<Firing>*, 4> out{&fired[0], &fired[1], &fired[2], &fired[3]};
      const Script script = sharded_script(engine, out);
      run_script(script, out);
      engine.note_cross_domain_delay(kHop);
      engine.run();
      for (std::size_t d = 0; d < 4; ++d) {
        EXPECT_EQ(fired[d], golden[d]) << "domain " << d << " workers " << workers
                                       << " repeat " << repeat;
      }
    }
  }
}

TEST(ShardedEngine, RunUntilAdvancesEveryDomainClock) {
  ShardedEngine engine{{.domains = 3, .num_workers = 2, .mode = SyncMode::kWindowed}};
  engine.note_cross_domain_delay(kHop);
  int hits = 0;
  engine.domain(1).schedule_at(Time::zero() + nanos(std::int64_t{20}), [&hits] { ++hits; });
  const Time deadline = Time::zero() + nanos(std::int64_t{100});
  engine.run_until(deadline);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(engine.now(), deadline);
  for (DomainId d = 0; d < 3; ++d) EXPECT_EQ(engine.domain(d).now(), deadline);
}

TEST(ShardedEngine, UnboundedLookaheadRunsWithoutOverflow) {
  // No cross-domain links registered: lookahead stays Duration::max() and
  // each domain free-runs its whole queue in one saturated window.
  ShardedEngine engine{{.domains = 2, .num_workers = 2, .mode = SyncMode::kWindowed}};
  int hits = 0;
  engine.domain(0).schedule_at(Time{1'000}, [&hits] { ++hits; });
  engine.domain(1).schedule_at(Time{2'000}, [&hits] { ++hits; });
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(hits, 2);
}

TEST(ShardedEngine, PostToIsDeliveredAtTheRequestedTime) {
  ShardedEngine engine{{.domains = 2, .num_workers = 2, .mode = SyncMode::kWindowed}};
  engine.note_cross_domain_delay(kHop);
  Time delivered = Time::zero();
  Domain& src = engine.domain(0);
  Domain& dst = engine.domain(1);
  src.schedule_at(Time::zero() + nanos(std::int64_t{10}), [&src, &dst, &delivered] {
    src.post_to(1, src.now() + kHop, [&dst, &delivered] { delivered = dst.now(); });
  });
  engine.run();
  EXPECT_EQ(delivered, Time::zero() + nanos(std::int64_t{15}));
}

// The PR 7 leftover, fixed: a ScopedTraceSink on the coordinating thread
// never follows a domain onto a windowed-mode worker thread, so spans
// recorded there were silently dropped. Shard-local sinks installed via
// Domain::set_context travel with the domain instead: windowed runs at any
// worker count must deposit exactly the span sequences a golden run does.
TEST(ShardedEngine, ShardContextKeepsSpansAcrossWorkerThreads) {
  constexpr std::uint32_t kDomains = 4;
  constexpr int kEventsPerDomain = 6;

  // Each event records one kSoftware span through the *ambient* sink —
  // exactly how instrumented hops do it — so where the span lands depends
  // entirely on what is installed on the executing thread.
  const auto run_mode = [&](SyncMode mode, std::uint32_t workers,
                            std::array<telemetry::TraceSink, kDomains>& sinks) {
    ShardedEngine engine{{.domains = kDomains, .num_workers = workers, .mode = mode}};
    std::array<std::unique_ptr<telemetry::DomainTraceContext>, kDomains> contexts;
    for (DomainId d = 0; d < kDomains; ++d) {
      contexts[d] = std::make_unique<telemetry::DomainTraceContext>(sinks[d]);
      engine.domain(d).set_context(contexts[d].get());
    }
    for (DomainId d = 0; d < kDomains; ++d) {
      Domain& dom = engine.domain(d);
      for (int k = 0; k < kEventsPerDomain; ++k) {
        dom.schedule_at(Time::zero() + nanos(std::int64_t{10} * (k + 1)), [&dom] {
          telemetry::TraceSink* sink = telemetry::sink();
          ASSERT_NE(sink, nullptr) << "event ran with no ambient sink installed";
          const telemetry::TraceId trace = sink->begin_trace(dom.now());
          sink->record(telemetry::Span{trace, "hop", telemetry::SpanKind::kSoftware,
                                       dom.now(), dom.now() + nanos(std::int64_t{3})});
        });
      }
    }
    engine.note_cross_domain_delay(kHop);
    engine.run();
  };

  std::array<telemetry::TraceSink, kDomains> golden;
  run_mode(SyncMode::kGolden, 1, golden);
  for (DomainId d = 0; d < kDomains; ++d) {
    ASSERT_EQ(golden[d].spans().size(), kEventsPerDomain) << "domain " << d;
  }

  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    std::array<telemetry::TraceSink, kDomains> windowed;
    run_mode(SyncMode::kWindowed, workers, windowed);
    for (DomainId d = 0; d < kDomains; ++d) {
      ASSERT_EQ(windowed[d].spans().size(), golden[d].spans().size())
          << "domain " << d << " workers " << workers;
      // Same per-shard sequences, span for span — not just equal counts.
      for (std::size_t i = 0; i < golden[d].spans().size(); ++i) {
        const telemetry::Span& g = golden[d].spans()[i];
        const telemetry::Span& w = windowed[d].spans()[i];
        EXPECT_EQ(w.trace, g.trace);
        EXPECT_EQ(w.t_in, g.t_in);
        EXPECT_EQ(w.t_out, g.t_out);
      }
      EXPECT_EQ(windowed[d].to_json(), golden[d].to_json())
          << "domain " << d << " workers " << workers;
    }
  }
}

TEST(ShardedEngine, StopRequestHaltsAllShards) {
  ShardedEngine engine{{.domains = 2, .num_workers = 1}};
  int hits = 0;
  engine.domain(0).schedule_at(Time{100}, [&engine, &hits] {
    ++hits;
    engine.request_stop();
  });
  engine.domain(1).schedule_at(Time{200}, [&hits] { ++hits; });
  engine.run();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace tsn::sim
