// Unit tests for tsn_analyze's include-graph builder, cycle detector and
// layer checker, run over in-memory file trees via the FileProvider hook.
// The on-disk corpora (tools/tsn_analyze/corpus/layering) exercise the same
// code end-to-end through the CLI; these tests pin the builder's edge-level
// behaviour (resolution, line numbers, angle-include handling) that the
// corpus format cannot express.
#include "include_graph.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "json_mini.hpp"

namespace tsn::analyze {
namespace {

using Tree = std::map<std::string, std::vector<std::string>>;

FileProvider provider_for(const Tree& tree) {
  return [&tree](const std::string& rel, std::vector<std::string>& lines) {
    const auto it = tree.find(rel);
    if (it == tree.end()) return false;
    lines = it->second;
    return true;
  };
}

std::vector<std::string> keys_of(const Tree& tree) {
  std::vector<std::string> out;
  for (const auto& [path, lines] : tree) out.push_back(path);
  return out;
}

std::vector<std::string> rules_of(const Sink& sink) {
  std::vector<std::string> out;
  for (const auto& f : sink.findings) out.push_back(f.rule);
  return out;
}

TEST(IncludeGraph, DiamondResolvesAllEdges) {
  const Tree tree{
      {"a/base.hpp", {"#pragma once"}},
      {"b/mid1.hpp", {"#pragma once", "#include \"a/base.hpp\""}},
      {"c/mid2.hpp", {"#pragma once", "#include \"a/base.hpp\""}},
      {"d/top.hpp",
       {"#pragma once", "#include \"b/mid1.hpp\"", "#include \"c/mid2.hpp\""}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  ASSERT_EQ(graph.edges.size(), 4U);
  EXPECT_TRUE(graph.edges.at("a/base.hpp").empty());
  ASSERT_EQ(graph.edges.at("d/top.hpp").size(), 2U);
  const IncludeEdge& first = graph.edges.at("d/top.hpp")[0];
  EXPECT_EQ(first.to, "b/mid1.hpp");
  EXPECT_EQ(first.line, 2);
  EXPECT_TRUE(first.resolved);

  Sink sink;
  check_includes(graph, "src", sink);
  EXPECT_TRUE(sink.findings.empty()) << "diamond is acyclic and fully resolved";
}

TEST(IncludeGraph, AngleIncludesAreIgnored) {
  const Tree tree{
      {"a/x.hpp", {"#include <vector>", "#include <a/x.hpp>", "#include \"a/y.hpp\""}},
      {"a/y.hpp", {"#pragma once"}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  ASSERT_EQ(graph.edges.at("a/x.hpp").size(), 1U);
  EXPECT_EQ(graph.edges.at("a/x.hpp")[0].to, "a/y.hpp");
}

TEST(IncludeGraph, CommentedIncludeIsNotAnEdge) {
  const Tree tree{
      {"a/x.hpp", {"// #include \"a/gone.hpp\"", "/* #include \"a/also.hpp\" */"}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  EXPECT_TRUE(graph.edges.at("a/x.hpp").empty());
}

TEST(IncludeGraph, MissingTargetReported) {
  const Tree tree{
      {"a/x.hpp", {"#include \"a/nope.hpp\""}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  ASSERT_EQ(graph.edges.at("a/x.hpp").size(), 1U);
  EXPECT_FALSE(graph.edges.at("a/x.hpp")[0].resolved);

  Sink sink;
  check_includes(graph, "src", sink);
  ASSERT_EQ(sink.findings.size(), 1U);
  EXPECT_EQ(sink.findings[0].rule, "include-missing");
  EXPECT_EQ(sink.findings[0].file, "src/a/x.hpp");
  EXPECT_EQ(sink.findings[0].line, 1);
}

TEST(IncludeGraph, SelfIncludeIsALengthOneCycle) {
  const Tree tree{
      {"a/x.hpp", {"#pragma once", "#include \"a/x.hpp\""}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  Sink sink;
  check_includes(graph, "src", sink);
  ASSERT_EQ(sink.findings.size(), 1U);
  EXPECT_EQ(sink.findings[0].rule, "include-cycle");
  EXPECT_EQ(sink.findings[0].line, 2);
}

TEST(IncludeGraph, TwoFileCycleReportedOnce) {
  const Tree tree{
      {"a/x.hpp", {"#include \"a/y.hpp\""}},
      {"a/y.hpp", {"#pragma once", "#include \"a/x.hpp\""}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  Sink sink;
  check_includes(graph, "src", sink);
  ASSERT_EQ(sink.findings.size(), 1U);
  EXPECT_EQ(sink.findings[0].rule, "include-cycle");
}

TEST(LayerConfig, ClosureIsTransitive) {
  LayerConfig config;
  config.deps = {{"a", {}}, {"b", {"a"}}, {"c", {"b"}}};
  const std::set<std::string> closure = config.closure("c");
  EXPECT_EQ(closure, (std::set<std::string>{"a", "b"}));
  EXPECT_TRUE(config.closure("a").empty());
  EXPECT_EQ(config.validate(), "");
}

TEST(LayerConfig, ValidateRejectsCyclicDeclaration) {
  LayerConfig config;
  config.deps = {{"a", {"b"}}, {"b", {"a"}}};
  EXPECT_NE(config.validate(), "");
}

TEST(LayerConfig, FileOverrideRebindsModule) {
  LayerConfig config;
  config.deps = {{"base", {}}, {"core", {"base"}}};
  config.file_overrides = {{"core/check.hpp", "base"}};
  EXPECT_EQ(config.module_for("core/check.hpp"), "base");
  EXPECT_EQ(config.module_for("core/other.hpp"), "core");
}

TEST(LayerCheck, UpwardIncludeViolates) {
  LayerConfig config;
  config.deps = {{"a", {}}, {"b", {"a"}}};
  const Tree tree{
      {"a/low.hpp", {"#include \"b/high.hpp\""}},
      {"b/high.hpp", {"#pragma once"}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  Sink sink;
  check_layers(graph, config, "src", sink);
  EXPECT_EQ(rules_of(sink), (std::vector<std::string>{"layer-violation"}));
  EXPECT_EQ(sink.findings[0].file, "src/a/low.hpp");
}

TEST(LayerCheck, TransitiveDependencyAllowed) {
  LayerConfig config;
  config.deps = {{"a", {}}, {"b", {"a"}}, {"c", {"b"}}};
  const Tree tree{
      {"a/base.hpp", {"#pragma once"}},
      {"c/top.hpp", {"#include \"a/base.hpp\""}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  Sink sink;
  check_layers(graph, config, "src", sink);
  EXPECT_TRUE(sink.findings.empty()) << "c -> a is in the closure of c's deps";
}

TEST(LayerCheck, UndeclaredModuleReported) {
  LayerConfig config;
  config.deps = {{"a", {}}};
  const Tree tree{
      {"zz/orphan.hpp", {"#pragma once"}},
  };
  const IncludeGraph graph = build_include_graph(keys_of(tree), provider_for(tree));
  Sink sink;
  check_layers(graph, config, "src", sink);
  ASSERT_EQ(sink.findings.size(), 1U);
  EXPECT_EQ(sink.findings[0].rule, "unknown-module");
}

TEST(LayerCheck, DefaultConfigIsAcyclic) {
  EXPECT_EQ(default_layer_config().validate(), "");
}

TEST(Baseline, AbsorbsUpToCountThenReportsRemainder) {
  Baseline baseline;
  baseline.entries.push_back({"net/wire.hpp", "raw-memcpy", 1, 0});
  std::vector<Finding> findings{
      {"src/net/wire.hpp", 10, "raw-memcpy", "m"},
      {"src/net/wire.hpp", 20, "raw-memcpy", "m"},
      {"src/net/wire.hpp", 30, "wall-clock", "m"},
  };
  const std::vector<Finding> active =
      apply_baseline(std::move(findings), baseline, "src");
  ASSERT_EQ(active.size(), 2U);
  EXPECT_EQ(active[0].line, 20);
  EXPECT_EQ(active[1].rule, "wall-clock");
  EXPECT_EQ(baseline.entries[0].matched, 1);
}

TEST(JsonMini, ParsesNestedDocument) {
  const auto parsed = parse_json(R"({"a": [1, true, "x"], "b": {"c": null}})");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const JsonValue* a = parsed->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->array->size(), 3U);
  EXPECT_EQ((*a->array)[2].string, "x");
}

TEST(JsonMini, RejectsTrailingGarbage) {
  std::string error;
  EXPECT_FALSE(parse_json("{} trailing", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tsn::analyze
