// End-to-end integration: the full §2 pipeline — exchange with matching
// engine and PITCH feed, normalizer, strategy, gateway — running over the
// §4.1 leaf-spine fabric with real IGMP joins, multicast, and TCP order
// sessions, driven by background market activity.
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include <string>

#include "deploy/reference.hpp"
#include "exchange/activity.hpp"
#include "exchange/exchange.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "topo/leaf_spine.hpp"
#include "topo/quad_l1s.hpp"
#include "trading/gateway.hpp"
#include "trading/normalizer.hpp"
#include "trading/strategy.hpp"

namespace tsn {
namespace {

struct Pipeline {
  sim::Engine engine;
  net::Fabric fabric{engine};
  std::unique_ptr<exchange::Exchange> exch;
  std::unique_ptr<trading::Normalizer> normalizer;
  std::unique_ptr<trading::Gateway> gateway;
  std::unique_ptr<trading::MomentumTaker> strategy;

  static constexpr std::uint32_t kPartitions = 4;

  exchange::ExchangeConfig exchange_config() {
    exchange::ExchangeConfig config;
    config.name = "EXCH";
    config.exchange_id = 1;
    for (int i = 0; i < 6; ++i) {
      config.symbols.push_back({proto::Symbol{std::string{"SYM"} + static_cast<char>('A' + i)},
                                proto::InstrumentKind::kEquity,
                                proto::price_from_dollars(100.0 + i)});
    }
    config.feed_partitioning = std::make_shared<proto::AlphabetPartition>(2);
    config.feed_mac = net::MacAddr::from_host_id(1001);
    config.feed_ip = topo::LeafSpineFabric::host_ip(0, 0);
    config.order_mac = net::MacAddr::from_host_id(1002);
    config.order_ip = topo::LeafSpineFabric::host_ip(0, 1);
    return config;
  }

  trading::NormalizerConfig normalizer_config() {
    trading::NormalizerConfig config;
    config.name = "norm";
    config.exchange_id = 1;
    for (std::uint8_t u = 0; u < exch->unit_count(); ++u) {
      config.feed_groups.push_back(exch->unit_group(u));
    }
    config.feed_port = exch->config().feed_port;
    config.partitioning = std::make_shared<proto::HashPartition>(kPartitions);
    config.in_mac = net::MacAddr::from_host_id(1011);
    config.in_ip = topo::LeafSpineFabric::host_ip(1, 0);
    config.out_mac = net::MacAddr::from_host_id(1012);
    config.out_ip = topo::LeafSpineFabric::host_ip(1, 1);
    return config;
  }

  trading::GatewayConfig gateway_config() {
    trading::GatewayConfig config;
    config.name = "gw";
    config.exchange_mac = exch->order_nic().mac();
    config.exchange_ip = exch->order_nic().ip();
    config.exchange_port = exch->config().order_port;
    config.client_mac = net::MacAddr::from_host_id(1021);
    config.client_ip = topo::LeafSpineFabric::host_ip(3, 0);
    config.upstream_mac = net::MacAddr::from_host_id(1022);
    config.upstream_ip = topo::LeafSpineFabric::host_ip(3, 1);
    return config;
  }

  trading::StrategyConfig strategy_config() {
    trading::StrategyConfig config;
    config.name = "strat";
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      config.subscriptions.push_back(normalizer->partition_group(p));
    }
    config.norm_port = normalizer->config().out_port;
    config.gateway_mac = gateway->client_nic().mac();
    config.gateway_ip = gateway->client_nic().ip();
    config.md_mac = net::MacAddr::from_host_id(1031);
    config.md_ip = topo::LeafSpineFabric::host_ip(2, 0);
    config.order_mac = net::MacAddr::from_host_id(1032);
    config.order_ip = topo::LeafSpineFabric::host_ip(2, 1);
    return config;
  }
};

TEST(EndToEnd, LeafSpinePipelineTradesOnMarketData) {
  Pipeline p;
  topo::LeafSpineConfig topo_config;
  topo_config.spine_count = 2;
  topo_config.leaf_count = 4;
  topo_config.ports_per_leaf = 8;
  topo::LeafSpineFabric topo{p.fabric, topo_config};

  p.exch = std::make_unique<exchange::Exchange>(p.engine, p.exchange_config());
  topo.attach_host(0, p.exch->feed_nic());
  topo.attach_host(0, p.exch->order_nic());

  p.normalizer = std::make_unique<trading::Normalizer>(p.engine, p.normalizer_config());
  topo.attach_host(1, p.normalizer->in_nic());
  topo.attach_host(1, p.normalizer->out_nic());

  p.gateway = std::make_unique<trading::Gateway>(p.engine, p.gateway_config());
  topo.attach_host(3, p.gateway->client_nic());
  topo.attach_host(3, p.gateway->upstream_nic());

  p.strategy = std::make_unique<trading::MomentumTaker>(p.engine, p.strategy_config(),
                                                        /*tick=*/100, /*clip=*/100);
  topo.attach_host(2, p.strategy->md_nic());
  topo.attach_host(2, p.strategy->order_nic());

  p.normalizer->join_feeds();
  p.gateway->start();
  p.strategy->start();
  p.engine.run();  // joins, handshakes, logins settle
  ASSERT_TRUE(p.gateway->upstream_ready());

  exchange::ActivityConfig activity;
  activity.events_per_second = 40'000;
  activity.cross_weight = 0.25;  // plenty of prints for the momentum signal
  exchange::MarketActivityDriver driver{*p.exch, activity, 17};
  driver.run_until(sim::Time::zero() + sim::millis(std::int64_t{150}));
  p.engine.run();

  // Market data flowed the whole way.
  EXPECT_GT(p.exch->stats().feed_datagrams, 500u);
  EXPECT_GT(p.normalizer->stats().messages_in, 1'000u);
  EXPECT_EQ(p.normalizer->stats().sequence_gaps, 0u);
  EXPECT_GT(p.strategy->stats().updates_received, 500u);

  // The strategy traded, through the gateway, into the exchange.
  EXPECT_GT(p.strategy->stats().orders_sent, 0u);
  EXPECT_EQ(p.gateway->stats().orders_forwarded, p.strategy->stats().orders_sent);
  EXPECT_GT(p.strategy->stats().acks, 0u);
  EXPECT_EQ(p.gateway->stats().orphan_responses, 0u);

  // Tick-to-trade through software: software hop + decision latency.
  ASSERT_FALSE(p.strategy->tick_to_trade().empty());
  EXPECT_NEAR(p.strategy->tick_to_trade().mean(), 2'900.0, 50.0);

  // Multicast state was learned by snooping, not configured by hand.
  EXPECT_GT(topo.spine(0).mroutes().group_count(), 0u);
  EXPECT_GT(topo.leaf(1).mroutes().group_count(), 0u);
}

TEST(EndToEnd, QuadL1sPipelineHasNanosecondFabricLatency) {
  // The same application stack over Design 3's circuit fabrics. One stage
  // is exercised end to end: exchange feed -> normalizer over the feeds
  // L1S, with hardware timestamps proving the fabric adds only nanoseconds.
  sim::Engine engine;
  net::Fabric fabric{engine};
  topo::QuadL1Fabric quad{fabric, topo::QuadL1Config{}};

  exchange::ExchangeConfig xconfig;
  xconfig.name = "EXCH";
  xconfig.symbols = {{proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity,
                      proto::price_from_dollars(100)}};
  xconfig.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  xconfig.feed_mac = net::MacAddr::from_host_id(2001);
  xconfig.feed_ip = net::Ipv4Addr{10, 9, 0, 1};
  xconfig.order_mac = net::MacAddr::from_host_id(2002);
  xconfig.order_ip = net::Ipv4Addr{10, 9, 0, 2};
  exchange::Exchange exch{engine, xconfig};

  trading::NormalizerConfig nconfig;
  nconfig.exchange_id = 1;
  nconfig.feed_groups = {exch.unit_group(0)};
  nconfig.partitioning = std::make_shared<proto::HashPartition>(1);
  nconfig.in_mac = net::MacAddr::from_host_id(2011);
  nconfig.in_ip = net::Ipv4Addr{10, 9, 1, 1};
  nconfig.out_mac = net::MacAddr::from_host_id(2012);
  nconfig.out_ip = net::Ipv4Addr{10, 9, 1, 2};
  trading::Normalizer normalizer{engine, nconfig};

  const auto p_exch = quad.attach(topo::Stage::kFeeds, exch.feed_nic());
  const auto p_norm = quad.attach(topo::Stage::kFeeds, normalizer.in_nic());
  quad.patch(topo::Stage::kFeeds, p_exch, p_norm);
  // Circuit fabric: no IGMP needed, but the NIC filter must accept the
  // group's MAC.
  normalizer.in_nic().subscribe_multicast_mac(net::multicast_mac(exch.unit_group(0)));

  std::vector<sim::Time> stamps;
  quad.stage_switch(topo::Stage::kFeeds)
      .set_timestamp_hook([&](const net::PacketPtr&, net::PortId, sim::Time at) {
        stamps.push_back(at);
      });

  exchange::MarketActivityDriver driver{exch, exchange::ActivityConfig{}, 3};
  driver.run_until(sim::Time::zero() + sim::millis(std::int64_t{5}));
  engine.run();

  EXPECT_GT(normalizer.stats().messages_in, 50u);
  EXPECT_EQ(normalizer.stats().sequence_gaps, 0u);
  EXPECT_FALSE(stamps.empty());  // built-in timestamping saw the feed
  EXPECT_EQ(quad.stage_switch(topo::Stage::kFeeds).stats().frames_unpatched, 0u);
}

TEST(EndToEnd, TelemetryExportIsDeterministicAcrossIdenticalRuns) {
  // Identical seeds must yield byte-identical trace, metrics, and bench
  // report JSON — the telemetry layer adds no hidden nondeterminism
  // (unordered-map iteration, pointer-keyed output, float drift).
  struct Exports {
    std::string traces;
    std::string metrics;
    std::string report;
  };
  auto run_once = [] {
    deploy::DeploymentConfig config;
    config.strategy_count = 2;
    config.symbol_count = 4;
    config.events_per_second = 20'000;
    config.seed = 99;
    deploy::LeafSpineDeployment deployment{config};
    telemetry::TraceSink sink;
    telemetry::Registry registry;
    deployment.register_metrics(registry);
    telemetry::ScopedTraceSink attach{sink};
    deployment.start();
    deployment.run(sim::millis(std::int64_t{25}));

    Exports out;
    out.traces = sink.to_json();
    out.metrics = registry.to_json(deployment.engine().now());
    const auto r = deployment.report();
    bench::Report report{"determinism_probe", "Determinism probe"};
    report.param("seed", static_cast<std::int64_t>(config.seed));
    report.metric("orders_sent", static_cast<double>(r.orders_sent), "count");
    report.stats("tick_to_trade_ns", r.tick_to_trade_ns, "ns");
    report.check("traded", r.orders_sent > 0);
    out.report = report.to_json();
    return out;
  };
  const Exports a = run_once();
  const Exports b = run_once();
  EXPECT_GT(a.traces.size(), 100u);   // traces were actually recorded
  EXPECT_GT(a.metrics.size(), 100u);  // metrics were actually registered
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.report, b.report);
}

}  // namespace
}  // namespace tsn
