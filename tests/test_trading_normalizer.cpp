#include "sim/engine.hpp"
#include "trading/normalizer.hpp"

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/stack.hpp"
#include "proto/pitch.hpp"

namespace tsn::trading {
namespace {

NormalizerConfig base_config() {
  NormalizerConfig config;
  config.name = "norm0";
  config.exchange_id = 3;
  config.feed_groups = {net::Ipv4Addr{239, 100, 0, 0}};
  config.partitioning = std::make_shared<proto::HashPartition>(4);
  config.in_mac = net::MacAddr::from_host_id(300);
  config.in_ip = net::Ipv4Addr{10, 1, 0, 1};
  config.out_mac = net::MacAddr::from_host_id(301);
  config.out_ip = net::Ipv4Addr{10, 1, 0, 2};
  return config;
}

// A fake exchange feed NIC wired straight into the normalizer, and a
// promiscuous collector on its output.
struct NormalizerRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  Normalizer normalizer;
  net::Nic feed_source{engine, "exch", net::MacAddr::from_host_id(310),
                       net::Ipv4Addr{10, 2, 0, 1}};
  net::Nic collector{engine, "collector", net::MacAddr::from_host_id(311),
                     net::Ipv4Addr{10, 2, 0, 2}};
  std::vector<proto::norm::Update> updates;
  std::vector<std::uint16_t> update_partitions;
  proto::pitch::FrameBuilder feed;

  NormalizerRig()
      : normalizer(engine, base_config()),
        feed(0, 1458,
             [this](std::vector<std::byte> payload, const proto::pitch::UnitHeader&) {
               feed_source.send_frame(net::build_multicast_frame(
                   feed_source.mac(), feed_source.ip(), net::Ipv4Addr{239, 100, 0, 0}, 30001,
                   payload));
             }) {
    fabric.connect(feed_source, 0, normalizer.in_nic(), 0, net::LinkConfig{});
    fabric.connect(normalizer.out_nic(), 0, collector, 0, net::LinkConfig{});
    normalizer.join_feeds();
    collector.set_promiscuous(true);
    collector.set_rx_handler([this](const net::PacketPtr& packet, sim::Time) {
      const auto decoded = net::decode_frame(packet->frame());
      if (!decoded || !decoded->is_udp()) return;
      const auto parsed = proto::norm::parse(decoded->payload);
      if (!parsed) return;
      for (const auto& u : parsed->updates) {
        updates.push_back(u);
        update_partitions.push_back(parsed->header.partition);
      }
    });
    engine.run();  // flush the IGMP joins
  }

  void publish(const proto::pitch::Message& message) {
    feed.append(message);
    feed.flush();
    engine.run();
  }
};

TEST(Normalizer, RequiresPartitioning) {
  sim::Engine engine;
  NormalizerConfig config = base_config();
  config.partitioning = nullptr;
  EXPECT_THROW(Normalizer(engine, std::move(config)), std::invalid_argument);
}

TEST(Normalizer, AddOrderBecomesNormalizedUpdate) {
  NormalizerRig rig;
  proto::pitch::AddOrder add;
  add.order_id = 42;
  add.side = proto::Side::kBuy;
  add.quantity = 300;
  add.symbol = proto::Symbol{"ACME"};
  add.price = proto::price_from_dollars(50);
  add.time_offset_ns = 1'000;
  rig.publish(proto::pitch::Message{add});
  // A fresh order at a new level: the order event plus an explicit
  // top-of-book update carrying the new best.
  ASSERT_EQ(rig.updates.size(), 2u);
  const auto& update = rig.updates[0];
  EXPECT_EQ(update.kind, proto::norm::UpdateKind::kOrderAdd);
  EXPECT_EQ(update.exchange_id, 3);
  EXPECT_EQ(update.symbol.view(), "ACME");
  EXPECT_EQ(update.price, proto::price_from_dollars(50));
  EXPECT_EQ(update.quantity, 300u);
  EXPECT_EQ(update.order_id, 42u);
  const auto& bbo = rig.updates[1];
  EXPECT_EQ(bbo.kind, proto::norm::UpdateKind::kBboUpdate);
  EXPECT_EQ(bbo.price, proto::price_from_dollars(50));
  EXPECT_EQ(bbo.quantity, 300u);
  EXPECT_EQ(bbo.order_id, 0u);
  EXPECT_EQ(rig.normalizer.stats().bbo_updates, 1u);
}

TEST(Normalizer, TimeMessageSetsClockAndIsNotRepublished) {
  NormalizerRig rig;
  rig.publish(proto::pitch::Message{proto::pitch::Time{34'200}});
  EXPECT_TRUE(rig.updates.empty());
  proto::pitch::AddOrder add;
  add.order_id = 1;
  add.symbol = proto::Symbol{"ACME"};
  add.price = 100;
  add.quantity = 10;
  add.time_offset_ns = 500;
  rig.publish(proto::pitch::Message{add});
  ASSERT_EQ(rig.updates.size(), 2u);  // order add + BBO update
  EXPECT_EQ(rig.updates[0].exchange_time_ns, 34'200ULL * 1'000'000'000 + 500);
  EXPECT_EQ(rig.updates[1].exchange_time_ns, 34'200ULL * 1'000'000'000 + 500);
}

TEST(Normalizer, ExecuteResolvesSymbolFromOrderState) {
  NormalizerRig rig;
  proto::pitch::AddOrder add;
  add.order_id = 7;
  add.side = proto::Side::kSell;
  add.symbol = proto::Symbol{"WIDGET"};
  add.price = proto::price_from_dollars(10);
  add.quantity = 100;
  rig.publish(proto::pitch::Message{add});
  proto::pitch::OrderExecuted exec;
  exec.order_id = 7;
  exec.executed_quantity = 40;
  exec.execution_id = 9'000;
  rig.publish(proto::pitch::Message{exec});
  // add (+bbo), then the trade print (+bbo: depth at best shrank).
  ASSERT_EQ(rig.updates.size(), 4u);
  EXPECT_EQ(rig.updates[2].kind, proto::norm::UpdateKind::kTradePrint);
  EXPECT_EQ(rig.updates[2].symbol.view(), "WIDGET");
  EXPECT_EQ(rig.updates[2].quantity, 40u);
  EXPECT_EQ(rig.updates[3].kind, proto::norm::UpdateKind::kBboUpdate);
  EXPECT_EQ(rig.updates[3].quantity, 60u);  // remaining depth at the best
  EXPECT_EQ(rig.normalizer.stats().unknown_orders, 0u);
}

TEST(Normalizer, UnknownOrderIdsCountedNotCrashed) {
  NormalizerRig rig;
  proto::pitch::OrderExecuted exec;
  exec.order_id = 999;  // never added
  exec.executed_quantity = 10;
  rig.publish(proto::pitch::Message{exec});
  EXPECT_TRUE(rig.updates.empty());
  EXPECT_EQ(rig.normalizer.stats().unknown_orders, 1u);
}

TEST(Normalizer, DeleteRemovesDepthAndEmitsBboWhenTopChanges) {
  NormalizerRig rig;
  proto::pitch::AddOrder best;
  best.order_id = 1;
  best.side = proto::Side::kBuy;
  best.symbol = proto::Symbol{"ACME"};
  best.price = proto::price_from_dollars(51);
  best.quantity = 100;
  proto::pitch::AddOrder second;
  second.order_id = 2;
  second.side = proto::Side::kBuy;
  second.symbol = proto::Symbol{"ACME"};
  second.price = proto::price_from_dollars(50);
  second.quantity = 100;
  rig.publish(proto::pitch::Message{best});
  rig.publish(proto::pitch::Message{second});
  // The first add moved the BBO (order + bbo); the second did not (order
  // only).
  ASSERT_EQ(rig.updates.size(), 3u);
  EXPECT_EQ(rig.updates[2].kind, proto::norm::UpdateKind::kOrderAdd);
  // Deleting the best reveals the second order as the new top.
  proto::pitch::DeleteOrder del;
  del.order_id = 1;
  rig.publish(proto::pitch::Message{del});
  ASSERT_EQ(rig.updates.size(), 5u);
  EXPECT_EQ(rig.updates[3].kind, proto::norm::UpdateKind::kOrderDelete);
  EXPECT_EQ(rig.updates[4].kind, proto::norm::UpdateKind::kBboUpdate);
  EXPECT_EQ(rig.updates[4].price, proto::price_from_dollars(50));
  EXPECT_EQ(rig.updates[4].quantity, 100u);
}

TEST(Normalizer, RepartitionsBySymbolHash) {
  NormalizerRig rig;
  const proto::HashPartition expected{4};
  for (int i = 0; i < 20; ++i) {
    proto::pitch::AddOrder add;
    add.order_id = static_cast<proto::OrderId>(100 + i);
    add.symbol = proto::Symbol{std::string{"SYM"} + std::to_string(i)};
    add.price = 100;
    add.quantity = 10;
    rig.publish(proto::pitch::Message{add});
  }
  ASSERT_EQ(rig.updates.size(), 40u);  // order add + BBO update per symbol
  bool saw_multiple_partitions = false;
  for (std::size_t i = 0; i < rig.updates.size(); ++i) {
    EXPECT_EQ(rig.update_partitions[i],
              expected.partition_of(rig.updates[i].symbol, proto::InstrumentKind::kEquity));
    if (rig.update_partitions[i] != rig.update_partitions[0]) saw_multiple_partitions = true;
  }
  EXPECT_TRUE(saw_multiple_partitions);
}

TEST(Normalizer, SequenceGapCountsLostMessages) {
  NormalizerRig rig;
  // Hand-craft two datagrams with a gap between them.
  auto send_with_seq = [&](std::uint32_t seq) {
    std::vector<std::byte> payload;
    net::WireWriter w{payload};
    w.u16_le(static_cast<std::uint16_t>(proto::pitch::kUnitHeaderSize + 14));
    w.u8(1);
    w.u8(0);  // unit 0
    w.u32_le(seq);
    proto::pitch::encode(proto::pitch::Message{proto::pitch::DeleteOrder{0, 12345}}, w);
    rig.feed_source.send_frame(net::build_multicast_frame(
        rig.feed_source.mac(), rig.feed_source.ip(), net::Ipv4Addr{239, 100, 0, 0}, 30001,
        payload));
    rig.engine.run();
  };
  send_with_seq(1);
  send_with_seq(2);  // contiguous
  EXPECT_EQ(rig.normalizer.stats().sequence_gaps, 0u);
  send_with_seq(7);  // jumped over 3..6
  EXPECT_EQ(rig.normalizer.stats().sequence_gaps, 1u);
  EXPECT_EQ(rig.normalizer.stats().messages_lost, 4u);
}

TEST(Normalizer, StatsCountDatagramsAndMessages) {
  NormalizerRig rig;
  proto::pitch::AddOrder add;
  add.order_id = 1;
  add.symbol = proto::Symbol{"ACME"};
  add.price = 100;
  add.quantity = 10;
  rig.feed.append(proto::pitch::Message{add});
  add.order_id = 2;
  rig.feed.append(proto::pitch::Message{add});
  rig.feed.flush();
  rig.engine.run();
  EXPECT_EQ(rig.normalizer.stats().datagrams_in, 1u);
  EXPECT_EQ(rig.normalizer.stats().messages_in, 2u);
  // Two order adds at the same price: both change the displayed top (new
  // level, then more depth at it) -> two order updates + two BBO updates.
  EXPECT_EQ(rig.normalizer.stats().updates_out, 4u);
  EXPECT_EQ(rig.normalizer.stats().bbo_updates, 2u);
  EXPECT_GE(rig.normalizer.stats().datagrams_out, 1u);
}

}  // namespace
}  // namespace tsn::trading
