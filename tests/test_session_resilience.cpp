// Order-entry session resilience (§2): journal + exactly-once replay,
// client-order-id dedupe, cancel-on-disconnect, session resume/takeover on
// the exchange side; reconnect backoff, in-flight reconciliation, and the
// bounded pending queue on the gateway side.
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "exchange/exchange.hpp"
#include "net/fabric.hpp"
#include "net/stack.hpp"
#include "trading/gateway.hpp"

namespace tsn {
namespace {

using proto::boe::Message;
using proto::boe::RejectReason;

exchange::ExchangeConfig exchange_config(bool cancel_on_disconnect) {
  exchange::ExchangeConfig config;
  config.symbols = {{proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity,
                     proto::price_from_dollars(100)}};
  config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  config.cancel_on_disconnect = cancel_on_disconnect;
  config.feed_mac = net::MacAddr::from_host_id(1);
  config.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
  config.order_mac = net::MacAddr::from_host_id(2);
  config.order_ip = net::Ipv4Addr{10, 0, 0, 2};
  return config;
}

// A raw TCP client speaking BOE straight at the exchange, able to open
// several connections (reconnect legs) over its one NIC.
struct ExchangeRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange exch;
  net::Nic client_nic{engine, "client", net::MacAddr::from_host_id(10),
                      net::Ipv4Addr{10, 0, 0, 10}};
  net::NetStack client{client_nic};
  std::uint32_t seq = 1;

  struct Conn {
    net::TcpEndpoint* ep = nullptr;
    proto::boe::StreamParser parser;
    std::vector<std::byte> raw;  // every byte received, in order
    std::vector<std::pair<std::uint32_t, Message>> msgs;
  };
  std::vector<std::unique_ptr<Conn>> conns;

  explicit ExchangeRig(bool cancel_on_disconnect = false)
      : exch(engine, exchange_config(cancel_on_disconnect)) {
    fabric.connect(exch.order_nic(), 0, client_nic, 0, net::LinkConfig{});
  }

  Conn& open() {
    auto conn = std::make_unique<Conn>();
    Conn* raw_conn = conn.get();
    conn->ep = &client.connect_tcp(exch.order_nic().mac(), exch.order_nic().ip(),
                                   exch.config().order_port, 0);
    conn->ep->set_data_handler([raw_conn](std::span<const std::byte> bytes, sim::Time) {
      raw_conn->raw.insert(raw_conn->raw.end(), bytes.begin(), bytes.end());
      raw_conn->parser.feed(bytes);
      while (auto decoded = raw_conn->parser.next()) {
        raw_conn->msgs.emplace_back(decoded->seq, decoded->message);
      }
    });
    conns.push_back(std::move(conn));
    return *raw_conn;
  }

  void send(Conn& conn, const Message& message) {
    conn.ep->send(proto::boe::encode(message, seq++));
  }

  void run(std::int64_t ms = 5) { engine.run_until(engine.now() + sim::millis(ms)); }

  // Sell orders above the open rest untouched (no background liquidity).
  proto::boe::NewOrder resting_sell(proto::OrderId id, proto::Quantity qty, double dollars) {
    return {id, proto::Side::kSell, qty, proto::Symbol{"AAA"},
            proto::price_from_dollars(dollars), proto::boe::TimeInForce::kDay};
  }

  template <typename T>
  std::vector<T> received(const Conn& conn) const {
    std::vector<T> out;
    for (const auto& [msg_seq, msg] : conn.msgs) {
      if (const auto* typed = std::get_if<T>(&msg)) out.push_back(*typed);
    }
    return out;
  }
};

TEST(SessionResilience, ReplayIsByteIdenticalToTheLiveStream) {
  ExchangeRig rig;
  auto& first = rig.open();
  rig.send(first, proto::boe::LoginRequest{7, 0xfeed});
  rig.run();
  rig.send(first, rig.resting_sell(1, 100, 101.0));
  rig.send(first, rig.resting_sell(2, 50, 102.0));
  rig.run();
  rig.send(first, proto::boe::CancelOrder{1});
  rig.run();
  // Live sequenced stream: OrderAccepted(1), OrderAccepted(2),
  // OrderCancelled(1) at seqs 1..3, preceded by the unsequenced login ack.
  ASSERT_EQ(first.msgs.size(), 4u);
  const std::size_t login_ack_size =
      proto::boe::encoded_size(Message{proto::boe::LoginAccepted{}});
  const std::vector<std::byte> live_tail(first.raw.begin() +
                                             static_cast<std::ptrdiff_t>(login_ack_size),
                                         first.raw.end());

  // Same credentials on a fresh connection take the session over; a replay
  // from zero must reproduce the journal verbatim.
  auto& second = rig.open();
  rig.send(second, proto::boe::LoginRequest{7, 0xfeed});
  rig.run();
  rig.send(second, proto::boe::ReplayRequest{0});
  rig.run();
  EXPECT_EQ(rig.exch.stats().sessions_taken_over, 1u);
  EXPECT_EQ(rig.exch.stats().replays_served, 1u);
  EXPECT_EQ(rig.exch.stats().replayed_messages, 3u);
  const std::size_t reset_size =
      proto::boe::encoded_size(Message{proto::boe::SequenceReset{}});
  ASSERT_GE(second.raw.size(), login_ack_size + live_tail.size() + reset_size);
  const std::vector<std::byte> replay_tail(
      second.raw.begin() + static_cast<std::ptrdiff_t>(login_ack_size),
      second.raw.end() - static_cast<std::ptrdiff_t>(reset_size));
  EXPECT_EQ(replay_tail, live_tail);
  // The replay closes with the next sequence the live stream would use.
  const auto resets = rig.received<proto::boe::SequenceReset>(second);
  ASSERT_EQ(resets.size(), 1u);
  EXPECT_EQ(resets[0].next_seq, 4u);

  // A second replay serves the identical bytes again: replay is a pure
  // function of the journal, not a destructive pop.
  second.raw.clear();
  rig.send(second, proto::boe::ReplayRequest{0});
  rig.run();
  EXPECT_EQ(rig.exch.stats().replays_served, 2u);
  const std::vector<std::byte> replay_again(
      second.raw.begin(), second.raw.end() - static_cast<std::ptrdiff_t>(reset_size));
  EXPECT_EQ(replay_again, live_tail);
}

TEST(SessionResilience, ReplayFromLastSeenSendsOnlyTheMissedTail) {
  ExchangeRig rig;
  auto& first = rig.open();
  rig.send(first, proto::boe::LoginRequest{3, 0xfeed});
  rig.run();
  rig.send(first, rig.resting_sell(1, 100, 101.0));
  rig.run();
  first.ep->close();  // graceful death; the session survives
  rig.run();

  auto& second = rig.open();
  rig.send(second, proto::boe::LoginRequest{3, 0xfeed});
  rig.run();
  EXPECT_EQ(rig.exch.stats().sessions_resumed, 1u);
  rig.send(second, proto::boe::ReplayRequest{1});  // we saw seq 1 already
  rig.run();
  EXPECT_EQ(rig.exch.stats().replays_served, 1u);
  EXPECT_EQ(rig.exch.stats().replayed_messages, 0u);
  const auto resets = rig.received<proto::boe::SequenceReset>(second);
  ASSERT_EQ(resets.size(), 1u);
  EXPECT_EQ(resets[0].next_seq, 2u);
}

TEST(SessionResilience, DuplicateClientOrderIdNeverExecutesTwice) {
  ExchangeRig rig;
  auto& conn = rig.open();
  rig.send(conn, proto::boe::LoginRequest{1, 0xfeed});
  rig.run();
  rig.send(conn, rig.resting_sell(9, 100, 101.0));
  rig.run();
  // Resubmission while the original is still live.
  rig.send(conn, rig.resting_sell(9, 100, 101.0));
  rig.run();
  EXPECT_EQ(rig.exch.stats().orders_accepted, 1u);
  EXPECT_EQ(rig.exch.stats().duplicate_client_ids_rejected, 1u);

  // Fill the original completely: the id is now terminal — and still owned.
  rig.exch.book(proto::Symbol{"AAA"})
      .submit({rig.exch.next_order_id(), proto::Side::kBuy,
               proto::price_from_dollars(101.0), 100});
  rig.run();
  rig.send(conn, rig.resting_sell(9, 100, 101.0));
  rig.run();
  EXPECT_EQ(rig.exch.stats().orders_accepted, 1u);
  EXPECT_EQ(rig.exch.stats().duplicate_client_ids_rejected, 2u);
  const auto rejects = rig.received<proto::boe::OrderRejected>(conn);
  ASSERT_EQ(rejects.size(), 2u);
  for (const auto& reject : rejects) {
    EXPECT_EQ(reject.client_order_id, 9u);
    EXPECT_EQ(reject.reason, RejectReason::kDuplicateOrderId);
  }
}

TEST(SessionResilience, CancelOnDisconnectPullsRestingOrdersAndJournalsThem) {
  ExchangeRig rig{/*cancel_on_disconnect=*/true};
  auto& first = rig.open();
  rig.send(first, proto::boe::LoginRequest{1, 0xfeed});
  rig.run();
  rig.send(first, rig.resting_sell(1, 100, 101.0));
  rig.send(first, rig.resting_sell(2, 200, 102.0));
  rig.send(first, rig.resting_sell(3, 300, 103.0));
  rig.run();
  ASSERT_EQ(rig.exch.book(proto::Symbol{"AAA"}).open_orders(), 3u);

  first.ep->close();
  rig.run();
  EXPECT_EQ(rig.exch.stats().cod_sessions, 1u);
  EXPECT_EQ(rig.exch.stats().cod_orders_cancelled, 3u);
  EXPECT_EQ(rig.exch.book(proto::Symbol{"AAA"}).open_orders(), 0u);

  // The cancels were journaled: a resumed session replaying the tail sees
  // exactly what the exchange did while it was gone, in sorted id order.
  auto& second = rig.open();
  rig.send(second, proto::boe::LoginRequest{1, 0xfeed});
  rig.run();
  EXPECT_EQ(rig.exch.stats().sessions_resumed, 1u);
  rig.send(second, proto::boe::ReplayRequest{3});  // acks 1..3 were seen live
  rig.run();
  EXPECT_EQ(rig.exch.stats().replayed_messages, 3u);
  const auto cancels = rig.received<proto::boe::OrderCancelled>(second);
  ASSERT_EQ(cancels.size(), 3u);
  EXPECT_EQ(cancels[0].client_order_id, 1u);
  EXPECT_EQ(cancels[1].client_order_id, 2u);
  EXPECT_EQ(cancels[2].client_order_id, 3u);
}

TEST(SessionResilience, TakeoverByLiveCredentialsSkipsCancelOnDisconnect) {
  ExchangeRig rig{/*cancel_on_disconnect=*/true};
  auto& first = rig.open();
  rig.send(first, proto::boe::LoginRequest{1, 0xfeed});
  rig.run();
  rig.send(first, rig.resting_sell(1, 100, 101.0));
  rig.run();

  // The client re-logs in on a new leg while the old one still looks alive
  // (it aborted without a FIN). The session never died: orders stay.
  auto& second = rig.open();
  rig.send(second, proto::boe::LoginRequest{1, 0xfeed});
  rig.run();
  EXPECT_EQ(rig.exch.stats().sessions_taken_over, 1u);
  EXPECT_EQ(rig.exch.stats().cod_sessions, 0u);
  EXPECT_EQ(rig.exch.book(proto::Symbol{"AAA"}).open_orders(), 1u);
  // The usurped leg was closed by the exchange.
  EXPECT_NE(first.ep->state(), net::TcpState::kEstablished);
}

TEST(SessionResilience, WrongTokenIsRejectedWithoutDisturbingTheSession) {
  ExchangeRig rig{/*cancel_on_disconnect=*/true};
  auto& first = rig.open();
  rig.send(first, proto::boe::LoginRequest{1, 0xfeed});
  rig.run();
  rig.send(first, rig.resting_sell(1, 100, 101.0));
  rig.run();

  auto& intruder = rig.open();
  rig.send(intruder, proto::boe::LoginRequest{1, 0xbad});
  rig.run();
  const auto rejects = rig.received<proto::boe::LoginRejected>(intruder);
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].reason, RejectReason::kSessionInUse);
  // The rightful owner's leg and orders are untouched.
  EXPECT_EQ(first.ep->state(), net::TcpState::kEstablished);
  EXPECT_EQ(rig.exch.book(proto::Symbol{"AAA"}).open_orders(), 1u);
  EXPECT_EQ(rig.exch.stats().cod_sessions, 0u);
}

// --- gateway side -----------------------------------------------------------

struct GatewayRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange exch;
  trading::Gateway gw;
  net::Cable up_cable;
  net::Nic strat_nic{engine, "strat", net::MacAddr::from_host_id(30),
                     net::Ipv4Addr{10, 0, 0, 30}};
  net::NetStack strat{strat_nic};
  net::TcpEndpoint* strat_ep = nullptr;
  proto::boe::StreamParser strat_parser;
  std::vector<Message> strat_msgs;
  std::uint32_t seq = 1;

  static trading::GatewayConfig gateway_config(exchange::Exchange& exch) {
    trading::GatewayConfig config;
    config.exchange_mac = exch.order_nic().mac();
    config.exchange_ip = exch.order_nic().ip();
    config.exchange_port = exch.config().order_port;
    config.client_mac = net::MacAddr::from_host_id(20);
    config.client_ip = net::Ipv4Addr{10, 0, 0, 20};
    config.upstream_mac = net::MacAddr::from_host_id(21);
    config.upstream_ip = net::Ipv4Addr{10, 0, 0, 21};
    return config;
  }

  explicit GatewayRig(
      const std::function<void(trading::GatewayConfig&)>& tweak = [](auto&) {})
      : exch(engine, exchange_config(false)), gw(engine, [&] {
          auto config = gateway_config(exch);
          tweak(config);
          return config;
        }()),
        up_cable(fabric.connect(gw.upstream_nic(), 0, exch.order_nic(), 0, net::LinkConfig{})) {
    fabric.connect(strat_nic, 0, gw.client_nic(), 0, net::LinkConfig{});
    strat_ep = &strat.connect_tcp(gw.client_nic().mac(), gw.client_nic().ip(),
                                  gw.config().listen_port, 0);
    strat_ep->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
      strat_parser.feed(bytes);
      while (auto decoded = strat_parser.next()) strat_msgs.push_back(decoded->message);
    });
  }

  void start_and_login() {
    gw.start();
    strat_ep->send(proto::boe::encode(proto::boe::LoginRequest{1, 1}, seq++));
    engine.run();
    ASSERT_EQ(gw.upstream_state(), trading::UpstreamState::kReady);
  }

  void send_order(proto::OrderId id, proto::Quantity qty, double dollars) {
    strat_ep->send(proto::boe::encode(
        Message{proto::boe::NewOrder{id, proto::Side::kSell, qty, proto::Symbol{"AAA"},
                                     proto::price_from_dollars(dollars),
                                     proto::boe::TimeInForce::kDay}},
        seq++));
  }

  template <typename T>
  std::vector<T> strat_received() const {
    std::vector<T> out;
    for (const auto& msg : strat_msgs) {
      if (const auto* typed = std::get_if<T>(&msg)) out.push_back(*typed);
    }
    return out;
  }

  void run(std::int64_t ms) { engine.run_until(engine.now() + sim::millis(ms)); }
};

TEST(SessionResilience, GatewayReconnectsAfterKillAndFlowResumes) {
  GatewayRig rig;
  rig.start_and_login();
  rig.send_order(100, 100, 101.0);
  rig.engine.run();
  ASSERT_EQ(rig.strat_received<proto::boe::OrderAccepted>().size(), 1u);

  rig.gw.kill_upstream();
  rig.engine.run();
  EXPECT_EQ(rig.gw.stats().disconnects, 1u);
  EXPECT_EQ(rig.gw.stats().reconnect_attempts, 1u);
  EXPECT_EQ(rig.gw.stats().reconnects_completed, 1u);
  EXPECT_EQ(rig.gw.stats().replays_requested, 1u);
  EXPECT_EQ(rig.gw.upstream_state(), trading::UpstreamState::kReady);
  // Disconnect-to-ready covers at least one backoff step: 2ms initial,
  // minus the worst-case -10% jitter draw.
  EXPECT_GE(rig.gw.last_recovery_duration().picos(),
            sim::millis(std::int64_t{2}).picos() * 9 / 10);
  // The abort was silent, so the exchange saw a takeover, not a resume —
  // and everything was already acked, so nothing replayed or resubmitted.
  EXPECT_EQ(rig.exch.stats().sessions_taken_over, 1u);
  EXPECT_EQ(rig.gw.stats().orders_marked_unknown, 0u);
  EXPECT_EQ(rig.gw.stats().orders_resubmitted, 0u);

  rig.send_order(101, 50, 102.0);
  rig.engine.run();
  EXPECT_EQ(rig.strat_received<proto::boe::OrderAccepted>().size(), 2u);
  EXPECT_EQ(rig.exch.stats().orders_accepted, 2u);
  // Risk exposure is continuous across the disconnect: both orders rest.
  EXPECT_EQ(rig.gw.risk().open_orders(), 2u);
}

TEST(SessionResilience, UnreachedOrderIsResubmittedExactlyOnce) {
  GatewayRig rig;
  rig.start_and_login();
  // Cut the uplink toward the exchange, then send: the order dies on the
  // wire, the gateway's RTO exhausts, and reconciliation must resubmit.
  rig.up_cable.a_to_b->set_admin_up(false);
  rig.send_order(100, 100, 101.0);
  rig.run(60);  // RTO strikes out (~45ms), reconnect attempts begin
  EXPECT_EQ(rig.gw.stats().disconnects, 1u);
  EXPECT_EQ(rig.gw.stats().orders_marked_unknown, 1u);
  ASSERT_EQ(rig.exch.stats().orders_received, 0u);

  rig.up_cable.a_to_b->set_admin_up(true);
  rig.engine.run();
  EXPECT_EQ(rig.gw.upstream_state(), trading::UpstreamState::kReady);
  EXPECT_EQ(rig.gw.stats().orders_resubmitted, 1u);
  // Exactly one execution, one ack to the strategy, one risk reservation.
  EXPECT_EQ(rig.exch.stats().orders_accepted, 1u);
  EXPECT_EQ(rig.strat_received<proto::boe::OrderAccepted>().size(), 1u);
  EXPECT_EQ(rig.gw.risk().open_orders(), 1u);
}

TEST(SessionResilience, LostResponsesAreResolvedByReplayNotResubmission) {
  GatewayRig rig;
  rig.start_and_login();
  // Cut only the exchange->gateway direction: the order reaches the matcher
  // and is journaled, but the ack never comes back. The gateway must learn
  // the outcome from replay — resubmitting would be wrong (dedupe saves us,
  // but the clean path is replay resolution).
  rig.up_cable.b_to_a->set_admin_up(false);
  rig.send_order(100, 100, 101.0);
  rig.run(60);
  EXPECT_EQ(rig.gw.stats().disconnects, 1u);
  EXPECT_EQ(rig.gw.stats().orders_marked_unknown, 1u);
  ASSERT_EQ(rig.exch.stats().orders_accepted, 1u);

  rig.up_cable.b_to_a->set_admin_up(true);
  rig.engine.run();
  EXPECT_EQ(rig.gw.upstream_state(), trading::UpstreamState::kReady);
  EXPECT_EQ(rig.gw.stats().orders_resubmitted, 0u);
  EXPECT_GE(rig.exch.stats().replayed_messages, 1u);
  EXPECT_EQ(rig.exch.stats().orders_accepted, 1u);
  EXPECT_EQ(rig.exch.stats().duplicate_client_ids_rejected, 0u);
  const auto acks = rig.strat_received<proto::boe::OrderAccepted>();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].client_order_id, 100u);
}

TEST(SessionResilience, PendingUpstreamBoundShedsWithCountedRejects) {
  GatewayRig rig{[](trading::GatewayConfig& config) {
    config.max_pending_upstream = 2;
    // Park the reconnect far in the future: the whole test runs disconnected.
    config.reconnect_backoff_initial = sim::millis(std::int64_t{500});
  }};
  rig.start_and_login();
  rig.gw.kill_upstream();
  rig.run(1);
  for (proto::OrderId id = 100; id < 104; ++id) rig.send_order(id, 10, 101.0);
  rig.run(5);
  EXPECT_EQ(rig.gw.pending_upstream_depth(), 2u);
  EXPECT_EQ(rig.gw.pending_upstream_hwm(), 2u);
  EXPECT_EQ(rig.gw.stats().orders_shed, 2u);
  // Shed orders released their risk reservations; queued ones still hold.
  EXPECT_EQ(rig.gw.risk().open_orders(), 2u);
  const auto rejects = rig.strat_received<proto::boe::OrderRejected>();
  ASSERT_EQ(rejects.size(), 2u);
  for (const auto& reject : rejects) {
    EXPECT_EQ(reject.reason, RejectReason::kGatewayBackpressure);
  }
  // A cancel hitting the full queue is shed too, but keeps the order alive.
  rig.strat_ep->send(proto::boe::encode(Message{proto::boe::CancelOrder{100}}, rig.seq++));
  rig.run(5);
  EXPECT_EQ(rig.gw.stats().cancels_shed, 1u);
  const auto cancel_rejects = rig.strat_received<proto::boe::CancelRejected>();
  ASSERT_EQ(cancel_rejects.size(), 1u);
  EXPECT_EQ(cancel_rejects[0].reason, RejectReason::kGatewayBackpressure);
}

TEST(SessionResilience, ReconnectGivesUpAfterMaxAttempts) {
  GatewayRig rig{[](trading::GatewayConfig& config) {
    config.exchange_port = 9;  // nothing listens: every connect strikes out
    config.reconnect_max_attempts = 3;
    config.reconnect_backoff_initial = sim::millis(std::int64_t{1});
  }};
  rig.gw.start();
  rig.engine.run();
  EXPECT_EQ(rig.gw.upstream_state(), trading::UpstreamState::kFailed);
  EXPECT_EQ(rig.gw.stats().reconnect_attempts, 3u);
  EXPECT_EQ(rig.gw.stats().reconnects_given_up, 1u);
  EXPECT_EQ(rig.gw.stats().reconnects_completed, 0u);
  // Initial connect + 3 retries all died.
  EXPECT_EQ(rig.gw.stats().disconnects, 4u);
}

// Runs kill-then-reconnect and reports when the gateway is ready again.
std::int64_t reconnect_completion_picos(std::uint64_t jitter_seed) {
  GatewayRig rig{[jitter_seed](trading::GatewayConfig& config) {
    config.reconnect_jitter_seed = jitter_seed;
  }};
  rig.gw.start();
  rig.engine.run();
  rig.gw.kill_upstream();
  while (rig.gw.upstream_state() != trading::UpstreamState::kReady) {
    rig.engine.run_until(rig.engine.now() + sim::micros(std::int64_t{10}));
    if (rig.engine.now() > sim::Time{} + sim::millis(std::int64_t{200})) break;
  }
  return rig.engine.now().picos();
}

TEST(SessionResilience, ReconnectBackoffIsSeededAndDeterministic) {
  const auto first = reconnect_completion_picos(0x1111);
  const auto again = reconnect_completion_picos(0x1111);
  const auto other = reconnect_completion_picos(0x2222);
  EXPECT_EQ(first, again);  // same seed: byte-identical schedule
  EXPECT_NE(first, other);  // jitter actually depends on the seed
}

}  // namespace
}  // namespace tsn
