#include "core/codesign.hpp"

#include <gtest/gtest.h>

namespace tsn::core {
namespace {

// Two consumers with disjoint interests over four symbols.
CodesignInput disjoint_input() {
  CodesignInput input;
  input.symbol_weight = {10.0, 10.0, 5.0, 5.0};
  input.subscriptions = {{0, 1}, {2, 3}};
  input.group_budget = 2;
  return input;
}

TEST(Codesign, EvaluateWantedAndDelivered) {
  const auto input = disjoint_input();
  // One group holding everything: both consumers receive all 30 weight.
  Grouping all_in_one;
  all_in_one.group_count = 1;
  all_in_one.group_of = {0, 0, 0, 0};
  const auto metrics = evaluate_grouping(input, all_in_one);
  EXPECT_DOUBLE_EQ(metrics.wanted_weight, 30.0);
  EXPECT_DOUBLE_EQ(metrics.delivered_weight, 60.0);
  EXPECT_DOUBLE_EQ(metrics.over_delivery, 30.0);
  EXPECT_DOUBLE_EQ(metrics.efficiency(), 0.5);
}

TEST(Codesign, PerfectGroupingHasNoOverDelivery) {
  const auto input = disjoint_input();
  Grouping split;
  split.group_count = 2;
  split.group_of = {0, 0, 1, 1};
  const auto metrics = evaluate_grouping(input, split);
  EXPECT_DOUBLE_EQ(metrics.over_delivery, 0.0);
  EXPECT_DOUBLE_EQ(metrics.efficiency(), 1.0);
}

TEST(Codesign, OptimizerFindsThePerfectSplit) {
  const auto input = disjoint_input();
  const auto grouping = codesign_grouping(input);
  EXPECT_LE(grouping.group_count, 2u);
  const auto metrics = evaluate_grouping(input, grouping);
  EXPECT_DOUBLE_EQ(metrics.over_delivery, 0.0);
  // Symbols with the same subscriber set share a group.
  EXPECT_EQ(grouping.group_of[0], grouping.group_of[1]);
  EXPECT_EQ(grouping.group_of[2], grouping.group_of[3]);
  EXPECT_NE(grouping.group_of[0], grouping.group_of[2]);
}

TEST(Codesign, PerfectGroupCountCountsSignatures) {
  auto input = disjoint_input();
  EXPECT_EQ(perfect_group_count(input), 2u);
  input.subscriptions.push_back({0, 2});  // a third, overlapping consumer
  EXPECT_EQ(perfect_group_count(input), 4u);  // {0},{1},{2},{3} now distinct... almost
}

TEST(Codesign, BudgetOfOneDeliversEverythingToEveryone) {
  auto input = disjoint_input();
  input.group_budget = 1;
  const auto grouping = codesign_grouping(input);
  EXPECT_EQ(grouping.group_count, 1u);
  const auto metrics = evaluate_grouping(input, grouping);
  EXPECT_DOUBLE_EQ(metrics.efficiency(), 0.5);
}

TEST(Codesign, CheapestMergePrefersSimilarSubscriberSets) {
  CodesignInput input;
  // Consumer 0 wants symbols 0,1; consumer 1 wants symbol 2.
  // With budget 2, merging 0 and 1 (same subscribers) is free; merging
  // either with 2 would over-deliver.
  input.symbol_weight = {100.0, 100.0, 1.0};
  input.subscriptions = {{0, 1}, {2}};
  input.group_budget = 2;
  const auto grouping = codesign_grouping(input);
  const auto metrics = evaluate_grouping(input, grouping);
  EXPECT_DOUBLE_EQ(metrics.over_delivery, 0.0);
}

TEST(Codesign, BeatsHashOnStructuredSubscriptions) {
  // 64 symbols in 4 contiguous "sectors" of 16; 8 consumers each want one
  // sector. A subscription-oblivious hash scatters each sector across all
  // groups; the co-design recovers the sector structure.
  CodesignInput input;
  input.symbol_weight.assign(64, 1.0);
  input.subscriptions.resize(8);
  for (ConsumerId c = 0; c < 8; ++c) {
    const std::uint32_t sector = c % 4;
    for (SymbolId s = 0; s < 64; ++s) {
      if (s / 16 == sector) input.subscriptions[c].push_back(s);
    }
  }
  input.group_budget = 4;
  const auto hash = evaluate_grouping(input, hash_grouping(input));
  const auto designed = evaluate_grouping(input, codesign_grouping(input));
  EXPECT_DOUBLE_EQ(designed.over_delivery, 0.0);  // 4 sectors, 4 groups
  EXPECT_GT(hash.over_delivery, 0.0);
  EXPECT_GT(designed.efficiency(), hash.efficiency());
}

TEST(Codesign, UnsubscribedSymbolsCostNothing) {
  CodesignInput input;
  input.symbol_weight = {5.0, 7.0};
  input.subscriptions = {{0}};
  input.group_budget = 2;
  const auto grouping = codesign_grouping(input);
  const auto metrics = evaluate_grouping(input, grouping);
  EXPECT_DOUBLE_EQ(metrics.delivered_weight, 5.0);  // symbol 1 goes nowhere
}

TEST(Codesign, ValidationErrors) {
  CodesignInput input = disjoint_input();
  input.group_budget = 0;
  EXPECT_THROW((void)codesign_grouping(input), std::invalid_argument);
  EXPECT_THROW((void)hash_grouping(input), std::invalid_argument);
  input.group_budget = 2;
  Grouping wrong_size;
  wrong_size.group_count = 1;
  wrong_size.group_of = {0};
  EXPECT_THROW((void)evaluate_grouping(input, wrong_size), std::invalid_argument);
  CodesignInput bad_subscription = disjoint_input();
  bad_subscription.subscriptions[0].push_back(99);
  EXPECT_THROW((void)evaluate_grouping(bad_subscription, hash_grouping(bad_subscription)),
               std::out_of_range);
}

TEST(Codesign, LargeUnstructuredInputStaysTractable) {
  // Every symbol has a distinct random subscriber set: the pre-coarsening
  // cap must keep this fast and still within budget.
  CodesignInput input;
  constexpr std::size_t kSymbols = 3'000;
  input.symbol_weight.assign(kSymbols, 1.0);
  input.subscriptions.resize(16);
  std::uint64_t state = 123;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (SymbolId s = 0; s < kSymbols; ++s) {
    for (ConsumerId c = 0; c < 16; ++c) {
      if ((next() & 3) == 0) input.subscriptions[c].push_back(s);
    }
  }
  input.group_budget = 64;
  const auto grouping = codesign_grouping(input);
  EXPECT_LE(grouping.group_count, 64u);
  const auto metrics = evaluate_grouping(input, grouping);
  EXPECT_GT(metrics.efficiency(), 0.0);
  EXPECT_LE(metrics.efficiency(), 1.0);
}

}  // namespace
}  // namespace tsn::core
