#include "sim/engine.hpp"
#include "trading/strategy.hpp"

#include <gtest/gtest.h>

#include "exchange/exchange.hpp"
#include "l2/commodity_switch.hpp"
#include "proto/norm.hpp"
#include "trading/gateway.hpp"

namespace tsn::trading {
namespace {

// Mini-rig: a norm-feed injector wired to the strategy's market-data NIC,
// a gateway, and a real exchange behind the gateway.
//
//   injector --> strategy.md
//   strategy.orders <-> gateway.clients
//   gateway.exchange <-> exchange.orders
struct StrategyRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange exch;
  Gateway gateway;
  net::Nic injector{engine, "injector", net::MacAddr::from_host_id(400),
                    net::Ipv4Addr{10, 3, 0, 1}};
  std::uint32_t injector_seq = 1;

  static exchange::ExchangeConfig exchange_config() {
    exchange::ExchangeConfig config;
    config.name = "X";
    config.exchange_id = 1;
    config.symbols = {{proto::Symbol{"ACME"}, proto::InstrumentKind::kEquity,
                       proto::price_from_dollars(100)}};
    config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
    config.feed_mac = net::MacAddr::from_host_id(410);
    config.feed_ip = net::Ipv4Addr{10, 3, 1, 1};
    config.order_mac = net::MacAddr::from_host_id(411);
    config.order_ip = net::Ipv4Addr{10, 3, 1, 2};
    return config;
  }

  static GatewayConfig gateway_config() {
    GatewayConfig config;
    config.name = "gw";
    config.exchange_mac = net::MacAddr::from_host_id(411);
    config.exchange_ip = net::Ipv4Addr{10, 3, 1, 2};
    config.client_mac = net::MacAddr::from_host_id(420);
    config.client_ip = net::Ipv4Addr{10, 3, 2, 1};
    config.upstream_mac = net::MacAddr::from_host_id(421);
    config.upstream_ip = net::Ipv4Addr{10, 3, 2, 2};
    return config;
  }

  static StrategyConfig strategy_config() {
    StrategyConfig config;
    config.name = "strat";
    config.subscriptions = {net::Ipv4Addr{239, 200, 0, 0}};
    config.gateway_mac = net::MacAddr::from_host_id(420);
    config.gateway_ip = net::Ipv4Addr{10, 3, 2, 1};
    config.md_mac = net::MacAddr::from_host_id(430);
    config.md_ip = net::Ipv4Addr{10, 3, 3, 1};
    config.order_mac = net::MacAddr::from_host_id(431);
    config.order_ip = net::Ipv4Addr{10, 3, 3, 2};
    return config;
  }

  explicit StrategyRig(GatewayConfig gw_config = gateway_config())
      : exch(engine, exchange_config()), gateway(engine, std::move(gw_config)) {
    fabric.connect(gateway.upstream_nic(), 0, exch.order_nic(), 0, net::LinkConfig{});
  }

  void wire(Strategy& strategy) {
    fabric.connect(injector, 0, strategy.md_nic(), 0, net::LinkConfig{});
    fabric.connect(strategy.order_nic(), 0, gateway.client_nic(), 0, net::LinkConfig{});
    gateway.start();
    strategy.start();
    engine.run();
  }

  void inject(const proto::norm::Update& update) {
    proto::norm::DatagramBuilder builder{
        0, 1458, [this](std::vector<std::byte> payload, const proto::norm::DatagramHeader&) {
          injector.send_frame(net::build_multicast_frame(injector.mac(), injector.ip(),
                                                         net::Ipv4Addr{239, 200, 0, 0}, 31001,
                                                         payload));
        }};
    builder.append(update, injector_seq++);
    builder.flush();
    engine.run();
  }

  proto::norm::Update trade_print(double price) {
    proto::norm::Update u;
    u.kind = proto::norm::UpdateKind::kTradePrint;
    u.exchange_id = 1;
    u.symbol = proto::Symbol{"ACME"};
    u.price = proto::price_from_dollars(price);
    u.quantity = 100;
    return u;
  }
};

TEST(Strategy, ReceivesSubscribedUpdates) {
  StrategyRig rig;
  MomentumTaker strategy{rig.engine, StrategyRig::strategy_config()};
  rig.wire(strategy);
  rig.inject(rig.trade_print(100.0));
  EXPECT_EQ(strategy.stats().updates_received, 1u);
  EXPECT_EQ(strategy.stats().orders_sent, 0u);  // one print is not momentum
}

TEST(Strategy, MomentumTakerFiresAfterTwoUpticks) {
  StrategyRig rig;
  MomentumTaker strategy{rig.engine, StrategyRig::strategy_config()};
  rig.wire(strategy);
  // Seed liquidity so the exchange can fill the taker.
  rig.exch.book(proto::Symbol{"ACME"})
      .submit({rig.exch.next_order_id(), proto::Side::kSell, proto::price_from_dollars(100.03),
               1'000});
  rig.inject(rig.trade_print(100.00));
  rig.inject(rig.trade_print(100.01));
  rig.inject(rig.trade_print(100.02));  // second uptick: fire
  EXPECT_EQ(strategy.stats().orders_sent, 1u);
  EXPECT_EQ(strategy.stats().acks, 1u);
  EXPECT_EQ(strategy.stats().fills, 1u);  // crossed the resting offer
  EXPECT_EQ(rig.gateway.stats().orders_forwarded, 1u);
  EXPECT_EQ(rig.gateway.stats().responses_routed, 2u);  // ack + fill
}

TEST(Strategy, MomentumTakerFiresDownticksToo) {
  StrategyRig rig;
  MomentumTaker strategy{rig.engine, StrategyRig::strategy_config()};
  rig.wire(strategy);
  rig.inject(rig.trade_print(100.00));
  rig.inject(rig.trade_print(99.99));
  rig.inject(rig.trade_print(99.98));
  EXPECT_EQ(strategy.stats().orders_sent, 1u);
  // Nothing resting to hit: the IOC cancels without a fill.
  EXPECT_EQ(strategy.stats().fills, 0u);
  EXPECT_EQ(strategy.open_orders(), 0u);
}

TEST(Strategy, TickToTradeIsMeasuredAndPlausible) {
  StrategyRig rig;
  auto config = StrategyRig::strategy_config();
  config.decision_latency = sim::micros(std::int64_t{2});
  config.software_latency = sim::nanos(std::int64_t{900});
  MomentumTaker strategy{rig.engine, config};
  rig.wire(strategy);
  for (int i = 0; i < 12; ++i) rig.inject(rig.trade_print(100.00 + 0.01 * i));
  ASSERT_GT(strategy.tick_to_trade().count(), 0u);
  // Tick-to-trade = software hop (0.9 us) + decision (2 us), measured at
  // the NIC boundary.
  EXPECT_NEAR(strategy.tick_to_trade().mean(), 2'900.0, 5.0);
}

TEST(Strategy, MarketMakerQuotesBothSidesAndReprices) {
  StrategyRig rig;
  MarketMaker strategy{rig.engine, StrategyRig::strategy_config(),
                       proto::price_from_dollars(0.05)};
  rig.wire(strategy);
  rig.inject(rig.trade_print(100.00));
  EXPECT_EQ(strategy.stats().orders_sent, 2u);  // bid + ask
  EXPECT_EQ(strategy.stats().acks, 2u);
  const auto& book = rig.exch.book(proto::Symbol{"ACME"});
  const auto best = book.best();
  ASSERT_TRUE(best.bid_price.has_value());
  ASSERT_TRUE(best.ask_price.has_value());
  EXPECT_EQ(*best.bid_price, proto::price_from_dollars(99.95));
  EXPECT_EQ(*best.ask_price, proto::price_from_dollars(100.05));
  // A big move triggers cancel + requote (§2: repricing quickly is critical).
  rig.inject(rig.trade_print(101.00));
  EXPECT_EQ(strategy.stats().orders_sent, 4u);
  EXPECT_EQ(strategy.stats().cancels_sent, 2u);
}

TEST(Strategy, SmallMovesDoNotChurnQuotes) {
  StrategyRig rig;
  MarketMaker strategy{rig.engine, StrategyRig::strategy_config(),
                       proto::price_from_dollars(0.10)};
  rig.wire(strategy);
  rig.inject(rig.trade_print(100.00));
  rig.inject(rig.trade_print(100.01));  // within half-spread/2
  EXPECT_EQ(strategy.stats().orders_sent, 2u);
  EXPECT_EQ(strategy.stats().cancels_sent, 0u);
}

TEST(Strategy, CompliantMarketMakerNeverLocksAwayMarkets) {
  StrategyRig rig;
  CompliantMarketMaker strategy{rig.engine, StrategyRig::strategy_config(),
                                proto::price_from_dollars(0.05)};
  rig.wire(strategy);
  // Venue 2 displays a tight market around $100.01/$100.03.
  auto bbo = [&](std::uint8_t venue, proto::Side side, double price) {
    auto u = rig.trade_print(price);
    u.kind = proto::norm::UpdateKind::kBboUpdate;
    u.exchange_id = venue;
    u.side = side;
    rig.inject(u);
  };
  bbo(2, proto::Side::kBuy, 100.01);
  bbo(2, proto::Side::kSell, 100.03);
  // A naive $100.05-anchored quote would bid 100.00 (fine) and offer
  // 100.10 (fine); anchor at 100.07 pushes the naive bid to 100.02 — at
  // the away... push further: anchor at 100.10 makes the naive bid 100.05,
  // through venue 2's 100.03 offer. The compliant maker clamps it.
  rig.inject(rig.trade_print(100.10));
  EXPECT_GT(strategy.stats().orders_sent, 0u);
  EXPECT_GT(strategy.quotes_clamped(), 0u);
  // The book at the (single) exchange holds the clamped bid: 100.02, one
  // tick inside venue 2's 100.03 offer.
  const auto best = rig.exch.book(proto::Symbol{"ACME"}).best();
  ASSERT_TRUE(best.bid_price.has_value());
  EXPECT_EQ(*best.bid_price, proto::price_from_dollars(100.02));
  EXPECT_FALSE(strategy.monitor().is_crossed(proto::Symbol{"ACME"}));
}

TEST(Strategy, GatewayRiskGateRejectsOversizedOrders) {
  // Gateway with a per-order cap below the taker's 100-share clip: every
  // order dies at the gateway with a risk reject; nothing reaches the
  // exchange.
  auto gw_config = StrategyRig::gateway_config();
  gw_config.risk_limits.max_order_quantity = 50;
  StrategyRig rig{gw_config};
  MomentumTaker strategy{rig.engine, StrategyRig::strategy_config()};
  rig.wire(strategy);
  for (int i = 0; i < 3; ++i) rig.inject(rig.trade_print(100.00 + 0.01 * i));
  EXPECT_EQ(strategy.stats().orders_sent, 1u);
  EXPECT_EQ(strategy.stats().rejects, 1u);
  EXPECT_EQ(rig.gateway.stats().orders_rejected_risk, 1u);
  EXPECT_EQ(rig.gateway.stats().orders_forwarded, 0u);
  EXPECT_EQ(rig.exch.stats().orders_received, 0u);
}

TEST(Strategy, GatewayTracksFirmPositionThroughFills) {
  StrategyRig rig;
  MomentumTaker strategy{rig.engine, StrategyRig::strategy_config()};
  rig.wire(strategy);
  rig.exch.book(proto::Symbol{"ACME"})
      .submit({rig.exch.next_order_id(), proto::Side::kSell, proto::price_from_dollars(100.03),
               1'000});
  for (int i = 0; i < 3; ++i) rig.inject(rig.trade_print(100.00 + 0.01 * i));
  ASSERT_EQ(strategy.stats().fills, 1u);
  // The gateway's firm-wide position reflects the buy (§4.2).
  EXPECT_EQ(rig.gateway.risk().position(proto::Symbol{"ACME"}), 100);
  EXPECT_EQ(rig.gateway.risk().firm_gross_position(), 100);
  EXPECT_EQ(rig.gateway.risk().open_orders(), 0u);
}

TEST(Strategy, CrossVenueArbDetectsDislocation) {
  StrategyRig rig;
  CrossVenueArb strategy{rig.engine, StrategyRig::strategy_config(), 1, 2,
                         proto::price_from_dollars(0.04)};
  rig.wire(strategy);
  auto venue_print = [&](std::uint8_t venue, double price) {
    auto u = rig.trade_print(price);
    u.exchange_id = venue;
    rig.inject(u);
  };
  venue_print(1, 100.00);
  venue_print(2, 100.01);  // within threshold: no trade
  EXPECT_EQ(strategy.opportunities(), 0u);
  venue_print(2, 100.10);  // venue 2 rich vs venue 1: arb
  EXPECT_EQ(strategy.opportunities(), 1u);
  EXPECT_EQ(strategy.stats().orders_sent, 2u);  // buy one venue, sell the other
}

TEST(Strategy, GatewayTranslatesIdsBothWays) {
  StrategyRig rig;
  MomentumTaker strategy{rig.engine, StrategyRig::strategy_config()};
  rig.wire(strategy);
  rig.exch.book(proto::Symbol{"ACME"})
      .submit({rig.exch.next_order_id(), proto::Side::kSell, proto::price_from_dollars(100.03),
               50});
  for (int i = 0; i < 3; ++i) rig.inject(rig.trade_print(100.00 + 0.01 * i));
  // The strategy's client order ids start at 1; the exchange saw the
  // gateway's translated ids, yet the ack reached the strategy. If the id
  // mapping were broken, acks would be orphaned at the gateway.
  EXPECT_EQ(strategy.stats().acks, 1u);
  EXPECT_EQ(rig.gateway.stats().orphan_responses, 0u);
  EXPECT_TRUE(rig.gateway.upstream_ready());
}

TEST(Strategy, MultipleStrategiesShareOneGatewayThroughASwitch) {
  // Two strategies reach one gateway across a small L3 switch (a gateway
  // serves many strategy servers, §2).
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange exch{engine, StrategyRig::exchange_config()};
  Gateway gateway{engine, StrategyRig::gateway_config()};
  fabric.connect(gateway.upstream_nic(), 0, exch.order_nic(), 0, net::LinkConfig{});

  auto config_a = StrategyRig::strategy_config();
  auto config_b = StrategyRig::strategy_config();
  config_b.name = "strat-b";
  config_b.md_mac = net::MacAddr::from_host_id(440);
  config_b.md_ip = net::Ipv4Addr{10, 3, 4, 1};
  config_b.order_mac = net::MacAddr::from_host_id(441);
  config_b.order_ip = net::Ipv4Addr{10, 3, 4, 2};
  MomentumTaker a{engine, config_a};
  MomentumTaker b{engine, config_b};

  l2::CommoditySwitch sw{engine, "order-sw", l2::CommoditySwitchConfig{}};
  fabric.connect(sw, 0, a.order_nic(), 0, net::LinkConfig{});
  fabric.connect(sw, 1, b.order_nic(), 0, net::LinkConfig{});
  fabric.connect(sw, 2, gateway.client_nic(), 0, net::LinkConfig{});
  sw.bind_host(a.order_nic().ip(), a.order_nic().mac(), 0);
  sw.bind_host(b.order_nic().ip(), b.order_nic().mac(), 1);
  sw.bind_host(gateway.client_nic().ip(), gateway.client_nic().mac(), 2);

  gateway.start();
  a.start();
  b.start();
  engine.run();
  EXPECT_EQ(gateway.stats().sessions_accepted, 2u);
}

}  // namespace
}  // namespace tsn::trading
