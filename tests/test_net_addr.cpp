#include "net/addr.hpp"

#include <gtest/gtest.h>

namespace tsn::net {
namespace {

TEST(MacAddr, RoundTripsThroughString) {
  const MacAddr mac{{0x02, 0x00, 0xab, 0xcd, 0xef, 0x01}};
  EXPECT_EQ(mac.to_string(), "02:00:ab:cd:ef:01");
  const auto parsed = MacAddr::parse("02:00:ab:cd:ef:01");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddr, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddr::parse("").has_value());
  EXPECT_FALSE(MacAddr::parse("02:00:ab:cd:ef").has_value());
  EXPECT_FALSE(MacAddr::parse("02:00:ab:cd:ef:zz").has_value());
  EXPECT_FALSE(MacAddr::parse("02-00-ab-cd-ef-01").has_value());
  EXPECT_FALSE(MacAddr::parse("02:00:ab:cd:ef:01:23").has_value());
}

TEST(MacAddr, MulticastAndBroadcastBits) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_TRUE((MacAddr{{0x01, 0x00, 0x5e, 0, 0, 1}}).is_multicast());
  EXPECT_FALSE((MacAddr{{0x02, 0, 0, 0, 0, 1}}).is_multicast());
  EXPECT_FALSE((MacAddr{{0x02, 0, 0, 0, 0, 1}}).is_broadcast());
}

TEST(MacAddr, FromHostIdIsUnicastAndUnique) {
  const MacAddr a = MacAddr::from_host_id(1);
  const MacAddr b = MacAddr::from_host_id(2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_multicast());
  EXPECT_EQ(MacAddr::from_host_id(1), a);
}

TEST(Ipv4Addr, RoundTripsThroughString) {
  const Ipv4Addr addr{10, 1, 2, 3};
  EXPECT_EQ(addr.to_string(), "10.1.2.3");
  const auto parsed = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.256").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10..2.3").has_value());
}

TEST(Ipv4Addr, MulticastRange) {
  EXPECT_TRUE((Ipv4Addr{224, 0, 0, 1}).is_multicast());
  EXPECT_TRUE((Ipv4Addr{239, 255, 255, 255}).is_multicast());
  EXPECT_FALSE((Ipv4Addr{223, 255, 255, 255}).is_multicast());
  EXPECT_FALSE((Ipv4Addr{240, 0, 0, 0}).is_multicast());
  EXPECT_FALSE((Ipv4Addr{10, 0, 0, 1}).is_multicast());
}

TEST(Ipv4Addr, MulticastMacMapping) {
  // RFC 1112: low 23 bits under 01:00:5e.
  const MacAddr mac = multicast_mac(Ipv4Addr{239, 1, 2, 3});
  EXPECT_EQ(mac.to_string(), "01:00:5e:01:02:03");
  EXPECT_TRUE(mac.is_multicast());
  // The top 9 bits of the group are discarded: 239.129.2.3 maps the same
  // as 239.1.2.3 (the classic ambiguity).
  EXPECT_EQ(multicast_mac(Ipv4Addr{239, 129, 2, 3}), mac);
}

TEST(Ipv4Addr, OrderingIsNumeric) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(10, 0, 0, 255), Ipv4Addr(10, 0, 1, 0));
}

}  // namespace
}  // namespace tsn::net
