#include "sim/engine.hpp"
#include "exchange/exchange.hpp"

#include <gtest/gtest.h>

#include "exchange/activity.hpp"
#include "net/fabric.hpp"
#include "net/stack.hpp"
#include "proto/pitch.hpp"

namespace tsn::exchange {
namespace {

ExchangeConfig base_config() {
  ExchangeConfig config;
  config.name = "TESTX";
  config.exchange_id = 1;
  config.symbols = {
      {proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity, proto::price_from_dollars(100)},
      {proto::Symbol{"BBB"}, proto::InstrumentKind::kEquity, proto::price_from_dollars(50)},
      {proto::Symbol{"ZZZ"}, proto::InstrumentKind::kEquity, proto::price_from_dollars(10)},
  };
  config.feed_partitioning = std::make_shared<proto::AlphabetPartition>(2);
  config.feed_mac = net::MacAddr::from_host_id(100);
  config.feed_ip = net::Ipv4Addr{10, 0, 0, 100};
  config.order_mac = net::MacAddr::from_host_id(101);
  config.order_ip = net::Ipv4Addr{10, 0, 0, 101};
  return config;
}

// Exchange with a promiscuous feed listener and a raw TCP order client
// wired directly to its NICs.
struct ExchangeRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  Exchange exchange;
  net::Nic feed_listener{engine, "feedtap", net::MacAddr::from_host_id(200),
                         net::Ipv4Addr{10, 0, 0, 200}};
  net::Nic client_nic{engine, "client", net::MacAddr::from_host_id(201),
                      net::Ipv4Addr{10, 0, 0, 201}};
  net::NetStack client;
  std::vector<proto::pitch::ParsedFrame> frames;
  std::vector<net::Ipv4Addr> frame_groups;

  explicit ExchangeRig(ExchangeConfig config = base_config())
      : exchange(engine, std::move(config)), client(client_nic) {
    feed_listener.set_promiscuous(true);
    fabric.connect(exchange.feed_nic(), 0, feed_listener, 0, net::LinkConfig{});
    fabric.connect(exchange.order_nic(), 0, client_nic, 0, net::LinkConfig{});
    feed_listener.set_rx_handler([this](const net::PacketPtr& packet, sim::Time) {
      const auto decoded = net::decode_frame(packet->frame());
      if (!decoded || !decoded->is_udp()) return;
      auto parsed = proto::pitch::parse_frame(decoded->payload);
      if (parsed) {
        frames.push_back(std::move(*parsed));
        frame_groups.push_back(decoded->ip->dst);
      }
    });
  }

  std::size_t total_messages() const {
    std::size_t n = 0;
    for (const auto& f : frames) n += f.messages.size();
    return n;
  }
};

TEST(Exchange, RequiresPartitioning) {
  sim::Engine engine;
  ExchangeConfig config = base_config();
  config.feed_partitioning = nullptr;
  EXPECT_THROW(Exchange(engine, std::move(config)), std::invalid_argument);
}

TEST(Exchange, BookChangesArePublishedAsPitch) {
  ExchangeRig rig;
  auto& book = rig.exchange.book(proto::Symbol{"AAA"});
  book.submit({rig.exchange.next_order_id(), proto::Side::kBuy,
               proto::price_from_dollars(99.0), 100});
  rig.engine.run();
  ASSERT_EQ(rig.frames.size(), 1u);
  // First message of the first frame of the day is the Time tick, then the
  // add order.
  ASSERT_EQ(rig.frames[0].messages.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<proto::pitch::Time>(rig.frames[0].messages[0]));
  const auto* add = std::get_if<proto::pitch::AddOrder>(&rig.frames[0].messages[1]);
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->symbol.view(), "AAA");
  EXPECT_EQ(add->quantity, 100u);
}

TEST(Exchange, SameInstantEventsPackIntoOneDatagram) {
  ExchangeRig rig;
  auto& book = rig.exchange.book(proto::Symbol{"AAA"});
  for (int i = 0; i < 5; ++i) {
    book.submit({rig.exchange.next_order_id(), proto::Side::kBuy,
                 proto::price_from_dollars(99.0) - i, 100});
  }
  rig.engine.run();
  // All five adds happened at t=0: one datagram, six messages (time + 5).
  ASSERT_EQ(rig.frames.size(), 1u);
  EXPECT_EQ(rig.frames[0].messages.size(), 6u);
}

TEST(Exchange, PartitioningRoutesSymbolsToUnits) {
  ExchangeRig rig;
  EXPECT_EQ(rig.exchange.unit_count(), 2u);
  EXPECT_EQ(rig.exchange.unit_of(proto::Symbol{"AAA"}), 0u);
  EXPECT_EQ(rig.exchange.unit_of(proto::Symbol{"ZZZ"}), 1u);
  rig.exchange.book(proto::Symbol{"AAA"})
      .submit({rig.exchange.next_order_id(), proto::Side::kBuy, 100, 10});
  rig.exchange.book(proto::Symbol{"ZZZ"})
      .submit({rig.exchange.next_order_id(), proto::Side::kBuy, 100, 10});
  rig.engine.run();
  ASSERT_EQ(rig.frame_groups.size(), 2u);
  EXPECT_EQ(rig.frame_groups[0], rig.exchange.unit_group(0));
  EXPECT_EQ(rig.frame_groups[1], rig.exchange.unit_group(1));
  EXPECT_NE(rig.frame_groups[0], rig.frame_groups[1]);
}

TEST(Exchange, UnknownSymbolThrows) {
  ExchangeRig rig;
  EXPECT_THROW((void)rig.exchange.book(proto::Symbol{"NOPE"}), std::out_of_range);
  EXPECT_FALSE(rig.exchange.lists(proto::Symbol{"NOPE"}));
  EXPECT_TRUE(rig.exchange.lists(proto::Symbol{"AAA"}));
}

// Full order-entry session walkthrough over real TCP.
struct SessionRig : ExchangeRig {
  net::TcpEndpoint* session = nullptr;
  proto::boe::StreamParser parser;
  std::vector<proto::boe::Message> responses;
  std::uint32_t seq = 1;

  SessionRig() {
    session = &client.connect_tcp(exchange.order_nic().mac(), exchange.order_nic().ip(),
                                  exchange.config().order_port, 0);
    session->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
      parser.feed(bytes);
      while (auto decoded = parser.next()) responses.push_back(decoded->message);
    });
  }

  void send(const proto::boe::Message& message) {
    session->send(proto::boe::encode(message, seq++));
    engine.run();
  }

  template <typename T>
  const T* last_response_of() const {
    for (auto it = responses.rbegin(); it != responses.rend(); ++it) {
      if (const T* typed = std::get_if<T>(&*it)) return typed;
    }
    return nullptr;
  }
};

TEST(ExchangeSession, LoginAcceptedThenOrderAck) {
  SessionRig rig;
  rig.send(proto::boe::LoginRequest{1, 0xfeed});
  ASSERT_NE(rig.last_response_of<proto::boe::LoginAccepted>(), nullptr);
  rig.send(proto::boe::NewOrder{10, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(99), proto::boe::TimeInForce::kDay});
  const auto* ack = rig.last_response_of<proto::boe::OrderAccepted>();
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->client_order_id, 10u);
  EXPECT_EQ(rig.exchange.stats().orders_accepted, 1u);
  // The resting order also hit the market data feed.
  EXPECT_GE(rig.total_messages(), 2u);
}

TEST(ExchangeSession, OrderBeforeLoginRejected) {
  SessionRig rig;
  rig.send(proto::boe::NewOrder{10, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(99), proto::boe::TimeInForce::kDay});
  const auto* reject = rig.last_response_of<proto::boe::OrderRejected>();
  ASSERT_NE(reject, nullptr);
  EXPECT_EQ(reject->reason, proto::boe::RejectReason::kNotLoggedIn);
}

TEST(ExchangeSession, ValidationRejects) {
  SessionRig rig;
  rig.send(proto::boe::LoginRequest{1, 0xfeed});
  rig.send(proto::boe::NewOrder{1, proto::Side::kBuy, 100, proto::Symbol{"NOPE"}, 100,
                                proto::boe::TimeInForce::kDay});
  EXPECT_EQ(rig.last_response_of<proto::boe::OrderRejected>()->reason,
            proto::boe::RejectReason::kInvalidSymbol);
  rig.send(proto::boe::NewOrder{2, proto::Side::kBuy, 0, proto::Symbol{"AAA"}, 100,
                                proto::boe::TimeInForce::kDay});
  EXPECT_EQ(rig.last_response_of<proto::boe::OrderRejected>()->reason,
            proto::boe::RejectReason::kInvalidQuantity);
  rig.send(proto::boe::NewOrder{3, proto::Side::kBuy, 100, proto::Symbol{"AAA"}, -5,
                                proto::boe::TimeInForce::kDay});
  EXPECT_EQ(rig.last_response_of<proto::boe::OrderRejected>()->reason,
            proto::boe::RejectReason::kInvalidPrice);
  rig.send(proto::boe::NewOrder{4, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(99), proto::boe::TimeInForce::kDay});
  rig.send(proto::boe::NewOrder{4, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(98), proto::boe::TimeInForce::kDay});
  EXPECT_EQ(rig.last_response_of<proto::boe::OrderRejected>()->reason,
            proto::boe::RejectReason::kDuplicateOrderId);
}

TEST(ExchangeSession, TradeGeneratesFillsForBothSides) {
  SessionRig rig;
  rig.send(proto::boe::LoginRequest{1, 0xfeed});
  rig.send(proto::boe::NewOrder{20, proto::Side::kSell, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(100), proto::boe::TimeInForce::kDay});
  rig.send(proto::boe::NewOrder{21, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(100), proto::boe::TimeInForce::kDay});
  // Both legs belong to this session: two fills.
  int fills = 0;
  for (const auto& r : rig.responses) {
    if (std::holds_alternative<proto::boe::Fill>(r)) ++fills;
  }
  EXPECT_EQ(fills, 2);
  EXPECT_EQ(rig.exchange.stats().fills_sent, 2u);
  const auto* fill = rig.last_response_of<proto::boe::Fill>();
  EXPECT_EQ(fill->price, proto::price_from_dollars(100));
  EXPECT_EQ(fill->leaves_quantity, 0u);
}

TEST(ExchangeSession, CancelWorksWhileResting) {
  SessionRig rig;
  rig.send(proto::boe::LoginRequest{1, 0xfeed});
  rig.send(proto::boe::NewOrder{30, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(90), proto::boe::TimeInForce::kDay});
  rig.send(proto::boe::CancelOrder{30});
  const auto* cancelled = rig.last_response_of<proto::boe::OrderCancelled>();
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->cancelled_quantity, 100u);
}

TEST(ExchangeSession, CancelFillRaceYieldsTooLate) {
  // §2: "if a firm's request to cancel an order is sent at the same time
  // as a notification that the order has been filled."
  SessionRig rig;
  rig.send(proto::boe::LoginRequest{1, 0xfeed});
  rig.send(proto::boe::NewOrder{40, proto::Side::kSell, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(100), proto::boe::TimeInForce::kDay});
  // Another participant (the book directly) lifts the offer before the
  // cancel reaches the matching engine.
  rig.exchange.book(proto::Symbol{"AAA"})
      .submit({rig.exchange.next_order_id(), proto::Side::kBuy,
               proto::price_from_dollars(100), 100});
  rig.send(proto::boe::CancelOrder{40});
  const auto* reject = rig.last_response_of<proto::boe::CancelRejected>();
  ASSERT_NE(reject, nullptr);
  EXPECT_EQ(reject->reason, proto::boe::RejectReason::kTooLateToCancel);
  EXPECT_EQ(rig.exchange.stats().cancel_rejects, 1u);
  // The fill still arrived.
  ASSERT_NE(rig.last_response_of<proto::boe::Fill>(), nullptr);
}

TEST(ExchangeSession, IocRemainderCancelled) {
  SessionRig rig;
  rig.send(proto::boe::LoginRequest{1, 0xfeed});
  rig.send(proto::boe::NewOrder{50, proto::Side::kSell, 40, proto::Symbol{"AAA"},
                                proto::price_from_dollars(100), proto::boe::TimeInForce::kDay});
  rig.send(proto::boe::NewOrder{51, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(100),
                                proto::boe::TimeInForce::kImmediateOrCancel});
  const auto* cancelled = rig.last_response_of<proto::boe::OrderCancelled>();
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->client_order_id, 51u);
  EXPECT_EQ(cancelled->cancelled_quantity, 60u);
}

TEST(ExchangeSession, ModifyRepricesOrder) {
  SessionRig rig;
  rig.send(proto::boe::LoginRequest{1, 0xfeed});
  rig.send(proto::boe::NewOrder{60, proto::Side::kBuy, 100, proto::Symbol{"AAA"},
                                proto::price_from_dollars(90), proto::boe::TimeInForce::kDay});
  rig.send(proto::boe::ModifyOrder{60, 150, proto::price_from_dollars(91)});
  const auto* modified = rig.last_response_of<proto::boe::OrderModified>();
  ASSERT_NE(modified, nullptr);
  EXPECT_EQ(modified->quantity, 150u);
  EXPECT_EQ(rig.exchange.book(proto::Symbol{"AAA"}).depth_at(proto::Side::kBuy,
                                                             proto::price_from_dollars(91)),
            150u);
}

TEST(ActivityDriver, GeneratesDecodableFeedTraffic) {
  ExchangeRig rig;
  ActivityConfig config;
  config.events_per_second = 20'000;
  MarketActivityDriver driver{rig.exchange, config, 7};
  driver.run_until(sim::Time::zero() + sim::millis(std::int64_t{100}));
  rig.engine.run();
  EXPECT_GT(driver.stats().adds, 100u);
  EXPECT_GT(rig.total_messages(), 500u);
  EXPECT_GT(rig.exchange.stats().feed_datagrams, 100u);
  // Books never cross.
  for (const auto& spec : rig.exchange.symbols()) {
    const auto best = rig.exchange.book(spec.symbol).best();
    if (best.bid_price && best.ask_price) {
      EXPECT_LT(*best.bid_price, *best.ask_price);
    }
  }
}

TEST(ActivityDriver, RateModulationChangesVolume) {
  ExchangeRig low_rig;
  ExchangeRig high_rig;
  ActivityConfig low;
  low.events_per_second = 2'000;
  ActivityConfig high;
  high.events_per_second = 2'000;
  high.rate_multiplier = [](sim::Time) { return 10.0; };
  MarketActivityDriver low_driver{low_rig.exchange, low, 7};
  MarketActivityDriver high_driver{high_rig.exchange, high, 7};
  low_driver.run_until(sim::Time::zero() + sim::millis(std::int64_t{100}));
  high_driver.run_until(sim::Time::zero() + sim::millis(std::int64_t{100}));
  low_rig.engine.run();
  high_rig.engine.run();
  const auto low_total = low_driver.stats().adds + low_driver.stats().cancels +
                         low_driver.stats().replaces + low_driver.stats().crosses;
  const auto high_total = high_driver.stats().adds + high_driver.stats().cancels +
                          high_driver.stats().replaces + high_driver.stats().crosses;
  EXPECT_GT(high_total, low_total * 5);
}

}  // namespace
}  // namespace tsn::exchange
