#include "trading/filter.hpp"

#include <gtest/gtest.h>

namespace tsn::trading {
namespace {

FilterWorkload paper_workload() {
  // §3: bursts demand ~100 ns/event; full processing ~500 ns; a discard is
  // a header inspection, ~40 ns.
  FilterWorkload w;
  w.event_rate = 1'000'000.0;
  w.keep_fraction = 0.1;
  w.discard_cost = sim::nanos(std::int64_t{40});
  w.process_cost = sim::nanos(std::int64_t{500});
  return w;
}

TEST(FilterPlacement, InProcessUtilizationIsDiscardPlusProcess) {
  const auto analysis = analyze_placement(paper_workload(), FilterPlacement::kInProcess);
  // 100k * 500ns + 900k * 40ns = 0.05 + 0.036 = 0.086.
  EXPECT_NEAR(analysis.strategy_utilization, 0.086, 1e-6);
  EXPECT_EQ(analysis.filter_utilization, 0.0);
  EXPECT_EQ(analysis.cores_per_consumer, 1.0);
  EXPECT_TRUE(analysis.feasible);
}

TEST(FilterPlacement, DedicatedCoreShieldsTheStrategy) {
  const auto analysis = analyze_placement(paper_workload(), FilterPlacement::kDedicatedCore);
  EXPECT_NEAR(analysis.strategy_utilization, 0.05, 1e-6);  // only kept events
  EXPECT_NEAR(analysis.filter_utilization, 0.04, 1e-6);    // touches everything
  EXPECT_EQ(analysis.cores_per_consumer, 2.0);
}

TEST(FilterPlacement, MiddleboxAmortizesAcrossConsumers) {
  // §3: "when several systems employ the same partitioning scheme,
  // middleboxes can be more efficient in terms of the number of cores."
  const auto solo = analyze_placement(paper_workload(), FilterPlacement::kMiddlebox, 1);
  const auto shared = analyze_placement(paper_workload(), FilterPlacement::kMiddlebox, 20);
  EXPECT_EQ(solo.cores_per_consumer, 2.0);
  EXPECT_NEAR(shared.cores_per_consumer, 1.05, 1e-9);
  const auto dedicated = analyze_placement(paper_workload(), FilterPlacement::kDedicatedCore);
  EXPECT_LT(shared.cores_per_consumer, dedicated.cores_per_consumer);
}

TEST(FilterPlacement, InProcessBecomesInfeasibleAtBurstRates) {
  // At the paper's 10M events/s burst rate (100 ns/event budget), even
  // pure discarding at 40 ns leaves no room: in-process filtering fails
  // once the keep-fraction grows.
  FilterWorkload burst = paper_workload();
  burst.event_rate = 10'000'000.0;
  burst.keep_fraction = 0.2;
  const auto in_process = analyze_placement(burst, FilterPlacement::kInProcess);
  EXPECT_FALSE(in_process.feasible);
  // Moving the filter out restores feasibility for the strategy core.
  const auto middlebox = analyze_placement(burst, FilterPlacement::kMiddlebox, 10);
  EXPECT_LE(middlebox.strategy_utilization, 1.0);
}

TEST(FilterPlacement, FeasibilityBoundaryMatchesClosedForm) {
  const auto w = paper_workload();
  // rate * (k*process + (1-k)*discard) = 1  =>  k = (1/rate - d)/(p - d).
  const double k =
      in_process_feasibility_boundary(10'000'000.0, w.discard_cost, w.process_cost);
  const double budget = 1.0 / 10'000'000.0;  // 100 ns
  const double expected = (budget - 40e-9) / (500e-9 - 40e-9);
  EXPECT_NEAR(k, expected, 1e-9);
  // Verify the boundary is actually the boundary.
  FilterWorkload edge = w;
  edge.event_rate = 10'000'000.0;
  edge.keep_fraction = k * 0.99;
  EXPECT_TRUE(analyze_placement(edge, FilterPlacement::kInProcess).feasible);
  edge.keep_fraction = k * 1.01;
  EXPECT_FALSE(analyze_placement(edge, FilterPlacement::kInProcess).feasible);
}

TEST(FilterPlacement, BoundaryClampsToUnitRange) {
  EXPECT_EQ(in_process_feasibility_boundary(1'000.0, sim::nanos(std::int64_t{40}),
                                            sim::nanos(std::int64_t{500})),
            1.0);
  EXPECT_EQ(in_process_feasibility_boundary(100'000'000.0, sim::nanos(std::int64_t{40}),
                                            sim::nanos(std::int64_t{500})),
            0.0);
}

TEST(SymbolFilter, KeepsOnlyWatchedSymbols) {
  SymbolFilter filter;
  filter.watch(proto::Symbol{"AAA"});
  filter.watch(proto::Symbol{"BBB"});
  EXPECT_EQ(filter.watch_count(), 2u);
  proto::norm::Update update;
  update.symbol = proto::Symbol{"AAA"};
  EXPECT_TRUE(filter.relevant(update));
  update.symbol = proto::Symbol{"CCC"};
  EXPECT_FALSE(filter.relevant(update));
}

}  // namespace
}  // namespace tsn::trading
