#include "wan/metro.hpp"

#include <gtest/gtest.h>

namespace tsn::wan {
namespace {

TEST(Wan, GeodesicsAreSymmetricAndTensOfMiles) {
  // §2: the three colos are tens of miles apart.
  for (Colo a : {Colo::kMahwah, Colo::kSecaucus, Colo::kCarteret}) {
    for (Colo b : {Colo::kMahwah, Colo::kSecaucus, Colo::kCarteret}) {
      EXPECT_EQ(geodesic_meters(a, b), geodesic_meters(b, a));
      if (a != b) {
        EXPECT_GT(geodesic_meters(a, b), 10'000.0);
        EXPECT_LT(geodesic_meters(a, b), 100'000.0);
      } else {
        EXPECT_EQ(geodesic_meters(a, b), 0.0);
      }
    }
  }
}

TEST(Wan, MicrowaveBeatsFiberOnEveryPair) {
  // §2: microwave reduces latency relative to fiber on every metro path.
  for (Colo a : {Colo::kMahwah, Colo::kSecaucus, Colo::kCarteret}) {
    for (Colo b : {Colo::kMahwah, Colo::kSecaucus, Colo::kCarteret}) {
      if (a == b) continue;
      const auto fiber = propagation_delay(a, b, LinkTech::kFiber);
      const auto microwave = propagation_delay(a, b, LinkTech::kMicrowave);
      EXPECT_LT(microwave, fiber);
      // The advantage comes from both straighter paths and faster medium:
      // roughly 25-40% lower latency.
      const double ratio = microwave.nanos() / fiber.nanos();
      EXPECT_GT(ratio, 0.4);
      EXPECT_LT(ratio, 0.75);
      EXPECT_EQ(microwave_advantage(a, b), fiber - microwave);
    }
  }
}

TEST(Wan, DelaysAreInThePhysicallyPlausibleRange) {
  // Mahwah-Carteret (~35 mi): fiber one-way should be in the hundreds of
  // microseconds, microwave below it.
  const auto fiber = propagation_delay(Colo::kMahwah, Colo::kCarteret, LinkTech::kFiber);
  EXPECT_GT(fiber, sim::micros(std::int64_t{200}));
  EXPECT_LT(fiber, sim::micros(std::int64_t{600}));
  const auto mw = propagation_delay(Colo::kMahwah, Colo::kCarteret, LinkTech::kMicrowave);
  EXPECT_GT(mw, sim::micros(std::int64_t{150}));
  EXPECT_LT(mw, fiber);
}

TEST(Wan, MicrowaveHasLessBandwidthAndRainLoss) {
  // §2: microwave is used despite being less reliable and lower bandwidth.
  const auto fiber = params_for(LinkTech::kFiber);
  const auto microwave = params_for(LinkTech::kMicrowave);
  EXPECT_GT(fiber.rate_bps, microwave.rate_bps * 10);
  EXPECT_EQ(fiber.weather_loss, 0.0);
  EXPECT_GT(microwave.weather_loss, 0.0);
}

TEST(Wan, LinkConfigRainOnlyAffectsMicrowave) {
  const auto fiber_rain = wan_link_config(Colo::kMahwah, Colo::kSecaucus, LinkTech::kFiber, true);
  EXPECT_EQ(fiber_rain.loss_probability, 0.0);
  const auto mw_dry =
      wan_link_config(Colo::kMahwah, Colo::kSecaucus, LinkTech::kMicrowave, false);
  EXPECT_EQ(mw_dry.loss_probability, 0.0);
  const auto mw_rain =
      wan_link_config(Colo::kMahwah, Colo::kSecaucus, LinkTech::kMicrowave, true);
  EXPECT_GT(mw_rain.loss_probability, 0.0);
  EXPECT_EQ(mw_rain.propagation,
            propagation_delay(Colo::kMahwah, Colo::kSecaucus, LinkTech::kMicrowave));
}

TEST(Wan, ColoNames) {
  EXPECT_EQ(to_string(Colo::kMahwah), "Mahwah");
  EXPECT_EQ(to_string(Colo::kSecaucus), "Secaucus");
  EXPECT_EQ(to_string(Colo::kCarteret), "Carteret");
}

}  // namespace
}  // namespace tsn::wan
