// Zero-allocation assertions for the simulator's hot paths.
//
// This file replaces the global allocation functions with counting variants,
// which changes behaviour for the whole process — so it builds into its own
// test executable (`tsn_hotpath_alloc_tests`) rather than joining tsn_tests.
//
// The contract under test (DESIGN.md "Hot-path memory model"): once pools
// and scratch buffers are warm, (a) an Engine schedule → fire (or cancel)
// cycle, (b) a PacketFactory make → drop cycle for small frames, and (c) a
// full NIC → link → NIC UDP delivery perform zero heap allocations.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "book/order_book.hpp"
#include "exchange/session_store.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/packet.hpp"
#include "net/stack.hpp"
#include "proto/pitch.hpp"
#include "sim/engine.hpp"

namespace {

std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  ++g_allocation_count;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocation_count;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocation_count;
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace tsn {
namespace {

std::uint64_t allocations() { return g_allocation_count.load(std::memory_order_relaxed); }

TEST(HotPathAlloc, EngineScheduleFireCancelCycleIsAllocationFree) {
  sim::Engine engine;
  std::uint64_t fired = 0;
  // Warm-up: grow the event pool and the heap vector to steady-state size,
  // including the cancel path.
  for (int i = 0; i < 1'024; ++i) {
    engine.schedule_in(sim::nanos(std::int64_t{100} + i), [&fired] { ++fired; });
  }
  for (int i = 0; i < 64; ++i) {
    engine.cancel(engine.schedule_in(sim::micros(std::int64_t{5}), [] {}));
  }
  engine.run();

  const std::uint64_t before = allocations();
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 1'024; ++i) {
      engine.schedule_in(sim::nanos(std::int64_t{100} + i), [&fired] { ++fired; });
    }
    for (int i = 0; i < 64; ++i) {
      engine.cancel(engine.schedule_in(sim::micros(std::int64_t{5}), [] {}));
    }
    engine.run();
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "steady-state schedule -> fire/cancel cycles must not touch the heap";
  EXPECT_EQ(fired, 9u * 1'024u);
}

TEST(HotPathAlloc, PacketMakeDropCycleIsAllocationFree) {
  net::PacketFactory factory;
  std::array<std::byte, 26> frame{};  // Table 1 new-order message
  frame.fill(std::byte{0x5a});
  // Warm-up: first make allocates the pooled block and sizes the freelist.
  { auto p = factory.make(std::span<const std::byte>{frame}, sim::Time{}); }

  const std::uint64_t before = allocations();
  for (int i = 0; i < 4'096; ++i) {
    auto p = factory.make(std::span<const std::byte>{frame}, sim::Time{});
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "small-frame make -> drop cycles must recycle pooled blocks";
  EXPECT_GE(factory.pool_blocks_reused(), 4'096u);
}

TEST(HotPathAlloc, EndToEndUdpDeliveryIsAllocationFree) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  net::Nic a{engine, "a", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic b{engine, "b", net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 2}};
  fabric.connect(a, 0, b, 0, net::LinkConfig{});
  // A software hop on the receiver exercises the deferred-rx capture — the
  // largest InlineAction payload on any hot path.
  b.set_rx_delay(sim::nanos(std::int64_t{500}));
  net::NetStack stack_a{a};
  net::NetStack stack_b{b};
  std::uint64_t received_bytes = 0;
  stack_b.bind_udp(7'000, [&received_bytes](const net::Ipv4Header&, const net::UdpHeader&,
                                            std::span<const std::byte> payload, sim::Time) {
    received_bytes += payload.size();
  });
  // 18 B payload -> 64 B frame (Ethernet + IPv4 + UDP + FCS): the inline
  // boundary exactly, so the pooled Packet carries it with no heap payload.
  std::array<std::byte, 18> payload{};
  payload.fill(std::byte{0x42});
  auto send_batch = [&](int count) {
    for (int i = 0; i < count; ++i) {
      stack_a.send_udp(b.mac(), b.ip(), 6'000, 7'000, std::span<const std::byte>{payload});
      engine.run();
    }
  };
  send_batch(64);  // warm: pools, tx scratch, engine heap, link path
  ASSERT_EQ(received_bytes, 64u * 18u);

  const std::uint64_t before = allocations();
  send_batch(64);
  EXPECT_EQ(allocations() - before, 0u)
      << "warm NIC -> link -> NIC UDP delivery must not touch the heap";
  EXPECT_EQ(received_bytes, 128u * 18u);
}

TEST(HotPathAlloc, WarmBookUpdateMixIsAllocationFree) {
  // The SoA book contract: with reserved slabs (or after organic growth),
  // submit/cancel/reduce/replace — including matching — never allocate.
  // CacheAlignedAllocator goes through aligned operator new, so slab growth
  // IS counted here; reserve() must front-load all of it.
  book::OrderBook book{proto::Symbol{"ACME"}};
  book.reserve(4'096, 256);
  proto::OrderId id = 1;
  auto churn = [&book, &id](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      const auto side = (id & 1) != 0 ? proto::Side::kBuy : proto::Side::kSell;
      const auto price = (side == proto::Side::kBuy ? 9'000 : 14'200) +
                         static_cast<proto::Price>(i % 50) * 100;
      book.submit({id, side, price, 100});
      (void)book.reduce(id, 60);
      // Marketable IOC consumes one resting order on the opposite side.
      const auto best = book.best();
      if (side == proto::Side::kBuy && best.ask_price) {
        (void)book.submit({id + 1'000'000, proto::Side::kBuy, *best.ask_price, 60}, true);
      }
      if (id > 64) (void)book.cancel(id - 64);
      ++id;
    }
  };
  churn(512);  // warm: index growth, level ladder, freelists
  const std::uint64_t before = allocations();
  churn(2'048);
  EXPECT_EQ(allocations() - before, 0u)
      << "warm SoA book updates must not touch the heap";
  EXPECT_GT(book.executions(), 0u);
}

TEST(HotPathAlloc, WarmSessionStoreCycleIsAllocationFree) {
  // The pooled session store's contract (DESIGN.md "Session scale-out"):
  // with reserve() front-loading the slabs, indexes and journal arena, the
  // per-session lifecycle — login, bind, order register/close with dedupe,
  // journal stage + group flush, replay, flap (unbind/bind) and even
  // destroy + re-login (slot reuse, generation bump) — is allocation-free.
  exchange::SessionStore store{exchange::SessionStoreConfig{.shards = 16}};
  store.reserve(1'024, 8'192, std::size_t{1} << 20);

  constexpr std::uint32_t kPop = 256;
  constexpr std::uint32_t kBase = 7'000'000;
  std::uint64_t next_client = 1;
  std::uint64_t next_exch = 1;
  std::uint32_t next_conn = 1;
  std::vector<std::uint32_t> tx(kPop, 0);
  std::vector<proto::OrderId> scratch;
  std::array<std::byte, 24> payload{};
  payload.fill(std::byte{0x5a});
  std::uint64_t replayed = 0;

  const auto token_of = [](std::uint32_t s) { return 0xfeedULL + s; };
  for (std::uint32_t s = 0; s < kPop; ++s) {
    const auto result = store.login(kBase + s, token_of(s));
    store.bind(result.slot, next_conn++);
  }

  auto churn = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      for (std::uint32_t s = 0; s < kPop; ++s) {
        const std::uint32_t slot = store.lookup(kBase + s);
        // Register one fresh order (plus a duplicate probe) and retire it.
        const proto::OrderId client_id = next_client++;
        ASSERT_EQ(store.register_order(slot, client_id, next_exch++, 0),
                  exchange::OrderVerdict::kAccepted);
        ASSERT_EQ(store.register_order(slot, client_id, next_exch, 0),
                  exchange::OrderVerdict::kDuplicateClientId);
        store.collect_open_client_ids(slot, scratch);
        store.close_order(store.find_open(slot, client_id));
        // Stage a sequenced send; every eighth session group-flushes.
        store.journal_stage(slot, ++tx[s], payload);
        if (s % 8 == 7) store.journal_flush();
        // Flap: drop the connection, come back, replay the tail.
        if (s % 16 == static_cast<std::uint32_t>(round) % 16) {
          store.unbind(slot);
          store.bind(slot, next_conn++);
          store.replay(slot, tx[s] > 2 ? tx[s] - 2 : 0,
                       [&replayed](std::uint32_t, std::span<const std::byte>) {
                         ++replayed;
                       });
        }
      }
      store.journal_flush();
      // A couple of full teardowns: destroy bumps the generation and the
      // re-login must reuse the slot and directory entry without growing.
      for (std::uint32_t k = 0; k < 2; ++k) {
        const std::uint32_t s = (static_cast<std::uint32_t>(round) * 2 + k) % kPop;
        store.destroy(store.lookup(kBase + s));
        tx[s] = 0;
        const auto back = store.login(kBase + s, token_of(s));
        ASSERT_EQ(back.verdict, exchange::LoginVerdict::kNew);
        store.bind(back.slot, next_conn++);
      }
    }
  };
  churn(4);  // warm: freelists, staging ring, scratch capacities

  const std::uint64_t before = allocations();
  churn(8);
  EXPECT_EQ(allocations() - before, 0u)
      << "warm session login/order/journal/replay/destroy cycles must not touch the heap";
  EXPECT_GT(replayed, 0u);
  EXPECT_EQ(store.session_count(), kPop);
}

TEST(HotPathAlloc, WarmBatchDecodeIsAllocationFree) {
  // decode_batch into a reused DecodedBatch: columns keep their capacity, so
  // a warm decode of the same-shaped datagram is pure loads and stores.
  std::vector<std::byte> payload;
  proto::pitch::FrameBuilder builder{1, 1458,
                                     [&payload](std::vector<std::byte> p,
                                                const proto::pitch::UnitHeader&) {
                                       payload = std::move(p);
                                     }};
  proto::pitch::AddOrder add;
  add.symbol = proto::Symbol{"ACME"};
  add.quantity = 100;
  add.price = 60'000;
  for (int i = 0; i < 30; ++i) {
    add.order_id = static_cast<proto::OrderId>(i + 1);
    builder.append(proto::pitch::Message{add});
  }
  proto::pitch::DeleteOrder del;
  for (int i = 0; i < 20; ++i) {
    del.order_id = static_cast<proto::OrderId>(i + 1);
    builder.append(proto::pitch::Message{del});
  }
  builder.flush();
  proto::pitch::DecodedBatch batch;
  ASSERT_TRUE(proto::pitch::decode_batch(payload, batch));  // warm: column growth
  ASSERT_EQ(batch.count, 50u);

  const std::uint64_t before = allocations();
  for (int i = 0; i < 4'096; ++i) {
    ASSERT_TRUE(proto::pitch::decode_batch(payload, batch));
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "warm batch decode must reuse the SoA columns without heap traffic";
  EXPECT_EQ(batch.count, 50u);
}

}  // namespace
}  // namespace tsn
