#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "sim/time.hpp"

namespace tsn::net {
namespace {

std::vector<std::byte> pattern_frame(std::size_t size) {
  std::vector<std::byte> frame(size);
  for (std::size_t i = 0; i < size; ++i) frame[i] = static_cast<std::byte>(i & 0xff);
  return frame;
}

TEST(Packet, SmallFramesAreStoredInline) {
  PacketFactory factory;
  const auto bytes = pattern_frame(26);  // Table 1 new-order message
  const auto packet = factory.make(std::span<const std::byte>{bytes}, sim::Time{5});
  EXPECT_TRUE(packet->inline_stored());
  EXPECT_EQ(packet->size_bytes(), 26u);
  ASSERT_EQ(packet->frame().size(), 26u);
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), packet->frame().begin()));
}

TEST(Packet, LargeFramesFallBackToHeapStorage) {
  PacketFactory factory;
  const auto bytes = pattern_frame(1'458);  // PITCH unit batch MTU frame
  const auto packet = factory.make(std::span<const std::byte>{bytes}, sim::Time{5});
  EXPECT_FALSE(packet->inline_stored());
  EXPECT_EQ(packet->size_bytes(), 1'458u);
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), packet->frame().begin()));
}

TEST(Packet, InlineBoundaryIsExactlyInlineCapacity) {
  PacketFactory factory;
  const auto at = factory.make(std::span<const std::byte>{pattern_frame(Packet::kInlineCapacity)},
                               sim::Time{});
  const auto over = factory.make(
      std::span<const std::byte>{pattern_frame(Packet::kInlineCapacity + 1)}, sim::Time{});
  EXPECT_TRUE(at->inline_stored());
  EXPECT_FALSE(over->inline_stored());
}

TEST(Packet, VectorConstructorStillWorksForBothSizes) {
  PacketFactory factory;
  const auto small = factory.make(pattern_frame(14), sim::Time{1});  // cancel message
  const auto large = factory.make(pattern_frame(512), sim::Time{1});
  EXPECT_TRUE(small->inline_stored());
  EXPECT_FALSE(large->inline_stored());
  EXPECT_EQ(small->size_bytes(), 14u);
  EXPECT_EQ(large->size_bytes(), 512u);
}

TEST(Packet, WireBytesAddsPreambleSfdAndIpg) {
  PacketFactory factory;
  const auto packet = factory.make(pattern_frame(64), sim::Time{});
  EXPECT_EQ(kPreambleSfdBytes, 8u);
  EXPECT_EQ(kInterPacketGapBytes, 12u);
  EXPECT_EQ(packet->wire_bytes(), 64u + kPreambleSfdBytes + kInterPacketGapBytes);
}

TEST(PacketFactory, IdsAreUniqueAndMonotonic) {
  PacketFactory factory;
  const auto a = factory.make(pattern_frame(8), sim::Time{});
  const auto b = factory.make(pattern_frame(8), sim::Time{});
  EXPECT_LT(a->id(), b->id());
}

TEST(PacketFactory, RecyclesBlocksOnceReleased) {
  PacketFactory factory;
  const auto frame = pattern_frame(26);
  {
    auto p = factory.make(std::span<const std::byte>{frame}, sim::Time{});
    EXPECT_EQ(factory.pool_blocks_reused(), 0u);
  }
  const auto allocated = factory.pool_blocks_allocated();
  for (int i = 0; i < 100; ++i) {
    auto p = factory.make(std::span<const std::byte>{frame}, sim::Time{});
  }
  EXPECT_EQ(factory.pool_blocks_allocated(), allocated) << "make/drop cycles must reuse blocks";
  EXPECT_GE(factory.pool_blocks_reused(), 100u);
}

TEST(PacketFactory, RecycledFrameIsNotVisibleThroughHeldPointer) {
  // The aliasing contract: a still-held PacketPtr pins its block, so frame
  // recycling can never rewrite bytes under a live reader — even after the
  // factory has churned through many pooled packets.
  PacketFactory factory;
  const auto original = pattern_frame(26);
  PacketPtr held = factory.make(std::span<const std::byte>{original}, sim::Time{9});
  for (int i = 0; i < 1'000; ++i) {
    auto churn = factory.make(std::span<const std::byte>{pattern_frame(26)}, sim::Time{10});
  }
  ASSERT_EQ(held->frame().size(), original.size());
  EXPECT_TRUE(std::equal(original.begin(), original.end(), held->frame().begin()));
  EXPECT_EQ(held->created(), sim::Time{9});
}

TEST(PacketFactory, HeldPointerKeepsPoolAliveAfterFactoryDies) {
  PacketPtr survivor;
  {
    PacketFactory factory;
    survivor = factory.make(pattern_frame(26), sim::Time{3});
  }
  // The pooled block's allocator copy keeps the pool alive; releasing the
  // last reference after the factory is gone must be safe.
  EXPECT_EQ(survivor->size_bytes(), 26u);
  survivor.reset();
}

TEST(PacketFactory, RemakePreservesIdentity) {
  PacketFactory factory;
  const auto frame = pattern_frame(40);
  auto rewritten = pattern_frame(40);
  rewritten[0] = std::byte{0xaa};
  const auto out =
      factory.remake(std::span<const std::byte>{rewritten}, sim::Time{7}, 1234, 99);
  EXPECT_EQ(out->id(), 1234u);
  EXPECT_EQ(out->trace(), 99u);
  EXPECT_EQ(out->created(), sim::Time{7});
  EXPECT_EQ(out->frame()[0], std::byte{0xaa});
}

TEST(PacketFactory, ReservePrewarmsFreelist) {
  PacketFactory factory;
  factory.reserve(64);
  const auto allocated = factory.pool_blocks_allocated();
  EXPECT_GE(allocated, 64u);
  std::vector<PacketPtr> live;
  for (int i = 0; i < 64; ++i) live.push_back(factory.make(pattern_frame(8), sim::Time{}));
  EXPECT_EQ(factory.pool_blocks_allocated(), allocated);
}

}  // namespace
}  // namespace tsn::net
