#include "proto/boe.hpp"

#include <gtest/gtest.h>

namespace tsn::proto::boe {
namespace {

TEST(Boe, RoundTripEveryMessageType) {
  const std::vector<Message> originals = {
      Message{LoginRequest{7, 0xfeed}},
      Message{LoginAccepted{}},
      Message{LoginRejected{RejectReason::kNotLoggedIn}},
      Message{Heartbeat{}},
      Message{Logout{}},
      Message{ReplayRequest{42}},
      Message{SequenceReset{7}},
      Message{NewOrder{101, Side::kBuy, 500, Symbol{"ACME"}, price_from_dollars(99.5),
                       TimeInForce::kImmediateOrCancel}},
      Message{CancelOrder{101}},
      Message{ModifyOrder{101, 600, price_from_dollars(99.6)}},
      Message{OrderAccepted{101, 555, 123'456'789}},
      Message{OrderRejected{101, RejectReason::kInvalidSymbol}},
      Message{OrderCancelled{101, 500}},
      Message{OrderModified{101, 600, price_from_dollars(99.6)}},
      Message{CancelRejected{101, RejectReason::kTooLateToCancel}},
      Message{Fill{101, 9'001, 200, price_from_dollars(99.5), 300}},
  };
  std::uint32_t seq = 1;
  for (const auto& original : originals) {
    const auto bytes = encode(original, seq);
    EXPECT_EQ(bytes.size(), encoded_size(original));
    const auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.has_value()) << static_cast<int>(type_of(original));
    EXPECT_EQ(decoded->message.index(), original.index());
    EXPECT_EQ(decoded->seq, seq);
    EXPECT_EQ(decoded->consumed, bytes.size());
    ++seq;
  }
}

TEST(Boe, NewOrderFieldsSurvive) {
  const NewOrder original{77, Side::kSell, 1'000, Symbol{"WIDGET"}, price_from_dollars(12.34),
                          TimeInForce::kDay};
  const auto decoded = decode(encode(Message{original}, 5));
  ASSERT_TRUE(decoded.has_value());
  const auto* order = std::get_if<NewOrder>(&decoded->message);
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(order->client_order_id, 77u);
  EXPECT_EQ(order->side, Side::kSell);
  EXPECT_EQ(order->quantity, 1'000u);
  EXPECT_EQ(order->symbol.view(), "WIDGET");
  EXPECT_EQ(order->price, price_from_dollars(12.34));
  EXPECT_EQ(order->tif, TimeInForce::kDay);
}

TEST(Boe, OrderMessagesAreCompact) {
  // Order-entry payloads are tens of bytes (§5): far below one MTU.
  EXPECT_LE(encoded_size(Message{NewOrder{}}), 40u);
  EXPECT_LE(encoded_size(Message{CancelOrder{}}), 20u);
  EXPECT_EQ(encoded_size(Message{Heartbeat{}}), kHeaderSize);
}

TEST(Boe, CompleteLengthHandlesPartialHeaders) {
  const auto bytes = encode(Message{Heartbeat{}}, 1);
  EXPECT_EQ(complete_length(bytes), bytes.size());
  EXPECT_EQ(complete_length(std::span{bytes}.subspan(0, 3)), 0u);
  std::vector<std::byte> bad = bytes;
  bad[0] = std::byte{0x00};  // wrong magic
  EXPECT_EQ(complete_length(bad), 0u);
}

TEST(Boe, DecodeReturnsNulloptOnIncomplete) {
  const auto bytes = encode(Message{NewOrder{}}, 1);
  EXPECT_FALSE(decode(std::span{bytes}.subspan(0, bytes.size() - 1)).has_value());
}

TEST(Boe, DecodeRejectsUnknownType) {
  auto bytes = encode(Message{Heartbeat{}}, 1);
  bytes[4] = std::byte{0xee};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Boe, StreamParserReassemblesAcrossChunks) {
  StreamParser parser;
  const auto m1 = encode(Message{NewOrder{1, Side::kBuy, 100, Symbol{"A"}, 100, {}}}, 1);
  const auto m2 = encode(Message{CancelOrder{1}}, 2);
  std::vector<std::byte> stream = m1;
  stream.insert(stream.end(), m2.begin(), m2.end());
  // Feed in awkward 5-byte chunks.
  std::size_t decoded = 0;
  for (std::size_t offset = 0; offset < stream.size(); offset += 5) {
    const std::size_t len = std::min<std::size_t>(5, stream.size() - offset);
    parser.feed(std::span{stream}.subspan(offset, len));
    while (auto msg = parser.next()) ++decoded;
  }
  EXPECT_EQ(decoded, 2u);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_FALSE(parser.broken());
}

TEST(Boe, StreamParserHandlesManyMessages) {
  StreamParser parser;
  std::vector<std::byte> stream;
  constexpr int kCount = 1'000;
  for (int i = 0; i < kCount; ++i) {
    const auto m = encode(Message{CancelOrder{static_cast<OrderId>(i)}},
                          static_cast<std::uint32_t>(i));
    stream.insert(stream.end(), m.begin(), m.end());
  }
  parser.feed(stream);
  int decoded = 0;
  while (auto msg = parser.next()) {
    const auto* cancel = std::get_if<CancelOrder>(&msg->message);
    ASSERT_NE(cancel, nullptr);
    EXPECT_EQ(cancel->client_order_id, static_cast<OrderId>(decoded));
    ++decoded;
  }
  EXPECT_EQ(decoded, kCount);
}

TEST(Boe, StreamParserMarksTornStreamBroken) {
  StreamParser parser;
  std::vector<std::byte> garbage(20, std::byte{0x77});
  parser.feed(garbage);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.broken());
}

TEST(Boe, RaceSemantics_CancelAfterFillGetsRejectReason) {
  // Protocol-level support for the §2 race: the reason code exists and
  // round-trips; the exchange tests exercise the actual race.
  const auto decoded =
      decode(encode(Message{CancelRejected{55, RejectReason::kTooLateToCancel}}, 9));
  ASSERT_TRUE(decoded.has_value());
  const auto* reject = std::get_if<CancelRejected>(&decoded->message);
  ASSERT_NE(reject, nullptr);
  EXPECT_EQ(reject->reason, RejectReason::kTooLateToCancel);
}

}  // namespace
}  // namespace tsn::proto::boe
