#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include "mcast/subscribe.hpp"
#include "net/stack.hpp"
#include "topo/cloud.hpp"
#include "topo/leaf_spine.hpp"
#include "topo/quad_l1s.hpp"

namespace tsn::topo {
namespace {

std::unique_ptr<net::Nic> make_nic(sim::Engine& engine, std::uint32_t id, net::Ipv4Addr ip) {
  return std::make_unique<net::Nic>(engine, "h" + std::to_string(id),
                                    net::MacAddr::from_host_id(id), ip);
}

TEST(LeafSpine, ValidatesConfig) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  LeafSpineConfig bad;
  bad.spine_count = 0;
  EXPECT_THROW(LeafSpineFabric(fabric, bad), std::invalid_argument);
  LeafSpineConfig tight;
  tight.spine_count = 4;
  tight.ports_per_leaf = 4;
  EXPECT_THROW(LeafSpineFabric(fabric, tight), std::invalid_argument);
}

TEST(LeafSpine, HostIpAddressingIsDeterministic) {
  EXPECT_EQ(LeafSpineFabric::host_ip(3, 0), (net::Ipv4Addr{10, 3, 0, 1}));
  EXPECT_EQ(LeafSpineFabric::host_ip(3, 249), (net::Ipv4Addr{10, 3, 0, 250}));
  EXPECT_EQ(LeafSpineFabric::host_ip(3, 250), (net::Ipv4Addr{10, 3, 1, 1}));
  EXPECT_THROW((void)LeafSpineFabric::host_ip(256, 0), std::out_of_range);
}

struct LeafSpineRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  LeafSpineFabric topo;
  std::vector<std::unique_ptr<net::Nic>> nics;

  explicit LeafSpineRig(std::size_t spines = 2, std::size_t leaves = 4)
      : topo(fabric, [&] {
          LeafSpineConfig config;
          config.spine_count = spines;
          config.leaf_count = leaves;
          config.ports_per_leaf = 8;
          return config;
        }()) {}

  net::Nic& add_host(std::size_t rack, std::size_t index) {
    const auto id = static_cast<std::uint32_t>(rack * 100 + index + 1);
    nics.push_back(make_nic(engine, id, LeafSpineFabric::host_ip(rack, index)));
    topo.attach_host(rack, *nics.back());
    return *nics.back();
  }
};

TEST(LeafSpine, UnicastCrossesThreeSwitches) {
  LeafSpineRig rig;
  auto& a = rig.add_host(0, 0);
  auto& b = rig.add_host(2, 0);
  sim::Time arrival;
  b.set_rx_handler([&](const net::PacketPtr&, sim::Time at) { arrival = at; });
  a.send_frame(net::build_udp_frame(a.mac(), net::MacAddr::from_host_id(0xff), a.ip(), b.ip(),
                                    1, 2, std::vector<std::byte>(64, std::byte{1})));
  rig.engine.run();
  ASSERT_GT(arrival, sim::Time::zero());
  // Three switch pipelines at 500 ns each dominate: total in [1.5, 3] us.
  EXPECT_GE(arrival - sim::Time::zero(), sim::nanos(std::int64_t{1'500}));
  EXPECT_LE(arrival - sim::Time::zero(), sim::micros(std::int64_t{3}));
  EXPECT_EQ(LeafSpineFabric::switch_hops(0, 2), 3u);
  EXPECT_EQ(LeafSpineFabric::switch_hops(1, 1), 1u);
}

TEST(LeafSpine, IntraRackStaysLocal) {
  LeafSpineRig rig;
  auto& a = rig.add_host(1, 0);
  auto& b = rig.add_host(1, 1);
  sim::Time arrival;
  b.set_rx_handler([&](const net::PacketPtr&, sim::Time at) { arrival = at; });
  a.send_frame(net::build_udp_frame(a.mac(), net::MacAddr::from_host_id(0xff), a.ip(), b.ip(),
                                    1, 2, {}));
  rig.engine.run();
  ASSERT_GT(arrival, sim::Time::zero());
  EXPECT_LT(arrival - sim::Time::zero(), sim::micros(std::int64_t{1}));
  // Spines never saw the frame.
  for (std::size_t s = 0; s < rig.topo.spine_count(); ++s) {
    EXPECT_EQ(rig.topo.spine(s).stats().unicast_forwarded, 0u);
  }
}

TEST(LeafSpine, MulticastReachesOnlyJoinedRacks) {
  LeafSpineRig rig;
  auto& source = rig.add_host(0, 0);  // the exchange ToR rack
  auto& member = rig.add_host(1, 0);
  auto& outsider = rig.add_host(2, 0);
  const net::Ipv4Addr group{239, 77, 0, 1};
  int member_got = 0;
  int outsider_got = 0;
  member.set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++member_got; });
  outsider.set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++outsider_got; });
  mcast::join_group(member, group);
  rig.engine.run();
  source.send_frame(net::build_multicast_frame(source.mac(), source.ip(), group, 30001, {}));
  rig.engine.run();
  EXPECT_EQ(member_got, 1);
  EXPECT_EQ(outsider_got, 0);
  // The join was snooped at the member's leaf and relayed to the
  // rendezvous spine.
  EXPECT_EQ(rig.topo.leaf(1).mroutes().group_count(), 1u);
  EXPECT_EQ(rig.topo.spine(0).mroutes().group_count(), 1u);
}

TEST(LeafSpine, MulticastNoLoopsUnderFanout) {
  LeafSpineRig rig;
  auto& source = rig.add_host(0, 0);
  const net::Ipv4Addr group{239, 77, 0, 2};
  std::vector<net::Nic*> members;
  int total = 0;
  for (std::size_t rack = 1; rack < 4; ++rack) {
    for (std::size_t i = 0; i < 2; ++i) {
      auto& nic = rig.add_host(rack, i);
      nic.set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++total; });
      mcast::join_group(nic, group);
      members.push_back(&nic);
    }
  }
  rig.engine.run();
  source.send_frame(net::build_multicast_frame(source.mac(), source.ip(), group, 30001, {}));
  const auto events = rig.engine.run();
  EXPECT_EQ(total, 6);          // exactly one copy per member
  EXPECT_LT(events, 1'000u);    // and no multicast storm
}

TEST(LeafSpine, RackCapacityEnforced) {
  LeafSpineRig rig;
  for (std::size_t i = 0; i < 6; ++i) rig.add_host(0, i);  // 8 ports - 2 uplinks
  EXPECT_THROW(rig.add_host(0, 6), std::length_error);
  EXPECT_THROW(rig.add_host(9, 0), std::out_of_range);
}

TEST(QuadL1s, StagesAreIndependentSwitches) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  QuadL1Fabric quad{fabric, QuadL1Config{}};
  EXPECT_NE(&quad.stage_switch(Stage::kFeeds), &quad.stage_switch(Stage::kNormDist));
  EXPECT_EQ(quad.stage_switch(Stage::kFeeds).name(), "l1s-feeds");
  EXPECT_EQ(quad.stage_switch(Stage::kToExchange).name(), "l1s-toexch");
}

TEST(QuadL1s, AttachAndPatchDeliver) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  QuadL1Fabric quad{fabric, QuadL1Config{}};
  auto exchange = make_nic(engine, 1, net::Ipv4Addr{10, 0, 0, 1});
  auto norm_a = make_nic(engine, 2, net::Ipv4Addr{10, 0, 0, 2});
  auto norm_b = make_nic(engine, 3, net::Ipv4Addr{10, 0, 0, 3});
  norm_a->set_promiscuous(true);
  norm_b->set_promiscuous(true);
  const auto p_exch = quad.attach(Stage::kFeeds, *exchange);
  const auto p_a = quad.attach(Stage::kFeeds, *norm_a);
  const auto p_b = quad.attach(Stage::kFeeds, *norm_b);
  quad.patch(Stage::kFeeds, p_exch, p_a);
  quad.patch(Stage::kFeeds, p_exch, p_b);
  int got = 0;
  norm_a->set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got; });
  norm_b->set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got; });
  exchange->send_frame(net::build_multicast_frame(exchange->mac(), exchange->ip(),
                                                  net::Ipv4Addr{239, 1, 1, 1}, 30001, {}));
  engine.run();
  EXPECT_EQ(got, 2);
}

TEST(QuadL1s, PortExhaustionThrows) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  QuadL1Config config;
  config.ports_per_switch = 2;
  QuadL1Fabric quad{fabric, config};
  auto n1 = make_nic(engine, 1, net::Ipv4Addr{10, 0, 0, 1});
  auto n2 = make_nic(engine, 2, net::Ipv4Addr{10, 0, 0, 2});
  auto n3 = make_nic(engine, 3, net::Ipv4Addr{10, 0, 0, 3});
  (void)quad.attach(Stage::kFeeds, *n1);
  (void)quad.attach(Stage::kFeeds, *n2);
  EXPECT_THROW((void)quad.attach(Stage::kFeeds, *n3), std::length_error);
  // Other stages unaffected.
  EXPECT_EQ(quad.attach(Stage::kNormDist, *n3), 0u);
}

TEST(Cloud, TenantsAreLatencyEqualized) {
  // §4.2: the provider equalizes latency across tenants regardless of
  // physical placement.
  sim::Engine engine;
  net::Fabric fabric{engine};
  CloudRegion cloud{fabric, CloudConfig{}};
  auto near = make_nic(engine, 1, net::Ipv4Addr{10, 0, 0, 1});
  auto far = make_nic(engine, 2, net::Ipv4Addr{10, 0, 0, 2});
  const auto p1 = cloud.attach_tenant(*near, sim::micros(std::int64_t{5}));
  const auto p2 = cloud.attach_tenant(*far, sim::micros(std::int64_t{90}));
  EXPECT_EQ(cloud.attachment_latency(p1), cloud.attachment_latency(p2));
  EXPECT_EQ(cloud.attachment_latency(p1), cloud.config().equalized_latency);
}

TEST(Cloud, CannotEqualizeBelowPhysicalLatency) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  CloudRegion cloud{fabric, CloudConfig{}};
  auto too_far = make_nic(engine, 1, net::Ipv4Addr{10, 0, 0, 1});
  EXPECT_THROW((void)cloud.attach_tenant(*too_far, sim::millis(std::int64_t{5})),
               std::invalid_argument);
}

TEST(Cloud, EqualizedDeliveryEndToEnd) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  CloudRegion cloud{fabric, CloudConfig{}};
  auto a = make_nic(engine, 1, net::Ipv4Addr{10, 0, 0, 1});
  auto b = make_nic(engine, 2, net::Ipv4Addr{10, 0, 0, 2});
  (void)cloud.attach_tenant(*a, sim::micros(std::int64_t{1}));
  (void)cloud.attach_tenant(*b, sim::micros(std::int64_t{80}));
  sim::Time arrival;
  b->set_rx_handler([&](const net::PacketPtr&, sim::Time at) { arrival = at; });
  a->send_frame(net::build_udp_frame(a->mac(), net::MacAddr::from_host_id(9), a->ip(), b->ip(),
                                     1, 2, {}));
  engine.run();
  // Two equalized traversals of 100 us each dominate.
  EXPECT_GT(arrival - sim::Time::zero(), sim::micros(std::int64_t{200}));
  EXPECT_LT(arrival - sim::Time::zero(), sim::micros(std::int64_t{210}));
}

TEST(Cloud, ExternalTrafficCrossesTheWan) {
  // §4.2: "latency for communication beyond the cloud will be excessive."
  sim::Engine engine;
  net::Fabric fabric{engine};
  CloudRegion cloud{fabric, CloudConfig{}};
  auto tenant = make_nic(engine, 1, net::Ipv4Addr{10, 0, 0, 1});
  auto colo = make_nic(engine, 2, net::Ipv4Addr{172, 16, 0, 1});
  (void)cloud.attach_tenant(*tenant, sim::micros(std::int64_t{1}));
  const auto wan_port = cloud.attach_external(*colo);
  EXPECT_EQ(cloud.attachment_latency(wan_port), cloud.config().external_wan_latency);
  sim::Time arrival;
  colo->set_rx_handler([&](const net::PacketPtr&, sim::Time at) { arrival = at; });
  tenant->send_frame(net::build_udp_frame(tenant->mac(), net::MacAddr::from_host_id(9),
                                          tenant->ip(), colo->ip(), 1, 2, {}));
  engine.run();
  EXPECT_GT(arrival - sim::Time::zero(), sim::millis(std::int64_t{2}));
}

}  // namespace
}  // namespace tsn::topo
