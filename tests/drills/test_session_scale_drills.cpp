// Session-scale drills: 100k concurrent order-entry sessions driven by the
// storm load generator, with a 10k-session reconnect storm in one sim tick.
//
// Gates:
//   * recovery — every storm victim re-logs in, replays the journal tail it
//     missed, re-rests its cancel-on-disconnect'ed orders, and the whole
//     cohort is ready again within the recovery ceiling (sim time);
//   * parity — after the churn quiesces, a scripted counter-flow sweeps ALL
//     resting depth; per-session positions and open-order counts in the
//     storm rig equal a never-disconnected control rig (no order lost, none
//     duplicated by resubmission);
//   * determinism — two storm runs with the same seed produce byte-identical
//     telemetry JSON and equal load-generator fingerprints.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exchange/exchange.hpp"
#include "exchange/loadgen.hpp"
#include "fault/injector.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::drills {
namespace {

constexpr std::uint32_t kSessions = 100'000;
constexpr std::uint32_t kStormKill = 10'000;
constexpr std::uint32_t kTargetOpen = 2;
constexpr proto::Quantity kQuantity = 100;
// Same ceiling bench_session_scale enforces: a 10k-session storm must be
// fully recovered (login + replay + re-rest, all acked) within this.
constexpr std::int64_t kRecoveryCeilingMs = 10;

exchange::ExchangeConfig rig_exchange_config() {
  exchange::ExchangeConfig config;
  config.name = "SCALE";
  config.symbols = {{proto::Symbol{"AAPL"}}, {proto::Symbol{"MSFT"}},
                    {proto::Symbol{"NVDA"}}, {proto::Symbol{"AMZN"}}};
  config.feed_partitioning = std::make_shared<proto::AlphabetPartition>(2);
  config.cancel_on_disconnect = true;
  config.heartbeat_interval = sim::millis(std::int64_t{5});
  config.session_timeout = sim::millis(std::int64_t{50});
  config.session_shards = 128;
  config.sharded_liveness_sweep = true;
  config.expected_sessions = kSessions + kSessions / 8;
  config.expected_open_orders = static_cast<std::size_t>(kSessions) * 8;
  config.expected_journal_bytes = std::size_t{96} << 20;
  return config;
}

exchange::LoadGenConfig rig_loadgen_config() {
  exchange::LoadGenConfig config;
  config.sessions = kSessions;
  config.seed = 7;
  config.logins_per_tick = 5'000;
  config.target_open_orders = kTargetOpen;
  config.burst_size = 2;
  config.quantity = kQuantity;
  return config;
}

struct RigResult {
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  std::vector<std::int64_t> positions;     // per session, after the sweep
  std::vector<std::uint32_t> open_counts;  // per session, before the sweep
  std::uint64_t cod_sessions = 0;
  std::uint64_t resting_before_sweep = 0;
  std::uint64_t resting_after_sweep = 0;
  sim::Duration recovery;
  std::uint32_t storm_dropped = 0;
  exchange::LoadGenStats stats;
};

RigResult run_rig(bool storm) {
  sim::Engine engine;
  exchange::Exchange ex{engine, rig_exchange_config()};
  exchange::LoadGen gen{engine, ex, rig_loadgen_config()};
  ex.start_heartbeats();
  gen.start();

  const auto at = [&](std::int64_t ms) { return sim::Time() + sim::millis(ms); };
  // The storm rides the fault injector — a scheduled correlated-reconnect
  // fault, same as a scripted switch reboot — so the drill also covers the
  // kSessionStorm fault path end to end.
  fault::FaultInjector injector{engine};
  injector.register_storm("loadgen",
                          [&gen](std::uint32_t count) { return gen.storm(count); });
  if (storm) injector.storm_at("loadgen", at(8), kStormKill);

  engine.run_until(at(5));
  EXPECT_TRUE(gen.all_admitted()) << "admission ramp incomplete at 5ms";

  RigResult result;
  engine.run_until(at(8));
  if (storm) {
    EXPECT_EQ(injector.log().size(), 1u);
    if (!injector.log().empty()) {
      EXPECT_EQ(injector.log().front().kind, fault::FaultKind::kSessionStorm);
      result.storm_dropped = static_cast<std::uint32_t>(injector.log().front().value);
    }
    EXPECT_EQ(result.storm_dropped, kStormKill);
    engine.run_until(at(14));
    EXPECT_TRUE(gen.storm_recovered()) << "storm cohort not recovered by 14ms";
    result.recovery = gen.storm_recovery_duration();
  }
  // Churn on: storm victims re-converge onto the steady rotation cadence.
  engine.run_until(at(24));
  gen.stop();
  // Quiesce: in-flight orders, cancels and journal flushes settle.
  engine.run_until(at(27));

  result.open_counts.resize(kSessions);
  for (std::uint32_t s = 0; s < kSessions; ++s) result.open_counts[s] = gen.open_orders(s);
  result.resting_before_sweep = ex.session_store().open_orders_total();

  // Counter-flow: one giant immediate-or-cancel buy per symbol sweeps every
  // resting sell. Per-session fill quantity then equals (open orders x
  // quantity) regardless of price levels — the parity probe.
  const proto::Quantity sweep_qty = kSessions * 8u * kQuantity;
  for (const auto& spec : ex.symbols()) {
    const book::Order order{ex.next_order_id(), proto::Side::kBuy,
                            proto::price_from_dollars(100'000.0), sweep_qty};
    (void)ex.book(spec.symbol).submit(order, /*immediate_or_cancel=*/true);
  }
  engine.run_until(at(29));
  result.resting_after_sweep = ex.session_store().open_orders_total();

  result.positions.resize(kSessions);
  for (std::uint32_t s = 0; s < kSessions; ++s) result.positions[s] = gen.position(s);
  result.fingerprint = gen.fingerprint();
  result.cod_sessions = ex.stats().cod_sessions;
  result.stats = gen.stats();

  telemetry::Registry registry;
  ex.register_metrics(registry, "scale.exchange");
  gen.register_metrics(registry, "scale.loadgen");
  result.metrics_json = registry.to_json(engine.now());
  return result;
}

TEST(SessionScaleDrills, StormRecoveryParityAndDeterminism) {
  const RigResult control = run_rig(/*storm=*/false);
  const RigResult storm_a = run_rig(/*storm=*/true);
  const RigResult storm_b = run_rig(/*storm=*/true);

  // --- recovery ---------------------------------------------------------
  EXPECT_EQ(storm_a.storm_dropped, kStormKill);
  EXPECT_LT(storm_a.recovery.picos(), sim::millis(kRecoveryCeilingMs).picos())
      << "storm recovery took " << storm_a.recovery.picos() / 1'000'000'000 << "us";
  // Every victim's resting orders were pulled by cancel-on-disconnect (the
  // flapper persona adds its own sweeps on top).
  EXPECT_GE(storm_a.cod_sessions, kStormKill);
  EXPECT_GT(storm_a.stats.cod_cancels_seen, 0u);
  EXPECT_GT(storm_a.stats.cod_resubmitted, 0u);
  EXPECT_GT(storm_a.stats.replays_requested, 0u);
  EXPECT_EQ(control.storm_dropped, 0u);

  // --- parity vs the never-disconnected control -------------------------
  // The sweep consumed every resting order in both rigs...
  EXPECT_EQ(storm_a.resting_after_sweep, 0u);
  EXPECT_EQ(control.resting_after_sweep, 0u);
  // ...so equal per-session positions mean recovery neither lost orders
  // nor let a resubmission double-rest one.
  EXPECT_EQ(storm_a.resting_before_sweep, control.resting_before_sweep);
  ASSERT_EQ(storm_a.positions.size(), control.positions.size());
  std::size_t mismatched = 0;
  for (std::uint32_t s = 0; s < kSessions; ++s) {
    if (storm_a.positions[s] != control.positions[s] ||
        storm_a.open_counts[s] != control.open_counts[s]) {
      ++mismatched;
      EXPECT_EQ(storm_a.positions[s], control.positions[s]) << "session " << s;
      EXPECT_EQ(storm_a.open_counts[s], control.open_counts[s]) << "session " << s;
      if (mismatched > 8) break;  // don't spam thousands of failures
    }
  }
  EXPECT_EQ(mismatched, 0u);

  // --- determinism ------------------------------------------------------
  EXPECT_EQ(storm_a.fingerprint, storm_b.fingerprint);
  EXPECT_EQ(storm_a.metrics_json, storm_b.metrics_json);
  EXPECT_EQ(storm_a.recovery.picos(), storm_b.recovery.picos());
}

}  // namespace
}  // namespace tsn::drills
