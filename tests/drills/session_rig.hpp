// Order-entry session drill rig (§2, §4.2): a strategy trading through a
// gateway into an exchange with cancel-on-disconnect armed, plus a
// multicast feed consumer watching the public consequences. The rig runs a
// fixed scripted timeline of orders and counter-liquidity; drills inject an
// uplink fault mid-burst and assert the session machinery (COD, resume,
// replay, idempotent resubmission) converges to the same economic outcome
// as a never-disconnected control run.
//
// Timeline (all times on the sim clock; fault at 4ms):
//   1.0ms  order 1: sell 100 @ 100.50 (rests)
//   2.0ms  counter buy 100 @ 100.50   (fills order 1; position -100)
//   2.5ms  orders 2, 3: resting sells (200 @ 101, 300 @ 102)
//   3.6ms  order 4: sell 100 @ 103    (acked just before the fault)
//   3.8ms  order 5: sell 100 @ 104
//   4.0ms  FAULT: uplink kill (silent abort) or one-way flap
//   4.2ms  order 6: sell 100 @ 105    (mid-outage)
//   4.4ms  order 7: sell 100 @ 106    (mid-outage)
//  16.0ms  order 8: sell 120 @ 100.45 (after recovery)
//  20.0ms  counter buy 120 @ 100.45   (fills order 8; position -220)
//  40.0ms  end of drill
#pragma once

#include "sim/engine.hpp"
#include <cstdint>
#include <variant>
#include <vector>

#include "exchange/exchange.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "net/stack.hpp"
#include "proto/pitch.hpp"
#include "trading/gateway.hpp"

namespace tsn::drills {

enum class SessionFault {
  kNone,        // control rig: the same script with no fault
  kUplinkKill,  // gateway uplink aborted silently (process death)
  kUplinkFlap,  // gateway->exchange direction down 4ms..10ms (one-way fade)
};

inline exchange::ExchangeConfig session_drill_exchange_config() {
  exchange::ExchangeConfig config;
  config.symbols = {{proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity,
                     proto::price_from_dollars(100)}};
  config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  // Aggressive liveness so the drill fits in tens of milliseconds: sweep
  // ticks land at 1.5ms multiples and a silent session dies at the first
  // tick past 4ms of quiet (the 9.0ms sweep, given last traffic at ~3.8ms).
  config.heartbeat_interval = sim::micros(std::int64_t{1500});
  config.session_timeout = sim::micros(std::int64_t{4000});
  config.cancel_on_disconnect = true;
  config.feed_mac = net::MacAddr::from_host_id(1);
  config.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
  config.order_mac = net::MacAddr::from_host_id(2);
  config.order_ip = net::Ipv4Addr{10, 0, 0, 2};
  return config;
}

inline trading::GatewayConfig session_drill_gateway_config(exchange::Exchange& exch) {
  trading::GatewayConfig config;
  config.exchange_mac = exch.order_nic().mac();
  config.exchange_ip = exch.order_nic().ip();
  config.exchange_port = exch.config().order_port;
  config.client_mac = net::MacAddr::from_host_id(20);
  config.client_ip = net::Ipv4Addr{10, 0, 0, 20};
  config.upstream_mac = net::MacAddr::from_host_id(21);
  config.upstream_ip = net::Ipv4Addr{10, 0, 0, 21};
  config.heartbeat_interval = sim::micros(std::int64_t{1500});
  // First reconnect lands at ~12ms (8ms +/- 10% jitter after the 4ms
  // fault) — deliberately AFTER the exchange's 9ms cancel-on-disconnect
  // sweep, so re-login always resumes a dead session and replays the COD
  // cancels rather than taking over a live one.
  config.reconnect_backoff_initial = sim::millis(std::int64_t{8});
  return config;
}

class OrderEntryRig {
 public:
  explicit OrderEntryRig(SessionFault fault)
      : fault_(fault), exch_(engine_, session_drill_exchange_config()),
        gw_(engine_, session_drill_gateway_config(exch_)),
        uplink_(fabric_.connect(gw_.upstream_nic(), 0, exch_.order_nic(), 0,
                                net::LinkConfig{})) {
    fabric_.connect(strat_nic_, 0, gw_.client_nic(), 0, net::LinkConfig{});
    fabric_.connect(exch_.feed_nic(), 0, feed_nic_, 0, net::LinkConfig{});

    strat_ep_ = &strat_.connect_tcp(gw_.client_nic().mac(), gw_.client_nic().ip(),
                                    gw_.config().listen_port, 0);
    strat_ep_->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
      strat_raw_.insert(strat_raw_.end(), bytes.begin(), bytes.end());
      strat_parser_.feed(bytes);
      while (auto decoded = strat_parser_.next()) strat_msgs_.push_back(decoded->message);
    });

    feed_nic_.subscribe_multicast_mac(net::multicast_mac(exch_.unit_group(0)));
    feed_.bind_udp(exch_.config().feed_port,
                   [this](const net::Ipv4Header&, const net::UdpHeader&,
                          std::span<const std::byte> payload, sim::Time) {
                     feed_raw_.insert(feed_raw_.end(), payload.begin(), payload.end());
                     (void)proto::pitch::for_each_message(
                         payload, [this](const proto::pitch::Message& message) {
                           if (std::holds_alternative<proto::pitch::AddOrder>(message)) {
                             ++feed_adds_;
                           } else if (std::holds_alternative<proto::pitch::DeleteOrder>(
                                          message)) {
                             ++feed_deletes_;
                           } else if (std::holds_alternative<proto::pitch::OrderExecuted>(
                                          message)) {
                             ++feed_execs_;
                           }
                         });
                   });

    injector_.register_link(*uplink_.a_to_b);
    injector_.register_link(*uplink_.b_to_a);
    injector_.register_session("gw-uplink", [this] { gw_.kill_upstream(); });
  }

  // Runs the full scripted drill to the 40ms horizon.
  void run() {
    exch_.start_heartbeats();
    gw_.start();
    strat_ep_->send(proto::boe::encode(proto::boe::Message{proto::boe::LoginRequest{1, 1}},
                                       strat_seq_++));

    order_at(1000, 1, 100, 100.50);
    counter_at(2000, 100, 100.50);
    order_at(2500, 2, 200, 101.0);
    order_at(2510, 3, 300, 102.0);
    order_at(3600, 4, 100, 103.0);
    order_at(3800, 5, 100, 104.0);
    switch (fault_) {
      case SessionFault::kNone:
        break;
      case SessionFault::kUplinkKill:
        injector_.kill_session_at("gw-uplink", at_us(4000));
        break;
      case SessionFault::kUplinkFlap:
        // One-way fade toward the exchange: outbound orders die on the
        // wire while the exchange's FIN (at the 9ms COD sweep) still
        // reaches the gateway, exercising the peer-FIN reconnect path and
        // the resubmission of orders the matcher never saw.
        injector_.down_at(uplink_.a_to_b->name(), at_us(4000));
        injector_.up_at(uplink_.a_to_b->name(), at_us(10000));
        break;
    }
    order_at(4200, 6, 100, 105.0);
    order_at(4400, 7, 100, 106.0);
    order_at(16000, 8, 120, 100.45);
    counter_at(20000, 120, 100.45);
    engine_.run_until(at_us(40000));
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] exchange::Exchange& exch() noexcept { return exch_; }
  [[nodiscard]] trading::Gateway& gw() noexcept { return gw_; }
  [[nodiscard]] fault::FaultInjector& injector() noexcept { return injector_; }

  [[nodiscard]] std::int64_t position() const {
    return gw_.risk().position(proto::Symbol{"AAA"});
  }
  [[nodiscard]] std::size_t book_open_orders() {
    return exch_.book(proto::Symbol{"AAA"}).open_orders();
  }

  template <typename T>
  [[nodiscard]] std::vector<T> strat_received() const {
    std::vector<T> out;
    for (const auto& msg : strat_msgs_) {
      if (const auto* typed = std::get_if<T>(&msg)) out.push_back(*typed);
    }
    return out;
  }
  [[nodiscard]] const std::vector<std::byte>& strat_raw() const noexcept { return strat_raw_; }
  [[nodiscard]] const std::vector<std::byte>& feed_raw() const noexcept { return feed_raw_; }
  [[nodiscard]] int feed_adds() const noexcept { return feed_adds_; }
  [[nodiscard]] int feed_deletes() const noexcept { return feed_deletes_; }
  [[nodiscard]] int feed_execs() const noexcept { return feed_execs_; }

 private:
  [[nodiscard]] static sim::Time at_us(std::int64_t us) {
    return sim::Time::zero() + sim::micros(us);
  }

  void order_at(std::int64_t us, proto::OrderId id, proto::Quantity qty, double dollars) {
    engine_.schedule_at(at_us(us), [this, id, qty, dollars] {
      strat_ep_->send(proto::boe::encode(
          proto::boe::Message{proto::boe::NewOrder{id, proto::Side::kSell, qty,
                                                   proto::Symbol{"AAA"},
                                                   proto::price_from_dollars(dollars),
                                                   proto::boe::TimeInForce::kDay}},
          strat_seq_++));
    });
  }

  // Aggressive counter-liquidity injected straight into the book (a market
  // participant outside the rig's session); fully crossing, so it never
  // rests and only shows on the feed as executions.
  void counter_at(std::int64_t us, proto::Quantity qty, double dollars) {
    engine_.schedule_at(at_us(us), [this, qty, dollars] {
      exch_.book(proto::Symbol{"AAA"})
          .submit({exch_.next_order_id(), proto::Side::kBuy,
                   proto::price_from_dollars(dollars), qty});
    });
  }

  SessionFault fault_;
  sim::Engine engine_;
  net::Fabric fabric_{engine_};
  exchange::Exchange exch_;
  trading::Gateway gw_;
  net::Cable uplink_;
  fault::FaultInjector injector_{engine_};

  net::Nic strat_nic_{engine_, "strat", net::MacAddr::from_host_id(30),
                      net::Ipv4Addr{10, 0, 0, 30}};
  net::NetStack strat_{strat_nic_};
  net::TcpEndpoint* strat_ep_ = nullptr;
  proto::boe::StreamParser strat_parser_;
  std::vector<proto::boe::Message> strat_msgs_;
  std::vector<std::byte> strat_raw_;
  std::uint32_t strat_seq_ = 1;

  net::Nic feed_nic_{engine_, "feedsub", net::MacAddr::from_host_id(11),
                     net::Ipv4Addr{10, 0, 0, 11}};
  net::NetStack feed_{feed_nic_};
  std::vector<std::byte> feed_raw_;
  int feed_adds_ = 0;
  int feed_deletes_ = 0;
  int feed_execs_ = 0;
};

}  // namespace tsn::drills
