// Scripted end-to-end failure drills (§4): scripted faults against the A
// feed path, with arbitration keeping the downstream normalizer whole.
//
// The acceptance drill is the paper's redundancy argument made executable:
// flap the A line for 50 ms inside a Fig 2c-style burst, and the arbitrated
// consumer sees a gap-free stream — byte-identical to what the exchange
// published — while the identical fault against a single-feed consumer
// tears a hole in its sequence space.
#include <gtest/gtest.h>

#include "drill_harness.hpp"

namespace tsn::drills {
namespace {

TEST(FailureDrills, AFlapDuringBurstIsInvisibleBehindArbitration) {
  DualFeedRig rig;
  rig.run(a_flap_during_burst());

  // The fault really bit: the A line dropped traffic while down.
  EXPECT_GT(rig.a_link().stats().frames_dropped_down, 0u);
  // The B line covered every hole; the arbiter discarded the overlap.
  EXPECT_GT(rig.arb().stats().duplicates, 0u);
  EXPECT_EQ(rig.arb().stats().dual_gaps, 0u);
  EXPECT_EQ(rig.arb().stats().sequences_lost, 0u);

  // The arbitrated consumer never saw a gap, never started recovery.
  EXPECT_EQ(rig.norm().stats().sequence_gaps, 0u);
  EXPECT_EQ(rig.norm().stats().resyncs_started, 0u);
  EXPECT_GT(rig.norm().stats().datagrams_in, 0u);

  // Byte-identical to the published stream captured ahead of the fault.
  ASSERT_EQ(rig.forwarded().size(), rig.published().size());
  for (std::size_t i = 0; i < rig.published().size(); ++i) {
    ASSERT_EQ(rig.forwarded()[i], rig.published()[i]) << "datagram " << i;
  }

  // Satellite: the fault log recorded exactly one down/up pair, in order.
  const auto& log = rig.injector().log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, fault::FaultKind::kLinkDown);
  EXPECT_EQ(log[1].kind, fault::FaultKind::kLinkUp);
  EXPECT_LT(log[0].at, log[1].at);
}

TEST(FailureDrills, SameFlapWithoutArbitrationTearsTheStream) {
  SingleFeedRig rig;
  rig.run(a_flap_during_burst());

  EXPECT_GT(rig.a_link().stats().frames_dropped_down, 0u);
  // No second line: the flap is a real gap, and recovery has to run.
  EXPECT_GE(rig.norm().stats().sequence_gaps, 1u);
  EXPECT_GE(rig.norm().stats().resyncs_started, 1u);
}

// Satellite: normalizer gap counters surface as telemetry gauges and match
// the drill's ground truth on both sides of the comparison.
TEST(FailureDrills, GapGaugesMatchDrillGroundTruth) {
  DualFeedRig arbitrated;
  arbitrated.run(a_flap_during_burst());
  telemetry::Registry reg_arbitrated;
  arbitrated.register_all(reg_arbitrated);
  EXPECT_EQ(reg_arbitrated.gauge_value("norm.sequence_gaps"), 0.0);
  EXPECT_EQ(reg_arbitrated.gauge_value("norm.resyncs_started"), 0.0);
  EXPECT_EQ(reg_arbitrated.gauge_value("arb.forwarded"),
            static_cast<double>(arbitrated.arb().stats().forwarded));
  EXPECT_EQ(reg_arbitrated.gauge_value("fault.fired"), 2.0);

  SingleFeedRig single;
  single.run(a_flap_during_burst());
  telemetry::Registry reg_single;
  single.norm().register_metrics(reg_single, "norm");
  EXPECT_GE(reg_single.gauge_value("norm.sequence_gaps"), 1.0);
  EXPECT_EQ(reg_single.gauge_value("norm.sequence_gaps"),
            static_cast<double>(single.norm().stats().sequence_gaps));
  EXPECT_EQ(reg_single.gauge_value("norm.resyncs_started"),
            static_cast<double>(single.norm().stats().resyncs_started));
}

TEST(FailureDrills, RainFadeOnOneLineIsAbsorbed) {
  DrillScenario scenario;
  scenario.name = "a-rain-fade";
  scenario.seed = 43;
  scenario.run_for = sim::millis(std::int64_t{150});
  scenario.burst_start = sim::Time::zero() + sim::millis(std::int64_t{40});
  scenario.burst_end = sim::Time::zero() + sim::millis(std::int64_t{100});
  scenario.burst_multiplier = 4.0;
  FaultAction fade;
  fade.kind = FaultAction::Kind::kLossRampA;
  fade.at = sim::Time::zero() + sim::millis(std::int64_t{30});
  fade.duration = sim::millis(std::int64_t{80});
  fade.value = 0.25;  // heavy fade so the drill always observes drops
  scenario.faults = {fade};

  DualFeedRig rig;
  rig.run(scenario);
  EXPECT_GT(rig.a_link().stats().frames_dropped_loss, 0u);
  EXPECT_EQ(rig.norm().stats().sequence_gaps, 0u);
  EXPECT_EQ(rig.norm().stats().resyncs_started, 0u);
  // The ramp stepped up, stepped down, and cleared the override.
  EXPECT_GT(rig.injector().log().size(), 2u);
  EXPECT_EQ(rig.a_link().loss_override(), -1.0);
}

TEST(FailureDrills, MrouteEvictionBlackholesOnlyTheEvictedLine) {
  DrillScenario scenario;
  scenario.name = "a-mroute-evict";
  scenario.seed = 44;
  scenario.run_for = sim::millis(std::int64_t{120});
  FaultAction evict;
  evict.kind = FaultAction::Kind::kEvictGroupA;
  evict.at = sim::Time::zero() + sim::millis(std::int64_t{50});
  scenario.faults = {evict};

  DualFeedRig rig;
  rig.run(scenario);
  // With no querier running, nothing re-installs the entry: the A line
  // stays dark for the rest of the run (§3's silent black-hole) ...
  EXPECT_EQ(rig.xsw().mroutes().stats().evictions, 1u);
  EXPECT_GT(rig.xsw().stats().no_group_drops, 0u);
  // ... and the B line carries the session without a single gap.
  EXPECT_EQ(rig.norm().stats().sequence_gaps, 0u);
  EXPECT_EQ(rig.arb().stats().dual_gaps, 0u);
}

TEST(FailureDrills, PortStallDelaysOneLineWithoutCorruptingTheStream) {
  DrillScenario scenario;
  scenario.name = "a-port-stall";
  scenario.seed = 45;
  scenario.run_for = sim::millis(std::int64_t{120});
  FaultAction stall;
  stall.kind = FaultAction::Kind::kStallPortA;
  stall.at = sim::Time::zero() + sim::millis(std::int64_t{40});
  stall.duration = sim::millis(std::int64_t{3});
  scenario.faults = {stall};

  DualFeedRig rig;
  rig.run(scenario);
  // Frames queued behind the stalled port and released late; by then the
  // B line had delivered, so every late A copy must be discarded as a
  // duplicate — never forwarded, which would rewind the normalizer.
  EXPECT_GT(rig.xsw().stats().frames_stalled, 0u);
  EXPECT_GT(rig.arb().stats().duplicates, 0u);
  EXPECT_EQ(rig.norm().stats().sequence_gaps, 0u);
  EXPECT_EQ(rig.norm().stats().resyncs_started, 0u);
  ASSERT_EQ(rig.forwarded().size(), rig.published().size());
}

}  // namespace
}  // namespace tsn::drills
