// Hot-standby failover drill rig (the PR 10 tentpole's proving ground).
//
// Topology: a primary/backup exchange pair joined by a replication bridge
// (ReplicaStream -> ReplicaApplier over its own cable, partitionable by the
// fault injector), a FailoverController watching the backup's heartbeat
// watermark, and two client gateways — a seller and a buyer — reaching both
// exchanges' order NICs through an L2 switch so the PR 5 reconnect
// machinery can re-home them to whichever box answers. A feed consumer
// hangs off both exchanges' feed NICs: the backup publishes muted (its
// PITCH sequences advance in lockstep, datagrams dropped) until promotion,
// so the consumer sees one seamless sequence across the failover.
//
// Every drill runs the same scripted two-sided timeline through real
// sessions (no direct book pokes — an order the replication channel never
// saw could not reach the backup). The control variant (kNone) is the
// identical rig with no fault: parity assertions compare the promoted
// backup's book and the strategies' fills against a never-failed run.
//
// Timeline (sim clock):
//   1.0ms  seller 100: sell 100 @ 100.50   (rests)
//   2.0ms  buyer  200: buy  100 @ 100.50   (fills 100)
//   2.5ms  seller 101: sell 200 @ 101      (rests)
//   2.6ms  seller 102: sell 300 @ 102      (rests)
//   3.6ms  seller 103: sell 100 @ 103      (rests)
//   3.8ms  seller 104: sell 100 @ 104      (acked just before the fault)
//   4.0ms  seller 105: sell 100 @ 105      (in flight AT the crash instant)
//   4.2ms  seller 106: sell 100 @ 106      (queued during the outage)
//   4.4ms  buyer  201: buy   50 @ 101      (fills 50 after recovery)
//  16.0ms  seller 107: sell 120 @ 100.45
//  20.0ms  buyer  202: buy  120 @ 100.45   (fills 120)
//  40.0ms  end of drill
//
// Faults:
//   kCrashPrimary         process crash at 4.0ms (box dies, kernel FINs)
//   kPartitionHeal        replication bridge partitioned 5ms..10ms while the
//                         primary stays up: split-brain, resolved by the
//                         backup's epoch bump fencing the stale primary on
//                         heal. The partition window is deliberately
//                         order-free — orders admitted by a partitioned
//                         primary are acked but unreplicated (documented
//                         limitation; see DESIGN.md).
//   kCrashDuringPromotion same partition at 5ms, then the primary dies at
//                         7.5ms — inside the backup's promotion window.
#pragma once

#include "sim/engine.hpp"
#include <cstdint>
#include <functional>
#include <memory>
#include <variant>
#include <vector>

#include "exchange/exchange.hpp"
#include "exchange/failover.hpp"
#include "exchange/replica.hpp"
#include "fault/injector.hpp"
#include "l2/commodity_switch.hpp"
#include "net/fabric.hpp"
#include "net/stack.hpp"
#include "proto/pitch.hpp"
#include "telemetry/metrics.hpp"
#include "trading/gateway.hpp"

namespace tsn::drills {

enum class FailoverFault {
  kNone,                  // control rig: same script, no fault
  kCrashPrimary,          // whole-box death mid-burst
  kPartitionHeal,         // replication split-brain, healed
  kCrashDuringPromotion,  // partition, then crash inside the promotion window
};

class FailoverRig {
 public:
  explicit FailoverRig(FailoverFault fault)
      : fault_(fault),
        primary_(engine_, exchange_config("PRIM", 1, net::Ipv4Addr{10, 2, 0, 1}, 2,
                                          net::Ipv4Addr{10, 2, 0, 2})),
        backup_(engine_, exchange_config("BACK", 3, net::Ipv4Addr{10, 2, 0, 3}, 4,
                                         net::Ipv4Addr{10, 2, 0, 4})),
        osw_(engine_, "osw", switch_config()),
        stream_(engine_, primary_, stream_config()),
        applier_(engine_, backup_, applier_config()),
        controller_(engine_, backup_, applier_, failover_config()),
        seller_gw_(engine_, gateway_config("gw-sell", 20, 21)),
        buyer_gw_(engine_, gateway_config("gw-buy", 22, 23)),
        seller_(engine_, "strat-sell", 30, seller_gw_),
        buyer_(engine_, "strat-buy", 31, buyer_gw_) {
    // Hot standby: feed muted (sequences advance, datagrams dropped) and the
    // order listener refuses accepts until the controller promotes it.
    backup_.set_feed_muted(true);
    backup_.set_accepting(false);

    // Order plane: both exchanges and both gateways on one switch, so the
    // same gateway NIC can reach whichever box currently leads.
    fabric_.connect(osw_, 0, primary_.order_nic(), 0, net::LinkConfig{});
    fabric_.connect(osw_, 1, backup_.order_nic(), 0, net::LinkConfig{});
    fabric_.connect(osw_, 2, seller_gw_.upstream_nic(), 0, net::LinkConfig{});
    fabric_.connect(osw_, 3, buyer_gw_.upstream_nic(), 0, net::LinkConfig{});
    osw_.bind_host(primary_.order_nic().ip(), primary_.order_nic().mac(), 0);
    osw_.bind_host(backup_.order_nic().ip(), backup_.order_nic().mac(), 1);
    osw_.bind_host(seller_gw_.upstream_nic().ip(), seller_gw_.upstream_nic().mac(), 2);
    osw_.bind_host(buyer_gw_.upstream_nic().ip(), buyer_gw_.upstream_nic().mac(), 3);

    // Replication bridge: its own cable, so a partition severs exactly the
    // pair's view of each other and nothing else.
    const net::Cable bridge =
        fabric_.connect(stream_.nic(), 0, applier_.nic(), 0, net::LinkConfig{});
    bridge_ab_ = bridge.a_to_b;
    bridge_ba_ = bridge.b_to_a;

    // Feed plane: the consumer hears both boxes (ports 0 and 1); only the
    // unmuted one actually emits, so the PITCH sequence is gapless across
    // the handover.
    fabric_.connect(primary_.feed_nic(), 0, feed_nic_, 0, net::LinkConfig{});
    fabric_.connect(backup_.feed_nic(), 0, feed_nic_, 1, net::LinkConfig{});
    feed_nic_.subscribe_multicast_mac(net::multicast_mac(primary_.unit_group(0)));
    feed_.bind_udp(primary_.config().feed_port,
                   [this](const net::Ipv4Header&, const net::UdpHeader&,
                          std::span<const std::byte> payload, sim::Time) {
                     on_feed_datagram(payload);
                   });

    injector_.register_link(*bridge_ab_);
    injector_.register_link(*bridge_ba_);
    // One process = the primary exchange and its replication stream; the
    // crash callback kills both in the same instant, before any same-tick
    // admissions (crash events are scheduled at drill setup, so they sort
    // first at a tied timestamp).
    injector_.register_process("primary", [this] {
      primary_.crash();
      stream_.crash();
    });

    seller_.wire(fabric_);
    buyer_.wire(fabric_);
  }

  void run() {
    primary_.start_heartbeats();
    backup_.start_heartbeats();
    stream_.start();
    applier_.start();
    controller_.start();
    seller_gw_.start();
    buyer_gw_.start();
    seller_.login();
    buyer_.login();

    schedule_fault();

    sell_at(1000, 100, 100, 100.50);
    buy_at(2000, 200, 100, 100.50);
    sell_at(2500, 101, 200, 101.0);
    sell_at(2600, 102, 300, 102.0);
    sell_at(3600, 103, 100, 103.0);
    sell_at(3800, 104, 100, 104.0);
    sell_at(4000, 105, 100, 105.0);
    sell_at(4200, 106, 100, 106.0);
    buy_at(4400, 201, 50, 101.0);
    sell_at(16000, 107, 120, 100.45);
    buy_at(20000, 202, 120, 100.45);
    engine_.run_until(at_us(40000));
  }

  // Every component's gauges in one registry: the byte-identity surface.
  void register_all(telemetry::Registry& registry) {
    primary_.register_metrics(registry, "prim");
    backup_.register_metrics(registry, "back");
    stream_.register_metrics(registry, "repl.stream");
    applier_.register_metrics(registry, "repl.applier");
    controller_.register_metrics(registry, "failover");
    seller_gw_.register_metrics(registry, "gw.sell");
    buyer_gw_.register_metrics(registry, "gw.buy");
    injector_.register_metrics(registry, "fault");
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] exchange::Exchange& primary() noexcept { return primary_; }
  [[nodiscard]] exchange::Exchange& backup() noexcept { return backup_; }
  [[nodiscard]] exchange::ReplicaStream& stream() noexcept { return stream_; }
  [[nodiscard]] exchange::ReplicaApplier& applier() noexcept { return applier_; }
  [[nodiscard]] exchange::FailoverController& controller() noexcept { return controller_; }
  [[nodiscard]] trading::Gateway& seller_gw() noexcept { return seller_gw_; }
  [[nodiscard]] trading::Gateway& buyer_gw() noexcept { return buyer_gw_; }
  [[nodiscard]] fault::FaultInjector& injector() noexcept { return injector_; }

  // The surviving authority: the backup after a fault, the primary in the
  // control run.
  [[nodiscard]] exchange::Exchange& authority() noexcept {
    return fault_ == FailoverFault::kNone ? primary_ : backup_;
  }
  [[nodiscard]] std::int64_t seller_position() const {
    return seller_gw_.risk().position(proto::Symbol{"AAA"});
  }
  [[nodiscard]] std::int64_t buyer_position() const {
    return buyer_gw_.risk().position(proto::Symbol{"AAA"});
  }
  template <typename T>
  [[nodiscard]] std::vector<T> seller_received() const {
    return seller_.received<T>();
  }
  template <typename T>
  [[nodiscard]] std::vector<T> buyer_received() const {
    return buyer_.received<T>();
  }

  [[nodiscard]] std::size_t feed_datagrams() const noexcept { return feed_datagrams_; }
  [[nodiscard]] std::size_t feed_messages() const noexcept { return feed_messages_; }
  [[nodiscard]] std::size_t feed_gaps() const noexcept { return feed_gaps_; }

  // Observes a component's state at a scripted instant (e.g. "was the
  // controller mid-promotion when the crash landed?").
  void probe_at(std::int64_t us, std::function<void()> probe) {
    engine_.schedule_at(at_us(us), std::move(probe));
  }

  [[nodiscard]] static sim::Time at_us(std::int64_t us) {
    return sim::Time::zero() + sim::micros(us);
  }

 private:
  // A strategy leg: one TCP session into its gateway, capturing every
  // response for the parity assertions.
  class Strategy {
   public:
    Strategy(sim::Engine& engine, std::string name, std::uint64_t host_id,
             trading::Gateway& gw)
        : nic_(engine, std::move(name), net::MacAddr::from_host_id(host_id),
               net::Ipv4Addr{10, 2, 0, static_cast<std::uint8_t>(host_id)}),
          stack_(nic_),
          gw_(gw) {}

    void wire(net::Fabric& fabric) {
      fabric.connect(nic_, 0, gw_.client_nic(), 0, net::LinkConfig{});
    }

    void login() {
      ep_ = &stack_.connect_tcp(gw_.client_nic().mac(), gw_.client_nic().ip(),
                                gw_.config().listen_port, 0);
      ep_->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
        parser_.feed(bytes);
        while (auto decoded = parser_.next()) msgs_.push_back(decoded->message);
      });
      ep_->send(proto::boe::encode(
          proto::boe::Message{proto::boe::LoginRequest{1, 1}}, seq_++));
    }

    void send_order(proto::OrderId id, proto::Side side, proto::Quantity qty,
                    double dollars) {
      ep_->send(proto::boe::encode(
          proto::boe::Message{proto::boe::NewOrder{id, side, qty, proto::Symbol{"AAA"},
                                                   proto::price_from_dollars(dollars),
                                                   proto::boe::TimeInForce::kDay}},
          seq_++));
    }

    template <typename T>
    [[nodiscard]] std::vector<T> received() const {
      std::vector<T> out;
      for (const auto& msg : msgs_) {
        if (const auto* typed = std::get_if<T>(&msg)) out.push_back(*typed);
      }
      return out;
    }

   private:
    net::Nic nic_;
    net::NetStack stack_;
    trading::Gateway& gw_;
    net::TcpEndpoint* ep_ = nullptr;
    proto::boe::StreamParser parser_;
    std::vector<proto::boe::Message> msgs_;
    std::uint32_t seq_ = 1;
  };

  static exchange::ExchangeConfig exchange_config(const char* name, std::uint64_t feed_host,
                                                  net::Ipv4Addr feed_ip,
                                                  std::uint64_t order_host,
                                                  net::Ipv4Addr order_ip) {
    exchange::ExchangeConfig config;
    config.name = name;
    config.symbols = {{proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity,
                       proto::price_from_dollars(100)}};
    config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
    config.heartbeat_interval = sim::micros(std::int64_t{1500});
    config.session_timeout = sim::millis(std::int64_t{20});
    config.feed_mac = net::MacAddr::from_host_id(feed_host);
    config.feed_ip = feed_ip;
    config.order_mac = net::MacAddr::from_host_id(order_host);
    config.order_ip = order_ip;
    return config;
  }

  static l2::CommoditySwitchConfig switch_config() {
    l2::CommoditySwitchConfig config;
    config.port_count = 8;
    return config;
  }

  exchange::ReplicaConfig stream_config() const {
    exchange::ReplicaConfig config;
    config.name = "repl-pri";
    config.local_mac = net::MacAddr::from_host_id(5);
    config.local_ip = net::Ipv4Addr{10, 2, 0, 5};
    config.peer_mac = net::MacAddr::from_host_id(6);
    config.peer_ip = net::Ipv4Addr{10, 2, 0, 6};
    config.local_port = 36000;
    config.peer_port = 36001;
    return config;
  }

  exchange::ReplicaConfig applier_config() const {
    exchange::ReplicaConfig config;
    config.name = "repl-bak";
    config.local_mac = net::MacAddr::from_host_id(6);
    config.local_ip = net::Ipv4Addr{10, 2, 0, 6};
    config.peer_mac = net::MacAddr::from_host_id(5);
    config.peer_ip = net::Ipv4Addr{10, 2, 0, 5};
    config.local_port = 36001;
    config.peer_port = 36000;
    return config;
  }

  static exchange::FailoverConfig failover_config() {
    exchange::FailoverConfig config;
    config.poll_interval = sim::micros(std::int64_t{200});
    config.suspect_after = sim::millis(std::int64_t{2});
    config.promote_after = sim::millis(std::int64_t{1});
    config.promote_replay = sim::micros(std::int64_t{200});
    return config;
  }

  trading::GatewayConfig gateway_config(const char* name, std::uint8_t client_host,
                                        std::uint8_t upstream_host) {
    trading::GatewayConfig config;
    config.name = name;
    config.exchange_mac = primary_.order_nic().mac();
    config.exchange_ip = primary_.order_nic().ip();
    config.exchange_port = primary_.config().order_port;
    config.backup_exchanges = {{backup_.order_nic().mac(), backup_.order_nic().ip(),
                                backup_.config().order_port}};
    config.client_mac = net::MacAddr::from_host_id(client_host);
    config.client_ip = net::Ipv4Addr{10, 2, 0, client_host};
    config.upstream_mac = net::MacAddr::from_host_id(upstream_host);
    config.upstream_ip = net::Ipv4Addr{10, 2, 0, upstream_host};
    config.heartbeat_interval = sim::micros(std::int64_t{1500});
    config.reconnect_backoff_initial = sim::millis(std::int64_t{2});
    // A dead box's kernel can complete handshakes it had queued; don't hang
    // in kLoggingIn waiting for an answer that will never come.
    config.reconnect_response_timeout = sim::millis(std::int64_t{1});
    config.reconnect_max_attempts = 20;
    return config;
  }

  void schedule_fault() {
    switch (fault_) {
      case FailoverFault::kNone:
        break;
      case FailoverFault::kCrashPrimary:
        injector_.crash_process_at("primary", at_us(4000));
        break;
      case FailoverFault::kPartitionHeal:
        injector_.partition_at(bridge_ab_->name(), bridge_ba_->name(), at_us(5000));
        injector_.heal_at(bridge_ab_->name(), bridge_ba_->name(), at_us(10000));
        break;
      case FailoverFault::kCrashDuringPromotion:
        injector_.partition_at(bridge_ab_->name(), bridge_ba_->name(), at_us(5000));
        injector_.crash_process_at("primary", at_us(7500));
        injector_.heal_at(bridge_ab_->name(), bridge_ba_->name(), at_us(10000));
        break;
    }
  }

  void on_feed_datagram(std::span<const std::byte> payload) {
    ++feed_datagrams_;
    if (const auto header = proto::pitch::peek_header(payload)) {
      if (feed_next_seq_ != 0 && header->sequence != feed_next_seq_) ++feed_gaps_;
      feed_next_seq_ = header->sequence + header->count;
      feed_messages_ += header->count;
    }
  }

  void sell_at(std::int64_t us, proto::OrderId id, proto::Quantity qty, double dollars) {
    engine_.schedule_at(at_us(us), [this, id, qty, dollars] {
      seller_.send_order(id, proto::Side::kSell, qty, dollars);
    });
  }

  void buy_at(std::int64_t us, proto::OrderId id, proto::Quantity qty, double dollars) {
    engine_.schedule_at(at_us(us), [this, id, qty, dollars] {
      buyer_.send_order(id, proto::Side::kBuy, qty, dollars);
    });
  }

  FailoverFault fault_;
  sim::Engine engine_;
  net::Fabric fabric_{engine_};
  exchange::Exchange primary_;
  exchange::Exchange backup_;
  l2::CommoditySwitch osw_;
  exchange::ReplicaStream stream_;
  exchange::ReplicaApplier applier_;
  exchange::FailoverController controller_;
  trading::Gateway seller_gw_;
  trading::Gateway buyer_gw_;
  Strategy seller_;
  Strategy buyer_;
  fault::FaultInjector injector_{engine_};
  net::Link* bridge_ab_ = nullptr;
  net::Link* bridge_ba_ = nullptr;

  net::Nic feed_nic_{engine_, "feedsub", net::MacAddr::from_host_id(40),
                     net::Ipv4Addr{10, 2, 0, 40}};
  net::NetStack feed_{feed_nic_};
  std::size_t feed_datagrams_ = 0;
  std::size_t feed_messages_ = 0;
  std::size_t feed_gaps_ = 0;
  std::uint32_t feed_next_seq_ = 0;
};

}  // namespace tsn::drills
