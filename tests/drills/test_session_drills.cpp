// Session-resilience failure drills (§2, §4.2): kill the order-entry
// uplink mid-burst and prove the whole machine — cancel-on-disconnect on
// the exchange, backoff/re-login/replay on the gateway, idempotent
// resubmission for orders the matcher never saw — converges to the same
// economic outcome as a never-disconnected control run, with every step
// visible on the public feed and reproducible byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "session_rig.hpp"

namespace tsn {
namespace {

using drills::OrderEntryRig;
using drills::SessionFault;

std::vector<proto::OrderId> sorted_ids(const std::vector<proto::boe::OrderCancelled>& msgs) {
  std::vector<proto::OrderId> ids;
  for (const auto& msg : msgs) ids.push_back(msg.client_order_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(SessionDrills, ControlRunStaysConnectedAndFillsTwice) {
  OrderEntryRig rig{SessionFault::kNone};
  rig.run();
  EXPECT_EQ(rig.gw().stats().disconnects, 0u);
  EXPECT_EQ(rig.exch().stats().cod_sessions, 0u);
  EXPECT_EQ(rig.strat_received<proto::boe::OrderAccepted>().size(), 8u);
  EXPECT_EQ(rig.strat_received<proto::boe::OrderCancelled>().size(), 0u);
  EXPECT_EQ(rig.strat_received<proto::boe::Fill>().size(), 2u);
  // Orders 1 and 8 filled; 2..7 rest untouched at drill end.
  EXPECT_EQ(rig.position(), -220);
  EXPECT_EQ(rig.book_open_orders(), 6u);
  EXPECT_EQ(rig.feed_adds(), 8);
  EXPECT_EQ(rig.feed_deletes(), 0);
  EXPECT_EQ(rig.feed_execs(), 2);
}

TEST(SessionDrills, UplinkKillMidBurstRecoversViaCodAndReplay) {
  OrderEntryRig control{SessionFault::kNone};
  control.run();
  OrderEntryRig rig{SessionFault::kUplinkKill};
  rig.run();

  // The fault fired once, on schedule.
  EXPECT_EQ(rig.injector().stats().faults_fired, 1u);

  // Exchange side: the silent death is caught by the 9ms liveness sweep;
  // cancel-on-disconnect pulls the four resting orders (2..5 — order 1 had
  // already filled) and the deletes are public on the feed.
  EXPECT_EQ(rig.exch().stats().sessions_timed_out, 1u);
  EXPECT_EQ(rig.exch().stats().cod_sessions, 1u);
  EXPECT_EQ(rig.exch().stats().cod_orders_cancelled, 4u);
  EXPECT_EQ(rig.feed_deletes(), 4);

  // Gateway side: one disconnect, one backoff re-login that lands after
  // the sweep (so the session is resumed, not taken over), and a replay
  // that carries exactly the four COD cancels the gateway missed.
  EXPECT_EQ(rig.gw().stats().disconnects, 1u);
  EXPECT_EQ(rig.gw().stats().reconnects_completed, 1u);
  EXPECT_EQ(rig.gw().stats().replays_requested, 1u);
  EXPECT_EQ(rig.gw().upstream_state(), trading::UpstreamState::kReady);
  EXPECT_EQ(rig.exch().stats().sessions_resumed, 1u);
  EXPECT_EQ(rig.exch().stats().replays_served, 1u);
  EXPECT_EQ(rig.exch().stats().replayed_messages, 4u);

  // Everything in flight had been acked before the kill; the two
  // mid-outage orders queued at the gateway and flushed after re-login —
  // nothing was resubmitted, nothing executed twice.
  EXPECT_EQ(rig.gw().stats().orders_marked_unknown, 0u);
  EXPECT_EQ(rig.gw().stats().orders_resubmitted, 0u);
  EXPECT_EQ(rig.gw().pending_upstream_hwm(), 2u);
  EXPECT_EQ(rig.exch().stats().duplicate_client_ids_rejected, 0u);

  // The strategy saw all eight orders acked exactly once, the four COD
  // cancels, and the same two fills as the control run.
  EXPECT_EQ(rig.strat_received<proto::boe::OrderAccepted>().size(), 8u);
  const auto cancels = rig.strat_received<proto::boe::OrderCancelled>();
  EXPECT_EQ(sorted_ids(cancels), (std::vector<proto::OrderId>{2, 3, 4, 5}));
  const auto fills = rig.strat_received<proto::boe::Fill>();
  ASSERT_EQ(fills.size(), 2u);

  // Economic invariant: fills — hence net position — match the control
  // run exactly. COD only pulls resting orders; it never invents or loses
  // an execution.
  EXPECT_EQ(rig.position(), control.position());
  EXPECT_EQ(rig.position(), -220);
  EXPECT_EQ(rig.feed_execs(), control.feed_execs());
  // Only the two post-outage orders rest at drill end (COD took 2..5).
  EXPECT_EQ(rig.book_open_orders(), 2u);
}

TEST(SessionDrills, UplinkFlapResumesAndResubmitsUnseenOrders) {
  OrderEntryRig control{SessionFault::kNone};
  control.run();
  OrderEntryRig rig{SessionFault::kUplinkFlap};
  rig.run();

  EXPECT_EQ(rig.injector().stats().faults_fired, 2u);  // down + up

  // The one-way fade means orders 6 and 7 left the gateway but died on
  // the wire; the exchange's FIN (sent when the 9ms sweep killed the
  // session) still reached the gateway, so the disconnect is peer-FIN.
  EXPECT_EQ(rig.gw().stats().disconnects, 1u);
  EXPECT_EQ(rig.gw().stats().orders_marked_unknown, 2u);
  EXPECT_EQ(rig.exch().stats().cod_sessions, 1u);
  EXPECT_EQ(rig.exch().stats().cod_orders_cancelled, 4u);

  // After re-login the replay shows no trace of 6 and 7, so they are
  // resubmitted under their dedupe keys — each accepted exactly once.
  EXPECT_EQ(rig.gw().stats().reconnects_completed, 1u);
  EXPECT_EQ(rig.exch().stats().sessions_resumed, 1u);
  EXPECT_EQ(rig.exch().stats().replayed_messages, 4u);
  EXPECT_EQ(rig.gw().stats().orders_resubmitted, 2u);
  EXPECT_EQ(rig.exch().stats().duplicate_client_ids_rejected, 0u);
  EXPECT_EQ(rig.gw().upstream_state(), trading::UpstreamState::kReady);

  EXPECT_EQ(rig.strat_received<proto::boe::OrderAccepted>().size(), 8u);
  const auto cancels = rig.strat_received<proto::boe::OrderCancelled>();
  EXPECT_EQ(sorted_ids(cancels), (std::vector<proto::OrderId>{2, 3, 4, 5}));
  EXPECT_EQ(rig.position(), control.position());
  EXPECT_EQ(rig.book_open_orders(), 2u);
}

TEST(SessionDrills, KillDrillIsByteIdenticalAcrossRuns) {
  // The whole recovery — jittered backoff included — is a deterministic
  // function of the seed: two independent runs produce byte-identical
  // session streams and feed bytes, so a drill failure is replayable.
  OrderEntryRig first{SessionFault::kUplinkKill};
  first.run();
  OrderEntryRig second{SessionFault::kUplinkKill};
  second.run();
  EXPECT_EQ(first.strat_raw(), second.strat_raw());
  EXPECT_EQ(first.feed_raw(), second.feed_raw());
  EXPECT_EQ(first.position(), second.position());
  EXPECT_EQ(first.gw().stats().reconnects_completed,
            second.gw().stats().reconnects_completed);
  EXPECT_FALSE(first.strat_raw().empty());
  EXPECT_FALSE(first.feed_raw().empty());
}

}  // namespace
}  // namespace tsn
