// Replay determinism: a failure drill is only a regression tool if two
// runs of the same scenario are bit-for-bit identical. This pins the full
// telemetry JSON export and the fault log of the acceptance drill across
// two independent runs with the same seed — any nondeterminism anywhere in
// the faulted pipeline (RNG sharing, map iteration order, time arithmetic)
// breaks the byte comparison.
#include <gtest/gtest.h>

#include <string>

#include "drill_harness.hpp"

namespace tsn::drills {
namespace {

struct DrillOutcome {
  std::string metrics_json;
  std::string fault_log_json;
  std::size_t forwarded = 0;
  std::size_t published = 0;
};

DrillOutcome run_acceptance_drill() {
  DualFeedRig rig;
  rig.run(a_flap_during_burst());
  telemetry::Registry registry;
  rig.register_all(registry);
  DrillOutcome outcome;
  outcome.metrics_json = registry.to_json(rig.engine().now());
  outcome.fault_log_json = rig.injector().log_json();
  outcome.forwarded = rig.forwarded().size();
  outcome.published = rig.published().size();
  return outcome;
}

TEST(FaultReplay, SameSeedSameDrillIsByteIdentical) {
  const DrillOutcome first = run_acceptance_drill();
  const DrillOutcome second = run_acceptance_drill();

  EXPECT_GT(first.published, 0u);
  EXPECT_EQ(first.forwarded, second.forwarded);
  EXPECT_EQ(first.published, second.published);
  EXPECT_EQ(first.fault_log_json, second.fault_log_json);
  // The whole telemetry surface — exchange, switch, arbiter, normalizer,
  // injector — byte for byte.
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

// Schema check: every FaultKind value — including the failover additions
// process_crash and link_partition — must round-trip through the JSON
// export under the exact name fault_kind_name spells. A kind that fires but
// exports as "?" (or not at all) would silently weaken every byte-identity
// comparison built on the log.
TEST(FaultReplay, EveryFaultKindRoundTripsThroughLogJson) {
  sim::Engine engine;
  net::Link link_a{engine, "bridge-ab", net::LinkConfig{}};
  net::Link link_b{engine, "bridge-ba", net::LinkConfig{}};
  l2::CommoditySwitch tor{engine, "tor", l2::CommoditySwitchConfig{}};
  fault::FaultInjector injector{engine};
  injector.register_link(link_a);
  injector.register_link(link_b);
  injector.register_switch(tor);
  injector.register_session("sess", [] {});
  injector.register_storm("storm", [](std::uint32_t count) { return count; });
  injector.register_process("proc", [] {});

  const auto at_us = [](std::int64_t us) { return sim::Time::zero() + sim::micros(us); };
  injector.down_at("bridge-ab", at_us(100));             // link_down
  injector.up_at("bridge-ab", at_us(200));               // link_up
  injector.set_loss_at("bridge-ab", at_us(300), 0.25);   // loss_set
  injector.clear_loss_at("bridge-ab", at_us(400));       // loss_clear
  injector.stall_port_at("tor", 0, at_us(500), sim::micros(std::int64_t{10}));  // port_stall
  injector.evict_mroute_at("tor", net::Ipv4Addr{0xe1000001}, at_us(600));       // mroute_evict
  injector.kill_session_at("sess", at_us(700));          // session_kill
  injector.storm_at("storm", at_us(800), 3);             // session_storm
  injector.crash_process_at("proc", at_us(900));         // process_crash
  injector.partition_at("bridge-ab", "bridge-ba", at_us(1000));  // link_partition (1.0)
  injector.heal_at("bridge-ab", "bridge-ba", at_us(1100));       // link_partition (0.0)
  engine.run_until(at_us(2000));

  const std::string json = injector.log_json();
  for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
    const auto name = fault::fault_kind_name(static_cast<fault::FaultKind>(k));
    EXPECT_NE(name, "?") << "FaultKind " << k << " has no export name";
    const std::string needle = "\"kind\":\"" + std::string{name} + "\"";
    EXPECT_NE(json.find(needle), std::string::npos)
        << "kind " << name << " missing from fault log: " << json;
  }
  // The export never leaks an unnamed kind.
  EXPECT_EQ(json.find("\"kind\":\"?\""), std::string::npos);
  // Partition windows read directly off the log: one combined target with
  // value 1 (partition) then 0 (heal).
  EXPECT_NE(json.find("\"target\":\"bridge-ab|bridge-ba\",\"value\":1"), std::string::npos);
  EXPECT_NE(json.find("\"target\":\"bridge-ab|bridge-ba\",\"value\":0"), std::string::npos);
}

TEST(FaultReplay, DifferentSeedsDiverge) {
  const DrillOutcome baseline = run_acceptance_drill();

  DualFeedRig rig;
  DrillScenario scenario = a_flap_during_burst();
  scenario.seed = 42;
  rig.run(scenario);
  telemetry::Registry registry;
  rig.register_all(registry);
  // A sanity guard on the comparison above: the export is sensitive to the
  // market stream, not constant.
  EXPECT_NE(baseline.metrics_json, registry.to_json(rig.engine().now()));
}

}  // namespace
}  // namespace tsn::drills
