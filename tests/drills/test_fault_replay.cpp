// Replay determinism: a failure drill is only a regression tool if two
// runs of the same scenario are bit-for-bit identical. This pins the full
// telemetry JSON export and the fault log of the acceptance drill across
// two independent runs with the same seed — any nondeterminism anywhere in
// the faulted pipeline (RNG sharing, map iteration order, time arithmetic)
// breaks the byte comparison.
#include <gtest/gtest.h>

#include <string>

#include "drill_harness.hpp"

namespace tsn::drills {
namespace {

struct DrillOutcome {
  std::string metrics_json;
  std::string fault_log_json;
  std::size_t forwarded = 0;
  std::size_t published = 0;
};

DrillOutcome run_acceptance_drill() {
  DualFeedRig rig;
  rig.run(a_flap_during_burst());
  telemetry::Registry registry;
  rig.register_all(registry);
  DrillOutcome outcome;
  outcome.metrics_json = registry.to_json(rig.engine().now());
  outcome.fault_log_json = rig.injector().log_json();
  outcome.forwarded = rig.forwarded().size();
  outcome.published = rig.published().size();
  return outcome;
}

TEST(FaultReplay, SameSeedSameDrillIsByteIdentical) {
  const DrillOutcome first = run_acceptance_drill();
  const DrillOutcome second = run_acceptance_drill();

  EXPECT_GT(first.published, 0u);
  EXPECT_EQ(first.forwarded, second.forwarded);
  EXPECT_EQ(first.published, second.published);
  EXPECT_EQ(first.fault_log_json, second.fault_log_json);
  // The whole telemetry surface — exchange, switch, arbiter, normalizer,
  // injector — byte for byte.
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(FaultReplay, DifferentSeedsDiverge) {
  const DrillOutcome baseline = run_acceptance_drill();

  DualFeedRig rig;
  DrillScenario scenario = a_flap_during_burst();
  scenario.seed = 42;
  rig.run(scenario);
  telemetry::Registry registry;
  rig.register_all(registry);
  // A sanity guard on the comparison above: the export is sensitive to the
  // market stream, not constant.
  EXPECT_NE(baseline.metrics_json, registry.to_json(rig.engine().now()));
}

}  // namespace
}  // namespace tsn::drills
