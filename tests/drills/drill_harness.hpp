// Deterministic failure-drill harness.
//
// A drill is a scripted end-to-end failure exercise: a dual-publishing
// exchange feeds an A/B splitter switch, a LineArbiter consumes both lines
// and republishes the arbitrated stream into a stock Normalizer, and a
// FaultInjector fires scripted faults against the A path while a market
// burst is in flight. A capture Tap ahead of the switch records the
// published (pre-loss) A-line stream, so tests can assert the arbitrated
// output is byte-identical to what the exchange sent.
//
// Scenarios are plain C++ structs — no config files — so a drill's entire
// behaviour is visible in the test that runs it, and two runs of the same
// scenario are bit-for-bit identical.
#pragma once

#include "sim/engine.hpp"
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "capture/tap.hpp"
#include "exchange/activity.hpp"
#include "exchange/exchange.hpp"
#include "fault/injector.hpp"
#include "l2/commodity_switch.hpp"
#include "net/fabric.hpp"
#include "net/headers.hpp"
#include "telemetry/metrics.hpp"
#include "trading/arbiter.hpp"
#include "trading/normalizer.hpp"
#include "wan/metro.hpp"

namespace tsn::drills {

// One scripted fault against the A path.
struct FaultAction {
  enum class Kind {
    kFlapA,       // A link admin-down for `duration`
    kRainFadeA,   // microwave-profile loss ramp on the A link (wan helper)
    kLossRampA,   // loss ramp on the A link up to `value`
    kStallPortA,  // switch egress port feeding the A consumer stalls
    kEvictGroupA,  // A group's mroute entry evicted from the switch
  };
  Kind kind = Kind::kFlapA;
  sim::Time at;
  sim::Duration duration = sim::millis(std::int64_t{1});
  double value = 0.0;  // kLossRampA peak probability
};

struct DrillScenario {
  std::string name = "drill";
  std::uint64_t seed = 1;
  sim::Duration run_for = sim::millis(std::int64_t{200});
  double events_per_second = 30'000.0;
  // Fig 2c-style activity burst: rate multiplies by `burst_multiplier`
  // inside [burst_start, burst_end).
  sim::Time burst_start;
  sim::Time burst_end;
  double burst_multiplier = 1.0;
  std::vector<FaultAction> faults;
};

namespace detail {

inline exchange::ExchangeConfig drill_exchange_config() {
  exchange::ExchangeConfig config;
  config.symbols = {
      {proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity, proto::price_from_dollars(100)},
      {proto::Symbol{"BBB"}, proto::InstrumentKind::kEquity, proto::price_from_dollars(50)}};
  config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  config.dual_publish = true;
  config.snapshot_interval = sim::millis(std::int64_t{5});
  config.feed_mac = net::MacAddr::from_host_id(1);
  config.feed_ip = net::Ipv4Addr{10, 1, 0, 1};
  config.order_mac = net::MacAddr::from_host_id(2);
  config.order_ip = net::Ipv4Addr{10, 1, 0, 2};
  return config;
}

inline exchange::ActivityConfig drill_activity(const DrillScenario& scenario) {
  exchange::ActivityConfig activity;
  activity.events_per_second = scenario.events_per_second;
  if (scenario.burst_multiplier != 1.0) {
    const sim::Time start = scenario.burst_start;
    const sim::Time end = scenario.burst_end;
    const double mult = scenario.burst_multiplier;
    activity.rate_multiplier = [start, end, mult](sim::Time t) {
      return (t >= start && t < end) ? mult : 1.0;
    };
  }
  return activity;
}

}  // namespace detail

// Exchange --tap--> switch --{A,B}--> arbiter --> normalizer, with the
// snapshot channel riding a third switch port. Faults hit the A path.
class DualFeedRig {
 public:
  static constexpr net::PortId kIngressPort = 0;
  static constexpr net::PortId kAPort = 1;
  static constexpr net::PortId kBPort = 2;
  static constexpr net::PortId kNormPort = 3;

  DualFeedRig()
      : exch_(engine_, detail::drill_exchange_config()),
        tap_(engine_, "gt-tap"),
        xsw_(engine_, "xsw", switch_config()),
        arb_(engine_, arbiter_config()),
        norm_(engine_, normalizer_config()),
        injector_(engine_) {
    // Published stream in, one tap hop ahead of any fault target.
    net::Link& to_tap = fabric_.make_link("exch->tap", net::LinkConfig{}, tap_, 0);
    exch_.feed_nic().attach_port(0, to_tap);
    net::Link& to_xsw = fabric_.make_link("tap->xsw", net::LinkConfig{}, xsw_, kIngressPort);
    tap_.attach_port(1, to_xsw);

    const net::Cable a_cable = fabric_.connect(xsw_, kAPort, arb_.a_nic(), 0, net::LinkConfig{});
    const net::Cable b_cable = fabric_.connect(xsw_, kBPort, arb_.b_nic(), 0, net::LinkConfig{});
    fabric_.connect(xsw_, kNormPort, norm_.in_nic(), 0, net::LinkConfig{});
    a_link_ = a_cable.a_to_b;
    b_link_ = b_cable.a_to_b;

    // Arbitrated output goes straight to the normalizer (its own path —
    // the drill faults the lines ahead of arbitration, not behind it).
    net::Link& arb_out =
        fabric_.make_link("arb->norm", net::LinkConfig{}, norm_.in_nic(), 0);
    arb_.out_nic().attach_port(0, arb_out);

    injector_.register_link(*a_link_);
    injector_.register_link(*b_link_);
    injector_.register_switch(xsw_);

    // Ground truth: every A-line feed datagram as published, pre-loss.
    tap_.set_record_limit(1u << 20);
    const net::Ipv4Addr a_group = exch_.unit_group(0);
    const std::uint16_t feed_port = exch_.config().feed_port;
    tap_.set_packet_hook([this, a_group, feed_port](const net::PacketPtr& packet,
                                                    net::PortId port, sim::Time) {
      if (port != 0) return;  // exchange -> switch direction only
      const auto decoded = net::decode_frame(packet->frame());
      if (!decoded || !decoded->is_udp()) return;
      if (decoded->ip->dst != a_group || decoded->udp->dst_port != feed_port) return;
      published_.emplace_back(decoded->payload.begin(), decoded->payload.end());
    });
    arb_.set_output_tap([this](std::uint8_t, std::uint32_t,
                               std::span<const std::byte> payload) {
      forwarded_.emplace_back(payload.begin(), payload.end());
    });
  }

  void schedule(const FaultAction& action) {
    switch (action.kind) {
      case FaultAction::Kind::kFlapA:
        injector_.flap(a_link_->name(), action.at, action.duration);
        break;
      case FaultAction::Kind::kRainFadeA:
        wan::schedule_rain_fade(injector_, a_link_->name(), action.at, action.duration / 2,
                                action.duration / 2);
        break;
      case FaultAction::Kind::kLossRampA:
        injector_.ramp_loss(a_link_->name(), action.at, action.duration / 2,
                            action.duration / 2, action.value);
        break;
      case FaultAction::Kind::kStallPortA:
        injector_.stall_port_at("xsw", kAPort, action.at, action.duration);
        break;
      case FaultAction::Kind::kEvictGroupA:
        injector_.evict_mroute_at("xsw", exch_.unit_group(0), action.at);
        break;
    }
  }

  void run(const DrillScenario& scenario) {
    exch_.start_snapshots();
    arb_.join_feeds();
    norm_.join_feeds();
    for (const FaultAction& action : scenario.faults) schedule(action);
    exchange::MarketActivityDriver driver{exch_, detail::drill_activity(scenario),
                                          scenario.seed};
    const sim::Time end = sim::Time::zero() + scenario.run_for;
    driver.run_until(end);
    // Extra headroom past the last market event so in-flight datagrams,
    // timers, and any recovery cycle drain deterministically.
    engine_.run_until(end + sim::millis(std::int64_t{10}));
  }

  // Every component's gauges in one registry — the telemetry surface the
  // replay-determinism drill snapshots.
  void register_all(telemetry::Registry& registry) {
    exch_.register_metrics(registry, "exch");
    xsw_.register_metrics(registry, "l2");
    arb_.register_metrics(registry, "arb");
    norm_.register_metrics(registry, "norm");
    injector_.register_metrics(registry, "fault");
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] exchange::Exchange& exch() noexcept { return exch_; }
  [[nodiscard]] l2::CommoditySwitch& xsw() noexcept { return xsw_; }
  [[nodiscard]] trading::LineArbiter& arb() noexcept { return arb_; }
  [[nodiscard]] trading::Normalizer& norm() noexcept { return norm_; }
  [[nodiscard]] fault::FaultInjector& injector() noexcept { return injector_; }
  [[nodiscard]] net::Link& a_link() noexcept { return *a_link_; }
  [[nodiscard]] net::Link& b_link() noexcept { return *b_link_; }
  [[nodiscard]] const std::vector<std::vector<std::byte>>& published() const noexcept {
    return published_;
  }
  [[nodiscard]] const std::vector<std::vector<std::byte>>& forwarded() const noexcept {
    return forwarded_;
  }

 private:
  static l2::CommoditySwitchConfig switch_config() {
    l2::CommoditySwitchConfig config;
    config.port_count = 8;
    return config;
  }

  trading::ArbiterConfig arbiter_config() {
    trading::ArbiterConfig config;
    config.a_groups = {exch_.unit_group(0)};
    config.b_groups = {exch_.unit_group_b(0)};
    config.feed_port = exch_.config().feed_port;
    config.a_mac = net::MacAddr::from_host_id(20);
    config.a_ip = net::Ipv4Addr{10, 1, 1, 1};
    config.b_mac = net::MacAddr::from_host_id(21);
    config.b_ip = net::Ipv4Addr{10, 1, 1, 2};
    config.out_mac = net::MacAddr::from_host_id(22);
    config.out_ip = net::Ipv4Addr{10, 1, 1, 3};
    return config;
  }

  trading::NormalizerConfig normalizer_config() {
    trading::NormalizerConfig config;
    config.exchange_id = 1;
    // The normalizer consumes the *arbitrated* stream, plus the exchange's
    // snapshot channel for dual-gap recovery.
    config.feed_groups = {arb_.out_group(0)};
    config.feed_port = arb_.config().out_port;
    config.snapshot_groups = {exch_.snapshot_group(0)};
    config.exchange_partitioning = std::make_shared<proto::HashPartition>(1);
    config.partitioning = std::make_shared<proto::HashPartition>(2);
    config.in_mac = net::MacAddr::from_host_id(30);
    config.in_ip = net::Ipv4Addr{10, 1, 2, 1};
    config.out_mac = net::MacAddr::from_host_id(31);
    config.out_ip = net::Ipv4Addr{10, 1, 2, 2};
    return config;
  }

  sim::Engine engine_;
  net::Fabric fabric_{engine_};
  exchange::Exchange exch_;
  capture::Tap tap_;
  l2::CommoditySwitch xsw_;
  trading::LineArbiter arb_;
  trading::Normalizer norm_;
  fault::FaultInjector injector_;
  net::Link* a_link_ = nullptr;
  net::Link* b_link_ = nullptr;
  std::vector<std::vector<std::byte>> published_;
  std::vector<std::vector<std::byte>> forwarded_;
};

// The control rig: same exchange, same switch, same faults on the same
// port — but the normalizer consumes the A line directly, no arbitration.
class SingleFeedRig {
 public:
  SingleFeedRig()
      : exch_(engine_, detail::drill_exchange_config()),
        xsw_(engine_, "xsw", switch_config()),
        norm_(engine_, normalizer_config()),
        injector_(engine_) {
    net::Link& to_xsw =
        fabric_.make_link("exch->xsw", net::LinkConfig{}, xsw_, DualFeedRig::kIngressPort);
    exch_.feed_nic().attach_port(0, to_xsw);
    const net::Cable a_cable = fabric_.connect(xsw_, DualFeedRig::kAPort, norm_.in_nic(), 0, net::LinkConfig{});
    a_link_ = a_cable.a_to_b;
    injector_.register_link(*a_link_);
    injector_.register_switch(xsw_);
  }

  void run(const DrillScenario& scenario) {
    exch_.start_snapshots();
    norm_.join_feeds();
    for (const FaultAction& action : scenario.faults) {
      // The single-feed consumer sits on the A port, so every A-path fault
      // translates directly.
      switch (action.kind) {
        case FaultAction::Kind::kFlapA:
          injector_.flap(a_link_->name(), action.at, action.duration);
          break;
        case FaultAction::Kind::kRainFadeA:
          wan::schedule_rain_fade(injector_, a_link_->name(), action.at, action.duration / 2,
                                  action.duration / 2);
          break;
        case FaultAction::Kind::kLossRampA:
          injector_.ramp_loss(a_link_->name(), action.at, action.duration / 2,
                              action.duration / 2, action.value);
          break;
        case FaultAction::Kind::kStallPortA:
          injector_.stall_port_at("xsw", DualFeedRig::kAPort, action.at, action.duration);
          break;
        case FaultAction::Kind::kEvictGroupA:
          injector_.evict_mroute_at("xsw", exch_.unit_group(0), action.at);
          break;
      }
    }
    exchange::MarketActivityDriver driver{exch_, detail::drill_activity(scenario),
                                          scenario.seed};
    const sim::Time end = sim::Time::zero() + scenario.run_for;
    driver.run_until(end);
    engine_.run_until(end + sim::millis(std::int64_t{10}));
  }

  [[nodiscard]] trading::Normalizer& norm() noexcept { return norm_; }
  [[nodiscard]] net::Link& a_link() noexcept { return *a_link_; }

 private:
  static l2::CommoditySwitchConfig switch_config() {
    l2::CommoditySwitchConfig config;
    config.port_count = 8;
    return config;
  }

  trading::NormalizerConfig normalizer_config() {
    trading::NormalizerConfig config;
    config.exchange_id = 1;
    config.feed_groups = {net::Ipv4Addr{239, 100, 0, 0}};
    config.snapshot_groups = {net::Ipv4Addr{239, 101, 0, 0}};
    config.exchange_partitioning = std::make_shared<proto::HashPartition>(1);
    config.partitioning = std::make_shared<proto::HashPartition>(2);
    config.in_mac = net::MacAddr::from_host_id(40);
    config.in_ip = net::Ipv4Addr{10, 1, 3, 1};
    config.out_mac = net::MacAddr::from_host_id(41);
    config.out_ip = net::Ipv4Addr{10, 1, 3, 2};
    return config;
  }

  sim::Engine engine_;
  net::Fabric fabric_{engine_};
  exchange::Exchange exch_;
  l2::CommoditySwitch xsw_;
  trading::Normalizer norm_;
  fault::FaultInjector injector_;
  net::Link* a_link_ = nullptr;
};

// The acceptance scenario: a 50 ms A-line flap landing inside a 6x burst.
inline DrillScenario a_flap_during_burst() {
  DrillScenario scenario;
  scenario.name = "a-flap-burst";
  scenario.seed = 41;
  scenario.run_for = sim::millis(std::int64_t{200});
  scenario.burst_start = sim::Time::zero() + sim::millis(std::int64_t{60});
  scenario.burst_end = sim::Time::zero() + sim::millis(std::int64_t{120});
  scenario.burst_multiplier = 6.0;
  FaultAction flap;
  flap.kind = FaultAction::Kind::kFlapA;
  flap.at = sim::Time::zero() + sim::millis(std::int64_t{70});
  flap.duration = sim::millis(std::int64_t{50});
  scenario.faults = {flap};
  return scenario;
}

}  // namespace tsn::drills
