// Failover drill suite: crash-primary-mid-burst, partition-then-heal
// split-brain, and crash-during-promotion, each asserting economic parity
// against a never-failed control run of the identical rig and script, plus
// two-run byte-identical telemetry for the crash drill.
//
// Parity here means: the promoted backup's book holds the same (side,
// price, qty) content as the control book (resubmitted orders draw fresh
// exchange ids and lose time priority, so the econ digest — sorted rows —
// is the right equivalence), both strategies end at the same positions, and
// every scripted client order is acked exactly once (nothing lost, nothing
// executed twice).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "failover_rig.hpp"

namespace tsn::drills {
namespace {

struct Parity {
  std::uint64_t econ_digest = 0;
  std::int64_t seller_position = 0;
  std::int64_t buyer_position = 0;
  std::set<proto::OrderId> seller_acked;
  std::set<proto::OrderId> buyer_acked;
  proto::Quantity seller_filled = 0;
  proto::Quantity buyer_filled = 0;
};

Parity collect(FailoverRig& rig, exchange::Exchange& book_owner) {
  Parity p;
  p.econ_digest = book_owner.econ_digest();
  p.seller_position = rig.seller_position();
  p.buyer_position = rig.buyer_position();
  for (const auto& ack : rig.seller_received<proto::boe::OrderAccepted>()) {
    // Exactly-once: a client order id acked twice is a double execution in
    // the making; assert uniqueness as we collect.
    EXPECT_TRUE(p.seller_acked.insert(ack.client_order_id).second)
        << "seller order " << ack.client_order_id << " acked twice";
  }
  for (const auto& ack : rig.buyer_received<proto::boe::OrderAccepted>()) {
    EXPECT_TRUE(p.buyer_acked.insert(ack.client_order_id).second)
        << "buyer order " << ack.client_order_id << " acked twice";
  }
  for (const auto& fill : rig.seller_received<proto::boe::Fill>()) {
    p.seller_filled += fill.quantity;
  }
  for (const auto& fill : rig.buyer_received<proto::boe::Fill>()) {
    p.buyer_filled += fill.quantity;
  }
  return p;
}

void expect_parity(const Parity& got, const Parity& control) {
  EXPECT_EQ(got.econ_digest, control.econ_digest);
  EXPECT_EQ(got.seller_position, control.seller_position);
  EXPECT_EQ(got.buyer_position, control.buyer_position);
  EXPECT_EQ(got.seller_acked, control.seller_acked);
  EXPECT_EQ(got.buyer_acked, control.buyer_acked);
  EXPECT_EQ(got.seller_filled, control.seller_filled);
  EXPECT_EQ(got.buyer_filled, control.buyer_filled);
}

Parity run_control() {
  FailoverRig rig{FailoverFault::kNone};
  rig.run();
  // The control pair never faults: the backup follows to the end with a
  // clean digest record and the controller never leaves kFollowing.
  EXPECT_EQ(rig.controller().state(), exchange::FailoverState::kFollowing);
  EXPECT_GT(rig.applier().stats().digests_checked, 0u);
  EXPECT_EQ(rig.applier().stats().digest_mismatches, 0u);
  EXPECT_EQ(rig.backup().state_digest(), rig.primary().state_digest());
  EXPECT_EQ(rig.backup().econ_digest(), rig.primary().econ_digest());
  EXPECT_EQ(rig.feed_gaps(), 0u);
  Parity p = collect(rig, rig.primary());
  // Guard against vacuous parity: the control run really traded. All eight
  // seller orders and all three buyer orders acked, crossing volume moved,
  // the feed published.
  EXPECT_EQ(p.seller_acked.size(), 8u);
  EXPECT_EQ(p.buyer_acked.size(), 3u);
  EXPECT_LT(p.seller_position, 0);
  EXPECT_GT(p.buyer_position, 0);
  EXPECT_NE(p.econ_digest, 0u);
  EXPECT_GT(rig.feed_messages(), 0u);
  return p;
}

TEST(FailoverDrills, CrashPrimaryMidBurstPromotesWithParity) {
  const Parity control = run_control();

  FailoverRig rig{FailoverFault::kCrashPrimary};
  rig.run();

  // The backup promoted within the detector's budget: suspect_after (2ms)
  // + promote_after (1ms) + promote_replay (0.2ms) + one heartbeat gap and
  // poll-quantization slack.
  ASSERT_EQ(rig.controller().state(), exchange::FailoverState::kActive);
  EXPECT_EQ(rig.controller().stats().promotions, 1u);
  EXPECT_GT(rig.controller().recovery_duration(), sim::Duration::zero());
  EXPECT_LT(rig.controller().recovery_duration(), sim::millis(std::int64_t{5}));

  // Both gateways re-homed onto the backup and drained their queues.
  EXPECT_EQ(rig.seller_gw().upstream_endpoint_index(), 1u);
  EXPECT_EQ(rig.buyer_gw().upstream_endpoint_index(), 1u);
  EXPECT_EQ(rig.seller_gw().upstream_state(), trading::UpstreamState::kReady);
  EXPECT_EQ(rig.buyer_gw().upstream_state(), trading::UpstreamState::kReady);

  // Replication never diverged while the primary lived.
  EXPECT_EQ(rig.applier().stats().digest_mismatches, 0u);
  // The feed stream is one gapless PITCH sequence across the handover.
  EXPECT_EQ(rig.feed_gaps(), 0u);

  // Economic parity with the never-failed control: same book content, same
  // positions, every order acked exactly once, same total fills.
  expect_parity(collect(rig, rig.backup()), control);
}

TEST(FailoverDrills, PartitionHealFencesStalePrimary) {
  const Parity control = run_control();

  FailoverRig rig{FailoverFault::kPartitionHeal};
  std::uint64_t feed_at_fence = 0;
  bool primary_fenced_at_12ms = false;
  // The heal lands at 10ms and the applier's next status datagram carries
  // epoch 2; by 12ms the stale primary must have fenced itself.
  rig.probe_at(12000, [&] {
    primary_fenced_at_12ms = rig.primary().fenced();
    feed_at_fence = rig.primary().stats().feed_datagrams;
  });
  rig.run();

  // Split-brain resolved: the backup promoted under a bumped epoch, and the
  // healed primary heard it and silenced itself.
  ASSERT_EQ(rig.controller().state(), exchange::FailoverState::kActive);
  EXPECT_GT(rig.applier().epoch(), rig.stream().epoch());
  EXPECT_TRUE(primary_fenced_at_12ms);
  EXPECT_TRUE(rig.stream().fenced());
  EXPECT_TRUE(rig.primary().fenced());
  // The fenced primary emitted nothing after the epoch bump reached it:
  // its feed datagram count is frozen from the fence instant to the end of
  // the drill (orders at 16ms and 20ms only ever reach the backup).
  EXPECT_EQ(rig.primary().stats().feed_datagrams, feed_at_fence);
  EXPECT_EQ(rig.feed_gaps(), 0u);

  expect_parity(collect(rig, rig.backup()), control);
}

TEST(FailoverDrills, CrashDuringPromotionStillConverges) {
  const Parity control = run_control();

  FailoverRig rig{FailoverFault::kCrashDuringPromotion};
  exchange::FailoverState state_at_crash = exchange::FailoverState::kFollowing;
  rig.probe_at(7500, [&] { state_at_crash = rig.controller().state(); });
  rig.run();

  // The probe shares the crash instant; scheduled before the run it fires
  // ahead of the fault, so it reads the state the crash actually hit.
  EXPECT_EQ(state_at_crash, exchange::FailoverState::kPromoting);
  ASSERT_EQ(rig.controller().state(), exchange::FailoverState::kActive);
  EXPECT_EQ(rig.controller().stats().promotions, 1u);
  EXPECT_EQ(rig.applier().stats().digest_mismatches, 0u);
  EXPECT_EQ(rig.feed_gaps(), 0u);

  expect_parity(collect(rig, rig.backup()), control);
}

TEST(FailoverDrills, CrashDrillTelemetryIsByteIdentical) {
  const auto run_once = [] {
    FailoverRig rig{FailoverFault::kCrashPrimary};
    rig.run();
    telemetry::Registry registry;
    rig.register_all(registry);
    return registry.to_json(rig.engine().now()) + rig.injector().log_json();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tsn::drills
