// Shard-determinism drills: the multi-partition market deployment run on
// the sharded engine must converge to the same end state as the
// single-threaded golden reference, at any worker count, on every run.
//
// Three gates:
//   * golden vs plain Engine — the same rig over both schedulers lands on
//     the same digest (the bridged links change only the delivery hop);
//   * golden vs windowed at 1, 2 and 4 workers — digest equality;
//   * run-twice — a windowed run repeated with the same seed exports
//     byte-identical telemetry JSON (and digests).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "deploy/sharded_market.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::drills {
namespace {

deploy::ShardedMarketConfig drill_market() {
  deploy::ShardedMarketConfig config;
  config.partitions = 4;
  config.seed = 11;
  config.events_per_second = 20'000.0;
  config.run_for = sim::millis(std::int64_t{40});
  return config;
}

struct RunResult {
  std::uint64_t digest = 0;
  std::string metrics_json;
};

RunResult run_plain(const deploy::ShardedMarketConfig& config) {
  sim::Engine engine;
  deploy::ShardedMarket market{engine, config};
  market.run();
  RunResult result;
  result.digest = market.digest();
  telemetry::Registry registry;
  for (std::size_t p = 0; p < config.partitions; ++p) {
    market.register_partition_metrics(p, registry);
  }
  result.metrics_json = registry.to_json(engine.now());
  return result;
}

RunResult run_sharded(const deploy::ShardedMarketConfig& config, sim::SyncMode mode,
                      std::uint32_t workers) {
  sim::ShardedEngine engine{
      {.domains = config.partitions, .num_workers = workers, .mode = mode}};
  deploy::ShardedMarket market{engine, config};
  market.run();
  RunResult result;
  result.digest = market.digest();
  telemetry::Registry registry;
  for (std::size_t p = 0; p < config.partitions; ++p) {
    market.register_partition_metrics(p, registry);
  }
  result.metrics_json = registry.to_json(engine.now());
  return result;
}

TEST(ShardDrills, GoldenShardingMatchesThePlainEngine) {
  const deploy::ShardedMarketConfig config = drill_market();
  const RunResult plain = run_plain(config);
  const RunResult golden = run_sharded(config, sim::SyncMode::kGolden, 1);
  EXPECT_EQ(golden.digest, plain.digest);
  EXPECT_EQ(golden.metrics_json, plain.metrics_json);
}

TEST(ShardDrills, ParallelDigestsMatchGoldenAtEveryWorkerCount) {
  const deploy::ShardedMarketConfig config = drill_market();
  const RunResult golden = run_sharded(config, sim::SyncMode::kGolden, 1);
  ASSERT_NE(golden.digest, 0u);
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    const RunResult windowed = run_sharded(config, sim::SyncMode::kWindowed, workers);
    EXPECT_EQ(windowed.digest, golden.digest) << "workers=" << workers;
    EXPECT_EQ(windowed.metrics_json, golden.metrics_json) << "workers=" << workers;
  }
}

TEST(ShardDrills, WindowedRunsAreByteIdenticalAcrossRepeats) {
  const deploy::ShardedMarketConfig config = drill_market();
  const RunResult first = run_sharded(config, sim::SyncMode::kWindowed, 4);
  const RunResult second = run_sharded(config, sim::SyncMode::kWindowed, 4);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(ShardDrills, CrossPartitionFeedReachesTheObservers) {
  // The ring actually carries data: every observer decodes the previous
  // partition's feed gap-free and reconstructs its books.
  const deploy::ShardedMarketConfig config = drill_market();
  sim::ShardedEngine engine{{.domains = config.partitions, .num_workers = 4}};
  deploy::ShardedMarket market{engine, config};
  market.run();
  for (std::size_t p = 0; p < config.partitions; ++p) {
    ASSERT_NE(market.observer(p), nullptr);
    const trading::NormalizerStats& stats = market.observer(p)->stats();
    EXPECT_GT(stats.datagrams_in, 0u) << "partition " << p;
    EXPECT_GT(stats.bbo_updates, 0u) << "partition " << p;
    EXPECT_EQ(stats.sequence_gaps, 0u) << "partition " << p;
    const std::size_t source = (p + config.partitions - 1) % config.partitions;
    EXPECT_EQ(market.observer(p)->tracked_orders(),
              market.norm(source).tracked_orders())
        << "partition " << p;
  }
}

TEST(ShardDrills, SinglePartitionDegeneratesCleanly) {
  deploy::ShardedMarketConfig config = drill_market();
  config.partitions = 1;
  config.run_for = sim::millis(std::int64_t{10});
  const RunResult plain = run_plain(config);
  const RunResult sharded = run_sharded(config, sim::SyncMode::kWindowed, 2);
  EXPECT_EQ(sharded.digest, plain.digest);
}

}  // namespace
}  // namespace tsn::drills
