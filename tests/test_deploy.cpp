#include <gtest/gtest.h>

#include "deploy/multicolo.hpp"
#include "deploy/reference.hpp"

namespace tsn::deploy {
namespace {

DeploymentConfig small_config() {
  DeploymentConfig config;
  config.strategy_count = 2;
  config.symbol_count = 4;
  config.events_per_second = 20'000;
  return config;
}

TEST(Deploy, LeafSpineEndToEnd) {
  LeafSpineDeployment deployment{small_config()};
  deployment.start();
  EXPECT_TRUE(deployment.gateway().upstream_ready());
  deployment.run(sim::millis(std::int64_t{60}));
  const auto report = deployment.report();
  EXPECT_GT(report.feed_datagrams, 100u);
  EXPECT_GT(report.normalized_updates, 100u);
  EXPECT_EQ(report.sequence_gaps, 0u);
  EXPECT_GT(report.updates_received, 100u);
  EXPECT_GT(report.orders_sent, 0u);
  EXPECT_EQ(report.acks, report.orders_sent);
  EXPECT_EQ(report.frames_dropped, 0u);
  // Software hop (0.9 us) + decision (2 us).
  EXPECT_NEAR(report.tick_to_trade_ns.mean(), 2'900.0, 10.0);
  // Feed path crosses two leaf-spine-leaf legs plus the normalizer.
  EXPECT_GT(report.feed_path_ns.mean(), 4'000.0);
  EXPECT_LT(report.feed_path_ns.mean(), 8'000.0);
}

TEST(Deploy, QuadL1sEndToEnd) {
  QuadL1sDeployment deployment{small_config()};
  deployment.start();
  EXPECT_TRUE(deployment.gateway().upstream_ready());
  deployment.run(sim::millis(std::int64_t{60}));
  const auto report = deployment.report();
  EXPECT_GT(report.updates_received, 100u);
  EXPECT_GT(report.orders_sent, 0u);
  EXPECT_EQ(report.acks, report.orders_sent);
  EXPECT_EQ(report.sequence_gaps, 0u);
  // The circuit fabric is dramatically faster than leaf-spine switching.
  EXPECT_LT(report.feed_path_ns.mean(), 2'500.0);
}

TEST(Deploy, L1sFeedPathBeatsLeafSpine) {
  LeafSpineDeployment leaf{small_config()};
  leaf.start();
  leaf.run(sim::millis(std::int64_t{40}));
  QuadL1sDeployment quad{small_config()};
  quad.start();
  quad.run(sim::millis(std::int64_t{40}));
  EXPECT_LT(quad.report().feed_path_ns.mean(), leaf.report().feed_path_ns.mean() * 0.5);
}

TEST(Deploy, ReportMergesAllStrategies) {
  auto config = small_config();
  config.strategy_count = 3;
  LeafSpineDeployment deployment{config};
  deployment.start();
  deployment.run(sim::millis(std::int64_t{40}));
  const auto report = deployment.report();
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < deployment.strategy_count(); ++s) {
    sum += deployment.strategy(s).stats().updates_received;
  }
  EXPECT_EQ(report.updates_received, sum);
  EXPECT_EQ(deployment.strategy_count(), 3u);
}

TEST(Deploy, MembershipsSurviveSwitchAgingBecauseHostsRespond) {
  // Leaf and spine switches run IGMP queriers with aggressive aging; the
  // stack's IGMP responders must keep every feed membership alive for the
  // whole session.
  auto topo_config = LeafSpineDeployment::default_topo();
  topo_config.leaf_switch.igmp_query_interval = sim::millis(std::int64_t{15});
  topo_config.leaf_switch.membership_timeout = sim::millis(std::int64_t{40});
  topo_config.spine_switch.igmp_query_interval = sim::millis(std::int64_t{15});
  topo_config.spine_switch.membership_timeout = sim::millis(std::int64_t{40});
  LeafSpineDeployment deployment{small_config(), topo_config};
  deployment.start();
  for (std::size_t l = 0; l < deployment.topology().leaf_count(); ++l) {
    deployment.topology().leaf(l).start_querier();
  }
  for (std::size_t s = 0; s < deployment.topology().spine_count(); ++s) {
    deployment.topology().spine(s).start_querier();
  }
  deployment.run_bounded(sim::millis(std::int64_t{100}));
  const auto mid = deployment.report();
  EXPECT_GT(mid.updates_received, 100u);
  deployment.run_bounded(sim::millis(std::int64_t{100}));
  const auto end = deployment.report();
  // Still flowing in the second half: memberships never lapsed.
  EXPECT_GT(end.updates_received, mid.updates_received + 100);
  EXPECT_EQ(end.sequence_gaps, 0u);
  // No live membership was aged out anywhere.
  for (std::size_t l = 0; l < deployment.topology().leaf_count(); ++l) {
    EXPECT_EQ(deployment.topology().leaf(l).memberships_aged_out(), 0u) << "leaf " << l;
  }
  EXPECT_GT(deployment.topology().leaf(1).mroutes().group_count(), 0u);
  EXPECT_GT(deployment.topology().spine(0).mroutes().group_count(), 0u);
}

TEST(MultiColo, MicrowaveBeatsFiberEndToEnd) {
  MultiColoConfig fiber_config;
  fiber_config.apps = small_config();
  fiber_config.wan_tech = wan::LinkTech::kFiber;
  MultiColoDeployment fiber{fiber_config};
  fiber.start();
  fiber.run(sim::millis(std::int64_t{50}));

  MultiColoConfig mw_config;
  mw_config.apps = small_config();
  mw_config.wan_tech = wan::LinkTech::kMicrowave;
  MultiColoDeployment microwave{mw_config};
  microwave.start();
  microwave.run(sim::millis(std::int64_t{50}));

  const auto fiber_report = fiber.report();
  const auto mw_report = microwave.report();
  EXPECT_EQ(fiber_report.sequence_gaps, 0u);
  EXPECT_EQ(mw_report.sequence_gaps, 0u);
  // The feed path difference is dominated by the WAN propagation delta.
  const double advantage_us =
      (fiber_report.feed_path_ns.mean() - mw_report.feed_path_ns.mean()) / 1'000.0;
  const double expected_us =
      (fiber.wan_delay() - microwave.wan_delay()).micros();
  EXPECT_NEAR(advantage_us, expected_us, 8.0);
  EXPECT_GT(advantage_us, 20.0);
}

TEST(MultiColo, RainCausesGapsOnMicrowaveOnly) {
  MultiColoConfig config;
  config.apps = small_config();
  config.wan_tech = wan::LinkTech::kMicrowave;
  config.raining = true;
  MultiColoDeployment deployment{config};
  deployment.start();
  deployment.run(sim::millis(std::int64_t{80}));
  const auto report = deployment.report();
  // Feed datagrams die on the rain-faded WAN; the normalizer notices.
  EXPECT_GT(report.sequence_gaps, 0u);
  EXPECT_GT(report.frames_dropped, 0u);

  MultiColoConfig fiber_config = config;
  fiber_config.wan_tech = wan::LinkTech::kFiber;
  MultiColoDeployment fiber{fiber_config};
  fiber.start();
  fiber.run(sim::millis(std::int64_t{80}));
  EXPECT_EQ(fiber.report().sequence_gaps, 0u);
}

TEST(MultiColo, OrdersFlowAcrossTheWan) {
  MultiColoConfig config;
  config.apps = small_config();
  MultiColoDeployment deployment{config};
  deployment.start();
  EXPECT_TRUE(deployment.gateway().upstream_ready());
  deployment.run(sim::millis(std::int64_t{60}));
  const auto report = deployment.report();
  EXPECT_GT(report.orders_sent, 0u);
  EXPECT_EQ(report.acks, report.orders_sent);
  // Order RTT includes two WAN crossings.
  EXPECT_GT(report.order_rtt_ns.mean() / 1'000.0, 2.0 * deployment.wan_delay().micros());
}

}  // namespace
}  // namespace tsn::deploy
