// A/B line arbitration: dedup, reorder, and dual-gap semantics.
//
// The load-bearing property (§4's redundancy argument): for ANY loss
// pattern in which the union of the A and B lines covers every sequence
// number, the arbitrated output is byte-identical to the lossless
// published stream. The property test below drives 120 seeded-random loss
// masks and delivery jitters through the arbitration core directly.
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include <vector>

#include "proto/pitch.hpp"
#include "sim/random.hpp"
#include "trading/arbiter.hpp"

namespace tsn::trading {
namespace {

ArbiterConfig test_config() {
  ArbiterConfig config;
  config.republish = false;  // output observed through the tap only
  config.a_mac = net::MacAddr::from_host_id(1);
  config.a_ip = net::Ipv4Addr{10, 9, 0, 1};
  config.b_mac = net::MacAddr::from_host_id(2);
  config.b_ip = net::Ipv4Addr{10, 9, 0, 2};
  config.out_mac = net::MacAddr::from_host_id(3);
  config.out_ip = net::Ipv4Addr{10, 9, 0, 3};
  return config;
}

// Builds `count` PITCH datagrams for unit 0, 1..4 messages each, with
// consecutive sequence numbers. Returns the per-datagram payload bytes.
std::vector<std::vector<std::byte>> build_stream(std::size_t count, sim::Rng& rng) {
  std::vector<std::vector<std::byte>> datagrams;
  proto::pitch::FrameBuilder builder{
      0, 1458, [&datagrams](std::vector<std::byte> payload, const proto::pitch::UnitHeader&) {
        datagrams.push_back(std::move(payload));
      }};
  for (std::size_t d = 0; d < count; ++d) {
    const auto messages = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t m = 0; m < messages; ++m) {
      proto::pitch::AddOrder add;
      add.order_id = d * 10 + m + 1;
      add.symbol = proto::Symbol{"AAA"};
      add.price = proto::price_from_dollars(10.0 + static_cast<double>(d));
      add.quantity = 100;
      builder.append(proto::pitch::Message{add});
    }
    builder.flush();
  }
  return datagrams;
}

TEST(LineArbiter, UnionCoverageReproducesLosslessStreamExactly) {
  constexpr int kCases = 120;
  for (int c = 0; c < kCases; ++c) {
    const auto seed = static_cast<std::uint64_t>(c) * 7919 + 17;
    sim::Rng rng{seed};
    sim::Engine engine;
    ArbiterConfig config = test_config();
    // Far larger than the worst scripted jitter: a held datagram must
    // always be resolved by the lagging line, never by a gap declaration.
    config.gap_timeout = sim::millis(std::int64_t{5});
    LineArbiter arb{engine, config};
    std::vector<std::vector<std::byte>> output;
    arb.set_output_tap([&output](std::uint8_t, std::uint32_t,
                                 std::span<const std::byte> payload) {
      output.emplace_back(payload.begin(), payload.end());
    });

    const auto lossless = build_stream(40, rng);
    for (std::size_t d = 0; d < lossless.size(); ++d) {
      bool on_a = rng.bernoulli(0.7);
      bool on_b = rng.bernoulli(0.7);
      if (!on_a && !on_b) {  // the property's precondition: A∪B covers all
        (rng.bernoulli(0.5) ? on_a : on_b) = true;
      }
      // Nominal spacing 10 us, per-line jitter up to 25 us: copies reorder
      // across datagram boundaries and between lines. Datagram 0 is
      // delivered un-jittered at t=0 so the arbiter syncs at the true
      // stream head (the receiver is up before the stream starts) rather
      // than mid-stream, where discarding the pre-sync prefix is correct.
      const sim::Time base = sim::Time::zero() + sim::micros(static_cast<std::int64_t>(d) * 10);
      const std::vector<std::byte>& payload = lossless[d];
      if (on_a) {
        const auto jitter = sim::micros(d == 0 ? 0 : rng.uniform_int(0, 25));
        engine.schedule_at(base + jitter,
                           [&arb, &payload] { arb.on_datagram(Line::kA, payload); });
      }
      if (on_b) {
        const auto jitter = sim::micros(d == 0 ? 0 : rng.uniform_int(0, 25));
        engine.schedule_at(base + jitter,
                           [&arb, &payload] { arb.on_datagram(Line::kB, payload); });
      }
    }
    engine.run();

    ASSERT_EQ(output.size(), lossless.size()) << "seed " << seed;
    for (std::size_t d = 0; d < lossless.size(); ++d) {
      ASSERT_EQ(output[d], lossless[d]) << "seed " << seed << " datagram " << d;
    }
    EXPECT_EQ(arb.stats().dual_gaps, 0u) << "seed " << seed;
    EXPECT_EQ(arb.stats().sequences_lost, 0u) << "seed " << seed;
    EXPECT_EQ(arb.stats().forwarded, lossless.size()) << "seed " << seed;
  }
}

TEST(LineArbiter, DuplicateCopiesAreDiscarded) {
  sim::Engine engine;
  LineArbiter arb{engine, test_config()};
  sim::Rng rng{1};
  const auto stream = build_stream(5, rng);
  for (const auto& payload : stream) {
    arb.on_datagram(Line::kA, payload);
    arb.on_datagram(Line::kB, payload);
  }
  EXPECT_EQ(arb.stats().forwarded, 5u);
  EXPECT_EQ(arb.stats().duplicates, 5u);
  EXPECT_EQ(arb.stats().dual_gaps, 0u);
}

TEST(LineArbiter, DualGapIsDeclaredOnlyAfterTimeout) {
  sim::Engine engine;
  ArbiterConfig config = test_config();
  config.gap_timeout = sim::micros(std::int64_t{100});
  LineArbiter arb{engine, config};
  std::vector<std::uint32_t> forwarded_seqs;
  arb.set_output_tap([&forwarded_seqs](std::uint8_t, std::uint32_t seq,
                                       std::span<const std::byte>) {
    forwarded_seqs.push_back(seq);
  });
  sim::Rng rng{2};
  const auto stream = build_stream(3, rng);  // sequences 1.., contiguous
  arb.on_datagram(Line::kA, stream[0]);
  // Datagram 1 lost on BOTH lines; datagram 2 arrives ahead of sequence.
  arb.on_datagram(Line::kB, stream[2]);
  EXPECT_EQ(arb.stats().held, 1u);
  EXPECT_EQ(arb.stats().forwarded, 1u);

  // Before the timeout nothing is declared...
  engine.run_until(engine.now() + sim::micros(std::int64_t{50}));
  EXPECT_EQ(arb.stats().dual_gaps, 0u);
  // ...after it, the held datagram is released past the hole.
  engine.run_until(engine.now() + sim::micros(std::int64_t{100}));
  EXPECT_EQ(arb.stats().dual_gaps, 1u);
  EXPECT_EQ(arb.stats().forwarded, 2u);
  const auto first_header = proto::pitch::peek_header(stream[0]);
  const auto second_header = proto::pitch::peek_header(stream[1]);
  ASSERT_TRUE(first_header && second_header);
  EXPECT_EQ(arb.stats().sequences_lost, second_header->count);
  // A straggling copy of the skipped datagram must NOT be forwarded late —
  // downstream consumers would rewind their sequence tracking.
  arb.on_datagram(Line::kA, stream[1]);
  EXPECT_EQ(arb.stats().forwarded, 2u);
  EXPECT_EQ(arb.stats().duplicates, 1u);
  ASSERT_EQ(forwarded_seqs.size(), 2u);
  EXPECT_EQ(forwarded_seqs[0], first_header->sequence);
}

TEST(LineArbiter, MalformedDatagramsAreCountedNotForwarded) {
  sim::Engine engine;
  LineArbiter arb{engine, test_config()};
  const std::vector<std::byte> junk(3, std::byte{0x5a});
  arb.on_datagram(Line::kA, junk);
  EXPECT_EQ(arb.stats().malformed, 1u);
  EXPECT_EQ(arb.stats().forwarded, 0u);
}

}  // namespace
}  // namespace tsn::trading
