// Snapshot-based gap recovery: the exchange's recovery channel plus the
// normalizer's resync logic turn detected feed loss (mroute overflow,
// merged-feed drops, microwave rain fade — all §3/§4 failure modes) into
// a bounded outage instead of permanently corrupt book state.
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include "exchange/activity.hpp"
#include "exchange/exchange.hpp"
#include "net/fabric.hpp"
#include "trading/normalizer.hpp"

namespace tsn::trading {
namespace {

// Deterministic frame-loss gate: while armed, drops every Nth forwarded
// frame.
class DropGate final : public net::PortedDevice {
 public:
  explicit DropGate(int drop_every) : drop_every_(drop_every) {}

  void attach_port(net::PortId, net::Link& egress) noexcept override { egress_ = &egress; }
  void receive(const net::PacketPtr& packet, net::PortId) override {
    ++seen_;
    if (armed_ && seen_ % drop_every_ == 0) {
      ++dropped_;
      return;
    }
    if (egress_ != nullptr) egress_->transmit(packet);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "dropgate"; }

  void disarm() noexcept { armed_ = false; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  net::Link* egress_ = nullptr;
  int drop_every_;
  bool armed_ = true;
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
};

struct RecoveryRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange exch;
  Normalizer normalizer;
  DropGate gate{5};  // drop 20% of live/snapshot frames while armed

  static exchange::ExchangeConfig exchange_config() {
    exchange::ExchangeConfig config;
    config.symbols = {{proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity,
                       proto::price_from_dollars(100)},
                      {proto::Symbol{"BBB"}, proto::InstrumentKind::kEquity,
                       proto::price_from_dollars(50)}};
    config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
    config.snapshot_interval = sim::millis(std::int64_t{5});
    config.feed_mac = net::MacAddr::from_host_id(1);
    config.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
    config.order_mac = net::MacAddr::from_host_id(2);
    config.order_ip = net::Ipv4Addr{10, 0, 0, 2};
    return config;
  }

  static NormalizerConfig normalizer_config(bool with_snapshots) {
    NormalizerConfig config;
    config.exchange_id = 1;
    config.feed_groups = {net::Ipv4Addr{239, 100, 0, 0}};
    config.partitioning = std::make_shared<proto::HashPartition>(2);
    if (with_snapshots) {
      config.snapshot_groups = {net::Ipv4Addr{239, 101, 0, 0}};
      config.exchange_partitioning = std::make_shared<proto::HashPartition>(1);
    }
    config.in_mac = net::MacAddr::from_host_id(10);
    config.in_ip = net::Ipv4Addr{10, 0, 1, 1};
    config.out_mac = net::MacAddr::from_host_id(11);
    config.out_ip = net::Ipv4Addr{10, 0, 1, 2};
    return config;
  }

  explicit RecoveryRig(bool with_snapshots)
      : exch(engine, exchange_config()),
        normalizer(engine, normalizer_config(with_snapshots)) {
    // exchange feed -> gate -> normalizer (one-way; joins flow back clean).
    // A 200 us path (e.g. a cross-colo hop) makes the window between the
    // exchange's snapshot tick and its arrival wide enough that live
    // messages land in it — the buffered tail the replay covers.
    net::LinkConfig far;
    far.propagation = sim::micros(std::int64_t{200});
    net::Link& to_gate = fabric.make_link("feed->gate", far, gate, 0);
    exch.feed_nic().attach_port(0, to_gate);
    net::Link& to_norm = fabric.make_link("gate->norm", far, normalizer.in_nic(), 0);
    gate.attach_port(0, to_norm);
    net::Link& back =
        fabric.make_link("norm->feed", net::LinkConfig{}, exch.feed_nic(), 0);
    normalizer.in_nic().attach_port(0, back);
    normalizer.join_feeds();
  }

  void run_market(std::int64_t ms, std::uint64_t seed) {
    exchange::ActivityConfig activity;
    activity.events_per_second = 30'000;
    exchange::MarketActivityDriver driver{exch, activity, seed};
    driver.run_until(engine.now() + sim::millis(ms));
    engine.run_until(engine.now() + sim::millis(ms));
  }
};

TEST(SnapshotRecovery, ResyncRestoresConsistency) {
  RecoveryRig rig{/*with_snapshots=*/true};
  rig.exch.start_snapshots();
  rig.run_market(100, 21);
  EXPECT_GT(rig.gate.dropped(), 10u);
  EXPECT_GT(rig.normalizer.stats().sequence_gaps, 0u);
  EXPECT_GT(rig.normalizer.stats().resyncs_started, 0u);
  EXPECT_GT(rig.normalizer.stats().resyncs_completed, 0u);
  EXPECT_GT(rig.normalizer.stats().snapshot_orders_applied, 0u);

  // Heal the path, let the market settle, and give recovery a few cycles.
  rig.gate.disarm();
  rig.run_market(30, 22);
  rig.engine.run_until(rig.engine.now() + sim::millis(std::int64_t{30}));

  // The normalizer's reconstructed BBO matches the exchange's books.
  for (const auto& spec : rig.exch.symbols()) {
    const auto truth = rig.exch.book(spec.symbol).best();
    const auto reconstructed = rig.normalizer.best_of(spec.symbol);
    if (!truth.bid_price && !truth.ask_price) continue;
    ASSERT_TRUE(reconstructed.has_value()) << spec.symbol.str();
    EXPECT_EQ(reconstructed->bid, truth.bid_price.value_or(0)) << spec.symbol.str();
    EXPECT_EQ(reconstructed->ask, truth.ask_price.value_or(0)) << spec.symbol.str();
  }
}

TEST(SnapshotRecovery, WithoutSnapshotsStateStaysCorrupt) {
  RecoveryRig rig{/*with_snapshots=*/false};
  rig.run_market(100, 21);
  EXPECT_GT(rig.normalizer.stats().sequence_gaps, 0u);
  EXPECT_EQ(rig.normalizer.stats().resyncs_started, 0u);
  // Lost adds leave later executes/deletes unresolvable.
  EXPECT_GT(rig.normalizer.stats().unknown_orders, 0u);
}

// On a single FIFO path the live tail always queues behind the snapshot
// cycle, so replay never fires (ResyncRestoresConsistency covers that).
// Replay matters when snapshots arrive over a separate path and interleave
// with live traffic — emulated here by hand-sequencing datagrams straight
// into the normalizer.
TEST(SnapshotRecovery, BufferedLiveTailIsReplayed) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  Normalizer normalizer{engine, RecoveryRig::normalizer_config(true)};
  net::Nic live{engine, "live", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic snap{engine, "snap", net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 2}};
  // Two independent one-way paths into the normalizer's NIC.
  net::Link& live_link = fabric.make_link("live->norm", net::LinkConfig{},
                                          normalizer.in_nic(), 0);
  live.attach_port(0, live_link);
  net::Link& snap_link = fabric.make_link("snap->norm", net::LinkConfig{},
                                          normalizer.in_nic(), 0);
  snap.attach_port(0, snap_link);
  normalizer.join_feeds();
  engine.run();

  auto live_frame = [&](std::uint32_t seq, proto::OrderId id, bool is_add) {
    std::vector<std::byte> payload;
    proto::pitch::FrameBuilder builder{
        0, 1458, [&payload](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
          payload = std::move(p);
        }};
    // FrameBuilder numbers from 1; advance it to the target sequence.
    while (builder.next_sequence() < seq) {
      builder.append(proto::pitch::Message{proto::pitch::Time{34'200}});
    }
    // Drop the warm-up frames on the floor by flushing then rebuilding.
    builder.flush();
    payload.clear();
    if (is_add) {
      proto::pitch::AddOrder add;
      add.order_id = id;
      add.symbol = proto::Symbol{"AAA"};
      add.price = proto::price_from_dollars(10);
      add.quantity = 100;
      builder.append(proto::pitch::Message{add});
    } else {
      builder.append(proto::pitch::Message{proto::pitch::DeleteOrder{0, id}});
    }
    builder.flush();
    live.send_frame(net::build_multicast_frame(live.mac(), live.ip(),
                                               net::Ipv4Addr{239, 100, 0, 0}, 30001, payload));
    engine.run();
  };

  // seq 1, 2 arrive; seq 3 is lost; seq 4, 5 arrive during the outage.
  live_frame(1, 101, true);
  live_frame(2, 102, true);
  // (seq 3, an add of order 103, never arrives)
  live_frame(4, 104, true);   // gap detected here; buffered
  live_frame(5, 102, false);  // delete of order 102; buffered
  EXPECT_EQ(normalizer.stats().sequence_gaps, 1u);
  EXPECT_EQ(normalizer.stats().messages_buffered_in_recovery, 2u);

  // Snapshot covering state as of seq 4 (orders 101, 102, 103 resting).
  std::vector<std::vector<std::byte>> snapshot_payloads;
  proto::pitch::FrameBuilder sbuilder{
      0, 1458, [&](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
        snapshot_payloads.push_back(std::move(p));
      }};
  sbuilder.append(proto::pitch::Message{proto::pitch::SnapshotBegin{0, 4}});
  for (proto::OrderId id : {101, 102, 103}) {
    proto::pitch::AddOrder add;
    add.order_id = id;
    add.symbol = proto::Symbol{"AAA"};
    add.price = proto::price_from_dollars(10);
    add.quantity = 100;
    sbuilder.append(proto::pitch::Message{add});
  }
  sbuilder.append(proto::pitch::Message{proto::pitch::SnapshotEnd{0, 3}});
  sbuilder.flush();
  for (auto& payload : snapshot_payloads) {
    snap.send_frame(net::build_multicast_frame(snap.mac(), snap.ip(),
                                               net::Ipv4Addr{239, 101, 0, 0}, 30002, payload));
  }
  engine.run();

  const auto& stats = normalizer.stats();
  EXPECT_EQ(stats.resyncs_completed, 1u);
  EXPECT_EQ(stats.snapshot_orders_applied, 3u);
  // The buffered tail (seq 4 add of 104, seq 5 delete of 102) replayed.
  EXPECT_EQ(stats.messages_replayed_after_recovery, 2u);
  // Final state: orders 101, 103, 104 tracked (102 deleted by the replay).
  EXPECT_EQ(normalizer.tracked_orders(), 3u);
}

TEST(SnapshotRecovery, RequiresExchangePartitioning) {
  sim::Engine engine;
  auto config = RecoveryRig::normalizer_config(true);
  config.exchange_partitioning = nullptr;
  EXPECT_THROW(Normalizer(engine, std::move(config)), std::invalid_argument);
}

TEST(SnapshotRecovery, ExchangePublishesSnapshotsPeriodically) {
  sim::Engine engine;
  exchange::Exchange exch{engine, RecoveryRig::exchange_config()};
  exch.book(proto::Symbol{"AAA"})
      .submit({exch.next_order_id(), proto::Side::kBuy, proto::price_from_dollars(99), 100});
  exch.start_snapshots();
  engine.run_until(engine.now() + sim::millis(std::int64_t{26}));
  // 5 ms interval, one snapshot per unit per tick.
  EXPECT_EQ(exch.snapshots_published(), 5u);
  auto start_with_zero_interval = [] {
    sim::Engine e2;
    auto config = RecoveryRig::exchange_config();
    config.snapshot_interval = sim::Duration::zero();
    exchange::Exchange x{e2, std::move(config)};
    x.start_snapshots();
  };
  EXPECT_THROW(start_with_zero_interval(), std::invalid_argument);
}

}  // namespace
}  // namespace tsn::trading
