// WireReader / WireWriter sticky-failure contract, edge by edge.
//
// Every decoder in the tree leans on these semantics: a read past the end
// sets a sticky flag, returns zeros, and keeps returning zeros — so one
// `ok()` check after a burst of reads is sufficient. These tests pin the
// contract down where it is easiest to get wrong: reads straddling the end
// of the buffer, zero-length operations, and writer patch offsets.
#include <gtest/gtest.h>

#include <vector>

#include "net/wire.hpp"

namespace tsn::net {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(WireReader, AsciiStraddlingEndOfBufferFailsAndReturnsEmpty) {
  const auto data = bytes_of({'A', 'B', 'C'});
  WireReader r{data};
  const auto text = r.ascii(8);  // 3 bytes available, 8 requested
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(text.empty());
  // The failed read consumed the reader to the end; nothing dribbles out.
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireReader, AsciiExactlyAtEndSucceeds) {
  const auto data = bytes_of({'A', 'B', ' ', ' '});
  WireReader r{data};
  EXPECT_EQ(r.ascii(4), "AB");  // trailing spaces stripped
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireReader, ZeroLengthOperationsNeverFail) {
  const std::vector<std::byte> empty;
  WireReader r{empty};
  EXPECT_EQ(r.bytes(0).size(), 0u);
  EXPECT_EQ(r.ascii(0), "");
  r.skip(0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(r.position(), 0u);
}

TEST(WireReader, ZeroLengthSpanAtEndOfConsumedBufferIsOk) {
  const auto data = bytes_of({1, 2});
  WireReader r{data};
  (void)r.u16();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.bytes(0).size(), 0u);  // empty read at pos == size is fine
  EXPECT_TRUE(r.ok());
}

TEST(WireReader, MultiByteReadStraddlingEndFailsAndReturnsZero) {
  const auto data = bytes_of({0xff});
  WireReader r{data};
  EXPECT_EQ(r.u16(), 0u);  // one byte short: whole value reads as zero
  EXPECT_FALSE(r.ok());
}

TEST(WireReader, ReadsAfterFailureReturnZeros) {
  const auto data = bytes_of({0xaa, 0xbb});
  WireReader r{data};
  (void)r.u32();  // fails: only 2 bytes
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u16_le(), 0u);
  EXPECT_EQ(r.u64_le(), 0u);
  EXPECT_TRUE(r.bytes(1).empty());
  EXPECT_TRUE(r.ascii(4).empty());
  EXPECT_FALSE(r.ok());  // failure is sticky
}

TEST(WireReader, FailureIsStickyAcrossSuccessSizedReads) {
  const auto data = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  WireReader r{data};
  (void)r.bytes(4);
  (void)r.u64();  // fails: 4 remaining
  ASSERT_FALSE(r.ok());
  // A u8 would fit in the untouched tail, but a failed reader stays failed.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(WireReader, LittleEndianRoundTrip) {
  std::vector<std::byte> buf;
  WireWriter w{buf};
  w.u16_le(0x1234);
  w.u32_le(0xdeadbeef);
  w.u64_le(0x0102030405060708ULL);
  WireReader r{buf};
  EXPECT_EQ(r.u16_le(), 0x1234);
  EXPECT_EQ(r.u32_le(), 0xdeadbeefu);
  EXPECT_EQ(r.u64_le(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.ok());
}

TEST(WireWriter, PatchU16LeWritesLittleEndianAtOffset) {
  std::vector<std::byte> buf;
  WireWriter w{buf};
  w.u16_le(0);  // placeholder
  w.u32_le(0x11223344);
  w.patch_u16_le(0, 0xabcd);
  EXPECT_EQ(static_cast<unsigned>(buf[0]), 0xcdu);
  EXPECT_EQ(static_cast<unsigned>(buf[1]), 0xabu);
  // The rest of the buffer is untouched.
  EXPECT_EQ(static_cast<unsigned>(buf[2]), 0x44u);
}

TEST(WireWriter, PatchU16AtLastValidOffset) {
  std::vector<std::byte> buf;
  WireWriter w{buf};
  w.u32(0);
  w.patch_u16(2, 0xbeef);  // bytes 2..3: the final two
  EXPECT_EQ(static_cast<unsigned>(buf[2]), 0xbeu);
  EXPECT_EQ(static_cast<unsigned>(buf[3]), 0xefu);
}

#if GTEST_HAS_DEATH_TEST
TEST(WireWriterDeathTest, PatchPastEndTripsAssert) {
  std::vector<std::byte> buf;
  WireWriter w{buf};
  w.u16(0);
  EXPECT_DEATH(w.patch_u16(1, 0x1234), "patch_u16 offset");
  EXPECT_DEATH(w.patch_u16_le(2, 0x1234), "patch_u16_le offset");
}
#endif

TEST(WireReader, PositionAndRemainingTrackConsumption) {
  const auto data = bytes_of({1, 2, 3, 4, 5});
  WireReader r{data};
  EXPECT_EQ(r.remaining(), 5u);
  (void)r.u16();
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.remaining(), 3u);
  r.skip(3);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace tsn::net
