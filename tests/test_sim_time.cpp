#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace tsn::sim {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time{}.picos(), 0);
  EXPECT_EQ(Duration{}.picos(), 0);
}

TEST(Time, FactoryFunctionsAreExact) {
  EXPECT_EQ(picos(7).picos(), 7);
  EXPECT_EQ(nanos(std::int64_t{3}).picos(), 3'000);
  EXPECT_EQ(micros(std::int64_t{2}).picos(), 2'000'000);
  EXPECT_EQ(millis(std::int64_t{1}).picos(), 1'000'000'000);
  EXPECT_EQ(seconds(std::int64_t{1}).picos(), 1'000'000'000'000);
}

TEST(Time, DoubleFactoriesRoundToNearestPicosecond) {
  EXPECT_EQ(nanos(1.5).picos(), 1'500);
  EXPECT_EQ(nanos(0.0001).picos(), 0);  // below resolution
  EXPECT_EQ(nanos(0.0006).picos(), 1);
  EXPECT_EQ(seconds(-1.0).picos(), -1'000'000'000'000);
}

TEST(Time, SubHundredPicosecondPrecisionIsRepresentable) {
  // The paper cites demand for timestamp precision below 100 ps (§2).
  const Duration d = picos(37);
  EXPECT_LT(d, picos(100));
  EXPECT_GT(d, Duration::zero());
}

TEST(Time, TradingDayFitsComfortably) {
  // 6.5-hour session in picoseconds stays far from overflow.
  const Duration session = seconds(std::int64_t{6 * 3600 + 1800});
  // ~394 trading days fit in the representable range — more than a year of
  // continuous sessions in one simulation.
  EXPECT_GT(Duration::max().picos() / session.picos(), 300);
}

TEST(Time, ArithmeticAndComparisons) {
  const Time t0{1'000};
  const Time t1 = t0 + nanos(std::int64_t{1});
  EXPECT_EQ((t1 - t0).picos(), 1'000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - nanos(std::int64_t{1}), t0);
  Duration d = nanos(std::int64_t{5});
  d += nanos(std::int64_t{3});
  d -= nanos(std::int64_t{2});
  EXPECT_EQ(d, nanos(std::int64_t{6}));
  EXPECT_EQ((d * 2).picos(), 12'000);
  EXPECT_EQ((d / 2).picos(), 3'000);
  EXPECT_EQ(d / nanos(std::int64_t{2}), 3);
  EXPECT_EQ((-d).picos(), -6'000);
}

TEST(Time, ConversionAccessors) {
  const Duration d = micros(std::int64_t{3});
  EXPECT_DOUBLE_EQ(d.nanos(), 3'000.0);
  EXPECT_DOUBLE_EQ(d.micros(), 3.0);
  EXPECT_DOUBLE_EQ(d.millis(), 0.003);
  EXPECT_DOUBLE_EQ(d.seconds(), 3e-6);
}

TEST(Time, ToStringPicksReadableUnits) {
  EXPECT_EQ(to_string(picos(500)), "500 ps");
  EXPECT_EQ(to_string(nanos(std::int64_t{512})), "512 ns");
  EXPECT_EQ(to_string(micros(std::int64_t{2})), "2 us");
  EXPECT_EQ(to_string(seconds(std::int64_t{3})), "3 s");
}

TEST(Time, TimeDurationTypeSafety) {
  // Time + Duration compiles; these accessors agree.
  const Time t = Time::zero() + seconds(std::int64_t{2});
  EXPECT_DOUBLE_EQ(t.seconds(), 2.0);
  EXPECT_EQ(t.since_epoch(), seconds(std::int64_t{2}));
}

}  // namespace
}  // namespace tsn::sim
