#include "sim/action.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "sim/time.hpp"

namespace tsn::sim {
namespace {

TEST(InlineAction, DefaultConstructedIsEmpty) {
  InlineAction action;
  EXPECT_FALSE(static_cast<bool>(action));
}

TEST(InlineAction, InvokesStoredCallable) {
  int calls = 0;
  InlineAction action{[&calls] { ++calls; }};
  EXPECT_TRUE(static_cast<bool>(action));
  action();
  action();
  EXPECT_EQ(calls, 2);
}

TEST(InlineAction, HotPathCaptureSizesStayInline) {
  // The capture-size contract from DESIGN.md "Hot-path memory model": every
  // scheduling site across src/ must fit the inline buffer. The largest is
  // the NIC rx deferral (std::function + PacketPtr + Time = 56 bytes).
  struct NicRxCapture {
    std::function<void()> handler;
    std::shared_ptr<const int> packet;
    Time arrival;
  };
  static_assert(InlineAction::stores_inline<NicRxCapture>());

  struct LinkDeliveryCapture {
    void* dst;
    std::uint32_t port;
    std::shared_ptr<const int> packet;
  };
  static_assert(InlineAction::stores_inline<LinkDeliveryCapture>());

  int sink = 0;
  auto* sink_ptr = &sink;
  std::shared_ptr<const int> payload = std::make_shared<int>(7);
  const Time arrival{42};
  InlineAction action{[sink_ptr, payload, arrival] { *sink_ptr += *payload; }};
  EXPECT_TRUE(action.stored_inline());
  action();
  EXPECT_EQ(sink, 7);
}

TEST(InlineAction, OversizedCaptureFallsBackToHeapAndStillWorks) {
  std::array<std::byte, 128> big{};
  big[0] = std::byte{9};
  int sum = 0;
  InlineAction action{[big, &sum] { sum += static_cast<int>(big[0]); }};
  EXPECT_FALSE(action.stored_inline());
  action();
  EXPECT_EQ(sum, 9);
}

TEST(InlineAction, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineAction a{[counter] { ++*counter; }};
  InlineAction b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): post-move state is defined
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  InlineAction c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
}

TEST(InlineAction, DestructionReleasesCapturedState) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  {
    InlineAction action{[tracked] { (void)tracked; }};
    tracked.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineAction, ResetReleasesCapturedState) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  InlineAction action{[tracked] { (void)tracked; }};
  tracked.reset();
  action.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(action));
}

TEST(InlineAction, MoveAssignReplacesAndDestroysPrevious) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> watch = first;
  InlineAction action{[first] { (void)first; }};
  first.reset();
  int calls = 0;
  action = InlineAction{[&calls] { ++calls; }};
  EXPECT_TRUE(watch.expired());
  action();
  EXPECT_EQ(calls, 1);
}

TEST(InlineAction, AcceptsCopyableLvalueCallables) {
  int calls = 0;
  std::function<void()> fn = [&calls] { ++calls; };
  InlineAction action{fn};
  fn();  // the original remains usable
  action();
  EXPECT_EQ(calls, 2);
}

TEST(InlineAction, HeapFallbackMovePreservesCallable) {
  std::array<std::byte, 200> big{};
  big[3] = std::byte{5};
  int out = 0;
  InlineAction a{[big, &out] { out = static_cast<int>(big[3]); }};
  InlineAction b{std::move(a)};
  EXPECT_FALSE(b.stored_inline());
  b();
  EXPECT_EQ(out, 5);
}

}  // namespace
}  // namespace tsn::sim
