#include "net/headers.hpp"

#include <gtest/gtest.h>

namespace tsn::net {
namespace {

std::vector<std::byte> payload_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Headers, EthernetRoundTrip) {
  std::vector<std::byte> buffer;
  WireWriter w{buffer};
  const EthernetHeader original{MacAddr::from_host_id(7), MacAddr::from_host_id(9), 0x0800};
  original.encode(w);
  EXPECT_EQ(buffer.size(), kEthernetHeaderSize);
  WireReader r{buffer};
  const auto decoded = EthernetHeader::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dst, original.dst);
  EXPECT_EQ(decoded->src, original.src);
  EXPECT_EQ(decoded->ethertype, original.ethertype);
}

TEST(Headers, Ipv4ChecksumValidatesAndDetectsCorruption) {
  std::vector<std::byte> buffer;
  WireWriter w{buffer};
  Ipv4Header ip;
  ip.total_length = 100;
  ip.protocol = kIpProtoUdp;
  ip.src = Ipv4Addr{10, 0, 0, 1};
  ip.dst = Ipv4Addr{10, 0, 0, 2};
  ip.encode(w);
  EXPECT_EQ(buffer.size(), kIpv4HeaderSize);
  {
    WireReader r{buffer};
    const auto decoded = Ipv4Header::decode(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->src, ip.src);
    EXPECT_EQ(decoded->dst, ip.dst);
    EXPECT_EQ(decoded->total_length, 100);
  }
  // Flip one bit: the checksum must catch it.
  buffer[13] ^= std::byte{0x04};
  WireReader r{buffer};
  EXPECT_FALSE(Ipv4Header::decode(r).has_value());
}

TEST(Headers, UdpRoundTrip) {
  std::vector<std::byte> buffer;
  WireWriter w{buffer};
  UdpHeader udp{30001, 30002, 58};
  udp.encode(w);
  EXPECT_EQ(buffer.size(), kUdpHeaderSize);
  WireReader r{buffer};
  const auto decoded = UdpHeader::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src_port, 30001);
  EXPECT_EQ(decoded->dst_port, 30002);
  EXPECT_EQ(decoded->length, 58);
}

TEST(Headers, TcpRoundTrip) {
  std::vector<std::byte> buffer;
  WireWriter w{buffer};
  TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 34000;
  tcp.seq = 12345;
  tcp.ack = 678;
  tcp.flags = TcpHeader::kAck | TcpHeader::kPsh;
  tcp.encode(w);
  EXPECT_EQ(buffer.size(), kTcpHeaderSize);
  WireReader r{buffer};
  const auto decoded = TcpHeader::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 12345u);
  EXPECT_EQ(decoded->ack, 678u);
  EXPECT_EQ(decoded->flags, TcpHeader::kAck | TcpHeader::kPsh);
}

TEST(Headers, InternetChecksumKnownVector) {
  // RFC 1071 example-style check: checksum of data plus its checksum is 0.
  const auto data = payload_of({0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11});
  const std::uint16_t sum = internet_checksum(data);
  std::vector<std::byte> with_sum = data;
  with_sum.push_back(static_cast<std::byte>(sum >> 8));
  with_sum.push_back(static_cast<std::byte>(sum & 0xff));
  EXPECT_EQ(internet_checksum(with_sum), 0);
}

TEST(Frames, UdpFrameBuildAndDecode) {
  const auto payload = payload_of({1, 2, 3, 4, 5});
  const auto frame =
      build_udp_frame(MacAddr::from_host_id(1), MacAddr::from_host_id(2), Ipv4Addr{10, 0, 0, 1},
                      Ipv4Addr{10, 0, 0, 2}, 1111, 2222, payload);
  // Tiny payload pads to the Ethernet minimum (64 including FCS).
  EXPECT_EQ(frame.size(), kMinEthernetFrame);
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->is_udp());
  EXPECT_EQ(decoded->udp->src_port, 1111);
  EXPECT_EQ(decoded->udp->dst_port, 2222);
  ASSERT_EQ(decoded->payload.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) EXPECT_EQ(decoded->payload[i], payload[i]);
}

TEST(Frames, LargePayloadFrameLengthIsExact) {
  const std::vector<std::byte> payload(1000, std::byte{0xaa});
  const auto frame =
      build_udp_frame(MacAddr::from_host_id(1), MacAddr::from_host_id(2), Ipv4Addr{10, 0, 0, 1},
                      Ipv4Addr{10, 0, 0, 2}, 1, 2, payload);
  EXPECT_EQ(frame.size(), kEthernetHeaderSize + kIpv4HeaderSize + kUdpHeaderSize + 1000 +
                              kEthernetFcsSize);
}

TEST(Frames, TcpFrameRoundTrip) {
  TcpHeader tcp;
  tcp.src_port = 5;
  tcp.dst_port = 6;
  tcp.seq = 99;
  tcp.flags = TcpHeader::kSyn;
  const auto payload = payload_of({9, 8, 7});
  const auto frame =
      build_tcp_frame(MacAddr::from_host_id(1), MacAddr::from_host_id(2), Ipv4Addr{10, 0, 0, 1},
                      Ipv4Addr{10, 0, 0, 2}, tcp, payload);
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->is_tcp());
  EXPECT_EQ(decoded->tcp->seq, 99u);
  EXPECT_EQ(decoded->payload.size(), 3u);
}

TEST(Frames, MulticastFrameUsesRfc1112Mac) {
  const Ipv4Addr group{239, 7, 7, 7};
  const auto frame = build_multicast_frame(MacAddr::from_host_id(3), Ipv4Addr{10, 0, 0, 3},
                                           group, 30001, payload_of({1}));
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->eth.dst, multicast_mac(group));
  EXPECT_EQ(decoded->ip->dst, group);
  EXPECT_TRUE(decoded->ip->dst.is_multicast());
}

TEST(Frames, DecodeRejectsTruncatedFrames) {
  const auto frame =
      build_udp_frame(MacAddr::from_host_id(1), MacAddr::from_host_id(2), Ipv4Addr{10, 0, 0, 1},
                      Ipv4Addr{10, 0, 0, 2}, 1, 2, payload_of({1, 2, 3}));
  // Cut inside the IP header.
  EXPECT_FALSE(decode_frame(std::span{frame}.subspan(0, 20)).has_value());
  // Empty buffer.
  EXPECT_FALSE(decode_frame({}).has_value());
}

TEST(Frames, HeaderOverheadMatchesPaperClaim) {
  // §3: ~40 bytes of network headers per market-data packet. Exact stack
  // overhead here: 14 (eth) + 20 (ipv4) + 8 (udp) = 42, plus 4 FCS.
  EXPECT_EQ(kEthernetHeaderSize + kIpv4HeaderSize + kUdpHeaderSize, 42u);
}

}  // namespace
}  // namespace tsn::net
