#include "cluster/manager.hpp"

#include <gtest/gtest.h>

namespace tsn::cluster {
namespace {

ClusterManager small_cluster() {
  ClusterManager mgr{0};
  // Three racks: rack 0 is the exchange rack.
  ServerId id = 1;
  for (std::uint32_t rack = 0; rack < 3; ++rack) {
    for (int i = 0; i < 4; ++i) {
      mgr.add_server(Server{id++, rack, 8.0, 3});
    }
  }
  return mgr;
}

TEST(Cluster, DuplicateIdsRejected) {
  ClusterManager mgr;
  mgr.add_server(Server{1, 0, 8.0, 3});
  EXPECT_THROW(mgr.add_server(Server{1, 1, 8.0, 3}), std::invalid_argument);
  mgr.add_job(Job{1, JobKind::kStrategy, {}, 1.0});
  EXPECT_THROW(mgr.add_job(Job{1, JobKind::kGateway, {}, 1.0}), std::invalid_argument);
}

TEST(Cluster, NormalizersAndGatewaysHugTheExchangeRack) {
  auto mgr = small_cluster();
  mgr.add_job(Job{1, JobKind::kNormalizer, {0, 1}, 2.0});
  mgr.add_job(Job{2, JobKind::kGateway, {}, 2.0});
  const auto result = mgr.place();
  ASSERT_TRUE(result.unplaced.empty());
  for (const auto& [job, server] : result.assignment) {
    for (const auto& s : mgr.servers()) {
      if (s.id == server) {
        EXPECT_EQ(s.rack, 0u) << "job " << job;
      }
    }
  }
}

TEST(Cluster, StrategiesFollowTheirSubscriptions) {
  ClusterManager mgr{0};
  mgr.add_server(Server{1, 0, 2.0, 3});   // exchange rack: small
  mgr.add_server(Server{2, 1, 16.0, 3});  // rack 1
  mgr.add_server(Server{3, 2, 16.0, 3});  // rack 2
  // A normalizer producing partition 7 lands on rack 0 (closest with room).
  mgr.add_job(Job{1, JobKind::kNormalizer, {7}, 2.0});
  // The strategy wants partition 7; rack 0 is now full, so it should pick
  // either remaining rack (equidistant), deterministically the lower id.
  mgr.add_job(Job{2, JobKind::kStrategy, {7}, 4.0});
  const auto result = mgr.place();
  ASSERT_TRUE(result.unplaced.empty());
  EXPECT_EQ(result.assignment.at(1), 1u);
  EXPECT_EQ(result.assignment.at(2), 2u);
}

TEST(Cluster, CapacityExhaustionReportsUnplaced) {
  ClusterManager mgr{0};
  mgr.add_server(Server{1, 0, 2.0, 3});
  mgr.add_job(Job{1, JobKind::kStrategy, {}, 1.5});
  mgr.add_job(Job{2, JobKind::kStrategy, {}, 1.5});  // doesn't fit
  const auto result = mgr.place();
  EXPECT_EQ(result.assignment.size(), 1u);
  ASSERT_EQ(result.unplaced.size(), 1u);
  EXPECT_EQ(result.unplaced[0], 2u);
}

TEST(Cluster, PlacementIsDeterministic) {
  auto mgr = small_cluster();
  for (JobId j = 1; j <= 8; ++j) {
    mgr.add_job(Job{j, j % 3 == 0 ? JobKind::kNormalizer : JobKind::kStrategy,
                    {static_cast<std::uint32_t>(j % 4)}, 1.0});
  }
  const auto a = mgr.place();
  const auto b = mgr.place();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.total_hop_cost, b.total_hop_cost);
}

TEST(Cluster, L1sSubscriptionPlanNoMergeWhenUnderCap) {
  ClusterManager mgr;
  mgr.add_server(Server{1, 0, 16.0, 4});
  mgr.add_job(Job{1, JobKind::kStrategy, {1, 2}, 1.0});
  const auto plans = mgr.plan_l1s_subscriptions(3, {});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_FALSE(plans[0].requires_merge());
  EXPECT_EQ(plans[0].dedicated.size(), 2u);
}

TEST(Cluster, L1sSubscriptionPlanMergesColdestFeeds) {
  // §4.3: restrict subscriptions per strategy; hottest partitions keep
  // dedicated NICs, the tail shares a merged circuit.
  ClusterManager mgr;
  mgr.add_job(Job{1, JobKind::kStrategy, {10, 11, 12, 13, 14}, 1.0});
  std::unordered_map<std::uint32_t, double> weight{
      {10, 100.0}, {11, 90.0}, {12, 5.0}, {13, 4.0}, {14, 3.0}};
  const auto plans = mgr.plan_l1s_subscriptions(3, weight);
  ASSERT_EQ(plans.size(), 1u);
  const auto& plan = plans[0];
  EXPECT_TRUE(plan.requires_merge());
  ASSERT_EQ(plan.dedicated.size(), 2u);  // max_feed_nics - 1
  EXPECT_EQ(plan.dedicated[0], 10u);
  EXPECT_EQ(plan.dedicated[1], 11u);
  ASSERT_EQ(plan.merged.size(), 3u);
  EXPECT_EQ(plan.merged[0], 12u);
}

TEST(Cluster, L1sPlanRejectsZeroNics) {
  ClusterManager mgr;
  EXPECT_THROW((void)mgr.plan_l1s_subscriptions(0, {}), std::invalid_argument);
}

TEST(Cluster, MigrationPlanHasBoundedDowntime) {
  auto mgr = small_cluster();
  mgr.add_job(Job{1, JobKind::kStrategy, {3}, 1.0});
  const auto placement = mgr.place();
  const auto plan = mgr.plan_migration(1, 9, placement);
  EXPECT_EQ(plan.job, 1u);
  EXPECT_EQ(plan.to, 9u);
  EXPECT_FALSE(plan.steps.empty());
  // Downtime excludes provisioning: bare-metal migration overlaps the warm
  // start with live service.
  sim::Duration steps_total = sim::Duration::zero();
  for (const auto& step : plan.steps) steps_total += step.estimated_duration;
  EXPECT_LT(plan.total_downtime, sim::seconds(std::int64_t{1}));
  EXPECT_GT(steps_total, plan.total_downtime);
}

TEST(Cluster, MigrationOfUnplacedJobThrows) {
  auto mgr = small_cluster();
  mgr.add_job(Job{1, JobKind::kStrategy, {}, 1.0});
  PlacementResult empty;
  EXPECT_THROW((void)mgr.plan_migration(1, 2, empty), std::invalid_argument);
}

}  // namespace
}  // namespace tsn::cluster
