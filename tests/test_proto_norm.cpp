#include "proto/norm.hpp"

#include <gtest/gtest.h>

namespace tsn::proto::norm {
namespace {

Update sample_update(std::uint8_t exchange = 3) {
  Update u;
  u.kind = UpdateKind::kBboUpdate;
  u.exchange_id = exchange;
  u.side = Side::kBuy;
  u.symbol = Symbol{"ACME"};
  u.price = price_from_dollars(101.25);
  u.quantity = 700;
  u.order_id = 424242;
  u.exchange_time_ns = 34'200'000'000'123ULL;
  return u;
}

TEST(Norm, UpdateIsFixedSize) {
  std::vector<std::byte> out;
  net::WireWriter w{out};
  encode(sample_update(), w);
  EXPECT_EQ(out.size(), kMessageSize);
}

TEST(Norm, UpdateRoundTrip) {
  std::vector<std::byte> out;
  net::WireWriter w{out};
  const Update original = sample_update();
  encode(original, w);
  net::WireReader r{out};
  const auto decoded = decode_one(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, original.kind);
  EXPECT_EQ(decoded->exchange_id, original.exchange_id);
  EXPECT_EQ(decoded->side, original.side);
  EXPECT_EQ(decoded->symbol, original.symbol);
  EXPECT_EQ(decoded->price, original.price);
  EXPECT_EQ(decoded->quantity, original.quantity);
  EXPECT_EQ(decoded->order_id, original.order_id);
  EXPECT_EQ(decoded->exchange_time_ns, original.exchange_time_ns);
}

TEST(Norm, DecodeRejectsBadKindAndTruncation) {
  std::vector<std::byte> out;
  net::WireWriter w{out};
  encode(sample_update(), w);
  out[0] = std::byte{0};  // invalid kind
  net::WireReader r{out};
  EXPECT_FALSE(decode_one(r).has_value());
  net::WireReader r2{std::span{out}.subspan(0, 10)};
  EXPECT_FALSE(decode_one(r2).has_value());
}

TEST(Norm, DatagramBuilderPacksWithHeader) {
  std::vector<std::pair<std::vector<std::byte>, DatagramHeader>> out;
  DatagramBuilder builder{9, 1458, [&](std::vector<std::byte> p, const DatagramHeader& h) {
                            out.emplace_back(std::move(p), h);
                          }};
  builder.append(sample_update(), 1'000);
  builder.append(sample_update(), 1'001);
  builder.flush();
  ASSERT_EQ(out.size(), 1u);
  const auto& [payload, header] = out[0];
  EXPECT_EQ(header.partition, 9);
  EXPECT_EQ(header.count, 2);
  EXPECT_EQ(header.sequence, 1u);
  EXPECT_EQ(header.send_time_ns, 1'000u);  // stamped with the first append
  EXPECT_EQ(payload.size(), kHeaderSize + 2 * kMessageSize);
}

TEST(Norm, SequenceContinuesAcrossDatagrams) {
  std::vector<DatagramHeader> headers;
  DatagramBuilder builder{1, 1458, [&](std::vector<std::byte>, const DatagramHeader& h) {
                            headers.push_back(h);
                          }};
  builder.append(sample_update(), 1);
  builder.flush();
  builder.append(sample_update(), 2);
  builder.append(sample_update(), 3);
  builder.flush();
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0].sequence, 1u);
  EXPECT_EQ(headers[1].sequence, 2u);
  EXPECT_EQ(headers[1].count, 2);
}

TEST(Norm, AutoFlushAtMtu) {
  int flushes = 0;
  DatagramBuilder builder{1, kHeaderSize + kMessageSize,  // fits exactly one
                          [&](std::vector<std::byte>, const DatagramHeader&) { ++flushes; }};
  builder.append(sample_update(), 1);
  builder.append(sample_update(), 2);
  builder.flush();
  EXPECT_EQ(flushes, 2);
}

TEST(Norm, ParseRoundTrip) {
  std::vector<std::byte> payload;
  DatagramBuilder builder{4, 1458, [&](std::vector<std::byte> p, const DatagramHeader&) {
                            payload = std::move(p);
                          }};
  for (int i = 0; i < 5; ++i) builder.append(sample_update(static_cast<std::uint8_t>(i)), 100);
  builder.flush();
  const auto parsed = parse(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.partition, 4);
  ASSERT_EQ(parsed->updates.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(parsed->updates[static_cast<std::size_t>(i)].exchange_id, i);
  }
}

TEST(Norm, ParseRejectsWrongMagicAndShortBuffers) {
  std::vector<std::byte> payload;
  DatagramBuilder builder{4, 1458, [&](std::vector<std::byte> p, const DatagramHeader&) {
                            payload = std::move(p);
                          }};
  builder.append(sample_update(), 100);
  builder.flush();
  auto bad = payload;
  bad[0] = std::byte{0x00};
  EXPECT_FALSE(parse(bad).has_value());
  EXPECT_FALSE(parse(std::span{payload}.subspan(0, kHeaderSize - 2)).has_value());
  // Header claims more updates than the buffer carries.
  auto truncated = payload;
  truncated.resize(kHeaderSize + kMessageSize - 1);
  EXPECT_FALSE(parse(truncated).has_value());
}

TEST(Norm, RejectsTinyMtu) {
  EXPECT_THROW(DatagramBuilder(1, 10, [](std::vector<std::byte>, const DatagramHeader&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsn::proto::norm
