#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tsn::sim {
namespace {

TEST(Engine, StartsAtTimeZeroWithEmptyQueue) {
  Engine engine;
  EXPECT_EQ(engine.now(), Time::zero());
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.run(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(Time{300}, [&] { order.push_back(3); });
  engine.schedule_at(Time{100}, [&] { order.push_back(1); });
  engine.schedule_at(Time{200}, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), Time{300});
}

TEST(Engine, SameInstantFiresInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(Time{50}, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  Time fired;
  engine.schedule_at(Time{1'000}, [&] {
    engine.schedule_in(Duration{500}, [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, Time{1'500});
}

TEST(Engine, SchedulingIntoThePastClampsToNow) {
  Engine engine;
  Time fired;
  engine.schedule_at(Time{1'000}, [&] {
    engine.schedule_at(Time{10}, [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, Time{1'000});
}

TEST(Engine, NegativeDelayClampsToZero) {
  Engine engine;
  bool fired = false;
  engine.schedule_in(Duration{-100}, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.now(), Time::zero());
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventHandle handle = engine.schedule_at(Time{100}, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(handle));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, DoubleCancelReturnsFalse) {
  Engine engine;
  const EventHandle handle = engine.schedule_at(Time{100}, [] {});
  EXPECT_TRUE(engine.cancel(handle));
  EXPECT_FALSE(engine.cancel(handle));
}

TEST(Engine, InvalidHandleCancelReturnsFalse) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(EventHandle{}));
}

TEST(Engine, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time{100}, [&] { ++fired; });
  engine.schedule_at(Time{200}, [&] { ++fired; });
  engine.schedule_at(Time{300}, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(Time{200}), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), Time{200});
  // The remaining event still fires later.
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenQueueDrains) {
  Engine engine;
  engine.run_until(Time{5'000});
  EXPECT_EQ(engine.now(), Time{5'000});
}

TEST(Engine, EventsScheduledDuringRunAreExecuted) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.schedule_in(Duration{1}, recurse);
  };
  engine.schedule_at(Time{0}, recurse);
  EXPECT_EQ(engine.run(), 100u);
  EXPECT_EQ(depth, 100);
}

TEST(Engine, RequestStopHaltsRun) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time{1}, [&] {
    ++fired;
    engine.request_stop();
  });
  engine.schedule_at(Time{2}, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(Engine, StepExecutesExactlyOneEvent) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time{1}, [&] { ++fired; });
  engine.schedule_at(Time{2}, [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PendingEventsTracksCancellations) {
  Engine engine;
  const auto h1 = engine.schedule_at(Time{1}, [] {});
  engine.schedule_at(Time{2}, [] {});
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.cancel(h1);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.run();
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.events_fired(), 1u);
}

TEST(Engine, CancelledEventBeforeDeadlineDoesNotBlockRunUntil) {
  Engine engine;
  const auto h = engine.schedule_at(Time{100}, [] {});
  engine.schedule_at(Time{150}, [] {});
  engine.cancel(h);
  EXPECT_EQ(engine.run_until(Time{200}), 1u);
}

}  // namespace
}  // namespace tsn::sim
