#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tsn::sim {
namespace {

TEST(Engine, StartsAtTimeZeroWithEmptyQueue) {
  Engine engine;
  EXPECT_EQ(engine.now(), Time::zero());
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.run(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(Time{300}, [&] { order.push_back(3); });
  engine.schedule_at(Time{100}, [&] { order.push_back(1); });
  engine.schedule_at(Time{200}, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), Time{300});
}

TEST(Engine, SameInstantFiresInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(Time{50}, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  Time fired;
  engine.schedule_at(Time{1'000}, [&] {
    engine.schedule_in(Duration{500}, [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, Time{1'500});
}

TEST(Engine, SchedulingIntoThePastClampsToNow) {
  Engine engine;
  Time fired;
  engine.schedule_at(Time{1'000}, [&] {
    engine.schedule_at(Time{10}, [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, Time{1'000});
}

TEST(Engine, NegativeDelayClampsToZero) {
  Engine engine;
  bool fired = false;
  engine.schedule_in(Duration{-100}, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.now(), Time::zero());
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventHandle handle = engine.schedule_at(Time{100}, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(handle));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, DoubleCancelReturnsFalse) {
  Engine engine;
  const EventHandle handle = engine.schedule_at(Time{100}, [] {});
  EXPECT_TRUE(engine.cancel(handle));
  EXPECT_FALSE(engine.cancel(handle));
}

TEST(Engine, InvalidHandleCancelReturnsFalse) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(EventHandle{}));
}

TEST(Engine, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time{100}, [&] { ++fired; });
  engine.schedule_at(Time{200}, [&] { ++fired; });
  engine.schedule_at(Time{300}, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(Time{200}), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), Time{200});
  // The remaining event still fires later.
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenQueueDrains) {
  Engine engine;
  engine.run_until(Time{5'000});
  EXPECT_EQ(engine.now(), Time{5'000});
}

TEST(Engine, EventsScheduledDuringRunAreExecuted) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.schedule_in(Duration{1}, recurse);
  };
  engine.schedule_at(Time{0}, recurse);
  EXPECT_EQ(engine.run(), 100u);
  EXPECT_EQ(depth, 100);
}

TEST(Engine, RequestStopHaltsRun) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time{1}, [&] {
    ++fired;
    engine.request_stop();
  });
  engine.schedule_at(Time{2}, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(Engine, StepExecutesExactlyOneEvent) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time{1}, [&] { ++fired; });
  engine.schedule_at(Time{2}, [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PendingEventsTracksCancellations) {
  Engine engine;
  const auto h1 = engine.schedule_at(Time{1}, [] {});
  engine.schedule_at(Time{2}, [] {});
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.cancel(h1);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.run();
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.events_fired(), 1u);
}

TEST(Engine, CancelledEventBeforeDeadlineDoesNotBlockRunUntil) {
  Engine engine;
  const auto h = engine.schedule_at(Time{100}, [] {});
  engine.schedule_at(Time{150}, [] {});
  engine.cancel(h);
  EXPECT_EQ(engine.run_until(Time{200}), 1u);
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine engine;
  int fired = 0;
  const auto h = engine.schedule_at(Time{100}, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.cancel(h));
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(Engine, StaleHandleDoesNotCancelSlotReuse) {
  // After the first event fires, its pool slot is recycled for the next
  // event under a fresh generation; the stale handle must not cancel the
  // newcomer even though both name the same slot.
  Engine engine;
  const auto stale = engine.schedule_at(Time{100}, [] {});
  engine.run();
  bool second_fired = false;
  const auto fresh = engine.schedule_at(Time{200}, [&] { second_fired = true; });
  EXPECT_FALSE(engine.cancel(stale));
  engine.run();
  EXPECT_TRUE(second_fired);
  // And the fresh handle goes stale in turn.
  EXPECT_FALSE(engine.cancel(fresh));
}

TEST(Engine, CancelledHandleStaysDeadAfterSlotReuse) {
  Engine engine;
  const auto h = engine.schedule_at(Time{100}, [] {});
  EXPECT_TRUE(engine.cancel(h));
  bool fired = false;
  engine.schedule_at(Time{50}, [&] { fired = true; });  // reuses the slot
  EXPECT_FALSE(engine.cancel(h));
  engine.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, SameInstantOrderSurvivesInterleavedCancels) {
  Engine engine;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(engine.schedule_at(Time{50}, [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event; survivors must still fire in scheduling order.
  for (std::size_t i = 0; i < handles.size(); i += 3) EXPECT_TRUE(engine.cancel(handles[i]));
  engine.run();
  std::vector<int> expected;
  for (int i = 0; i < 20; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(Engine, SameInstantScheduledDuringRunFiresAfterEarlierPeers) {
  // An event scheduled *for now* from inside a handler gets a later seq, so
  // it fires after events already queued for the same instant.
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(Time{10}, [&] {
    order.push_back(0);
    engine.schedule_at(Time{10}, [&] { order.push_back(2); });
  });
  engine.schedule_at(Time{10}, [&] { order.push_back(1); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, PoolGrowsUnderBurstAndStaysWarmAcrossBursts) {
  // Fig 2c peak: 1066 events inside one 100 us window. The pool must grow
  // to cover the burst, then absorb identical bursts with no further
  // growth — the allocation-free steady state.
  Engine engine;
  std::uint64_t fired = 0;
  auto burst = [&engine, &fired](Time base) {
    for (int i = 0; i < 1'066; ++i) {
      const auto offset = sim::nanos(static_cast<std::int64_t>((i * 94) % 100'000));
      engine.schedule_at(base + offset, [&fired] { ++fired; });
    }
  };
  burst(Time{0});
  EXPECT_EQ(engine.pool_in_use(), 1'066u);
  EXPECT_GE(engine.pool_capacity(), 1'066u);
  const std::size_t grown = engine.pool_capacity();
  engine.run();
  EXPECT_EQ(fired, 1'066u);
  EXPECT_EQ(engine.pool_in_use(), 0u);
  for (int round = 1; round <= 3; ++round) {
    burst(engine.now() + sim::millis(std::int64_t{1}));
    engine.run();
    EXPECT_EQ(engine.pool_capacity(), grown) << "burst round " << round << " grew the pool";
  }
  EXPECT_EQ(fired, 4u * 1'066u);
}

TEST(Engine, ReservePrewarmsPool) {
  Engine engine;
  engine.reserve(2'000);
  EXPECT_GE(engine.pool_capacity(), 2'000u);
  const std::size_t capacity = engine.pool_capacity();
  for (int i = 0; i < 2'000; ++i) engine.schedule_at(Time{i}, [] {});
  EXPECT_EQ(engine.pool_capacity(), capacity);
  engine.run();
}

TEST(Engine, ManyCancelsStayCheap) {
  // Regression guard for the old O(n) cancelled-list scan: cancelling tens
  // of thousands of pending events (and popping past their stale heap
  // entries) must complete quickly. Run as a functional check; the perf
  // shape is covered by bench_micro_hotpaths.
  Engine engine;
  std::vector<EventHandle> handles;
  handles.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    handles.push_back(engine.schedule_at(Time{i}, [] {}));
  }
  for (auto& h : handles) EXPECT_TRUE(engine.cancel(h));
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_EQ(engine.events_fired(), 0u);
}

}  // namespace
}  // namespace tsn::sim
