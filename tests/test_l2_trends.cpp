#include "l2/trends.hpp"

#include <gtest/gtest.h>

namespace tsn::l2 {
namespace {

TEST(Trends, RoadmapSpansTheDecade) {
  const auto roadmap = SwitchTrendModel::commodity_roadmap();
  ASSERT_GE(roadmap.size(), 5u);
  EXPECT_EQ(roadmap.front().year, 2014);
  EXPECT_EQ(roadmap.back().year, 2024);
}

TEST(Trends, BandwidthRoughlyDoublesPerGeneration) {
  const auto roadmap = SwitchTrendModel::commodity_roadmap();
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    const double ratio = roadmap[i].bandwidth_tbps / roadmap[i - 1].bandwidth_tbps;
    EXPECT_NEAR(ratio, 2.0, 0.3) << "generation " << i;
  }
}

TEST(Trends, LatencyIncreasedAbout20PercentToFiveHundredNs) {
  // §3: today's switches are ~20% slower than a decade ago, at ~500 ns.
  const auto latest = SwitchTrendModel::latency_at(2024);
  const auto decade_ago = SwitchTrendModel::latency_at(2014);
  EXPECT_EQ(latest, sim::nanos(std::int64_t{500}));
  const double growth = latest.nanos() / decade_ago.nanos();
  EXPECT_NEAR(growth, 1.20, 0.03);
  // Monotonically non-decreasing across the roadmap.
  for (int year = 2015; year <= 2024; ++year) {
    EXPECT_GE(SwitchTrendModel::latency_at(year), SwitchTrendModel::latency_at(year - 1));
  }
}

TEST(Trends, McastGroupsGrewOnlyEightyPercent) {
  // §3: "the latest generation of switches supports only 80% more multicast
  // groups than earlier generations."
  const double growth = static_cast<double>(SwitchTrendModel::mcast_groups_at(2024)) /
                        static_cast<double>(SwitchTrendModel::mcast_groups_at(2014));
  EXPECT_NEAR(growth, 1.8, 0.05);
}

TEST(Trends, SoftwareHopDecreasedBelowOneMicrosecond) {
  // §3: a hop through a tuned software host is now below 1 us, and the
  // trend is downward while switch latency trends upward.
  EXPECT_LT(SwitchTrendModel::software_hop_at(2024), sim::micros(std::int64_t{1}));
  EXPECT_GT(SwitchTrendModel::software_hop_at(2014), SwitchTrendModel::software_hop_at(2024));
}

TEST(Trends, NetworkShareOfSystemLatencyIsRising) {
  // The paper's qualitative conclusion: network latency is a growing share
  // of total system latency. With 12 switch hops and 3 software hops:
  auto share = [](int year) {
    const double network = 12.0 * SwitchTrendModel::latency_at(year).nanos();
    const double software = 3.0 * SwitchTrendModel::software_hop_at(year).nanos();
    return network / (network + software);
  };
  EXPECT_GT(share(2024), share(2014));
  EXPECT_GT(share(2024), 0.5);  // §4.1: half the time is in the network
}

TEST(Trends, InterpolationClampsOutsideRange) {
  EXPECT_EQ(SwitchTrendModel::latency_at(2000), SwitchTrendModel::latency_at(2014));
  EXPECT_EQ(SwitchTrendModel::mcast_groups_at(2030), SwitchTrendModel::mcast_groups_at(2024));
}

}  // namespace
}  // namespace tsn::l2
