#include "sim/engine.hpp"
#include "net/tcp_lite.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/fabric.hpp"
#include "net/stack.hpp"

namespace tsn::net {
namespace {

// Two hosts wired back to back, with stacks.
struct TcpPair {
  sim::Engine engine;
  Fabric fabric{engine};
  Nic client_nic{engine, "client", MacAddr::from_host_id(1), Ipv4Addr{10, 0, 0, 1}};
  Nic server_nic{engine, "server", MacAddr::from_host_id(2), Ipv4Addr{10, 0, 0, 2}};
  NetStack client{client_nic};
  NetStack server{server_nic};

  explicit TcpPair(LinkConfig link = LinkConfig{}) {
    fabric.connect(client_nic, 0, server_nic, 0, link);
  }
};

std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out;
  for (char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

std::string to_text(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

TEST(TcpLite, HandshakeEstablishesBothEnds) {
  TcpPair t;
  TcpEndpoint* accepted = nullptr;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) { accepted = &ep; });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  t.engine.run();
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(client.state(), TcpState::kEstablished);
  EXPECT_EQ(accepted->state(), TcpState::kEstablished);
  EXPECT_EQ(accepted->peer_port(), client.local_port());
}

TEST(TcpLite, ConnectToClosedPortNeverEstablishes) {
  TcpPair t;
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 9, 0);
  t.engine.run();
  // SYN retries exhaust and the endpoint gives up.
  EXPECT_EQ(client.state(), TcpState::kClosed);
  EXPECT_GT(client.retransmit_count(), 0u);
}

TEST(TcpLite, DataFlowsInOrder) {
  TcpPair t;
  std::string received;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) {
    ep.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
      received += to_text(bytes);
    });
  });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  const auto hello = bytes_of("hello ");
  const auto world = bytes_of("world");
  client.send(hello);
  client.send(world);
  t.engine.run();
  EXPECT_EQ(received, "hello world");
  EXPECT_EQ(client.bytes_sent(), 11u);
}

TEST(TcpLite, DataQueuedBeforeEstablishmentIsFlushed) {
  TcpPair t;
  std::string received;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) {
    ep.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
      received += to_text(bytes);
    });
  });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  client.send(bytes_of("early"));  // handshake not done yet
  t.engine.run();
  EXPECT_EQ(received, "early");
}

TEST(TcpLite, LargeSendIsSegmented) {
  TcpPair t;
  std::size_t received = 0;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) {
    ep.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
      received += bytes.size();
    });
  });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  const std::vector<std::byte> big(10'000, std::byte{0x5a});
  client.send(big);
  t.engine.run();
  EXPECT_EQ(received, 10'000u);
}

TEST(TcpLite, RecoversFromLoss) {
  // 20% frame loss each way: retransmission must still deliver everything,
  // in order, exactly once.
  LinkConfig lossy;
  lossy.loss_probability = 0.2;
  TcpPair t{lossy};
  std::string received;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) {
    ep.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
      received += to_text(bytes);
    });
  });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  std::string expected;
  for (int i = 0; i < 50; ++i) {
    const std::string chunk = "msg" + std::to_string(i) + ";";
    expected += chunk;
    client.send(bytes_of(chunk));
  }
  t.engine.run();
  EXPECT_EQ(received, expected);
  EXPECT_EQ(client.bytes_sent(), expected.size());
}

TEST(TcpLite, BidirectionalTransfer) {
  TcpPair t;
  std::string client_got;
  std::string server_got;
  TcpEndpoint* server_ep = nullptr;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) {
    server_ep = &ep;
    ep.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
      server_got += to_text(bytes);
      // Echo back.
      server_ep->send(bytes);
    });
  });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  client.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
    client_got += to_text(bytes);
  });
  client.send(bytes_of("ping"));
  t.engine.run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "ping");
}

TEST(TcpLite, LongLivedSessionManyMessages) {
  // §2: order sessions live 6+ hours and carry a steady message flow.
  TcpPair t;
  std::size_t received = 0;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) {
    ep.set_data_handler([&](std::span<const std::byte> bytes, sim::Time) {
      received += bytes.size();
    });
  });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  t.engine.run();
  std::size_t sent = 0;
  for (int burst = 0; burst < 100; ++burst) {
    const auto chunk = bytes_of("order-entry-message-37-bytes-long....");
    client.send(chunk);
    sent += chunk.size();
    t.engine.run();
  }
  EXPECT_EQ(received, sent);
  EXPECT_EQ(client.state(), TcpState::kEstablished);
  EXPECT_EQ(client.retransmit_count(), 0u);  // clean links, no spurious RTOs
}

TEST(TcpLite, CloseTransitionsStates) {
  TcpPair t;
  TcpEndpoint* server_ep = nullptr;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) { server_ep = &ep; });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  t.engine.run();
  client.close();
  t.engine.run();
  ASSERT_NE(server_ep, nullptr);
  EXPECT_EQ(server_ep->state(), TcpState::kCloseWait);
  server_ep->close();
  t.engine.run();
  EXPECT_EQ(server_ep->state(), TcpState::kClosed);
  EXPECT_EQ(client.state(), TcpState::kClosed);
}

TEST(TcpLite, EphemeralPortsAreDistinct) {
  TcpPair t;
  t.server.listen_tcp(34000, [](TcpEndpoint&) {});
  TcpEndpoint& c1 = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  TcpEndpoint& c2 = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  EXPECT_NE(c1.local_port(), c2.local_port());
  t.engine.run();
  EXPECT_EQ(c1.state(), TcpState::kEstablished);
  EXPECT_EQ(c2.state(), TcpState::kEstablished);
}

// --- death notification (session resilience relies on these) ----------------

TEST(TcpLite, ClosedHandlerFiresOnPeerFin) {
  TcpPair t;
  TcpEndpoint* server_ep = nullptr;
  TcpCloseReason reason = TcpCloseReason::kNone;
  int notifications = 0;
  t.server.listen_tcp(34000, [&](TcpEndpoint& ep) {
    server_ep = &ep;
    ep.set_closed_handler([&](TcpCloseReason r) {
      reason = r;
      ++notifications;
    });
  });
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  t.engine.run();
  client.close();
  t.engine.run();
  ASSERT_NE(server_ep, nullptr);
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(reason, TcpCloseReason::kPeerFin);
  EXPECT_EQ(server_ep->close_reason(), TcpCloseReason::kPeerFin);
}

TEST(TcpLite, SilentPeerDeathExhaustsRetriesAndNotifies) {
  // The peer dies silently (admin-down both directions): the survivor's
  // RTO retries exhaust and the owner is told, so a gateway can start its
  // reconnect machine without polling state().
  sim::Engine engine;
  Fabric fabric{engine};
  Nic client_nic{engine, "client", MacAddr::from_host_id(1), Ipv4Addr{10, 0, 0, 1}};
  Nic server_nic{engine, "server", MacAddr::from_host_id(2), Ipv4Addr{10, 0, 0, 2}};
  NetStack client{client_nic};
  NetStack server{server_nic};
  Cable cable = fabric.connect(client_nic, 0, server_nic, 0, LinkConfig{});
  server.listen_tcp(34000, [](TcpEndpoint&) {});
  TcpEndpoint& ep = client.connect_tcp(server_nic.mac(), server_nic.ip(), 34000, 0);
  TcpCloseReason reason = TcpCloseReason::kNone;
  int notifications = 0;
  ep.set_closed_handler([&](TcpCloseReason r) {
    reason = r;
    ++notifications;
  });
  engine.run();
  ASSERT_EQ(ep.state(), TcpState::kEstablished);
  cable.a_to_b->set_admin_up(false);
  cable.b_to_a->set_admin_up(false);
  ep.send(bytes_of("into the void"));
  engine.run();
  EXPECT_EQ(ep.state(), TcpState::kClosed);
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(reason, TcpCloseReason::kRetransmitExhausted);
  EXPECT_GT(ep.retransmit_count(), 0u);
}

TEST(TcpLite, FailedConnectNotifiesRetransmitExhaustion) {
  // SYN to a closed port: the connect itself fails and the closed handler
  // still fires, so reconnect backoff grows across failed attempts too.
  TcpPair t;
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 9, 0);
  TcpCloseReason reason = TcpCloseReason::kNone;
  client.set_closed_handler([&](TcpCloseReason r) { reason = r; });
  t.engine.run();
  EXPECT_EQ(client.state(), TcpState::kClosed);
  EXPECT_EQ(reason, TcpCloseReason::kRetransmitExhausted);
}

TEST(TcpLite, AbortDropsEverythingAndNotifiesOnce) {
  TcpPair t;
  t.server.listen_tcp(34000, [](TcpEndpoint&) {});
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  int notifications = 0;
  TcpCloseReason reason = TcpCloseReason::kNone;
  client.set_closed_handler([&](TcpCloseReason r) {
    reason = r;
    ++notifications;
  });
  t.engine.run();
  client.send(bytes_of("unacked"));
  client.abort();
  EXPECT_EQ(client.state(), TcpState::kClosed);
  EXPECT_EQ(reason, TcpCloseReason::kAborted);
  EXPECT_EQ(notifications, 1);
  client.abort();  // idempotent: no second notification
  EXPECT_EQ(notifications, 1);
  t.engine.run();  // any stray timers fire harmlessly
  EXPECT_EQ(notifications, 1);
}

TEST(TcpLite, LocalCloseDoesNotFireClosedHandler) {
  // The owner initiated the close; telling it again would double-trigger
  // reconnect logic.
  TcpPair t;
  t.server.listen_tcp(34000, [](TcpEndpoint&) {});
  TcpEndpoint& client = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  int notifications = 0;
  client.set_closed_handler([&](TcpCloseReason) { ++notifications; });
  t.engine.run();
  client.close();
  t.engine.run();
  EXPECT_EQ(notifications, 0);
}

TEST(TcpLite, ReapClosedRemovesDeadFlows) {
  TcpPair t;
  t.server.listen_tcp(34000, [](TcpEndpoint&) {});
  TcpEndpoint& c1 = t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  t.client.connect_tcp(t.server_nic.mac(), t.server_nic.ip(), 34000, 0);
  t.engine.run();
  EXPECT_EQ(t.client.tcp_flow_count(), 2u);
  EXPECT_EQ(t.client.reap_closed(), 0u);  // nothing dead yet
  c1.abort();
  t.engine.run();
  EXPECT_EQ(t.client.reap_closed(), 1u);
  EXPECT_EQ(t.client.tcp_flow_count(), 1u);
}

}  // namespace
}  // namespace tsn::net
