#include "sim/engine.hpp"
#include "net/link.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace tsn::net {
namespace {

class RecordingDevice final : public Device {
 public:
  explicit RecordingDevice(sim::Engine& engine) : engine_(engine) {}

  void receive(const PacketPtr& packet, PortId port) override {
    arrivals.emplace_back(engine_.now(), packet->id());
    last_port = port;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "recorder"; }

  std::vector<std::pair<sim::Time, std::uint64_t>> arrivals;
  PortId last_port = 0;

 private:
  sim::Engine& engine_;
};

PacketPtr make_packet(PacketFactory& factory, std::size_t frame_bytes, sim::Time at) {
  return factory.make(std::vector<std::byte>(frame_bytes, std::byte{0}), at);
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 10'000'000'000;  // 10 GbE
  config.propagation = sim::nanos(std::int64_t{100});
  Link link{engine, "l", config};
  link.connect_to(sink, 3);
  PacketFactory factory;
  // 105 frame bytes + 20 wire overhead = 1000 bits -> 100 ns at 10 Gb/s.
  link.transmit(make_packet(factory, 105, engine.now()));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, sim::Time::zero() + sim::nanos(std::int64_t{200}));
  EXPECT_EQ(sink.last_port, 3u);
}

TEST(Link, InfiniteRateSkipsSerialization) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 0;
  config.propagation = sim::nanos(std::int64_t{10});
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  PacketFactory factory;
  link.transmit(make_packet(factory, 1500, engine.now()));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, sim::Time::zero() + sim::nanos(std::int64_t{10}));
}

TEST(Link, BackToBackFramesQueueBehindEachOther) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 10'000'000'000;
  config.propagation = sim::Duration::zero();
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  PacketFactory factory;
  // Two 105-byte frames (100 ns serialization each) handed over together:
  // the second starts only after the first finishes.
  link.transmit(make_packet(factory, 105, engine.now()));
  link.transmit(make_packet(factory, 105, engine.now()));
  engine.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first.nanos(), 100.0);
  EXPECT_EQ(sink.arrivals[1].first.nanos(), 200.0);
  EXPECT_GT(link.stats().max_queue_delay, sim::Duration::zero());
}

TEST(Link, QueueOverflowDropsTail) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 1'000'000'000;  // 1 Gb/s: slow, so backlog builds
  config.queue_capacity_bytes = 3000;
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  PacketFactory factory;
  for (int i = 0; i < 10; ++i) link.transmit(make_packet(factory, 1500, engine.now()));
  engine.run();
  EXPECT_GT(link.stats().frames_dropped_queue, 0u);
  EXPECT_LT(sink.arrivals.size(), 10u);
  EXPECT_EQ(sink.arrivals.size() + link.stats().frames_dropped_queue, 10u);
}

TEST(Link, RandomLossDropsExpectedFraction) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 0;
  config.loss_probability = 0.3;
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  link.seed_loss(42);
  PacketFactory factory;
  constexpr int kFrames = 10'000;
  for (int i = 0; i < kFrames; ++i) link.transmit(make_packet(factory, 100, engine.now()));
  engine.run();
  const double loss_rate = static_cast<double>(link.stats().frames_dropped_loss) / kFrames;
  EXPECT_NEAR(loss_rate, 0.3, 0.02);
}

TEST(Link, StatsCountBytesAndFrames) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  Link link{engine, "l", LinkConfig{}};
  link.connect_to(sink, 0);
  PacketFactory factory;
  link.transmit(make_packet(factory, 100, engine.now()));
  link.transmit(make_packet(factory, 200, engine.now()));
  engine.run();
  EXPECT_EQ(link.stats().frames_delivered, 2u);
  EXPECT_EQ(link.stats().bytes_delivered, 300u);
}

TEST(Link, LossAccountingIsExact) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 0;
  config.loss_probability = 0.25;
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  link.seed_loss(7);
  PacketFactory factory;
  constexpr std::uint64_t kFrames = 5'000;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    link.transmit(make_packet(factory, 100, engine.now()));
  }
  engine.run();
  // Every frame is either delivered or counted lost — nothing vanishes.
  EXPECT_EQ(link.stats().frames_delivered + link.stats().frames_dropped_loss, kFrames);
  EXPECT_EQ(sink.arrivals.size(), link.stats().frames_delivered);
  EXPECT_GT(link.stats().frames_dropped_loss, 0u);
}

TEST(Link, TailDropTriggersExactlyAtQueueCapacity) {
  // 8 Gb/s makes one byte exactly one nanosecond of wire time, so the
  // backlog-in-bytes arithmetic has no rounding: a 100-byte frame (120
  // wire bytes) leaves a 120-byte backlog the instant after transmit.
  PacketFactory factory;
  auto run_with_capacity = [&](std::size_t capacity) {
    sim::Engine engine;
    RecordingDevice sink{engine};
    LinkConfig config;
    config.rate_bps = 8'000'000'000;
    config.queue_capacity_bytes = capacity;
    Link link{engine, "l", config};
    link.connect_to(sink, 0);
    link.transmit(make_packet(factory, 100, engine.now()));
    link.transmit(make_packet(factory, 100, engine.now()));
    engine.run();
    return link.stats().frames_dropped_queue;
  };
  // backlog 120 + frame 100 = 220: fits at exactly 220, tail-drops at 219.
  EXPECT_EQ(run_with_capacity(220), 0u);
  EXPECT_EQ(run_with_capacity(219), 1u);
}

TEST(Link, MaxQueueDelayIsMonotoneAndMatchesWorstBacklog) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 8'000'000'000;  // 120 ns per 100-byte frame
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  PacketFactory factory;
  sim::Duration previous = sim::Duration::zero();
  sim::Duration worst_backlog = sim::Duration::zero();
  for (int i = 0; i < 6; ++i) {
    const sim::Duration backlog = link.current_backlog();
    if (backlog > worst_backlog) worst_backlog = backlog;
    link.transmit(make_packet(factory, 100, engine.now()));
    EXPECT_GE(link.stats().max_queue_delay, previous);
    previous = link.stats().max_queue_delay;
  }
  // The recorded high-water mark is exactly the worst backlog any frame
  // saw at hand-off: 5 frames ahead x 120 ns each.
  EXPECT_EQ(link.stats().max_queue_delay, worst_backlog);
  EXPECT_EQ(link.stats().max_queue_delay, sim::nanos(std::int64_t{600}));
  engine.run();
}

TEST(Link, AdminDownDropsUntilBroughtBackUp) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 0;
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  PacketFactory factory;
  EXPECT_TRUE(link.admin_up());
  link.set_admin_up(false);
  link.transmit(make_packet(factory, 100, engine.now()));
  link.transmit(make_packet(factory, 100, engine.now()));
  engine.run();
  EXPECT_EQ(link.stats().frames_dropped_down, 2u);
  EXPECT_EQ(link.stats().frames_delivered, 0u);
  link.set_admin_up(true);
  link.transmit(make_packet(factory, 100, engine.now()));
  engine.run();
  EXPECT_EQ(link.stats().frames_delivered, 1u);
  EXPECT_EQ(link.stats().frames_dropped_down, 2u);
}

TEST(Link, LossOverrideBeatsConfigUntilCleared) {
  sim::Engine engine;
  RecordingDevice sink{engine};
  LinkConfig config;
  config.rate_bps = 0;
  config.loss_probability = 0.0;
  Link link{engine, "l", config};
  link.connect_to(sink, 0);
  PacketFactory factory;
  EXPECT_EQ(link.effective_loss(), 0.0);
  link.set_loss_override(1.0);  // certain loss, regardless of config
  EXPECT_EQ(link.effective_loss(), 1.0);
  link.transmit(make_packet(factory, 100, engine.now()));
  engine.run();
  EXPECT_EQ(link.stats().frames_dropped_loss, 1u);
  EXPECT_EQ(link.stats().frames_delivered, 0u);
  link.set_loss_override(-1.0);  // back to the configured (lossless) rate
  EXPECT_EQ(link.effective_loss(), 0.0);
  link.transmit(make_packet(factory, 100, engine.now()));
  engine.run();
  EXPECT_EQ(link.stats().frames_delivered, 1u);
  EXPECT_EQ(link.stats().frames_dropped_loss, 1u);
}

TEST(Link, SerializationDelayScalesWithRateAndSize) {
  sim::Engine engine;
  LinkConfig config;
  config.rate_bps = 10'000'000'000;
  Link link{engine, "l", config};
  // §5: processing Ethernet+IP+TCP headers at 10 Gb/s costs ~40 ns; the
  // matching wire-time claim: 54 header bytes short of data = 43.2 ns.
  EXPECT_NEAR(link.serialization_delay(54).nanos(), 43.2, 0.01);
  EXPECT_NEAR(link.serialization_delay(1500).nanos(), 1200.0, 0.01);
  LinkConfig fast = config;
  fast.rate_bps = 100'000'000'000;
  Link link100{engine, "l100", fast};
  EXPECT_NEAR(link100.serialization_delay(1500).nanos(), 120.0, 0.01);
}

}  // namespace
}  // namespace tsn::net
