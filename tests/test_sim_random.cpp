#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tsn::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng{13};
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng{19};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{23};
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{29};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  Rng rng{31};
  constexpr int kN = 50'000;
  for (double mean : {0.5, 4.0, 100.0, 1000.0}) {
    double sum = 0.0;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng{37};
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ParetoRespectsScaleAndIsHeavyTailed) {
  Rng rng{41};
  double max_seen = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.pareto(2.0, 2.5);
    EXPECT_GE(x, 2.0);
    max_seen = std::max(max_seen, x);
  }
  EXPECT_GT(max_seen, 10.0);  // heavy tail reaches far beyond the scale
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng{43};
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto rank = rng.zipf(100, 1.1);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 100u);
    ++counts[rank];
  }
  EXPECT_GT(counts[1], counts[10] * 2);
  EXPECT_GT(counts[1], counts[50] * 5);
}

TEST(Rng, WeightedIndexMatchesWeights) {
  Rng rng{47};
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / 100'000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100'000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[2] / 100'000.0, 0.6, 0.015);
}

TEST(Rng, WeightedIndexDegenerateCases) {
  Rng rng{53};
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(zero), 0u);
  const std::vector<double> single{5.0};
  EXPECT_EQ(rng.weighted_index(single), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{59};
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace tsn::sim
