#include "proto/xpress.hpp"

#include <gtest/gtest.h>

namespace tsn::proto::xpress {
namespace {

std::vector<std::byte> payload_of(std::size_t n, std::uint8_t fill = 0x5a) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(Xpress, FullHeaderRoundTrip) {
  const auto payload = payload_of(26);
  const auto frame = encode_full(17, 1000, payload);
  EXPECT_EQ(frame.size(), kFullHeaderSize + 26);
  Decompressor rx;
  const auto result = rx.decode(frame);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->frame.stream_id, 17);
  EXPECT_EQ(result->frame.seq, 1000u);
  EXPECT_EQ(result->frame.payload.size(), 26u);
  EXPECT_EQ(result->consumed, frame.size());
}

TEST(Xpress, CompressorUsesFullThenCompact) {
  Compressor tx;
  std::vector<std::byte> out;
  EXPECT_EQ(tx.encode(5, 1, payload_of(10), out), kFullHeaderSize);
  EXPECT_EQ(tx.encode(5, 2, payload_of(10), out), kCompactHeaderSize);
  EXPECT_EQ(tx.encode(5, 3, payload_of(10), out), kCompactHeaderSize);
  EXPECT_EQ(out.size(), kFullHeaderSize + 2 * kCompactHeaderSize + 30);
}

TEST(Xpress, SequenceGapTriggersResync) {
  Compressor tx;
  std::vector<std::byte> out;
  (void)tx.encode(5, 1, payload_of(4), out);
  (void)tx.encode(5, 2, payload_of(4), out);
  EXPECT_EQ(tx.encode(5, 10, payload_of(4), out), kResyncHeaderSize);
  EXPECT_EQ(tx.encode(5, 11, payload_of(4), out), kCompactHeaderSize);
}

TEST(Xpress, EndToEndStreamDecodesInOrder) {
  Compressor tx;
  Decompressor rx;
  std::vector<std::byte> pipe;
  constexpr int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) {
    const auto stream = static_cast<std::uint16_t>(i % 3);
    (void)tx.encode(stream, static_cast<std::uint32_t>(i / 3 + 1),
                    payload_of(8, static_cast<std::uint8_t>(i)), pipe);
  }
  std::size_t offset = 0;
  int decoded = 0;
  while (offset < pipe.size()) {
    const auto result = rx.decode(std::span{pipe}.subspan(offset));
    ASSERT_TRUE(result.has_value()) << "frame " << decoded;
    EXPECT_EQ(result->frame.stream_id, decoded % 3);
    EXPECT_EQ(result->frame.seq, static_cast<std::uint32_t>(decoded / 3 + 1));
    offset += result->consumed;
    ++decoded;
  }
  EXPECT_EQ(decoded, kFrames);
  EXPECT_EQ(rx.unknown_context_errors(), 0u);
}

TEST(Xpress, ResyncCarriesExplicitSequence) {
  Compressor tx;
  Decompressor rx;
  std::vector<std::byte> pipe;
  (void)tx.encode(9, 1, payload_of(4), pipe);
  (void)tx.encode(9, 50, payload_of(4), pipe);  // gap -> resync form
  auto first = rx.decode(pipe);
  ASSERT_TRUE(first.has_value());
  auto second = rx.decode(std::span{pipe}.subspan(first->consumed));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->frame.seq, 50u);
}

TEST(Xpress, CompactForUnknownContextIsCountedNotCrashed) {
  Compressor tx;
  std::vector<std::byte> pipe;
  (void)tx.encode(9, 1, payload_of(4), pipe);
  (void)tx.encode(9, 2, payload_of(4), pipe);
  // A fresh receiver that missed the full header cannot decode the compact
  // frame.
  Decompressor cold;
  const auto result = cold.decode(std::span{pipe}.subspan(kFullHeaderSize + 4));
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(cold.unknown_context_errors(), 1u);
}

TEST(Xpress, ResetForcesFullHeaders) {
  Compressor tx;
  std::vector<std::byte> out;
  (void)tx.encode(5, 1, payload_of(4), out);
  (void)tx.encode(5, 2, payload_of(4), out);
  tx.reset();
  EXPECT_EQ(tx.encode(5, 3, payload_of(4), out), kFullHeaderSize);
}

TEST(Xpress, ContextExhaustionFallsBackToFull) {
  Compressor tx;
  std::vector<std::byte> out;
  for (std::uint16_t s = 0; s < kMaxContexts; ++s) {
    (void)tx.encode(s, 1, payload_of(1), out);
  }
  EXPECT_EQ(tx.context_count(), kMaxContexts);
  // The 65th stream never gets a context: always full headers.
  EXPECT_EQ(tx.encode(999, 1, payload_of(1), out), kFullHeaderSize);
  EXPECT_EQ(tx.encode(999, 2, payload_of(1), out), kFullHeaderSize);
}

TEST(Xpress, DecodeRejectsGarbageAndTruncation) {
  Decompressor rx;
  EXPECT_FALSE(rx.decode({}).has_value());
  const auto junk = payload_of(5, 0x01);  // 0x01 is neither full nor compact
  EXPECT_FALSE(rx.decode(junk).has_value());
  const auto frame = encode_full(1, 1, payload_of(20));
  EXPECT_FALSE(rx.decode(std::span{frame}.subspan(0, frame.size() - 1)).has_value());
}

TEST(Xpress, OverheadComparisonMatchesPaperArithmetic) {
  // §5: ~46 bytes of standard headers vs 3 bytes compact — the order
  // entry messages themselves are 14-26 bytes, so headers dominated.
  const auto cmp = overhead_comparison();
  EXPECT_EQ(cmp.standard_headers, 46u);
  EXPECT_EQ(cmp.xpress_compact, 3u);
  const double standard_share_cancel =
      static_cast<double>(cmp.standard_headers) / (14.0 + cmp.standard_headers);
  const double xpress_share_cancel =
      static_cast<double>(cmp.xpress_compact) / (14.0 + cmp.xpress_compact);
  EXPECT_GT(standard_share_cancel, 0.7);
  EXPECT_LT(xpress_share_cancel, 0.2);
}

}  // namespace
}  // namespace tsn::proto::xpress
