// IGMP querier + membership aging: snooped state is soft state. Hosts
// running an IgmpResponder keep their feeds alive; hosts that joined once
// and went silent are aged out — the operational behaviour that makes
// "why did this server stop getting the feed?" a classic trading-floor
// incident.
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include "l2/commodity_switch.hpp"
#include "mcast/responder.hpp"
#include "mcast/subscribe.hpp"
#include "net/fabric.hpp"
#include "net/stack.hpp"

namespace tsn::mcast {
namespace {

struct AgingRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  l2::CommoditySwitch sw;
  net::Nic source{engine, "src", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic maintained{engine, "live", net::MacAddr::from_host_id(2),
                      net::Ipv4Addr{10, 0, 0, 2}};
  net::Nic silent{engine, "silent", net::MacAddr::from_host_id(3), net::Ipv4Addr{10, 0, 0, 3}};
  net::NetStack maintained_stack{maintained};
  IgmpResponder responder{maintained_stack};

  static l2::CommoditySwitchConfig config() {
    l2::CommoditySwitchConfig out;
    out.port_count = 4;
    out.igmp_query_interval = sim::millis(std::int64_t{100});
    out.membership_timeout = sim::millis(std::int64_t{250});
    return out;
  }

  AgingRig() : sw(engine, "tor", config()) {
    fabric.connect(sw, 0, source, 0, net::LinkConfig{});
    fabric.connect(sw, 1, maintained, 0, net::LinkConfig{});
    fabric.connect(sw, 2, silent, 0, net::LinkConfig{});
  }

  void run_for(std::int64_t ms) {
    engine.run_until(engine.now() + sim::millis(ms));
  }
};

const net::Ipv4Addr kGroup{239, 42, 0, 1};

TEST(IgmpAging, ResponderAnswersQueries) {
  AgingRig rig;
  rig.responder.join(kGroup);
  rig.sw.start_querier();
  rig.run_for(550);
  // ~5 queries in 550 ms; the responder answered each.
  EXPECT_GE(rig.responder.queries_answered(), 4u);
  EXPECT_GE(rig.responder.reports_sent(), 5u);  // initial join + refreshes
  EXPECT_TRUE(rig.responder.is_joined(kGroup));
}

TEST(IgmpAging, MaintainedMembershipSurvives) {
  AgingRig rig;
  rig.responder.join(kGroup);
  rig.sw.start_querier();
  rig.run_for(1'000);
  EXPECT_EQ(rig.sw.mroutes().group_count(), 1u);
  EXPECT_EQ(rig.sw.memberships_aged_out(), 0u);
  // Traffic still flows after many timeout windows.
  int got = 0;
  rig.maintained.set_rx_handler([&](const net::PacketPtr& p, sim::Time) {
    const auto decoded = net::decode_frame(p->frame());
    if (decoded && decoded->ip && decoded->ip->dst == kGroup) ++got;  // ignore queries
  });
  rig.source.send_frame(
      net::build_multicast_frame(rig.source.mac(), rig.source.ip(), kGroup, 30001, {}));
  rig.run_for(10);
  EXPECT_EQ(got, 1);
}

TEST(IgmpAging, SilentMembershipAgesOut) {
  AgingRig rig;
  // One-shot join from the silent host: no responder behind it.
  join_group(rig.silent, kGroup);
  rig.run_for(10);
  ASSERT_EQ(rig.sw.mroutes().group_count(), 1u);
  rig.sw.start_querier();
  rig.run_for(1'000);
  EXPECT_EQ(rig.sw.mroutes().group_count(), 0u);
  EXPECT_EQ(rig.sw.memberships_aged_out(), 1u);
  // The feed is gone for the silent host.
  int got = 0;
  rig.silent.set_rx_handler([&](const net::PacketPtr& p, sim::Time) {
    const auto decoded = net::decode_frame(p->frame());
    if (decoded && decoded->ip && decoded->ip->dst == kGroup) ++got;
  });
  rig.source.send_frame(
      net::build_multicast_frame(rig.source.mac(), rig.source.ip(), kGroup, 30001, {}));
  rig.run_for(10);
  EXPECT_EQ(got, 0);
}

TEST(IgmpAging, MixedHostsOnlySilentPortExpires) {
  AgingRig rig;
  rig.responder.join(kGroup);
  join_group(rig.silent, kGroup);
  rig.sw.start_querier();
  rig.run_for(1'000);
  const auto lookup = rig.sw.mroutes().lookup(kGroup);
  ASSERT_NE(lookup.ports, nullptr);
  ASSERT_EQ(lookup.ports->size(), 1u);
  EXPECT_EQ(lookup.ports->front(), 1u);  // the maintained host's port
}

TEST(IgmpAging, LeaveIsImmediateNotAged) {
  AgingRig rig;
  rig.responder.join(kGroup);
  rig.sw.start_querier();
  rig.run_for(150);
  rig.responder.leave(kGroup);
  rig.run_for(20);
  EXPECT_EQ(rig.sw.mroutes().group_count(), 0u);
  EXPECT_EQ(rig.sw.memberships_aged_out(), 0u);
  EXPECT_FALSE(rig.responder.is_joined(kGroup));
}

TEST(IgmpAging, JoinAndLeaveAreIdempotent) {
  AgingRig rig;
  rig.responder.join(kGroup);
  rig.responder.join(kGroup);
  EXPECT_EQ(rig.responder.joined_count(), 1u);
  EXPECT_EQ(rig.responder.reports_sent(), 1u);
  rig.responder.leave(kGroup);
  rig.responder.leave(kGroup);
  EXPECT_EQ(rig.responder.joined_count(), 0u);
}

TEST(IgmpAging, StartQuerierValidatesConfig) {
  sim::Engine engine;
  l2::CommoditySwitch sw{engine, "tor", l2::CommoditySwitchConfig{}};
  EXPECT_THROW(sw.start_querier(), std::invalid_argument);
}

TEST(IgmpAging, GroupSpecificQueryRefreshesOnlyThatGroup) {
  // Direct cable: querier NIC <-> responder host.
  sim::Engine engine;
  net::Fabric fabric{engine};
  net::Nic querier{engine, "querier", net::MacAddr::from_host_id(1),
                   net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic host{engine, "host", net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 2}};
  fabric.connect(querier, 0, host, 0, net::LinkConfig{});
  net::NetStack stack{host};
  IgmpResponder responder{stack};
  const net::Ipv4Addr other{239, 42, 0, 2};
  responder.join(kGroup);
  responder.join(other);
  engine.run();
  const auto before = responder.reports_sent();

  // Group-specific query for a joined group: exactly one report.
  querier.send_frame(build_igmp_frame(querier.mac(), querier.ip(),
                                      IgmpMessage{IgmpType::kMembershipQuery, kGroup}));
  engine.run();
  EXPECT_EQ(responder.reports_sent(), before + 1);

  // Group-specific query for a group we never joined: no report.
  querier.send_frame(build_igmp_frame(querier.mac(), querier.ip(),
                                      IgmpMessage{IgmpType::kMembershipQuery,
                                                  net::Ipv4Addr{239, 9, 9, 9}}));
  engine.run();
  EXPECT_EQ(responder.reports_sent(), before + 1);

  // General query: a report per joined group.
  querier.send_frame(build_igmp_frame(querier.mac(), querier.ip(),
                                      IgmpMessage{IgmpType::kMembershipQuery, net::Ipv4Addr{}}));
  engine.run();
  EXPECT_EQ(responder.reports_sent(), before + 3);
}

}  // namespace
}  // namespace tsn::mcast
