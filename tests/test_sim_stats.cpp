// Behavioural contract of the shared summary-statistics types
// (telemetry::Histogram / telemetry::WindowedCounter): benches, capture
// appliances, and sim entities all report through these.
#include <gtest/gtest.h>

#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace tsn::telemetry {
namespace {

using sim::micros;
using sim::seconds;
using Duration = sim::Duration;
using Time = sim::Time;

TEST(Histogram, EmptyIsSafe) {
  Histogram s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.median(), 0.0);
}

// The percentile edge-case contract (documented in telemetry/metrics.hpp).
TEST(Histogram, PercentileOnEmptyReturnsZeroForAnyInRangeP) {
  Histogram s;
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 0.0);
}

TEST(Histogram, PercentileOutOfRangeThrowsEvenWhenEmpty) {
  Histogram s;
  EXPECT_THROW((void)s.percentile(-0.001), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(100.001), std::invalid_argument);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
}

TEST(Histogram, PercentileZeroAndHundredAreExtremes) {
  Histogram s;
  for (double v : {9.0, 1.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 9.0);
}

TEST(Histogram, BasicMoments) {
  Histogram s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(Histogram, PercentilesAreExactNearestRank) {
  Histogram s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Histogram, PercentileOutOfRangeThrows) {
  Histogram s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(Histogram, AddAfterPercentileStillCorrect) {
  Histogram s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);  // nearest-rank of 2 samples
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(Histogram, ClearResets) {
  Histogram s;
  s.add(3.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(Histogram, TableRowFormatsFourColumns) {
  Histogram s;
  s.add(73.0);
  s.add(89.0);
  s.add(1514.0);
  const std::string row = s.table_row();
  EXPECT_NE(row.find("73"), std::string::npos);
  EXPECT_NE(row.find("1514"), std::string::npos);
}

TEST(WindowedCounter, CountsFallIntoCorrectWindows) {
  WindowedCounter counter{Time::zero(), seconds(std::int64_t{1})};
  counter.record(Time{500'000'000'000});        // 0.5 s -> window 0
  counter.record(Time{1'500'000'000'000});      // 1.5 s -> window 1
  counter.record(Time{1'600'000'000'000}, 3);   // window 1 again
  ASSERT_EQ(counter.counts().size(), 2u);
  EXPECT_EQ(counter.counts()[0], 1u);
  EXPECT_EQ(counter.counts()[1], 4u);
}

TEST(WindowedCounter, IgnoresEventsBeforeOrigin) {
  WindowedCounter counter{Time{1'000'000}, micros(std::int64_t{1})};
  counter.record(Time{0});
  EXPECT_TRUE(counter.counts().empty());
}

TEST(WindowedCounter, RejectsNonPositiveWindow) {
  EXPECT_THROW((WindowedCounter{Time::zero(), Duration::zero()}), std::invalid_argument);
}

TEST(WindowedCounter, StatsSkipEmptyWindowsByDefault) {
  WindowedCounter counter{Time::zero(), micros(std::int64_t{100})};
  counter.record(Time::zero() + micros(std::int64_t{50}));   // window 0
  counter.record(Time::zero() + micros(std::int64_t{950}));  // window 9
  const auto skip_empty = counter.stats();
  EXPECT_EQ(skip_empty.count(), 2u);
  const auto with_empty = counter.stats(true);
  EXPECT_EQ(with_empty.count(), 10u);
  EXPECT_DOUBLE_EQ(with_empty.min(), 0.0);
}

}  // namespace
}  // namespace tsn::telemetry
