#include "proto/partition.hpp"

#include <gtest/gtest.h>

#include "feed/symbols.hpp"

namespace tsn::proto {
namespace {

TEST(Partition, AlphabetBucketsAreOrderedAndCovering) {
  const AlphabetPartition scheme{4};
  EXPECT_EQ(scheme.partition_count(), 4u);
  EXPECT_EQ(scheme.partition_of(Symbol{"APPLE"}, InstrumentKind::kEquity), 0u);
  EXPECT_EQ(scheme.partition_of(Symbol{"ZEBRA"}, InstrumentKind::kEquity), 3u);
  // Every letter maps into range, monotonically.
  std::uint32_t last = 0;
  for (char c = 'A'; c <= 'Z'; ++c) {
    const auto p = scheme.partition_of(Symbol{std::string(1, c)}, InstrumentKind::kEquity);
    EXPECT_LT(p, 4u);
    EXPECT_GE(p, last);
    last = p;
  }
}

TEST(Partition, AlphabetLowercaseAndNonAlphaHandled) {
  const AlphabetPartition scheme{26};
  EXPECT_EQ(scheme.partition_of(Symbol{"apple"}, InstrumentKind::kEquity),
            scheme.partition_of(Symbol{"APPLE"}, InstrumentKind::kEquity));
  EXPECT_EQ(scheme.partition_of(Symbol{"1X"}, InstrumentKind::kEquity), 0u);
}

TEST(Partition, AlphabetRejectsBadBucketCounts) {
  EXPECT_THROW(AlphabetPartition{0}, std::invalid_argument);
  EXPECT_THROW(AlphabetPartition{27}, std::invalid_argument);
}

TEST(Partition, KindSchemeSeparatesInstrumentTypes) {
  const KindPartition scheme;
  EXPECT_EQ(scheme.partition_count(), 4u);
  const Symbol s{"SAME"};
  EXPECT_NE(scheme.partition_of(s, InstrumentKind::kEquity),
            scheme.partition_of(s, InstrumentKind::kEtf));
  EXPECT_NE(scheme.partition_of(s, InstrumentKind::kOption),
            scheme.partition_of(s, InstrumentKind::kFuture));
}

TEST(Partition, HashIsDeterministicAndInRange) {
  const HashPartition scheme{131};
  const auto p1 = scheme.partition_of(Symbol{"ACME"}, InstrumentKind::kEquity);
  const auto p2 = scheme.partition_of(Symbol{"ACME"}, InstrumentKind::kEquity);
  EXPECT_EQ(p1, p2);
  EXPECT_LT(p1, 131u);
  EXPECT_THROW(HashPartition{0}, std::invalid_argument);
}

TEST(Partition, HashBalancesAcrossManySymbols) {
  // §3: firms re-partition with many balanced partitions; a hash scheme
  // must not leave partitions starving.
  const HashPartition scheme{64};
  feed::SymbolUniverse universe{5'000, 123};
  std::vector<int> counts(64, 0);
  for (const auto& inst : universe.instruments()) {
    ++counts[scheme.partition_of(inst.symbol, inst.kind)];
  }
  const double expected = 5'000.0 / 64.0;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.5);
    EXPECT_LT(c, expected * 1.6);
  }
}

TEST(Partition, CompositeCombinesKindAndInner) {
  auto inner = std::make_shared<AlphabetPartition>(4);
  const CompositePartition scheme{inner};
  EXPECT_EQ(scheme.partition_count(), 16u);
  const Symbol apple{"APPLE"};
  const auto equity = scheme.partition_of(apple, InstrumentKind::kEquity);
  const auto option = scheme.partition_of(apple, InstrumentKind::kOption);
  EXPECT_EQ(equity, 0u);
  EXPECT_EQ(option, 2u * 4u + 0u);
  EXPECT_THROW(CompositePartition{nullptr}, std::invalid_argument);
}

TEST(Partition, SchemesAreInterchangeableThroughTheInterface) {
  auto check = [](const PartitionScheme& scheme) {
    for (const char* name : {"AA", "MM", "ZZ"}) {
      EXPECT_LT(scheme.partition_of(Symbol{name}, InstrumentKind::kEquity),
                scheme.partition_count());
    }
  };
  check(AlphabetPartition{7});
  check(KindPartition{});
  check(HashPartition{33});
  check(CompositePartition{std::make_shared<HashPartition>(5)});
}

}  // namespace
}  // namespace tsn::proto
