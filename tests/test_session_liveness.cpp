// Session liveness on the order-entry link: exchanges heartbeat idle
// sessions and disconnect dead counterparties (§2's long-lived TCP
// sessions survive six-hour days only because both ends prove liveness).
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include "exchange/exchange.hpp"
#include "net/fabric.hpp"
#include "trading/gateway.hpp"

namespace tsn {
namespace {

exchange::ExchangeConfig exchange_config() {
  exchange::ExchangeConfig config;
  config.symbols = {{proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity,
                     proto::price_from_dollars(100)}};
  config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  config.heartbeat_interval = sim::millis(std::int64_t{20});
  config.session_timeout = sim::millis(std::int64_t{65});
  config.feed_mac = net::MacAddr::from_host_id(1);
  config.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
  config.order_mac = net::MacAddr::from_host_id(2);
  config.order_ip = net::Ipv4Addr{10, 0, 0, 2};
  return config;
}

struct LivenessRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange exch;
  net::Nic client_nic{engine, "client", net::MacAddr::from_host_id(10),
                      net::Ipv4Addr{10, 0, 0, 10}};
  net::NetStack client{client_nic};
  net::TcpEndpoint* session = nullptr;
  proto::boe::StreamParser parser;
  int heartbeats_received = 0;
  std::uint32_t seq = 1;

  LivenessRig() : exch(engine, exchange_config()) {
    fabric.connect(exch.order_nic(), 0, client_nic, 0, net::LinkConfig{});
    session = &client.connect_tcp(exch.order_nic().mac(), exch.order_nic().ip(),
                                  exch.config().order_port, 0);
    session->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
      parser.feed(bytes);
      while (auto decoded = parser.next()) {
        if (std::holds_alternative<proto::boe::Heartbeat>(decoded->message)) {
          ++heartbeats_received;
        }
      }
    });
  }

  void login() {
    session->send(proto::boe::encode(proto::boe::LoginRequest{1, 0xfeed}, seq++));
    engine.run_until(engine.now() + sim::millis(std::int64_t{1}));
  }

  void run_for(std::int64_t ms) { engine.run_until(engine.now() + sim::millis(ms)); }
};

TEST(SessionLiveness, IdleSessionReceivesHeartbeats) {
  LivenessRig rig;
  rig.login();
  rig.exch.start_heartbeats();
  rig.run_for(60);  // under the timeout; several heartbeat intervals
  EXPECT_GE(rig.heartbeats_received, 1);
  EXPECT_GE(rig.exch.stats().heartbeats_sent, 1u);
  EXPECT_EQ(rig.exch.stats().sessions_timed_out, 0u);
}

TEST(SessionLiveness, SilentSessionTimesOutAndIsDisconnected) {
  LivenessRig rig;
  rig.login();
  rig.exch.start_heartbeats();
  // The client never answers; TCP ACKs alone don't count as liveness.
  rig.run_for(200);
  EXPECT_EQ(rig.exch.stats().sessions_timed_out, 1u);
  // The exchange closed the connection (FIN reached the client).
  EXPECT_NE(rig.session->state(), net::TcpState::kEstablished);
}

TEST(SessionLiveness, ClientHeartbeatsKeepTheSessionAlive) {
  LivenessRig rig;
  rig.login();
  rig.exch.start_heartbeats();
  for (int i = 0; i < 20; ++i) {
    rig.session->send(proto::boe::encode(proto::boe::Heartbeat{}, rig.seq++));
    rig.run_for(15);
  }
  EXPECT_EQ(rig.exch.stats().sessions_timed_out, 0u);
  EXPECT_EQ(rig.session->state(), net::TcpState::kEstablished);
}

TEST(SessionLiveness, SilentSessionDiesInExactlyTheTimeoutWindow) {
  // heartbeat_interval = 20ms, session_timeout = 65ms: the exchange sweeps
  // on the heartbeat tick and kills a session at the FIRST tick where idle
  // time exceeds the timeout — not a tick earlier, not a tick later.
  LivenessRig rig;
  rig.login();  // last_rx ~ now; heartbeat ticks start counting from here
  rig.exch.start_heartbeats();
  // Ticks land near 21/41/61/81ms. At 61ms idle < 65ms: still alive.
  rig.run_for(70);
  EXPECT_EQ(rig.exch.stats().sessions_timed_out, 0u);
  // The 81ms tick sees idle > 65ms: dead exactly one sweep past the window.
  rig.run_for(15);
  EXPECT_EQ(rig.exch.stats().sessions_timed_out, 1u);
}

TEST(SessionLiveness, ClientHeartbeatsRefreshWithoutPingPong) {
  // Incoming heartbeats are pure liveness: they refresh the idle clock but
  // are never answered, so a chatty client cannot trigger a heartbeat echo
  // storm. The exchange only heartbeats a session that has gone quiet.
  LivenessRig rig;
  rig.login();
  rig.exch.start_heartbeats();
  for (int i = 0; i < 50; ++i) {
    rig.session->send(proto::boe::encode(proto::boe::Heartbeat{}, rig.seq++));
    rig.run_for(2);
  }
  // 50 client heartbeats over 100ms: session alive, and the exchange sent
  // nothing back (idle never crossed one heartbeat interval).
  EXPECT_EQ(rig.exch.stats().sessions_timed_out, 0u);
  EXPECT_EQ(rig.exch.stats().heartbeats_sent, 0u);
  EXPECT_EQ(rig.heartbeats_received, 0);
  EXPECT_EQ(rig.session->state(), net::TcpState::kEstablished);
}

TEST(SessionLiveness, StartHeartbeatsValidatesConfig) {
  sim::Engine engine;
  auto config = exchange_config();
  config.heartbeat_interval = sim::Duration::zero();
  exchange::Exchange exch{engine, std::move(config)};
  EXPECT_THROW(exch.start_heartbeats(), std::invalid_argument);
}

TEST(SessionLiveness, GatewayKeepAliveSurvivesExchangeTimeouts) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange exch{engine, exchange_config()};
  trading::GatewayConfig gconfig;
  gconfig.exchange_mac = exch.order_nic().mac();
  gconfig.exchange_ip = exch.order_nic().ip();
  gconfig.exchange_port = exch.config().order_port;
  gconfig.heartbeat_interval = sim::millis(std::int64_t{25});  // < session_timeout
  gconfig.client_mac = net::MacAddr::from_host_id(20);
  gconfig.client_ip = net::Ipv4Addr{10, 0, 0, 20};
  gconfig.upstream_mac = net::MacAddr::from_host_id(21);
  gconfig.upstream_ip = net::Ipv4Addr{10, 0, 0, 21};
  trading::Gateway gateway{engine, gconfig};
  fabric.connect(gateway.upstream_nic(), 0, exch.order_nic(), 0, net::LinkConfig{});
  gateway.start();
  exch.start_heartbeats();
  engine.run_until(engine.now() + sim::millis(std::int64_t{500}));
  EXPECT_TRUE(gateway.upstream_ready());
  EXPECT_GT(gateway.stats().heartbeats_sent, 5u);
  EXPECT_EQ(exch.stats().sessions_timed_out, 0u);
}

}  // namespace
}  // namespace tsn
