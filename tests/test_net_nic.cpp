#include "sim/engine.hpp"
#include "net/nic.hpp"

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/headers.hpp"

namespace tsn::net {
namespace {

struct TwoNics {
  sim::Engine engine;
  net::Fabric fabric{engine};
  Nic a{engine, "a", MacAddr::from_host_id(1), Ipv4Addr{10, 0, 0, 1}};
  Nic b{engine, "b", MacAddr::from_host_id(2), Ipv4Addr{10, 0, 0, 2}};

  TwoNics() { fabric.connect(a, 0, b, 0, LinkConfig{}); }
};

std::vector<std::byte> frame_to(const Nic& from, const Nic& to) {
  return build_udp_frame(from.mac(), to.mac(), from.ip(), to.ip(), 1, 2,
                         std::vector<std::byte>(8, std::byte{1}));
}

TEST(Nic, DeliversToRxHandler) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler([&](const PacketPtr&, sim::Time) { ++received; });
  t.a.send_frame(frame_to(t.a, t.b));
  t.engine.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(t.a.tx_frames(), 1u);
  EXPECT_EQ(t.b.rx_frames(), 1u);
}

TEST(Nic, FiltersForeignUnicastByDefault) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler([&](const PacketPtr&, sim::Time) { ++received; });
  // Frame addressed to a third MAC: NIC b must drop it in hardware.
  auto frame = build_udp_frame(t.a.mac(), MacAddr::from_host_id(99), t.a.ip(),
                               Ipv4Addr{10, 0, 0, 99}, 1, 2, {});
  t.a.send_frame(std::move(frame));
  t.engine.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(t.b.rx_filtered(), 1u);
}

TEST(Nic, PromiscuousModeAcceptsEverything) {
  TwoNics t;
  int received = 0;
  t.b.set_promiscuous(true);
  t.b.set_rx_handler([&](const PacketPtr&, sim::Time) { ++received; });
  auto frame = build_udp_frame(t.a.mac(), MacAddr::from_host_id(99), t.a.ip(),
                               Ipv4Addr{10, 0, 0, 99}, 1, 2, {});
  t.a.send_frame(std::move(frame));
  t.engine.run();
  EXPECT_EQ(received, 1);
}

TEST(Nic, BroadcastAlwaysAccepted) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler([&](const PacketPtr&, sim::Time) { ++received; });
  auto frame = build_udp_frame(t.a.mac(), MacAddr::broadcast(), t.a.ip(),
                               Ipv4Addr{10, 255, 255, 255}, 1, 2, {});
  t.a.send_frame(std::move(frame));
  t.engine.run();
  EXPECT_EQ(received, 1);
}

TEST(Nic, MulticastRequiresSubscription) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler([&](const PacketPtr&, sim::Time) { ++received; });
  const Ipv4Addr group{239, 1, 1, 1};
  auto frame = build_multicast_frame(t.a.mac(), t.a.ip(), group, 30001, {});
  t.a.send_frame(std::vector<std::byte>{frame});
  t.engine.run();
  EXPECT_EQ(received, 0);

  t.b.subscribe_multicast_mac(multicast_mac(group));
  t.a.send_frame(std::move(frame));
  t.engine.run();
  EXPECT_EQ(received, 1);

  t.b.unsubscribe_multicast_mac(multicast_mac(group));
  t.a.send_frame(build_multicast_frame(t.a.mac(), t.a.ip(), group, 30001, {}));
  t.engine.run();
  EXPECT_EQ(received, 1);
}

TEST(Nic, RxDelayModelsSoftwareHop) {
  TwoNics t;
  sim::Time handled;
  t.b.set_rx_delay(sim::micros(std::int64_t{1}));
  t.b.set_rx_handler([&](const PacketPtr&, sim::Time) { handled = t.engine.now(); });
  t.a.send_frame(frame_to(t.a, t.b));
  t.engine.run();
  // Wire time (64B min frame + overhead at 10G, 50 ns prop) plus the 1 us hop.
  EXPECT_GT(handled, sim::Time::zero() + sim::micros(std::int64_t{1}));
}

TEST(Nic, UnpluggedNicDropsSilently) {
  sim::Engine engine;
  Nic lonely{engine, "x", MacAddr::from_host_id(5), Ipv4Addr{10, 0, 0, 5}};
  lonely.send_frame(std::vector<std::byte>(64, std::byte{0}));
  engine.run();
  EXPECT_EQ(lonely.tx_frames(), 0u);
}

TEST(Host, AddNicAppliesSoftwareLatency) {
  sim::Engine engine;
  Host host{engine, "server", sim::micros(std::int64_t{2})};
  Nic& nic = host.add_nic("md", MacAddr::from_host_id(8), Ipv4Addr{10, 0, 0, 8});
  EXPECT_EQ(host.nic_count(), 1u);
  EXPECT_EQ(&host.nic(0), &nic);
  EXPECT_EQ(host.software_latency(), sim::micros(std::int64_t{2}));
  EXPECT_EQ(nic.name(), "server/md");
}

TEST(Host, SeparateNicsPerFunctionLikeFigure1d) {
  sim::Engine engine;
  Host host{engine, "server", sim::micros(std::int64_t{1})};
  host.add_nic("mgmt", MacAddr::from_host_id(10), Ipv4Addr{192, 168, 0, 1});
  host.add_nic("md", MacAddr::from_host_id(11), Ipv4Addr{10, 0, 0, 11});
  host.add_nic("orders", MacAddr::from_host_id(12), Ipv4Addr{10, 0, 1, 11});
  EXPECT_EQ(host.nic_count(), 3u);
  EXPECT_NE(host.nic(0).mac(), host.nic(1).mac());
  EXPECT_NE(host.nic(1).ip(), host.nic(2).ip());
}

}  // namespace
}  // namespace tsn::net
