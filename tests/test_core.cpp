#include <gtest/gtest.h>

#include "core/design.hpp"
#include "core/latency_model.hpp"
#include "core/mcast_analysis.hpp"

namespace tsn::core {
namespace {

TEST(LatencyModel, Design1ArithmeticMatchesPaper) {
  // §4.1: 12 switch hops at 500 ns and 3 software hops; "half of the
  // overall time through the system is spent in the network!"
  PathSpec path;
  path.commodity_switch_hops = 12;
  path.software_hops = 3;
  path.link_traversals = 0;  // isolate the paper's pure hop arithmetic
  const auto breakdown = evaluate(path);
  EXPECT_EQ(breakdown.switching, sim::micros(std::int64_t{6}));
  EXPECT_EQ(breakdown.software, sim::micros(std::int64_t{6}));
  EXPECT_NEAR(breakdown.network_share(), 0.5, 0.01);
}

TEST(LatencyModel, SerializationScalesWithFrameAndRate) {
  PathSpec path;
  path.software_hops = 0;
  path.link_traversals = 1;
  path.frame_bytes = 92;  // Table 1 average
  path.link_rate_bps = 10'000'000'000;
  const auto breakdown = evaluate(path);
  // (92+20)*8 bits / 10 Gb/s = 89.6 ns.
  EXPECT_NEAR(breakdown.serialization.nanos(), 89.6, 0.1);
  path.link_traversals = 4;
  EXPECT_NEAR(evaluate(path).serialization.nanos(), 4 * 89.6, 0.5);
}

TEST(LatencyModel, EmptyPathIsZero) {
  PathSpec path;
  path.software_hops = 0;
  path.link_traversals = 0;
  const auto breakdown = evaluate(path);
  EXPECT_EQ(breakdown.total(), sim::Duration::zero());
  EXPECT_EQ(breakdown.network_share(), 0.0);
}

TEST(LatencyModel, ToStringMentionsShare) {
  PathSpec path;
  path.commodity_switch_hops = 12;
  const auto text = evaluate(path).to_string();
  EXPECT_NE(text.find("network-share"), std::string::npos);
}

TEST(Designs, TraditionalNetworkIsHalfOfTotal) {
  const TraditionalDesign design;
  const auto breakdown = design.tick_to_trade();
  // With serialization and propagation included the share is >= 0.5.
  EXPECT_GE(breakdown.network_share(), 0.5);
  EXPECT_GT(breakdown.total(), sim::micros(std::int64_t{10}));
  EXPECT_LT(breakdown.total(), sim::micros(std::int64_t{20}));
}

TEST(Designs, CloudIsOrdersOfMagnitudeSlower) {
  const TraditionalDesign colo;
  const CloudDesign cloud;
  const double ratio =
      cloud.tick_to_trade().total().nanos() / colo.tick_to_trade().total().nanos();
  EXPECT_GT(ratio, 20.0);  // equalized cloud latency dominates everything
  EXPECT_TRUE(cloud.supports_partitions(100'000));
}

TEST(Designs, L1sNetworkIsTwoOrdersOfMagnitudeBelowCommodity) {
  // §4.3: "two orders of magnitude lower latency than commodity switches."
  const TraditionalDesign commodity;
  const L1SDesign l1s;
  const double commodity_network = commodity.tick_to_trade().switching.nanos();
  const double l1s_network = l1s.tick_to_trade().switching.nanos();
  EXPECT_GT(commodity_network / l1s_network, 40.0);
  EXPECT_LT(l1s_network, 150.0);  // 2 fanouts + 2 merges = 6+6+56+56 = 124 ns
}

TEST(Designs, L1sCannotDeliverWidePartitioningWithoutMerge) {
  DeploymentAssumptions assumptions;
  assumptions.feed_nics_per_strategy = 2;
  const L1SDesign l1s{assumptions};
  EXPECT_TRUE(l1s.supports_partitions(2));
  EXPECT_FALSE(l1s.supports_partitions(3));
  EXPECT_FALSE(l1s.supports_partitions(1300));
}

TEST(Designs, TraditionalSupportsTodayButTablePressureIsReal) {
  const TraditionalDesign design;
  EXPECT_TRUE(design.supports_partitions(1300));   // fits today's table...
  EXPECT_FALSE(design.supports_partitions(6000));  // ...but not much growth
}

TEST(Designs, FpgaIsMiddleGround) {
  const TraditionalDesign commodity;
  const L1SDesign l1s;
  const FpgaL1SDesign fpga;
  const auto fpga_net = fpga.tick_to_trade().switching;
  EXPECT_LT(fpga_net, commodity.tick_to_trade().switching);
  EXPECT_GT(fpga_net, l1s.tick_to_trade().switching);
  // Small tables: cannot carry the firm's 1300 partitions (§5).
  EXPECT_FALSE(fpga.supports_partitions(1300));
  EXPECT_TRUE(fpga.supports_partitions(90));
}

TEST(Designs, ComparisonReportContainsAllDesigns) {
  const auto designs = all_designs();
  std::vector<const NetworkDesign*> raw;
  for (const auto& d : designs) raw.push_back(d.get());
  const auto report = comparison_report(raw, 1300);
  for (const auto& d : designs) {
    EXPECT_NE(report.find(std::string{d->name()}), std::string::npos);
  }
  EXPECT_NE(report.find("tick-to-trade"), std::string::npos);
}

TEST(McastAnalysis, PartitionDemandDoublesInTwoYears) {
  // §3: ~600 partitions two years ago, over 1300 now.
  const PartitionDemandModel demand;
  EXPECT_NEAR(static_cast<double>(demand.partitions_at(2022)), 600.0, 10.0);
  EXPECT_GT(demand.partitions_at(2024), 1250u);
  EXPECT_LT(demand.partitions_at(2024), 1400u);
}

TEST(McastAnalysis, DemandOutpacesCapacityEventually) {
  const auto today = mcast_capacity_at(2024);
  EXPECT_TRUE(today.fits);  // 1300 vs ~5040 still fits...
  EXPECT_GT(today.utilization, 0.2);
  const int crossover = capacity_crossover_year();
  EXPECT_GT(crossover, 2024);  // ...but the crossover is close
  EXPECT_LE(crossover, 2030);
}

TEST(McastAnalysis, UtilizationGrowsMonotonically) {
  double last = 0.0;
  for (int year = 2020; year <= 2028; ++year) {
    const auto report = mcast_capacity_at(year);
    EXPECT_GT(report.utilization, last);
    last = report.utilization;
  }
}

}  // namespace
}  // namespace tsn::core
