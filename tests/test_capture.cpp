#include "sim/engine.hpp"
#include "capture/tap.hpp"

#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "net/nic.hpp"

namespace tsn::capture {
namespace {

// a --- tap --- b
struct TapRig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  net::Nic a{engine, "a", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  net::Nic b{engine, "b", net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 2}};
  Tap tap;

  explicit TapRig(CaptureClock clock = {}) : tap(engine, "tap", clock) {
    fabric.connect(a, 0, tap, 0, net::LinkConfig{});
    fabric.connect(tap, 1, b, 0, net::LinkConfig{});
  }

  void send_a_to_b() {
    a.send_frame(net::build_udp_frame(a.mac(), b.mac(), a.ip(), b.ip(), 1, 2,
                                      std::vector<std::byte>(32, std::byte{9})));
  }
};

TEST(Tap, PassesTrafficThroughBothDirections) {
  TapRig rig;
  int got_b = 0;
  int got_a = 0;
  rig.b.set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got_b; });
  rig.a.set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++got_a; });
  rig.send_a_to_b();
  rig.engine.run();
  EXPECT_EQ(got_b, 1);
  rig.b.send_frame(net::build_udp_frame(rig.b.mac(), rig.a.mac(), rig.b.ip(), rig.a.ip(), 2, 1,
                                        {}));
  rig.engine.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(rig.tap.records().size(), 2u);
  EXPECT_EQ(rig.tap.records()[0].port, 0u);
  EXPECT_EQ(rig.tap.records()[1].port, 1u);
}

TEST(Tap, RecordsCarrySizesAndIds) {
  TapRig rig;
  rig.b.set_rx_handler([&](const net::PacketPtr& p, sim::Time) {
    ASSERT_EQ(rig.tap.records().size(), 1u);
    EXPECT_EQ(rig.tap.records()[0].packet_id, p->id());
    EXPECT_EQ(rig.tap.records()[0].frame_bytes, p->size_bytes());
  });
  rig.send_a_to_b();
  rig.engine.run();
}

TEST(Tap, PerfectClockStampsTruth) {
  TapRig rig;
  rig.send_a_to_b();
  rig.engine.run();
  ASSERT_EQ(rig.tap.records().size(), 1u);
  EXPECT_EQ(rig.tap.records()[0].stamped_time, rig.tap.records()[0].true_time);
}

TEST(Tap, ImperfectClockShowsOffsetAndJitter) {
  const CaptureClock skewed{sim::nanos(std::int64_t{10}), 0.0, sim::picos(50), 7};
  TapRig rig{skewed};
  for (int i = 0; i < 50; ++i) rig.send_a_to_b();
  rig.engine.run();
  ASSERT_EQ(rig.tap.records().size(), 50u);
  double total_error_ps = 0.0;
  for (const auto& record : rig.tap.records()) {
    const auto err = record.stamped_time - record.true_time;
    total_error_ps += static_cast<double>(err.picos());
  }
  // Mean error approximates the configured 10 ns offset.
  EXPECT_NEAR(total_error_ps / 50.0, 10'000.0, 100.0);
}

TEST(Tap, DriftAccumulatesOverTime) {
  // 100 ppb drift over 10 simulated seconds = 1 us of error.
  CaptureClock drifty{sim::Duration::zero(), 100.0, sim::Duration::zero(), 1};
  const auto early = drifty.stamp(sim::Time::zero() + sim::seconds(std::int64_t{1}));
  const auto late = drifty.stamp(sim::Time::zero() + sim::seconds(std::int64_t{10}));
  const auto early_err = early - (sim::Time::zero() + sim::seconds(std::int64_t{1}));
  const auto late_err = late - (sim::Time::zero() + sim::seconds(std::int64_t{10}));
  EXPECT_NEAR(static_cast<double>(early_err.picos()), 100e3, 1.0);   // 100 ns
  EXPECT_NEAR(static_cast<double>(late_err.picos()), 1000e3, 1.0);  // 1 us
}

TEST(Tap, RecordLimitBoundsMemory) {
  TapRig rig;
  rig.tap.set_record_limit(10);
  for (int i = 0; i < 25; ++i) rig.send_a_to_b();
  rig.engine.run();
  EXPECT_LE(rig.tap.records().size(), 10u);
}

TEST(LatencyTracker, MatchesCauseToEffect) {
  LatencyTracker tracker;
  tracker.record_cause(1, sim::Time::zero() + sim::micros(std::int64_t{10}));
  EXPECT_TRUE(tracker.record_effect(1, sim::Time::zero() + sim::micros(std::int64_t{14})));
  EXPECT_EQ(tracker.latencies_ns().count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.latencies_ns().mean(), 4'000.0);
}

TEST(LatencyTracker, UnmatchedEffectsAreCounted) {
  LatencyTracker tracker;
  EXPECT_FALSE(tracker.record_effect(99, sim::Time::zero()));
  EXPECT_EQ(tracker.unmatched_effects(), 1u);
  EXPECT_TRUE(tracker.latencies_ns().empty());
}

TEST(LatencyTracker, StrategyLatencyDefinition) {
  // §2: strategy latency = order send time minus most recent input event
  // time. The most recent cause wins when a cause id is re-recorded.
  LatencyTracker tracker;
  tracker.record_cause(5, sim::Time::zero() + sim::micros(std::int64_t{1}));
  tracker.record_cause(5, sim::Time::zero() + sim::micros(std::int64_t{2}));  // newer input
  EXPECT_TRUE(tracker.record_effect(5, sim::Time::zero() + sim::micros(std::int64_t{3})));
  EXPECT_DOUBLE_EQ(tracker.latencies_ns().mean(), 1'000.0);
}

}  // namespace
}  // namespace tsn::capture
