#include "feed/correlated.hpp"

#include <gtest/gtest.h>

namespace tsn::feed {
namespace {

TEST(CorrelatedBursts, ShapeAndDeterminism) {
  CorrelatedBurstConfig config;
  config.feed_count = 4;
  config.window_count = 500;
  const auto a = generate_correlated_bursts(config, 9);
  const auto b = generate_correlated_bursts(config, 9);
  ASSERT_EQ(a.multipliers.size(), 4u);
  ASSERT_EQ(a.multipliers[0].size(), 500u);
  for (std::size_t f = 0; f < 4; ++f) {
    for (std::size_t w = 0; w < 500; ++w) {
      EXPECT_EQ(a.multipliers[f][w], b.multipliers[f][w]);
      EXPECT_GT(a.multipliers[f][w], 0.0);
    }
  }
}

TEST(CorrelatedBursts, CommonWeightDrivesCorrelation) {
  CorrelatedBurstConfig lockstep;
  lockstep.common_weight = 1.0;
  CorrelatedBurstConfig independent;
  independent.common_weight = 0.0;
  CorrelatedBurstConfig mixed;
  mixed.common_weight = 0.7;
  const auto tight = generate_correlated_bursts(lockstep, 5);
  const auto loose = generate_correlated_bursts(independent, 5);
  const auto medium = generate_correlated_bursts(mixed, 5);
  EXPECT_NEAR(tight.correlation(0, 1), 1.0, 1e-9);
  EXPECT_LT(std::abs(loose.correlation(0, 1)), 0.35);
  EXPECT_GT(medium.correlation(0, 1), 0.4);
  EXPECT_GT(tight.correlation(0, 1), medium.correlation(0, 1));
}

TEST(CorrelatedBursts, CorrelationMakesSimultaneousPeaksWorse) {
  // §2's point, quantified: for link sizing, correlated feeds are worse
  // than independent ones because their peaks coincide.
  CorrelatedBurstConfig config;
  config.feed_count = 6;
  config.window_count = 2'000;
  config.common_weight = 0.85;
  const auto correlated = generate_correlated_bursts(config, 77);
  config.common_weight = 0.0;
  const auto independent = generate_correlated_bursts(config, 77);
  EXPECT_GT(correlated.peak_to_mean_total(), independent.peak_to_mean_total());
  EXPECT_GT(correlated.peak_to_mean_total(), 2.0);  // real bursts, not noise
}

TEST(CorrelatedBursts, MeanIsNearOne) {
  CorrelatedBurstConfig config;
  config.window_count = 5'000;
  config.shocks_per_series = 2.0;  // keep shocks from dominating the mean
  const auto bursts = generate_correlated_bursts(config, 3);
  for (const auto& series : bursts.multipliers) {
    double mean = 0.0;
    for (double v : series) mean += v;
    mean /= static_cast<double>(series.size());
    EXPECT_GT(mean, 0.7);
    EXPECT_LT(mean, 1.8);
  }
}

TEST(CorrelatedBursts, ValidatesWeight) {
  CorrelatedBurstConfig config;
  config.common_weight = 1.5;
  EXPECT_THROW((void)generate_correlated_bursts(config, 1), std::invalid_argument);
}

TEST(CorrelatedBursts, DegenerateQueriesAreSafe) {
  CorrelatedBursts empty;
  EXPECT_EQ(empty.peak_to_mean_total(), 0.0);
}

}  // namespace
}  // namespace tsn::feed
