// Record-and-replay: the §2 after-hours-simulation workflow. A live run's
// feed is tapped and recorded; replaying it through an identical
// normalizer stack must reproduce the day bit-for-bit.
#include "sim/engine.hpp"
#include <gtest/gtest.h>

#include "capture/replay.hpp"
#include "capture/tap.hpp"
#include "exchange/activity.hpp"
#include "exchange/exchange.hpp"
#include "net/fabric.hpp"
#include "trading/normalizer.hpp"

namespace tsn::capture {
namespace {

exchange::ExchangeConfig exchange_config() {
  exchange::ExchangeConfig config;
  config.symbols = {{proto::Symbol{"AAA"}, proto::InstrumentKind::kEquity,
                     proto::price_from_dollars(100)},
                    {proto::Symbol{"BBB"}, proto::InstrumentKind::kEquity,
                     proto::price_from_dollars(50)}};
  config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  config.feed_mac = net::MacAddr::from_host_id(1);
  config.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
  config.order_mac = net::MacAddr::from_host_id(2);
  config.order_ip = net::Ipv4Addr{10, 0, 0, 2};
  return config;
}

trading::NormalizerConfig normalizer_config() {
  trading::NormalizerConfig config;
  config.exchange_id = 1;
  config.feed_groups = {net::Ipv4Addr{239, 100, 0, 0}};
  config.partitioning = std::make_shared<proto::HashPartition>(2);
  config.in_mac = net::MacAddr::from_host_id(10);
  config.in_ip = net::Ipv4Addr{10, 0, 1, 1};
  config.out_mac = net::MacAddr::from_host_id(11);
  config.out_ip = net::Ipv4Addr{10, 0, 1, 2};
  return config;
}

// Collects the normalizer's output payloads for comparison.
struct OutputCollector {
  std::vector<std::vector<std::byte>> payloads;

  void attach(sim::Engine& engine, net::Fabric& fabric, trading::Normalizer& normalizer,
              std::unique_ptr<net::Nic>& nic, std::uint32_t host_id) {
    nic = std::make_unique<net::Nic>(engine, "collector", net::MacAddr::from_host_id(host_id),
                                     net::Ipv4Addr{10, 0, 2, 1});
    nic->set_promiscuous(true);
    fabric.connect(normalizer.out_nic(), 0, *nic, 0, net::LinkConfig{});
    nic->set_rx_handler([this](const net::PacketPtr& packet, sim::Time) {
      const auto decoded = net::decode_frame(packet->frame());
      if (decoded && decoded->is_udp()) {
        payloads.emplace_back(decoded->payload.begin(), decoded->payload.end());
      }
    });
  }
};

TEST(Replay, ReplayReproducesTheLiveRunExactly) {
  // ---- Live run: exchange -> tap -> normalizer, record the feed. -------
  FrameRecorder recorder;
  OutputCollector live_output;
  std::uint64_t live_updates = 0;
  {
    sim::Engine engine;
    net::Fabric fabric{engine};
    exchange::Exchange exch{engine, exchange_config()};
    trading::Normalizer normalizer{engine, normalizer_config()};
    Tap tap{engine, "tap"};
    tap.set_packet_hook([&recorder](const net::PacketPtr& packet, net::PortId port,
                                    sim::Time at) {
      if (port == 0) recorder.record(packet, at);  // exchange-side direction
    });
    fabric.connect(exch.feed_nic(), 0, tap, 0, net::LinkConfig{});
    fabric.connect(tap, 1, normalizer.in_nic(), 0, net::LinkConfig{});
    normalizer.join_feeds();
    std::unique_ptr<net::Nic> collector_nic;
    live_output.attach(engine, fabric, normalizer, collector_nic, 20);

    exchange::MarketActivityDriver driver{exch, exchange::ActivityConfig{}, 11};
    driver.run_until(sim::Time::zero() + sim::millis(std::int64_t{20}));
    engine.run();
    live_updates = normalizer.stats().updates_out;
    ASSERT_GT(recorder.size(), 50u);
    ASSERT_GT(live_updates, 50u);
  }

  // ---- Replay: recorded frames -> fresh normalizer. --------------------
  OutputCollector replay_output;
  std::uint64_t replay_updates = 0;
  {
    sim::Engine engine;
    net::Fabric fabric{engine};
    trading::Normalizer normalizer{engine, normalizer_config()};
    net::Nic source{engine, "replay-src", net::MacAddr::from_host_id(1),
                    net::Ipv4Addr{10, 0, 0, 1}};
    fabric.connect(source, 0, normalizer.in_nic(), 0, net::LinkConfig{});
    normalizer.join_feeds();
    std::unique_ptr<net::Nic> collector_nic;
    replay_output.attach(engine, fabric, normalizer, collector_nic, 21);

    FrameReplayer replayer{engine, source};
    EXPECT_EQ(replayer.replay(recorder.frames(), sim::Time::zero()), recorder.size());
    engine.run();
    EXPECT_EQ(replayer.frames_sent(), recorder.size());
    replay_updates = normalizer.stats().updates_out;
  }

  // The replay regenerates the identical normalized stream.
  EXPECT_EQ(replay_updates, live_updates);
  ASSERT_EQ(replay_output.payloads.size(), live_output.payloads.size());
  // Datagram headers carry the normalizer's own send time, which shifts
  // with the replay's start offset; the updates themselves — symbol,
  // price, size, kind, exchange timestamp — must match exactly.
  for (std::size_t i = 0; i < live_output.payloads.size(); ++i) {
    const auto live = proto::norm::parse(live_output.payloads[i]);
    const auto replay = proto::norm::parse(replay_output.payloads[i]);
    ASSERT_TRUE(live.has_value());
    ASSERT_TRUE(replay.has_value());
    ASSERT_EQ(live->updates.size(), replay->updates.size());
    for (std::size_t u = 0; u < live->updates.size(); ++u) {
      EXPECT_EQ(live->updates[u].symbol, replay->updates[u].symbol);
      EXPECT_EQ(live->updates[u].price, replay->updates[u].price);
      EXPECT_EQ(live->updates[u].quantity, replay->updates[u].quantity);
      EXPECT_EQ(static_cast<int>(live->updates[u].kind),
                static_cast<int>(replay->updates[u].kind));
      EXPECT_EQ(live->updates[u].exchange_time_ns, replay->updates[u].exchange_time_ns);
    }
  }
}

TEST(Replay, SerializeRoundTrip) {
  FrameRecorder recorder;
  net::PacketFactory factory;
  for (int i = 0; i < 10; ++i) {
    recorder.record(factory.make(std::vector<std::byte>(64 + static_cast<std::size_t>(i),
                                                        static_cast<std::byte>(i)),
                                 sim::Time{i * 1'000}),
                    sim::Time{i * 1'000});
  }
  const auto blob = recorder.serialize();
  const auto restored = FrameRecorder::deserialize(blob);
  ASSERT_EQ(restored.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(restored[i].at, recorder.frames()[i].at);
    EXPECT_EQ(restored[i].frame, recorder.frames()[i].frame);
  }
}

TEST(Replay, DeserializeRejectsGarbage) {
  std::vector<std::byte> junk(16, std::byte{0x42});
  EXPECT_THROW((void)FrameRecorder::deserialize(junk), std::invalid_argument);
  FrameRecorder recorder;
  net::PacketFactory factory;
  recorder.record(factory.make(std::vector<std::byte>(64), sim::Time{}), sim::Time{});
  auto blob = recorder.serialize();
  blob.resize(blob.size() - 10);  // truncate
  EXPECT_THROW((void)FrameRecorder::deserialize(blob), std::invalid_argument);
}

TEST(Replay, SpeedScalesInterArrivalTimes) {
  sim::Engine engine;
  net::Nic out{engine, "src", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  std::vector<RecordedFrame> recording;
  recording.push_back({sim::Time{1'000'000}, std::vector<std::byte>(64)});
  recording.push_back({sim::Time{3'000'000}, std::vector<std::byte>(64)});
  FrameReplayer replayer{engine, out};
  (void)replayer.replay(recording, sim::Time::zero() + sim::micros(std::int64_t{10}),
                        /*speed=*/2.0);
  // First at 10 us; second 1 us later (2 us gap compressed by 2x).
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(engine.now(), sim::Time::zero() + sim::micros(std::int64_t{10}));
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(engine.now(), sim::Time::zero() + sim::micros(std::int64_t{11}));
  EXPECT_THROW((void)replayer.replay(recording, sim::Time::zero(), 0.0),
               std::invalid_argument);
}

TEST(Replay, EmptyRecordingIsANoop) {
  sim::Engine engine;
  net::Nic out{engine, "src", net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1}};
  FrameReplayer replayer{engine, out};
  EXPECT_EQ(replayer.replay({}, sim::Time::zero()), 0u);
  EXPECT_EQ(engine.pending_events(), 0u);
}

}  // namespace
}  // namespace tsn::capture
