// F2c — Figure 2(c): "Options events in busiest second of the day",
// counted in 100-microsecond windows.
//
// Distributes the busiest second's 1.5M events across 10,000 windows with
// the calibrated burst microstructure, prints the distribution, and derives
// the paper's punchline: the peak 100 us window forces ~100 ns/event
// processing — barely enough for a software system to copy data.
#include <cstdio>
#include <vector>

#include "feed/burst.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  constexpr std::uint64_t kBusiestSecondEvents = 1'500'000;
  feed::BurstMicrostructure burst;
  const auto counts = burst.window_counts(kBusiestSecondEvents, 2024);

  telemetry::Histogram stats;
  for (auto c : counts) stats.add(static_cast<double>(c));

  std::printf("F2c: events per 100 us window within the busiest second (%zu windows)\n\n",
              counts.size());
  std::printf("%12s %10s\n", "percentile", "events");
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    std::printf("%11.1f%% %10.0f\n", p, stats.percentile(p));
  }
  std::printf("\n  median window: %6.0f events  (paper: 129)\n", stats.median());
  std::printf("  peak window:   %6.0f events  (paper: 1066)\n", stats.max());
  std::printf("  peak/median:   %6.1fx        (paper: ~8.3x)\n", stats.max() / stats.median());
  std::printf("\nprocessing budget in the peak window: %.0f ns/event (paper: ~100 ns —\n"
              "\"little time to perform any operations beyond copying data into memory\")\n",
              100'000.0 / stats.max());

  // Coarse sparkline of the second, 100 buckets of 100 windows each.
  std::printf("\nwithin-second shape (each char = 10 ms, scaled to peak):\n  ");
  double bucket_max = 0.0;
  std::vector<double> buckets;
  for (std::size_t i = 0; i < counts.size(); i += 100) {
    double sum = 0.0;
    for (std::size_t j = i; j < i + 100 && j < counts.size(); ++j) {
      sum += static_cast<double>(counts[j]);
    }
    buckets.push_back(sum);
    bucket_max = sum > bucket_max ? sum : bucket_max;
  }
  const char* shades = " .:-=+*#%@";
  for (double b : buckets) {
    std::printf("%c", shades[static_cast<int>(9.0 * b / bucket_max)]);
  }
  std::printf("\n");

  bench::Report bench_report{"fig2c_burst",
                             "Figure 2(c): events per 100us window in the busiest second"};
  bench_report.param("busiest_second_events",
                     static_cast<std::int64_t>(kBusiestSecondEvents));
  bench_report.param("windows", static_cast<std::int64_t>(counts.size()));
  bench_report.stats("window_events", stats, "events");
  bench_report.metric("peak_over_median", stats.max() / stats.median(), "x");
  bench_report.metric("peak_budget_ns_per_event", 100'000.0 / stats.max(), "ns");
  // Paper calibration: median window 129 events, peak 1066, ~100 ns/event
  // budget in the peak window.
  bench_report.check("median_near_129", stats.median() > 100.0 && stats.median() < 160.0);
  bench_report.check("peak_near_1066", stats.max() > 800.0 && stats.max() < 1'400.0);
  bench_report.check("peak_budget_near_100ns", 100'000.0 / stats.max() < 150.0);
  return bench_report.finish();
}
