// M1 — §3 "Multicast Trends": the mroute-table overflow cliff.
//
// Sweeps the number of active multicast groups through a commodity switch
// past its hardware table capacity and measures, event-driven, what the
// paper describes: groups that fall to the software path see forwarding
// latency explode and heavy loss under load.
#include "sim/engine.hpp"
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "l2/commodity_switch.hpp"
#include "net/stack.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  constexpr std::size_t kHardwareCapacity = 512;
  bench::Report bench_report{"mcast_scaling", "Multicast group scaling: the mroute cliff"};
  bench_report.param("hardware_capacity", static_cast<std::int64_t>(kHardwareCapacity));
  std::printf("M1: multicast group scaling across a commodity switch "
              "(hardware table: %zu groups)\n\n",
              kHardwareCapacity);
  std::printf("%8s %10s %10s %14s %14s %10s\n", "groups", "hw", "sw", "hw-lat(ns)",
              "sw-lat(us)", "drops");

  for (std::size_t group_count : {128UL, 256UL, 512UL, 640UL, 768UL, 1024UL, 2048UL}) {
    sim::Engine engine;
    net::Fabric fabric{engine};
    l2::CommoditySwitchConfig config;
    config.port_count = 4;
    config.mroute_hardware_capacity = kHardwareCapacity;
    l2::CommoditySwitch sw{engine, "tor", config};

    auto source = std::make_unique<net::Nic>(engine, "src", net::MacAddr::from_host_id(1),
                                             net::Ipv4Addr{10, 0, 0, 1});
    auto sink = std::make_unique<net::Nic>(engine, "dst", net::MacAddr::from_host_id(2),
                                           net::Ipv4Addr{10, 0, 0, 2});
    sink->set_promiscuous(true);
    fabric.connect(sw, 0, *source, 0, net::LinkConfig{});
    fabric.connect(sw, 1, *sink, 0, net::LinkConfig{});

    for (std::size_t g = 0; g < group_count; ++g) {
      sw.join_group(net::Ipv4Addr{0xef010000u + static_cast<std::uint32_t>(g)}, 1);
    }

    // One frame to every group; measure per-frame transit by group class.
    telemetry::Histogram hw_latency_ns;
    telemetry::Histogram sw_latency_us;
    sim::Time sent_at;
    sim::Time arrival;
    sink->set_rx_handler([&arrival, &engine](const net::PacketPtr&, sim::Time) {
      arrival = engine.now();
    });
    for (std::size_t g = 0; g < group_count; ++g) {
      const net::Ipv4Addr group{0xef010000u + static_cast<std::uint32_t>(g)};
      arrival = sim::Time::zero();
      sent_at = engine.now();
      source->send_frame(
          net::build_multicast_frame(source->mac(), source->ip(), group, 30001, {}));
      engine.run();
      if (arrival.picos() == 0) continue;  // dropped
      const auto transit = arrival - sent_at;
      if (g < kHardwareCapacity) {
        hw_latency_ns.add(transit.nanos());
      } else {
        sw_latency_us.add(transit.micros());
      }
    }

    std::printf("%8zu %10zu %10zu %14.0f %14.1f %10llu\n", group_count,
                sw.mroutes().hardware_group_count(), sw.mroutes().software_group_count(),
                hw_latency_ns.mean(), sw_latency_us.empty() ? 0.0 : sw_latency_us.mean(),
                static_cast<unsigned long long>(sw.stats().software_queue_drops));

    const std::string prefix = "groups" + std::to_string(group_count);
    bench_report.metric(prefix + ".hw_latency_ns", hw_latency_ns.mean(), "ns");
    bench_report.metric(prefix + ".sw_latency_us",
                        sw_latency_us.empty() ? 0.0 : sw_latency_us.mean(), "us");
    bench_report.metric(prefix + ".sw_groups",
                        static_cast<double>(sw.mroutes().software_group_count()), "count");
    if (group_count <= kHardwareCapacity) {
      bench_report.check(prefix + ".all_in_hardware",
                         sw.mroutes().software_group_count() == 0);
    } else {
      // Past the cliff: the overflow path is at least an order of magnitude
      // slower than the hardware path (the paper's "1000x" is the per-packet
      // forwarding rate; the end-to-end mean here includes queueing).
      bench_report.check(prefix + ".software_overflow",
                         sw.mroutes().software_group_count() > 0);
      bench_report.check(prefix + ".software_much_slower",
                         !sw_latency_us.empty() &&
                             sw_latency_us.mean() * 1'000.0 > 10.0 * hw_latency_ns.mean());
    }
  }

  // Burst loss on the software path: a train of frames to one overflowed
  // group overwhelms the bounded software queue.
  {
    sim::Engine engine;
    net::Fabric fabric{engine};
    l2::CommoditySwitchConfig config;
    config.port_count = 4;
    config.mroute_hardware_capacity = 1;
    l2::CommoditySwitch sw{engine, "tor", config};
    auto source = std::make_unique<net::Nic>(engine, "src", net::MacAddr::from_host_id(1),
                                             net::Ipv4Addr{10, 0, 0, 1});
    auto sink = std::make_unique<net::Nic>(engine, "dst", net::MacAddr::from_host_id(2),
                                           net::Ipv4Addr{10, 0, 0, 2});
    sink->set_promiscuous(true);
    fabric.connect(sw, 0, *source, 0, net::LinkConfig{});
    fabric.connect(sw, 1, *sink, 0, net::LinkConfig{});
    sw.join_group(net::Ipv4Addr{239, 1, 0, 1}, 1);  // hardware
    sw.join_group(net::Ipv4Addr{239, 1, 0, 2}, 1);  // software
    std::uint64_t delivered = 0;
    sink->set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++delivered; });
    constexpr int kBurst = 2'000;
    for (int i = 0; i < kBurst; ++i) {
      source->send_frame(net::build_multicast_frame(source->mac(), source->ip(),
                                                    net::Ipv4Addr{239, 1, 0, 2}, 30001, {}));
    }
    engine.run();
    const double loss =
        100.0 * static_cast<double>(sw.stats().software_queue_drops) / kBurst;
    std::printf("\nburst of %d frames to one software-path group: delivered %llu, "
                "dropped %llu (%.0f%% loss)\n",
                kBurst, static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(sw.stats().software_queue_drops), loss);
    bench_report.param("burst_frames", static_cast<std::int64_t>(kBurst));
    bench_report.metric("burst.delivered", static_cast<double>(delivered), "count");
    bench_report.metric("burst.loss", loss, "%");
    bench_report.check("burst.heavy_loss", loss > 25.0);
  }
  std::printf("\n(paper: overflow \"cripples performance and induces heavy packet loss\";\n"
              "meanwhile market data grew 500%% in 5 years but group tables only 80%%)\n");
  return bench_report.finish();
}
