// R2 (§5 Hardware ablation) — safe feed merging with FPGA filtering.
//
// §4.3 shows naive L1S merges drop frames under correlated bursts; §5
// proposes FPGA-augmented L1Ses that filter at ~100 ns so that "it should
// be possible to safely merge feeds while avoiding these issues." Here a
// strategy subscribes to TWO feeds but shares its NIC with a widening
// merge: a plain L1S mux delivers every merged feed (the strategy's NIC
// drowns as the merge widens), while the FPGA merge filters to the
// subscription in hardware and stays inside the link budget no matter how
// wide the merge gets.
#include "sim/engine.hpp"
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "l1s/fpga_switch.hpp"
#include "l1s/layer1_switch.hpp"
#include "net/fabric.hpp"
#include "net/headers.hpp"
#include "net/nic.hpp"
#include "telemetry/report.hpp"

namespace {

using namespace tsn;

struct Result {
  std::uint64_t wanted_delivered = 0;
  std::uint64_t unwanted_delivered = 0;
  std::uint64_t dropped = 0;
  double max_queue_us = 0.0;
};

// The strategy's fixed subscription: feeds 0 and 1.
bool wanted(std::uint32_t feed) { return feed < 2; }

constexpr int kRounds = 400;
// Each feed sends a 1200 B frame every 5 us: ~1.95 Gb/s per feed. Two
// wanted feeds fit a 10 GbE NIC with room; a 6-wide merge oversubscribes.
constexpr std::int64_t kPacingUs = 5;

struct Rig {
  sim::Engine engine;
  net::Fabric fabric{engine};
  std::vector<std::unique_ptr<net::Nic>> sources;
  std::unique_ptr<net::Nic> sink;
  Result result;

  explicit Rig(std::size_t feeds) {
    sink = std::make_unique<net::Nic>(engine, "strategy", net::MacAddr::from_host_id(99),
                                      net::Ipv4Addr{10, 0, 1, 1});
    sink->set_promiscuous(true);
    sink->set_rx_handler([this](const net::PacketPtr& p, sim::Time) {
      const auto decoded = net::decode_frame(p->frame());
      if (decoded && decoded->ip && wanted(decoded->ip->dst.value() & 0xff)) {
        ++result.wanted_delivered;
      } else {
        ++result.unwanted_delivered;
      }
    });
    for (std::uint32_t f = 0; f < feeds; ++f) {
      sources.push_back(std::make_unique<net::Nic>(
          engine, "feed", net::MacAddr::from_host_id(f + 1),
          net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(f + 1)}));
    }
  }

  void drive_and_finish() {
    for (int round = 0; round < kRounds; ++round) {
      // Rotate the send order each round so no feed systematically wins
      // the race into the merged queue.
      engine.schedule_at(sim::Time::zero() + sim::micros(std::int64_t{round * kPacingUs}),
                         [this, round] {
                           const auto n = static_cast<std::uint32_t>(sources.size());
                           for (std::uint32_t k = 0; k < n; ++k) {
                             const std::uint32_t f = (k + static_cast<std::uint32_t>(round)) % n;
                             sources[f]->send_frame(net::build_multicast_frame(
                                 sources[f]->mac(), sources[f]->ip(),
                                 net::Ipv4Addr{0xef500000u + f}, 30001,
                                 std::vector<std::byte>(1'200, std::byte{1})));
                           }
                         });
    }
    engine.run();
    const auto totals = fabric.total_stats();
    result.dropped = totals.frames_dropped_queue;
    result.max_queue_us = totals.max_queue_delay.micros();
  }
};

Result run_plain_l1s(std::size_t feeds) {
  Rig rig{feeds};
  l1s::L1SwitchConfig config;
  config.port_count = 40;
  l1s::Layer1Switch sw{rig.engine, "l1s", config};
  net::LinkConfig link;
  link.queue_capacity_bytes = 48 * 1024;
  rig.fabric.connect(sw, 39, *rig.sink, 0, link);
  for (std::uint32_t f = 0; f < feeds; ++f) {
    rig.fabric.connect(sw, f, *rig.sources[f], 0, link);
    sw.patch(f, 39);
  }
  rig.drive_and_finish();
  return rig.result;
}

Result run_fpga_filtered(std::size_t feeds) {
  Rig rig{feeds};
  l1s::FpgaSwitchConfig config;
  config.port_count = 40;
  l1s::FpgaSwitch sw{rig.engine, "fpga", config};
  net::LinkConfig link;
  link.queue_capacity_bytes = 48 * 1024;
  rig.fabric.connect(sw, 39, *rig.sink, 0, link);
  for (std::uint32_t f = 0; f < feeds; ++f) {
    rig.fabric.connect(sw, f, *rig.sources[f], 0, link);
    // Only the subscription is programmed toward the strategy port; the
    // rest dies in the FPGA pipeline at line rate.
    if (wanted(f)) (void)sw.join_group(net::Ipv4Addr{0xef500000u + f}, 39);
  }
  rig.drive_and_finish();
  return rig.result;
}

}  // namespace

int main() {
  std::printf("R2: safe feed merging via FPGA filtering (§5 Hardware)\n\n");
  bench::Report bench_report{"fpga_merge", "Safe feed merging via FPGA filtering"};
  bench_report.param("rounds", static_cast<std::int64_t>(kRounds));
  bench_report.param("pacing_us", kPacingUs);
  std::printf("strategy subscribes to 2 feeds at ~2 Gb/s each; the merge onto its 10 GbE\n"
              "NIC widens with feeds it does NOT want (each also ~2 Gb/s)\n\n");
  std::printf("%8s | %30s | %30s\n", "", "plain L1S merge", "FPGA-filtered merge");
  std::printf("%8s | %8s %9s %9s | %8s %9s %9s\n", "feeds", "wanted", "unwanted", "dropped",
              "wanted", "unwanted", "dropped");
  const auto wanted_total = static_cast<std::uint64_t>(kRounds) * 2;
  bool fpga_lossless = true;
  for (std::size_t feeds : {2UL, 4UL, 6UL, 8UL, 16UL, 32UL}) {
    const auto plain = run_plain_l1s(feeds);
    const auto fpga = run_fpga_filtered(feeds);
    std::printf("%8zu | %8llu %9llu %9llu | %8llu %9llu %9llu\n", feeds,
                static_cast<unsigned long long>(plain.wanted_delivered),
                static_cast<unsigned long long>(plain.unwanted_delivered),
                static_cast<unsigned long long>(plain.dropped),
                static_cast<unsigned long long>(fpga.wanted_delivered),
                static_cast<unsigned long long>(fpga.unwanted_delivered),
                static_cast<unsigned long long>(fpga.dropped));
    fpga_lossless = fpga_lossless && fpga.wanted_delivered == wanted_total &&
                    fpga.unwanted_delivered == 0;

    const std::string prefix = "feeds" + std::to_string(feeds);
    bench_report.metric(prefix + ".plain_wanted", static_cast<double>(plain.wanted_delivered),
                        "frames");
    bench_report.metric(prefix + ".plain_dropped", static_cast<double>(plain.dropped),
                        "frames");
    bench_report.metric(prefix + ".fpga_wanted", static_cast<double>(fpga.wanted_delivered),
                        "frames");
    bench_report.metric(prefix + ".fpga_unwanted",
                        static_cast<double>(fpga.unwanted_delivered), "frames");
    if (feeds >= 16) {
      // Wide naive merges oversubscribe the NIC: drops or unwanted floods.
      bench_report.check(prefix + ".plain_merge_suffers",
                         plain.dropped > 0 || plain.unwanted_delivered > 0);
    }
  }
  std::printf("\nFPGA merge delivered every wanted frame and nothing else: %s\n",
              fpga_lossless ? "yes" : "NO");
  bench_report.check("fpga_merge_lossless_and_exact", fpga_lossless);
  std::printf("(\"combined with ... data filtering, it should be possible to safely merge\n"
              "feeds while avoiding these issues\" — the cost is ~100 ns per hop vs 6 ns)\n");
  return bench_report.finish();
}
