// D1 — §4.1 "Design 1: Traditional Switches".
//
// Runs the full trading stack (exchange -> normalizer -> strategies ->
// gateway -> exchange) on a leaf-spine fabric of 500 ns commodity switches
// with functions grouped by rack, and measures the latency decomposition
// event-driven. Prints the paper's hop arithmetic (12 switch hops, 3
// software hops, network = half the total) next to the measured values.
#include <cstdio>

#include "core/design.hpp"
#include "deploy/reference.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  std::printf("D1: leaf-spine trading network (Design 1)\n\n");

  // Analytic model first: the paper's arithmetic.
  core::TraditionalDesign model;
  const auto analytic = model.tick_to_trade();
  std::printf("analytic round trip (12 switch hops @500 ns + 3 software hops @2 us):\n  %s\n\n",
              analytic.to_string().c_str());

  deploy::DeploymentConfig config;
  config.strategy_count = 8;
  config.events_per_second = 60'000;
  deploy::LeafSpineDeployment deployment{config};
  deployment.start();
  deployment.run(sim::millis(std::int64_t{200}));
  const auto report = deployment.report();

  std::printf("simulated deployment (8 strategies, 200 ms of market activity):\n");
  std::printf("  feed datagrams published:   %10llu\n",
              static_cast<unsigned long long>(report.feed_datagrams));
  std::printf("  normalized updates:         %10llu\n",
              static_cast<unsigned long long>(report.normalized_updates));
  std::printf("  updates at strategies:      %10llu (gaps: %llu)\n",
              static_cast<unsigned long long>(report.updates_received),
              static_cast<unsigned long long>(report.sequence_gaps));
  std::printf("  orders sent / acked:        %10llu / %llu\n",
              static_cast<unsigned long long>(report.orders_sent),
              static_cast<unsigned long long>(report.acks));
  std::printf("  frames dropped in fabric:   %10llu\n\n",
              static_cast<unsigned long long>(report.frames_dropped));

  auto print_stats = [](const char* label, const telemetry::Histogram& stats) {
    std::printf("  %-26s min %8.0f  mean %8.0f  p99 %8.0f  max %8.0f (ns)\n", label,
                stats.min(), stats.mean(), stats.percentile(99.0), stats.max());
  };
  print_stats("feed path (exch->strategy):", report.feed_path_ns);
  print_stats("tick-to-trade (strategy):", report.tick_to_trade_ns);
  print_stats("order RTT (strategy<->exch):", report.order_rtt_ns);

  // The measured one-way feed path crosses 3 switch hops (leaf-spine-leaf)
  // twice (exchange->normalizer, normalizer->strategy): 6 hops of the 12.
  const double measured_network = report.feed_path_ns.mean() -
                                  2.0 * 900.0 -  // two software hops en route (norm rx + none)
                                  0.0;
  std::printf("\nnetwork share check: analytic %.0f%%; measured feed path %.0f ns over 6 of\n"
              "the 12 hops is consistent with ~500 ns/hop plus serialization (%.0f ns/hop).\n",
              analytic.network_share() * 100.0, report.feed_path_ns.mean(),
              measured_network / 6.0);
  std::printf("\npaper: \"half of the overall time through the system is spent in the"
              " network!\"\n");

  bench::Report bench_report{"design1_leafspine", "Design 1: leaf-spine trading network"};
  bench_report.param("strategy_count", static_cast<std::int64_t>(config.strategy_count));
  bench_report.param("events_per_second",
                     static_cast<std::int64_t>(config.events_per_second));
  bench_report.param("run_ms", std::int64_t{200});
  bench_report.metric("analytic_total_ns", analytic.total().nanos(), "ns");
  bench_report.metric("analytic_network_share", analytic.network_share() * 100.0, "%");
  bench_report.metric("feed_datagrams", static_cast<double>(report.feed_datagrams), "count");
  bench_report.metric("normalized_updates", static_cast<double>(report.normalized_updates),
                      "count");
  bench_report.metric("updates_received", static_cast<double>(report.updates_received),
                      "count");
  bench_report.metric("orders_sent", static_cast<double>(report.orders_sent), "count");
  bench_report.metric("acks", static_cast<double>(report.acks), "count");
  bench_report.metric("sequence_gaps", static_cast<double>(report.sequence_gaps), "count");
  bench_report.metric("frames_dropped", static_cast<double>(report.frames_dropped), "count");
  bench_report.stats("feed_path_ns", report.feed_path_ns, "ns");
  bench_report.stats("tick_to_trade_ns", report.tick_to_trade_ns, "ns");
  bench_report.stats("order_rtt_ns", report.order_rtt_ns, "ns");
  // §4.1 shape: the network is ~half the analytic round trip, the stack
  // actually traded, and the fabric carried the feed without loss.
  bench_report.check("network_share_near_half", analytic.network_share() > 0.40 &&
                                                    analytic.network_share() < 0.60);
  bench_report.check("traded", report.orders_sent > 0 && report.acks > 0);
  bench_report.check("no_sequence_gaps", report.sequence_gaps == 0);
  bench_report.check("no_fabric_drops", report.frames_dropped == 0);
  return bench_report.finish();
}
