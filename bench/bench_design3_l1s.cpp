// D3 — §4.3 "Design 3: Layer-1 Switches".
//
// Three experiments:
//  1. The full trading stack on the quad-L1S fabric — fabric latency is
//     nanoseconds, two orders of magnitude below commodity switching.
//  2. Fan-out latency measured port-to-port: 5-6 ns; merge adds ~50 ns.
//  3. The merge trade-off: as more bursty feeds merge onto one strategy
//     NIC, queueing and loss appear at the merged egress — the paper's
//     "interface proliferation vs merge congestion" dilemma.
#include "sim/engine.hpp"
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/design.hpp"
#include "deploy/reference.hpp"
#include "feed/framelen.hpp"
#include "l1s/layer1_switch.hpp"
#include "telemetry/report.hpp"

namespace {

using namespace tsn;

void run_stack(bench::Report& bench_report) {
  deploy::DeploymentConfig config;
  config.strategy_count = 6;
  config.events_per_second = 50'000;
  deploy::QuadL1sDeployment deployment{config};
  deployment.start();
  deployment.run(sim::millis(std::int64_t{200}));
  const auto report = deployment.report();

  std::printf("full stack on quad L1S fabrics (6 strategies, 200 ms):\n");
  std::printf("  updates at strategies: %llu, orders %llu, acks %llu, gaps %llu\n",
              static_cast<unsigned long long>(report.updates_received),
              static_cast<unsigned long long>(report.orders_sent),
              static_cast<unsigned long long>(report.acks),
              static_cast<unsigned long long>(report.sequence_gaps));
  std::printf("  feed path (exch->strategy): mean %7.0f ns  p99 %7.0f ns\n",
              report.feed_path_ns.mean(), report.feed_path_ns.percentile(99.0));
  std::printf("  order RTT:                  mean %7.0f ns  p99 %7.0f ns\n\n",
              report.order_rtt_ns.mean(), report.order_rtt_ns.percentile(99.0));

  bench_report.metric("stack.updates_received",
                      static_cast<double>(report.updates_received), "count");
  bench_report.metric("stack.orders_sent", static_cast<double>(report.orders_sent), "count");
  bench_report.metric("stack.sequence_gaps", static_cast<double>(report.sequence_gaps),
                      "count");
  bench_report.stats("stack.feed_path_ns", report.feed_path_ns, "ns");
  bench_report.stats("stack.order_rtt_ns", report.order_rtt_ns, "ns");
  bench_report.check("stack.traded", report.orders_sent > 0 && report.acks > 0);
  bench_report.check("stack.no_sequence_gaps", report.sequence_gaps == 0);
}

void measure_hop_latency(bench::Report& bench_report) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  l1s::Layer1Switch sw{engine, "l1s", l1s::L1SwitchConfig{}};
  net::LinkConfig ideal;
  ideal.rate_bps = 0;
  ideal.propagation = sim::Duration::zero();
  std::vector<std::unique_ptr<net::Nic>> nics;
  for (std::uint32_t i = 0; i < 4; ++i) {
    nics.push_back(std::make_unique<net::Nic>(engine, "h" + std::to_string(i),
                                              net::MacAddr::from_host_id(i + 1),
                                              net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(i + 1)}));
    nics.back()->set_promiscuous(true);
    fabric.connect(sw, i, *nics.back(), 0, ideal);
  }
  sw.patch(0, 1);  // plain circuit
  sw.patch(0, 3);
  sw.patch(2, 3);  // port 3 is a merge
  sim::Time plain;
  sim::Time merged;
  nics[1]->set_rx_handler([&](const net::PacketPtr&, sim::Time at) { plain = at; });
  nics[3]->set_rx_handler([&](const net::PacketPtr&, sim::Time at) { merged = at; });
  const sim::Time start = engine.now();
  nics[0]->send_frame(net::build_udp_frame(nics[0]->mac(), net::MacAddr::broadcast(),
                                           nics[0]->ip(), net::Ipv4Addr{10, 0, 0, 9}, 1, 2,
                                           {}));
  engine.run();
  std::printf("port-to-port latency (ideal links):\n");
  std::printf("  fan-out circuit: %4.0f ns   (paper: 5-6 ns)\n", (plain - start).nanos());
  std::printf("  through a merge: %4.0f ns   (paper: +50 ns)\n\n", (merged - start).nanos());

  bench_report.metric("hop.fanout_ns", (plain - start).nanos(), "ns");
  bench_report.metric("hop.merge_ns", (merged - start).nanos(), "ns");
  // §4.3 calibration: fan-out 5-6 ns; a merge adds ~50 ns on top.
  bench_report.check("hop.fanout_5_6ns",
                     (plain - start).nanos() >= 4.0 && (plain - start).nanos() <= 8.0);
  bench_report.check("hop.merge_adds_about_50ns",
                     (merged - start).nanos() - (plain - start).nanos() >= 30.0 &&
                         (merged - start).nanos() - (plain - start).nanos() <= 80.0);
}

void merge_congestion_sweep(bench::Report& bench_report) {
  std::printf("merge congestion: bursty feeds merged onto one 10 GbE strategy NIC\n");
  std::printf("%12s %12s %12s %14s\n", "merged-feeds", "delivered", "dropped", "max-queue(us)");
  for (std::size_t merge_width : {1, 2, 4, 8, 16}) {
    sim::Engine engine;
    net::Fabric fabric{engine};
    l1s::L1SwitchConfig sw_config;
    sw_config.port_count = 40;
    l1s::Layer1Switch sw{engine, "l1s", sw_config};
    net::LinkConfig link;  // 10 GbE defaults
    link.queue_capacity_bytes = 64 * 1024;

    std::vector<std::unique_ptr<net::Nic>> sources;
    auto sink = std::make_unique<net::Nic>(engine, "strategy", net::MacAddr::from_host_id(999),
                                           net::Ipv4Addr{10, 0, 1, 1});
    sink->set_promiscuous(true);
    std::uint64_t delivered = 0;
    sink->set_rx_handler([&](const net::PacketPtr&, sim::Time) { ++delivered; });
    const net::PortId sink_port = 39;
    fabric.connect(sw, sink_port, *sink, 0, link);
    for (std::size_t f = 0; f < merge_width; ++f) {
      sources.push_back(std::make_unique<net::Nic>(
          engine, "feed" + std::to_string(f),
          net::MacAddr::from_host_id(static_cast<std::uint32_t>(f + 1)),
          net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(f + 1)}));
      fabric.connect(sw, static_cast<net::PortId>(f), *sources[f], 0, link);
      sw.patch(static_cast<net::PortId>(f), sink_port);
    }

    // Correlated burst: every feed fires a frame train at the same instant
    // (§2: bursts across feeds are correlated).
    feed::FrameLengthSampler sampler{feed::exchange_a_profile(), 42};
    for (int round = 0; round < 200; ++round) {
      for (auto& source : sources) source->send_frame(sampler.next_frame());
    }
    engine.run();
    const auto totals = fabric.total_stats();
    std::printf("%12zu %12llu %12llu %14.2f\n", merge_width,
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(totals.frames_dropped_queue),
                totals.max_queue_delay.micros());

    const std::string prefix = "merge" + std::to_string(merge_width);
    bench_report.metric(prefix + ".delivered", static_cast<double>(delivered), "count");
    bench_report.metric(prefix + ".dropped",
                        static_cast<double>(totals.frames_dropped_queue), "count");
    bench_report.metric(prefix + ".max_queue_us", totals.max_queue_delay.micros(), "us");
    if (merge_width == 1) {
      bench_report.check("merge1.lossless", totals.frames_dropped_queue == 0);
    }
    if (merge_width == 16) {
      bench_report.check("merge16.congested",
                         totals.frames_dropped_queue > 0 ||
                             totals.max_queue_delay.micros() > 10.0);
    }
  }
  std::printf("\n(paper: \"market data is bursty, so merged feeds can easily exceed the\n"
              "available bandwidth, leading to latency from queuing or packet loss\")\n");
}

}  // namespace

int main() {
  std::printf("D3: Layer-1 switch trading network (Design 3)\n\n");
  bench::Report bench_report{"design3_l1s", "Design 3: layer-1 switch trading network"};
  core::TraditionalDesign commodity;
  core::L1SDesign l1s;
  const double speedup = commodity.tick_to_trade().switching.nanos() /
                         l1s.tick_to_trade().switching.nanos();
  std::printf("analytic switching latency per round trip: commodity %s vs L1S %s (%.0fx)\n\n",
              sim::to_string(commodity.tick_to_trade().switching).c_str(),
              sim::to_string(l1s.tick_to_trade().switching).c_str(), speedup);
  bench_report.metric("analytic.commodity_switching_ns",
                      commodity.tick_to_trade().switching.nanos(), "ns");
  bench_report.metric("analytic.l1s_switching_ns", l1s.tick_to_trade().switching.nanos(),
                      "ns");
  bench_report.metric("analytic.speedup", speedup, "x");
  bench_report.check("analytic.l1s_order_of_magnitude_faster", speedup >= 30.0);
  measure_hop_latency(bench_report);
  run_stack(bench_report);
  merge_congestion_sweep(bench_report);
  return bench_report.finish();
}
