// S1 — §3/§4.3: partition growth vs what each design can deliver.
//
// The paper: one representative strategy's partition count roughly doubled
// from ~600 to over 1300 in two years. This bench projects that demand
// forward and asks, year by year: does it fit the commodity mroute table,
// and how wide do L1S merges have to get when strategies only have a few
// market-data NICs?
#include <cstdio>
#include <string>
#include <unordered_map>

#include "cluster/manager.hpp"
#include "core/mcast_analysis.hpp"
#include "l2/trends.hpp"
#include "sim/random.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  std::printf("S1: partition scaling (600 -> 1300 in two years, and onward)\n\n");

  bench::Report bench_report{"partition_scaling",
                             "Partition growth vs mroute capacity and L1S merges"};

  core::PartitionDemandModel demand;
  bool ever_overflows = false;
  std::printf("%6s %12s %14s %10s\n", "year", "partitions", "mroute-cap", "fits");
  for (int year = 2020; year <= 2028; ++year) {
    const auto report = core::mcast_capacity_at(year, demand);
    std::printf("%6d %12zu %14zu %10s\n", year, report.demand, report.capacity,
                report.fits ? "yes" : "NO");
    bench_report.metric("year" + std::to_string(year) + ".demand",
                        static_cast<double>(report.demand), "partitions");
    ever_overflows = ever_overflows || !report.fits;
  }
  // §3's trajectory: demand eventually outruns the hardware table.
  bench_report.check("demand_outruns_capacity", ever_overflows);

  // L1S subscription planning: a strategy subscribing to k of the firm's
  // partitions with a fixed market-data NIC budget. Partition activity is
  // Zipf-weighted, so dedicated NICs soak up most of the traffic but the
  // merged remainder keeps growing.
  std::printf("\nL1S subscription plans (market-data NICs per strategy = 3):\n");
  std::printf("%14s %12s %12s %18s\n", "subscriptions", "dedicated", "merged",
              "merged traffic");
  sim::Rng rng{99};
  for (std::uint32_t subs : {2u, 3u, 8u, 32u, 128u, 600u, 1300u}) {
    cluster::ClusterManager mgr;
    cluster::Job strategy;
    strategy.id = 1;
    strategy.kind = cluster::JobKind::kStrategy;
    std::unordered_map<std::uint32_t, double> weight;
    double total_weight = 0.0;
    for (std::uint32_t p = 0; p < subs; ++p) {
      strategy.partitions.push_back(p);
      weight[p] = 1.0 / static_cast<double>(p + 1);  // Zipf-ish activity
      total_weight += weight[p];
    }
    mgr.add_job(strategy);
    const auto plans = mgr.plan_l1s_subscriptions(3, weight);
    const auto& plan = plans.front();
    double merged_weight = 0.0;
    for (const auto p : plan.merged) merged_weight += weight[p];
    std::printf("%14u %12zu %12zu %16.1f%%\n", subs, plan.dedicated.size(),
                plan.merged.size(), 100.0 * merged_weight / total_weight);
    const std::string prefix = "subs" + std::to_string(subs);
    bench_report.metric(prefix + ".dedicated", static_cast<double>(plan.dedicated.size()),
                        "nics");
    bench_report.metric(prefix + ".merged", static_cast<double>(plan.merged.size()),
                        "partitions");
    bench_report.metric(prefix + ".merged_traffic", 100.0 * merged_weight / total_weight,
                        "%");
    if (subs <= 3) {
      bench_report.check(prefix + ".fits_without_merge", plan.merged.empty());
    }
    if (subs >= 600) {
      bench_report.check(prefix + ".merge_required", plan.merged.size() > subs / 2);
    }
  }
  std::printf("\n(paper §4.3: limiting subscriptions means normalizers \"cannot be\n"
              "partitioned as widely, leading to increased latency and reduced\n"
              "performance\" — the merged share above is the traffic at risk of\n"
              "burst congestion on the shared NIC)\n");
  return bench_report.finish();
}
