// S1 — §3/§4.3: partition growth vs what each design can deliver.
//
// The paper: one representative strategy's partition count roughly doubled
// from ~600 to over 1300 in two years. This bench projects that demand
// forward and asks, year by year: does it fit the commodity mroute table,
// and how wide do L1S merges have to get when strategies only have a few
// market-data NICs?
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "cluster/manager.hpp"
#include "core/mcast_analysis.hpp"
#include "deploy/sharded_market.hpp"
#include "l2/trends.hpp"
#include "sim/random.hpp"
#include "sim/sharded_engine.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  std::printf("S1: partition scaling (600 -> 1300 in two years, and onward)\n\n");

  bench::Report bench_report{"partition_scaling",
                             "Partition growth vs mroute capacity and L1S merges"};

  core::PartitionDemandModel demand;
  bool ever_overflows = false;
  std::printf("%6s %12s %14s %10s\n", "year", "partitions", "mroute-cap", "fits");
  for (int year = 2020; year <= 2028; ++year) {
    const auto report = core::mcast_capacity_at(year, demand);
    std::printf("%6d %12zu %14zu %10s\n", year, report.demand, report.capacity,
                report.fits ? "yes" : "NO");
    bench_report.metric("year" + std::to_string(year) + ".demand",
                        static_cast<double>(report.demand), "partitions");
    ever_overflows = ever_overflows || !report.fits;
  }
  // §3's trajectory: demand eventually outruns the hardware table.
  bench_report.check("demand_outruns_capacity", ever_overflows);

  // L1S subscription planning: a strategy subscribing to k of the firm's
  // partitions with a fixed market-data NIC budget. Partition activity is
  // Zipf-weighted, so dedicated NICs soak up most of the traffic but the
  // merged remainder keeps growing.
  std::printf("\nL1S subscription plans (market-data NICs per strategy = 3):\n");
  std::printf("%14s %12s %12s %18s\n", "subscriptions", "dedicated", "merged",
              "merged traffic");
  sim::Rng rng{99};
  for (std::uint32_t subs : {2u, 3u, 8u, 32u, 128u, 600u, 1300u}) {
    cluster::ClusterManager mgr;
    cluster::Job strategy;
    strategy.id = 1;
    strategy.kind = cluster::JobKind::kStrategy;
    std::unordered_map<std::uint32_t, double> weight;
    double total_weight = 0.0;
    for (std::uint32_t p = 0; p < subs; ++p) {
      strategy.partitions.push_back(p);
      weight[p] = 1.0 / static_cast<double>(p + 1);  // Zipf-ish activity
      total_weight += weight[p];
    }
    mgr.add_job(strategy);
    const auto plans = mgr.plan_l1s_subscriptions(3, weight);
    const auto& plan = plans.front();
    double merged_weight = 0.0;
    for (const auto p : plan.merged) merged_weight += weight[p];
    std::printf("%14u %12zu %12zu %16.1f%%\n", subs, plan.dedicated.size(),
                plan.merged.size(), 100.0 * merged_weight / total_weight);
    const std::string prefix = "subs" + std::to_string(subs);
    bench_report.metric(prefix + ".dedicated", static_cast<double>(plan.dedicated.size()),
                        "nics");
    bench_report.metric(prefix + ".merged", static_cast<double>(plan.merged.size()),
                        "partitions");
    bench_report.metric(prefix + ".merged_traffic", 100.0 * merged_weight / total_weight,
                        "%");
    if (subs <= 3) {
      bench_report.check(prefix + ".fits_without_merge", plan.merged.empty());
    }
    if (subs >= 600) {
      bench_report.check(prefix + ".merge_required", plan.merged.size() > subs / 2);
    }
  }
  std::printf("\n(paper §4.3: limiting subscriptions means normalizers \"cannot be\n"
              "partitioned as widely, leading to increased latency and reduced\n"
              "performance\" — the merged share above is the traffic at risk of\n"
              "burst congestion on the shared NIC)\n");

  // Sharded simulation: the same partition-growth story from the simulator's
  // side. A 4-partition market runs one shard per partition under
  // conservative lookahead windows; the gated rows are deterministic
  // (sim-time throughput and the shard load-balance bound), because wall
  // clock on a shared CI box is not. Wall times per worker count are
  // reported informationally.
  std::printf("\nSharded engine: 4-partition market, conservative lookahead windows\n");
  deploy::ShardedMarketConfig market_config;
  market_config.partitions = 4;
  market_config.seed = 5;
  market_config.events_per_second = 20'000.0;
  market_config.run_for = sim::millis(std::int64_t{40});

  std::uint64_t golden_digest = 0;
  std::uint64_t total_events = 0;
  std::uint64_t max_shard_events = 0;
  double sim_seconds = 0.0;
  {
    sim::ShardedEngine engine{
        {.domains = market_config.partitions, .mode = sim::SyncMode::kGolden}};
    deploy::ShardedMarket market{engine, market_config};
    market.run();
    golden_digest = market.digest();
    total_events = engine.events_fired();
    for (sim::DomainId d = 0; d < market_config.partitions; ++d) {
      const std::uint64_t fired = engine.domain(d).events_fired();
      if (fired > max_shard_events) max_shard_events = fired;
    }
    sim_seconds = static_cast<double>((market_config.run_for + market_config.drain).picos()) /
                  1e12;
  }
  // Load-balance bound on lookahead-parallel speedup: with one worker per
  // shard, a window cannot finish before its busiest shard does, so the
  // whole run cannot beat total/max. Symmetric partitions keep the shards
  // balanced, which is exactly what makes sharding this topology pay off.
  const double speedup_bound =
      static_cast<double>(total_events) / static_cast<double>(max_shard_events);
  std::printf("%12s %14s %14s %12s\n", "workers", "events", "wall-ms", "digest-ok");
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    sim::ShardedEngine engine{{.domains = market_config.partitions,
                               .num_workers = workers,
                               .mode = sim::SyncMode::kWindowed}};
    deploy::ShardedMarket market{engine, market_config};
    const auto wall_start = std::chrono::steady_clock::now();
    market.run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  wall_start)
            .count();
    const bool digest_ok = market.digest() == golden_digest;
    std::printf("%12u %14llu %14.1f %12s\n", workers,
                static_cast<unsigned long long>(engine.events_fired()), wall_ms,
                digest_ok ? "yes" : "NO");
    const std::string prefix = "shard.workers" + std::to_string(workers);
    bench_report.metric(prefix + ".wall_ms", wall_ms, "ms");
    bench_report.check(prefix + ".digest_matches_golden", digest_ok);
  }
  bench_report.metric("shard.events_total", static_cast<double>(total_events), "events");
  // Deterministic throughput row (events per *simulated* second): identical
  // on every machine and every run, so bench_compare can gate it hard.
  bench_report.metric("shard.sim_rate", static_cast<double>(total_events) / sim_seconds,
                      "ev/s");
  bench_report.metric("shard.speedup_bound_4w", speedup_bound, "x");
  std::printf("4-shard speedup bound (total/max shard load): %.2fx\n", speedup_bound);
  bench_report.check("shard.speedup_bound_ge_2x", speedup_bound >= 2.0,
                     "4 balanced shards must admit at least 2x lookahead parallelism");

  return bench_report.finish();
}
