// L1 — §3 "Latency Trends" and "Multicast Trends": the hardware-generation
// tables behind the paper's argument that commodity switches are moving
// the wrong way for trading workloads.
#include <cstdio>
#include <string>

#include "core/mcast_analysis.hpp"
#include "l2/trends.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  std::printf("L1: commodity switch generation trends (synthetic roadmap, §3 calibration)\n\n");
  std::printf("%6s %8s %14s %14s %14s %12s\n", "year", "gen", "bandwidth", "switch-latency",
              "sw-hop", "mcast-groups");
  for (const auto& gen : l2::SwitchTrendModel::commodity_roadmap()) {
    std::printf("%6d %8s %11.2f Tb %11.0f ns %11.2f us %12zu\n", gen.year, gen.name.c_str(),
                gen.bandwidth_tbps, gen.min_latency.nanos(),
                l2::SwitchTrendModel::software_hop_at(gen.year).micros(),
                gen.mcast_group_capacity);
  }

  const double bw_growth = l2::SwitchTrendModel::bandwidth_at(2024) /
                           l2::SwitchTrendModel::bandwidth_at(2014);
  const double lat_growth = l2::SwitchTrendModel::latency_at(2024).nanos() /
                            l2::SwitchTrendModel::latency_at(2014).nanos();
  const double grp_growth =
      static_cast<double>(l2::SwitchTrendModel::mcast_groups_at(2024)) /
      static_cast<double>(l2::SwitchTrendModel::mcast_groups_at(2014));
  std::printf("\n2014 -> 2024: bandwidth %.0fx, latency +%.0f%% (paper: ~20%% higher, ~500 ns"
              " today),\n              multicast groups +%.0f%% (paper: only 80%% more)\n",
              bw_growth, (lat_growth - 1.0) * 100.0, (grp_growth - 1.0) * 100.0);

  bench::Report bench_report{"latency_trends", "Commodity switch generation trends"};
  bench_report.metric("bandwidth_growth_2014_2024", bw_growth, "x");
  bench_report.metric("latency_growth_2014_2024", (lat_growth - 1.0) * 100.0, "%");
  bench_report.metric("mcast_group_growth_2014_2024", (grp_growth - 1.0) * 100.0, "%");
  bench_report.metric("latency_2024_ns", l2::SwitchTrendModel::latency_at(2024).nanos(),
                      "ns");
  // §3's asymmetry: bandwidth soared, latency got WORSE (~20%, ~500 ns
  // today) and group tables grew only ~80%.
  bench_report.check("bandwidth_soared", bw_growth > 10.0);
  bench_report.check("latency_worsened", lat_growth > 1.05 && lat_growth < 1.5);
  bench_report.check("latency_2024_near_500ns",
                     l2::SwitchTrendModel::latency_at(2024).nanos() > 400.0 &&
                         l2::SwitchTrendModel::latency_at(2024).nanos() < 600.0);
  bench_report.check("groups_grew_only_80pct", grp_growth > 1.5 && grp_growth < 2.2);

  std::printf("\nnetwork share of a 12-switch-hop / 3-software-hop round trip:\n");
  for (int year : {2014, 2019, 2024}) {
    const double network = 12.0 * l2::SwitchTrendModel::latency_at(year).nanos();
    const double software = 3.0 * l2::SwitchTrendModel::software_hop_at(year).nanos();
    const double share = 100.0 * network / (network + software);
    std::printf("  %d: network %5.0f ns, software %5.0f ns -> %4.1f%% in the network\n", year,
                network, software, share);
    bench_report.metric("network_share_" + std::to_string(year), share, "%");
    if (year == 2024) {
      // The trend model's software hops shrink over the decade while switch
      // latency grows, so by 2024 the network share is past the paper's
      // "half" (~71% here) — check it reached at least half.
      bench_report.check("network_share_2024_at_least_half", share >= 50.0 && share < 90.0);
    }
  }
  std::printf("(paper §4.1: \"half of the overall time through the system is spent in the"
              " network!\")\n");

  std::printf("\npartition demand vs hardware mroute capacity (§3):\n");
  std::printf("%6s %10s %10s %12s %6s\n", "year", "demand", "capacity", "utilization", "fits");
  for (int year = 2020; year <= 2028; ++year) {
    const auto report = core::mcast_capacity_at(year);
    std::printf("%6d %10zu %10zu %11.0f%% %6s\n", year, report.demand, report.capacity,
                report.utilization * 100.0, report.fits ? "yes" : "NO");
  }
  std::printf("\nfirst infeasible year: %d\n", core::capacity_crossover_year());
  bench_report.metric("capacity_crossover_year",
                      static_cast<double>(core::capacity_crossover_year()), "year");
  bench_report.check("crossover_within_decade", core::capacity_crossover_year() >= 2020 &&
                                                    core::capacity_crossover_year() <= 2030);
  return bench_report.finish();
}
