// L1 — §3 "Latency Trends" and "Multicast Trends": the hardware-generation
// tables behind the paper's argument that commodity switches are moving
// the wrong way for trading workloads.
#include <cstdio>

#include "core/mcast_analysis.hpp"
#include "l2/trends.hpp"

int main() {
  using namespace tsn;
  std::printf("L1: commodity switch generation trends (synthetic roadmap, §3 calibration)\n\n");
  std::printf("%6s %8s %14s %14s %14s %12s\n", "year", "gen", "bandwidth", "switch-latency",
              "sw-hop", "mcast-groups");
  for (const auto& gen : l2::SwitchTrendModel::commodity_roadmap()) {
    std::printf("%6d %8s %11.2f Tb %11.0f ns %11.2f us %12zu\n", gen.year, gen.name.c_str(),
                gen.bandwidth_tbps, gen.min_latency.nanos(),
                l2::SwitchTrendModel::software_hop_at(gen.year).micros(),
                gen.mcast_group_capacity);
  }

  const double bw_growth = l2::SwitchTrendModel::bandwidth_at(2024) /
                           l2::SwitchTrendModel::bandwidth_at(2014);
  const double lat_growth = l2::SwitchTrendModel::latency_at(2024).nanos() /
                            l2::SwitchTrendModel::latency_at(2014).nanos();
  const double grp_growth =
      static_cast<double>(l2::SwitchTrendModel::mcast_groups_at(2024)) /
      static_cast<double>(l2::SwitchTrendModel::mcast_groups_at(2014));
  std::printf("\n2014 -> 2024: bandwidth %.0fx, latency +%.0f%% (paper: ~20%% higher, ~500 ns"
              " today),\n              multicast groups +%.0f%% (paper: only 80%% more)\n",
              bw_growth, (lat_growth - 1.0) * 100.0, (grp_growth - 1.0) * 100.0);

  std::printf("\nnetwork share of a 12-switch-hop / 3-software-hop round trip:\n");
  for (int year : {2014, 2019, 2024}) {
    const double network = 12.0 * l2::SwitchTrendModel::latency_at(year).nanos();
    const double software = 3.0 * l2::SwitchTrendModel::software_hop_at(year).nanos();
    std::printf("  %d: network %5.0f ns, software %5.0f ns -> %4.1f%% in the network\n", year,
                network, software, 100.0 * network / (network + software));
  }
  std::printf("(paper §4.1: \"half of the overall time through the system is spent in the"
              " network!\")\n");

  std::printf("\npartition demand vs hardware mroute capacity (§3):\n");
  std::printf("%6s %10s %10s %12s %6s\n", "year", "demand", "capacity", "utilization", "fits");
  for (int year = 2020; year <= 2028; ++year) {
    const auto report = core::mcast_capacity_at(year);
    std::printf("%6d %10zu %10zu %11.0f%% %6s\n", year, report.demand, report.capacity,
                report.utilization * 100.0, report.fits ? "yes" : "NO");
  }
  std::printf("\nfirst infeasible year: %d\n", core::capacity_crossover_year());
  return 0;
}
