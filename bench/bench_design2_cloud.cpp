// D2 — §4.2 "Design 2: The Cloud".
//
// Measures the cloud model's two defining properties event-driven:
// (i) fairness — tenants at very different physical distances observe the
// same one-way latency to the cloud-hosted exchange; and (ii) the cost —
// that equalized latency is orders of magnitude above a colo fabric, and
// anything beyond the cloud region crosses a WAN that dwarfs it further.
#include "sim/engine.hpp"
#include <cstdio>
#include <memory>
#include <vector>

#include "core/design.hpp"
#include "net/stack.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "topo/cloud.hpp"

int main() {
  using namespace tsn;
  std::printf("D2: cloud hosting with latency equalization (Design 2)\n\n");

  sim::Engine engine;
  net::Fabric fabric{engine};
  topo::CloudRegion cloud{fabric, topo::CloudConfig{}};

  // The "exchange" endpoint inside the region.
  auto exchange = std::make_unique<net::Nic>(engine, "cloud-exchange",
                                             net::MacAddr::from_host_id(1),
                                             net::Ipv4Addr{10, 0, 0, 1});
  (void)cloud.attach_tenant(*exchange, sim::micros(std::int64_t{1}));

  // Tenants at increasing physical distance from the region.
  struct Tenant {
    std::unique_ptr<net::Nic> nic;
    sim::Duration native;
    sim::Time arrival;
  };
  std::vector<Tenant> tenants;
  for (int i = 0; i < 5; ++i) {
    Tenant t;
    t.native = sim::micros(std::int64_t{2 + 20 * i});
    t.nic = std::make_unique<net::Nic>(engine, "tenant" + std::to_string(i),
                                       net::MacAddr::from_host_id(10 + static_cast<std::uint32_t>(i)),
                                       net::Ipv4Addr{10, 0, 1, static_cast<std::uint8_t>(i + 1)});
    (void)cloud.attach_tenant(*t.nic, t.native);
    tenants.push_back(std::move(t));
  }
  for (auto& tenant : tenants) {
    tenant.nic->set_rx_handler([&tenant, &engine](const net::PacketPtr&, sim::Time) {
      tenant.arrival = engine.now();
    });
  }

  // One "market data" frame to every tenant, released at the same instant —
  // the fairness experiment of cloud-exchange proposals.
  const sim::Time release = engine.now();
  for (const auto& tenant : tenants) {
    exchange->send_frame(net::build_udp_frame(exchange->mac(),
                                              net::MacAddr::from_host_id(0xaa),
                                              exchange->ip(), tenant.nic->ip(), 1, 2,
                                              std::vector<std::byte>(64, std::byte{1})));
  }
  engine.run();

  std::printf("%-10s %14s %16s\n", "tenant", "native (us)", "delivery (us)");
  telemetry::Histogram deliveries;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const double us = (tenants[i].arrival - release).micros();
    deliveries.add(us);
    std::printf("tenant%-4zu %14.1f %16.3f\n", i, tenants[i].native.micros(), us);
  }
  std::printf("\nfairness spread (max - min delivery): %.3f us  (equalized: ~0)\n",
              deliveries.max() - deliveries.min());

  core::TraditionalDesign colo;
  core::CloudDesign cloud_model;
  const auto colo_breakdown = colo.tick_to_trade();
  const auto cloud_breakdown = cloud_model.tick_to_trade();
  std::printf("\nround-trip comparison (analytic):\n");
  std::printf("  colo leaf-spine: %s\n", sim::to_string(colo_breakdown.total()).c_str());
  std::printf("  cloud equalized: %s  (%.0fx slower)\n",
              sim::to_string(cloud_breakdown.total()).c_str(),
              cloud_breakdown.total().nanos() / colo_breakdown.total().nanos());

  // Beyond the cloud: a colo-hosted peer across the WAN.
  auto external = std::make_unique<net::Nic>(engine, "colo-peer",
                                             net::MacAddr::from_host_id(99),
                                             net::Ipv4Addr{172, 16, 0, 1});
  (void)cloud.attach_external(*external);
  sim::Time wan_arrival;
  external->set_rx_handler([&](const net::PacketPtr&, sim::Time at) { wan_arrival = at; });
  const sim::Time wan_start = engine.now();
  exchange->send_frame(net::build_udp_frame(exchange->mac(), net::MacAddr::from_host_id(0xab),
                                            exchange->ip(), external->ip(), 1, 2, {}));
  engine.run();
  std::printf("\ncommunication beyond the cloud: %.2f ms one-way (paper: \"latency for\n"
              "communication beyond the cloud will be excessive\")\n",
              (wan_arrival - wan_start).millis());

  bench::Report bench_report{"design2_cloud", "Design 2: cloud hosting with equalization"};
  bench_report.param("tenants", static_cast<std::int64_t>(tenants.size()));
  const double spread_us = deliveries.max() - deliveries.min();
  bench_report.stats("delivery_us", deliveries, "us");
  bench_report.metric("fairness_spread_us", spread_us, "us");
  bench_report.metric("colo_total_ns", colo_breakdown.total().nanos(), "ns");
  bench_report.metric("cloud_total_ns", cloud_breakdown.total().nanos(), "ns");
  bench_report.metric("cloud_over_colo",
                      cloud_breakdown.total().nanos() / colo_breakdown.total().nanos(), "x");
  bench_report.metric("beyond_cloud_one_way_ms", (wan_arrival - wan_start).millis(), "ms");
  // §4.2 shape: equalization removes the distance advantage; the price is
  // orders of magnitude over a colo fabric; beyond-cloud latency is worse.
  bench_report.check("equalized_spread_under_1us", spread_us < 1.0);
  bench_report.check("cloud_at_least_10x_colo",
                     cloud_breakdown.total().nanos() > 10.0 * colo_breakdown.total().nanos());
  bench_report.check("beyond_cloud_exceeds_equalized",
                     (wan_arrival - wan_start).millis() > 1.0);
  return bench_report.finish();
}
