// X1 — hot-path microbenchmarks (google-benchmark).
//
// The codec, book and lookup costs that set the software side of the
// paper's latency budgets: a well-tuned software system gets ~650 ns/event
// at the busiest second's average and ~100 ns/event at its peak (§3).
#include <benchmark/benchmark.h>

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "book/order_book.hpp"
#include "capture/replay.hpp"
#include "exchange/exchange.hpp"
#include "feed/symbols.hpp"
#include "mcast/mroute.hpp"
#include "net/fabric.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "proto/boe.hpp"
#include "proto/norm.hpp"
#include "proto/pitch.hpp"
#include "proto/xpress.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "telemetry/report.hpp"
#include "trading/filter.hpp"
#include "trading/gateway.hpp"

namespace {

using namespace tsn;

void BM_PitchEncodeAddOrder(benchmark::State& state) {
  proto::pitch::AddOrder add;
  add.order_id = 42;
  add.symbol = proto::Symbol{"ACME"};
  add.quantity = 100;
  add.price = 60'000;
  std::vector<std::byte> out;
  out.reserve(64);
  for (auto _ : state) {
    out.clear();
    net::WireWriter w{out};
    proto::pitch::encode(proto::pitch::Message{add}, w);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PitchEncodeAddOrder);

void BM_PitchDecodeFrame(benchmark::State& state) {
  std::vector<std::byte> payload;
  proto::pitch::FrameBuilder builder{1, 1458,
                                     [&payload](std::vector<std::byte> p,
                                                const proto::pitch::UnitHeader&) {
                                       payload = std::move(p);
                                     }};
  proto::pitch::AddOrder add;
  add.order_id = 1;
  add.symbol = proto::Symbol{"ACME"};
  add.quantity = 100;
  add.price = 60'000;
  for (int i = 0; i < 20; ++i) builder.append(proto::pitch::Message{add});
  builder.flush();
  std::uint64_t count = 0;
  for (auto _ : state) {
    (void)proto::pitch::for_each_message(payload, [&count](const proto::pitch::Message&) {
      ++count;
    });
  }
  benchmark::DoNotOptimize(count);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 20);
}
BENCHMARK(BM_PitchDecodeFrame);

void BM_NormDecodeUpdate(benchmark::State& state) {
  std::vector<std::byte> wire;
  net::WireWriter w{wire};
  proto::norm::Update u;
  u.symbol = proto::Symbol{"ACME"};
  u.price = 1'000'000;
  u.quantity = 100;
  proto::norm::encode(u, w);
  for (auto _ : state) {
    net::WireReader r{wire};
    auto decoded = proto::norm::decode_one(r);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_NormDecodeUpdate);

void BM_BoeEncodeNewOrder(benchmark::State& state) {
  proto::boe::NewOrder order{1, proto::Side::kBuy, 100, proto::Symbol{"ACME"}, 1'000'000,
                             proto::boe::TimeInForce::kDay};
  for (auto _ : state) {
    auto bytes = proto::boe::encode(proto::boe::Message{order}, 1);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_BoeEncodeNewOrder);

void BM_BookSubmitCancel(benchmark::State& state) {
  book::OrderBook book{proto::Symbol{"ACME"}};
  proto::OrderId id = 1;
  sim::Rng rng{7};
  for (auto _ : state) {
    const auto side = (id & 1) != 0 ? proto::Side::kBuy : proto::Side::kSell;
    const auto price = 9'000 + static_cast<proto::Price>(rng.next_below(50)) * 100 +
                       (side == proto::Side::kBuy ? 0 : 5'200);
    book.submit({id, side, price, 100});
    if (id > 64) (void)book.cancel(id - 64);
    ++id;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
// Fixed iteration count: the live window is 64 orders, but the id index
// accumulates tombstones and order ids keep growing, so an open-ended run
// lets google-benchmark's auto-scaling time differently-aged books between
// runs. A fixed count makes every run measure the same book history.
BENCHMARK(BM_BookSubmitCancel)->Iterations(1 << 16);

void BM_BookMatchingCrossingFlow(benchmark::State& state) {
  // The 650 ns / 100 ns-per-event budgets of §3, against a real book.
  book::OrderBook book{proto::Symbol{"ACME"}};
  proto::OrderId id = 1;
  for (int i = 0; i < 1'000; ++i) {
    book.submit({id++, proto::Side::kSell, 10'000 + (i % 50) * 100, 100});
  }
  for (auto _ : state) {
    // Marketable buy that executes against the best ask, then replenish.
    const auto best = book.best();
    if (best.ask_price) book.submit({id++, proto::Side::kBuy, *best.ask_price, 100}, true);
    book.submit({id++, proto::Side::kSell, best.ask_price.value_or(10'000), 100});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
// Fixed iteration count for the same reason as BM_BookSubmitCancel: resting
// depth is constant (each fill is replenished) but ids and execution history
// grow, so auto-scaled runs would compare differently-aged books.
BENCHMARK(BM_BookMatchingCrossingFlow)->Iterations(1 << 14);

// Operations per BM_SoaBookUpdateMix iteration (the book.updates_per_s row).
constexpr int kBookMixOps = 4;

void BM_SoaBookUpdateMix(benchmark::State& state) {
  // A realistic per-datagram update blend against the warm pooled SoA book:
  // passive add on each side, a marketable IOC that executes one resting
  // order, and a cancel of an aged bid. Sells are consumed as fast as they
  // are added and bids live exactly 64 iterations, so the book (and the
  // slabs behind it) stay bounded for the whole run.
  book::OrderBook book{proto::Symbol{"ACME"}};
  book.reserve(1 << 10, 256);
  sim::Rng rng{11};
  std::uint64_t iter = 0;
  for (auto _ : state) {
    const proto::OrderId base = iter * 3;
    const auto bid_price = 9'000 + static_cast<proto::Price>(rng.next_below(50)) * 100;
    const auto ask_price = 14'200 + static_cast<proto::Price>(rng.next_below(50)) * 100;
    book.submit({base + 1, proto::Side::kBuy, bid_price, 100});
    book.submit({base + 2, proto::Side::kSell, ask_price, 100});
    const auto best = book.best();
    if (best.ask_price) book.submit({base + 3, proto::Side::kBuy, *best.ask_price, 100}, true);
    if (iter >= 64) (void)book.cancel((iter - 64) * 3 + 1);
    ++iter;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBookMixOps);
}
BENCHMARK(BM_SoaBookUpdateMix)->Iterations(1 << 15);

// Messages per BM_PitchBatchDecode datagram (pitch.batch_decode_msgs_per_s).
constexpr int kBatchMsgs = 50;

void BM_PitchBatchDecode(benchmark::State& state) {
  // One warm decode_batch pass over a 50-message datagram with the bimodal
  // add/execute/delete blend of §2 (20 long-form adds, 15 executes, 15
  // deletes). The SoA buffer is reused, so the loop body is pure decode.
  std::vector<std::byte> payload;
  proto::pitch::FrameBuilder builder{1, 1458,
                                     [&payload](std::vector<std::byte> p,
                                                const proto::pitch::UnitHeader&) {
                                       payload = std::move(p);
                                     }};
  proto::pitch::AddOrder add;
  add.symbol = proto::Symbol{"ACME"};
  add.quantity = 100;
  add.price = 60'000;
  for (int i = 0; i < 20; ++i) {
    add.order_id = static_cast<proto::OrderId>(i + 1);
    builder.append(proto::pitch::Message{add});
  }
  proto::pitch::OrderExecuted exec;
  exec.executed_quantity = 50;
  for (int i = 0; i < 15; ++i) {
    exec.order_id = static_cast<proto::OrderId>(i + 1);
    exec.execution_id = static_cast<proto::ExecId>(1'000 + i);
    builder.append(proto::pitch::Message{exec});
  }
  proto::pitch::DeleteOrder del;
  for (int i = 0; i < 15; ++i) {
    del.order_id = static_cast<proto::OrderId>(i + 1);
    builder.append(proto::pitch::Message{del});
  }
  builder.flush();
  proto::pitch::DecodedBatch batch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::pitch::decode_batch(payload, batch));
    benchmark::DoNotOptimize(batch.count);
  }
  if (batch.count != kBatchMsgs) state.SkipWithError("batch decode dropped messages");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatchMsgs);
}
BENCHMARK(BM_PitchBatchDecode);

// Messages per BM_ReplayToBook recording (replay.to_book_msgs_per_s).
constexpr int kReplayMsgs = 1 + 512 + 256 + 256;

void BM_ReplayToBook(benchmark::State& state) {
  // The end-to-end replay lane: recorded Ethernet frames through
  // decode_frame, batch decode, and SoA book updates. The recording is a
  // clock tick, 512 adds, 256 full executes, and 256 deletes, so the book
  // drains back to empty on every pass — state is bounded across
  // iterations and any divergence (unknown ids, malformed frames, resting
  // leftovers) fails the benchmark rather than skewing it.
  const auto src_mac = net::MacAddr::from_host_id(1);
  const auto dst_mac = net::MacAddr::from_host_id(2);
  const net::Ipv4Addr src_ip{10, 0, 0, 1};
  const net::Ipv4Addr dst_ip{239, 100, 0, 1};
  std::vector<capture::RecordedFrame> recording;
  proto::pitch::FrameBuilder builder{
      1, 1458,
      [&](std::vector<std::byte> p, const proto::pitch::UnitHeader&) {
        recording.push_back(capture::RecordedFrame{
            sim::Time{}, net::build_udp_frame(src_mac, dst_mac, src_ip, dst_ip, 30'001,
                                              30'001, p)});
      }};
  builder.append(proto::pitch::Message{proto::pitch::Time{34'200}});
  sim::Rng rng{13};
  for (int i = 0; i < 512; ++i) {
    proto::pitch::AddOrder add;
    add.order_id = static_cast<proto::OrderId>(i + 1);
    add.side = (i & 1) != 0 ? proto::Side::kBuy : proto::Side::kSell;
    add.price = (add.side == proto::Side::kBuy ? 9'000 : 14'200) +
                static_cast<proto::Price>(rng.next_below(50)) * 100;
    add.quantity = 100;
    add.symbol = proto::Symbol{"ACME"};
    builder.append(proto::pitch::Message{add});
  }
  for (int i = 0; i < 256; ++i) {
    proto::pitch::OrderExecuted exec;
    exec.order_id = static_cast<proto::OrderId>(2 * i + 1);
    exec.executed_quantity = 100;  // full fill: the order leaves the book
    exec.execution_id = static_cast<proto::ExecId>(10'000 + i);
    builder.append(proto::pitch::Message{exec});
  }
  for (int i = 0; i < 256; ++i) {
    proto::pitch::DeleteOrder del;
    del.order_id = static_cast<proto::OrderId>(2 * i + 2);
    builder.append(proto::pitch::Message{del});
  }
  builder.flush();
  book::OrderBook book{proto::Symbol{"ACME"}};
  capture::BookReplayer replayer{book};
  for (auto _ : state) {
    benchmark::DoNotOptimize(replayer.replay(recording));
  }
  if (replayer.stats().unknown_orders != 0 || replayer.stats().malformed_datagrams != 0) {
    state.SkipWithError("replay diverged");
  }
  if (book.open_orders() != 0) state.SkipWithError("book did not drain");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kReplayMsgs);
}
// Fixed count: each iteration replays the same full recording, so
// auto-scaling only adds noise (and execution history still accumulates).
BENCHMARK(BM_ReplayToBook)->Iterations(1 << 9);

void BM_MrouteLookup(benchmark::State& state) {
  mcast::MrouteTable table{4'096};
  for (std::uint32_t g = 0; g < 2'048; ++g) {
    table.join(net::Ipv4Addr{0xef000000u + g}, g % 32);
  }
  std::uint32_t g = 0;
  for (auto _ : state) {
    auto lookup = table.lookup(net::Ipv4Addr{0xef000000u + (g++ & 2'047)});
    benchmark::DoNotOptimize(lookup.ports);
  }
}
BENCHMARK(BM_MrouteLookup);

void BM_XpressCompress(benchmark::State& state) {
  proto::xpress::Compressor tx;
  std::vector<std::byte> out;
  out.reserve(1 << 20);
  const std::vector<std::byte> payload(26, std::byte{0x5a});
  std::uint32_t seq = 1;
  for (auto _ : state) {
    if (out.size() > (1 << 19)) out.clear();
    benchmark::DoNotOptimize(tx.encode(3, seq++, payload, out));
  }
}
BENCHMARK(BM_XpressCompress);

void BM_SymbolFilter(benchmark::State& state) {
  feed::SymbolUniverse universe{1'024, 3};
  trading::SymbolFilter filter;
  for (std::size_t i = 0; i < 64; ++i) filter.watch(universe.at(i).symbol);
  proto::norm::Update u;
  std::size_t i = 0;
  std::uint64_t kept = 0;
  for (auto _ : state) {
    u.symbol = universe.at(i++ & 1'023).symbol;
    kept += filter.relevant(u) ? 1 : 0;
  }
  benchmark::DoNotOptimize(kept);
}
BENCHMARK(BM_SymbolFilter);

void BM_FrameDecodeFullStack(benchmark::State& state) {
  const auto frame = net::build_udp_frame(
      net::MacAddr::from_host_id(1), net::MacAddr::from_host_id(2), net::Ipv4Addr{10, 0, 0, 1},
      net::Ipv4Addr{10, 0, 0, 2}, 1, 2, std::vector<std::byte>(92, std::byte{1}));
  for (auto _ : state) {
    auto decoded = net::decode_frame(frame);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_FrameDecodeFullStack);

void BM_EngineScheduleFire(benchmark::State& state) {
  // One full pooled-scheduler cycle per iteration: acquire a slot, push the
  // heap entry, pop it, run the action. The warm pool means the loop body
  // never allocates (asserted by tsn_hotpath_alloc_tests).
  sim::Engine engine;
  engine.reserve(16);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    engine.schedule_in(sim::nanos(std::int64_t{10}), [&fired] { ++fired; });
    engine.step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineCancel(benchmark::State& state) {
  // Schedule + O(1) generation-checked cancel; run() prunes the stale heap
  // entry so the heap stays flat across iterations.
  sim::Engine engine;
  engine.reserve(16);
  for (auto _ : state) {
    const auto handle = engine.schedule_in(sim::micros(std::int64_t{1}), [] {});
    benchmark::DoNotOptimize(engine.cancel(handle));
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineCancel);

void BM_PacketPoolChurn(benchmark::State& state) {
  // Pooled make -> drop for a Table 1 new-order frame: inline payload copy
  // plus a freelist block reuse; no heap traffic once warm.
  net::PacketFactory factory;
  std::array<std::byte, 26> frame{};
  frame.fill(std::byte{0x5a});
  { auto warm = factory.make(std::span<const std::byte>{frame}, sim::Time{}); }
  for (auto _ : state) {
    auto packet = factory.make(std::span<const std::byte>{frame}, sim::Time{});
    benchmark::DoNotOptimize(packet);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketPoolChurn);

void BM_GatewayReconnectCycle(benchmark::State& state) {
  // One full session-recovery cycle per iteration: silent uplink death,
  // jittered backoff, re-login (the exchange sees a takeover), replay
  // request, sequence reset, back to ready. Not a nanosecond hot path —
  // it bounds how much simulation machinery one recovery costs, so a
  // regression here means reconnect drills got slower everywhere.
  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::ExchangeConfig econfig;
  econfig.symbols = {{proto::Symbol{"ACME"}, proto::InstrumentKind::kEquity,
                      proto::price_from_dollars(100)}};
  econfig.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  econfig.feed_mac = net::MacAddr::from_host_id(1);
  econfig.feed_ip = net::Ipv4Addr{10, 0, 0, 1};
  econfig.order_mac = net::MacAddr::from_host_id(2);
  econfig.order_ip = net::Ipv4Addr{10, 0, 0, 2};
  exchange::Exchange exch{engine, std::move(econfig)};
  trading::GatewayConfig gconfig;
  gconfig.exchange_mac = exch.order_nic().mac();
  gconfig.exchange_ip = exch.order_nic().ip();
  gconfig.exchange_port = exch.config().order_port;
  gconfig.client_mac = net::MacAddr::from_host_id(20);
  gconfig.client_ip = net::Ipv4Addr{10, 0, 0, 20};
  gconfig.upstream_mac = net::MacAddr::from_host_id(21);
  gconfig.upstream_ip = net::Ipv4Addr{10, 0, 0, 21};
  trading::Gateway gw{engine, gconfig};
  fabric.connect(gw.upstream_nic(), 0, exch.order_nic(), 0, net::LinkConfig{});
  gw.start();
  engine.run();
  for (auto _ : state) {
    gw.kill_upstream();
    engine.run();
  }
  if (gw.upstream_state() != trading::UpstreamState::kReady) {
    state.SkipWithError("gateway did not return to ready");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
// Fixed iteration count: the exchange keeps dead connections as post-mortem
// records, so an open-ended run would grow state (and skew late iterations).
BENCHMARK(BM_GatewayReconnectCycle)->Iterations(512);

// Forwards console output as usual while collecting per-benchmark timings
// for the machine-readable report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Timing {
    std::string name;
    double real_ns = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      timings_.push_back({run.benchmark_name(), run.GetAdjustedRealTime()});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Timing>& timings() const noexcept { return timings_; }

 private:
  std::vector<Timing> timings_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Telemetry hooks are compiled in but no TraceSink is installed, so
  // these timings measure the zero-cost disabled path.
  tsn::bench::Report bench_report{"micro_hotpaths", "Hot-path microbenchmarks"};
  bench_report.param("trace_sink", "none");
  double schedule_fire_ns = 0.0;
  double pool_churn_ns = 0.0;
  double reconnect_cycle_ns = 0.0;
  double book_mix_ns = 0.0;
  double batch_decode_ns = 0.0;
  double replay_to_book_ns = 0.0;
  for (const auto& timing : reporter.timings()) {
    bench_report.metric(timing.name, timing.real_ns, "ns");
    if (timing.name.starts_with("BM_GatewayReconnectCycle")) {
      // A whole recovery (death, backoff, re-login, replay) is hundreds of
      // simulation events, not a nanosecond hot path: its own ceiling.
      bench_report.check(timing.name + ".under_200us", timing.real_ns < 200'000.0);
      reconnect_cycle_ns = timing.real_ns;
      continue;
    }
    if (timing.name.starts_with("BM_ReplayToBook")) {
      // One iteration replays a 1k-message recording, not a single op:
      // its own ceiling (~195 ns/msg at the 200 us line).
      bench_report.check(timing.name + ".under_200us", timing.real_ns < 200'000.0);
      replay_to_book_ns = timing.real_ns;
      continue;
    }
    // Generous ceiling: every hot path stays sub-microsecond-ish; a blown
    // budget here means an accidental hot-path regression (e.g. telemetry
    // hooks no longer compiling out).
    bench_report.check(timing.name + ".under_5us", timing.real_ns < 5'000.0);
    if (timing.name == "BM_EngineScheduleFire") schedule_fire_ns = timing.real_ns;
    if (timing.name == "BM_PacketPoolChurn") pool_churn_ns = timing.real_ns;
    if (timing.name.starts_with("BM_SoaBookUpdateMix")) book_mix_ns = timing.real_ns;
    if (timing.name.starts_with("BM_PitchBatchDecode")) batch_decode_ns = timing.real_ns;
  }
  // Throughput rows for the allocation-free hot paths; bench_compare gates
  // these against bench/baselines/ so a pooled-path regression fails CI.
  if (schedule_fire_ns > 0.0) {
    bench_report.metric("scheduler.events_per_s", 1e9 / schedule_fire_ns, "events/s");
  }
  if (pool_churn_ns > 0.0) {
    bench_report.metric("packet_pool.packets_per_s", 1e9 / pool_churn_ns, "packets/s");
  }
  if (reconnect_cycle_ns > 0.0) {
    bench_report.metric("gateway.reconnects_per_s", 1e9 / reconnect_cycle_ns,
                        "reconnects/s");
  }
  // SoA book + batch decode lanes (ROADMAP item 4). The replay row is the
  // headline: full recorded frames to book updates on one core.
  if (book_mix_ns > 0.0) {
    bench_report.metric("book.updates_per_s", kBookMixOps * 1e9 / book_mix_ns,
                        "updates/s");
  }
  if (batch_decode_ns > 0.0) {
    bench_report.metric("pitch.batch_decode_msgs_per_s",
                        kBatchMsgs * 1e9 / batch_decode_ns, "msgs/s");
  }
  if (replay_to_book_ns > 0.0) {
    bench_report.metric("replay.to_book_msgs_per_s",
                        kReplayMsgs * 1e9 / replay_to_book_ns, "msgs/s");
  }
  bench_report.check("scheduler.events_per_s.reported", schedule_fire_ns > 0.0);
  bench_report.check("packet_pool.packets_per_s.reported", pool_churn_ns > 0.0);
  bench_report.check("gateway.reconnects_per_s.reported", reconnect_cycle_ns > 0.0);
  bench_report.check("book.updates_per_s.reported", book_mix_ns > 0.0);
  bench_report.check("pitch.batch_decode_msgs_per_s.reported", batch_decode_ns > 0.0);
  bench_report.check("replay.to_book_msgs_per_s.reported", replay_to_book_ns > 0.0);
  bench_report.check("all_benchmarks_ran", reporter.timings().size() >= 17);
  return bench_report.finish();
}
