// F2b — Figure 2(b): "Options events for a single stock on a single day",
// counted in 1-second windows across the trading day.
//
// Regenerates the per-second series and prints the hour-by-hour shape plus
// the paper's calibration points: trading confined to 9:30-16:00, median
// second over 300k events, busiest second ~1.5M.
#include <cstdio>

#include "feed/intraday.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  feed::IntradayProfile profile;
  const auto counts = profile.second_counts(2024);

  std::printf("F2b: options events for one stock, one day, 1-second windows\n\n");
  std::printf("%8s %12s %12s %12s\n", "hour", "mean/s", "max/s", "active-sec");
  for (int hour = 8; hour <= 16; ++hour) {
    telemetry::Histogram stats;
    int active = 0;
    for (int sec = hour * 3600; sec < (hour + 1) * 3600 && sec < 86'400; ++sec) {
      const auto c = counts[static_cast<std::size_t>(sec)];
      stats.add(static_cast<double>(c));
      if (c > 1'000) ++active;
    }
    std::printf("%7d: %12.0f %12.0f %12d\n", hour, stats.mean(), stats.max(), active);
  }

  telemetry::Histogram session;
  std::size_t busiest_second = 0;
  for (std::uint32_t sec = profile.config().open_second; sec < profile.config().close_second;
       ++sec) {
    session.add(static_cast<double>(counts[sec]));
    if (counts[sec] > counts[busiest_second]) busiest_second = sec;
  }
  std::printf("\nsession (9:30-16:00) statistics:\n");
  std::printf("  median second: %8.0f events   (paper: over 300k)\n", session.median());
  std::printf("  busiest second: %7.0f events   (paper: 1.5M)\n", session.max());
  std::printf("  busiest second at %02zu:%02zu:%02zu\n", busiest_second / 3600,
              (busiest_second % 3600) / 60, busiest_second % 60);
  std::printf("  p99 second:    %8.0f events\n", session.percentile(99.0));
  std::printf(
      "\nprocessing budget in the busiest second: %.0f ns/event "
      "(paper: ~650 ns at 1.5M/s)\n",
      1e9 / session.max());

  bench::Report bench_report{"fig2b_intraday",
                             "Figure 2(b): per-second event counts across one day"};
  bench_report.param("year", std::int64_t{2024});
  bench_report.param("open_second", static_cast<std::int64_t>(profile.config().open_second));
  bench_report.param("close_second", static_cast<std::int64_t>(profile.config().close_second));
  bench_report.stats("session_events_per_sec", session, "events/s");
  bench_report.metric("busiest_second_at", static_cast<double>(busiest_second), "s");
  bench_report.metric("busiest_second_budget_ns_per_event", 1e9 / session.max(), "ns");
  // Paper calibration points: median second over 300k, busiest ~1.5M.
  bench_report.check("median_over_300k", session.median() > 300'000.0);
  bench_report.check("busiest_near_1_5M",
                     session.max() > 1'200'000.0 && session.max() < 1'800'000.0);
  bench_report.check("trading_confined_to_session",
                     counts[profile.config().open_second - 1] <
                         counts[static_cast<std::size_t>(busiest_second)] / 10);
  return bench_report.finish();
}
