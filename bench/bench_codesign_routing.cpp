// R1 (§5 Routing ablation) — feed-to-multicast-group co-design.
//
// The paper's future-work question: "By co-designing the algorithm used
// to transform raw market data to normalized feeds as well as the mapping
// from feeds to multicast groups, can we achieve a more efficient
// design?" This ablation compares symbol->group mappings under a group
// budget (the mroute constraint): a subscription-oblivious hash (what a
// firm does today) vs the subscription-aware optimizer.
//
// Workload: 2000 symbols with Zipf activity; 32 strategies subscribing by
// sector (the common case), by top-of-tape names, or both — the
// structured subscriptions real partitioning schemes serve.
#include <cstdio>
#include <string>

#include "core/codesign.hpp"
#include "sim/random.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  constexpr std::size_t kSymbols = 2'000;
  constexpr std::size_t kSectors = 24;
  constexpr std::size_t kStrategies = 32;

  core::CodesignInput input;
  input.symbol_weight.resize(kSymbols);
  sim::Rng rng{404};
  for (std::size_t s = 0; s < kSymbols; ++s) {
    input.symbol_weight[s] = 1.0 / static_cast<double>(s + 1);  // Zipf activity
  }
  // Sector of symbol s: round-robin so sectors mix hot and cold names.
  auto sector_of = [](std::size_t s) { return s % kSectors; };

  input.subscriptions.resize(kStrategies);
  for (std::size_t c = 0; c < kStrategies; ++c) {
    if (c < 20) {
      // Sector strategies: 1-3 sectors each.
      const auto n_sectors = 1 + rng.next_below(3);
      std::vector<std::size_t> sectors;
      for (std::uint64_t k = 0; k < n_sectors; ++k) sectors.push_back(rng.next_below(kSectors));
      for (std::size_t s = 0; s < kSymbols; ++s) {
        for (const auto sec : sectors) {
          if (sector_of(s) == sec) {
            input.subscriptions[c].push_back(static_cast<core::SymbolId>(s));
            break;
          }
        }
      }
    } else {
      // Top-of-tape strategies: the hottest 50-200 names.
      const auto top = 50 + rng.next_below(151);
      for (std::size_t s = 0; s < top; ++s) {
        input.subscriptions[c].push_back(static_cast<core::SymbolId>(s));
      }
    }
  }

  std::printf("R1: feed->group co-design (2000 symbols, 32 strategies)\n\n");
  bench::Report bench_report{"codesign_routing", "Feed-to-multicast-group co-design"};
  bench_report.param("symbols", static_cast<std::int64_t>(kSymbols));
  bench_report.param("strategies", static_cast<std::int64_t>(kStrategies));
  core::CodesignInput probe = input;
  probe.group_budget = 1;
  std::printf("distinct subscriber-set signatures (perfect grouping): %zu groups\n\n",
              core::perfect_group_count(probe));
  bench_report.metric("perfect_group_count",
                      static_cast<double>(core::perfect_group_count(probe)), "groups");
  std::printf("%8s %18s %18s %12s\n", "budget", "hash efficiency", "codesign eff.",
              "advantage");
  bool codesign_never_worse = true;
  for (std::size_t budget : {8UL, 16UL, 32UL, 64UL, 128UL, 256UL}) {
    input.group_budget = budget;
    const auto hash = core::evaluate_grouping(input, core::hash_grouping(input));
    const auto designed = core::evaluate_grouping(input, core::codesign_grouping(input));
    std::printf("%8zu %17.1f%% %17.1f%% %11.2fx\n", budget, hash.efficiency() * 100.0,
                designed.efficiency() * 100.0,
                hash.over_delivery / (designed.over_delivery > 0 ? designed.over_delivery
                                                                 : hash.over_delivery));
    const std::string prefix = "budget" + std::to_string(budget);
    bench_report.metric(prefix + ".hash_efficiency", hash.efficiency() * 100.0, "%");
    bench_report.metric(prefix + ".codesign_efficiency", designed.efficiency() * 100.0, "%");
    codesign_never_worse =
        codesign_never_worse && designed.efficiency() >= hash.efficiency() - 1e-9;
  }
  // The future-work answer: subscription-aware grouping dominates the
  // oblivious hash at every budget.
  bench_report.check("codesign_never_worse_than_hash", codesign_never_worse);
  std::printf("\nefficiency = wanted bytes / delivered bytes (1.0 = every strategy\n"
              "receives exactly its subscription; the shortfall is traffic its host\n"
              "NIC and filter must absorb — the §3 filter-placement cost).\n");
  return bench_report.finish();
}
