// T1 — Table 1: "Frame lengths from market data feeds".
//
// Regenerates the paper's table by sampling complete Ethernet frames from
// the three per-exchange feed profiles (real TsnPitch encoding + UDP/IP
// framing; lengths are measured on the produced bytes). Also reports the
// header-share figures §3 quotes against the same sample.
#include <cstdio>

#include "feed/framelen.hpp"
#include "net/headers.hpp"
#include "proto/pitch.hpp"
#include "sim/stats.hpp"

namespace {

struct Row {
  const char* name;
  tsn::feed::FeedProfile profile;
  int paper[4];  // min avg median max
};

}  // namespace

int main() {
  using namespace tsn;
  constexpr int kFrames = 200'000;
  const Row rows[] = {
      {"Exchange A", feed::exchange_a_profile(), {73, 92, 89, 1514}},
      {"Exchange B", feed::exchange_b_profile(), {64, 113, 76, 1067}},
      {"Exchange C", feed::exchange_c_profile(), {81, 151, 101, 1442}},
  };

  std::printf("T1: Table 1 — frame lengths from market data feeds (%d frames per feed)\n\n",
              kFrames);
  std::printf("%-12s %8s %8s %8s %8s    %s\n", "Feed", "min", "avg", "median", "max",
              "(paper: min/avg/median/max)");
  for (const Row& row : rows) {
    feed::FrameLengthSampler sampler{row.profile, 0x71feedULL};
    sim::SampleStats lengths;
    std::uint64_t header_bytes = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t messages = 0;
    for (int i = 0; i < kFrames; ++i) {
      const auto frame = sampler.next_frame();
      lengths.add(static_cast<double>(frame.size()));
      total_bytes += frame.size();
      header_bytes += net::kEthernetHeaderSize + net::kIpv4HeaderSize + net::kUdpHeaderSize +
                      net::kEthernetFcsSize + proto::pitch::kUnitHeaderSize;
      const auto decoded = net::decode_frame(frame);
      if (decoded) {
        (void)proto::pitch::for_each_message(decoded->payload,
                                             [&messages](const proto::pitch::Message&) {
                                               ++messages;
                                             });
      }
    }
    std::printf("%-12s %8.0f %8.1f %8.0f %8.0f    (%d / %d / %d / %d)\n", row.name,
                lengths.min(), lengths.mean(), lengths.median(), lengths.max(), row.paper[0],
                row.paper[1], row.paper[2], row.paper[3]);
    std::printf("%12s headers+fcs+unit: %.1f%% of bytes; %.2f messages/frame\n", "",
                100.0 * static_cast<double>(header_bytes) / static_cast<double>(total_bytes),
                static_cast<double>(messages) / kFrames);
  }
  std::printf(
      "\nPaper claim (§3): 40 bytes of network headers plus 8-16 bytes of protocol\n"
      "headers are 25%%-40%% of the data sent. Our stack: 42 B eth/ip/udp + 4 B FCS\n"
      "+ 8 B sequenced-unit header per datagram.\n");
  return 0;
}
