// T1 — Table 1: "Frame lengths from market data feeds".
//
// Regenerates the paper's table by sampling complete Ethernet frames from
// the three per-exchange feed profiles (real TsnPitch encoding + UDP/IP
// framing; lengths are measured on the produced bytes). Also reports the
// header-share figures §3 quotes against the same sample.
#include <cstdio>
#include <string>

#include "feed/framelen.hpp"
#include "net/headers.hpp"
#include "proto/pitch.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

namespace {

struct Row {
  const char* name;
  tsn::feed::FeedProfile profile;
  int paper[4];  // min avg median max
};

}  // namespace

int main() {
  using namespace tsn;
  constexpr int kFrames = 200'000;
  const Row rows[] = {
      {"Exchange A", feed::exchange_a_profile(), {73, 92, 89, 1514}},
      {"Exchange B", feed::exchange_b_profile(), {64, 113, 76, 1067}},
      {"Exchange C", feed::exchange_c_profile(), {81, 151, 101, 1442}},
  };

  bench::Report bench_report{"table1_frame_lengths",
                             "Table 1: frame lengths from market data feeds"};
  bench_report.param("frames_per_feed", static_cast<std::int64_t>(kFrames));

  std::printf("T1: Table 1 — frame lengths from market data feeds (%d frames per feed)\n\n",
              kFrames);
  std::printf("%-12s %8s %8s %8s %8s    %s\n", "Feed", "min", "avg", "median", "max",
              "(paper: min/avg/median/max)");
  for (const Row& row : rows) {
    feed::FrameLengthSampler sampler{row.profile, 0x71feedULL};
    telemetry::Histogram lengths;
    std::uint64_t header_bytes = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t messages = 0;
    for (int i = 0; i < kFrames; ++i) {
      const auto frame = sampler.next_frame();
      lengths.add(static_cast<double>(frame.size()));
      total_bytes += frame.size();
      header_bytes += net::kEthernetHeaderSize + net::kIpv4HeaderSize + net::kUdpHeaderSize +
                      net::kEthernetFcsSize + proto::pitch::kUnitHeaderSize;
      const auto decoded = net::decode_frame(frame);
      if (decoded) {
        (void)proto::pitch::for_each_message(decoded->payload,
                                             [&messages](const proto::pitch::Message&) {
                                               ++messages;
                                             });
      }
    }
    std::printf("%-12s %8.0f %8.1f %8.0f %8.0f    (%d / %d / %d / %d)\n", row.name,
                lengths.min(), lengths.mean(), lengths.median(), lengths.max(), row.paper[0],
                row.paper[1], row.paper[2], row.paper[3]);
    const double header_share =
        100.0 * static_cast<double>(header_bytes) / static_cast<double>(total_bytes);
    std::printf("%12s headers+fcs+unit: %.1f%% of bytes; %.2f messages/frame\n", "",
                header_share, static_cast<double>(messages) / kFrames);

    const std::string prefix = row.profile.name;
    bench_report.stats(prefix + ".frame_len", lengths, "bytes");
    bench_report.metric(prefix + ".header_share", header_share, "%");
    bench_report.metric(prefix + ".messages_per_frame",
                        static_cast<double>(messages) / kFrames, "count");
    // Table 1's shape: the sampler is calibrated to the paper's rows.
    auto near = [](double measured, int paper, double tolerance) {
      return measured > (1.0 - tolerance) * paper && measured < (1.0 + tolerance) * paper;
    };
    bench_report.check(prefix + ".min_near_paper", near(lengths.min(), row.paper[0], 0.15));
    bench_report.check(prefix + ".mean_near_paper", near(lengths.mean(), row.paper[1], 0.15));
    bench_report.check(prefix + ".median_near_paper",
                       near(lengths.median(), row.paper[2], 0.15));
    bench_report.check(prefix + ".max_near_paper", near(lengths.max(), row.paper[3], 0.15));
    // §3: headers are a large fraction of the bytes sent (sanity window —
    // the small-frame profiles sit above the paper's 25-40% band because
    // our fixed 54 B of framing dominates short frames).
    bench_report.check(prefix + ".header_share_sane",
                       header_share >= 15.0 && header_share <= 70.0);
  }
  std::printf(
      "\nPaper claim (§3): 40 bytes of network headers plus 8-16 bytes of protocol\n"
      "headers are 25%%-40%% of the data sent. Our stack: 42 B eth/ip/udp + 4 B FCS\n"
      "+ 8 B sequenced-unit header per datagram.\n");
  return bench_report.finish();
}
