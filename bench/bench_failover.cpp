// S3 — hot-standby replication and deterministic failover.
//
// A primary exchange under storm-generator load streams its admitted input
// sequence to a hot-standby backup over the replication bridge; a
// FailoverController watches the backup's heartbeat watermark. The bench
// measures two things the failover drills assert but do not quantify:
//
//   replication.applied_per_s — records applied by the standby per sim
//       second while the primary carries live session churn
//   failover.recoveries_per_s — 1 / recovery, where recovery spans the
//       primary's last heartbeat to the backup serving (sim time)
//
// Both are sim-time rates, byte-identical on every machine, so
// bench_compare gates them hard. replication.lag_msgs and
// failover.recovery_ms ride along as informational rows with explicit
// ceiling checks — the same bounds the failover drill tier enforces.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "exchange/exchange.hpp"
#include "exchange/failover.hpp"
#include "exchange/loadgen.hpp"
#include "exchange/replica.hpp"
#include "net/fabric.hpp"
#include "proto/partition.hpp"
#include "sim/engine.hpp"
#include "telemetry/report.hpp"

namespace {

tsn::exchange::ExchangeConfig exchange_config(const char* name, std::uint64_t feed_host,
                                              tsn::net::Ipv4Addr feed_ip,
                                              std::uint64_t order_host,
                                              tsn::net::Ipv4Addr order_ip) {
  using namespace tsn;
  exchange::ExchangeConfig config;
  config.name = name;
  config.symbols = {{proto::Symbol{"AAPL"}}, {proto::Symbol{"MSFT"}},
                    {proto::Symbol{"NVDA"}}, {proto::Symbol{"AMZN"}}};
  config.feed_partitioning = std::make_shared<proto::AlphabetPartition>(2);
  config.heartbeat_interval = sim::millis(std::int64_t{5});
  config.session_timeout = sim::millis(std::int64_t{50});
  config.feed_mac = net::MacAddr::from_host_id(feed_host);
  config.feed_ip = feed_ip;
  config.order_mac = net::MacAddr::from_host_id(order_host);
  config.order_ip = order_ip;
  return config;
}

}  // namespace

int main() {
  using namespace tsn;

  constexpr std::uint32_t kSessions = 2'000;
  constexpr std::int64_t kCrashMs = 25;
  constexpr std::int64_t kRecoveryCeilingMs = 5;
  constexpr std::uint32_t kLagCeilingMsgs = 64;

  std::printf("S3: hot-standby replication + failover (%u sessions, crash at %lldms)\n\n",
              kSessions, static_cast<long long>(kCrashMs));

  bench::Report report{"failover",
                       "Hot-standby replication throughput and failover recovery"};
  report.param("sessions", std::int64_t{kSessions});
  report.param("crash_ms", kCrashMs);
  report.param("recovery_ceiling_ms", kRecoveryCeilingMs);
  report.param("lag_ceiling_msgs", std::int64_t{kLagCeilingMsgs});

  sim::Engine engine;
  net::Fabric fabric{engine};
  exchange::Exchange primary{
      engine, exchange_config("PRIM", 1, net::Ipv4Addr{10, 3, 0, 1}, 2,
                              net::Ipv4Addr{10, 3, 0, 2})};
  exchange::Exchange backup{
      engine, exchange_config("BACK", 3, net::Ipv4Addr{10, 3, 0, 3}, 4,
                              net::Ipv4Addr{10, 3, 0, 4})};
  backup.set_feed_muted(true);
  backup.set_accepting(false);

  exchange::ReplicaConfig scfg;
  scfg.name = "repl-pri";
  scfg.local_mac = net::MacAddr::from_host_id(5);
  scfg.local_ip = net::Ipv4Addr{10, 3, 0, 5};
  scfg.peer_mac = net::MacAddr::from_host_id(6);
  scfg.peer_ip = net::Ipv4Addr{10, 3, 0, 6};
  scfg.local_port = 36000;
  scfg.peer_port = 36001;
  exchange::ReplicaConfig acfg = scfg;
  acfg.name = "repl-bak";
  std::swap(acfg.local_mac, acfg.peer_mac);
  std::swap(acfg.local_ip, acfg.peer_ip);
  std::swap(acfg.local_port, acfg.peer_port);

  exchange::ReplicaStream stream{engine, primary, scfg};
  exchange::ReplicaApplier applier{engine, backup, acfg};
  fabric.connect(stream.nic(), 0, applier.nic(), 0, net::LinkConfig{});
  exchange::FailoverController controller{engine, backup, applier,
                                          exchange::FailoverConfig{}};

  exchange::LoadGenConfig gcfg;
  gcfg.sessions = kSessions;
  gcfg.seed = 11;
  gcfg.logins_per_tick = 1'000;
  gcfg.steady_interval_ticks = 16;  // brisk rotation: real replication load
  gcfg.target_open_orders = 2;
  gcfg.burst_size = 2;
  exchange::LoadGen gen{engine, primary, gcfg};

  primary.start_heartbeats();
  backup.start_heartbeats();
  stream.start();
  applier.start();
  controller.start();
  gen.start();

  const auto at = [](std::int64_t ms) { return sim::Time() + sim::millis(ms); };
  const auto sim_seconds = [](sim::Duration d) {
    return static_cast<double>(d.picos()) * 1e-12;
  };
  const auto wall_start = std::chrono::steady_clock::now();

  // --- replication under churn --------------------------------------------
  engine.run_until(at(kCrashMs));
  report.check("all_admitted", gen.all_admitted(),
               "every session logged in and acked before the crash window");
  const std::uint64_t applied = applier.stats().records_applied;
  const double window_s = sim_seconds(at(kCrashMs) - sim::Time());
  const double applied_per_s = static_cast<double>(applied) / window_s;
  report.metric("replication.applied_per_s", applied_per_s, "records/s");
  report.check("replication_nonzero", applied > 0,
               "standby must have applied the primary's input sequence");
  report.metric("replication.lag_msgs", static_cast<double>(applier.stats().lag_max),
                "msgs");
  report.check("lag_bounded", applier.stats().lag_max < kLagCeilingMsgs,
               "flushed-vs-applied gap at heartbeats stays within the ceiling");
  report.check("digests_clean",
               applier.stats().digests_checked > 0 &&
                   applier.stats().digest_mismatches == 0,
               "every quiescent-point state digest matched");
  std::printf("replication: %llu records in %.0f sim-ms (%.3g /s), lag max %u\n",
              static_cast<unsigned long long>(applied), window_s * 1e3, applied_per_s,
              applier.stats().lag_max);

  // --- crash and promote ----------------------------------------------------
  primary.crash();
  stream.crash();
  engine.run_until(at(kCrashMs + 10));
  const bool promoted = controller.state() == exchange::FailoverState::kActive;
  report.check("promoted", promoted, "backup reached kActive after the crash");
  const double recovery_s = promoted ? sim_seconds(controller.recovery_duration()) : 0.0;
  const double recovery_ms = recovery_s * 1e3;
  report.metric("failover.recovery_ms", recovery_ms, "ms");
  report.metric("failover.recoveries_per_s", promoted ? 1.0 / recovery_s : 0.0,
                "recoveries/s");
  report.check("recovery_under_ceiling",
               promoted && recovery_ms < static_cast<double>(kRecoveryCeilingMs),
               "last-heartbeat-to-serving within the drill ceiling");
  std::printf("failover: promoted in %.3f sim-ms (last heartbeat to serving)\n",
              recovery_ms);

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  report.metric("wall.total_ms", wall_ms, "ms");
  std::printf("wall: %.0f ms for the full scenario\n", wall_ms);

  return report.finish();
}
