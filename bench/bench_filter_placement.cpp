// P1 — §3 "Implications for trading systems": where to filter market data.
//
// Sweeps the paper's filter-placement decision across event rates and
// keep-fractions: in-process filtering is fine until the combined discard +
// process time exceeds the arrival budget; past that, the filter must move
// to another core or a shared middlebox (which amortizes cores across
// consumers using the same partitioning scheme).
#include <chrono>
#include <cstdio>
#include <string>

#include "feed/symbols.hpp"
#include "proto/norm.hpp"
#include "sim/random.hpp"
#include "telemetry/report.hpp"
#include "trading/filter.hpp"

namespace {

using namespace tsn;

// Measures the real cost of an inspect-and-discard on this host: decode a
// NORM update header-on-wire and test a symbol filter.
double measure_discard_cost_ns() {
  feed::SymbolUniverse universe{256, 7};
  trading::SymbolFilter filter;
  for (std::size_t i = 0; i < 16; ++i) filter.watch(universe.at(i).symbol);
  // Pre-encode a batch of updates.
  std::vector<std::byte> wire;
  net::WireWriter writer{wire};
  sim::Rng rng{11};
  constexpr int kUpdates = 4'096;
  for (int i = 0; i < kUpdates; ++i) {
    proto::norm::Update u;
    u.symbol = universe.at(rng.next_below(universe.size())).symbol;
    u.price = 1000;
    u.quantity = 100;
    proto::norm::encode(u, writer);
  }
  std::uint64_t kept = 0;
  const auto start = std::chrono::steady_clock::now();
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    net::WireReader reader{wire};
    for (int i = 0; i < kUpdates; ++i) {
      const auto update = proto::norm::decode_one(reader);
      if (update && filter.relevant(*update)) ++kept;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns = std::chrono::duration<double, std::nano>(elapsed).count();
  std::printf("measured inspect-and-discard cost on this host: %.1f ns/event "
              "(kept %llu of %d)\n\n",
              ns / (kUpdates * kRounds), static_cast<unsigned long long>(kept),
              kUpdates * kRounds);
  return ns / (kUpdates * kRounds);
}

}  // namespace

int main() {
  std::printf("P1: filter placement for partitioned market data (§3)\n\n");
  const double measured_discard = measure_discard_cost_ns();

  bench::Report bench_report{"filter_placement", "Filter placement for partitioned feeds"};
  bench_report.param("process_cost_ns", std::int64_t{500});
  bench_report.param("keep_fraction", 0.10);
  // Wall-clock measurement — excluded from determinism comparisons but
  // recorded so the artifact captures the host's inspect-and-discard cost.
  bench_report.metric("measured_discard_ns", measured_discard, "ns");
  bench_report.check("discard_cost_sane", measured_discard > 0.5 && measured_discard < 5'000.0);

  trading::FilterWorkload workload;
  workload.discard_cost = sim::nanos(measured_discard);
  workload.process_cost = sim::nanos(std::int64_t{500});

  std::printf("strategy-core utilization by placement "
              "(process=500 ns, discard=%.0f ns, keep=10%%):\n",
              measured_discard);
  std::printf("%14s %12s %12s %12s %14s\n", "events/sec", "in-process", "ded.-core",
              "middlebox", "cores/consumer");
  workload.keep_fraction = 0.10;
  for (double rate : {5e5, 1e6, 2e6, 5e6, 1e7, 1.5e7}) {
    workload.event_rate = rate;
    const auto in_proc = trading::analyze_placement(workload, trading::FilterPlacement::kInProcess);
    const auto core = trading::analyze_placement(workload, trading::FilterPlacement::kDedicatedCore);
    const auto mbox =
        trading::analyze_placement(workload, trading::FilterPlacement::kMiddlebox, 20);
    std::printf("%14.0f %11.0f%% %11.0f%% %11.0f%% %14.2f\n", rate,
                in_proc.strategy_utilization * 100.0, core.strategy_utilization * 100.0,
                mbox.strategy_utilization * 100.0, mbox.cores_per_consumer);
    const std::string prefix = "rate" + std::to_string(static_cast<long long>(rate));
    bench_report.metric(prefix + ".in_process_util", in_proc.strategy_utilization * 100.0,
                        "%");
    bench_report.metric(prefix + ".dedicated_core_util", core.strategy_utilization * 100.0,
                        "%");
    bench_report.metric(prefix + ".middlebox_util", mbox.strategy_utilization * 100.0, "%");
    bench_report.metric(prefix + ".middlebox_cores_per_consumer", mbox.cores_per_consumer,
                        "cores");
    // Moving the filter off the strategy core never costs more core time.
    bench_report.check(prefix + ".offload_helps",
                       mbox.strategy_utilization <= in_proc.strategy_utilization + 1e-9);
  }

  std::printf("\nin-process feasibility boundary (max keep-fraction the strategy core "
              "sustains):\n%14s %16s\n", "events/sec", "max keep-fraction");
  double previous_boundary = 2.0;
  bool boundary_monotone = true;
  for (double rate : {1e6, 2e6, 5e6, 1e7, 1.5e7, 2e7}) {
    const double k = trading::in_process_feasibility_boundary(rate, workload.discard_cost,
                                                              workload.process_cost);
    std::printf("%14.0f %15.1f%%\n", rate, k * 100.0);
    bench_report.metric("boundary.rate" + std::to_string(static_cast<long long>(rate)),
                        k * 100.0, "%");
    boundary_monotone = boundary_monotone && k <= previous_boundary + 1e-9;
    previous_boundary = k;
  }
  // §3: the feasible keep-fraction shrinks as the arrival rate grows.
  bench_report.check("boundary_shrinks_with_rate", boundary_monotone);
  std::printf("\n(paper: \"if the combined time spent discarding data and the time spent\n"
              "processing data is larger than the arrival rate, then filtering should\n"
              "happen outside the trading system\"; middleboxes amortize across consumers)\n");
  return bench_report.finish();
}
