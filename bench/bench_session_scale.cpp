// S2 — gateway session scale-out: 100k order-entry sessions on one exchange.
//
// The paper's order-entry front end must carry ~10^5..10^6 mostly-idle
// sessions and survive correlated reconnect storms (a switch reboot logs a
// whole rack back in at once). This bench drives the storm load generator
// against the pooled session store and reports three sim-time rates:
//
//   sessions.admitted_per_s                 — cold-start admission ramp
//   orders.sustained_per_s_at_100k_sessions — steady rotate churn, all ready
//   reconnect.recovered_sessions_per_s      — 10k-session storm re-admission
//
// All three are events per *simulated* second, so they are byte-identical
// on every machine and bench_compare gates them hard; wall-clock rows are
// informational. The recovery ceiling is also checked here directly — the
// same bound the session-scale drill enforces.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "exchange/exchange.hpp"
#include "exchange/loadgen.hpp"
#include "proto/partition.hpp"
#include "sim/engine.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;

  constexpr std::uint32_t kSessions = 100'000;
  constexpr std::uint32_t kStormKill = 10'000;
  constexpr std::int64_t kRecoveryCeilingMs = 10;

  std::printf("S2: session scale-out (%u sessions, %u-session storm)\n\n",
              kSessions, kStormKill);

  bench::Report report{"session_scale",
                       "Gateway session scale-out: admission, churn, storm recovery"};
  report.param("sessions", std::int64_t{kSessions});
  report.param("storm_kill", std::int64_t{kStormKill});
  report.param("recovery_ceiling_ms", kRecoveryCeilingMs);

  sim::Engine engine;
  exchange::ExchangeConfig xcfg;
  xcfg.name = "SCALE";
  xcfg.symbols = {{proto::Symbol{"AAPL"}}, {proto::Symbol{"MSFT"}},
                  {proto::Symbol{"NVDA"}}, {proto::Symbol{"AMZN"}}};
  xcfg.feed_partitioning = std::make_shared<proto::AlphabetPartition>(2);
  xcfg.cancel_on_disconnect = true;
  xcfg.heartbeat_interval = sim::millis(std::int64_t{5});
  xcfg.session_timeout = sim::millis(std::int64_t{50});
  xcfg.session_shards = 128;
  xcfg.sharded_liveness_sweep = true;
  xcfg.expected_sessions = kSessions + kSessions / 8;
  xcfg.expected_open_orders = static_cast<std::size_t>(kSessions) * 8;
  xcfg.expected_journal_bytes = std::size_t{96} << 20;
  exchange::Exchange ex{engine, xcfg};

  exchange::LoadGenConfig gcfg;
  gcfg.sessions = kSessions;
  gcfg.seed = 7;
  gcfg.logins_per_tick = 5'000;
  gcfg.target_open_orders = 2;
  gcfg.burst_size = 2;
  exchange::LoadGen gen{engine, ex, gcfg};
  ex.start_heartbeats();

  const auto at = [](std::int64_t ms) { return sim::Time() + sim::millis(ms); };
  const auto sim_seconds = [](sim::Duration d) {
    return static_cast<double>(d.picos()) * 1e-12;
  };
  const auto wall_start = std::chrono::steady_clock::now();

  // --- admission ramp ------------------------------------------------------
  gen.start();
  engine.run_until(at(5));
  const bool admitted = report.check("all_admitted", gen.all_admitted(),
                                     "every session logged in and acked by 5ms");
  const double admit_s = sim_seconds(gen.admitted_at() - sim::Time());
  const double admitted_per_s = admitted ? kSessions / admit_s : 0.0;
  report.metric("sessions.admitted_per_s", admitted_per_s, "sessions/s");
  std::printf("admission: %u sessions in %.3f sim-ms (%.3g /s)\n", kSessions,
              admit_s * 1e3, admitted_per_s);

  // --- sustained order churn ----------------------------------------------
  // Steady-state window: every persona rotating on cadence, no storms. The
  // rate counts acked order submissions (rotations + bursts) per sim second.
  engine.run_until(at(8));
  const std::uint64_t acked_before = gen.stats().orders_acked;
  engine.run_until(at(24));
  const std::uint64_t acked = gen.stats().orders_acked - acked_before;
  const double churn_s = sim_seconds(sim::millis(std::int64_t{24} - 8));
  const double sustained = static_cast<double>(acked) / churn_s;
  report.metric("orders.sustained_per_s_at_100k_sessions", sustained, "orders/s");
  report.check("churn_nonzero", acked > 0, "steady window must ack orders");
  std::printf("churn: %llu acked in %.0f sim-ms (%.3g /s)\n",
              static_cast<unsigned long long>(acked), churn_s * 1e3, sustained);

  // --- reconnect storm -----------------------------------------------------
  const std::uint32_t dropped = gen.storm(kStormKill);
  engine.run_until(at(34));
  const bool recovered =
      report.check("storm_recovered", dropped == kStormKill && gen.storm_recovered(),
                   "all storm victims ready again with nothing outstanding");
  const double recovery_s = recovered ? sim_seconds(gen.storm_recovery_duration()) : 0.0;
  const double recovery_ms = recovery_s * 1e3;
  report.metric("reconnect.storm_recovery_ms", recovery_ms, "ms");
  report.metric("reconnect.recovered_sessions_per_s",
                recovered ? kStormKill / recovery_s : 0.0, "sessions/s");
  report.check("recovery_under_ceiling",
               recovered && recovery_ms < static_cast<double>(kRecoveryCeilingMs),
               "10k-session storm must recover within the drill ceiling");
  std::printf("storm: %u sessions recovered in %.3f sim-ms\n", dropped, recovery_ms);

  // Wall-clock context (machine-dependent — informational only, unit "ms"
  // keeps it out of the bench_compare throughput gate).
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  report.metric("wall.total_ms", wall_ms, "ms");
  report.metric("sessions.live", static_cast<double>(gen.ready_sessions()), "sessions");
  std::printf("wall: %.0f ms for the full scenario\n", wall_ms);

  return report.finish();
}
