// W1 (§2 ablation) — inter-colo WAN: microwave vs fiber.
//
// The exchange runs in Carteret, the firm's stack in Secaucus (Figure 1a).
// The same trading system runs over a fiber circuit and over a microwave
// circuit — faster through air on a straighter path, but rain-faded and
// two orders of magnitude thinner. The feed-path difference is the
// latency a firm pays McKay-Brothers-class providers to remove; the rainy
// run shows why the fiber stays plugged in.
#include <cstdio>
#include <string>

#include "deploy/multicolo.hpp"
#include "telemetry/report.hpp"

namespace {

using namespace tsn;

deploy::DeploymentReport run(wan::LinkTech tech, bool raining, sim::Duration* wan_delay) {
  deploy::MultiColoConfig config;
  config.apps.strategy_count = 2;
  config.apps.events_per_second = 30'000;
  config.wan_tech = tech;
  config.raining = raining;
  deploy::MultiColoDeployment deployment{config};
  *wan_delay = deployment.wan_delay();
  deployment.start();
  deployment.run(sim::millis(std::int64_t{100}));
  return deployment.report();
}

}  // namespace

int main() {
  std::printf("W1: Carteret exchange -> Secaucus trading stack across the metro WAN\n\n");
  bench::Report bench_report{"wan_microwave", "Inter-colo WAN: microwave vs fiber"};
  std::printf("%-22s %12s %14s %12s %10s\n", "circuit", "wan-delay", "feed-path(us)",
              "order-rtt(us)", "gaps");
  struct Case {
    const char* name;
    const char* key;
    wan::LinkTech tech;
    bool raining;
  };
  double fiber_feed_us = 0.0;
  double microwave_feed_us = 0.0;
  std::uint64_t rainy_gaps = 0;
  for (const Case c : {Case{"fiber", "fiber", wan::LinkTech::kFiber, false},
                       Case{"microwave (dry)", "microwave_dry", wan::LinkTech::kMicrowave,
                            false},
                       Case{"microwave (raining)", "microwave_rain",
                            wan::LinkTech::kMicrowave, true}}) {
    sim::Duration wan_delay;
    const auto report = run(c.tech, c.raining, &wan_delay);
    std::printf("%-22s %9.1f us %14.1f %12.1f %10llu\n", c.name, wan_delay.micros(),
                report.feed_path_ns.mean() / 1'000.0, report.order_rtt_ns.mean() / 1'000.0,
                static_cast<unsigned long long>(report.sequence_gaps));
    const std::string prefix = c.key;
    bench_report.metric(prefix + ".wan_delay_us", wan_delay.micros(), "us");
    bench_report.metric(prefix + ".feed_path_us", report.feed_path_ns.mean() / 1'000.0, "us");
    bench_report.metric(prefix + ".order_rtt_us", report.order_rtt_ns.mean() / 1'000.0, "us");
    bench_report.metric(prefix + ".sequence_gaps", static_cast<double>(report.sequence_gaps),
                        "count");
    if (c.tech == wan::LinkTech::kFiber) fiber_feed_us = report.feed_path_ns.mean() / 1'000.0;
    if (c.tech == wan::LinkTech::kMicrowave && !c.raining) {
      microwave_feed_us = report.feed_path_ns.mean() / 1'000.0;
    }
    if (c.raining) rainy_gaps = report.sequence_gaps;
  }
  std::printf("\nmicrowave advantage on the feed path: %.1f us one-way\n",
              fiber_feed_us - microwave_feed_us);
  bench_report.metric("microwave_advantage_us", fiber_feed_us - microwave_feed_us, "us");
  // §2 shape: air beats glass on the straight path, but rain costs data.
  bench_report.check("microwave_faster_than_fiber",
                     microwave_feed_us + 1.0 < fiber_feed_us);
  bench_report.check("rain_causes_gaps", rainy_gaps > 0);
  std::printf("(§2: microwave links are used \"even though they are both less reliable\n"
              "(e.g., rain can cause packet loss) and offer less bandwidth\" — the rainy\n"
              "run shows the sequence gaps the normalizer detects)\n");
  return bench_report.finish();
}
