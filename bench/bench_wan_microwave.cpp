// W1 (§2 ablation) — inter-colo WAN: microwave vs fiber.
//
// The exchange runs in Carteret, the firm's stack in Secaucus (Figure 1a).
// The same trading system runs over a fiber circuit and over a microwave
// circuit — faster through air on a straighter path, but rain-faded and
// two orders of magnitude thinner. The feed-path difference is the
// latency a firm pays McKay-Brothers-class providers to remove; the rainy
// run shows why the fiber stays plugged in.
#include <cstdio>

#include "deploy/multicolo.hpp"

namespace {

using namespace tsn;

deploy::DeploymentReport run(wan::LinkTech tech, bool raining, sim::Duration* wan_delay) {
  deploy::MultiColoConfig config;
  config.apps.strategy_count = 2;
  config.apps.events_per_second = 30'000;
  config.wan_tech = tech;
  config.raining = raining;
  deploy::MultiColoDeployment deployment{config};
  *wan_delay = deployment.wan_delay();
  deployment.start();
  deployment.run(sim::millis(std::int64_t{100}));
  return deployment.report();
}

}  // namespace

int main() {
  std::printf("W1: Carteret exchange -> Secaucus trading stack across the metro WAN\n\n");
  std::printf("%-22s %12s %14s %12s %10s\n", "circuit", "wan-delay", "feed-path(us)",
              "order-rtt(us)", "gaps");
  struct Case {
    const char* name;
    wan::LinkTech tech;
    bool raining;
  };
  double fiber_feed_us = 0.0;
  double microwave_feed_us = 0.0;
  for (const Case c : {Case{"fiber", wan::LinkTech::kFiber, false},
                       Case{"microwave (dry)", wan::LinkTech::kMicrowave, false},
                       Case{"microwave (raining)", wan::LinkTech::kMicrowave, true}}) {
    sim::Duration wan_delay;
    const auto report = run(c.tech, c.raining, &wan_delay);
    std::printf("%-22s %9.1f us %14.1f %12.1f %10llu\n", c.name, wan_delay.micros(),
                report.feed_path_ns.mean() / 1'000.0, report.order_rtt_ns.mean() / 1'000.0,
                static_cast<unsigned long long>(report.sequence_gaps));
    if (c.tech == wan::LinkTech::kFiber) fiber_feed_us = report.feed_path_ns.mean() / 1'000.0;
    if (c.tech == wan::LinkTech::kMicrowave && !c.raining) {
      microwave_feed_us = report.feed_path_ns.mean() / 1'000.0;
    }
  }
  std::printf("\nmicrowave advantage on the feed path: %.1f us one-way\n",
              fiber_feed_us - microwave_feed_us);
  std::printf("(§2: microwave links are used \"even though they are both less reliable\n"
              "(e.g., rain can cause packet loss) and offer less bandwidth\" — the rainy\n"
              "run shows the sequence gaps the normalizer detects)\n");
  return 0;
}
