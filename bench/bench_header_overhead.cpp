// H1 — §5 "Protocols": standard header overhead vs a custom transport.
//
// Quantifies the paper's observations: (i) standard Ethernet/IP/UDP
// headers cost ~40 ns of wire time at 10 Gb/s and represent 25-40% of the
// bytes on market-data feeds; (ii) order messages are a few bytes (26-byte
// new order, 14-byte cancel), so header overhead dominates; and (iii) a
// custom transport with header compression (Xpress) removes most of it.
#include <cstdio>
#include <string>
#include <vector>

#include "feed/framelen.hpp"
#include "net/headers.hpp"
#include "net/link.hpp"
#include "proto/pitch.hpp"
#include "proto/xpress.hpp"
#include "sim/engine.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  std::printf("H1: header overhead and the custom-transport alternative (§5)\n\n");
  bench::Report bench_report{"header_overhead",
                             "Header overhead vs a compressing custom transport"};

  // Wire time of the standard headers at 10 Gb/s.
  sim::Engine engine;
  net::LinkConfig ten_gig;
  net::Link link{engine, "10g", ten_gig};
  const std::size_t std_headers = net::kEthernetHeaderSize + net::kIpv4HeaderSize +
                                  net::kUdpHeaderSize + net::kEthernetFcsSize;
  std::printf("standard headers (eth+ipv4+udp+fcs): %zu bytes = %.1f ns at 10 Gb/s "
              "(paper: ~40 ns)\n\n",
              std_headers, link.serialization_delay(std_headers).nanos());
  bench_report.param("standard_header_bytes", static_cast<std::int64_t>(std_headers));
  bench_report.metric("standard_header_wire_ns", link.serialization_delay(std_headers).nanos(),
                      "ns");
  bench_report.check("standard_header_near_40ns",
                     link.serialization_delay(std_headers).nanos() > 30.0 &&
                         link.serialization_delay(std_headers).nanos() < 50.0);

  // Header share of feed bytes, per Table 1 profile.
  std::printf("header share of market-data feed bytes (200k frames/feed):\n");
  std::printf("%-12s %12s %14s %12s\n", "feed", "avg frame", "payload bytes", "headers");
  for (const auto& profile :
       {feed::exchange_a_profile(), feed::exchange_b_profile(), feed::exchange_c_profile()}) {
    feed::FrameLengthSampler sampler{profile, 5};
    std::uint64_t total = 0;
    std::uint64_t payload = 0;
    constexpr int kFrames = 200'000;
    for (int i = 0; i < kFrames; ++i) {
      const auto frame = sampler.next_frame();
      total += frame.size();
      const auto decoded = net::decode_frame(frame);
      if (decoded) payload += decoded->payload.size();
    }
    const double share =
        100.0 * (1.0 - static_cast<double>(payload) / static_cast<double>(total));
    std::printf("%-12s %12.1f %14.1f %11.1f%%\n", profile.name.c_str(),
                static_cast<double>(total) / kFrames, static_cast<double>(payload) / kFrames,
                share);
    bench_report.metric(profile.name + ".header_share", share, "%");
    bench_report.check(profile.name + ".header_share_significant",
                       share > 15.0 && share < 70.0);
  }
  std::printf("(paper: headers are 25%%-40%% of the data sent)\n\n");

  // Order-entry overhead: tiny messages under big headers.
  const std::size_t new_order = 26;  // paper's PITCH-quoted sizes
  const std::size_t cancel = 14;
  std::printf("order-entry header overhead (message -> share of wire bytes):\n");
  std::printf("  26 B new order + standard headers: %5.1f%% headers\n",
              100.0 * static_cast<double>(std_headers) / static_cast<double>(std_headers + new_order));
  std::printf("  14 B cancel    + standard headers: %5.1f%% headers\n\n",
              100.0 * static_cast<double>(std_headers) / static_cast<double>(std_headers + cancel));

  // Xpress: the same message stream through the compressing transport.
  proto::xpress::Compressor tx;
  std::vector<std::byte> pipe;
  constexpr int kMessages = 100'000;
  std::uint64_t xpress_header_bytes = 0;
  const std::vector<std::byte> order_payload(new_order, std::byte{0x5a});
  for (int i = 0; i < kMessages; ++i) {
    const auto stream = static_cast<std::uint16_t>(i % 8);
    xpress_header_bytes += tx.encode(stream, static_cast<std::uint32_t>(i / 8 + 1),
                                     order_payload, pipe);
  }
  const double xpress_avg_header = static_cast<double>(xpress_header_bytes) / kMessages;
  std::printf("Xpress custom transport, %d x 26 B orders over 8 streams:\n", kMessages);
  std::printf("  avg header: %.2f bytes/frame (vs %zu standard) -> %.1f%% header share\n",
              xpress_avg_header, std_headers,
              100.0 * xpress_avg_header / (xpress_avg_header + new_order));
  std::printf("  wire time saved per frame at 10 Gb/s: %.1f ns\n",
              link.serialization_delay(std_headers).nanos() -
                  link.serialization_delay(static_cast<std::size_t>(xpress_avg_header + 0.5))
                      .nanos());
  std::printf("  total bytes: %zu (standard would be %llu) -> %.1f%% of the bandwidth\n",
              pipe.size(),
              static_cast<unsigned long long>((std_headers + new_order) *
                                              static_cast<std::uint64_t>(kMessages)),
              100.0 * static_cast<double>(pipe.size()) /
                  static_cast<double>((std_headers + new_order) *
                                      static_cast<std::uint64_t>(kMessages)));
  const double bandwidth_share =
      100.0 * static_cast<double>(pipe.size()) /
      static_cast<double>((std_headers + new_order) * static_cast<std::uint64_t>(kMessages));
  bench_report.param("messages", static_cast<std::int64_t>(kMessages));
  bench_report.metric("order26B.standard_header_share",
                      100.0 * static_cast<double>(std_headers) /
                          static_cast<double>(std_headers + new_order),
                      "%");
  bench_report.metric("cancel14B.standard_header_share",
                      100.0 * static_cast<double>(std_headers) /
                          static_cast<double>(std_headers + cancel),
                      "%");
  bench_report.metric("xpress.avg_header_bytes", xpress_avg_header, "bytes");
  bench_report.metric("xpress.bandwidth_share", bandwidth_share, "%");
  // §5 shape: headers dominate tiny order messages; Xpress compresses the
  // per-frame header to a few bytes and halves the bandwidth.
  bench_report.check("orders_header_dominated",
                     static_cast<double>(std_headers) >
                         static_cast<double>(new_order));
  bench_report.check("xpress_header_under_8B", xpress_avg_header < 8.0);
  bench_report.check("xpress_saves_bandwidth", bandwidth_share < 70.0);
  std::printf("\n(the stream id doubles as the filtering/load-balancing key §5 asks custom\n"
              "transports to expose to L1S-resident hardware)\n");
  return bench_report.finish();
}
