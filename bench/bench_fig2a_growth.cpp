// F2a — Figure 2(a): "U.S. options and equities event count by day",
// 2020-2024.
//
// Regenerates the daily series from the calibrated growth model and prints
// per-year aggregates plus the claims the paper reads off the figure: tens
// of billions of events per day, >500k events/second on average, and 500%
// growth over the five years.
#include <cstdio>
#include <map>

#include "feed/trend.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace tsn;
  feed::MarketDataTrendModel model;
  const auto series = model.daily_series();

  std::map<int, sim::SampleStats> by_year;
  for (const auto& point : series) by_year[point.year].add(point.events);

  std::printf("F2a: market data event count by day (synthetic series, %zu trading days)\n\n",
              series.size());
  std::printf("%6s %14s %14s %14s %16s\n", "year", "min/day", "mean/day", "max/day",
              "avg events/sec");
  for (const auto& [year, stats] : by_year) {
    std::printf("%6d %14.3e %14.3e %14.3e %16.0f\n", year, stats.min(), stats.mean(),
                stats.max(), feed::MarketDataTrendModel::events_per_second(stats.mean()));
  }

  // "Increased 500% over the last 5 years" compares the start of the span
  // to its end, so average the first and last ~month of trading days.
  sim::SampleStats span_start;
  sim::SampleStats span_end;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i < 21) span_start.add(series[i].events);
    if (i + 21 >= series.size()) span_end.add(series[i].events);
  }
  const double growth = span_end.mean() / span_start.mean();
  std::printf("\ngrowth start-2020 -> end-2024: %.1fx   (paper: ~500%% growth = 6x)\n",
              growth);
  std::printf("2024 average rate:   %.0f events/s (paper: more than 500k events/second)\n",
              feed::MarketDataTrendModel::events_per_second(by_year.at(2024).mean()));
  std::printf("2024 busiest day:    %.2e events (paper: tens of billions per day)\n",
              by_year.at(2024).max());

  // A short excerpt of the raw series, one row per quarter, for plotting.
  std::printf("\nexcerpt (first trading day of each quarter):\n");
  for (const auto& point : series) {
    if (point.day_of_year % 63 == 0) {
      std::printf("  %d-d%03d  %.3e\n", point.year, point.day_of_year, point.events);
    }
  }
  return 0;
}
