// F2a — Figure 2(a): "U.S. options and equities event count by day",
// 2020-2024.
//
// Regenerates the daily series from the calibrated growth model and prints
// per-year aggregates plus the claims the paper reads off the figure: tens
// of billions of events per day, >500k events/second on average, and 500%
// growth over the five years.
#include <cstdio>
#include <map>
#include <string>

#include "feed/trend.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

int main() {
  using namespace tsn;
  feed::MarketDataTrendModel model;
  const auto series = model.daily_series();

  std::map<int, telemetry::Histogram> by_year;
  for (const auto& point : series) by_year[point.year].add(point.events);

  bench::Report bench_report{"fig2a_growth", "Figure 2(a): event count by day, 2020-2024"};
  bench_report.param("trading_days", static_cast<std::int64_t>(series.size()));

  std::printf("F2a: market data event count by day (synthetic series, %zu trading days)\n\n",
              series.size());
  std::printf("%6s %14s %14s %14s %16s\n", "year", "min/day", "mean/day", "max/day",
              "avg events/sec");
  for (const auto& [year, stats] : by_year) {
    std::printf("%6d %14.3e %14.3e %14.3e %16.0f\n", year, stats.min(), stats.mean(),
                stats.max(), feed::MarketDataTrendModel::events_per_second(stats.mean()));
    const std::string prefix = "year" + std::to_string(year);
    bench_report.metric(prefix + ".mean_events_per_day", stats.mean(), "events");
    bench_report.metric(prefix + ".max_events_per_day", stats.max(), "events");
    bench_report.metric(prefix + ".avg_events_per_sec",
                        feed::MarketDataTrendModel::events_per_second(stats.mean()),
                        "events/s");
  }

  // "Increased 500% over the last 5 years" compares the start of the span
  // to its end, so average the first and last ~month of trading days.
  telemetry::Histogram span_start;
  telemetry::Histogram span_end;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i < 21) span_start.add(series[i].events);
    if (i + 21 >= series.size()) span_end.add(series[i].events);
  }
  const double growth = span_end.mean() / span_start.mean();
  std::printf("\ngrowth start-2020 -> end-2024: %.1fx   (paper: ~500%% growth = 6x)\n",
              growth);
  std::printf("2024 average rate:   %.0f events/s (paper: more than 500k events/second)\n",
              feed::MarketDataTrendModel::events_per_second(by_year.at(2024).mean()));
  std::printf("2024 busiest day:    %.2e events (paper: tens of billions per day)\n",
              by_year.at(2024).max());

  bench_report.metric("growth_2020_to_2024", growth, "x");
  // The paper reads ~500% growth (6x), >500k events/s on average in 2024,
  // and tens of billions of events on the busiest days.
  bench_report.check("growth_near_6x", growth > 4.5 && growth < 7.5);
  bench_report.check(
      "avg_rate_2024_over_500k",
      feed::MarketDataTrendModel::events_per_second(by_year.at(2024).mean()) > 500'000.0);
  bench_report.check("busiest_day_tens_of_billions", by_year.at(2024).max() > 1e10);

  // A short excerpt of the raw series, one row per quarter, for plotting.
  std::printf("\nexcerpt (first trading day of each quarter):\n");
  for (const auto& point : series) {
    if (point.day_of_year % 63 == 0) {
      std::printf("  %d-d%03d  %.3e\n", point.year, point.day_of_year, point.events);
    }
  }
  return bench_report.finish();
}
