# Empty dependencies file for tsn_proto.
# This may be replaced when dependencies are built.
