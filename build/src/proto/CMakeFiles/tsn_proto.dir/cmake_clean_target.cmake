file(REMOVE_RECURSE
  "libtsn_proto.a"
)
