
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/boe.cpp" "src/proto/CMakeFiles/tsn_proto.dir/boe.cpp.o" "gcc" "src/proto/CMakeFiles/tsn_proto.dir/boe.cpp.o.d"
  "/root/repo/src/proto/norm.cpp" "src/proto/CMakeFiles/tsn_proto.dir/norm.cpp.o" "gcc" "src/proto/CMakeFiles/tsn_proto.dir/norm.cpp.o.d"
  "/root/repo/src/proto/pitch.cpp" "src/proto/CMakeFiles/tsn_proto.dir/pitch.cpp.o" "gcc" "src/proto/CMakeFiles/tsn_proto.dir/pitch.cpp.o.d"
  "/root/repo/src/proto/xpress.cpp" "src/proto/CMakeFiles/tsn_proto.dir/xpress.cpp.o" "gcc" "src/proto/CMakeFiles/tsn_proto.dir/xpress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
