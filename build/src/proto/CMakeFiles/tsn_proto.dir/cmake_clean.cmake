file(REMOVE_RECURSE
  "CMakeFiles/tsn_proto.dir/boe.cpp.o"
  "CMakeFiles/tsn_proto.dir/boe.cpp.o.d"
  "CMakeFiles/tsn_proto.dir/norm.cpp.o"
  "CMakeFiles/tsn_proto.dir/norm.cpp.o.d"
  "CMakeFiles/tsn_proto.dir/pitch.cpp.o"
  "CMakeFiles/tsn_proto.dir/pitch.cpp.o.d"
  "CMakeFiles/tsn_proto.dir/xpress.cpp.o"
  "CMakeFiles/tsn_proto.dir/xpress.cpp.o.d"
  "libtsn_proto.a"
  "libtsn_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
