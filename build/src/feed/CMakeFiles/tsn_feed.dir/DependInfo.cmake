
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feed/burst.cpp" "src/feed/CMakeFiles/tsn_feed.dir/burst.cpp.o" "gcc" "src/feed/CMakeFiles/tsn_feed.dir/burst.cpp.o.d"
  "/root/repo/src/feed/correlated.cpp" "src/feed/CMakeFiles/tsn_feed.dir/correlated.cpp.o" "gcc" "src/feed/CMakeFiles/tsn_feed.dir/correlated.cpp.o.d"
  "/root/repo/src/feed/framelen.cpp" "src/feed/CMakeFiles/tsn_feed.dir/framelen.cpp.o" "gcc" "src/feed/CMakeFiles/tsn_feed.dir/framelen.cpp.o.d"
  "/root/repo/src/feed/intraday.cpp" "src/feed/CMakeFiles/tsn_feed.dir/intraday.cpp.o" "gcc" "src/feed/CMakeFiles/tsn_feed.dir/intraday.cpp.o.d"
  "/root/repo/src/feed/symbols.cpp" "src/feed/CMakeFiles/tsn_feed.dir/symbols.cpp.o" "gcc" "src/feed/CMakeFiles/tsn_feed.dir/symbols.cpp.o.d"
  "/root/repo/src/feed/trend.cpp" "src/feed/CMakeFiles/tsn_feed.dir/trend.cpp.o" "gcc" "src/feed/CMakeFiles/tsn_feed.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/tsn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
