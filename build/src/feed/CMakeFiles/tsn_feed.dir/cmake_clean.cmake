file(REMOVE_RECURSE
  "CMakeFiles/tsn_feed.dir/burst.cpp.o"
  "CMakeFiles/tsn_feed.dir/burst.cpp.o.d"
  "CMakeFiles/tsn_feed.dir/correlated.cpp.o"
  "CMakeFiles/tsn_feed.dir/correlated.cpp.o.d"
  "CMakeFiles/tsn_feed.dir/framelen.cpp.o"
  "CMakeFiles/tsn_feed.dir/framelen.cpp.o.d"
  "CMakeFiles/tsn_feed.dir/intraday.cpp.o"
  "CMakeFiles/tsn_feed.dir/intraday.cpp.o.d"
  "CMakeFiles/tsn_feed.dir/symbols.cpp.o"
  "CMakeFiles/tsn_feed.dir/symbols.cpp.o.d"
  "CMakeFiles/tsn_feed.dir/trend.cpp.o"
  "CMakeFiles/tsn_feed.dir/trend.cpp.o.d"
  "libtsn_feed.a"
  "libtsn_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
