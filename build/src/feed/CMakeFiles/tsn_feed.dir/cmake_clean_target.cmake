file(REMOVE_RECURSE
  "libtsn_feed.a"
)
