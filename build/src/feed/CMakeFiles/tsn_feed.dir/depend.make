# Empty dependencies file for tsn_feed.
# This may be replaced when dependencies are built.
