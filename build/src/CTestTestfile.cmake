# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("mcast")
subdirs("l2")
subdirs("l1s")
subdirs("proto")
subdirs("book")
subdirs("exchange")
subdirs("feed")
subdirs("wan")
subdirs("trading")
subdirs("capture")
subdirs("topo")
subdirs("deploy")
subdirs("cluster")
subdirs("core")
