file(REMOVE_RECURSE
  "CMakeFiles/tsn_deploy.dir/multicolo.cpp.o"
  "CMakeFiles/tsn_deploy.dir/multicolo.cpp.o.d"
  "CMakeFiles/tsn_deploy.dir/reference.cpp.o"
  "CMakeFiles/tsn_deploy.dir/reference.cpp.o.d"
  "libtsn_deploy.a"
  "libtsn_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
