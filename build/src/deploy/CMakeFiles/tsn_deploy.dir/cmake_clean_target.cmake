file(REMOVE_RECURSE
  "libtsn_deploy.a"
)
