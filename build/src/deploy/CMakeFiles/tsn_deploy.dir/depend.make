# Empty dependencies file for tsn_deploy.
# This may be replaced when dependencies are built.
