file(REMOVE_RECURSE
  "CMakeFiles/tsn_cluster.dir/manager.cpp.o"
  "CMakeFiles/tsn_cluster.dir/manager.cpp.o.d"
  "libtsn_cluster.a"
  "libtsn_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
