file(REMOVE_RECURSE
  "libtsn_cluster.a"
)
