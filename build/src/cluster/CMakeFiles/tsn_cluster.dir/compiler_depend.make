# Empty compiler generated dependencies file for tsn_cluster.
# This may be replaced when dependencies are built.
