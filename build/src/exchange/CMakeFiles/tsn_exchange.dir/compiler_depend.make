# Empty compiler generated dependencies file for tsn_exchange.
# This may be replaced when dependencies are built.
