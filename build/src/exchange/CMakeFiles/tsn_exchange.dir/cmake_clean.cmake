file(REMOVE_RECURSE
  "CMakeFiles/tsn_exchange.dir/activity.cpp.o"
  "CMakeFiles/tsn_exchange.dir/activity.cpp.o.d"
  "CMakeFiles/tsn_exchange.dir/exchange.cpp.o"
  "CMakeFiles/tsn_exchange.dir/exchange.cpp.o.d"
  "libtsn_exchange.a"
  "libtsn_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
