file(REMOVE_RECURSE
  "libtsn_exchange.a"
)
