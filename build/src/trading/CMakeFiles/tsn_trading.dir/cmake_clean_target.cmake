file(REMOVE_RECURSE
  "libtsn_trading.a"
)
