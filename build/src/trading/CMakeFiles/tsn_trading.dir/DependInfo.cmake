
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trading/compliance.cpp" "src/trading/CMakeFiles/tsn_trading.dir/compliance.cpp.o" "gcc" "src/trading/CMakeFiles/tsn_trading.dir/compliance.cpp.o.d"
  "/root/repo/src/trading/filter.cpp" "src/trading/CMakeFiles/tsn_trading.dir/filter.cpp.o" "gcc" "src/trading/CMakeFiles/tsn_trading.dir/filter.cpp.o.d"
  "/root/repo/src/trading/gateway.cpp" "src/trading/CMakeFiles/tsn_trading.dir/gateway.cpp.o" "gcc" "src/trading/CMakeFiles/tsn_trading.dir/gateway.cpp.o.d"
  "/root/repo/src/trading/normalizer.cpp" "src/trading/CMakeFiles/tsn_trading.dir/normalizer.cpp.o" "gcc" "src/trading/CMakeFiles/tsn_trading.dir/normalizer.cpp.o.d"
  "/root/repo/src/trading/risk.cpp" "src/trading/CMakeFiles/tsn_trading.dir/risk.cpp.o" "gcc" "src/trading/CMakeFiles/tsn_trading.dir/risk.cpp.o.d"
  "/root/repo/src/trading/strategy.cpp" "src/trading/CMakeFiles/tsn_trading.dir/strategy.cpp.o" "gcc" "src/trading/CMakeFiles/tsn_trading.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/tsn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/tsn_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
