file(REMOVE_RECURSE
  "CMakeFiles/tsn_trading.dir/compliance.cpp.o"
  "CMakeFiles/tsn_trading.dir/compliance.cpp.o.d"
  "CMakeFiles/tsn_trading.dir/filter.cpp.o"
  "CMakeFiles/tsn_trading.dir/filter.cpp.o.d"
  "CMakeFiles/tsn_trading.dir/gateway.cpp.o"
  "CMakeFiles/tsn_trading.dir/gateway.cpp.o.d"
  "CMakeFiles/tsn_trading.dir/normalizer.cpp.o"
  "CMakeFiles/tsn_trading.dir/normalizer.cpp.o.d"
  "CMakeFiles/tsn_trading.dir/risk.cpp.o"
  "CMakeFiles/tsn_trading.dir/risk.cpp.o.d"
  "CMakeFiles/tsn_trading.dir/strategy.cpp.o"
  "CMakeFiles/tsn_trading.dir/strategy.cpp.o.d"
  "libtsn_trading.a"
  "libtsn_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
