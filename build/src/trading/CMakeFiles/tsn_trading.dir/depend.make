# Empty dependencies file for tsn_trading.
# This may be replaced when dependencies are built.
