file(REMOVE_RECURSE
  "libtsn_core.a"
)
