# Empty dependencies file for tsn_core.
# This may be replaced when dependencies are built.
