
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codesign.cpp" "src/core/CMakeFiles/tsn_core.dir/codesign.cpp.o" "gcc" "src/core/CMakeFiles/tsn_core.dir/codesign.cpp.o.d"
  "/root/repo/src/core/design.cpp" "src/core/CMakeFiles/tsn_core.dir/design.cpp.o" "gcc" "src/core/CMakeFiles/tsn_core.dir/design.cpp.o.d"
  "/root/repo/src/core/latency_model.cpp" "src/core/CMakeFiles/tsn_core.dir/latency_model.cpp.o" "gcc" "src/core/CMakeFiles/tsn_core.dir/latency_model.cpp.o.d"
  "/root/repo/src/core/mcast_analysis.cpp" "src/core/CMakeFiles/tsn_core.dir/mcast_analysis.cpp.o" "gcc" "src/core/CMakeFiles/tsn_core.dir/mcast_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/l2/CMakeFiles/tsn_l2.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/tsn_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
