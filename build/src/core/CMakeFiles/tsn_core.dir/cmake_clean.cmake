file(REMOVE_RECURSE
  "CMakeFiles/tsn_core.dir/codesign.cpp.o"
  "CMakeFiles/tsn_core.dir/codesign.cpp.o.d"
  "CMakeFiles/tsn_core.dir/design.cpp.o"
  "CMakeFiles/tsn_core.dir/design.cpp.o.d"
  "CMakeFiles/tsn_core.dir/latency_model.cpp.o"
  "CMakeFiles/tsn_core.dir/latency_model.cpp.o.d"
  "CMakeFiles/tsn_core.dir/mcast_analysis.cpp.o"
  "CMakeFiles/tsn_core.dir/mcast_analysis.cpp.o.d"
  "libtsn_core.a"
  "libtsn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
