file(REMOVE_RECURSE
  "libtsn_l2.a"
)
