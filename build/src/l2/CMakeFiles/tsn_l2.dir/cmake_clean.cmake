file(REMOVE_RECURSE
  "CMakeFiles/tsn_l2.dir/commodity_switch.cpp.o"
  "CMakeFiles/tsn_l2.dir/commodity_switch.cpp.o.d"
  "CMakeFiles/tsn_l2.dir/trends.cpp.o"
  "CMakeFiles/tsn_l2.dir/trends.cpp.o.d"
  "libtsn_l2.a"
  "libtsn_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
