# Empty dependencies file for tsn_l2.
# This may be replaced when dependencies are built.
