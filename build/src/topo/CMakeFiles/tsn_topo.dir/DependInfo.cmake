
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/cloud.cpp" "src/topo/CMakeFiles/tsn_topo.dir/cloud.cpp.o" "gcc" "src/topo/CMakeFiles/tsn_topo.dir/cloud.cpp.o.d"
  "/root/repo/src/topo/leaf_spine.cpp" "src/topo/CMakeFiles/tsn_topo.dir/leaf_spine.cpp.o" "gcc" "src/topo/CMakeFiles/tsn_topo.dir/leaf_spine.cpp.o.d"
  "/root/repo/src/topo/quad_l1s.cpp" "src/topo/CMakeFiles/tsn_topo.dir/quad_l1s.cpp.o" "gcc" "src/topo/CMakeFiles/tsn_topo.dir/quad_l1s.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/l2/CMakeFiles/tsn_l2.dir/DependInfo.cmake"
  "/root/repo/build/src/l1s/CMakeFiles/tsn_l1s.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/tsn_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
