file(REMOVE_RECURSE
  "CMakeFiles/tsn_topo.dir/cloud.cpp.o"
  "CMakeFiles/tsn_topo.dir/cloud.cpp.o.d"
  "CMakeFiles/tsn_topo.dir/leaf_spine.cpp.o"
  "CMakeFiles/tsn_topo.dir/leaf_spine.cpp.o.d"
  "CMakeFiles/tsn_topo.dir/quad_l1s.cpp.o"
  "CMakeFiles/tsn_topo.dir/quad_l1s.cpp.o.d"
  "libtsn_topo.a"
  "libtsn_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
