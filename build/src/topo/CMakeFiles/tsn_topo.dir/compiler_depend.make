# Empty compiler generated dependencies file for tsn_topo.
# This may be replaced when dependencies are built.
