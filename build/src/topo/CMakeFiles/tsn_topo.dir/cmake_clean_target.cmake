file(REMOVE_RECURSE
  "libtsn_topo.a"
)
