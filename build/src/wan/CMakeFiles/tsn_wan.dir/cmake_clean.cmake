file(REMOVE_RECURSE
  "CMakeFiles/tsn_wan.dir/metro.cpp.o"
  "CMakeFiles/tsn_wan.dir/metro.cpp.o.d"
  "libtsn_wan.a"
  "libtsn_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
