file(REMOVE_RECURSE
  "libtsn_wan.a"
)
