# Empty dependencies file for tsn_wan.
# This may be replaced when dependencies are built.
