
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cpp" "src/net/CMakeFiles/tsn_net.dir/addr.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/addr.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/net/CMakeFiles/tsn_net.dir/headers.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/headers.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/tsn_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/link.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/tsn_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/stack.cpp" "src/net/CMakeFiles/tsn_net.dir/stack.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/stack.cpp.o.d"
  "/root/repo/src/net/tcp_lite.cpp" "src/net/CMakeFiles/tsn_net.dir/tcp_lite.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/tcp_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
