file(REMOVE_RECURSE
  "libtsn_net.a"
)
