file(REMOVE_RECURSE
  "CMakeFiles/tsn_net.dir/addr.cpp.o"
  "CMakeFiles/tsn_net.dir/addr.cpp.o.d"
  "CMakeFiles/tsn_net.dir/headers.cpp.o"
  "CMakeFiles/tsn_net.dir/headers.cpp.o.d"
  "CMakeFiles/tsn_net.dir/link.cpp.o"
  "CMakeFiles/tsn_net.dir/link.cpp.o.d"
  "CMakeFiles/tsn_net.dir/nic.cpp.o"
  "CMakeFiles/tsn_net.dir/nic.cpp.o.d"
  "CMakeFiles/tsn_net.dir/stack.cpp.o"
  "CMakeFiles/tsn_net.dir/stack.cpp.o.d"
  "CMakeFiles/tsn_net.dir/tcp_lite.cpp.o"
  "CMakeFiles/tsn_net.dir/tcp_lite.cpp.o.d"
  "libtsn_net.a"
  "libtsn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
