file(REMOVE_RECURSE
  "CMakeFiles/tsn_l1s.dir/fpga_switch.cpp.o"
  "CMakeFiles/tsn_l1s.dir/fpga_switch.cpp.o.d"
  "CMakeFiles/tsn_l1s.dir/layer1_switch.cpp.o"
  "CMakeFiles/tsn_l1s.dir/layer1_switch.cpp.o.d"
  "libtsn_l1s.a"
  "libtsn_l1s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_l1s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
