# Empty dependencies file for tsn_l1s.
# This may be replaced when dependencies are built.
