file(REMOVE_RECURSE
  "libtsn_l1s.a"
)
