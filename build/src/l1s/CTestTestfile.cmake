# CMake generated Testfile for 
# Source directory: /root/repo/src/l1s
# Build directory: /root/repo/build/src/l1s
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
