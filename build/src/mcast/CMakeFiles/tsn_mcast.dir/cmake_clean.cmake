file(REMOVE_RECURSE
  "CMakeFiles/tsn_mcast.dir/igmp.cpp.o"
  "CMakeFiles/tsn_mcast.dir/igmp.cpp.o.d"
  "CMakeFiles/tsn_mcast.dir/mroute.cpp.o"
  "CMakeFiles/tsn_mcast.dir/mroute.cpp.o.d"
  "CMakeFiles/tsn_mcast.dir/responder.cpp.o"
  "CMakeFiles/tsn_mcast.dir/responder.cpp.o.d"
  "libtsn_mcast.a"
  "libtsn_mcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_mcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
