file(REMOVE_RECURSE
  "libtsn_mcast.a"
)
