# Empty dependencies file for tsn_mcast.
# This may be replaced when dependencies are built.
