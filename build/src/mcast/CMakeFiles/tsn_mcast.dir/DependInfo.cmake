
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcast/igmp.cpp" "src/mcast/CMakeFiles/tsn_mcast.dir/igmp.cpp.o" "gcc" "src/mcast/CMakeFiles/tsn_mcast.dir/igmp.cpp.o.d"
  "/root/repo/src/mcast/mroute.cpp" "src/mcast/CMakeFiles/tsn_mcast.dir/mroute.cpp.o" "gcc" "src/mcast/CMakeFiles/tsn_mcast.dir/mroute.cpp.o.d"
  "/root/repo/src/mcast/responder.cpp" "src/mcast/CMakeFiles/tsn_mcast.dir/responder.cpp.o" "gcc" "src/mcast/CMakeFiles/tsn_mcast.dir/responder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
