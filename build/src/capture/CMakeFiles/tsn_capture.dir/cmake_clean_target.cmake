file(REMOVE_RECURSE
  "libtsn_capture.a"
)
