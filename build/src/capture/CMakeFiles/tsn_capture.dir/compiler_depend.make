# Empty compiler generated dependencies file for tsn_capture.
# This may be replaced when dependencies are built.
