file(REMOVE_RECURSE
  "CMakeFiles/tsn_capture.dir/replay.cpp.o"
  "CMakeFiles/tsn_capture.dir/replay.cpp.o.d"
  "CMakeFiles/tsn_capture.dir/tap.cpp.o"
  "CMakeFiles/tsn_capture.dir/tap.cpp.o.d"
  "libtsn_capture.a"
  "libtsn_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
