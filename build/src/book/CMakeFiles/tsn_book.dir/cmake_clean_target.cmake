file(REMOVE_RECURSE
  "libtsn_book.a"
)
