
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/book/order_book.cpp" "src/book/CMakeFiles/tsn_book.dir/order_book.cpp.o" "gcc" "src/book/CMakeFiles/tsn_book.dir/order_book.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/tsn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
