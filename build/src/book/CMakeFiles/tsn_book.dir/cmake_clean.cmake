file(REMOVE_RECURSE
  "CMakeFiles/tsn_book.dir/order_book.cpp.o"
  "CMakeFiles/tsn_book.dir/order_book.cpp.o.d"
  "libtsn_book.a"
  "libtsn_book.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_book.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
