# Empty compiler generated dependencies file for tsn_book.
# This may be replaced when dependencies are built.
