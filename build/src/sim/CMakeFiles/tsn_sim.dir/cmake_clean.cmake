file(REMOVE_RECURSE
  "CMakeFiles/tsn_sim.dir/engine.cpp.o"
  "CMakeFiles/tsn_sim.dir/engine.cpp.o.d"
  "CMakeFiles/tsn_sim.dir/random.cpp.o"
  "CMakeFiles/tsn_sim.dir/random.cpp.o.d"
  "CMakeFiles/tsn_sim.dir/stats.cpp.o"
  "CMakeFiles/tsn_sim.dir/stats.cpp.o.d"
  "CMakeFiles/tsn_sim.dir/time.cpp.o"
  "CMakeFiles/tsn_sim.dir/time.cpp.o.d"
  "libtsn_sim.a"
  "libtsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
