# Empty compiler generated dependencies file for bench_design2_cloud.
# This may be replaced when dependencies are built.
