file(REMOVE_RECURSE
  "CMakeFiles/bench_design2_cloud.dir/bench_design2_cloud.cpp.o"
  "CMakeFiles/bench_design2_cloud.dir/bench_design2_cloud.cpp.o.d"
  "bench_design2_cloud"
  "bench_design2_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design2_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
