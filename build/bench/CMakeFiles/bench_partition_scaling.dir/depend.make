# Empty dependencies file for bench_partition_scaling.
# This may be replaced when dependencies are built.
