file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_scaling.dir/bench_partition_scaling.cpp.o"
  "CMakeFiles/bench_partition_scaling.dir/bench_partition_scaling.cpp.o.d"
  "bench_partition_scaling"
  "bench_partition_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
