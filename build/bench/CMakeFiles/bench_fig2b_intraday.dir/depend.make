# Empty dependencies file for bench_fig2b_intraday.
# This may be replaced when dependencies are built.
