file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_intraday.dir/bench_fig2b_intraday.cpp.o"
  "CMakeFiles/bench_fig2b_intraday.dir/bench_fig2b_intraday.cpp.o.d"
  "bench_fig2b_intraday"
  "bench_fig2b_intraday.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_intraday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
