# Empty dependencies file for bench_fig2c_burst.
# This may be replaced when dependencies are built.
