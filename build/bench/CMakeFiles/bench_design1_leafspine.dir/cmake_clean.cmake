file(REMOVE_RECURSE
  "CMakeFiles/bench_design1_leafspine.dir/bench_design1_leafspine.cpp.o"
  "CMakeFiles/bench_design1_leafspine.dir/bench_design1_leafspine.cpp.o.d"
  "bench_design1_leafspine"
  "bench_design1_leafspine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design1_leafspine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
