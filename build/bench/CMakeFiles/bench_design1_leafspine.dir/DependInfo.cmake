
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_design1_leafspine.cpp" "bench/CMakeFiles/bench_design1_leafspine.dir/bench_design1_leafspine.cpp.o" "gcc" "bench/CMakeFiles/bench_design1_leafspine.dir/bench_design1_leafspine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deploy/CMakeFiles/tsn_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tsn_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/tsn_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/trading/CMakeFiles/tsn_trading.dir/DependInfo.cmake"
  "/root/repo/build/src/wan/CMakeFiles/tsn_wan.dir/DependInfo.cmake"
  "/root/repo/build/src/feed/CMakeFiles/tsn_feed.dir/DependInfo.cmake"
  "/root/repo/build/src/exchange/CMakeFiles/tsn_exchange.dir/DependInfo.cmake"
  "/root/repo/build/src/book/CMakeFiles/tsn_book.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tsn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/l1s/CMakeFiles/tsn_l1s.dir/DependInfo.cmake"
  "/root/repo/build/src/l2/CMakeFiles/tsn_l2.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/tsn_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/tsn_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
