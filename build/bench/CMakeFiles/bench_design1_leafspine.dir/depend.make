# Empty dependencies file for bench_design1_leafspine.
# This may be replaced when dependencies are built.
