# Empty compiler generated dependencies file for bench_header_overhead.
# This may be replaced when dependencies are built.
