file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_frame_lengths.dir/bench_table1_frame_lengths.cpp.o"
  "CMakeFiles/bench_table1_frame_lengths.dir/bench_table1_frame_lengths.cpp.o.d"
  "bench_table1_frame_lengths"
  "bench_table1_frame_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_frame_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
