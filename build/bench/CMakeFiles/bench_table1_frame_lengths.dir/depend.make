# Empty dependencies file for bench_table1_frame_lengths.
# This may be replaced when dependencies are built.
