# Empty dependencies file for bench_design3_l1s.
# This may be replaced when dependencies are built.
