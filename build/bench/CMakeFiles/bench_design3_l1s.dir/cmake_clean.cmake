file(REMOVE_RECURSE
  "CMakeFiles/bench_design3_l1s.dir/bench_design3_l1s.cpp.o"
  "CMakeFiles/bench_design3_l1s.dir/bench_design3_l1s.cpp.o.d"
  "bench_design3_l1s"
  "bench_design3_l1s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design3_l1s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
