# Empty dependencies file for bench_codesign_routing.
# This may be replaced when dependencies are built.
