file(REMOVE_RECURSE
  "CMakeFiles/bench_codesign_routing.dir/bench_codesign_routing.cpp.o"
  "CMakeFiles/bench_codesign_routing.dir/bench_codesign_routing.cpp.o.d"
  "bench_codesign_routing"
  "bench_codesign_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codesign_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
