# Empty compiler generated dependencies file for bench_latency_trends.
# This may be replaced when dependencies are built.
