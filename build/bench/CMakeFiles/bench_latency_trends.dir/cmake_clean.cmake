file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_trends.dir/bench_latency_trends.cpp.o"
  "CMakeFiles/bench_latency_trends.dir/bench_latency_trends.cpp.o.d"
  "bench_latency_trends"
  "bench_latency_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
