file(REMOVE_RECURSE
  "CMakeFiles/bench_filter_placement.dir/bench_filter_placement.cpp.o"
  "CMakeFiles/bench_filter_placement.dir/bench_filter_placement.cpp.o.d"
  "bench_filter_placement"
  "bench_filter_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
