# Empty compiler generated dependencies file for bench_wan_microwave.
# This may be replaced when dependencies are built.
