file(REMOVE_RECURSE
  "CMakeFiles/bench_wan_microwave.dir/bench_wan_microwave.cpp.o"
  "CMakeFiles/bench_wan_microwave.dir/bench_wan_microwave.cpp.o.d"
  "bench_wan_microwave"
  "bench_wan_microwave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wan_microwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
