file(REMOVE_RECURSE
  "CMakeFiles/bench_fpga_merge.dir/bench_fpga_merge.cpp.o"
  "CMakeFiles/bench_fpga_merge.dir/bench_fpga_merge.cpp.o.d"
  "bench_fpga_merge"
  "bench_fpga_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpga_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
