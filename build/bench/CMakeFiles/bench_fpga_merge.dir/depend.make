# Empty dependencies file for bench_fpga_merge.
# This may be replaced when dependencies are built.
