# Empty compiler generated dependencies file for bench_fig2a_growth.
# This may be replaced when dependencies are built.
