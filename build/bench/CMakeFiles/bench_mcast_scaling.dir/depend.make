# Empty dependencies file for bench_mcast_scaling.
# This may be replaced when dependencies are built.
