file(REMOVE_RECURSE
  "CMakeFiles/bench_mcast_scaling.dir/bench_mcast_scaling.cpp.o"
  "CMakeFiles/bench_mcast_scaling.dir/bench_mcast_scaling.cpp.o.d"
  "bench_mcast_scaling"
  "bench_mcast_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mcast_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
