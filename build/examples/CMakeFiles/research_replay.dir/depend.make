# Empty dependencies file for research_replay.
# This may be replaced when dependencies are built.
