file(REMOVE_RECURSE
  "CMakeFiles/research_replay.dir/research_replay.cpp.o"
  "CMakeFiles/research_replay.dir/research_replay.cpp.o.d"
  "research_replay"
  "research_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
