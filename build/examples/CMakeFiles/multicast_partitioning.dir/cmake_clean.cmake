file(REMOVE_RECURSE
  "CMakeFiles/multicast_partitioning.dir/multicast_partitioning.cpp.o"
  "CMakeFiles/multicast_partitioning.dir/multicast_partitioning.cpp.o.d"
  "multicast_partitioning"
  "multicast_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
