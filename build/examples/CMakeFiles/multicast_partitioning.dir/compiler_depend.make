# Empty compiler generated dependencies file for multicast_partitioning.
# This may be replaced when dependencies are built.
