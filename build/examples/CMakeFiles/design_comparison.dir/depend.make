# Empty dependencies file for design_comparison.
# This may be replaced when dependencies are built.
