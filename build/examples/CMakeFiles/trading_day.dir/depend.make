# Empty dependencies file for trading_day.
# This may be replaced when dependencies are built.
