file(REMOVE_RECURSE
  "CMakeFiles/trading_day.dir/trading_day.cpp.o"
  "CMakeFiles/trading_day.dir/trading_day.cpp.o.d"
  "trading_day"
  "trading_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trading_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
