# Empty dependencies file for tsn_tests.
# This may be replaced when dependencies are built.
