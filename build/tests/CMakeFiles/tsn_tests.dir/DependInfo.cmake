
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_book.cpp" "tests/CMakeFiles/tsn_tests.dir/test_book.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_book.cpp.o.d"
  "/root/repo/tests/test_capture.cpp" "tests/CMakeFiles/tsn_tests.dir/test_capture.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_capture.cpp.o.d"
  "/root/repo/tests/test_capture_replay.cpp" "tests/CMakeFiles/tsn_tests.dir/test_capture_replay.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_capture_replay.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/tsn_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/tsn_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_core_codesign.cpp" "tests/CMakeFiles/tsn_tests.dir/test_core_codesign.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_core_codesign.cpp.o.d"
  "/root/repo/tests/test_deploy.cpp" "tests/CMakeFiles/tsn_tests.dir/test_deploy.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_deploy.cpp.o.d"
  "/root/repo/tests/test_exchange.cpp" "tests/CMakeFiles/tsn_tests.dir/test_exchange.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_exchange.cpp.o.d"
  "/root/repo/tests/test_feed.cpp" "tests/CMakeFiles/tsn_tests.dir/test_feed.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_feed.cpp.o.d"
  "/root/repo/tests/test_feed_correlated.cpp" "tests/CMakeFiles/tsn_tests.dir/test_feed_correlated.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_feed_correlated.cpp.o.d"
  "/root/repo/tests/test_integration_e2e.cpp" "tests/CMakeFiles/tsn_tests.dir/test_integration_e2e.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_integration_e2e.cpp.o.d"
  "/root/repo/tests/test_integration_xpress_l1s.cpp" "tests/CMakeFiles/tsn_tests.dir/test_integration_xpress_l1s.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_integration_xpress_l1s.cpp.o.d"
  "/root/repo/tests/test_l1s.cpp" "tests/CMakeFiles/tsn_tests.dir/test_l1s.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_l1s.cpp.o.d"
  "/root/repo/tests/test_l2_switch.cpp" "tests/CMakeFiles/tsn_tests.dir/test_l2_switch.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_l2_switch.cpp.o.d"
  "/root/repo/tests/test_l2_trends.cpp" "tests/CMakeFiles/tsn_tests.dir/test_l2_trends.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_l2_trends.cpp.o.d"
  "/root/repo/tests/test_mcast.cpp" "tests/CMakeFiles/tsn_tests.dir/test_mcast.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_mcast.cpp.o.d"
  "/root/repo/tests/test_mcast_aging.cpp" "tests/CMakeFiles/tsn_tests.dir/test_mcast_aging.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_mcast_aging.cpp.o.d"
  "/root/repo/tests/test_net_addr.cpp" "tests/CMakeFiles/tsn_tests.dir/test_net_addr.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_net_addr.cpp.o.d"
  "/root/repo/tests/test_net_headers.cpp" "tests/CMakeFiles/tsn_tests.dir/test_net_headers.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_net_headers.cpp.o.d"
  "/root/repo/tests/test_net_link.cpp" "tests/CMakeFiles/tsn_tests.dir/test_net_link.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_net_link.cpp.o.d"
  "/root/repo/tests/test_net_nic.cpp" "tests/CMakeFiles/tsn_tests.dir/test_net_nic.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_net_nic.cpp.o.d"
  "/root/repo/tests/test_net_tcp.cpp" "tests/CMakeFiles/tsn_tests.dir/test_net_tcp.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_net_tcp.cpp.o.d"
  "/root/repo/tests/test_proto_boe.cpp" "tests/CMakeFiles/tsn_tests.dir/test_proto_boe.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_proto_boe.cpp.o.d"
  "/root/repo/tests/test_proto_fuzz.cpp" "tests/CMakeFiles/tsn_tests.dir/test_proto_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_proto_fuzz.cpp.o.d"
  "/root/repo/tests/test_proto_norm.cpp" "tests/CMakeFiles/tsn_tests.dir/test_proto_norm.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_proto_norm.cpp.o.d"
  "/root/repo/tests/test_proto_partition.cpp" "tests/CMakeFiles/tsn_tests.dir/test_proto_partition.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_proto_partition.cpp.o.d"
  "/root/repo/tests/test_proto_pitch.cpp" "tests/CMakeFiles/tsn_tests.dir/test_proto_pitch.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_proto_pitch.cpp.o.d"
  "/root/repo/tests/test_proto_xpress.cpp" "tests/CMakeFiles/tsn_tests.dir/test_proto_xpress.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_proto_xpress.cpp.o.d"
  "/root/repo/tests/test_session_liveness.cpp" "tests/CMakeFiles/tsn_tests.dir/test_session_liveness.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_session_liveness.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/tsn_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_sim_random.cpp" "tests/CMakeFiles/tsn_tests.dir/test_sim_random.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_sim_random.cpp.o.d"
  "/root/repo/tests/test_sim_stats.cpp" "tests/CMakeFiles/tsn_tests.dir/test_sim_stats.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_sim_stats.cpp.o.d"
  "/root/repo/tests/test_sim_time.cpp" "tests/CMakeFiles/tsn_tests.dir/test_sim_time.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_sim_time.cpp.o.d"
  "/root/repo/tests/test_snapshot_recovery.cpp" "tests/CMakeFiles/tsn_tests.dir/test_snapshot_recovery.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_snapshot_recovery.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/tsn_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_trading_compliance.cpp" "tests/CMakeFiles/tsn_tests.dir/test_trading_compliance.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_trading_compliance.cpp.o.d"
  "/root/repo/tests/test_trading_filter.cpp" "tests/CMakeFiles/tsn_tests.dir/test_trading_filter.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_trading_filter.cpp.o.d"
  "/root/repo/tests/test_trading_normalizer.cpp" "tests/CMakeFiles/tsn_tests.dir/test_trading_normalizer.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_trading_normalizer.cpp.o.d"
  "/root/repo/tests/test_trading_risk.cpp" "tests/CMakeFiles/tsn_tests.dir/test_trading_risk.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_trading_risk.cpp.o.d"
  "/root/repo/tests/test_trading_strategy.cpp" "tests/CMakeFiles/tsn_tests.dir/test_trading_strategy.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_trading_strategy.cpp.o.d"
  "/root/repo/tests/test_wan.cpp" "tests/CMakeFiles/tsn_tests.dir/test_wan.cpp.o" "gcc" "tests/CMakeFiles/tsn_tests.dir/test_wan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deploy/CMakeFiles/tsn_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tsn_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/tsn_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/tsn_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/trading/CMakeFiles/tsn_trading.dir/DependInfo.cmake"
  "/root/repo/build/src/wan/CMakeFiles/tsn_wan.dir/DependInfo.cmake"
  "/root/repo/build/src/feed/CMakeFiles/tsn_feed.dir/DependInfo.cmake"
  "/root/repo/build/src/exchange/CMakeFiles/tsn_exchange.dir/DependInfo.cmake"
  "/root/repo/build/src/book/CMakeFiles/tsn_book.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tsn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/l1s/CMakeFiles/tsn_l1s.dir/DependInfo.cmake"
  "/root/repo/build/src/l2/CMakeFiles/tsn_l2.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/tsn_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
