// Scripted fault injection for failure drills.
//
// The paper's central argument (§4) is that trading networks are engineered
// around *failure*, not the happy path: merged feeds drop under bursts,
// microwave links fade in rain, and mroute-table exhaustion black-holes
// subscribers. `FaultInjector` turns those failure modes into scripted,
// deterministic events on the simulation clock: link flaps (admin down/up),
// transient loss-rate ramps, switch egress-port stalls, and mroute
// evictions, all addressed to devices by name. Every transition is recorded
// in an in-order fault log that exports as deterministic JSON, so a drill's
// fault schedule is itself part of the reproducible output.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "l2/commodity_switch.hpp"
#include "net/addr.hpp"
#include "net/device.hpp"
#include "net/link.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kLossSet,    // loss override raised to `value`
  kLossClear,  // loss override removed (back to configured loss)
  kPortStall,  // switch egress port held for `value` nanoseconds
  kMrouteEvict,
  kSessionKill,   // registered session killer invoked (order-entry uplink death)
  kSessionStorm,  // registered storm callback dropped `value` sessions at once
  kProcessCrash,    // registered process crash invoked (whole-box death, kernel FINs)
  kLinkPartition,   // both directions of a cable admin-toggled (1=partition, 0=heal)
};

inline constexpr std::size_t kFaultKindCount = 10;

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind) noexcept;

// One fault transition as it fired, in simulation order.
struct FaultEvent {
  sim::Time at;
  FaultKind kind = FaultKind::kLinkDown;
  std::string target;  // device/link name (plus port or group where relevant)
  double value = 0.0;  // loss probability, stall nanoseconds, ... (kind-specific)
};

struct InjectorStats {
  std::uint64_t faults_scheduled = 0;
  std::uint64_t faults_fired = 0;
};

// Schedules faults against registered targets. Targets are registered once
// at topology-build time and addressed by name afterwards; scheduling
// against an unknown name throws, so drill scripts fail loudly instead of
// silently testing nothing. The injector borrows the targets — they must
// outlive it.
class FaultInjector {
 public:
  explicit FaultInjector(sim::Scheduler& engine) noexcept : engine_(engine) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- target registry ------------------------------------------------
  void register_link(net::Link& link);
  // Any device implementing FaultHook (Layer1Switch, custom devices).
  void register_hook(std::string name, net::FaultHook& hook);
  // Registers the switch's FaultHook plus its stall/mroute surfaces.
  void register_switch(l2::CommoditySwitch& sw);
  // Registers a session-level kill switch (e.g. Gateway::kill_upstream):
  // invoking it must drop the session's transport immediately. Session
  // faults model order-entry path death (§2) rather than link loss.
  void register_session(std::string name, std::function<void()> kill);
  // Registers a whole-process crash switch (e.g. Exchange::crash): invoking
  // it must stop the process cold — no further sends, no further event
  // handling — while the host kernel keeps FIN/RST-ing new connections, the
  // way a dead matching engine looks from the outside.
  void register_process(std::string name, std::function<void()> crash);

  [[nodiscard]] bool has_target(const std::string& name) const noexcept {
    return hooks_.count(name) != 0;
  }

  // --- fault scheduling -----------------------------------------------
  // All times are absolute simulation times; times already in the past
  // fire on the next engine step (engine clamps to now()).
  void down_at(const std::string& target, sim::Time at);
  void up_at(const std::string& target, sim::Time at);
  // Admin-down at `at`, admin-up `duration` later: one link flap.
  void flap(const std::string& target, sim::Time at, sim::Duration duration);

  // Raises the loss override in `steps` equal increments up to `peak`,
  // holds nothing (the last step *is* the peak), then walks back down and
  // clears the override — a triangular loss ramp over [start, start+rise+
  // fall]. Models weather moving across a microwave path (§2).
  void ramp_loss(const std::string& target, sim::Time start, sim::Duration rise,
                 sim::Duration fall, double peak, std::size_t steps = 4);
  // Sets/clears the loss override at a single instant.
  void set_loss_at(const std::string& target, sim::Time at, double probability);
  void clear_loss_at(const std::string& target, sim::Time at);

  // Holds a switch egress port dark for `duration` (PFC storm, PHY retrain).
  void stall_port_at(const std::string& switch_name, net::PortId port, sim::Time at,
                     sim::Duration duration);

  // Drops the group's mroute entry on the switch at `at` (§3 exhaustion).
  void evict_mroute_at(const std::string& switch_name, net::Ipv4Addr group, sim::Time at);

  // Kills a registered session at `at` (uplink death without link faults:
  // the peer sees silence, not a FIN).
  void kill_session_at(const std::string& session, sim::Time at);

  // Registers a correlated-reconnect storm target: `storm(count)` drops up
  // to `count` live sessions in one instant and returns how many it got
  // (e.g. exchange::LoadGen::storm — a rack switch reboot seen from the
  // exchange floor).
  void register_storm(std::string name, std::function<std::uint32_t(std::uint32_t)> storm);

  // Fires a registered storm at `at`; the log records the sessions dropped.
  void storm_at(const std::string& name, sim::Time at, std::uint32_t count);

  // Crashes a registered process at `at`.
  void crash_process_at(const std::string& process, sim::Time at);

  // Partitions a bidirectional path at `at` by admin-downing both named
  // link directions in one instant; `heal_at` brings both back. Logged as a
  // single kLinkPartition event with target "a|b" and value 1.0 (partition)
  // or 0.0 (heal), so a drill's partition windows read directly off the log.
  void partition_at(const std::string& link_a, const std::string& link_b, sim::Time at);
  void heal_at(const std::string& link_a, const std::string& link_b, sim::Time at);

  // --- observability ---------------------------------------------------
  [[nodiscard]] const std::vector<FaultEvent>& log() const noexcept { return log_; }
  [[nodiscard]] const InjectorStats& stats() const noexcept { return stats_; }

  // Deterministic JSON export of the fault log (events in firing order).
  [[nodiscard]] std::string log_json() const;

  // Gauges under `prefix`: scheduled/fired counts and per-kind totals.
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  [[nodiscard]] net::FaultHook& hook_for(const std::string& target) const;
  [[nodiscard]] l2::CommoditySwitch& switch_for(const std::string& name) const;
  void record(FaultKind kind, std::string target, double value);

  sim::Scheduler& engine_;
  // std::map: deterministic iteration should anyone ever walk the registry.
  std::map<std::string, net::FaultHook*> hooks_;
  std::map<std::string, l2::CommoditySwitch*> switches_;
  std::map<std::string, std::function<void()>> sessions_;
  std::map<std::string, std::function<std::uint32_t(std::uint32_t)>> storms_;
  std::map<std::string, std::function<void()>> processes_;
  std::vector<FaultEvent> log_;
  InjectorStats stats_;
  std::uint64_t kind_counts_[kFaultKindCount] = {};
};

}  // namespace tsn::fault
