#include "fault/injector.hpp"

#include <stdexcept>
#include <utility>

#include "core/check.hpp"
#include "telemetry/json.hpp"

namespace tsn::fault {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kLinkUp:
      return "link_up";
    case FaultKind::kLossSet:
      return "loss_set";
    case FaultKind::kLossClear:
      return "loss_clear";
    case FaultKind::kPortStall:
      return "port_stall";
    case FaultKind::kMrouteEvict:
      return "mroute_evict";
    case FaultKind::kSessionKill:
      return "session_kill";
    case FaultKind::kSessionStorm:
      return "session_storm";
    case FaultKind::kProcessCrash:
      return "process_crash";
    case FaultKind::kLinkPartition:
      return "link_partition";
  }
  return "?";
}

void FaultInjector::register_link(net::Link& link) {
  hooks_.insert_or_assign(link.name(), &link);
}

void FaultInjector::register_hook(std::string name, net::FaultHook& hook) {
  hooks_.insert_or_assign(std::move(name), &hook);
}

void FaultInjector::register_switch(l2::CommoditySwitch& sw) {
  std::string name{sw.name()};
  hooks_.insert_or_assign(name, static_cast<net::FaultHook*>(&sw));
  switches_.insert_or_assign(std::move(name), &sw);
}

void FaultInjector::register_session(std::string name, std::function<void()> kill) {
  sessions_.insert_or_assign(std::move(name), std::move(kill));
}

void FaultInjector::register_process(std::string name, std::function<void()> crash) {
  processes_.insert_or_assign(std::move(name), std::move(crash));
}

void FaultInjector::register_storm(std::string name,
                                   std::function<std::uint32_t(std::uint32_t)> storm) {
  storms_.insert_or_assign(std::move(name), std::move(storm));
}

net::FaultHook& FaultInjector::hook_for(const std::string& target) const {
  const auto it = hooks_.find(target);
  if (it == hooks_.end()) {
    throw std::invalid_argument{"fault target not registered: " + target};
  }
  return *it->second;
}

l2::CommoditySwitch& FaultInjector::switch_for(const std::string& name) const {
  const auto it = switches_.find(name);
  if (it == switches_.end()) {
    throw std::invalid_argument{"fault target is not a switch: " + name};
  }
  return *it->second;
}

void FaultInjector::record(FaultKind kind, std::string target, double value) {
  ++stats_.faults_fired;
  ++kind_counts_[static_cast<std::size_t>(kind)];
  log_.push_back(FaultEvent{engine_.now(), kind, std::move(target), value});
}

void FaultInjector::down_at(const std::string& target, sim::Time at) {
  net::FaultHook& hook = hook_for(target);
  ++stats_.faults_scheduled;
  engine_.schedule_at(at, [this, &hook, target] {
    hook.set_admin_up(false);
    record(FaultKind::kLinkDown, target, 0.0);
  });
}

void FaultInjector::up_at(const std::string& target, sim::Time at) {
  net::FaultHook& hook = hook_for(target);
  ++stats_.faults_scheduled;
  engine_.schedule_at(at, [this, &hook, target] {
    hook.set_admin_up(true);
    record(FaultKind::kLinkUp, target, 0.0);
  });
}

void FaultInjector::flap(const std::string& target, sim::Time at, sim::Duration duration) {
  down_at(target, at);
  up_at(target, at + duration);
}

void FaultInjector::set_loss_at(const std::string& target, sim::Time at, double probability) {
  net::FaultHook& hook = hook_for(target);
  ++stats_.faults_scheduled;
  engine_.schedule_at(at, [this, &hook, target, probability] {
    hook.set_loss_override(probability);
    record(FaultKind::kLossSet, target, probability);
  });
}

void FaultInjector::clear_loss_at(const std::string& target, sim::Time at) {
  net::FaultHook& hook = hook_for(target);
  ++stats_.faults_scheduled;
  engine_.schedule_at(at, [this, &hook, target] {
    hook.set_loss_override(-1.0);
    record(FaultKind::kLossClear, target, 0.0);
  });
}

void FaultInjector::ramp_loss(const std::string& target, sim::Time start, sim::Duration rise,
                              sim::Duration fall, double peak, std::size_t steps) {
  TSN_ASSERT(steps > 0, "a loss ramp needs at least one step");
  // Rising edge: step k (1-based) holds peak*k/steps, evenly spaced so the
  // final step lands exactly at `start + rise` with the full peak.
  for (std::size_t k = 1; k <= steps; ++k) {
    const sim::Time at = start + sim::Duration{rise.picos() * static_cast<std::int64_t>(k - 1) /
                                               static_cast<std::int64_t>(steps)};
    set_loss_at(target, at, peak * static_cast<double>(k) / static_cast<double>(steps));
  }
  // Falling edge mirrors the rise, then the override clears entirely.
  for (std::size_t k = 1; k < steps; ++k) {
    const sim::Time at =
        start + rise + sim::Duration{fall.picos() * static_cast<std::int64_t>(k) /
                                     static_cast<std::int64_t>(steps)};
    set_loss_at(target, at,
                peak * static_cast<double>(steps - k) / static_cast<double>(steps));
  }
  clear_loss_at(target, start + rise + fall);
}

void FaultInjector::stall_port_at(const std::string& switch_name, net::PortId port,
                                  sim::Time at, sim::Duration duration) {
  l2::CommoditySwitch& sw = switch_for(switch_name);
  ++stats_.faults_scheduled;
  const std::string target = switch_name + ":port" + std::to_string(port);
  engine_.schedule_at(at, [this, &sw, port, duration, target] {
    sw.stall_port(port, duration);
    record(FaultKind::kPortStall, target, duration.nanos());
  });
}

void FaultInjector::evict_mroute_at(const std::string& switch_name, net::Ipv4Addr group,
                                    sim::Time at) {
  l2::CommoditySwitch& sw = switch_for(switch_name);
  ++stats_.faults_scheduled;
  const std::string target = switch_name + ":" + group.to_string();
  engine_.schedule_at(at, [this, &sw, group, target] {
    sw.mroutes().evict(group);
    record(FaultKind::kMrouteEvict, target, 0.0);
  });
}

void FaultInjector::kill_session_at(const std::string& session, sim::Time at) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw std::invalid_argument{"fault target is not a session: " + session};
  }
  ++stats_.faults_scheduled;
  // Copy the killer: the map entry could be re-registered before firing.
  engine_.schedule_at(at, [this, kill = it->second, session] {
    kill();
    record(FaultKind::kSessionKill, session, 0.0);
  });
}

void FaultInjector::storm_at(const std::string& name, sim::Time at, std::uint32_t count) {
  const auto it = storms_.find(name);
  if (it == storms_.end()) {
    throw std::invalid_argument{"fault target is not a storm: " + name};
  }
  ++stats_.faults_scheduled;
  // Copy the callback: the map entry could be re-registered before firing.
  engine_.schedule_at(at, [this, storm = it->second, name, count] {
    const std::uint32_t dropped = storm(count);
    record(FaultKind::kSessionStorm, name, static_cast<double>(dropped));
  });
}

void FaultInjector::crash_process_at(const std::string& process, sim::Time at) {
  const auto it = processes_.find(process);
  if (it == processes_.end()) {
    throw std::invalid_argument{"fault target is not a process: " + process};
  }
  ++stats_.faults_scheduled;
  // Copy the crasher: the map entry could be re-registered before firing.
  engine_.schedule_at(at, [this, crash = it->second, process] {
    crash();
    record(FaultKind::kProcessCrash, process, 0.0);
  });
}

void FaultInjector::partition_at(const std::string& link_a, const std::string& link_b,
                                 sim::Time at) {
  net::FaultHook& a = hook_for(link_a);
  net::FaultHook& b = hook_for(link_b);
  ++stats_.faults_scheduled;
  const std::string target = link_a + "|" + link_b;
  engine_.schedule_at(at, [this, &a, &b, target] {
    a.set_admin_up(false);
    b.set_admin_up(false);
    record(FaultKind::kLinkPartition, target, 1.0);
  });
}

void FaultInjector::heal_at(const std::string& link_a, const std::string& link_b,
                            sim::Time at) {
  net::FaultHook& a = hook_for(link_a);
  net::FaultHook& b = hook_for(link_b);
  ++stats_.faults_scheduled;
  const std::string target = link_a + "|" + link_b;
  engine_.schedule_at(at, [this, &a, &b, target] {
    a.set_admin_up(true);
    b.set_admin_up(true);
    record(FaultKind::kLinkPartition, target, 0.0);
  });
}

std::string FaultInjector::log_json() const {
  telemetry::JsonWriter writer;
  writer.begin_array();
  for (const FaultEvent& event : log_) {
    writer.begin_object();
    writer.field("at_ps", event.at.picos());
    writer.field("kind", fault_kind_name(event.kind));
    writer.field("target", event.target);
    writer.field("value", event.value);
    writer.end_object();
  }
  writer.end_array();
  return writer.take();
}

void FaultInjector::register_metrics(telemetry::Registry& registry,
                                     const std::string& prefix) const {
  registry.gauge(prefix + ".scheduled",
                 [this] { return static_cast<double>(stats_.faults_scheduled); });
  registry.gauge(prefix + ".fired",
                 [this] { return static_cast<double>(stats_.faults_fired); });
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    registry.gauge(prefix + "." + std::string{fault_kind_name(kind)},
                   [this, k] { return static_cast<double>(kind_counts_[k]); });
  }
}

}  // namespace tsn::fault
