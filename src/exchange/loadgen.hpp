// Deterministic sim-driven session-storm load generator.
//
// Drives N in-process (DirectClient) order-entry sessions against one
// Exchange with a seeded persona mix:
//
//   steady traders  — keep `target_open_orders` resting sells, rotating the
//                     oldest (cancel + fresh submit) on a fixed cadence
//   flappers        — drop their connection on a cadence and reconnect a
//                     few ticks later: resume → replay → resubmit
//   bursty algos    — quiet, then a burst of rotations in one tick
//
// Everything runs off one master tick with per-session phase buckets, so a
// tick touches only the sessions due this tick — O(due), not O(N). All
// randomness comes from one seeded sim::Rng consumed at construction
// (persona assignment, phases, price offsets); the tick path draws nothing,
// so two runs with the same seed are byte-identical.
//
// storm(count) kills the first `count` ready sessions in one sim instant —
// the reconnect-storm drill. Victims re-login after `down_ticks`, replay
// the journal tail they missed, re-rest their cancel-on-disconnect'ed
// orders with fresh ids and resubmit unacked ones with the original ids
// (the exchange's dedupe makes that idempotent). Recovery completes when
// every victim is ready again with nothing outstanding.
//
// Protocol note: the generator issues only non-marketable SELL orders, so
// its own population never self-crosses; fills come from counter-flow a
// drill injects. It assumes no fills arrive during a session's replay
// window (true under that setup), which keeps per-session state small
// enough — no reorder buffer — to hold 10^5..10^6 sessions.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "exchange/exchange.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::exchange {

enum class Persona : std::uint8_t { kSteady, kFlapper, kBursty };

struct LoadGenConfig {
  std::uint32_t sessions = 1'000;
  // Persona mix weights (normalized internally).
  double steady_weight = 0.7;
  double flapper_weight = 0.2;
  double bursty_weight = 0.1;
  std::uint64_t seed = 1;
  sim::Duration tick = sim::micros(std::int64_t{100});
  std::uint32_t logins_per_tick = 2'000;     // admission ramp rate
  std::uint32_t steady_interval_ticks = 64;  // steady rotation cadence
  std::uint32_t flap_interval_ticks = 512;   // flapper drop cadence
  std::uint32_t down_ticks = 8;              // reconnect delay after any drop
  std::uint32_t burst_interval_ticks = 256;
  std::uint32_t burst_size = 6;           // rotations per burst
  std::uint32_t target_open_orders = 4;   // resting sells per session (<= 8)
  proto::Quantity quantity = 100;
  std::uint32_t session_id_base = 1'000'000;
  // Re-rest cancel-on-disconnect'ed orders (fresh ids) after a reconnect.
  bool resubmit_cod = true;
  // Answer exchange heartbeats (refreshes the exchange's liveness timer; no
  // ping-pong — the exchange never replies to heartbeats).
  bool answer_heartbeats = true;
};

struct LoadGenStats {
  std::uint64_t logins_sent = 0;
  std::uint64_t logins_accepted = 0;
  std::uint64_t login_rejects = 0;
  std::uint64_t orders_sent = 0;
  std::uint64_t orders_acked = 0;
  std::uint64_t order_rejects = 0;
  std::uint64_t duplicate_rejects = 0;  // idempotent-resubmission rejections
  std::uint64_t cancels_sent = 0;
  std::uint64_t cancels_acked = 0;
  std::uint64_t cancel_rejects = 0;
  std::uint64_t cod_cancels_seen = 0;  // unsolicited (cancel-on-disconnect)
  std::uint64_t resubmitted_orders = 0;
  std::uint64_t cod_resubmitted = 0;
  std::uint64_t fills = 0;
  std::uint64_t quantity_filled = 0;
  std::uint64_t replays_requested = 0;
  std::uint64_t sequence_resets = 0;
  std::uint64_t heartbeats_seen = 0;
  std::uint64_t heartbeats_answered = 0;
  std::uint64_t drops = 0;               // client-initiated (flap or storm)
  std::uint64_t closed_by_exchange = 0;  // timeout kill / takeover
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

class LoadGen final : public DirectClient {
 public:
  LoadGen(sim::Scheduler& engine, Exchange& exchange, LoadGenConfig config);

  // Begins the admission ramp and the master tick. Idempotent.
  void start();
  // Stops ticking after the current tick (sessions stay logged in).
  void stop() noexcept { running_ = false; }

  // Drops the first `count` ready sessions at the current instant (call
  // from outside exchange callbacks, e.g. a scheduled fault event).
  // Returns the number actually dropped.
  std::uint32_t storm(std::uint32_t count);

  [[nodiscard]] bool all_admitted() const noexcept {
    return admitted_count_ == config_.sessions;
  }
  [[nodiscard]] sim::Time admitted_at() const noexcept { return admitted_at_; }
  [[nodiscard]] bool storm_recovered() const noexcept {
    return storm_started_ && storm_outstanding_ == 0;
  }
  [[nodiscard]] sim::Duration storm_recovery_duration() const noexcept {
    return storm_recovered_at_ - storm_started_at_;
  }
  [[nodiscard]] std::uint32_t ready_sessions() const noexcept { return ready_count_; }

  [[nodiscard]] const LoadGenStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::int64_t position(std::uint32_t session) const noexcept {
    return sessions_[session].position;
  }
  [[nodiscard]] std::uint32_t open_orders(std::uint32_t session) const noexcept {
    return sessions_[session].open_count;
  }
  [[nodiscard]] std::int64_t total_position() const noexcept;
  // FNV-1a digest over every session's externally visible end state plus
  // the stats block — the two-run determinism probe.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

  // DirectClient
  void on_direct_bytes(std::uint32_t conn, std::span<const std::byte> bytes) override;
  void on_direct_closed(std::uint32_t conn) override;

 private:
  static constexpr std::uint32_t kNoConn = 0xffffffffu;
  static constexpr std::uint32_t kNoSession = 0xffffffffu;
  static constexpr std::size_t kMaxOpen = 8;

  enum State : std::uint8_t { kOffline, kLoggingIn, kReplaying, kReady, kDown };

  struct OpenOrder {
    proto::OrderId client_id = 0;
    proto::Price price = 0;
    proto::Quantity quantity = 0;
    bool cancel_requested = false;
  };

  struct Sess {
    std::uint32_t conn = kNoConn;
    Persona persona = Persona::kSteady;
    State state = kOffline;
    bool ever_ready = false;
    bool storm_victim = false;
    std::uint32_t next_client_seq = 1;
    std::uint32_t last_seen_seq = 0;
    std::uint32_t price_salt = 0;  // seeded per-session price offset
    std::int64_t position = 0;
    proto::Symbol symbol;
    proto::Price ref_price = 0;
    std::array<OpenOrder, kMaxOpen> open{};
    std::uint8_t open_count = 0;
    std::array<OpenOrder, kMaxOpen> unacked{};
    std::uint8_t unacked_count = 0;
    std::array<OpenOrder, kMaxOpen> cod_resub{};
    std::uint8_t cod_count = 0;
  };

  void tick();
  void begin_login(std::uint32_t session);
  void drop(std::uint32_t session);
  void rotate(std::uint32_t session);
  void submit(std::uint32_t session);
  void cancel_oldest(std::uint32_t session);
  void resubmit_after_reset(std::uint32_t session);
  void maybe_storm_recovered(std::uint32_t session);
  void handle_message(std::uint32_t session, const proto::boe::Decoded& decoded);
  [[nodiscard]] proto::OrderId fresh_client_id(std::uint32_t session) noexcept;
  [[nodiscard]] proto::Price next_price(std::uint32_t session) noexcept;
  [[nodiscard]] std::uint64_t token_of(std::uint32_t session) const noexcept;
  void send(std::uint32_t session, const proto::boe::Message& message);

  sim::Scheduler& engine_;
  Exchange& exchange_;
  LoadGenConfig config_;

  std::vector<Sess> sessions_;
  std::vector<std::uint32_t> conn_to_session_;  // exchange conn id -> session
  // Phase buckets: bucket[t % interval] lists the sessions due at tick t.
  std::vector<std::vector<std::uint32_t>> steady_buckets_;
  std::vector<std::vector<std::uint32_t>> flap_buckets_;
  std::vector<std::vector<std::uint32_t>> burst_buckets_;
  // FIFO of (session, wake tick): drops push, the tick head pops.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> relogin_queue_;
  std::size_t relogin_head_ = 0;

  bool running_ = false;
  bool started_ = false;
  std::uint32_t tick_index_ = 0;
  std::uint32_t login_cursor_ = 0;
  std::uint32_t admitted_count_ = 0;
  std::uint32_t ready_count_ = 0;
  sim::Time admitted_at_;

  bool storm_started_ = false;
  std::uint32_t storm_outstanding_ = 0;
  sim::Time storm_started_at_;
  sim::Time storm_recovered_at_;

  LoadGenStats stats_;
};

}  // namespace tsn::exchange
