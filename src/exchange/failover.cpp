#include "exchange/failover.hpp"

#include <utility>

namespace tsn::exchange {

const char* to_string(FailoverState state) noexcept {
  switch (state) {
    case FailoverState::kFollowing: return "following";
    case FailoverState::kSuspect: return "suspect";
    case FailoverState::kPromoting: return "promoting";
    case FailoverState::kActive: return "active";
  }
  return "?";
}

FailoverController::FailoverController(sim::Scheduler& engine, Exchange& backup,
                                       ReplicaApplier& applier, FailoverConfig config)
    : engine_(engine), backup_(backup), applier_(applier), config_(config) {}

void FailoverController::start() {
  last_heartbeat_seen_ = applier_.last_heartbeat_at();
  engine_.schedule_in(config_.poll_interval, [this] { tick(); });
}

void FailoverController::tick() {
  const sim::Time now = engine_.now();
  const sim::Time beat = applier_.last_heartbeat_at();
  const sim::Duration silence = now - beat;
  switch (state_) {
    case FailoverState::kFollowing:
      last_heartbeat_seen_ = beat;
      if (silence > config_.suspect_after) {
        state_ = FailoverState::kSuspect;
        suspected_at_ = now;
        ++stats_.suspects;
      }
      break;
    case FailoverState::kSuspect:
      if (beat > last_heartbeat_seen_) {
        // The primary spoke again: stand down. Transient stalls (a lost
        // heartbeat, a congested bridge) must never promote — that way
        // lies two live books.
        state_ = FailoverState::kFollowing;
        last_heartbeat_seen_ = beat;
        ++stats_.false_suspects;
      } else if (now - suspected_at_ > config_.promote_after) {
        state_ = FailoverState::kPromoting;
        promote_started_ = now;
        // Epoch bump first: from this instant our status datagrams fence
        // any stale primary that resurfaces, and its late records are
        // dropped as stale-epoch rather than applied to a live book.
        applier_.begin_promotion();
      }
      break;
    case FailoverState::kPromoting:
      if (now - promote_started_ > config_.promote_replay) {
        // Journal tail drained (in-flight records landed during the replay
        // window). Open for business.
        backup_.set_feed_muted(false);
        backup_.set_accepting(true);
        state_ = FailoverState::kActive;
        promoted_at_ = now;
        recovery_ = now - last_heartbeat_seen_;
        ++stats_.promotions;
      }
      break;
    case FailoverState::kActive:
      return;  // terminal: stop the poll chain
  }
  engine_.schedule_in(config_.poll_interval, [this] { tick(); });
}

void FailoverController::register_metrics(telemetry::Registry& registry,
                                          const std::string& prefix) const {
  registry.gauge(prefix + ".state",
                 [this] { return static_cast<double>(static_cast<std::uint8_t>(state_)); });
  registry.gauge(prefix + ".suspects", [this] { return static_cast<double>(stats_.suspects); });
  registry.gauge(prefix + ".false_suspects",
                 [this] { return static_cast<double>(stats_.false_suspects); });
  registry.gauge(prefix + ".promotions", [this] { return static_cast<double>(stats_.promotions); });
  registry.gauge(prefix + ".recovery_ms", [this] { return recovery_.millis(); });
}

}  // namespace tsn::exchange
