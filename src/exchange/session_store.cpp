#include "exchange/session_store.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace tsn::exchange {

namespace {

[[nodiscard]] std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

constexpr std::uint8_t kEmpty = 0;
constexpr std::uint8_t kFull = 1;
constexpr std::uint8_t kTombstone = 2;

}  // namespace

SessionStore::SessionStore(SessionStoreConfig config) {
  const std::size_t shard_count = next_pow2(std::max<std::uint32_t>(1, config.shards));
  shards_.resize(shard_count);
  shard_mask_ = static_cast<std::uint32_t>(shard_count - 1);
  for (Shard& shard : shards_) dir_grow(shard, 16);
  exch_grow(16);
  client_grow(16);
}

void SessionStore::reserve(std::size_t sessions, std::size_t orders, std::size_t journal_bytes) {
  if (sessions > sess_external_.size()) grow_sessions(next_pow2(sessions));
  if (orders > ord_client_.size()) grow_orders(next_pow2(orders));
  // One journal record per staged message; size the record slab for the
  // arena byte budget assuming small (header-ish) messages.
  const std::size_t records = std::max<std::size_t>(sessions, journal_bytes / 16);
  if (records > jr_seq_.size()) grow_records(next_pow2(records));
  for (Shard& shard : shards_) {
    dir_grow(shard, next_pow2(std::max<std::size_t>(16, (2 * sessions) / shards_.size())));
  }
  exch_grow(next_pow2(std::max<std::size_t>(16, 2 * orders)));
  // The client index keeps one entry per client id *ever used*; give it the
  // same budget as the journal-record slab so warm churn stays rehash-free.
  client_grow(next_pow2(std::max<std::size_t>(16, 2 * std::max(orders, records / 4))));
  arena_.reserve(journal_bytes);
  staging_bytes_.reserve(std::max<std::size_t>(4096, journal_bytes / 8));
  staged_.reserve(std::max<std::size_t>(256, sessions));
}

// --- slabs ---------------------------------------------------------------

void SessionStore::grow_sessions(std::size_t new_capacity) {
  const std::size_t old = sess_external_.size();
  TSN_ASSERT(new_capacity > old, "index grow overflow");
  sess_external_.resize(new_capacity);
  sess_token_.resize(new_capacity);
  sess_gen_.resize(new_capacity, 0);
  sess_tx_seq_.resize(new_capacity);
  sess_conn_.resize(new_capacity);
  sess_flags_.resize(new_capacity);
  sess_order_head_.resize(new_capacity);
  sess_order_count_.resize(new_capacity);
  sess_jr_head_.resize(new_capacity);
  sess_jr_tail_.resize(new_capacity);
  sess_jr_count_.resize(new_capacity);
  sess_shard_.resize(new_capacity);
  sess_prev_.resize(new_capacity);
  sess_next_.resize(new_capacity);
  // New rows join the freelist in descending order so allocation hands out
  // ascending slots — keeps slot order deterministic and cache-friendly.
  for (std::size_t i = new_capacity; i > old; --i) {
    const auto slot = static_cast<std::uint32_t>(i - 1);
    sess_next_[slot] = free_sess_;
    free_sess_ = slot;
  }
}

void SessionStore::grow_orders(std::size_t new_capacity) {
  const std::size_t old = ord_client_.size();
  TSN_ASSERT(new_capacity > old, "index grow overflow");
  ord_client_.resize(new_capacity);
  ord_exch_.resize(new_capacity);
  ord_session_.resize(new_capacity);
  ord_symbol_.resize(new_capacity);
  ord_prev_.resize(new_capacity);
  ord_next_.resize(new_capacity);
  for (std::size_t i = new_capacity; i > old; --i) {
    const auto slot = static_cast<std::uint32_t>(i - 1);
    ord_next_[slot] = free_ord_;
    free_ord_ = slot;
  }
}

void SessionStore::grow_records(std::size_t new_capacity) {
  const std::size_t old = jr_seq_.size();
  TSN_ASSERT(new_capacity > old, "index grow overflow");
  jr_seq_.resize(new_capacity);
  jr_off_.resize(new_capacity);
  jr_len_.resize(new_capacity);
  jr_next_.resize(new_capacity);
  for (std::size_t i = new_capacity; i > old; --i) {
    const auto slot = static_cast<std::uint32_t>(i - 1);
    jr_next_[slot] = free_jr_;
    free_jr_ = slot;
  }
}

std::uint32_t SessionStore::alloc_session() {
  if (free_sess_ == kNullSlot) {
    grow_sessions(std::max<std::size_t>(16, sess_external_.size() * 2));
  }
  const std::uint32_t slot = free_sess_;
  free_sess_ = sess_next_[slot];
  return slot;
}

std::uint32_t SessionStore::alloc_order() {
  if (free_ord_ == kNullSlot) {
    grow_orders(std::max<std::size_t>(16, ord_client_.size() * 2));
  }
  const std::uint32_t slot = free_ord_;
  free_ord_ = ord_next_[slot];
  return slot;
}

std::uint32_t SessionStore::alloc_record() {
  if (free_jr_ == kNullSlot) {
    grow_records(std::max<std::size_t>(64, jr_seq_.size() * 2));
  }
  const std::uint32_t slot = free_jr_;
  free_jr_ = jr_next_[slot];
  return slot;
}

// --- per-shard session-id directory --------------------------------------

// tsn-lint: hotpath
std::uint32_t SessionStore::dir_find(const Shard& shard, std::uint32_t session_id) const noexcept {
  const std::size_t mask = shard.keys.size() - 1;
  std::size_t pos = mix32(session_id) & mask;
  while (true) {
    const std::uint8_t state = shard.states[pos];
    if (state == kEmpty) return kNullSlot;
    if (state == kFull && shard.keys[pos] == session_id) return shard.slots[pos];
    pos = (pos + 1) & mask;
  }
}

void SessionStore::dir_insert(Shard& shard, std::uint32_t session_id, std::uint32_t slot) {
  if ((shard.occupied + 1) * 10 >= shard.keys.size() * 7) {
    // Load trip dominated by tombstones (churn, not growth): rehash in
    // place to reclaim them instead of doubling — a long-lived table under
    // login/destroy churn would otherwise grow without bound.
    const bool mostly_dead = shard.count * 2 < shard.keys.size();
    dir_grow(shard, mostly_dead ? shard.keys.size() : shard.keys.size() * 2);
  }
  const std::size_t mask = shard.keys.size() - 1;
  std::size_t pos = mix32(session_id) & mask;
  while (shard.states[pos] == kFull) pos = (pos + 1) & mask;
  if (shard.states[pos] == kEmpty) ++shard.occupied;
  shard.states[pos] = kFull;
  shard.keys[pos] = session_id;
  shard.slots[pos] = slot;
  ++shard.count;
}

void SessionStore::dir_erase(Shard& shard, std::uint32_t session_id) noexcept {
  const std::size_t mask = shard.keys.size() - 1;
  std::size_t pos = mix32(session_id) & mask;
  while (true) {
    const std::uint8_t state = shard.states[pos];
    TSN_DCHECK(state != kEmpty, "probe fell off a full table");
    if (state == kFull && shard.keys[pos] == session_id) {
      shard.states[pos] = kTombstone;
      --shard.count;
      return;
    }
    pos = (pos + 1) & mask;
  }
}

void SessionStore::dir_grow(Shard& shard, std::size_t min_capacity) {
  const std::size_t capacity = next_pow2(std::max<std::size_t>(min_capacity, 2 * shard.count));
  if (capacity <= shard.keys.size() && shard.occupied == shard.count) return;
  Column<std::uint32_t> old_keys = std::move(shard.keys);
  Column<std::uint32_t> old_slots = std::move(shard.slots);
  Column<std::uint8_t> old_states = std::move(shard.states);
  shard.keys.assign(capacity, 0);
  shard.slots.assign(capacity, 0);
  shard.states.assign(capacity, kEmpty);
  shard.count = 0;
  shard.occupied = 0;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_states[i] == kFull) dir_insert(shard, old_keys[i], old_slots[i]);
  }
}

// --- exchange-order-id index ---------------------------------------------

// tsn-lint: hotpath
std::uint32_t SessionStore::exch_find(proto::OrderId id) const noexcept {
  const std::size_t mask = exch_index_.keys.size() - 1;
  std::size_t pos = mix64(id) & mask;
  while (true) {
    const std::uint8_t state = exch_index_.states[pos];
    if (state == kEmpty) return kNullSlot;
    if (state == kFull && exch_index_.keys[pos] == id) return exch_index_.slots[pos];
    pos = (pos + 1) & mask;
  }
}

void SessionStore::exch_insert(proto::OrderId id, std::uint32_t slot) {
  if ((exch_index_.occupied + 1) * 10 >= exch_index_.keys.size() * 7) {
    // Same compaction rule as dir_insert: order churn (register + close)
    // leaves tombstones, and a bounded open-order book must not drag an
    // ever-doubling index behind it.
    const bool mostly_dead = exch_index_.count * 2 < exch_index_.keys.size();
    exch_grow(mostly_dead ? exch_index_.keys.size() : exch_index_.keys.size() * 2);
  }
  const std::size_t mask = exch_index_.keys.size() - 1;
  std::size_t pos = mix64(id) & mask;
  while (exch_index_.states[pos] == kFull) pos = (pos + 1) & mask;
  if (exch_index_.states[pos] == kEmpty) ++exch_index_.occupied;
  exch_index_.states[pos] = kFull;
  exch_index_.keys[pos] = id;
  exch_index_.slots[pos] = slot;
  ++exch_index_.count;
}

void SessionStore::exch_erase(proto::OrderId id) noexcept {
  const std::size_t mask = exch_index_.keys.size() - 1;
  std::size_t pos = mix64(id) & mask;
  while (true) {
    const std::uint8_t state = exch_index_.states[pos];
    TSN_DCHECK(state != kEmpty, "probe fell off a full table");
    if (state == kFull && exch_index_.keys[pos] == id) {
      exch_index_.states[pos] = kTombstone;
      --exch_index_.count;
      return;
    }
    pos = (pos + 1) & mask;
  }
}

void SessionStore::exch_grow(std::size_t min_capacity) {
  const std::size_t capacity =
      next_pow2(std::max<std::size_t>(min_capacity, 2 * exch_index_.count));
  if (capacity <= exch_index_.keys.size() && exch_index_.occupied == exch_index_.count) return;
  Column<proto::OrderId> old_keys = std::move(exch_index_.keys);
  Column<std::uint32_t> old_slots = std::move(exch_index_.slots);
  Column<std::uint8_t> old_states = std::move(exch_index_.states);
  exch_index_.keys.assign(capacity, 0);
  exch_index_.slots.assign(capacity, 0);
  exch_index_.states.assign(capacity, kEmpty);
  exch_index_.count = 0;
  exch_index_.occupied = 0;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_states[i] == kFull) exch_insert(old_keys[i], old_slots[i]);
  }
}

// --- (session, gen, client id) index -------------------------------------

// tsn-lint: hotpath
std::uint32_t SessionStore::client_find(std::uint32_t slot, proto::OrderId id) const noexcept {
  const std::uint32_t gen = sess_gen_[slot];
  const std::size_t mask = client_index_.sess.size() - 1;
  std::size_t pos = client_key_hash(slot, gen, id) & mask;
  while (true) {
    if (client_index_.states[pos] == kEmpty) return kNullSlot;
    if (client_index_.sess[pos] == slot && client_index_.gen[pos] == gen &&
        client_index_.client[pos] == id) {
      return static_cast<std::uint32_t>(pos);
    }
    pos = (pos + 1) & mask;
  }
}

void SessionStore::client_insert(std::uint32_t slot, proto::OrderId id, std::uint32_t value) {
  if ((client_index_.count + 1) * 10 >= client_index_.sess.size() * 7) {
    client_grow(client_index_.sess.size() * 2);
  }
  const std::uint32_t gen = sess_gen_[slot];
  const std::size_t mask = client_index_.sess.size() - 1;
  std::size_t pos = client_key_hash(slot, gen, id) & mask;
  while (client_index_.states[pos] == kFull) pos = (pos + 1) & mask;
  client_index_.states[pos] = kFull;
  client_index_.sess[pos] = slot;
  client_index_.gen[pos] = gen;
  client_index_.client[pos] = id;
  client_index_.value[pos] = value;
  ++client_index_.count;
}

// tsn-lint: hotpath
void SessionStore::client_set(std::uint32_t slot, proto::OrderId id, std::uint32_t value) noexcept {
  const std::uint32_t pos = client_find(slot, id);
  TSN_DCHECK(pos != kNullSlot, "directory entry vanished");
  client_index_.value[pos] = value;
}

void SessionStore::client_grow(std::size_t min_capacity) {
  const std::size_t capacity =
      next_pow2(std::max<std::size_t>(min_capacity, 2 * client_index_.count));
  if (capacity <= client_index_.sess.size()) return;
  Column<std::uint32_t> old_sess = std::move(client_index_.sess);
  Column<std::uint32_t> old_gen = std::move(client_index_.gen);
  Column<proto::OrderId> old_client = std::move(client_index_.client);
  Column<std::uint32_t> old_value = std::move(client_index_.value);
  Column<std::uint8_t> old_states = std::move(client_index_.states);
  client_index_.sess.assign(capacity, 0);
  client_index_.gen.assign(capacity, 0);
  client_index_.client.assign(capacity, 0);
  client_index_.value.assign(capacity, 0);
  client_index_.states.assign(capacity, kEmpty);
  client_index_.count = 0;
  for (std::size_t i = 0; i < old_sess.size(); ++i) {
    if (old_states[i] != kFull) continue;
    // Stale-generation marks belong to destroyed sessions; drop them here.
    const std::uint32_t sess = old_sess[i];
    if (sess < sess_gen_.size() && sess_gen_[sess] != old_gen[i]) continue;
    client_insert_raw(sess, old_gen[i], old_client[i], old_value[i]);
  }
}

void SessionStore::client_insert_raw(std::uint32_t slot, std::uint32_t gen, proto::OrderId id,
                                     std::uint32_t value) {
  const std::size_t mask = client_index_.sess.size() - 1;
  std::size_t pos = client_key_hash(slot, gen, id) & mask;
  while (client_index_.states[pos] == kFull) pos = (pos + 1) & mask;
  client_index_.states[pos] = kFull;
  client_index_.sess[pos] = slot;
  client_index_.gen[pos] = gen;
  client_index_.client[pos] = id;
  client_index_.value[pos] = value;
  ++client_index_.count;
}

// --- directory API --------------------------------------------------------

// tsn-lint: hotpath
std::uint32_t SessionStore::lookup(std::uint32_t session_id) const noexcept {
  return dir_find(shards_[shard_of(session_id)], session_id);
}

SessionStore::LoginResult SessionStore::login(std::uint32_t session_id, std::uint64_t token) {
  Shard& shard = shards_[shard_of(session_id)];
  const std::uint32_t existing = dir_find(shard, session_id);
  if (existing != kNullSlot) {
    if (sess_token_[existing] != token) return {kNullSlot, LoginVerdict::kInUse};
    return {existing, LoginVerdict::kMatch};
  }
  const std::uint32_t slot = alloc_session();
  sess_external_[slot] = session_id;
  sess_token_[slot] = token;
  sess_tx_seq_[slot] = 1;
  sess_conn_[slot] = kNullSlot;
  sess_flags_[slot] = kFlagLive;
  sess_order_head_[slot] = kNullSlot;
  sess_order_count_[slot] = 0;
  sess_jr_head_[slot] = kNullSlot;
  sess_jr_tail_[slot] = kNullSlot;
  sess_jr_count_[slot] = 0;
  sess_shard_[slot] = shard_of(session_id);
  sess_prev_[slot] = kNullSlot;
  sess_next_[slot] = kNullSlot;
  dir_insert(shard, session_id, slot);
  ++live_sessions_;
  ++stats_.sessions_created;
  return {slot, LoginVerdict::kNew};
}

// tsn-lint: hotpath
void SessionStore::bind(std::uint32_t slot, std::uint32_t conn) noexcept {
  if (sess_conn_[slot] != kNullSlot) unbind(slot);
  sess_conn_[slot] = conn;
  Shard& shard = shards_[sess_shard_[slot]];
  sess_prev_[slot] = shard.tail;
  sess_next_[slot] = kNullSlot;
  if (shard.tail != kNullSlot) {
    sess_next_[shard.tail] = slot;
  } else {
    shard.head = slot;
  }
  shard.tail = slot;
  ++shard.connected;
}

// tsn-lint: hotpath
void SessionStore::unbind(std::uint32_t slot) noexcept {
  if (sess_conn_[slot] == kNullSlot) return;
  sess_conn_[slot] = kNullSlot;
  Shard& shard = shards_[sess_shard_[slot]];
  const std::uint32_t prev = sess_prev_[slot];
  const std::uint32_t next = sess_next_[slot];
  if (prev != kNullSlot) {
    sess_next_[prev] = next;
  } else {
    shard.head = next;
  }
  if (next != kNullSlot) {
    sess_prev_[next] = prev;
  } else {
    shard.tail = prev;
  }
  sess_prev_[slot] = kNullSlot;
  sess_next_[slot] = kNullSlot;
  --shard.connected;
}

void SessionStore::destroy(std::uint32_t slot) {
  unbind(slot);
  // Free the open-order chain (exchange-id entries included).
  std::uint32_t order = sess_order_head_[slot];
  while (order != kNullSlot) {
    const std::uint32_t next = ord_next_[order];
    exch_erase(ord_exch_[order]);
    ord_next_[order] = free_ord_;
    free_ord_ = order;
    order = next;
  }
  sess_order_head_[slot] = kNullSlot;
  sess_order_count_[slot] = 0;
  // Staged-but-unflushed records would otherwise commit into a freed chain.
  if (!staged_.empty()) journal_flush();
  std::uint32_t rec = sess_jr_head_[slot];
  while (rec != kNullSlot) {
    const std::uint32_t next = jr_next_[rec];
    jr_next_[rec] = free_jr_;
    free_jr_ = rec;
    rec = next;
  }
  sess_jr_head_[slot] = kNullSlot;
  sess_jr_tail_[slot] = kNullSlot;
  sess_jr_count_[slot] = 0;
  // Generation bump lazily invalidates this session's client-id marks.
  ++sess_gen_[slot];
  sess_flags_[slot] = 0;
  dir_erase(shards_[sess_shard_[slot]], sess_external_[slot]);
  sess_next_[slot] = free_sess_;
  free_sess_ = slot;
  --live_sessions_;
  ++stats_.sessions_destroyed;
}

// --- journal ---------------------------------------------------------------

// tsn-lint: hotpath
void SessionStore::journal_stage(std::uint32_t slot, std::uint32_t seq,
                                 std::span<const std::byte> bytes) {
  Staged entry;
  entry.slot = slot;
  entry.seq = seq;
  entry.off = staging_bytes_.size();
  entry.len = static_cast<std::uint32_t>(bytes.size());
  staging_bytes_.insert(staging_bytes_.end(), bytes.begin(), bytes.end());
  staged_.push_back(entry);
  ++sess_jr_count_[slot];
}

// tsn-lint: hotpath
void SessionStore::journal_flush() {
  if (staged_.empty()) return;
  const std::size_t base = arena_.size();
  arena_.insert(arena_.end(), staging_bytes_.begin(), staging_bytes_.end());
  for (const Staged& entry : staged_) {
    const std::uint32_t rec = alloc_record();
    jr_seq_[rec] = entry.seq;
    jr_off_[rec] = base + entry.off;
    jr_len_[rec] = entry.len;
    jr_next_[rec] = kNullSlot;
    if (sess_jr_tail_[entry.slot] != kNullSlot) {
      jr_next_[sess_jr_tail_[entry.slot]] = rec;
    } else {
      sess_jr_head_[entry.slot] = rec;
    }
    sess_jr_tail_[entry.slot] = rec;
    ++stats_.journal_appends;
  }
  stats_.journal_bytes += staging_bytes_.size();
  ++stats_.journal_flushes;
  staged_.clear();
  staging_bytes_.clear();
}

// --- orders ----------------------------------------------------------------

// tsn-lint: hotpath
OrderVerdict SessionStore::register_order(std::uint32_t slot, proto::OrderId client_id,
                                          proto::OrderId exchange_id, std::uint16_t symbol_idx) {
  if (client_find(slot, client_id) != kNullSlot) return OrderVerdict::kDuplicateClientId;
  const std::uint32_t order = alloc_order();
  ord_client_[order] = client_id;
  ord_exch_[order] = exchange_id;
  ord_session_[order] = slot;
  ord_symbol_[order] = symbol_idx;
  ord_prev_[order] = kNullSlot;
  ord_next_[order] = sess_order_head_[slot];
  if (sess_order_head_[slot] != kNullSlot) ord_prev_[sess_order_head_[slot]] = order;
  sess_order_head_[slot] = order;
  ++sess_order_count_[slot];
  client_insert(slot, client_id, order);
  exch_insert(exchange_id, order);
  ++stats_.orders_registered;
  return OrderVerdict::kAccepted;
}

// tsn-lint: hotpath
bool SessionStore::client_id_used(std::uint32_t slot, proto::OrderId client_id) const noexcept {
  return client_find(slot, client_id) != kNullSlot;
}

// tsn-lint: hotpath
std::uint32_t SessionStore::find_open(std::uint32_t slot, proto::OrderId client_id) const noexcept {
  const std::uint32_t pos = client_find(slot, client_id);
  if (pos == kNullSlot) return kNullSlot;
  const std::uint32_t value = client_index_.value[pos];
  return value == kClosedOrder ? kNullSlot : value;
}

// tsn-lint: hotpath
std::uint32_t SessionStore::find_by_exchange(proto::OrderId exchange_id) const noexcept {
  return exch_find(exchange_id);
}

// tsn-lint: hotpath
void SessionStore::unlink_order(std::uint32_t order_slot) noexcept {
  const std::uint32_t prev = ord_prev_[order_slot];
  const std::uint32_t next = ord_next_[order_slot];
  if (prev != kNullSlot) {
    ord_next_[prev] = next;
  } else {
    sess_order_head_[ord_session_[order_slot]] = next;
  }
  if (next != kNullSlot) ord_prev_[next] = prev;
  --sess_order_count_[ord_session_[order_slot]];
}

// tsn-lint: hotpath
void SessionStore::close_order(std::uint32_t order_slot) {
  const std::uint32_t slot = ord_session_[order_slot];
  client_set(slot, ord_client_[order_slot], kClosedOrder);
  exch_erase(ord_exch_[order_slot]);
  unlink_order(order_slot);
  ord_next_[order_slot] = free_ord_;
  free_ord_ = order_slot;
}

void SessionStore::collect_open_client_ids(std::uint32_t slot,
                                           std::vector<proto::OrderId>& out) const {
  out.clear();
  for (std::uint32_t order = sess_order_head_[slot]; order != kNullSlot;
       order = ord_next_[order]) {
    out.push_back(ord_client_[order]);
  }
  std::sort(out.begin(), out.end());
}

std::uint64_t SessionStore::state_digest() const noexcept {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kPrime;
    }
  };
  fold(live_sessions_);
  for (std::uint32_t slot = 0; slot < sess_external_.size(); ++slot) {
    if ((sess_flags_[slot] & kFlagLive) == 0) continue;
    fold(sess_external_[slot]);
    fold(sess_token_[slot]);
    fold(sess_gen_[slot]);
    fold(sess_tx_seq_[slot]);
    fold((sess_flags_[slot] & kFlagLoggedIn) != 0 ? 1 : 0);
    fold(sess_order_count_[slot]);
    fold(sess_jr_count_[slot]);
  }
  return h;
}

}  // namespace tsn::exchange
