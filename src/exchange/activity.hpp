// Background market activity: the other participants.
//
// Drives an Exchange's books with a randomized stream of adds, cancels,
// replaces and marketable orders so that its feed carries realistic market
// data (the feed a trading firm consumes is almost entirely *other* firms'
// activity). Rates can be modulated over time to reproduce intraday shape
// and bursts; symbol selection is Zipf-skewed like real volume.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "exchange/exchange.hpp"
#include "sim/random.hpp"

namespace tsn::exchange {

struct ActivityConfig {
  // Aggregate book-operation rate (events/second) before modulation.
  double events_per_second = 50'000.0;
  // Optional time-varying multiplier (intraday profile / bursts); default 1.
  std::function<double(sim::Time)> rate_multiplier;
  // Symbol popularity skew.
  double zipf_exponent = 1.1;
  // Operation mix (normalized internally).
  double add_weight = 0.55;
  double cancel_weight = 0.25;
  double replace_weight = 0.12;
  double cross_weight = 0.08;  // marketable IOC orders that trade
  proto::Quantity lot_size = 100;
  std::uint32_t max_lots = 10;
  proto::Price tick = 100;  // $0.01 in fixed point
  int max_spread_ticks = 10;
  std::size_t max_open_orders = 50'000;
};

struct ActivityStats {
  std::uint64_t adds = 0;
  std::uint64_t cancels = 0;
  std::uint64_t replaces = 0;
  std::uint64_t crosses = 0;
};

class MarketActivityDriver {
 public:
  MarketActivityDriver(Exchange& exchange, ActivityConfig config, std::uint64_t seed);

  // Begins generating events now and stops at `end`.
  void run_until(sim::Time end);

  [[nodiscard]] const ActivityStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t resting_orders() const noexcept { return resting_.size(); }

 private:
  struct Resting {
    proto::OrderId id = 0;
    proto::Symbol symbol;
  };

  void schedule_next();
  void fire();
  void do_add();
  void do_cancel();
  void do_replace();
  void do_cross();
  [[nodiscard]] const SymbolSpec& pick_symbol();
  [[nodiscard]] proto::Price& mid_of(const proto::Symbol& symbol, proto::Price reference);

  Exchange& exchange_;
  ActivityConfig config_;
  sim::Rng rng_;
  sim::Time end_ = sim::Time::zero();
  std::vector<Resting> resting_;
  std::unordered_map<proto::Symbol, proto::Price> mids_;
  ActivityStats stats_;
};

}  // namespace tsn::exchange
