#include "exchange/activity.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace tsn::exchange {

MarketActivityDriver::MarketActivityDriver(Exchange& exchange, ActivityConfig config,
                                           std::uint64_t seed)
    : exchange_(exchange), config_(std::move(config)), rng_(seed) {
  if (exchange_.symbols().empty()) throw std::invalid_argument{"exchange lists no symbols"};
  if (config_.events_per_second <= 0.0) throw std::invalid_argument{"rate must be positive"};
}

void MarketActivityDriver::run_until(sim::Time end) {
  end_ = end;
  schedule_next();
}

void MarketActivityDriver::schedule_next() {
  double rate = config_.events_per_second;
  if (config_.rate_multiplier) rate *= config_.rate_multiplier(exchange_.engine().now());
  if (rate <= 0.0) rate = 1.0;  // quiet period: crawl rather than stall
  const double dt_seconds = rng_.exponential(1.0 / rate);
  const sim::Time at = exchange_.engine().now() + sim::seconds(dt_seconds);
  if (at > end_) return;
  exchange_.engine().schedule_at(at, [this] { fire(); });
}

void MarketActivityDriver::fire() {
  // When the resting population hits its cap, force drains.
  if (resting_.size() >= config_.max_open_orders) {
    do_cancel();
    schedule_next();
    return;
  }
  const std::array<double, 4> weights{config_.add_weight, config_.cancel_weight,
                                      config_.replace_weight, config_.cross_weight};
  switch (rng_.weighted_index(weights)) {
    case 0:
      do_add();
      break;
    case 1:
      do_cancel();
      break;
    case 2:
      do_replace();
      break;
    default:
      do_cross();
      break;
  }
  schedule_next();
}

const SymbolSpec& MarketActivityDriver::pick_symbol() {
  const auto& symbols = exchange_.symbols();
  const auto rank = rng_.zipf(symbols.size(), config_.zipf_exponent);
  return symbols[static_cast<std::size_t>(rank - 1)];
}

proto::Price& MarketActivityDriver::mid_of(const proto::Symbol& symbol,
                                           proto::Price reference) {
  auto [it, inserted] = mids_.emplace(symbol, reference);
  if (!inserted && rng_.bernoulli(0.05)) {
    // Gentle random walk keeps prices live without trending off to zero.
    it->second += rng_.bernoulli(0.5) ? config_.tick : -config_.tick;
    it->second = std::max<proto::Price>(it->second, config_.tick * 10);
  }
  return it->second;
}

void MarketActivityDriver::do_add() {
  ++stats_.adds;
  const SymbolSpec& spec = pick_symbol();
  const proto::Price mid = mid_of(spec.symbol, spec.reference_price);
  const auto side = rng_.bernoulli(0.5) ? proto::Side::kBuy : proto::Side::kSell;
  const auto offset_ticks =
      static_cast<proto::Price>(rng_.uniform_int(1, config_.max_spread_ticks));
  const proto::Price price = side == proto::Side::kBuy ? mid - offset_ticks * config_.tick
                                                       : mid + offset_ticks * config_.tick;
  const auto quantity = static_cast<proto::Quantity>(
      config_.lot_size * static_cast<proto::Quantity>(rng_.uniform_int(1, config_.max_lots)));
  const proto::OrderId id = exchange_.next_order_id();
  const auto outcome = exchange_.book(spec.symbol).submit({id, side, price, quantity});
  if (outcome.result == book::OrderBook::SubmitResult::kRested ||
      outcome.result == book::OrderBook::SubmitResult::kPartialFill) {
    resting_.push_back({id, spec.symbol});
  }
}

void MarketActivityDriver::do_cancel() {
  if (resting_.empty()) return do_add();
  ++stats_.cancels;
  const auto index = static_cast<std::size_t>(rng_.next_below(resting_.size()));
  const Resting victim = resting_[index];
  resting_[index] = resting_.back();
  resting_.pop_back();
  // The order may already have been filled; a miss is normal.
  (void)exchange_.book(victim.symbol).cancel(victim.id);
}

void MarketActivityDriver::do_replace() {
  if (resting_.empty()) return do_add();
  ++stats_.replaces;
  const auto index = static_cast<std::size_t>(rng_.next_below(resting_.size()));
  const Resting& target = resting_[index];
  auto& book = exchange_.book(target.symbol);
  const auto best = book.best();
  const proto::Price mid = mid_of(target.symbol, best.bid_price.value_or(
                                                     best.ask_price.value_or(config_.tick * 100)));
  const auto offset_ticks =
      static_cast<proto::Price>(rng_.uniform_int(1, config_.max_spread_ticks));
  const auto side = rng_.bernoulli(0.5) ? proto::Side::kBuy : proto::Side::kSell;
  const proto::Price price = side == proto::Side::kBuy ? mid - offset_ticks * config_.tick
                                                       : mid + offset_ticks * config_.tick;
  const auto quantity = static_cast<proto::Quantity>(
      config_.lot_size * static_cast<proto::Quantity>(rng_.uniform_int(1, config_.max_lots)));
  (void)book.replace(target.id, quantity, price);
}

void MarketActivityDriver::do_cross() {
  ++stats_.crosses;
  const SymbolSpec& spec = pick_symbol();
  auto& book = exchange_.book(spec.symbol);
  const auto best = book.best();
  // Hit the touch: buy at the ask or sell at the bid, IOC so nothing rests.
  proto::Side side;
  proto::Price price;
  if (best.ask_price && (!best.bid_price || rng_.bernoulli(0.5))) {
    side = proto::Side::kBuy;
    price = *best.ask_price;
  } else if (best.bid_price) {
    side = proto::Side::kSell;
    price = *best.bid_price;
  } else {
    return do_add();  // empty book: seed liquidity instead
  }
  const auto quantity = static_cast<proto::Quantity>(
      config_.lot_size * static_cast<proto::Quantity>(rng_.uniform_int(1, config_.max_lots)));
  (void)book.submit({exchange_.next_order_id(), side, price, quantity}, true);
}

}  // namespace tsn::exchange
