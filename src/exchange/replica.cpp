#include "exchange/replica.hpp"

#include <algorithm>
#include <utility>

#include "core/check.hpp"
#include "proto/boe.hpp"

namespace tsn::exchange {

namespace {

constexpr std::uint8_t kDgramRecords = 1;
constexpr std::uint8_t kDgramHeartbeat = 2;
constexpr std::uint8_t kDgramStatus = 3;

constexpr std::uint8_t kRecordLogin = 0;
constexpr std::uint8_t kRecordMessage = 1;
constexpr std::uint8_t kRecordSessionDead = 2;

// [rep_seq u32][kind u8][at_ps i64][session u32][len u16] = 19 bytes.
constexpr std::size_t kRecordHeader = 19;
// [type u8][epoch u64] = 9 bytes.
constexpr std::size_t kDgramHeader = 9;

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (i * 8)) & 0xff));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (i * 8)) & 0xff));
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) noexcept : data_(data) {}
  [[nodiscard]] bool ok(std::size_t n) const noexcept { return pos_ + n <= data_.size(); }
  [[nodiscard]] std::uint8_t u8() noexcept {
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() noexcept {
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (i * 8);
    return v;
  }
  [[nodiscard]] std::uint32_t u32() noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (i * 8);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (i * 8);
    return v;
  }
  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n) noexcept {
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- ReplicaStream ---------------------------------------------------------

ReplicaStream::ReplicaStream(sim::Scheduler& engine, Exchange& primary, ReplicaConfig config)
    : engine_(engine), primary_(primary), config_(std::move(config)), epoch_(config_.epoch) {
  host_ = std::make_unique<net::Host>(engine_, config_.name, sim::micros(std::int64_t{1}));
  nic_ = &host_->add_nic("bridge", config_.local_mac, config_.local_ip);
  stack_ = std::make_unique<net::NetStack>(*nic_);
  stack_->bind_udp(config_.local_port,
                   [this](const net::Ipv4Header&, const net::UdpHeader&,
                          std::span<const std::byte> payload, sim::Time) { on_datagram(payload); });
  scratch_record_.reserve(128);
  scratch_datagram_.reserve(config_.mtu_payload);
}

ReplicaStream::~ReplicaStream() = default;

void ReplicaStream::start() {
  primary_.set_input_listener(this);
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void ReplicaStream::stage(std::uint8_t kind, std::uint32_t session_id,
                          std::span<const std::byte> payload) {
  if (crashed_ || fenced_) return;
  std::vector<std::byte> record;
  record.reserve(kRecordHeader + payload.size());
  put_u32(record, next_rep_seq_);
  record.push_back(static_cast<std::byte>(kind));
  put_u64(record, static_cast<std::uint64_t>(engine_.now().picos()));
  put_u32(record, session_id);
  TSN_ASSERT(payload.size() <= 0xffff, "replication record payload too large");
  put_u16(record, static_cast<std::uint16_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  records_.push_back(std::move(record));
  ++next_rep_seq_;
  ++stats_.records_emitted;
  schedule_wire_flush();
}

void ReplicaStream::on_admitted_login(std::uint32_t session_id, std::uint64_t token) {
  scratch_record_.clear();
  put_u64(scratch_record_, token);
  stage(kRecordLogin, session_id, scratch_record_);
}

void ReplicaStream::on_admitted_message(std::uint32_t session_id,
                                        const proto::boe::Message& message) {
  scratch_record_.clear();
  proto::boe::encode_into(message, 0, scratch_record_);
  stage(kRecordMessage, session_id, scratch_record_);
}

void ReplicaStream::on_admitted_session_dead(std::uint32_t session_id) {
  stage(kRecordSessionDead, session_id, {});
}

void ReplicaStream::schedule_wire_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // Zero delay: the flush runs after the current event cascade but within
  // the same instant, so the record hits the wire before (or exactly when)
  // the client's acknowledgement does. A crash event at a later instant can
  // therefore never separate an observed ack from its replication record.
  engine_.schedule_in(sim::Duration::zero(), [this] {
    flush_scheduled_ = false;
    wire_flush();
  });
}

void ReplicaStream::wire_flush() {
  if (crashed_ || fenced_) return;
  if (flushed_seq_ + 1 >= next_rep_seq_) return;  // nothing pending
  send_records(flushed_seq_ + 1, next_rep_seq_ - 1, /*retransmit=*/false);
  flushed_seq_ = next_rep_seq_ - 1;
}

void ReplicaStream::send_records(std::uint32_t first_seq, std::uint32_t last_seq,
                                 bool retransmit) {
  scratch_datagram_.clear();
  auto begin_dgram = [this] {
    scratch_datagram_.clear();
    scratch_datagram_.push_back(static_cast<std::byte>(kDgramRecords));
    put_u64(scratch_datagram_, epoch_);
  };
  auto send_dgram = [this] {
    if (scratch_datagram_.size() <= kDgramHeader) return;
    stack_->send_udp(config_.peer_mac, config_.peer_ip, config_.local_port, config_.peer_port,
                     scratch_datagram_);
    ++stats_.datagrams_sent;
  };
  begin_dgram();
  for (std::uint32_t seq = first_seq; seq <= last_seq; ++seq) {
    const std::vector<std::byte>& record = records_[seq - 1];
    if (scratch_datagram_.size() > kDgramHeader &&
        scratch_datagram_.size() + record.size() > config_.mtu_payload) {
      send_dgram();
      begin_dgram();
    }
    scratch_datagram_.insert(scratch_datagram_.end(), record.begin(), record.end());
    if (retransmit) ++stats_.records_retransmitted;
  }
  send_dgram();
}

void ReplicaStream::heartbeat_tick() {
  if (crashed_ || fenced_) return;  // a halted leader announces nothing
  // Flush first so (flushed_seq, digest) is self-consistent: the digest is
  // exactly the state after applying everything on the wire. The bridge
  // link is FIFO, so a caught-up applier compares apples to apples.
  wire_flush();
  scratch_datagram_.clear();
  scratch_datagram_.push_back(static_cast<std::byte>(kDgramHeartbeat));
  put_u64(scratch_datagram_, epoch_);
  put_u32(scratch_datagram_, flushed_seq_);
  put_u64(scratch_datagram_, primary_.state_digest());
  stack_->send_udp(config_.peer_mac, config_.peer_ip, config_.local_port, config_.peer_port,
                   scratch_datagram_);
  ++stats_.heartbeats_sent;
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void ReplicaStream::on_datagram(std::span<const std::byte> payload) {
  if (crashed_) return;
  Reader r{payload};
  if (!r.ok(1 + 8 + 4)) return;
  if (r.u8() != kDgramStatus) return;
  const std::uint64_t epoch = r.u64();
  const std::uint32_t applied = r.u32();
  ++stats_.statuses_received;
  if (epoch > epoch_) {
    // Someone with a higher epoch leads — we were partitioned away and the
    // standby promoted. Fence: silence the exchange (books frozen, legs
    // FIN'd so clients re-home) and stop announcing. Split-brain resolved.
    fenced_ = true;
    primary_.fence();
    return;
  }
  if (fenced_) return;
  // NAK-style retransmit: progress stalled below our watermark across two
  // consecutive statuses means records were lost (link flap, partition
  // window) — resend the missing tail. In-flight records simply not yet
  // applied advance `applied` between statuses and trigger nothing.
  if (saw_status_ && applied == last_status_applied_ && applied < flushed_seq_) {
    send_records(applied + 1, flushed_seq_, /*retransmit=*/true);
    ++stats_.retransmit_bursts;
  }
  saw_status_ = true;
  last_status_applied_ = applied;
}

void ReplicaStream::register_metrics(telemetry::Registry& registry,
                                     const std::string& prefix) const {
  registry.gauge(prefix + ".records_emitted",
                 [this] { return static_cast<double>(stats_.records_emitted); });
  registry.gauge(prefix + ".datagrams_sent",
                 [this] { return static_cast<double>(stats_.datagrams_sent); });
  registry.gauge(prefix + ".heartbeats_sent",
                 [this] { return static_cast<double>(stats_.heartbeats_sent); });
  registry.gauge(prefix + ".statuses_received",
                 [this] { return static_cast<double>(stats_.statuses_received); });
  registry.gauge(prefix + ".records_retransmitted",
                 [this] { return static_cast<double>(stats_.records_retransmitted); });
  registry.gauge(prefix + ".retransmit_bursts",
                 [this] { return static_cast<double>(stats_.retransmit_bursts); });
  registry.gauge(prefix + ".epoch", [this] { return static_cast<double>(epoch_); });
  registry.gauge(prefix + ".fenced", [this] { return fenced_ ? 1.0 : 0.0; });
}

// --- ReplicaApplier --------------------------------------------------------

ReplicaApplier::ReplicaApplier(sim::Scheduler& engine, Exchange& backup, ReplicaConfig config)
    : engine_(engine),
      backup_(backup),
      config_(std::move(config)),
      epoch_(config_.epoch),
      remote_epoch_(config_.epoch) {
  host_ = std::make_unique<net::Host>(engine_, config_.name, sim::micros(std::int64_t{1}));
  nic_ = &host_->add_nic("bridge", config_.local_mac, config_.local_ip);
  stack_ = std::make_unique<net::NetStack>(*nic_);
}

ReplicaApplier::~ReplicaApplier() = default;

void ReplicaApplier::start() {
  if (started_) return;
  started_ = true;
  last_heartbeat_at_ = engine_.now();
  stack_->bind_udp(config_.local_port,
                   [this](const net::Ipv4Header&, const net::UdpHeader&,
                          std::span<const std::byte> payload, sim::Time) { on_datagram(payload); });
  engine_.schedule_in(config_.status_interval, [this] { status_tick(); });
}

void ReplicaApplier::begin_promotion() noexcept {
  epoch_ = std::max(epoch_, remote_epoch_) + 1;
}

void ReplicaApplier::apply_record(std::uint8_t kind, std::uint32_t session_id,
                                  std::int64_t at_ps, std::span<const std::byte> payload) {
  switch (kind) {
    case kRecordLogin: {
      Reader r{payload};
      if (!r.ok(8)) return;
      backup_.apply_replicated_login(session_id, r.u64(), at_ps);
      return;
    }
    case kRecordMessage: {
      const auto decoded = proto::boe::decode(payload);
      if (!decoded) return;
      backup_.apply_replicated_message(session_id, decoded->message, at_ps);
      return;
    }
    case kRecordSessionDead:
      backup_.apply_replicated_session_dead(session_id, at_ps);
      return;
    default:
      return;
  }
}

void ReplicaApplier::on_datagram(std::span<const std::byte> payload) {
  ++stats_.datagrams_received;
  Reader r{payload};
  if (!r.ok(kDgramHeader)) return;
  const std::uint8_t type = r.u8();
  const std::uint64_t epoch = r.u64();
  if (epoch < epoch_) {
    // Post-promotion traffic from the deposed leader: we are the epoch now.
    // Dropping (instead of applying) is what makes the promoted book
    // authoritative; the status stream will fence the sender on contact.
    ++stats_.stale_epoch_dropped;
    return;
  }
  if (type == kDgramHeartbeat) {
    if (!r.ok(4 + 8)) return;
    const std::uint32_t flushed = r.u32();
    const std::uint64_t digest = r.u64();
    ++stats_.heartbeats_received;
    last_heartbeat_at_ = engine_.now();
    remote_epoch_ = epoch;
    const std::uint32_t lag = flushed > applied_seq_ ? flushed - applied_seq_ : 0;
    stats_.lag_last = lag;
    stats_.lag_max = std::max(stats_.lag_max, lag);
    if (flushed == applied_seq_) {
      // Fully caught up at a sequence point: the digests must be
      // byte-equal. A mismatch means replication diverged — drills assert
      // this counter stays zero.
      ++stats_.digests_checked;
      if (digest != backup_.state_digest()) ++stats_.digest_mismatches;
    }
    return;
  }
  if (type != kDgramRecords) return;
  remote_epoch_ = std::max(remote_epoch_, epoch);
  while (r.ok(kRecordHeader)) {
    const std::uint32_t rep_seq = r.u32();
    const std::uint8_t kind = r.u8();
    const auto at_ps = static_cast<std::int64_t>(r.u64());
    const std::uint32_t session_id = r.u32();
    const std::uint16_t len = r.u16();
    if (!r.ok(len)) return;  // truncated datagram
    const auto body = r.bytes(len);
    if (rep_seq <= applied_seq_) {
      ++stats_.records_stale;  // retransmit overlap with in-flight originals
      continue;
    }
    if (rep_seq != applied_seq_ + 1) {
      ++stats_.records_gapped;  // lost predecessor; wait for the NAK path
      continue;
    }
    apply_record(kind, session_id, at_ps, body);
    ++applied_seq_;
    ++stats_.records_applied;
  }
}

void ReplicaApplier::status_tick() {
  // Runs forever — after promotion this stream carries the new epoch to a
  // healed stale primary, which fences itself on receipt.
  std::vector<std::byte> out;
  out.reserve(13);
  out.push_back(static_cast<std::byte>(kDgramStatus));
  put_u64(out, epoch_);
  put_u32(out, applied_seq_);
  stack_->send_udp(config_.peer_mac, config_.peer_ip, config_.local_port, config_.peer_port, out);
  ++stats_.statuses_sent;
  engine_.schedule_in(config_.status_interval, [this] { status_tick(); });
}

void ReplicaApplier::register_metrics(telemetry::Registry& registry,
                                      const std::string& prefix) const {
  registry.gauge(prefix + ".datagrams_received",
                 [this] { return static_cast<double>(stats_.datagrams_received); });
  registry.gauge(prefix + ".records_applied",
                 [this] { return static_cast<double>(stats_.records_applied); });
  registry.gauge(prefix + ".records_stale",
                 [this] { return static_cast<double>(stats_.records_stale); });
  registry.gauge(prefix + ".records_gapped",
                 [this] { return static_cast<double>(stats_.records_gapped); });
  registry.gauge(prefix + ".heartbeats_received",
                 [this] { return static_cast<double>(stats_.heartbeats_received); });
  registry.gauge(prefix + ".stale_epoch_dropped",
                 [this] { return static_cast<double>(stats_.stale_epoch_dropped); });
  registry.gauge(prefix + ".digests_checked",
                 [this] { return static_cast<double>(stats_.digests_checked); });
  registry.gauge(prefix + ".digest_mismatches",
                 [this] { return static_cast<double>(stats_.digest_mismatches); });
  registry.gauge(prefix + ".statuses_sent",
                 [this] { return static_cast<double>(stats_.statuses_sent); });
  registry.gauge(prefix + ".lag_last", [this] { return static_cast<double>(stats_.lag_last); });
  registry.gauge(prefix + ".lag_max", [this] { return static_cast<double>(stats_.lag_max); });
  registry.gauge(prefix + ".epoch", [this] { return static_cast<double>(epoch_); });
}

}  // namespace tsn::exchange
