#include "exchange/loadgen.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace tsn::exchange {

namespace {

using proto::boe::Message;

// Splittable per-field digest: FNV-1a over 8-byte words.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
}

}  // namespace

LoadGen::LoadGen(sim::Scheduler& engine, Exchange& exchange, LoadGenConfig config)
    : engine_(engine), exchange_(exchange), config_(config) {
  TSN_ASSERT(config_.sessions > 0, "loadgen needs at least one session");
  TSN_ASSERT(config_.target_open_orders <= kMaxOpen, "target_open_orders above slot capacity");
  TSN_ASSERT(!exchange_.symbols().empty(), "loadgen needs a listed symbol");
  config_.steady_interval_ticks = std::max(1u, config_.steady_interval_ticks);
  config_.flap_interval_ticks = std::max(1u, config_.flap_interval_ticks);
  config_.burst_interval_ticks = std::max(1u, config_.burst_interval_ticks);
  config_.logins_per_tick = std::max(1u, config_.logins_per_tick);

  sim::Rng rng(config_.seed);
  const std::array<double, 3> weights{config_.steady_weight, config_.flapper_weight,
                                      config_.bursty_weight};

  sessions_.resize(config_.sessions);
  steady_buckets_.resize(config_.steady_interval_ticks);
  flap_buckets_.resize(config_.flap_interval_ticks);
  burst_buckets_.resize(config_.burst_interval_ticks);

  const auto& specs = exchange_.symbols();
  for (std::uint32_t i = 0; i < config_.sessions; ++i) {
    Sess& sess = sessions_[i];
    const SymbolSpec& spec = specs[i % specs.size()];
    sess.symbol = spec.symbol;
    sess.ref_price = spec.reference_price;
    sess.price_salt = static_cast<std::uint32_t>(rng.next_u64());
    sess.persona = static_cast<Persona>(rng.weighted_index(weights));
    // Every session keeps a resting baseline; flappers and bursty algos add
    // their own cadence on top.
    steady_buckets_[rng.next_below(config_.steady_interval_ticks)].push_back(i);
    if (sess.persona == Persona::kFlapper) {
      flap_buckets_[rng.next_below(config_.flap_interval_ticks)].push_back(i);
    } else if (sess.persona == Persona::kBursty) {
      burst_buckets_[rng.next_below(config_.burst_interval_ticks)].push_back(i);
    }
  }
  conn_to_session_.reserve(config_.sessions + config_.sessions / 8);
  relogin_queue_.reserve(config_.sessions / 4 + 16);
}

void LoadGen::start() {
  if (started_) {
    running_ = true;
    return;
  }
  started_ = true;
  running_ = true;
  engine_.schedule_in(sim::Duration::zero(), [this] { tick(); });
}

void LoadGen::tick() {
  const std::uint32_t t = tick_index_++;

  // 1. Reconnects that have served their down time (FIFO: oldest first).
  while (relogin_head_ < relogin_queue_.size() && relogin_queue_[relogin_head_].second <= t) {
    begin_login(relogin_queue_[relogin_head_].first);
    ++relogin_head_;
  }
  if (relogin_head_ == relogin_queue_.size()) {
    relogin_queue_.clear();
    relogin_head_ = 0;
  }

  // 2. Admission ramp: first-time logins, throttled per tick (reconnects
  // above are not throttled — a storm's whole cohort retries together).
  for (std::uint32_t budget = config_.logins_per_tick;
       budget > 0 && login_cursor_ < config_.sessions; --budget) {
    begin_login(login_cursor_++);
  }

  // 3. Persona cadences — only the sessions whose phase is due this tick.
  for (const std::uint32_t s : steady_buckets_[t % config_.steady_interval_ticks]) {
    if (sessions_[s].state == kReady) rotate(s);
  }
  for (const std::uint32_t s : flap_buckets_[t % config_.flap_interval_ticks]) {
    if (sessions_[s].state == kReady) {
      drop(s);
      relogin_queue_.emplace_back(s, tick_index_ + config_.down_ticks);
    }
  }
  for (const std::uint32_t s : burst_buckets_[t % config_.burst_interval_ticks]) {
    for (std::uint32_t n = 0; n < config_.burst_size && sessions_[s].state == kReady; ++n) {
      rotate(s);
    }
  }

  if (running_) engine_.schedule_in(config_.tick, [this] { tick(); });
}

void LoadGen::begin_login(std::uint32_t session) {
  Sess& sess = sessions_[session];
  if (sess.state == kLoggingIn || sess.state == kReplaying) return;
  if (sess.conn == kNoConn) {
    sess.conn = exchange_.open_direct(*this);
    if (sess.conn >= conn_to_session_.size()) {
      conn_to_session_.resize(sess.conn + 1, kNoSession);
    }
    conn_to_session_[sess.conn] = session;
  }
  sess.state = kLoggingIn;
  ++stats_.logins_sent;
  exchange_.deliver_direct(
      sess.conn, proto::boe::LoginRequest{config_.session_id_base + session, token_of(session)});
}

void LoadGen::drop(std::uint32_t session) {
  Sess& sess = sessions_[session];
  if (sess.conn == kNoConn) return;
  ++stats_.drops;
  if (sess.state == kReady) --ready_count_;
  sess.state = kDown;
  const std::uint32_t conn = sess.conn;
  sess.conn = kNoConn;
  conn_to_session_[conn] = kNoSession;
  exchange_.close_direct(conn);
}

std::uint32_t LoadGen::storm(std::uint32_t count) {
  std::uint32_t dropped = 0;
  for (std::uint32_t s = 0; s < config_.sessions && dropped < count; ++s) {
    if (sessions_[s].state != kReady) continue;
    drop(s);
    sessions_[s].storm_victim = true;
    relogin_queue_.emplace_back(s, tick_index_ + config_.down_ticks);
    ++dropped;
  }
  if (dropped > 0) {
    storm_started_ = true;
    storm_outstanding_ += dropped;
    storm_started_at_ = engine_.now();
  }
  return dropped;
}

void LoadGen::rotate(std::uint32_t session) {
  Sess& sess = sessions_[session];
  const std::uint32_t in_flight = sess.open_count + sess.unacked_count;
  if (in_flight >= config_.target_open_orders) cancel_oldest(session);
  if (in_flight < kMaxOpen && sess.unacked_count < kMaxOpen) submit(session);
}

void LoadGen::submit(std::uint32_t session) {
  Sess& sess = sessions_[session];
  if (sess.unacked_count >= kMaxOpen || sess.conn == kNoConn) return;
  OpenOrder order;
  order.client_id = fresh_client_id(session);
  order.price = next_price(session);
  order.quantity = config_.quantity;
  sess.unacked[sess.unacked_count++] = order;
  ++stats_.orders_sent;
  // Non-marketable sell: never crosses another load-gen session.
  exchange_.deliver_direct(sess.conn,
                           proto::boe::NewOrder{order.client_id, proto::Side::kSell,
                                                order.quantity, sess.symbol, order.price,
                                                proto::boe::TimeInForce::kDay});
}

void LoadGen::cancel_oldest(std::uint32_t session) {
  Sess& sess = sessions_[session];
  if (sess.conn == kNoConn) return;
  for (std::uint8_t i = 0; i < sess.open_count; ++i) {
    if (sess.open[i].cancel_requested) continue;
    sess.open[i].cancel_requested = true;
    ++stats_.cancels_sent;
    exchange_.deliver_direct(sess.conn, proto::boe::CancelOrder{sess.open[i].client_id});
    return;
  }
}

void LoadGen::resubmit_after_reset(std::uint32_t session) {
  Sess& sess = sessions_[session];
  if (sess.state != kReady || sess.conn == kNoConn) return;
  // Orders sent before the drop that never got a (replayed) ack: resend
  // with the original client id — the exchange's dedupe makes this safe.
  for (std::uint8_t i = 0; i < sess.unacked_count; ++i) {
    ++stats_.orders_sent;
    ++stats_.resubmitted_orders;
    exchange_.deliver_direct(sess.conn,
                             proto::boe::NewOrder{sess.unacked[i].client_id, proto::Side::kSell,
                                                  sess.unacked[i].quantity, sess.symbol,
                                                  sess.unacked[i].price,
                                                  proto::boe::TimeInForce::kDay});
  }
  // Orders the exchange cancelled on disconnect: re-rest with fresh ids.
  const std::uint8_t cod = sess.cod_count;
  sess.cod_count = 0;
  for (std::uint8_t i = 0; i < cod && sess.unacked_count < kMaxOpen; ++i) {
    OpenOrder order = sess.cod_resub[i];
    order.client_id = fresh_client_id(session);
    order.cancel_requested = false;
    sess.unacked[sess.unacked_count++] = order;
    ++stats_.orders_sent;
    ++stats_.cod_resubmitted;
    exchange_.deliver_direct(sess.conn,
                             proto::boe::NewOrder{order.client_id, proto::Side::kSell,
                                                  order.quantity, sess.symbol, order.price,
                                                  proto::boe::TimeInForce::kDay});
  }
  maybe_storm_recovered(session);
}

void LoadGen::maybe_storm_recovered(std::uint32_t session) {
  Sess& sess = sessions_[session];
  if (!sess.storm_victim || sess.state != kReady) return;
  if (sess.unacked_count != 0 || sess.cod_count != 0) return;
  sess.storm_victim = false;
  --storm_outstanding_;
  if (storm_outstanding_ == 0) storm_recovered_at_ = engine_.now();
}

void LoadGen::on_direct_bytes(std::uint32_t conn, std::span<const std::byte> bytes) {
  stats_.bytes_received += bytes.size();
  const std::uint32_t session =
      conn < conn_to_session_.size() ? conn_to_session_[conn] : kNoSession;
  if (session == kNoSession) return;  // stale leg (dropped while in flight)
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const auto decoded = proto::boe::decode(bytes.subspan(offset));
    if (!decoded) break;
    offset += decoded->consumed;
    ++stats_.messages_received;
    handle_message(session, *decoded);
    if (sessions_[session].conn != conn) break;  // session moved on mid-buffer
  }
}

void LoadGen::on_direct_closed(std::uint32_t conn) {
  // Exchange-initiated kill (liveness timeout / takeover). Called from
  // inside the exchange: no synchronous calls back in — just queue the
  // reconnect for a future tick.
  const std::uint32_t session =
      conn < conn_to_session_.size() ? conn_to_session_[conn] : kNoSession;
  if (session == kNoSession) return;
  Sess& sess = sessions_[session];
  if (sess.conn != conn) return;
  ++stats_.closed_by_exchange;
  if (sess.state == kReady) --ready_count_;
  sess.state = kDown;
  sess.conn = kNoConn;
  conn_to_session_[conn] = kNoSession;
  relogin_queue_.emplace_back(session, tick_index_ + config_.down_ticks);
}

void LoadGen::handle_message(std::uint32_t session, const proto::boe::Decoded& decoded) {
  using namespace proto::boe;
  Sess& sess = sessions_[session];
  if (decoded.seq > 0) sess.last_seen_seq = std::max(sess.last_seen_seq, decoded.seq);

  if (std::get_if<LoginAccepted>(&decoded.message) != nullptr) {
    ++stats_.logins_accepted;
    if (!sess.ever_ready) {
      sess.ever_ready = true;
      sess.state = kReady;
      ++ready_count_;
      ++admitted_count_;
      if (admitted_count_ == config_.sessions) admitted_at_ = engine_.now();
      // Seed the resting baseline (deferred: we are inside the exchange's
      // send path here).
      engine_.schedule_in(sim::Duration::zero(), [this, session] {
        Sess& s = sessions_[session];
        while (s.state == kReady &&
               s.open_count + s.unacked_count < config_.target_open_orders) {
          submit(session);
        }
      });
    } else {
      sess.state = kReplaying;
      ++stats_.replays_requested;
      send(session, ReplayRequest{sess.last_seen_seq});
    }
    return;
  }
  if (const auto* rejected = std::get_if<LoginRejected>(&decoded.message)) {
    (void)rejected;
    ++stats_.login_rejects;
    if (sess.state == kReady) --ready_count_;
    sess.state = kDown;
    relogin_queue_.emplace_back(session, tick_index_ + config_.down_ticks);
    return;
  }
  if (const auto* reset = std::get_if<SequenceReset>(&decoded.message)) {
    (void)reset;
    ++stats_.sequence_resets;
    if (sess.state == kReplaying) {
      sess.state = kReady;
      ++ready_count_;
    }
    engine_.schedule_in(sim::Duration::zero(),
                        [this, session] { resubmit_after_reset(session); });
    return;
  }
  if (std::get_if<Heartbeat>(&decoded.message) != nullptr) {
    ++stats_.heartbeats_seen;
    if (config_.answer_heartbeats) {
      ++stats_.heartbeats_answered;
      send(session, Heartbeat{});
    }
    return;
  }
  if (const auto* accepted = std::get_if<OrderAccepted>(&decoded.message)) {
    for (std::uint8_t i = 0; i < sess.unacked_count; ++i) {
      if (sess.unacked[i].client_id != accepted->client_order_id) continue;
      ++stats_.orders_acked;
      if (sess.open_count < kMaxOpen) sess.open[sess.open_count++] = sess.unacked[i];
      sess.unacked[i] = sess.unacked[--sess.unacked_count];
      maybe_storm_recovered(session);
      return;
    }
    return;  // ack already applied via replay
  }
  if (const auto* rejected = std::get_if<OrderRejected>(&decoded.message)) {
    if (rejected->reason == RejectReason::kDuplicateOrderId) {
      // Idempotent resubmission: the original made it after all.
      ++stats_.duplicate_rejects;
      for (std::uint8_t i = 0; i < sess.unacked_count; ++i) {
        if (sess.unacked[i].client_id != rejected->client_order_id) continue;
        sess.unacked[i] = sess.unacked[--sess.unacked_count];
        break;
      }
      maybe_storm_recovered(session);
    } else {
      ++stats_.order_rejects;
      for (std::uint8_t i = 0; i < sess.unacked_count; ++i) {
        if (sess.unacked[i].client_id != rejected->client_order_id) continue;
        sess.unacked[i] = sess.unacked[--sess.unacked_count];
        break;
      }
      maybe_storm_recovered(session);
    }
    return;
  }
  if (const auto* cancelled = std::get_if<OrderCancelled>(&decoded.message)) {
    for (std::uint8_t i = 0; i < sess.open_count; ++i) {
      if (sess.open[i].client_id != cancelled->client_order_id) continue;
      if (sess.open[i].cancel_requested) {
        ++stats_.cancels_acked;
      } else {
        // Unsolicited: the exchange's cancel-on-disconnect sweep. Remember
        // the parameters so the reconnect can re-rest the order.
        ++stats_.cod_cancels_seen;
        if (config_.resubmit_cod && sess.cod_count < kMaxOpen) {
          sess.cod_resub[sess.cod_count++] = sess.open[i];
        }
      }
      sess.open[i] = sess.open[--sess.open_count];
      return;
    }
    return;
  }
  if (const auto* rejected = std::get_if<CancelRejected>(&decoded.message)) {
    ++stats_.cancel_rejects;
    // kTooLateToCancel: the fill that beat the cancel removes the order.
    for (std::uint8_t i = 0; i < sess.open_count; ++i) {
      if (sess.open[i].client_id == rejected->client_order_id) {
        sess.open[i].cancel_requested = false;
        break;
      }
    }
    return;
  }
  if (const auto* fill = std::get_if<Fill>(&decoded.message)) {
    ++stats_.fills;
    stats_.quantity_filled += fill->quantity;
    sess.position -= static_cast<std::int64_t>(fill->quantity);  // sells only
    if (fill->leaves_quantity == 0) {
      for (std::uint8_t i = 0; i < sess.open_count; ++i) {
        if (sess.open[i].client_id != fill->client_order_id) continue;
        sess.open[i] = sess.open[--sess.open_count];
        break;
      }
    }
    return;
  }
  // OrderModified / Logout / anything else: not used by the generator.
}

proto::OrderId LoadGen::fresh_client_id(std::uint32_t session) noexcept {
  Sess& sess = sessions_[session];
  return (static_cast<proto::OrderId>(session) + 1) << 32 | sess.next_client_seq++;
}

proto::Price LoadGen::next_price(std::uint32_t session) noexcept {
  Sess& sess = sessions_[session];
  sess.price_salt = sess.price_salt * 1664525u + 1013904223u;
  const auto offset = 1 + (sess.price_salt >> 16) % 13;
  return sess.ref_price +
         static_cast<proto::Price>(offset) * proto::price_from_dollars(0.01);
}

std::uint64_t LoadGen::token_of(std::uint32_t session) const noexcept {
  return (config_.seed ^ 0x7361'6c74'7e31ULL) +
         static_cast<std::uint64_t>(session) * 0x9e3779b97f4a7c15ULL;
}

void LoadGen::send(std::uint32_t session, const proto::boe::Message& message) {
  // Deferred delivery: this runs while the exchange is mid-send, and
  // deliver_direct may not be re-entered (see DirectClient).
  engine_.schedule_in(sim::Duration::zero(), [this, session, message] {
    const Sess& sess = sessions_[session];
    if (sess.conn == kNoConn) return;
    exchange_.deliver_direct(sess.conn, message);
  });
}

std::int64_t LoadGen::total_position() const noexcept {
  std::int64_t total = 0;
  for (const Sess& sess : sessions_) total += sess.position;
  return total;
}

std::uint64_t LoadGen::fingerprint() const noexcept {
  std::uint64_t h = kFnvOffset;
  for (const Sess& sess : sessions_) {
    fnv_mix(h, static_cast<std::uint64_t>(sess.state) << 32 | sess.open_count << 16 |
                   sess.unacked_count << 8 | sess.cod_count);
    fnv_mix(h, static_cast<std::uint64_t>(sess.position));
    fnv_mix(h, static_cast<std::uint64_t>(sess.last_seen_seq) << 32 | sess.next_client_seq);
    for (std::uint8_t i = 0; i < sess.open_count; ++i) {
      fnv_mix(h, sess.open[i].client_id);
      fnv_mix(h, static_cast<std::uint64_t>(sess.open[i].price));
    }
  }
  fnv_mix(h, stats_.orders_sent);
  fnv_mix(h, stats_.orders_acked);
  fnv_mix(h, stats_.cancels_acked);
  fnv_mix(h, stats_.cod_cancels_seen);
  fnv_mix(h, stats_.fills);
  fnv_mix(h, stats_.quantity_filled);
  fnv_mix(h, stats_.replays_requested);
  fnv_mix(h, stats_.duplicate_rejects);
  fnv_mix(h, stats_.messages_received);
  fnv_mix(h, stats_.bytes_received);
  return h;
}

void LoadGen::register_metrics(telemetry::Registry& registry,
                               const std::string& prefix) const {
  registry.gauge(prefix + ".sessions.ready",
                 [this] { return static_cast<double>(ready_count_); });
  registry.gauge(prefix + ".sessions.admitted",
                 [this] { return static_cast<double>(admitted_count_); });
  registry.gauge(prefix + ".orders.sent",
                 [this] { return static_cast<double>(stats_.orders_sent); });
  registry.gauge(prefix + ".orders.acked",
                 [this] { return static_cast<double>(stats_.orders_acked); });
  registry.gauge(prefix + ".fills", [this] { return static_cast<double>(stats_.fills); });
  registry.gauge(prefix + ".cod_cancels",
                 [this] { return static_cast<double>(stats_.cod_cancels_seen); });
  registry.gauge(prefix + ".replays",
                 [this] { return static_cast<double>(stats_.replays_requested); });
  registry.gauge(prefix + ".drops", [this] { return static_cast<double>(stats_.drops); });
  registry.gauge(prefix + ".closed_by_exchange",
                 [this] { return static_cast<double>(stats_.closed_by_exchange); });
}

}  // namespace tsn::exchange
