// Pooled, sharded session/order/journal state for a million-session
// exchange front end (ROADMAP item 2).
//
// PR 5 kept one heap object per session (journal vector, per-session
// unordered maps); fine for a handful of resilient sessions, hopeless for
// the 10^5–10^6 concurrent gateway sessions the paper's Design 2/3 fan-in
// assumes. This store rewrites that state as slab-allocated, cache-line-
// aligned SoA columns with freelist reuse — the same recipe as
// `book/order_book.*`:
//
//   session slab   external id | token | gen | tx_seq | conn | flags |
//                  order chain head/count | journal chain head/tail/count |
//                  shard | prev | next
//   order slab     client id | exchange id | session | symbol | prev | next
//   journal slab   seq | offset | length | next        (+ one shared byte arena)
//
// The session directory is sharded: session ids hash to one of S shards,
// each with its own open-addressing index and an intrusive bind-ordered
// list of *connected* sessions, so id lookups and liveness /
// cancel-on-disconnect sweeps touch O(shard), never O(population).
//
// Journaling is batched: `journal_stage` appends a sequenced message's
// bytes to a shared staging ring; `journal_flush` commits the whole ring —
// one arena append plus chain links — so the per-message journal cost
// amortizes across every session that sent in the same instant (the
// exchange schedules one flush per instant, like its feed flush). Replay
// walks a session's record chain and hands back the original bytes
// verbatim, preserving PR 5's byte-identical exactly-once replay contract.
//
// Client-order-id state (the dedupe set plus the open-order lookup) is one
// global open-addressing table keyed by (session slot, generation, client
// id): a live entry holds the order slot, a terminal entry a tombstone
// value that keeps rejecting duplicate ids forever. `destroy` bumps the
// session's generation, which invalidates its keys lazily (they are
// dropped at the next rehash).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "book/order_book.hpp"  // book::Column / CacheAlignedAllocator
#include "proto/types.hpp"

namespace tsn::exchange {

using book::Column;

struct SessionStoreConfig {
  // Directory shard count; rounded up to a power of two.
  std::uint32_t shards = 1;
};

enum class LoginVerdict : std::uint8_t {
  kNew,    // first login for this session id: a row was created
  kMatch,  // existing row, token matches (resume/takeover decided by caller)
  kInUse,  // existing row, wrong token: the kSessionInUse reject
};

enum class OrderVerdict : std::uint8_t {
  kAccepted,
  kDuplicateClientId,  // the id was used before, live or terminal
};

struct SessionStoreStats {
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_destroyed = 0;
  std::uint64_t orders_registered = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_flushes = 0;
  std::uint64_t journal_bytes = 0;
};

class SessionStore {
 public:
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  explicit SessionStore(SessionStoreConfig config = {});

  // Pre-sizes every slab, index, the staging ring and the journal arena so
  // the first `sessions` sessions with `orders` concurrently open orders
  // and `journal_bytes` of journaled traffic never grow mid-update.
  void reserve(std::size_t sessions, std::size_t orders, std::size_t journal_bytes);

  // --- directory -------------------------------------------------------
  [[nodiscard]] std::uint32_t lookup(std::uint32_t session_id) const noexcept;

  struct LoginResult {
    std::uint32_t slot = kNullSlot;  // kNullSlot only for kInUse
    LoginVerdict verdict = LoginVerdict::kNew;
  };
  // Resolves a login: creates the row on first sight, verifies the token
  // otherwise. On kInUse nothing changes and slot is kNullSlot.
  LoginResult login(std::uint32_t session_id, std::uint64_t token);

  // Attaches a live connection (joining the shard's connected list at the
  // tail) / detaches it. Rebinding an already-bound session moves it to
  // the tail, which is exactly the order a fresh TCP connection would give.
  void bind(std::uint32_t slot, std::uint32_t conn) noexcept;
  void unbind(std::uint32_t slot) noexcept;

  // Full removal: closes every open order, frees the journal chain, bumps
  // the generation (lazily invalidating dedupe marks) and recycles the row.
  // The exchange never destroys sessions — ids are resumable forever — but
  // the differential suite exercises slot reuse through this.
  void destroy(std::uint32_t slot);

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t session_id) const noexcept {
    return static_cast<std::uint32_t>(mix32(session_id) & shard_mask_);
  }
  // Visits the shard's connected sessions in bind order. `fn(slot)` may not
  // bind/unbind/destroy (the sweep caller collects first, then acts).
  template <typename Fn>
  void for_each_connected(std::uint32_t shard, Fn&& fn) const {
    for (std::uint32_t s = shards_[shard].head; s != kNullSlot; s = sess_next_[s]) fn(s);
  }
  [[nodiscard]] std::size_t connected_count(std::uint32_t shard) const noexcept {
    return shards_[shard].connected;
  }

  // --- session row accessors -------------------------------------------
  [[nodiscard]] std::uint32_t session_id(std::uint32_t slot) const noexcept {
    return sess_external_[slot];
  }
  [[nodiscard]] std::uint64_t token(std::uint32_t slot) const noexcept {
    return sess_token_[slot];
  }
  [[nodiscard]] std::uint32_t conn(std::uint32_t slot) const noexcept { return sess_conn_[slot]; }
  [[nodiscard]] bool logged_in(std::uint32_t slot) const noexcept {
    return (sess_flags_[slot] & kFlagLoggedIn) != 0;
  }
  void set_logged_in(std::uint32_t slot, bool logged_in) noexcept {
    if (logged_in) {
      sess_flags_[slot] |= kFlagLoggedIn;
    } else {
      sess_flags_[slot] &= static_cast<std::uint8_t>(~kFlagLoggedIn);
    }
  }
  // Consumes and returns the next sequenced-application sequence number.
  [[nodiscard]] std::uint32_t next_seq(std::uint32_t slot) noexcept {
    return sess_tx_seq_[slot]++;
  }
  [[nodiscard]] std::uint32_t tx_seq(std::uint32_t slot) const noexcept {
    return sess_tx_seq_[slot];
  }
  [[nodiscard]] std::size_t session_count() const noexcept { return live_sessions_; }
  [[nodiscard]] std::uint32_t generation(std::uint32_t slot) const noexcept {
    return sess_gen_[slot];
  }
  // Test-only: parks the generation counter so the wraparound suite can
  // drive it across 0xffffffff without performing four billion destroys.
  // Never call on a session with live client-id marks — existing marks keep
  // their old generation and would resurrect if the counter revisits it.
  void debug_set_generation(std::uint32_t slot, std::uint32_t gen) noexcept {
    sess_gen_[slot] = gen;
  }
  // Test-only: exchange-index table capacity, so the churn suite can assert
  // the tombstone-compacting rehash keeps it bounded.
  [[nodiscard]] std::size_t debug_exchange_index_capacity() const noexcept {
    return exch_index_.keys.size();
  }

  // Order-independent? No — deliberately order-DEPENDENT: a 64-bit FNV-1a
  // fold over every live session row in slot order (external id, token,
  // generation, tx_seq, logged-in, open orders, journal entries). Two
  // stores that processed the same admitted input sequence hold the same
  // rows in the same slots, so primary and backup digests are equal at
  // every replication sequence point; any divergence — a lost login, a
  // skipped order, a stray ack — shifts the fold. Connection indexes are
  // excluded (the backup has no TCP legs).
  [[nodiscard]] std::uint64_t state_digest() const noexcept;

  // --- shared journal ---------------------------------------------------
  // Stages one sequenced message for the session. Bytes are copied into the
  // staging ring; the chain/arena commit happens at the next flush. Entries
  // for one session must be staged in ascending seq order (the exchange's
  // tx_seq counter guarantees this).
  void journal_stage(std::uint32_t slot, std::uint32_t seq, std::span<const std::byte> bytes);
  [[nodiscard]] bool journal_dirty() const noexcept { return !staged_.empty(); }
  // Group commit: appends the staging ring to the arena and links every
  // staged record into its session's chain, in staging order.
  void journal_flush();
  // Replays entries with seq > last_seen in append order: fn(seq, bytes).
  // Flushes first, so same-instant sends are visible.
  template <typename Fn>
  void replay(std::uint32_t slot, std::uint32_t last_seen, Fn&& fn) {
    if (!staged_.empty()) journal_flush();
    for (std::uint32_t r = sess_jr_head_[slot]; r != kNullSlot; r = jr_next_[r]) {
      if (jr_seq_[r] > last_seen) {
        fn(jr_seq_[r], std::span<const std::byte>{arena_.data() + jr_off_[r], jr_len_[r]});
      }
    }
  }
  [[nodiscard]] std::uint32_t journal_entries(std::uint32_t slot) const noexcept {
    return sess_jr_count_[slot];  // committed + staged
  }

  // --- open orders / client-id dedupe ----------------------------------
  // Registers an accepted order under the session. kDuplicateClientId if
  // the client id was ever used by this session (live OR terminal) — the
  // idempotent-resubmission contract.
  OrderVerdict register_order(std::uint32_t slot, proto::OrderId client_id,
                              proto::OrderId exchange_id, std::uint16_t symbol_idx);
  [[nodiscard]] bool client_id_used(std::uint32_t slot, proto::OrderId client_id) const noexcept;
  // Order slot if the client id maps to a live order of the session.
  [[nodiscard]] std::uint32_t find_open(std::uint32_t slot,
                                        proto::OrderId client_id) const noexcept;
  // Order slot for a live exchange order id (any session).
  [[nodiscard]] std::uint32_t find_by_exchange(proto::OrderId exchange_id) const noexcept;
  // Terminal transition: frees the order row and the exchange-id entry but
  // keeps the client-id mark so duplicates stay rejected.
  void close_order(std::uint32_t order_slot);

  [[nodiscard]] proto::OrderId order_client_id(std::uint32_t order_slot) const noexcept {
    return ord_client_[order_slot];
  }
  [[nodiscard]] proto::OrderId order_exchange_id(std::uint32_t order_slot) const noexcept {
    return ord_exch_[order_slot];
  }
  [[nodiscard]] std::uint32_t order_session(std::uint32_t order_slot) const noexcept {
    return ord_session_[order_slot];
  }
  [[nodiscard]] std::uint16_t order_symbol(std::uint32_t order_slot) const noexcept {
    return ord_symbol_[order_slot];
  }
  [[nodiscard]] std::uint32_t open_order_count(std::uint32_t slot) const noexcept {
    return sess_order_count_[slot];
  }
  [[nodiscard]] std::size_t open_orders_total() const noexcept { return exch_index_.count; }
  // Fills `out` (cleared first) with the session's open client order ids,
  // sorted ascending — the deterministic cancel-on-disconnect sweep order.
  void collect_open_client_ids(std::uint32_t slot, std::vector<proto::OrderId>& out) const;

  [[nodiscard]] const SessionStoreStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::uint8_t kFlagLoggedIn = 0x01;
  // Row is allocated to a session (not on the freelist): the digest walk
  // and other slot-order scans test this instead of probing the directory.
  static constexpr std::uint8_t kFlagLive = 0x02;
  // Client-index value for a terminal order: the id stays used forever.
  static constexpr std::uint32_t kClosedOrder = 0xfffffffeu;

  // 32-bit avalanche (Murmur3 finalizer): shard choice and directory probes.
  [[nodiscard]] static std::uint32_t mix32(std::uint32_t x) noexcept {
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    x *= 0xc2b2ae35u;
    x ^= x >> 16;
    return x;
  }
  [[nodiscard]] static std::uint64_t mix64(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  // Avalanche the id BEFORE folding in (slot, gen): clients commonly derive
  // ids from their session number (e.g. session<<32 | seq), and slots are
  // handed out in login order, so a plain xor of the raw parts cancels to a
  // handful of distinct pre-mix keys across the whole population — every
  // session then probes the same chain. mix64 is bijective, so mixing first
  // keeps distinct ids distinct no matter how structured they are.
  [[nodiscard]] static std::uint64_t client_key_hash(std::uint32_t slot, std::uint32_t gen,
                                                    proto::OrderId client_id) noexcept {
    return mix64(mix64(client_id) +
                 ((static_cast<std::uint64_t>(gen) << 32) | slot) * 0x9e3779b97f4a7c15ULL);
  }

  // Open-addressing session-id -> slot map, one per shard (linear probing,
  // tombstones, power-of-two capacity; never iterated).
  struct Shard {
    Column<std::uint32_t> keys;
    Column<std::uint32_t> slots;
    Column<std::uint8_t> states;  // 0 empty, 1 full, 2 tombstone
    std::size_t count = 0;
    std::size_t occupied = 0;
    // Intrusive bind-ordered list of connected sessions.
    std::uint32_t head = kNullSlot;
    std::uint32_t tail = kNullSlot;
    std::size_t connected = 0;
  };

  // Exchange-order-id -> order-slot map (global, tombstoned).
  struct ExchIndex {
    Column<proto::OrderId> keys;
    Column<std::uint32_t> slots;
    Column<std::uint8_t> states;
    std::size_t count = 0;
    std::size_t occupied = 0;
  };

  // (session slot, generation, client id) -> live order slot or kClosedOrder.
  struct ClientIndex {
    Column<std::uint32_t> sess;
    Column<std::uint32_t> gen;
    Column<proto::OrderId> client;
    Column<std::uint32_t> value;
    Column<std::uint8_t> states;  // 0 empty, 1 full (no erase; stale gens dropped at rehash)
    std::size_t count = 0;
  };

  struct Staged {
    std::uint32_t slot = 0;
    std::uint32_t seq = 0;
    std::uint64_t off = 0;  // offset into staging_bytes_
    std::uint32_t len = 0;
  };

  std::uint32_t alloc_session();
  std::uint32_t alloc_order();
  std::uint32_t alloc_record();
  void grow_sessions(std::size_t new_capacity);
  void grow_orders(std::size_t new_capacity);
  void grow_records(std::size_t new_capacity);

  [[nodiscard]] std::uint32_t dir_find(const Shard& shard, std::uint32_t session_id) const noexcept;
  void dir_insert(Shard& shard, std::uint32_t session_id, std::uint32_t slot);
  void dir_erase(Shard& shard, std::uint32_t session_id) noexcept;
  void dir_grow(Shard& shard, std::size_t min_capacity);

  [[nodiscard]] std::uint32_t exch_find(proto::OrderId id) const noexcept;
  void exch_insert(proto::OrderId id, std::uint32_t slot);
  void exch_erase(proto::OrderId id) noexcept;
  void exch_grow(std::size_t min_capacity);

  [[nodiscard]] std::uint32_t client_find(std::uint32_t slot, proto::OrderId id) const noexcept;
  void client_insert(std::uint32_t slot, proto::OrderId id, std::uint32_t value);
  void client_insert_raw(std::uint32_t slot, std::uint32_t gen, proto::OrderId id,
                         std::uint32_t value);
  void client_set(std::uint32_t slot, proto::OrderId id, std::uint32_t value) noexcept;
  void client_grow(std::size_t min_capacity);

  void unlink_order(std::uint32_t order_slot) noexcept;

  std::uint32_t shard_mask_ = 0;
  std::vector<Shard> shards_;

  // Session slab (parallel columns; slot = row).
  Column<std::uint32_t> sess_external_;
  Column<std::uint64_t> sess_token_;
  Column<std::uint32_t> sess_gen_;
  Column<std::uint32_t> sess_tx_seq_;
  Column<std::uint32_t> sess_conn_;
  Column<std::uint8_t> sess_flags_;
  Column<std::uint32_t> sess_order_head_;
  Column<std::uint32_t> sess_order_count_;
  Column<std::uint32_t> sess_jr_head_;
  Column<std::uint32_t> sess_jr_tail_;
  Column<std::uint32_t> sess_jr_count_;
  Column<std::uint32_t> sess_shard_;
  Column<std::uint32_t> sess_prev_;  // connected-list link
  Column<std::uint32_t> sess_next_;  // connected-list link / freelist link
  std::uint32_t free_sess_ = kNullSlot;
  std::size_t live_sessions_ = 0;

  // Order slab.
  Column<proto::OrderId> ord_client_;
  Column<proto::OrderId> ord_exch_;
  Column<std::uint32_t> ord_session_;
  Column<std::uint16_t> ord_symbol_;
  Column<std::uint32_t> ord_prev_;
  Column<std::uint32_t> ord_next_;  // session chain / freelist link
  std::uint32_t free_ord_ = kNullSlot;

  // Journal record slab + shared byte arena + staging ring.
  Column<std::uint32_t> jr_seq_;
  Column<std::uint64_t> jr_off_;
  Column<std::uint32_t> jr_len_;
  Column<std::uint32_t> jr_next_;
  std::uint32_t free_jr_ = kNullSlot;
  std::vector<std::byte> arena_;
  std::vector<Staged> staged_;
  std::vector<std::byte> staging_bytes_;

  ExchIndex exch_index_;
  ClientIndex client_index_;

  SessionStoreStats stats_;
};

}  // namespace tsn::exchange
