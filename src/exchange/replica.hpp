// Hot-standby exchange replication (the PR 10 tentpole).
//
// Production trading plants run the matching engine as a sequenced
// primary/backup pair: the primary streams its *admitted input sequence* —
// not its outputs — to a hot standby that applies every admission through
// the identical deterministic handlers, so the pair's state digests are
// byte-equal at every sequence point and the standby can take over
// mid-session (see PAPERS.md: Ashfaq et al.'s cloud exchange and the
// Miles & Cliff distributed-exchange simulator, which both assume exactly
// this input-sequenced replication).
//
// Two halves, each a "sidecar" with its own Host/NIC so the replication
// bridge is a real simulated link (partitionable by fault::FaultInjector):
//
//   ReplicaStream  (primary side)  — implements Exchange::InputListener.
//     Admissions staged during an event cascade flush to the wire in the
//     same instant (zero-delay flush), so any client-visible ack implies
//     the admission's record is already on the wire: a crash can lose
//     un-acked admissions (the gateway resubmits those under dedupe) but
//     never an acked one. Emitted records are retained for NAK-driven
//     retransmission after loss or a healed partition. Periodic heartbeats
//     carry (epoch, flushed_seq, state_digest) for lag and parity checks.
//
//   ReplicaApplier (backup side) — applies records in sequence against the
//     backup Exchange (feed muted, accepts refused while following),
//     verifies the digest whenever a heartbeat finds it fully caught up,
//     and acks progress with (epoch, applied_seq) status datagrams. At
//     promotion the applier bumps its epoch past the last one the primary
//     announced; the status stream then doubles as the fence — a stale
//     primary that hears a higher epoch silences itself (split-brain
//     resolution after a healed partition).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exchange/exchange.hpp"
#include "net/stack.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::exchange {

struct ReplicaConfig {
  std::string name = "repl";
  net::MacAddr local_mac;
  net::Ipv4Addr local_ip;
  net::MacAddr peer_mac;
  net::Ipv4Addr peer_ip;
  std::uint16_t local_port = 36000;
  std::uint16_t peer_port = 36001;
  // Stream-side heartbeat cadence; the backup's failure detector budgets
  // its suspect/promote thresholds in multiples of this.
  sim::Duration heartbeat_interval = sim::millis(std::int64_t{1});
  // Applier-side progress/fence status cadence.
  sim::Duration status_interval = sim::millis(std::int64_t{1});
  std::size_t mtu_payload = 1458;
  std::uint64_t epoch = 1;
};

// Record/datagram wire format (little-endian):
//   type 1 records:   [u8 1][u64 epoch] then per record
//                     [u32 rep_seq][u8 kind][i64 at_ps][u32 session][u16 len][payload]
//                     kind 0 login (payload u64 token), 1 message (BOE-framed,
//                     seq 0), 2 session_dead (empty)
//   type 2 heartbeat: [u8 2][u64 epoch][u32 flushed_seq][u64 state_digest]
//   type 3 status:    [u8 3][u64 epoch][u32 applied_seq]

struct ReplicaStreamStats {
  std::uint64_t records_emitted = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t statuses_received = 0;
  std::uint64_t records_retransmitted = 0;
  std::uint64_t retransmit_bursts = 0;
};

class ReplicaStream final : public InputListener {
 public:
  ReplicaStream(sim::Scheduler& engine, Exchange& primary, ReplicaConfig config);
  ~ReplicaStream();
  ReplicaStream(const ReplicaStream&) = delete;
  ReplicaStream& operator=(const ReplicaStream&) = delete;

  [[nodiscard]] net::Nic& nic() noexcept { return *nic_; }

  // Installs the admission tap on the primary and starts heartbeats.
  void start();

  // Process death: the stream dies with its exchange (one process). The
  // drill's kProcessCrash callback calls both.
  void crash() noexcept { crashed_ = true; }

  // InputListener — admissions stage a record and arm a same-instant flush.
  void on_admitted_login(std::uint32_t session_id, std::uint64_t token) override;
  void on_admitted_message(std::uint32_t session_id,
                           const proto::boe::Message& message) override;
  void on_admitted_session_dead(std::uint32_t session_id) override;

  [[nodiscard]] const ReplicaStreamStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] bool fenced() const noexcept { return fenced_; }
  [[nodiscard]] std::uint32_t emitted_seq() const noexcept { return next_rep_seq_ - 1; }
  [[nodiscard]] std::uint32_t flushed_seq() const noexcept { return flushed_seq_; }

  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  void stage(std::uint8_t kind, std::uint32_t session_id, std::span<const std::byte> payload);
  void schedule_wire_flush();
  void wire_flush();
  void send_records(std::uint32_t first_seq, std::uint32_t last_seq, bool retransmit);
  void heartbeat_tick();
  void on_datagram(std::span<const std::byte> payload);

  sim::Scheduler& engine_;
  Exchange& primary_;
  ReplicaConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* nic_ = nullptr;
  std::unique_ptr<net::NetStack> stack_;

  // Every emitted record, encoded, indexed by rep_seq - 1: the retransmit
  // source. Journal-tail analogue for the replication channel.
  std::vector<std::vector<std::byte>> records_;
  std::uint32_t next_rep_seq_ = 1;
  std::uint32_t flushed_seq_ = 0;  // highest rep_seq on the wire
  bool flush_scheduled_ = false;
  bool crashed_ = false;
  bool fenced_ = false;
  std::uint64_t epoch_;
  // Progress watermark from the previous status: a repeat with no progress
  // while we hold more records means loss, and triggers the retransmit.
  std::uint32_t last_status_applied_ = 0;
  bool saw_status_ = false;
  std::vector<std::byte> scratch_record_;
  std::vector<std::byte> scratch_datagram_;
  ReplicaStreamStats stats_;
};

struct ReplicaApplierStats {
  std::uint64_t datagrams_received = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t records_stale = 0;   // rep_seq already applied (retransmit overlap)
  std::uint64_t records_gapped = 0;  // out-of-order arrivals awaiting retransmit
  std::uint64_t heartbeats_received = 0;
  std::uint64_t stale_epoch_dropped = 0;  // post-promotion traffic from the old leader
  std::uint64_t digests_checked = 0;
  std::uint64_t digest_mismatches = 0;
  std::uint64_t statuses_sent = 0;
  std::uint32_t lag_last = 0;  // flushed_seq - applied_seq at the last heartbeat
  std::uint32_t lag_max = 0;
};

class ReplicaApplier {
 public:
  ReplicaApplier(sim::Scheduler& engine, Exchange& backup, ReplicaConfig config);
  ~ReplicaApplier();
  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  [[nodiscard]] net::Nic& nic() noexcept { return *nic_; }

  // Binds the record/heartbeat port and starts the status cadence. Also
  // initializes the heartbeat watermark so a standby started at t=0 does
  // not instantly suspect a primary that has not spoken yet.
  void start();

  // Promotion: adopt an epoch above anything the old primary announced.
  // The regular status stream then fences the old leader on contact.
  void begin_promotion() noexcept;

  [[nodiscard]] sim::Time last_heartbeat_at() const noexcept { return last_heartbeat_at_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t remote_epoch() const noexcept { return remote_epoch_; }
  [[nodiscard]] std::uint32_t applied_seq() const noexcept { return applied_seq_; }
  [[nodiscard]] const ReplicaApplierStats& stats() const noexcept { return stats_; }

  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  void on_datagram(std::span<const std::byte> payload);
  void apply_record(std::uint8_t kind, std::uint32_t session_id, std::int64_t at_ps,
                    std::span<const std::byte> payload);
  void status_tick();

  sim::Scheduler& engine_;
  Exchange& backup_;
  ReplicaConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* nic_ = nullptr;
  std::unique_ptr<net::NetStack> stack_;

  std::uint32_t applied_seq_ = 0;
  std::uint64_t epoch_;
  std::uint64_t remote_epoch_;
  sim::Time last_heartbeat_at_;
  bool started_ = false;
  ReplicaApplierStats stats_;
};

}  // namespace tsn::exchange
